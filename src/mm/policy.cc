#include "mm/policy.hh"

#include "mm/kernel.hh"
#include "obs/metrics.hh"

namespace contig
{

const char *
allocFailName(AllocFail f)
{
    switch (f) {
      case AllocFail::None: return "ok";
      case AllocFail::NoHugeBlock: return "no_huge_block";
      case AllocFail::Oom: return "oom";
    }
    return "?";
}

AllocResult
buddyAlloc(Kernel &kernel, unsigned order, NodeId node)
{
    AllocResult res;
    if (auto pfn = kernel.physMem().alloc(order, node))
        res.pfn = *pfn;
    else
        res = AllocResult::failure(order);
    return res;
}

void
AllocationPolicy::noteAllocFail(AllocFail f)
{
    if (f == AllocFail::NoHugeBlock)
        ++failCounts_.noHugeBlock;
    else if (f == AllocFail::Oom)
        ++failCounts_.oom;
}

void
AllocationPolicy::collectFailMetrics(obs::MetricSink &sink) const
{
    sink.counter("fallback.no_huge_block", failCounts_.noHugeBlock);
    sink.counter("fallback.oom", failCounts_.oom);
}

std::size_t
AllocationPolicy::allocateBatch(Kernel &kernel, Process &proc, Vma &vma,
                                FaultSlot *slots, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        slots[i].res = allocate(kernel, proc, vma, slots[i].base,
                                slots[i].order);
        if (!slots[i].res.ok())
            return i;
    }
    return n;
}

AllocResult
AllocationPolicy::allocateFilePage(Kernel &kernel, File &file,
                                   std::uint64_t file_page)
{
    (void)file;
    (void)file_page;
    return buddyAlloc(kernel, 0, 0);
}

std::size_t
AllocationPolicy::allocateFileRange(Kernel &kernel, File &file,
                                    std::uint64_t first_page,
                                    std::size_t n, AllocResult *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = allocateFilePage(kernel, file, first_page + i);
        if (!out[i].ok())
            return i;
    }
    return n;
}

AllocResult
DefaultThpPolicy::allocate(Kernel &kernel, Process &proc, Vma &vma,
                           Vpn vpn, unsigned order)
{
    (void)vma;
    (void)vpn;
    return buddyAlloc(kernel, order, proc.homeNode());
}

AllocResult
Base4kPolicy::allocate(Kernel &kernel, Process &proc, Vma &vma, Vpn vpn,
                       unsigned order)
{
    (void)vma;
    (void)vpn;
    return buddyAlloc(kernel, order, proc.homeNode());
}

} // namespace contig
