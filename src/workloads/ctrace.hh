/**
 * @file
 * The `.ctrace` binary memory-trace format: a versioned, mmap-able
 * container for recorded MemAccess streams, replayable through the
 * translation engine byte-for-byte equal to the live generator run
 * that captured it.
 *
 * Layout (all fields little-endian):
 *
 *   header (64 bytes)
 *     u32 magic          "CTRC"
 *     u32 version        kCtraceVersion
 *     u64 configDigest   FNV-1a over (workload, seed, accesses, run)
 *     u64 totalAccesses
 *     u64 chunkAccesses  nominal chunk size (final chunk may be short)
 *     u64 chunkCount
 *     u64 indexOffset    byte offset of the chunk index
 *     u32 flags          reserved, 0
 *     u32 headerCrc      crc32 of the 60 bytes above
 *   chunks                back-to-back encoded blocks
 *   index (at indexOffset) chunkCount records of 24 bytes:
 *     u64 offset  u32 encodedBytes  u32 accessCount  u32 crc32  u32 rsvd
 *   u32 indexCrc          crc32 of the raw index bytes
 *
 * Chunk encoding is a self-contained zigzag-delta varint (LEB128)
 * stream of (pc, va) pairs: deltas against the previous access of the
 * *same chunk* (the first access deltas against 0), so any chunk can
 * be decoded without its predecessors — that is what makes the index
 * seekable and checkpoint resume O(1). Synthetic streams are mostly
 * strided, so deltas are small and the encoding lands well under half
 * the raw 16 bytes/access. No external compressor is involved.
 *
 * CtraceReader maps the file read-only (mmap) and validates magic,
 * version, header CRC, index CRC and bounds up front; per-chunk CRCs
 * are checked on decode. Every malformation is a distinct fatal()
 * with the file name — a damaged trace must never replay quietly.
 */

#ifndef CONTIG_WORKLOADS_CTRACE_HH
#define CONTIG_WORKLOADS_CTRACE_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "tlb/translation_sim.hh"

namespace contig
{

constexpr std::uint32_t kCtraceMagic = 0x43525443u; // "CTRC"
constexpr std::uint32_t kCtraceVersion = 1;
constexpr std::size_t kCtraceHeaderBytes = 64;
constexpr std::size_t kCtraceIndexEntryBytes = 24;

/**
 * The trace identity digest: a capture and its replay must agree on
 * the workload, the stream seed, the access count and the run index
 * within the bench binary (benches like fig13 call runTranslation
 * several times on one evolving workload object — each call is a
 * distinct stream and gets its own trace file).
 */
std::uint64_t ctraceDigest(std::string_view workload, std::uint64_t seed,
                           std::uint64_t accesses,
                           std::uint64_t run_index);

/** Per-run trace path under a user prefix: `<prefix>.run<N>.ctrace`. */
std::string ctraceRunPath(std::string_view prefix,
                          std::uint64_t run_index);

/** Per-run checkpoint path: `<prefix>.run<N>.ckpt`. */
std::string ckptRunPath(std::string_view prefix, std::uint64_t run_index);

/**
 * Streaming writer: appendChunk once per generated chunk, finish()
 * (or destruction) seals the file — chunk index, then the header.
 * An unfinished file has a zeroed header and never validates.
 */
class CtraceWriter
{
  public:
    CtraceWriter(const std::string &path, std::uint64_t config_digest,
                 std::uint64_t chunk_accesses,
                 std::uint64_t total_accesses);
    ~CtraceWriter();

    CtraceWriter(const CtraceWriter &) = delete;
    CtraceWriter &operator=(const CtraceWriter &) = delete;

    void appendChunk(const MemAccess *a, std::size_t n);
    void finish();

    std::uint64_t chunksWritten() const { return index_.size(); }
    std::uint64_t accessesWritten() const { return accessesWritten_; }
    /** Encoded payload bytes so far (compression-ratio numerator). */
    std::uint64_t bytesEncoded() const { return bytesEncoded_; }
    const std::string &path() const { return path_; }

  private:
    struct IndexEntry
    {
        std::uint64_t offset;
        std::uint32_t encodedBytes;
        std::uint32_t accessCount;
        std::uint32_t crc;
    };

    std::string path_;
    std::FILE *f_;
    std::uint64_t configDigest_;
    std::uint64_t chunkAccesses_;
    std::uint64_t totalAccesses_;
    std::uint64_t accessesWritten_ = 0;
    std::uint64_t bytesEncoded_ = 0;
    std::vector<IndexEntry> index_;
    std::vector<std::uint8_t> enc_; // reused encode buffer
    bool finished_ = false;
};

/**
 * mmap-backed reader. Construction validates the container; any
 * malformation is fatal with a distinct message. decodeChunk(k) is
 * random access — resume jumps straight to chunk K.
 */
class CtraceReader
{
  public:
    explicit CtraceReader(const std::string &path);
    ~CtraceReader();

    CtraceReader(const CtraceReader &) = delete;
    CtraceReader &operator=(const CtraceReader &) = delete;

    std::uint32_t version() const { return version_; }
    std::uint64_t configDigest() const { return configDigest_; }
    std::uint64_t totalAccesses() const { return totalAccesses_; }
    std::uint64_t chunkAccesses() const { return chunkAccesses_; }
    std::uint64_t chunkCount() const { return chunkCount_; }
    std::uint64_t fileBytes() const { return size_; }
    const std::string &path() const { return path_; }

    std::uint32_t chunkAccessCount(std::uint64_t k) const;
    std::uint32_t chunkEncodedBytes(std::uint64_t k) const;

    /** Accesses in chunks [0, k) — the stream position of chunk k. */
    std::uint64_t accessesBeforeChunk(std::uint64_t k) const;

    /**
     * Decode chunk k into out (resized to the chunk's access count).
     * Verifies the chunk CRC; fatal on corruption. Returns the count.
     */
    std::size_t decodeChunk(std::uint64_t k,
                            std::vector<MemAccess> &out) const;

    /** Fatal unless the stored config digest equals `expected`. */
    void requireDigest(std::uint64_t expected) const;

  private:
    struct IndexEntry
    {
        std::uint64_t offset;
        std::uint32_t encodedBytes;
        std::uint32_t accessCount;
        std::uint32_t crc;
    };

    std::string path_;
    int fd_ = -1;
    const std::uint8_t *map_ = nullptr;
    std::size_t size_ = 0;

    std::uint32_t version_ = 0;
    std::uint64_t configDigest_ = 0;
    std::uint64_t totalAccesses_ = 0;
    std::uint64_t chunkAccesses_ = 0;
    std::uint64_t chunkCount_ = 0;
    std::vector<IndexEntry> index_;
};

/**
 * Encode/decode one chunk (exposed for tests and contig_inspect).
 * encodeChunk appends to out; decodeChunk expects exactly `count`
 * accesses and returns false on a malformed stream.
 */
void ctraceEncodeChunk(const MemAccess *a, std::size_t n,
                       std::vector<std::uint8_t> &out);
bool ctraceDecodeChunk(const std::uint8_t *enc, std::size_t enc_bytes,
                       std::size_t count, MemAccess *out);

} // namespace contig

#endif // CONTIG_WORKLOADS_CTRACE_HH
