# Empty dependencies file for fig14_spot_breakdown.
# This may be replaced when dependencies are built.
