#include "phys/zone.hh"
#include "base/serialize.hh"

namespace contig
{

Zone::Zone(FrameArray &frames, NodeId node, Pfn base_pfn,
           std::uint64_t n_frames, const ZoneConfig &cfg)
    : node_(node),
      frames_(frames),
      contigMap_(pagesInOrder(cfg.maxOrder),
                 cfg.numaShards > 1 ? cfg.numaShards : 1, base_pfn,
                 n_frames),
      buddy_(frames, base_pfn, n_frames, cfg.maxOrder, cfg.sortedTopList,
             cfg.scrambleSeed, cfg.numaShards > 1 ? cfg.numaShards : 1),
      pcpBatch_(cfg.pcpBatch),
      pcpHigh_(cfg.pcpHigh),
      pcp_(cfg.pcpCpus),
      reclaim_(cfg.reclaim)
{
    buddy_.setTopListHooks(
        [this](Pfn pfn) { contigMap_.onBlockFree(pfn); },
        [this](Pfn pfn) { contigMap_.onBlockAllocated(pfn); });
    if (cfg.lockStats) {
        // Host and guest zones with the same node id share one site,
        // the same way their buddy metrics merge by name.
        lock_.bindStats(&LockStatsRegistry::global().site(
            "zone" + std::to_string(node) + ".buddy"));
        lruLock_.bindStats(&LockStatsRegistry::global().site(
            "zone" + std::to_string(node) + ".lru"));
        if (contigMap_.striped()) {
            contigMap_.bindLockStats(
                "zone" + std::to_string(node) + ".cmap");
        }
    }
    if (reclaim_) {
        // Watermarks derived from zone size (Linux derives min from
        // managed pages; low/high are fixed fractions above it):
        // min = 1/256th of the zone, low = 1.5x min, high = 2x min,
        // all scaled by the config multiplier and floored at one pcp
        // batch so tiny test zones still have a sensible band.
        const auto scaled = [&](std::uint64_t pages) {
            const auto v =
                static_cast<std::uint64_t>(pages * cfg.watermarkScale);
            return std::max<std::uint64_t>(v, cfg.pcpBatch);
        };
        wm_.min = scaled(n_frames / 256);
        wm_.low = scaled(n_frames / 256 + n_frames / 512);
        wm_.high = scaled(n_frames / 128);
        freePagesGauge_.store(buddy_.freePages(),
                              std::memory_order_relaxed);
    }
}

std::optional<Pfn>
Zone::alloc(unsigned order)
{
    if (order == 0 && pcpEnabled()) {
        PcpList &pcp = myPcp();
        if (pcp.pfns.empty()) {
            std::lock_guard<SpinLock> g(lock_);
            for (unsigned i = 0; i < pcpBatch_; ++i) {
                auto pfn = buddy_.alloc(0);
                if (!pfn)
                    break;
                pcp.pfns.push_back(*pfn);
            }
        }
        if (pcp.pfns.empty())
            return std::nullopt;
        Pfn pfn = pcp.pfns.back();
        pcp.pfns.pop_back();
        // Pcp-cached frames count as free (NR_FREE_PAGES semantics),
        // so the gauge moves on the cache pop, not the buddy refill.
        if (reclaim_)
            freePagesGauge_.fetch_sub(1, std::memory_order_relaxed);
        return pfn;
    }
    std::lock_guard<SpinLock> g(lock_);
    auto pfn = buddy_.alloc(order);
    if (reclaim_ && pfn)
        freePagesGauge_.fetch_sub(pagesInOrder(order),
                                  std::memory_order_relaxed);
    return pfn;
}

bool
Zone::allocSpecific(Pfn pfn, unsigned order)
{
    std::lock_guard<SpinLock> g(lock_);
    const bool ok = buddy_.allocSpecific(pfn, order);
    if (reclaim_ && ok)
        freePagesGauge_.fetch_sub(pagesInOrder(order),
                                  std::memory_order_relaxed);
    return ok;
}

void
Zone::free(Pfn pfn, unsigned order)
{
    if (order == 0 && pcpEnabled()) {
        PcpList &pcp = myPcp();
        pcp.pfns.push_back(pfn);
        if (reclaim_)
            freePagesGauge_.fetch_add(1, std::memory_order_relaxed);
        if (pcp.pfns.size() >= pcpHigh_) {
            std::lock_guard<SpinLock> g(lock_);
            for (unsigned i = 0; i < pcpBatch_ && !pcp.pfns.empty(); ++i) {
                buddy_.free(pcp.pfns.back(), 0);
                pcp.pfns.pop_back();
            }
        }
        return;
    }
    std::lock_guard<SpinLock> g(lock_);
    buddy_.free(pfn, order);
    if (reclaim_)
        freePagesGauge_.fetch_add(pagesInOrder(order),
                                  std::memory_order_relaxed);
}

void
Zone::drainPcp()
{
    if (!pcpEnabled())
        return;
    std::lock_guard<SpinLock> g(lock_);
    for (PcpList &pcp : pcp_) {
        for (Pfn pfn : pcp.pfns)
            buddy_.free(pfn, 0);
        pcp.pfns.clear();
    }
}

std::uint64_t
Zone::pcpCachedPages() const
{
    std::uint64_t total = 0;
    for (const PcpList &pcp : pcp_)
        total += pcp.pfns.size();
    return total;
}

Log2Histogram
Zone::freeBlockHistogram() const
{
    std::lock_guard<SpinLock> g(lock_);
    Log2Histogram hist = contigMap_.clusterSizeHistogram();
    for (unsigned o = 0; o < buddy_.maxOrder(); ++o) {
        buddy_.forEachFreeBlock(o, [&](Pfn) {
            hist.add(pagesInOrder(o), pagesInOrder(o));
        });
    }
    return hist;
}


// --- LRU lists (memory-pressure kernels only) ----------------------------

Zone::Lru &
Zone::lruOf(Frame::LruList list)
{
    return list == Frame::LruList::Active ? active_ : inactive_;
}

const Zone::Lru &
Zone::lruOf(Frame::LruList list) const
{
    return list == Frame::LruList::Active ? active_ : inactive_;
}

void
Zone::lruUnlinkLocked(Pfn head)
{
    Frame &f = frames_[head];
    contig_assert(f.lruList != Frame::LruList::None,
                  "lru unlink of unlisted frame %llu",
                  static_cast<unsigned long long>(head));
    Lru &lru = lruOf(f.lruList);
    if (f.lruPrev != kInvalidPfn)
        frames_[f.lruPrev].lruNext = f.lruNext;
    else
        lru.head = f.lruNext;
    if (f.lruNext != kInvalidPfn)
        frames_[f.lruNext].lruPrev = f.lruPrev;
    else
        lru.tail = f.lruPrev;
    lru.pages -= pagesInOrder(f.lruOrder);
    f.lruNext = kInvalidPfn;
    f.lruPrev = kInvalidPfn;
    f.lruList = Frame::LruList::None;
}

void
Zone::lruInsert(Frame::LruList list, Pfn head, unsigned order)
{
    std::lock_guard<SpinLock> g(lruLock_);
    Frame &f = frames_[head];
    contig_assert(f.lruList == Frame::LruList::None,
                  "lru insert of already-listed frame %llu",
                  static_cast<unsigned long long>(head));
    Lru &lru = lruOf(list);
    f.lruOrder = static_cast<std::uint8_t>(order);
    f.lruList = list;
    f.lruPrev = kInvalidPfn;
    f.lruNext = lru.head;
    if (lru.head != kInvalidPfn)
        frames_[lru.head].lruPrev = head;
    lru.head = head;
    if (lru.tail == kInvalidPfn)
        lru.tail = head;
    lru.pages += pagesInOrder(order);
}

bool
Zone::lruInsertTail(Frame::LruList list, Pfn head, unsigned order)
{
    std::lock_guard<SpinLock> g(lruLock_);
    Frame &f = frames_[head];
    if (f.lruList != Frame::LruList::None)
        return false;
    Lru &lru = lruOf(list);
    f.lruOrder = static_cast<std::uint8_t>(order);
    f.lruList = list;
    f.lruNext = kInvalidPfn;
    f.lruPrev = lru.tail;
    if (lru.tail != kInvalidPfn)
        frames_[lru.tail].lruNext = head;
    lru.tail = head;
    if (lru.head == kInvalidPfn)
        lru.head = head;
    lru.pages += pagesInOrder(order);
    return true;
}

bool
Zone::lruRequeue(Frame::LruList list, Pfn head, unsigned order)
{
    std::lock_guard<SpinLock> g(lruLock_);
    Frame &f = frames_[head];
    if (f.lruList != Frame::LruList::None)
        return false;
    Lru &lru = lruOf(list);
    f.lruOrder = static_cast<std::uint8_t>(order);
    f.lruList = list;
    f.lruPrev = kInvalidPfn;
    f.lruNext = lru.head;
    if (lru.head != kInvalidPfn)
        frames_[lru.head].lruPrev = head;
    lru.head = head;
    if (lru.tail == kInvalidPfn)
        lru.tail = head;
    lru.pages += pagesInOrder(order);
    return true;
}

void
Zone::lruRemove(Pfn head)
{
    std::lock_guard<SpinLock> g(lruLock_);
    if (frames_[head].lruList == Frame::LruList::None)
        return;
    lruUnlinkLocked(head);
}

std::size_t
Zone::lruPopTail(Frame::LruList list, std::size_t n, LruEntry *out)
{
    std::lock_guard<SpinLock> g(lruLock_);
    Lru &lru = lruOf(list);
    std::size_t got = 0;
    while (got < n && lru.tail != kInvalidPfn) {
        const Pfn head = lru.tail;
        const std::uint8_t order = frames_[head].lruOrder;
        lruUnlinkLocked(head);
        out[got++] = LruEntry{head, order};
    }
    return got;
}

std::uint64_t
Zone::lruPages(Frame::LruList list) const
{
    std::lock_guard<SpinLock> g(lruLock_);
    return lruOf(list).pages;
}

void
Zone::saveState(Serializer &s) const
{
    const std::size_t sec = s.beginSection(sectionTag('Z', 'O', 'N', 'E'));
    s.u32(node_);
    buddy_.saveState(s);
    s.u64(pcp_.size());
    for (const PcpList &p : pcp_) {
        s.u64(p.pfns.size());
        for (Pfn pfn : p.pfns)
            s.u64(pfn);
    }
    s.endSection(sec);
}

} // namespace contig
