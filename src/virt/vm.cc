#include "virt/vm.hh"

#include <vector>

#include "base/logging.hh"
#include "obs/observatory.hh"

namespace contig
{

VirtualMachine::VirtualMachine(Kernel &host,
                               std::unique_ptr<AllocationPolicy> guest_policy,
                               const VmConfig &cfg)
    : host_(host)
{
    // VM geometry joins the reproducibility record (the guest
    // kernel's own knobs are noted by its Kernel ctor under the
    // "guest." prefix).
    obs::RunInfo &ri = obs::RunInfo::global();
    ri.count("vm.instances");
    ri.note("vm.guest_bytes_per_node", cfg.guestBytesPerNode);
    ri.note("vm.guest_nodes", static_cast<std::uint64_t>(cfg.guestNodes));

    // The backing process and its GuestRam VMA (qemu's anonymous
    // guest-memory region).
    backing_ = &host_.createProcess("vm-backing");
    const std::uint64_t ram_bytes =
        cfg.guestBytesPerNode * cfg.guestNodes;
    ramVma_ = &backing_->addressSpace().mmap(ram_bytes, VmaKind::GuestRam);
    ramVma_->faultLock().bindStats(host_.vmaFaultSite());
    host_.policy().onMmap(host_, *backing_, *ramVma_);

    // The guest kernel sees [0, ram_bytes) as its physical space.
    KernelConfig gk = cfg.guestKernel;
    gk.phys.bytesPerNode = cfg.guestBytesPerNode;
    gk.phys.numNodes = cfg.guestNodes;
    // Keep guest metrics apart from the host kernel's, unless the
    // caller already chose a distinct prefix.
    if (gk.metricsPrefix == "kernel")
        gk.metricsPrefix = "guest";
    guest_ = std::make_unique<Kernel>(gk, std::move(guest_policy));

    // Nested faults: first allocation of guest frames touches the
    // corresponding host pages of the backing VMA. TouchNote::Origins
    // is exactly the backing access shape: one full touch per huge
    // stride (the host fault maps at least 4 KiB and, with THP,
    // usually 2 MiB at a time), then a sweep faulting any page still
    // unbacked.
    guest_->backingHook = [this](Pfn gfn, unsigned order) {
        FaultRequest span;
        span.proc = backing_;
        span.vma = ramVma_;
        span.vpn = ramVma_->start().pageNumber() + gfn;
        span.pages = pagesInOrder(order);
        span.access = Access::Write;
        host_.faultEngine().handleRange(span, TouchNote::Origins);
    };
}

VirtualMachine::~VirtualMachine()
{
    guest_.reset();
    // Release guest RAM in the host.
    host_.exitProcess(*backing_);
}

void
VirtualMachine::syncShadow(PageTable &shadow, Vpn vpn, const Mapping &m,
                           bool present)
{
    // One VM exit per trapped guest PTE update.
    ++shadowExits_;
    if (!present) {
        if (shadow.lookup(vpn))
            shadow.unmap(vpn, m.order);
        return;
    }
    // Re-sync of an existing entry (permission/contiguity-bit update):
    // refresh the shadow leaf in place.
    if (auto existing = shadow.lookup(vpn); existing &&
                                            existing->valid()) {
        shadow.setWritable(vpn, m.writable, m.cow);
        shadow.setContigBit(vpn, m.contigBit);
        return;
    }
    auto nested = nestedLookup(m.pfn);
    if (!nested)
        return; // unbacked guest frame: shadow entry stays absent
    // The shadow leaf's grain is the smaller of the two dimensions.
    const unsigned order = std::min<unsigned>(m.order, nested->order);
    if (order == m.order) {
        shadow.map(vpn, nested->pfn, order, m.writable, m.cow);
        if (m.contigBit)
            shadow.setContigBit(vpn, true);
        return;
    }
    // Guest leaf larger than the host backing: split into host-grain
    // shadow leaves.
    const std::uint64_t n = pagesInOrder(m.order);
    const std::uint64_t step = pagesInOrder(order);
    for (std::uint64_t off = 0; off < n; off += step) {
        auto piece = nestedLookup(m.pfn + off);
        if (!piece)
            continue;
        shadow.map(vpn + off, piece->pfn, order, m.writable, m.cow);
    }
}

void
VirtualMachine::enableShadowPaging(Process &guest_proc)
{
    auto [it, fresh] = shadows_.emplace(
        guest_proc.pid(),
        std::make_unique<PageTable>(nullptr, nullptr,
                                    guest_proc.pageTable().levels()));
    contig_assert(fresh, "shadow paging already enabled for pid %u",
                  guest_proc.pid());
    PageTable *shadow = it->second.get();

    // Synchronize the leaves that already exist...
    std::vector<std::pair<Vpn, Mapping>> leaves;
    guest_proc.pageTable().forEachLeaf(
        [&](Vpn vpn, const Mapping &m) { leaves.emplace_back(vpn, m); });
    for (auto &[vpn, m] : leaves)
        syncShadow(*shadow, vpn, m, true);

    // ...and trap every future update.
    guest_proc.pageTable().setUpdateHook(
        [this, shadow](Vpn vpn, const Mapping &m, bool present) {
            syncShadow(*shadow, vpn, m, present);
        });
}

const PageTable &
VirtualMachine::shadowTable(const Process &guest_proc) const
{
    auto it = shadows_.find(guest_proc.pid());
    contig_assert(it != shadows_.end(),
                  "shadow paging not enabled for pid %u",
                  guest_proc.pid());
    return *it->second;
}

std::optional<Mapping>
VirtualMachine::nestedLookup(Pfn gfn) const
{
    auto m = backing_->pageTable().lookup(hostVpnFor(gfn));
    if (!m || !m->valid())
        return std::nullopt;
    // Adjust to the exact frame inside a huge host mapping.
    Mapping exact = *m;
    const Vpn leaf_base = hostVpnFor(gfn) & ~(pagesInOrder(m->order) - 1);
    exact.pfn = m->pfn + (hostVpnFor(gfn) - leaf_base);
    return exact;
}

void
VirtualMachine::nestedWalk(Pfn gfn, WalkTrace &trace) const
{
    backing_->pageTable().walk(hostVpnFor(gfn), trace);
    if (trace.hit) {
        const Vpn vpn = hostVpnFor(gfn);
        const Vpn leaf_base =
            vpn & ~(pagesInOrder(trace.mapping.order) - 1);
        trace.mapping.pfn += vpn - leaf_base;
    }
}

} // namespace contig
