/**
 * @file
 * Set-associative TLB with LRU replacement, page-size aware. Models
 * the L1 DTLBs (separate 4 KiB / 2 MiB arrays) and the unified L2
 * STLB of the evaluation machine (Table II), scaled per DESIGN.md so
 * that footprint/TLB-reach stays in the paper's regime.
 */

#ifndef CONTIG_TLB_TLB_HH
#define CONTIG_TLB_TLB_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace contig
{

namespace obs { class MetricSink; }

class Serializer;
class Deserializer;

/** Geometry of one TLB array. */
struct TlbConfig
{
    unsigned sets = 4;
    unsigned ways = 4;
};

/** Hit/miss counters of one TLB array. */
struct TlbStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;
};

/**
 * One TLB array holding entries of a single page order (0 or
 * kHugeOrder). Tags are the order-aligned vpn.
 */
class Tlb
{
  public:
    Tlb(const TlbConfig &cfg, unsigned page_order);

    /** True (and LRU updated) iff the page covering vpn is present. */
    bool lookup(Vpn vpn);

    /** Probe without statistics or LRU update. */
    bool probe(Vpn vpn) const;

    /** Insert the page covering vpn, evicting LRU if needed. */
    void fill(Vpn vpn);

    void flush();

    unsigned pageOrder() const { return pageOrder_; }
    unsigned entries() const { return cfg_.sets * cfg_.ways; }
    const TlbStats &stats() const { return stats_; }

    /** Report hit/miss counters into a metric sink. */
    void collectMetrics(obs::MetricSink &sink) const;

    /**
     * Checkpoint this array: geometry (verified on restore), clock,
     * stats and every entry. restoreState into a same-geometry array
     * reproduces lookup/evict behaviour exactly.
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    struct Entry
    {
        Vpn tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    Vpn tagOf(Vpn vpn) const;
    unsigned setOf(Vpn vpn) const;

    TlbConfig cfg_;
    unsigned pageOrder_;
    std::vector<Entry> entries_; // sets * ways, row-major by set
    std::uint64_t clock_ = 0;
    TlbStats stats_;
};

/** Geometry of the full data-TLB hierarchy. */
struct TlbHierConfig
{
    TlbConfig l1_4k{4, 4};  //!< 16 entries
    TlbConfig l1_2m{2, 4};  //!< 8 entries
    TlbConfig l2{2, 6};     //!< 12 entries, unified
};

/** Where an access was satisfied. */
enum class TlbLevel : std::uint8_t { L1, L2, Miss };

/**
 * Two-level hierarchy: L1 split by page size, unified L2. On an L2
 * miss the caller performs the walk and calls fill().
 */
class TlbHierarchy
{
  public:
    explicit TlbHierarchy(const TlbHierConfig &cfg = {});

    /** Look up the translation for vpn at the given page order. */
    TlbLevel access(Vpn vpn, unsigned order);

    /** Install a translation after a walk (L1 + L2). */
    void fill(Vpn vpn, unsigned order);

    void flush();

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t l2Misses() const { return l2Misses_; }

    /** Report per-array + hierarchy counters into a metric sink. */
    void collectMetrics(obs::MetricSink &sink) const;

    /** Checkpoint the whole hierarchy (all four arrays + counters). */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

    const Tlb &l1For(unsigned order) const
    { return order == kHugeOrder ? l1_2m_ : l1_4k_; }
    const Tlb &l2_4k() const { return l2_4k_; }
    const Tlb &l2_2m() const { return l2_2m_; }

  private:
    Tlb l1_4k_;
    Tlb l1_2m_;
    // The unified L2 is modelled as two arrays sharing one budget:
    // sets*ways entries for each page size would double the reach, so
    // each array gets half the ways.
    Tlb l2_4k_;
    Tlb l2_2m_;
    std::uint64_t accesses_ = 0;
    std::uint64_t l2Misses_ = 0;
};

} // namespace contig

#endif // CONTIG_TLB_TLB_HH
