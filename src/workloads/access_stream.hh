/**
 * @file
 * Chunked access-stream generator. The replay engine does not pull
 * accesses one at a time — each pull was a virtual call into the
 * workload plus RNG state threading. AccessStream drains the
 * workload's steady-state generator into fixed-size contiguous
 * MemAccess buffers, so the consumer sees plain arrays and the
 * workload's virtual dispatch happens once per chunk
 * (Workload::fillAccesses).
 *
 * Determinism: the stream owns its own Rng seeded at construction and
 * produces exactly the sequence `wl.nextAccess(rng)` would — chunk
 * boundaries never change what is generated, only how it is batched.
 */

#ifndef CONTIG_WORKLOADS_ACCESS_STREAM_HH
#define CONTIG_WORKLOADS_ACCESS_STREAM_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "tlb/translation_sim.hh"

namespace contig
{

class Workload;

class AccessStream
{
  public:
    /** Default chunk: 4096 accesses (64 KiB of MemAccess, L2-sized). */
    static constexpr std::uint64_t kDefaultChunk = 4096;

    /**
     * Stream `total` accesses from `wl`, `chunk_accesses` at a time
     * (0 means kDefaultChunk). The final chunk may be short.
     */
    AccessStream(Workload &wl, std::uint64_t total, std::uint64_t seed,
                 std::uint64_t chunk_accesses = kDefaultChunk);

    /**
     * Generate the next chunk into the internal buffer. Returns its
     * size (0 when the stream is exhausted) and points `chunk` at the
     * buffer, which stays valid until the next call.
     */
    std::size_t next(const MemAccess *&chunk);

    /** Accesses generated so far. */
    std::uint64_t produced() const { return produced_; }
    std::uint64_t total() const { return total_; }
    std::uint64_t chunkAccesses() const { return buf_.size(); }
    bool done() const { return produced_ == total_; }

  private:
    Workload &wl_;
    Rng rng_;
    std::uint64_t total_;
    std::uint64_t produced_ = 0;
    std::vector<MemAccess> buf_;
};

} // namespace contig

#endif // CONTIG_WORKLOADS_ACCESS_STREAM_HH
