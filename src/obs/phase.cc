#include "obs/phase.hh"

#include "obs/metrics.hh"

namespace contig
{
namespace obs
{

Phase
Phase::bind(MetricRegistry &reg, std::string_view name)
{
    std::string base = "phase.";
    base += name;
    Summary &wall = reg.summary(base + ".wall_us");
    Summary &cyc = reg.summary(base + ".cycles");
    return Phase(TraceSink::global().intern(name), &wall, &cyc);
}

} // namespace obs
} // namespace contig
