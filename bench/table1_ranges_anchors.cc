/**
 * @file
 * Reproduces Table I: the number of vRMM ranges and vHC anchor
 * entries needed to map 99 % of each workload's footprint in
 * virtualized execution, under (i) default THP and (ii) CA paging in
 * both guest and host. Workloads run consecutively in one VM, as in
 * the paper.
 * Expected shape: CA cuts ranges from thousands to tens; vHC needs
 * far more entries than vRMM under CA (alignment restrictions —
 * the paper reports ~38x).
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"
#include "ranges/ranges.hh"

using namespace contig;

namespace
{

struct Row
{
    std::uint64_t ranges = 0;
    std::uint64_t anchors = 0;
};

std::vector<Row>
measure(PolicyKind kind)
{
    VirtSystem sys(kind, kind, 7);
    std::vector<Row> rows;
    for (const auto &name : paperWorkloads()) {
        auto wl = makeWorkload(name, {1.0, 7});
        Process &proc = sys.guest().createProcess(name);
        wl->setup(proc);
        auto segs = extract2d(proc, sys.vm());
        rows.push_back(Row{rangesFor99(segs), vhcEntriesFor99(segs)});
        wl->teardown();
        sys.guest().exitProcess(proc);
    }
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("table1_ranges_anchors", argc, argv);

    auto thp = measure(PolicyKind::Thp);
    auto ca = measure(PolicyKind::Ca);

    Report rep("Table I — entries to map 99% of footprint, "
               "virtualized (2-D mappings)");
    rep.header({"workload", "footprint", "THP ranges", "THP vHC",
                "CA ranges", "CA vHC"});
    std::vector<double> gr_thp, gh_thp, gr_ca, gh_ca;
    for (std::size_t i = 0; i < paperWorkloads().size(); ++i) {
        auto wl = makeWorkload(paperWorkloads()[i], {1.0, 7});
        rep.row({paperWorkloads()[i],
                 Report::bytes(wl->footprintBytes()),
                 std::to_string(thp[i].ranges),
                 std::to_string(thp[i].anchors),
                 std::to_string(ca[i].ranges),
                 std::to_string(ca[i].anchors)});
        gr_thp.push_back(std::max<double>(thp[i].ranges, 1));
        gh_thp.push_back(std::max<double>(thp[i].anchors, 1));
        gr_ca.push_back(std::max<double>(ca[i].ranges, 1));
        gh_ca.push_back(std::max<double>(ca[i].anchors, 1));
    }
    rep.row({"geomean", "-", Report::num(geomean(gr_thp), 0),
             Report::num(geomean(gh_thp), 0),
             Report::num(geomean(gr_ca), 0),
             Report::num(geomean(gh_ca), 0)});
    out.add(rep);
    rep.print();

    std::printf("\npaper: THP needs thousands of ranges; CA tens "
                "(svm 10, pagerank 11, hashjoin 7, xsbench 11, "
                "bt 931); CA vHC anchors ~38x CA ranges\n");
    out.write();
    return 0;
}
