/**
 * @file
 * Reproduces Fig. 7: contiguity performance without memory pressure,
 * native execution. For each workload and each allocation technique
 * (default THP, Ingens, CA paging, eager paging, translation ranger,
 * ideal paging) reports the time-averaged coverage of the 32 and 128
 * largest contiguous mappings and the number of mappings covering
 * 99 % of the footprint.
 * Expected shape: THP/Ingens need thousands of mappings; CA ~ eager ~
 * ideal (tens); ranger between; CA covers ~99 % with ~27 mappings on
 * average.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"

using namespace contig;

namespace
{

const std::vector<PolicyKind> kPolicies{
    PolicyKind::Thp,   PolicyKind::Ingens, PolicyKind::Ca,
    PolicyKind::Eager, PolicyKind::Ranger, PolicyKind::Ideal};

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("fig07_native_contiguity", argc, argv);

    Report rep("Fig. 7 — native contiguity, no memory pressure "
               "(time-averaged)");
    rep.header({"workload", "policy", "cov32", "cov128", "maps-for-99%"});

    std::map<PolicyKind, std::vector<double>> g32, g128, g99;
    for (const auto &name : paperWorkloads()) {
        for (PolicyKind kind : kPolicies) {
            NativeSystem sys(kind, 7);
            auto wl = makeWorkload(name, {1.0, 7});
            auto r = sys.run(*wl);
            rep.row({name, policyName(kind), Report::pct(r.avg.cov32),
                     Report::pct(r.avg.cov128),
                     std::to_string(r.avg.mappingsFor99)});
            g32[kind].push_back(r.avg.cov32);
            g128[kind].push_back(r.avg.cov128);
            g99[kind].push_back(
                static_cast<double>(std::max<std::uint64_t>(
                    r.avg.mappingsFor99, 1)));
            sys.finish(*wl);
        }
    }
    for (PolicyKind kind : kPolicies) {
        rep.row({"geomean", policyName(kind),
                 Report::pct(geomean(g32[kind])),
                 Report::pct(geomean(g128[kind])),
                 Report::num(geomean(g99[kind]), 1)});
    }
    out.add(rep);
    rep.print();

    std::printf("\npaper: CA ~ eager ~ ideal with tens of mappings for "
                "99%%; THP/Ingens need thousands; ranger in between; "
                "CA dips only for BT (NUMA spill)\n");
    out.write();
    return 0;
}
