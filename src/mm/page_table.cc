#include "mm/page_table.hh"

#include <algorithm>

#include "base/align.hh"
#include "base/logging.hh"
#include "base/serialize.hh"

namespace contig
{

namespace
{

/** Synthetic node frames live far beyond any real zone. */
constexpr Pfn kSyntheticBase = Pfn{1} << 52;

} // namespace

PageTable::PageTable(NodeAlloc node_alloc, NodeFree node_free,
                     unsigned levels)
    : nodeAlloc_(std::move(node_alloc)), nodeFree_(std::move(node_free)),
      levels_(levels), syntheticNext_(kSyntheticBase)
{
    contig_assert(levels == 4 || levels == 5,
                  "only 4- and 5-level radix tables are supported");
    root_ = std::make_unique<Node>(levels_, allocNodeFrame());
}

PageTable::~PageTable()
{
    if (root_)
        freeNodes(root_.get());
}

void
PageTable::freeNodes(Node *node)
{
    for (auto &slot : node->slots) {
        if (slot.child)
            freeNodes(slot.child.get());
    }
    if (nodeFree_ && node->frame < kSyntheticBase)
        nodeFree_(node->frame);
}

Pfn
PageTable::allocNodeFrame()
{
    ++stats_.nodesAllocated;
    if (nodeAlloc_)
        return nodeAlloc_();
    return syntheticNext_++;
}

unsigned
PageTable::indexAt(Vpn vpn, unsigned level)
{
    // level 4 uses the top 9 bits of the 36-bit vpn, level 1 the low 9.
    return (vpn >> (9 * (level - 1))) & (kPtFanout - 1);
}

PageTable::Node *
PageTable::ensureChild(Node *node, unsigned idx)
{
    Slot &slot = node->slots[idx];
    contig_assert(!slot.present,
                  "page-table slot already holds a leaf (level %u)",
                  node->level);
    if (!slot.child) {
        slot.child =
            std::make_unique<Node>(node->level - 1, allocNodeFrame());
    }
    return slot.child.get();
}

void
PageTable::map(Vpn vpn, Pfn pfn, unsigned order, bool writable, bool cow)
{
    contig_assert(order == 0 || order == kHugeOrder,
                  "unsupported leaf order %u", order);
    contig_assert(isAligned(vpn, pagesInOrder(order)),
                  "vpn not aligned to mapping order");
    contig_assert(isAligned(pfn, pagesInOrder(order)),
                  "pfn not aligned to mapping order");

    Node *node = root_.get();
    const unsigned leaf_level = (order == kHugeOrder) ? 2 : 1;
    while (node->level > leaf_level)
        node = ensureChild(node, indexAt(vpn, node->level));

    Slot &slot = node->slots[indexAt(vpn, node->level)];
    if (slot.child) {
        // A huge leaf may replace a child table only once the child is
        // completely empty (e.g. after promotion unmapped its 4 KiB
        // leaves).
        for (const Slot &s : slot.child->slots)
            contig_assert(!s.present && !s.child,
                          "huge mapping over live 4 KiB translations");
        freeNodes(slot.child.get());
        slot.child.reset();
    }
    contig_assert(!slot.present,
                  "mapping over an existing translation (vpn %llu)",
                  static_cast<unsigned long long>(vpn));
    slot.present = true;
    slot.leaf = Mapping{pfn, order, writable, cow, false};
    ++stats_.maps;
    if (order == kHugeOrder)
        ++stats_.mappedHugePages;
    else
        ++stats_.mappedBasePages;
    bumpGeneration();
    if (updateHook_)
        updateHook_(vpn, slot.leaf, true);
}

PageTable::Slot *
PageTable::findLeafSlot(Vpn vpn) const
{
    const Node *node = root_.get();
    while (true) {
        const Slot &slot = node->slots[indexAt(vpn, node->level)];
        if (slot.present)
            return const_cast<Slot *>(&slot);
        if (!slot.child)
            return nullptr;
        node = slot.child.get();
    }
}

void
PageTable::unmap(Vpn vpn, unsigned order)
{
    Slot *slot = findLeafSlot(vpn);
    contig_assert(slot && slot->present, "unmap of unmapped vpn");
    contig_assert(slot->leaf.order == order,
                  "unmap order mismatch (have %u want %u)",
                  slot->leaf.order, order);
    const Mapping old = slot->leaf;
    slot->present = false;
    slot->leaf = Mapping{};
    ++stats_.unmaps;
    if (order == kHugeOrder)
        --stats_.mappedHugePages;
    else
        --stats_.mappedBasePages;
    bumpGeneration();
    if (updateHook_)
        updateHook_(vpn & ~(pagesInOrder(order) - 1), old, false);
}

std::optional<Mapping>
PageTable::lookup(Vpn vpn) const
{
    const Slot *slot = findLeafSlot(vpn);
    if (!slot)
        return std::nullopt;
    return slot->leaf;
}

void
PageTable::walk(Vpn vpn, WalkTrace &trace) const
{
    trace.nodeFrames.clear();
    trace.hit = false;
    trace.mapping = Mapping{};

    const Node *node = root_.get();
    while (true) {
        trace.nodeFrames.push_back(node->frame);
        const Slot &slot = node->slots[indexAt(vpn, node->level)];
        if (slot.present) {
            trace.hit = true;
            trace.mapping = slot.leaf;
            return;
        }
        if (!slot.child)
            return;
        node = slot.child.get();
    }
}

void
PageTable::setContigBit(Vpn vpn, bool value)
{
    Slot *slot = findLeafSlot(vpn);
    contig_assert(slot && slot->present, "setContigBit on unmapped vpn");
    slot->leaf.contigBit = value;
    bumpGeneration();
    if (updateHook_) {
        const Vpn base = vpn & ~(pagesInOrder(slot->leaf.order) - 1);
        updateHook_(base, slot->leaf, true);
    }
}

void
PageTable::setWritable(Vpn vpn, bool writable, bool cow)
{
    Slot *slot = findLeafSlot(vpn);
    contig_assert(slot && slot->present, "setWritable on unmapped vpn");
    slot->leaf.writable = writable;
    slot->leaf.cow = cow;
    bumpGeneration();
    if (updateHook_) {
        const Vpn base = vpn & ~(pagesInOrder(slot->leaf.order) - 1);
        updateHook_(base, slot->leaf, true);
    }
}

void
PageTable::forEachLeafIn(
    const Node *node, Vpn base,
    const std::function<void(Vpn, const Mapping &)> &fn) const
{
    const std::uint64_t span = std::uint64_t{1} << (9 * (node->level - 1));
    for (unsigned i = 0; i < kPtFanout; ++i) {
        const Slot &slot = node->slots[i];
        const Vpn child_base = base + i * span;
        if (slot.present)
            fn(child_base, slot.leaf);
        else if (slot.child)
            forEachLeafIn(slot.child.get(), child_base, fn);
    }
}

void
PageTable::forEachLeaf(
    const std::function<void(Vpn, const Mapping &)> &fn) const
{
    forEachLeafIn(root_.get(), 0, fn);
}

void
PageTable::forEachLeafInRange(
    const Node *node, Vpn base, Vpn start, Vpn end,
    const std::function<void(Vpn, const Mapping &)> &fn) const
{
    const std::uint64_t span = std::uint64_t{1} << (9 * (node->level - 1));
    unsigned i = start > base ? static_cast<unsigned>((start - base) / span)
                              : 0;
    for (; i < kPtFanout; ++i) {
        const Vpn child_base = base + i * span;
        if (child_base >= end)
            return;
        const Slot &slot = node->slots[i];
        if (slot.present)
            fn(child_base, slot.leaf);
        else if (slot.child)
            forEachLeafInRange(slot.child.get(), child_base, start, end, fn);
    }
}

void
PageTable::forEachLeafIn(
    Vpn start, Vpn end,
    const std::function<void(Vpn, const Mapping &)> &fn) const
{
    if (start < end)
        forEachLeafInRange(root_.get(), 0, start, end, fn);
}

Vpn
PageTable::findMappedInNode(const Node *node, Vpn base, Vpn start,
                            Vpn end) const
{
    const std::uint64_t span = std::uint64_t{1} << (9 * (node->level - 1));
    unsigned i = start > base ? static_cast<unsigned>((start - base) / span)
                              : 0;
    for (; i < kPtFanout; ++i) {
        const Vpn child_base = base + i * span;
        if (child_base >= end)
            break;
        const Slot &slot = node->slots[i];
        if (slot.present)
            return std::max(start, child_base);
        if (slot.child) {
            const Vpn hit = findMappedInNode(slot.child.get(), child_base,
                                             start, end);
            if (hit < end)
                return hit;
        }
    }
    return end;
}

Vpn
PageTable::findMappedIn(Vpn start, Vpn end) const
{
    if (start >= end)
        return end;
    return findMappedInNode(root_.get(), 0, start, end);
}

void
PageTable::ensureSpine(Vpn start, Vpn end)
{
    // One level-1 node per 2 MiB region intersecting the range.
    const std::uint64_t l1_span = std::uint64_t{1} << 9;
    for (Vpn v = start & ~(l1_span - 1); v < end; v += l1_span) {
        Node *node = root_.get();
        while (node->level > 1)
            node = ensureChild(node, indexAt(v, node->level));
    }
}

void
PageTable::RunMapper::map(Vpn vpn, Pfn pfn, bool writable, bool cow)
{
    const Vpn block = vpn & ~static_cast<Vpn>(kPtFanout - 1);
    if (!l1_ || block != l1Base_) {
        Node *node = pt_.root_.get();
        while (node->level > 1)
            node = pt_.ensureChild(node, indexAt(vpn, node->level));
        l1_ = node;
        l1Base_ = block;
    }
    Slot &slot = l1_->slots[indexAt(vpn, 1)];
    contig_assert(!slot.present,
                  "mapping over an existing translation (vpn %llu)",
                  static_cast<unsigned long long>(vpn));
    slot.present = true;
    slot.leaf = Mapping{pfn, 0, writable, cow, false};
    ++pt_.stats_.maps;
    ++pt_.stats_.mappedBasePages;
    pt_.bumpGeneration();
    if (pt_.updateHook_)
        pt_.updateHook_(vpn, slot.leaf, true);
}

Pfn
PageTable::rootFrame() const
{
    return root_->frame;
}


void
PageTable::saveState(Serializer &s) const
{
    const std::size_t sec = s.beginSection(sectionTag('P', 'G', 'T', 'B'));
    s.u32(levels_);
    s.u64(generation());
    s.u64(stats_.maps.load(std::memory_order_relaxed));
    s.u64(stats_.unmaps.load(std::memory_order_relaxed));
    s.u64(stats_.nodesAllocated.load(std::memory_order_relaxed));
    s.u64(stats_.mappedBasePages.load(std::memory_order_relaxed));
    s.u64(stats_.mappedHugePages.load(std::memory_order_relaxed));
    std::vector<std::pair<Vpn, Mapping>> leaves;
    forEachLeaf([&leaves](Vpn vpn, const Mapping &m) {
        leaves.emplace_back(vpn, m);
    });
    s.u64(leaves.size());
    for (const auto &[vpn, m] : leaves) {
        s.u64(vpn);
        s.u64(m.pfn);
        s.u32(m.order);
        s.boolean(m.writable);
        s.boolean(m.cow);
        s.boolean(m.contigBit);
    }
    s.endSection(sec);
}

} // namespace contig
