/**
 * @file
 * contig_inspect: the observatory's offline consumer. Reads the
 * delta-encoded JSONL timelines `--timeline` produces and the bench
 * `--json` documents, and answers the questions the live run cannot:
 *
 *   series <timeline>             fragmentation/contiguity time series
 *                                 per stream (free pages, FMFI,
 *                                 clusters, largest cluster, coverage)
 *   top <timeline> [--top N]      the top contiguity losers between
 *                                 the first and last capture: VMAs by
 *                                 max-run shrink, zones by FMFI growth
 *   diff <timeline> A B           key-level diff between captures with
 *                                 seq A and B (--stream selects one)
 *   check-baseline CUR BASE       compare a bench --json document
 *                                 against a committed baseline with
 *                                 per-metric tolerances; exits 1 on
 *                                 regression (wall-clock metrics are
 *                                 skipped — they are not deterministic)
 */

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "base/json.hh"
#include "obs/snapshot.hh"
#include "workloads/ctrace.hh"

using namespace contig;

namespace
{

int gExitCode = 0;

void
complain(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::fputs("contig_inspect: ", stderr);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
    gExitCode = 1;
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "contig_inspect: %s\n", msg.c_str());
    std::exit(2);
}

// --- timeline loading -----------------------------------------------------

/** One capture, reconstructed (deltas applied). */
struct Capture
{
    std::uint64_t seq = 0;
    std::uint64_t tick = 0;
    obs::FlatSnap state;
};

struct Stream
{
    std::uint64_t id = 0;
    std::string domain;
    std::vector<Capture> captures;
};

std::vector<Stream>
loadTimeline(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        die("cannot open timeline '" + path + "'");

    std::map<std::uint64_t, Stream> streams;
    std::string line, err;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        auto rec = obs::decodeTimelineRecord(line, &err);
        if (!rec)
            die(path + ":" + std::to_string(lineno) + ": " + err);
        Stream &s = streams[rec->stream];
        s.id = rec->stream;
        s.domain = rec->domain;
        const obs::FlatSnap prev =
            s.captures.empty() ? obs::FlatSnap{} : s.captures.back().state;
        s.captures.push_back(
            Capture{rec->seq, rec->tick, obs::applyRecord(prev, *rec)});
    }

    std::vector<Stream> out;
    out.reserve(streams.size());
    for (auto &[id, s] : streams)
        out.push_back(std::move(s));
    return out;
}

double
flatGet(const obs::FlatSnap &s, const std::string &key, double fallback)
{
    auto it = s.find(key);
    return it == s.end() ? fallback : it->second;
}

/** Sum of every zone<N>.<leaf> value present in the snapshot. */
double
zoneSum(const obs::FlatSnap &s, const std::string &leaf)
{
    double acc = 0;
    for (int n = 0;; ++n) {
        auto it = s.find("zone" + std::to_string(n) + "." + leaf);
        if (it == s.end())
            return acc;
        acc += it->second;
    }
}

/** Free-page-weighted mean FMFI across zones. */
double
meanFmfi(const obs::FlatSnap &s)
{
    double pages = 0, acc = 0;
    for (int n = 0;; ++n) {
        const std::string z = "zone" + std::to_string(n) + ".";
        auto fp = s.find(z + "free_pages");
        if (fp == s.end())
            break;
        pages += fp->second;
        acc += fp->second * flatGet(s, z + "fmfi", 0);
    }
    return pages > 0 ? acc / pages : 0;
}

double
maxLargest(const obs::FlatSnap &s)
{
    double best = 0;
    for (int n = 0;; ++n) {
        auto it = s.find("zone" + std::to_string(n) + ".largest_pages");
        if (it == s.end())
            return best;
        best = std::max(best, it->second);
    }
}

// --- series ---------------------------------------------------------------

int
cmdSeries(const std::vector<Stream> &streams, long only_stream)
{
    for (const Stream &s : streams) {
        if (only_stream >= 0 &&
            s.id != static_cast<std::uint64_t>(only_stream))
            continue;
        std::printf("stream %" PRIu64 "  [%s]  (%zu captures)\n", s.id,
                    s.domain.c_str(), s.captures.size());
        std::printf("%8s %10s %12s %8s %9s %12s %8s %8s %8s\n", "seq",
                    "tick", "free_pages", "fmfi", "clusters",
                    "largest_pgs", "cov32", "cov128", "maps99");
        for (const Capture &c : s.captures) {
            std::printf(
                "%8" PRIu64 " %10" PRIu64 " %12.0f %8.4f %9.0f %12.0f",
                c.seq, c.tick, zoneSum(c.state, "free_pages"),
                meanFmfi(c.state), zoneSum(c.state, "clusters"),
                maxLargest(c.state));
            auto cov = c.state.find("cov.cov32");
            if (cov != c.state.end())
                std::printf(" %8.4f %8.4f %8.0f",
                            cov->second,
                            flatGet(c.state, "cov.cov128", 0),
                            flatGet(c.state, "cov.maps99", 0));
            std::printf("\n");
        }
        std::printf("\n");
    }
    return 0;
}

// --- top (contiguity losers) ----------------------------------------------

struct Loser
{
    std::string what;
    double before = 0;
    double after = 0;
    double loss = 0;
};

int
cmdTop(const std::vector<Stream> &streams, int top_n)
{
    std::vector<Loser> vmas, zones;
    for (const Stream &s : streams) {
        if (s.captures.size() < 2)
            continue;
        const obs::FlatSnap &first = s.captures.front().state;
        const obs::FlatSnap &last = s.captures.back().state;
        // VMAs: shrink of the longest offset run, first -> last.
        for (const auto &[key, v0] : first) {
            const bool vma = key.rfind("vma", 0) == 0 &&
                             key.size() > 8 &&
                             key.compare(key.size() - 8, 8, ".max_run") == 0;
            if (vma) {
                const double v1 = flatGet(last, key, 0);
                if (v1 < v0)
                    vmas.push_back(Loser{"[" + s.domain + "] " + key, v0,
                                         v1, v0 - v1});
            }
            // Zones: FMFI growth, first -> last.
            const bool fmfi = key.rfind("zone", 0) == 0 &&
                              key.size() > 5 &&
                              key.compare(key.size() - 5, 5, ".fmfi") == 0;
            if (fmfi) {
                const double v1 = flatGet(last, key, 0);
                if (v1 > v0)
                    zones.push_back(Loser{"[" + s.domain + "] " + key, v0,
                                          v1, v1 - v0});
            }
        }
    }
    auto by_loss = [](const Loser &a, const Loser &b) {
        return a.loss > b.loss;
    };
    std::sort(vmas.begin(), vmas.end(), by_loss);
    std::sort(zones.begin(), zones.end(), by_loss);

    std::printf("top %d contiguity-losing VMAs (max offset run, pages):\n",
                top_n);
    for (int i = 0; i < top_n && i < static_cast<int>(vmas.size()); ++i)
        std::printf("  %-48s %10.0f -> %10.0f  (-%.0f)\n",
                    vmas[i].what.c_str(), vmas[i].before, vmas[i].after,
                    vmas[i].loss);
    if (vmas.empty())
        std::printf("  (none lost contiguity)\n");

    std::printf("top %d fragmenting zones (FMFI at the huge order):\n",
                top_n);
    for (int i = 0; i < top_n && i < static_cast<int>(zones.size()); ++i)
        std::printf("  %-48s %10.4f -> %10.4f  (+%.4f)\n",
                    zones[i].what.c_str(), zones[i].before, zones[i].after,
                    zones[i].loss);
    if (zones.empty())
        std::printf("  (no zone's FMFI grew)\n");
    return 0;
}

// --- diff -----------------------------------------------------------------

int
cmdDiff(const std::vector<Stream> &streams, long only_stream,
        std::uint64_t seq_a, std::uint64_t seq_b)
{
    const Capture *a = nullptr, *b = nullptr;
    const Stream *home = nullptr;
    for (const Stream &s : streams) {
        if (only_stream >= 0 &&
            s.id != static_cast<std::uint64_t>(only_stream))
            continue;
        for (const Capture &c : s.captures) {
            if (c.seq == seq_a && !a) {
                a = &c;
                home = &s;
            }
            if (c.seq == seq_b && !b && (!home || home == &s))
                b = &c;
        }
        if (a && b)
            break;
    }
    if (!a || !b)
        die("captures with seq " + std::to_string(seq_a) + " and " +
            std::to_string(seq_b) + " not found in one stream "
            "(use --stream to pick one)");

    std::printf("diff [%s] seq %" PRIu64 " (tick %" PRIu64
                ") -> seq %" PRIu64 " (tick %" PRIu64 ")\n",
                home->domain.c_str(), a->seq, a->tick, b->seq, b->tick);
    const obs::FlatDelta d = obs::diffFlat(a->state, b->state);
    for (const auto &[key, v1] : d.set) {
        auto it = a->state.find(key);
        if (it == a->state.end())
            std::printf("  + %-44s %14.6g\n", key.c_str(), v1);
        else
            std::printf("  ~ %-44s %14.6g -> %-14.6g (%+.6g)\n",
                        key.c_str(), it->second, v1, v1 - it->second);
    }
    for (const std::string &key : d.del)
        std::printf("  - %-44s (was %.6g)\n", key.c_str(),
                    flatGet(a->state, key, 0));
    if (d.set.empty() && d.del.empty())
        std::printf("  (identical)\n");
    return 0;
}

// --- check-baseline -------------------------------------------------------

JsonValue
loadJsonDoc(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        die("cannot open '" + path + "'");
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::string err;
    auto doc = JsonValue::parse(text, &err);
    if (!doc)
        die(path + ": " + err);
    return std::move(*doc);
}

bool
numbersClose(double cur, double base, double rel_tol)
{
    if (cur == base)
        return true;
    const double mag = std::max(std::fabs(cur), std::fabs(base));
    return std::fabs(cur - base) <= rel_tol * mag + 1e-12;
}

/** Wall-clock metrics vary run to run; never gate on them. That is
 *  the phase timers plus the concurrency-observatory accounting:
 *  worker/shard busy/stall/wait times, barrier skew, and the whole
 *  lock.* contention group (counts depend on scheduling). */
bool
ignoredMetric(const std::string &path)
{
    static const char *const suffixes[] = {
        ".wall_us", ".busy_us", ".stall_us", ".wait_us",
        ".spin_us", ".skew_us",
    };
    for (const char *suffix : suffixes) {
        const std::size_t n = std::strlen(suffix);
        if (path.size() >= n &&
            path.compare(path.size() - n, n, suffix) == 0)
            return true;
    }
    return path.rfind("metrics.lock.", 0) == 0;
}

void
compareJson(const std::string &path, const JsonValue &cur,
            const JsonValue &base, double rel_tol)
{
    if (ignoredMetric(path))
        return;
    if (base.isNumber()) {
        if (!cur.isNumber())
            complain("%s: number in baseline, %s now", path.c_str(),
                     cur.isString() ? "string" : "non-number");
        else if (!numbersClose(cur.asNumber(), base.asNumber(), rel_tol))
            complain("%s: %.9g deviates from baseline %.9g "
                     "(rel tol %.1g)",
                     path.c_str(), cur.asNumber(), base.asNumber(),
                     rel_tol);
    } else if (base.isString()) {
        if (!cur.isString() || cur.asString() != base.asString())
            complain("%s: '%s' != baseline '%s'", path.c_str(),
                     cur.isString() ? cur.asString().c_str() : "?",
                     base.asString().c_str());
    } else if (base.isArray()) {
        if (!cur.isArray() ||
            cur.array().size() != base.array().size()) {
            complain("%s: array shape changed (%zu vs baseline %zu)",
                     path.c_str(),
                     cur.isArray() ? cur.array().size() : 0,
                     base.array().size());
            return;
        }
        for (std::size_t i = 0; i < base.array().size(); ++i)
            compareJson(path + "[" + std::to_string(i) + "]",
                        cur.array()[i], base.array()[i], rel_tol);
    } else if (base.isObject()) {
        if (!cur.isObject()) {
            complain("%s: object in baseline, not in current",
                     path.c_str());
            return;
        }
        for (const auto &[key, bval] : base.members()) {
            const JsonValue *cval = cur.find(key);
            if (!cval) {
                if (!ignoredMetric(path + "." + key))
                    complain("%s.%s: present in baseline, missing now",
                             path.c_str(), key.c_str());
                continue;
            }
            compareJson(path + "." + key, *cval, bval, rel_tol);
        }
    } else if (base.isBool()) {
        if (!cur.isBool() || cur.asBool() != base.asBool())
            complain("%s: bool changed vs baseline", path.c_str());
    }
}

int
cmdCheckBaseline(const std::string &cur_path, const std::string &base_path,
                 double row_tol, double metric_tol)
{
    const JsonValue cur = loadJsonDoc(cur_path);
    const JsonValue base = loadJsonDoc(base_path);

    const JsonValue *cb = cur.find("bench"), *bb = base.find("bench");
    if (!cb || !bb || !cb->isString() || !bb->isString() ||
        cb->asString() != bb->asString())
        complain("bench name mismatch ('%s' vs baseline '%s')",
                 cb && cb->isString() ? cb->asString().c_str() : "?",
                 bb && bb->isString() ? bb->asString().c_str() : "?");

    if (cur.numberOr("schema_version", 0) <
        base.numberOr("schema_version", 0))
        complain("schema_version went backwards (%g vs baseline %g)",
                 cur.numberOr("schema_version", 0),
                 base.numberOr("schema_version", 0));

    // Rows are the published figures — tightest tolerance.
    const JsonValue *crows = cur.find("rows"), *brows = base.find("rows");
    if (!crows || !brows || !crows->isArray() || !brows->isArray()) {
        complain("missing 'rows' array");
    } else if (crows->array().size() != brows->array().size()) {
        complain("row count changed: %zu vs baseline %zu",
                 crows->array().size(), brows->array().size());
    } else {
        for (std::size_t i = 0; i < brows->array().size(); ++i)
            compareJson("rows[" + std::to_string(i) + "]",
                        crows->array()[i], brows->array()[i], row_tol);
    }

    // Metrics may legitimately gain keys; losing or moving one is the
    // regression. Wall-clock timers are skipped inside compareJson.
    const JsonValue *cm = cur.find("metrics"), *bm = base.find("metrics");
    if (!cm || !bm || !cm->isObject() || !bm->isObject())
        complain("missing 'metrics' object");
    else
        compareJson("metrics", *cm, *bm, metric_tol);

    if (gExitCode == 0)
        std::printf("check-baseline: OK: %s matches %s\n",
                    cur_path.c_str(), base_path.c_str());
    else
        std::fprintf(stderr,
                     "check-baseline: FAIL: %s regressed vs %s\n",
                     cur_path.c_str(), base_path.c_str());
    return gExitCode;
}

/**
 * trace-info: dump a .ctrace container — header fields, per-chunk
 * access counts and the achieved compression ratio. CtraceReader's
 * construction-time validation handles bad files: a wrong magic,
 * version or CRC is a fatal() (non-zero exit) naming the problem.
 */
int
cmdTraceInfo(const std::string &path, bool chunks)
{
    CtraceReader r(path);
    const std::uint64_t raw =
        r.totalAccesses() * sizeof(MemAccess);
    std::uint64_t encoded = 0;
    for (std::uint64_t k = 0; k < r.chunkCount(); ++k)
        encoded += r.chunkEncodedBytes(k);
    std::printf("file:            %s\n", r.path().c_str());
    std::printf("version:         %u\n", r.version());
    std::printf("config digest:   %016" PRIx64 "\n", r.configDigest());
    std::printf("total accesses:  %" PRIu64 "\n", r.totalAccesses());
    std::printf("chunk accesses:  %" PRIu64 "\n", r.chunkAccesses());
    std::printf("chunks:          %" PRIu64 "\n", r.chunkCount());
    std::printf("file bytes:      %" PRIu64 "\n", r.fileBytes());
    std::printf("encoded bytes:   %" PRIu64 "\n", encoded);
    std::printf("raw bytes:       %" PRIu64 " (%zu B/access)\n", raw,
                sizeof(MemAccess));
    std::printf("compression:     %.2fx (%.2f bytes/access)\n",
                encoded ? static_cast<double>(raw) / encoded : 0.0,
                r.totalAccesses()
                    ? static_cast<double>(encoded) / r.totalAccesses()
                    : 0.0);
    if (chunks) {
        std::printf("%8s %12s %12s\n", "chunk", "accesses", "bytes");
        for (std::uint64_t k = 0; k < r.chunkCount(); ++k)
            std::printf("%8" PRIu64 " %12u %12u\n", k,
                        r.chunkAccessCount(k), r.chunkEncodedBytes(k));
    }
    return 0;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: contig_inspect <command> [options]\n"
        "  series <timeline.jsonl> [--stream N]\n"
        "  top <timeline.jsonl> [--top N] \n"
        "  diff <timeline.jsonl> <seqA> <seqB> [--stream N]\n"
        "  check-baseline <current.json> <baseline.json>\n"
        "      [--row-tol R (1e-6)] [--metric-tol M (1e-4)]\n"
        "  trace-info <file.ctrace> [--chunks]\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];

    std::vector<std::string> pos;
    long stream = -1;
    int top_n = 10;
    bool chunks = false;
    double row_tol = 1e-6, metric_tol = 1e-4;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_next = i + 1 < argc;
        if (arg == "--stream" && has_next)
            stream = std::strtol(argv[++i], nullptr, 10);
        else if (arg == "--chunks")
            chunks = true;
        else if (arg == "--top" && has_next)
            top_n = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
        else if (arg == "--row-tol" && has_next)
            row_tol = std::strtod(argv[++i], nullptr);
        else if (arg == "--metric-tol" && has_next)
            metric_tol = std::strtod(argv[++i], nullptr);
        else if (!arg.empty() && arg[0] == '-')
            usage();
        else
            pos.push_back(arg);
    }

    if (cmd == "series" && pos.size() == 1)
        return cmdSeries(loadTimeline(pos[0]), stream);
    if (cmd == "top" && pos.size() == 1)
        return cmdTop(loadTimeline(pos[0]), top_n);
    if (cmd == "diff" && pos.size() == 3)
        return cmdDiff(loadTimeline(pos[0]), stream,
                       std::strtoull(pos[1].c_str(), nullptr, 10),
                       std::strtoull(pos[2].c_str(), nullptr, 10));
    if (cmd == "check-baseline" && pos.size() == 2)
        return cmdCheckBaseline(pos[0], pos[1], row_tol, metric_tol);
    if (cmd == "trace-info" && pos.size() == 1)
        return cmdTraceInfo(pos[0], chunks);
    usage();
}
