#include "workloads/access_stream.hh"

#include <algorithm>

#include "base/logging.hh"
#include "workloads/ctrace.hh"
#include "workloads/workloads.hh"

namespace contig
{

AccessStream::AccessStream(Workload &wl, std::uint64_t total,
                           std::uint64_t seed,
                           std::uint64_t chunk_accesses)
    : wl_(wl), rng_(seed), total_(total),
      buf_(chunk_accesses ? chunk_accesses : kDefaultChunk)
{
}

std::size_t
AccessStream::next(const MemAccess *&chunk)
{
    contig_assert(produced_ <= total_, "stream overran its total");
    const std::uint64_t left = total_ - produced_;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(left, buf_.size()));
    if (n) {
        wl_.fillAccesses(rng_, buf_.data(), n);
        if (writer_)
            writer_->appendChunk(buf_.data(), n);
    }
    produced_ += n;
    if (writer_ && produced_ == total_) {
        // The stream drained: seal the capture (idempotent) so even a
        // caller that never touches the writer leaves a valid file.
        writer_->finish();
    }
    chunk = buf_.data();
    return n;
}

} // namespace contig
