/**
 * @file
 * Contiguity-Aware (CA) paging — the paper's software contribution
 * (§III). A drop-in AllocationPolicy that steers demand-paging
 * allocations so contiguous virtual pages land on contiguous physical
 * frames:
 *
 *  - first fault of a VMA: next-fit placement over the per-zone
 *    contiguity_map, keyed by the VMA size; the faulting page gets the
 *    start of the chosen free region and the resulting Offset
 *    (vpn - pfn) is recorded in the vma;
 *  - later faults: the nearest recorded Offset names a target frame;
 *    if the target is free it is carved out of the buddy allocator
 *    (extending the contiguous mapping), otherwise huge faults trigger
 *    a sub-VMA re-placement keyed by the remaining unmapped size and
 *    4 KiB faults fall back to the default allocation path;
 *  - page-cache readahead allocations get the same treatment with one
 *    Offset per file;
 *  - after each successful allocation the policy maintains the PTE
 *    contiguity bits that gate SpOT's prediction-table fills
 *    (§IV-C "Preventing thrashing").
 */

#ifndef CONTIG_POLICIES_CA_PAGING_HH
#define CONTIG_POLICIES_CA_PAGING_HH

#include <atomic>
#include <cstdint>

#include "base/lock_stats.hh"
#include "mm/policy.hh"
#include "mm/process.hh"

namespace contig
{

/** Tunables of CA paging (the defaults follow the paper). */
struct CaPagingConfig
{
    /**
     * Minimum contiguous run (in base pages) before PTEs get the
     * contiguity bit (the paper empirically uses 32).
     */
    std::uint64_t markThresholdPages = 32;
    /** Maintain PTE contiguity bits at all (off for pure-SW studies). */
    bool markContigBits = true;
    /** Modelled cost of one contiguity-map scan step. */
    Cycles cyclesPerScanStep = 25;
    /** Modelled fixed cost of one placement decision. */
    Cycles placementBaseCycles = 150;
};

/**
 * Observable CA paging behaviour (tests + benches). Atomic because
 * allocate() runs concurrently on fault threads.
 */
struct CaPagingStats
{
    std::atomic<std::uint64_t> placements{0};  //!< first-fault placements
    /** Re-placements after failures. */
    std::atomic<std::uint64_t> subVmaPlacements{0};
    std::atomic<std::uint64_t> offsetHits{0};  //!< target free and taken
    std::atomic<std::uint64_t> offsetMisses{0}; //!< target occupied/invalid
    std::atomic<std::uint64_t> fallbacks{0};   //!< 4 KiB default fallbacks
    std::atomic<std::uint64_t> filePlacements{0};
    std::atomic<std::uint64_t> markedPtes{0};  //!< contiguity bits set
    /** Targets taken only after contiguity-aware reclaim evicted the
     *  occupants (reclaim kernels with contigAwareReclaim only). */
    std::atomic<std::uint64_t> reclaimTakes{0};
};

class CaPagingPolicy : public AllocationPolicy
{
  public:
    explicit CaPagingPolicy(const CaPagingConfig &cfg = {});

    std::string name() const override { return "ca-paging"; }

    AllocResult allocate(Kernel &kernel, Process &proc, Vma &vma,
                         Vpn vpn, unsigned order) override;

    AllocResult allocateFilePage(Kernel &kernel, File &file,
                                 std::uint64_t file_page) override;

    bool steersFilePlacement() const override { return true; }

    void onMapped(Kernel &kernel, Process &proc, Vma &vma, Vpn vpn,
                  Pfn pfn, unsigned order) override;

    const CaPagingStats &stats() const { return stats_; }
    const CaPagingConfig &config() const { return cfg_; }

    void collectMetrics(obs::MetricSink &sink) const override;

  protected:
    /**
     * Run a placement decision: next-fit over the contiguity maps
     * (home node first), allocate the region's first block at `order`,
     * and return it. req_pages is the placement key; `owner`
     * identifies the requester (VMA id, or kCaFileOwner for files) so
     * reservation-aware subclasses can scope their claims. The base
     * implementation ignores it (best-effort, as in the paper).
     */
    virtual AllocResult place(Kernel &kernel, NodeId home,
                              std::uint64_t req_pages, unsigned order,
                              std::uint64_t owner);

    /** Try to take the exact block [target, target+2^order). */
    bool takeTarget(Kernel &kernel, Pfn target, unsigned order);

    /** Owner key used for page-cache placements. */
    static constexpr std::uint64_t kCaFileOwner = ~std::uint64_t{0};

    /** Globally unique placement-owner key for a process's VMA. */
    static std::uint64_t
    placementOwner(const Process &proc, const Vma &vma)
    {
        return (static_cast<std::uint64_t>(proc.pid()) << 32) |
               vma.id();
    }

    CaPagingStats stats_;

    /**
     * "vma.replacement" contention site (nullptr when lock stats are
     * off): the CAS replacement guard is lock-free, so winners count
     * as acquisitions and beaten threads as contended, with their
     * fast-path retry rounds under retries.
     */
    LockSite *replacementSite_ = nullptr;

  private:
    CaPagingConfig cfg_;
};

} // namespace contig

#endif // CONTIG_POLICIES_CA_PAGING_HH
