# Empty compiler generated dependencies file for fig08_fragmentation.
# This may be replaced when dependencies are built.
