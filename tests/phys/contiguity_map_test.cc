#include <gtest/gtest.h>

#include "phys/contiguity_map.hh"

using namespace contig;

namespace
{

constexpr std::uint64_t kBlock = pagesInOrder(kMaxOrder); // 2048 pages

} // namespace

TEST(ContiguityMap, EmptyPlacementFails)
{
    ContiguityMap map(kBlock);
    EXPECT_FALSE(map.placeNextFit(1));
    EXPECT_FALSE(map.placeBestFit(1));
    EXPECT_FALSE(map.largest());
    EXPECT_EQ(map.clusterCount(), 0u);
}

TEST(ContiguityMap, SingleBlock)
{
    ContiguityMap map(kBlock);
    map.onBlockFree(0);
    EXPECT_EQ(map.clusterCount(), 1u);
    EXPECT_EQ(map.freePagesTracked(), kBlock);
    auto c = map.placeNextFit(kBlock);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->startPfn, 0u);
    EXPECT_EQ(c->pages, kBlock);
}

TEST(ContiguityMap, AdjacentBlocksMerge)
{
    ContiguityMap map(kBlock);
    map.onBlockFree(0);
    map.onBlockFree(kBlock);
    map.onBlockFree(3 * kBlock); // not adjacent
    EXPECT_EQ(map.clusterCount(), 2u);
    auto c = map.largest();
    ASSERT_TRUE(c);
    EXPECT_EQ(c->startPfn, 0u);
    EXPECT_EQ(c->pages, 2 * kBlock);
    EXPECT_TRUE(map.checkInvariants());
}

TEST(ContiguityMap, MergeBothSides)
{
    ContiguityMap map(kBlock);
    map.onBlockFree(0);
    map.onBlockFree(2 * kBlock);
    EXPECT_EQ(map.clusterCount(), 2u);
    map.onBlockFree(kBlock); // bridges the gap
    EXPECT_EQ(map.clusterCount(), 1u);
    EXPECT_EQ(map.largest()->pages, 3 * kBlock);
    EXPECT_TRUE(map.checkInvariants());
}

TEST(ContiguityMap, RemoveSplitsCluster)
{
    ContiguityMap map(kBlock);
    for (int i = 0; i < 5; ++i)
        map.onBlockFree(i * kBlock);
    EXPECT_EQ(map.clusterCount(), 1u);
    map.onBlockAllocated(2 * kBlock); // middle of the cluster
    EXPECT_EQ(map.clusterCount(), 2u);
    auto snap = map.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].startPfn, 0u);
    EXPECT_EQ(snap[0].pages, 2 * kBlock);
    EXPECT_EQ(snap[1].startPfn, 3 * kBlock);
    EXPECT_EQ(snap[1].pages, 2 * kBlock);
    EXPECT_TRUE(map.checkInvariants());
}

TEST(ContiguityMap, RemoveAtEdgesShrinks)
{
    ContiguityMap map(kBlock);
    for (int i = 0; i < 3; ++i)
        map.onBlockFree(i * kBlock);
    map.onBlockAllocated(0);
    EXPECT_EQ(map.clusterCount(), 1u);
    EXPECT_EQ(map.snapshot()[0].startPfn, kBlock);
    map.onBlockAllocated(2 * kBlock);
    EXPECT_EQ(map.clusterCount(), 1u);
    EXPECT_EQ(map.snapshot()[0].pages, kBlock);
    map.onBlockAllocated(kBlock);
    EXPECT_EQ(map.clusterCount(), 0u);
    EXPECT_EQ(map.freePagesTracked(), 0u);
    EXPECT_TRUE(map.checkInvariants());
}

TEST(ContiguityMap, NextFitPrefersFit)
{
    ContiguityMap map(kBlock);
    map.onBlockFree(0);                    // 1-block cluster
    map.onBlockFree(10 * kBlock);          // 2-block cluster
    map.onBlockFree(11 * kBlock);
    auto c = map.placeNextFit(2 * kBlock);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->startPfn, 10 * kBlock);
}

TEST(ContiguityMap, NextFitFallsBackToLargest)
{
    ContiguityMap map(kBlock);
    map.onBlockFree(0);
    map.onBlockFree(10 * kBlock);
    map.onBlockFree(11 * kBlock);
    auto c = map.placeNextFit(100 * kBlock);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->startPfn, 10 * kBlock);
    EXPECT_EQ(c->pages, 2 * kBlock);
}

TEST(ContiguityMap, NextFitRoverAdvances)
{
    // Three equal clusters; successive placements should rotate across
    // them instead of re-issuing the same cluster (racing deferral).
    ContiguityMap map(kBlock);
    map.onBlockFree(0);
    map.onBlockFree(10 * kBlock);
    map.onBlockFree(20 * kBlock);
    auto a = map.placeNextFit(kBlock);
    auto b = map.placeNextFit(kBlock);
    auto c = map.placeNextFit(kBlock);
    ASSERT_TRUE(a && b && c);
    EXPECT_NE(a->startPfn, b->startPfn);
    EXPECT_NE(b->startPfn, c->startPfn);
    EXPECT_NE(a->startPfn, c->startPfn);
    // Fourth placement wraps around.
    auto d = map.placeNextFit(kBlock);
    ASSERT_TRUE(d);
    EXPECT_EQ(d->startPfn, a->startPfn);
}

TEST(ContiguityMap, BestFitPicksSmallestSufficient)
{
    ContiguityMap map(kBlock);
    map.onBlockFree(0); // size 1
    map.onBlockFree(10 * kBlock);
    map.onBlockFree(11 * kBlock); // size 2
    map.onBlockFree(20 * kBlock);
    map.onBlockFree(21 * kBlock);
    map.onBlockFree(22 * kBlock); // size 3
    auto c = map.placeBestFit(2 * kBlock);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->startPfn, 10 * kBlock);
    // Too big for all -> largest.
    auto l = map.placeBestFit(10 * kBlock);
    ASSERT_TRUE(l);
    EXPECT_EQ(l->startPfn, 20 * kBlock);
}

TEST(ContiguityMap, RoverSurvivesClusterRemoval)
{
    ContiguityMap map(kBlock);
    map.onBlockFree(0);
    map.onBlockFree(10 * kBlock);
    auto a = map.placeNextFit(kBlock);
    ASSERT_TRUE(a);
    // Remove the cluster the rover points at; the next placement must
    // still succeed.
    auto b = map.placeNextFit(kBlock);
    ASSERT_TRUE(b);
    map.onBlockAllocated(b->startPfn);
    auto c = map.placeNextFit(kBlock);
    ASSERT_TRUE(c);
}
