#include <gtest/gtest.h>

#include "contig/analysis.hh"
#include "mm/kernel.hh"
#include "policies/ca_paging.hh"
#include "virt/vm.hh"

using namespace contig;

namespace
{

KernelConfig
hostConfig()
{
    KernelConfig cfg;
    cfg.phys.bytesPerNode = 512ull << 20;
    cfg.phys.numNodes = 2;
    return cfg;
}

VmConfig
vmConfig()
{
    VmConfig cfg;
    cfg.guestBytesPerNode = 256ull << 20;
    cfg.guestNodes = 1;
    return cfg;
}

struct VmTest : public ::testing::Test
{
    VmTest()
        : host(hostConfig(), std::make_unique<DefaultThpPolicy>()),
          vm(host, std::make_unique<DefaultThpPolicy>(), vmConfig())
    {
    }

    Kernel host;
    VirtualMachine vm;
};

} // namespace

TEST_F(VmTest, GuestRamBackedLazily)
{
    EXPECT_EQ(vm.backedPages(), 0u);
    Process &p = vm.guest().createProcess("g");
    Vma &vma = p.mmap(4 * kHugeSize);
    p.touch(vma.start());
    // The guest huge allocation triggered nested (host) faults for at
    // least the whole 2 MiB, plus guest page-table frames.
    EXPECT_GE(vm.backedPages(), 512u);
    EXPECT_LT(vm.backedPages(), vm.guest().physMem().totalFrames());
}

TEST_F(VmTest, NestedLookupComposes)
{
    Process &p = vm.guest().createProcess("g");
    Vma &vma = p.mmap(kHugeSize);
    p.touch(vma.start());
    auto gm = p.pageTable().lookup(vma.start().pageNumber());
    ASSERT_TRUE(gm);
    auto nested = vm.nestedLookup(gm->pfn);
    ASSERT_TRUE(nested);
    EXPECT_LT(nested->pfn, host.physMem().totalFrames());
    // Adjacent guest frames within one host huge mapping are adjacent
    // host frames.
    auto nested2 = vm.nestedLookup(gm->pfn + 1);
    ASSERT_TRUE(nested2);
    EXPECT_EQ(nested2->pfn, nested->pfn + 1);
}

TEST_F(VmTest, NestedLookupUnbackedIsEmpty)
{
    // A guest frame that was never allocated has no host mapping.
    EXPECT_FALSE(vm.nestedLookup(vm.guest().physMem().totalFrames() - 1));
}

TEST_F(VmTest, NestedWalkCountsHostRefs)
{
    Process &p = vm.guest().createProcess("g");
    Vma &vma = p.mmap(kHugeSize);
    p.touch(vma.start());
    auto gm = p.pageTable().lookup(vma.start().pageNumber());
    WalkTrace trace;
    vm.nestedWalk(gm->pfn, trace);
    EXPECT_TRUE(trace.hit);
    // Host THP backing: 3-level nested walk.
    EXPECT_EQ(trace.nodeFrames.size(), 3u);
}

TEST_F(VmTest, GuestTeardownKeepsHostBacking)
{
    Process &p = vm.guest().createProcess("g");
    Vma &vma = p.mmap(8 * kHugeSize);
    p.touchRange(vma.start(), vma.bytes());
    const std::uint64_t backed = vm.backedPages();
    p.munmap(vma);
    vm.guest().exitProcess(p);
    // The 2nd-dimension mappings persist as the VM ages (§III-C).
    EXPECT_EQ(vm.backedPages(), backed);
}

TEST_F(VmTest, DestructionReleasesHostMemory)
{
    KernelConfig hcfg = hostConfig();
    Kernel h(hcfg, std::make_unique<DefaultThpPolicy>());
    const std::uint64_t free0 = h.physMem().freePages();
    {
        VirtualMachine v(h, std::make_unique<DefaultThpPolicy>(),
                         vmConfig());
        Process &p = v.guest().createProcess("g");
        Vma &vma = p.mmap(16 * kHugeSize);
        p.touchRange(vma.start(), vma.bytes());
        EXPECT_LT(h.physMem().freePages(), free0);
    }
    // All host frames return except the host kernel metadata pool.
    EXPECT_EQ(h.physMem().freePages(), free0 - h.kernelPoolPages());
}

TEST_F(VmTest, Extract2dComposesBothDimensions)
{
    // Guest CA + host CA in a fresh VM: a sequentially-touched VMA
    // forms one full 2-D contiguous mapping.
    Kernel h(hostConfig(), std::make_unique<CaPagingPolicy>());
    VirtualMachine v(h, std::make_unique<CaPagingPolicy>(), vmConfig());
    Process &p = v.guest().createProcess("g");
    Vma &vma = p.mmap(32 * kHugeSize);
    p.touchRange(vma.start(), vma.bytes());

    auto segs = extract2d(p, v);
    // Expect one dominant segment covering (almost) the whole VMA.
    std::uint64_t total = 0, largest = 0;
    for (const auto &s : segs) {
        total += s.pages;
        largest = std::max(largest, s.pages);
    }
    EXPECT_EQ(total, 32u * 512);
    EXPECT_GE(largest, 31u * 512);
}

TEST_F(VmTest, TwoDimensionalOffsetsAreStable)
{
    // The 2-D offset (gVA - hPA) must be constant within a segment —
    // the property SpOT's prediction rests on.
    Kernel h(hostConfig(), std::make_unique<CaPagingPolicy>());
    VirtualMachine v(h, std::make_unique<CaPagingPolicy>(), vmConfig());
    Process &p = v.guest().createProcess("g");
    Vma &vma = p.mmap(8 * kHugeSize);
    p.touchRange(vma.start(), vma.bytes());

    for (const Seg &s : extract2d(p, v)) {
        for (std::uint64_t off = 0; off < s.pages; off += 123) {
            auto gm = p.pageTable().lookup(s.vpn + off);
            ASSERT_TRUE(gm);
            const Vpn leaf_base =
                (s.vpn + off) & ~(pagesInOrder(gm->order) - 1);
            auto nested =
                v.nestedLookup(gm->pfn + (s.vpn + off - leaf_base));
            ASSERT_TRUE(nested);
            EXPECT_EQ(nested->pfn, s.pfn + off);
        }
    }
}
