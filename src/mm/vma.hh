/**
 * @file
 * Virtual memory areas (the `vm_area_struct` analogue), carrying the
 * CA-paging metadata the paper adds: a FIFO of up to 64 per-sub-region
 * Offsets (paper §III-C, "Dealing with external fragmentation") and the
 * replacement guard used to serialize racing re-placements across
 * concurrent faults (§III-C, "Avoiding multithreading pitfalls").
 */

#ifndef CONTIG_MM_VMA_HH
#define CONTIG_MM_VMA_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "base/types.hh"

namespace contig
{

/** How many (vaddr, Offset) pairs CA paging tracks per VMA. */
constexpr std::size_t kMaxCaOffsets = 64;

/** What backs a VMA. */
enum class VmaKind : std::uint8_t
{
    Anon,     //!< anonymous memory (heap, mmap MAP_ANONYMOUS)
    File,     //!< file-backed mapping served through the page cache
    GuestRam, //!< a VM's guest-physical memory, backed in the host
};

/**
 * One Offset record: all pages of a contiguous mapping share
 * offset = vpn - pfn (the paper defines it over addresses; we keep it
 * in page units). The fault vaddr that created the record is kept so
 * faults pick the record whose origin is closest (§III-C).
 */
struct CaOffset
{
    Vpn originVpn = 0;          //!< vpn of the fault that set this offset
    std::int64_t offsetPages = 0; //!< vpn - pfn for this sub-region
};

/**
 * A contiguous virtual address range of one process.
 */
class Vma
{
  public:
    Vma(std::uint32_t id, Gva start, std::uint64_t bytes, VmaKind kind,
        std::uint32_t file_id = 0, std::uint64_t file_offset_pages = 0)
        : id_(id), start_(start), bytes_(bytes), kind_(kind),
          fileId_(file_id), fileOffsetPages_(file_offset_pages)
    {}

    std::uint32_t id() const { return id_; }
    Gva start() const { return start_; }
    Gva end() const { return start_ + bytes_; }
    std::uint64_t bytes() const { return bytes_; }
    std::uint64_t pages() const { return bytes_ >> kPageShift; }
    VmaKind kind() const { return kind_; }
    std::uint32_t fileId() const { return fileId_; }
    std::uint64_t fileOffsetPages() const { return fileOffsetPages_; }

    bool
    contains(Gva a) const
    {
        return a >= start_ && a < end();
    }

    /** True iff the order-sized region around vpn lies inside the VMA. */
    bool
    coversAligned(Vpn vpn, unsigned order) const
    {
        const std::uint64_t n = pagesInOrder(order);
        Vpn base = vpn & ~(n - 1);
        return base >= start_.pageNumber() &&
               base + n <= start_.pageNumber() + pages();
    }

    // --- CA paging metadata -------------------------------------------

    /** Record a new Offset (FIFO eviction beyond kMaxCaOffsets). */
    void
    pushCaOffset(Vpn origin_vpn, std::int64_t offset_pages)
    {
        if (caOffsets_.size() >= kMaxCaOffsets)
            caOffsets_.pop_front();
        caOffsets_.push_back(CaOffset{origin_vpn, offset_pages});
    }

    /**
     * The Offset whose origin vpn is closest to the faulting vpn
     * (§III-C: "picks the Offset associated with the virtual address
     * closest to the currently faulting").
     */
    std::optional<CaOffset>
    nearestCaOffset(Vpn vpn) const
    {
        const CaOffset *best = nullptr;
        std::uint64_t best_dist = ~std::uint64_t{0};
        for (const auto &o : caOffsets_) {
            std::uint64_t dist = o.originVpn > vpn ? o.originVpn - vpn
                                                   : vpn - o.originVpn;
            if (!best || dist < best_dist) {
                best = &o;
                best_dist = dist;
            }
        }
        if (!best)
            return std::nullopt;
        return *best;
    }

    bool hasCaOffsets() const { return !caOffsets_.empty(); }
    std::size_t caOffsetCount() const { return caOffsets_.size(); }

    /** Drop the oldest Offset (ablation hook for shallower FIFOs). */
    void
    popOldestCaOffset()
    {
        if (!caOffsets_.empty())
            caOffsets_.pop_front();
    }

    /**
     * Replacement guard: only the first failing thread may trigger a
     * re-placement; others retry (§III-C). Returns true if the caller
     * acquired the right to re-place.
     */
    bool
    tryBeginReplacement()
    {
        if (replacementActive_)
            return false;
        replacementActive_ = true;
        return true;
    }

    void endReplacement() { replacementActive_ = false; }
    bool replacementActive() const { return replacementActive_; }

    // --- accounting -----------------------------------------------------

    /** Pages actually touched by the application. */
    std::uint64_t touchedPages = 0;
    /** Pages of physical memory allocated to back this VMA. */
    std::uint64_t allocatedPages = 0;
    /** Lazily sized per-page touched bits (bloat accounting). */
    std::vector<bool> touchedBitmap;

  private:
    std::uint32_t id_;
    Gva start_;
    std::uint64_t bytes_;
    VmaKind kind_;
    std::uint32_t fileId_;
    std::uint64_t fileOffsetPages_;

    std::deque<CaOffset> caOffsets_;
    bool replacementActive_ = false;
};

} // namespace contig

#endif // CONTIG_MM_VMA_HH
