#include <gtest/gtest.h>

#include "mm/kernel.hh"
#include "tlb/walker.hh"
#include "virt/vm.hh"

using namespace contig;

namespace
{

WalkerConfig
noCaches()
{
    WalkerConfig cfg;
    cfg.pscEnabled = false;
    cfg.nestedTlbEnabled = false;
    cfg.cyclesPerRef = 10;
    return cfg;
}

} // namespace

TEST(Walker, Native4kWalkCostsFourRefs)
{
    PageTable pt;
    pt.map(0x1234, 55, 0);
    Walker w(pt, noCaches());
    auto res = w.walk(0x1234);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.refs, 4u);
    EXPECT_EQ(res.cycles, 40u);
    EXPECT_EQ(res.mapping.pfn, 55u);
}

TEST(Walker, NativeHugeWalkCostsThreeRefs)
{
    PageTable pt;
    pt.map(512, 1024, kHugeOrder);
    Walker w(pt, noCaches());
    auto res = w.walk(512 + 99);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.refs, 3u);
    // The offset is exact for the probed vpn, not the leaf base.
    EXPECT_EQ(res.offset,
              static_cast<std::int64_t>(512 + 99) -
                  static_cast<std::int64_t>(1024 + 99));
}

TEST(Walker, PscCutsUpperLevelRefs)
{
    PageTable pt;
    pt.map(0x1000, 1, 0);
    pt.map(0x1001, 2, 0);
    WalkerConfig cfg = noCaches();
    cfg.pscEnabled = true;
    cfg.pscEntries = 4;
    Walker w(pt, cfg);
    auto first = w.walk(0x1000);
    EXPECT_EQ(first.refs, 4u); // cold PSC
    auto second = w.walk(0x1001);
    EXPECT_EQ(second.refs, 2u); // PSC skips root+L3
    EXPECT_EQ(w.stats().pscHits, 1u);
}

TEST(Walker, ContigBitsSurfaceInResult)
{
    PageTable pt;
    pt.map(7, 9, 0);
    pt.setContigBit(7, true);
    Walker w(pt, noCaches());
    EXPECT_TRUE(w.walk(7).guestContigBit);
}

TEST(Walker, NestedWalkCostsUpTo24Refs)
{
    // Virtualized, no walker caches: guest 4 KiB leaf over host 4 KiB
    // backing costs 4 guest-node nested walks (4 refs each) + 4 guest
    // reads + final nested walk (4 refs) = up to 24 references.
    KernelConfig hcfg;
    hcfg.phys.bytesPerNode = 256ull << 20;
    hcfg.phys.numNodes = 1;
    hcfg.thpEnabled = false; // host backs with 4 KiB pages
    Kernel host(hcfg, std::make_unique<Base4kPolicy>());
    VmConfig vcfg;
    vcfg.guestBytesPerNode = 128ull << 20;
    vcfg.guestNodes = 1;
    vcfg.guestKernel.thpEnabled = false;
    VirtualMachine vm(host, std::make_unique<Base4kPolicy>(), vcfg);

    Process &p = vm.guest().createProcess("g");
    Vma &vma = p.mmap(1 << 20);
    p.touch(vma.start());

    Walker w(p.pageTable(), vm, noCaches());
    auto res = w.walk(vma.start().pageNumber());
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.refs, 24u);
}

TEST(Walker, NestedThpWalkIsCheaper)
{
    KernelConfig hcfg;
    hcfg.phys.bytesPerNode = 256ull << 20;
    hcfg.phys.numNodes = 1;
    Kernel host(hcfg, std::make_unique<DefaultThpPolicy>());
    VmConfig vcfg;
    vcfg.guestBytesPerNode = 128ull << 20;
    vcfg.guestNodes = 1;
    VirtualMachine vm(host, std::make_unique<DefaultThpPolicy>(), vcfg);

    Process &p = vm.guest().createProcess("g");
    Vma &vma = p.mmap(4 * kHugeSize);
    p.touch(vma.start());

    Walker w(p.pageTable(), vm, noCaches());
    auto res = w.walk(vma.start().pageNumber());
    EXPECT_TRUE(res.hit);
    // Guest 2M leaf (3 levels) x (3-ref nested + 1 read) + final
    // 3-ref nested walk = 15 refs.
    EXPECT_EQ(res.refs, 15u);
    EXPECT_EQ(res.mapping.order, kHugeOrder);
}

TEST(Walker, NestedTlbCutsRepeatWalks)
{
    KernelConfig hcfg;
    hcfg.phys.bytesPerNode = 256ull << 20;
    hcfg.phys.numNodes = 1;
    Kernel host(hcfg, std::make_unique<DefaultThpPolicy>());
    VmConfig vcfg;
    vcfg.guestBytesPerNode = 128ull << 20;
    vcfg.guestNodes = 1;
    VirtualMachine vm(host, std::make_unique<DefaultThpPolicy>(), vcfg);

    Process &p = vm.guest().createProcess("g");
    Vma &vma = p.mmap(4 * kHugeSize);
    p.touchRange(vma.start(), vma.bytes());

    WalkerConfig cfg;
    cfg.pscEnabled = true;
    cfg.nestedTlbEnabled = true;
    Walker w(p.pageTable(), vm, cfg);
    auto cold = w.walk(vma.start().pageNumber());
    auto warm = w.walk(vma.start().pageNumber() + 1);
    EXPECT_LT(warm.refs, cold.refs);
    EXPECT_GT(w.stats().nestedTlbHits, 0u);
}

TEST(Walker, MissReturnsNoHit)
{
    PageTable pt;
    Walker w(pt, noCaches());
    auto res = w.walk(0xdead);
    EXPECT_FALSE(res.hit);
    EXPECT_GE(res.refs, 1u);
}
