#pragma once
// Lock-contention accounting for the concurrency observatory.
//
// A LockSite is a named bundle of counters (acquisitions, contended
// acquisitions, CAS retries, time spent blocked) shared by every lock
// that logically belongs to the same place in the code: all per-VMA
// fault locks fold into one "vma.fault" site, each zone's buddy lock
// gets its own "zone<N>.buddy" site, and so on.  Hot paths only touch
// a site through a nullable pointer, so the disabled configuration
// costs one predictable branch; building with -DCONTIG_LOCK_STATS=OFF
// removes even that.
//
// Counters are striped: each thread hashes to one of a few
// cache-line-padded stripes and increments with relaxed atomics, then
// totals() folds the stripes at export time — the same
// accumulate-privately / merge-on-read shape FaultEngine::WorkerScope
// uses for fault stats.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef CONTIG_LOCK_STATS
#define CONTIG_LOCK_STATS 1
#endif

namespace contig {

/** Monotonic nanoseconds for spin/block timing. */
inline std::uint64_t
lockNowNs() noexcept
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Named contention counters shared by one logical lock site. */
class LockSite {
public:
    struct Totals {
        std::uint64_t acquisitions = 0; //!< successful lock()s
        std::uint64_t contended = 0;    //!< lock()s that had to wait
        std::uint64_t retries = 0;      //!< CAS retries (lock-free sites)
        std::uint64_t spinNs = 0;       //!< total time spent waiting
    };

    explicit LockSite(std::string name) : name_(std::move(name)) {}
    LockSite(const LockSite &) = delete;
    LockSite &operator=(const LockSite &) = delete;

    const std::string &name() const noexcept { return name_; }

    void noteAcquire() noexcept {
        myStripe().acquisitions.fetch_add(1, std::memory_order_relaxed);
    }
    void noteContended(std::uint64_t spin_ns) noexcept {
        Stripe &s = myStripe();
        s.contended.fetch_add(1, std::memory_order_relaxed);
        s.spinNs.fetch_add(spin_ns, std::memory_order_relaxed);
    }
    void noteRetries(std::uint64_t n) noexcept {
        if (n)
            myStripe().retries.fetch_add(n, std::memory_order_relaxed);
    }

    Totals totals() const noexcept {
        Totals t;
        for (const Stripe &s : stripes_) {
            t.acquisitions += s.acquisitions.load(std::memory_order_relaxed);
            t.contended += s.contended.load(std::memory_order_relaxed);
            t.retries += s.retries.load(std::memory_order_relaxed);
            t.spinNs += s.spinNs.load(std::memory_order_relaxed);
        }
        return t;
    }

    void reset() noexcept {
        for (Stripe &s : stripes_) {
            s.acquisitions.store(0, std::memory_order_relaxed);
            s.contended.store(0, std::memory_order_relaxed);
            s.retries.store(0, std::memory_order_relaxed);
            s.spinNs.store(0, std::memory_order_relaxed);
        }
    }

private:
    struct alignas(64) Stripe {
        std::atomic<std::uint64_t> acquisitions{0};
        std::atomic<std::uint64_t> contended{0};
        std::atomic<std::uint64_t> retries{0};
        std::atomic<std::uint64_t> spinNs{0};
    };
    static constexpr unsigned kStripes = 8;

    Stripe &myStripe() noexcept { return stripes_[stripeIndex()]; }
    static unsigned stripeIndex() noexcept;

    std::string name_;
    Stripe stripes_[kStripes];
};

/**
 * Process-wide table of lock sites.  site() hands out stable
 * references, so locks can cache the pointer for their lifetime;
 * registration is cold (kernel construction), export walks the table.
 */
class LockStatsRegistry {
public:
    static LockStatsRegistry &global();

    /** Master switch: BenchOutput --lock-stats flips it before kernels
     *  are built. Sites can be created and pointers bound regardless;
     *  binding decisions key off this. */
    static bool enabled() noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }
    static void setEnabled(bool on) noexcept {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Register-or-fetch a site; the reference stays valid forever. */
    LockSite &site(std::string_view name);

    /** Stable snapshot of every registered site (pointers, not copies). */
    std::vector<const LockSite *> sites() const;

    /** Zero every counter (tests and fresh bench runs). */
    void resetCounters();

    /** Shared site for Offset-ring CAS retries in Vma (header-only hot
     *  path, so it reaches its site through this global pointer). */
    static LockSite *offsetRingSite() noexcept {
        return offsetRing_.load(std::memory_order_relaxed);
    }
    static void setOffsetRingSite(LockSite *s) noexcept {
        offsetRing_.store(s, std::memory_order_relaxed);
    }

private:
    LockStatsRegistry() = default;
    inline static std::atomic<bool> enabled_{false};
    inline static std::atomic<LockSite *> offsetRing_{nullptr};

    struct Impl;
    Impl &impl() const;
};

} // namespace contig
