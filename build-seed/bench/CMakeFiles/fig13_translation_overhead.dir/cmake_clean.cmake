file(REMOVE_RECURSE
  "CMakeFiles/fig13_translation_overhead.dir/fig13_translation_overhead.cc.o"
  "CMakeFiles/fig13_translation_overhead.dir/fig13_translation_overhead.cc.o.d"
  "fig13_translation_overhead"
  "fig13_translation_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_translation_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
