# Empty dependencies file for ext_ca_ranger.
# This may be replaced when dependencies are built.
