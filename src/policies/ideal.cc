#include "policies/ideal.hh"

#include "mm/kernel.hh"

namespace contig
{

std::optional<Cluster>
IdealPolicy::bestFitAnywhere(Kernel &kernel, NodeId home,
                             std::uint64_t req_pages) const
{
    PhysicalMemory &pm = kernel.physMem();
    std::optional<Cluster> best;
    std::optional<Cluster> largest;
    const unsigned n = pm.numNodes();
    for (unsigned i = 0; i < n; ++i) {
        const Zone &zone = pm.zone((home + i) % n);
        auto c = zone.contigMap().placeBestFit(req_pages);
        if (!c)
            continue;
        if (!largest || c->pages > largest->pages)
            largest = c;
        if (c->pages >= req_pages &&
            (!best || c->pages < best->pages)) {
            best = c;
        }
    }
    return best ? best : largest;
}

void
IdealPolicy::onMmap(Kernel &kernel, Process &proc, Vma &vma)
{
    if (vma.kind() == VmaKind::File)
        return;
    // Offline assignment: freeze the Offset now, against the current
    // free-cluster state, before the first fault.
    auto cluster = bestFitAnywhere(kernel, proc.homeNode(), vma.pages());
    if (!cluster)
        return; // no top-order contiguity at all; faults will fall back
    const Vpn start_vpn = vma.start().pageNumber();
    vma.pushCaOffset(start_vpn,
                     static_cast<std::int64_t>(start_vpn) -
                         static_cast<std::int64_t>(cluster->startPfn));
}

} // namespace contig
