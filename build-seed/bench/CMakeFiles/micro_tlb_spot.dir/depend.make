# Empty dependencies file for micro_tlb_spot.
# This may be replaced when dependencies are built.
