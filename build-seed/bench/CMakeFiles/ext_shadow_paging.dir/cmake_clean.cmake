file(REMOVE_RECURSE
  "CMakeFiles/ext_shadow_paging.dir/ext_shadow_paging.cc.o"
  "CMakeFiles/ext_shadow_paging.dir/ext_shadow_paging.cc.o.d"
  "ext_shadow_paging"
  "ext_shadow_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_shadow_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
