#include <gtest/gtest.h>

#include "base/align.hh"
#include "base/types.hh"

using namespace contig;

TEST(Types, PageConstants)
{
    EXPECT_EQ(kPageSize, 4096u);
    EXPECT_EQ(kHugeSize, 2u * 1024 * 1024);
    EXPECT_EQ(pagesInOrder(kHugeOrder), 512u);
    EXPECT_EQ(pagesInOrder(kMaxOrder), 2048u);
}

TEST(Types, TypedAddrArithmetic)
{
    Gva a{0x1000};
    Gva b = a + 0x234;
    EXPECT_EQ(b.value, 0x1234u);
    EXPECT_EQ(b - a, 0x234u);
    EXPECT_EQ(b.pageBase().value, 0x1000u);
    EXPECT_EQ(b.pageOffset(), 0x234u);
    EXPECT_EQ(b.pageNumber(), 1u);
}

TEST(Types, HugeBase)
{
    Gva a{kHugeSize + 0x3456};
    EXPECT_EQ(a.hugeBase().value, kHugeSize);
}

TEST(Types, Comparisons)
{
    Hpa a{10}, b{20};
    EXPECT_LT(a, b);
    EXPECT_NE(a, b);
    EXPECT_EQ(a + 10, b);
}

TEST(Align, UpDown)
{
    EXPECT_EQ(alignDown(0x12345, 0x1000), 0x12000u);
    EXPECT_EQ(alignUp(0x12345, 0x1000), 0x13000u);
    EXPECT_EQ(alignUp(0x12000, 0x1000), 0x12000u);
    EXPECT_TRUE(isAligned(0x12000, 0x1000));
    EXPECT_FALSE(isAligned(0x12001, 0x1000));
}

TEST(Align, Log2AndPow2)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(4096), 12u);
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(12));
}

TEST(Align, IntervalsOverlap)
{
    EXPECT_TRUE(intervalsOverlap(0, 10, 5, 15));
    EXPECT_FALSE(intervalsOverlap(0, 10, 10, 20));
    EXPECT_TRUE(intervalsOverlap(5, 6, 0, 100));
}
