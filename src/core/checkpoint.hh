/**
 * @file
 * Simulator checkpoints. A .ckpt snapshot captures a translation
 * replay run at a chunk boundary of its .ctrace input so the run can
 * stop and later resume byte-identically:
 *
 *  - meta: the trace config digest and the replay position (chunk
 *    index + accesses done), keying the snapshot to one exact trace;
 *  - engine blob: the ReplayEngine's full pipeline state (every
 *    shard's TLBs / walker caches / SpOT / range TLB, stats,
 *    positions) — restored exactly on resume;
 *  - kernel blobs: one per participating kernel (native: the
 *    process's kernel; virtualized: guest then host). Kernel state is
 *    NOT restored from the blob — translation replay never mutates
 *    kernel state, so a resumed run rebuilds the kernel by re-running
 *    the deterministic workload setup, then re-serializes it and
 *    byte-compares against the blob to prove the rebuild matches.
 *
 * On-disk layout: 'CCKP' magic + version, then a Serializer stream of
 * tagged sections, then a trailing crc32 over everything before it.
 * Any mismatch (magic, version, CRC, digest, section tag, kernel
 * bytes) is fatal with a message naming what broke.
 */

#ifndef CONTIG_CORE_CHECKPOINT_HH
#define CONTIG_CORE_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace contig
{

class Kernel;
class ReplayEngine;

constexpr std::uint32_t kCkptMagic = 0x504b4343u; // "CCKP" little-endian
constexpr std::uint32_t kCkptVersion = 1;

/** Where in which trace the snapshot was taken. */
struct CkptMeta
{
    std::uint64_t traceDigest = 0; //!< ctraceDigest of the trace replayed
    std::uint64_t chunk = 0;       //!< chunks fully replayed
    std::uint64_t accesses = 0;    //!< accesses fully replayed
};

class Checkpoint
{
  public:
    /**
     * Snapshot `engine` (between replayChunk calls) and the listed
     * kernels to `path`. Kernel order is the restore-verify order:
     * native runs pass {&kernel}; virtualized runs pass
     * {&guest, &host}.
     */
    static void write(const std::string &path, const CkptMeta &meta,
                      const ReplayEngine &engine,
                      const std::vector<const Kernel *> &kernels);

    /** Load and validate (magic/version/CRC) a snapshot file. */
    explicit Checkpoint(const std::string &path);

    const CkptMeta &meta() const { return meta_; }

    /**
     * Restore the engine's state and verify each kernel: the live
     * kernel is re-serialized and byte-compared against the stored
     * blob; a mismatch is fatal naming the kernel index. Kernel list
     * must match the one passed to write() in length and order.
     */
    void restore(ReplayEngine &engine,
                 const std::vector<const Kernel *> &kernels) const;

  private:
    std::string path_;
    CkptMeta meta_;
    std::vector<std::uint8_t> engineBlob_;
    std::vector<std::vector<std::uint8_t>> kernelBlobs_;
};

} // namespace contig

#endif // CONTIG_CORE_CHECKPOINT_HH
