file(REMOVE_RECURSE
  "CMakeFiles/fig07_native_contiguity.dir/fig07_native_contiguity.cc.o"
  "CMakeFiles/fig07_native_contiguity.dir/fig07_native_contiguity.cc.o.d"
  "fig07_native_contiguity"
  "fig07_native_contiguity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_native_contiguity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
