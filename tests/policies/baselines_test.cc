#include <gtest/gtest.h>

#include "mm/kernel.hh"
#include "policies/eager.hh"
#include "policies/ideal.hh"
#include "policies/ingens.hh"
#include "policies/ranger.hh"

using namespace contig;

namespace
{

KernelConfig
smallConfig(unsigned max_order = kMaxOrder)
{
    KernelConfig cfg;
    cfg.phys.bytesPerNode = 256ull << 20;
    cfg.phys.numNodes = 2;
    cfg.phys.zone.maxOrder = max_order;
    cfg.tickPeriodFaults = 64;
    return cfg;
}

std::uint64_t
largestContiguousRun(const Process &proc)
{
    std::uint64_t best = 0, cur = 0;
    std::int64_t last_off = 0;
    Vpn last_end = 0;
    bool have = false;
    proc.pageTable().forEachLeaf([&](Vpn vpn, const Mapping &m) {
        std::int64_t off = static_cast<std::int64_t>(vpn) -
                           static_cast<std::int64_t>(m.pfn);
        std::uint64_t n = pagesInOrder(m.order);
        if (have && off == last_off && vpn == last_end)
            cur += n;
        else
            cur = n;
        last_off = off;
        last_end = vpn + n;
        have = true;
        best = std::max(best, cur);
    });
    return best;
}

} // namespace

TEST(Eager, PreallocatesWholeVmaAtMmap)
{
    auto policy = std::make_unique<EagerPolicy>();
    auto *eager = policy.get();
    // Eager paging runs with a raised MAX_ORDER (here 64 MiB blocks).
    Kernel k(smallConfig(kMaxOrder + 3), std::move(policy));
    Process &p = k.createProcess("t");

    const std::uint64_t bytes = 32ull << 20;
    Vma &vma = p.mmap(bytes);
    // Everything is backed before any touch.
    EXPECT_EQ(vma.allocatedPages, bytes >> kPageShift);
    EXPECT_EQ(eager->stats().preallocatedPages, bytes >> kPageShift);
    EXPECT_EQ(largestContiguousRun(p), bytes >> kPageShift);

    // Touching afterwards raises no faults.
    const std::uint64_t faults = k.faultStats().faults;
    p.touchRange(vma.start(), bytes);
    EXPECT_EQ(k.faultStats().faults, faults);
}

TEST(Eager, BloatEqualsUntouchedPages)
{
    Kernel k(smallConfig(kMaxOrder + 3), std::make_unique<EagerPolicy>());
    Process &p = k.createProcess("t");
    Vma &vma = p.mmap(32ull << 20);
    p.touchRange(vma.start(), 1ull << 20); // touch 1/32 of it
    EXPECT_EQ(vma.allocatedPages, (32ull << 20) >> kPageShift);
    EXPECT_EQ(vma.touchedPages, (1ull << 20) >> kPageShift);
}

TEST(Eager, MmapLatencyDominatesTail)
{
    Kernel k(smallConfig(kMaxOrder + 3), std::make_unique<EagerPolicy>());
    Process &p = k.createProcess("t");
    p.mmap(64ull << 20);
    // One giant zeroing event: far beyond a normal fault's latency.
    double p99 = k.faultStats().latencyUs.quantile(0.99);
    double normal = (k.config().faultBaseCycles +
                     512 * k.config().zeroCyclesPerPage) /
                    k.config().cyclesPerUs;
    EXPECT_GT(p99, 20 * normal);
}

TEST(Eager, FragmentationForcesSmallBlocks)
{
    auto policy = std::make_unique<EagerPolicy>();
    auto *eager = policy.get();
    Kernel k(smallConfig(kMaxOrder + 3), std::move(policy));

    // Fragment: allocate every top block, free every other huge chunk.
    PhysicalMemory &pm = k.physMem();
    std::vector<Pfn> blocks;
    while (auto b = pm.alloc(kMaxOrder + 3))
        blocks.push_back(*b);
    for (Pfn b : blocks) {
        // Free alternating 2 MiB halves within each block.
        for (std::uint64_t off = 0; off < pagesInOrder(kMaxOrder + 3);
             off += 2 * pagesInOrder(kHugeOrder)) {
            pm.free(b + off, kHugeOrder);
        }
    }

    Process &p = k.createProcess("t");
    Vma &vma = p.mmap(8ull << 20);
    EXPECT_EQ(vma.allocatedPages, (8ull << 20) >> kPageShift);
    // The pre-allocation had to be stitched from many small blocks, so
    // the largest contiguous mapping is just one huge page.
    EXPECT_EQ(largestContiguousRun(p), pagesInOrder(kHugeOrder));
    // 8 MiB had to be stitched from four separate 2 MiB blocks.
    EXPECT_EQ(eager->stats().blocks, 4u);
}

TEST(Ingens, PromotesUtilizedRegionsAsynchronously)
{
    auto policy = std::make_unique<IngensPolicy>();
    auto *ingens = policy.get();
    KernelConfig cfg = smallConfig();
    Kernel k(cfg, std::move(policy));
    Process &p = k.createProcess("t");

    Vma &vma = p.mmap(4 * kHugeSize);
    // Ingens allocates 4 KiB pages only.
    p.touchRange(vma.start(), 4 * kHugeSize);
    EXPECT_EQ(k.faultStats().hugeFaults, 0u);
    // The daemon ran during the touches (tick every 64 faults) and
    // promoted fully-utilized regions.
    EXPECT_GT(ingens->stats().promotions, 0u);
    auto m = p.pageTable().lookup(vma.start().pageNumber());
    ASSERT_TRUE(m);
    EXPECT_EQ(m->order, kHugeOrder);
}

TEST(Ingens, SkipsUnderUtilizedRegions)
{
    auto policy = std::make_unique<IngensPolicy>();
    auto *ingens = policy.get();
    Kernel k(smallConfig(), std::move(policy));
    Process &p = k.createProcess("t");

    Vma &vma = p.mmap(16 * kHugeSize);
    // Touch only 10% of each huge region: below the 90% threshold.
    for (std::uint64_t h = 0; h < 16; ++h)
        p.touchRange(vma.start() + h * kHugeSize, 51 * kPageSize);
    // Force several daemon runs.
    for (int i = 0; i < 10; ++i)
        k.policy().onTick(k);
    EXPECT_EQ(ingens->stats().promotions, 0u);
}

TEST(Ranger, CoalescesAsynchronously)
{
    auto policy = std::make_unique<RangerPolicy>();
    auto *ranger = policy.get();
    KernelConfig cfg = smallConfig();
    cfg.tickPeriodFaults = 1000000; // keep the daemon off during setup
    Kernel k(cfg, std::move(policy));
    Process &p = k.createProcess("t");

    // Scatter the VMA: allocate with default THP while another
    // allocation interleaves, so frames are not contiguous.
    Vma &vma = p.mmap(16 * kHugeSize);
    Process &noise = k.createProcess("noise");
    Vma &nv = noise.mmap(16 * kHugeSize);
    for (std::uint64_t i = 0; i < 16; ++i) {
        p.touch(vma.start() + i * kHugeSize);
        noise.touch(nv.start() + i * kHugeSize);
    }
    const std::uint64_t before = largestContiguousRun(p);
    ASSERT_LT(before, 16u * 512);

    // Run defrag epochs until stable.
    for (int i = 0; i < 50; ++i)
        k.policy().onTick(k);
    EXPECT_EQ(largestContiguousRun(p), 16u * 512);
    EXPECT_GT(ranger->stats().migratedPages, 0u);
    EXPECT_GT(k.counters().get("migrate.shootdowns"), 0u);
}

TEST(Ranger, MigrationBudgetLimitsEpochWork)
{
    RangerConfig rcfg;
    rcfg.pagesPerEpoch = 512; // one huge page per epoch
    auto policy = std::make_unique<RangerPolicy>(rcfg);
    auto *ranger = policy.get();
    KernelConfig cfg = smallConfig();
    cfg.tickPeriodFaults = 1000000;
    Kernel k(cfg, std::move(policy));
    Process &p = k.createProcess("t");
    Process &noise = k.createProcess("noise");

    Vma &vma = p.mmap(8 * kHugeSize);
    Vma &nv = noise.mmap(8 * kHugeSize);
    for (std::uint64_t i = 0; i < 8; ++i) {
        p.touch(vma.start() + i * kHugeSize);
        noise.touch(nv.start() + i * kHugeSize);
    }
    k.policy().onTick(k);
    EXPECT_LE(ranger->stats().migratedPages, 512u);
}

TEST(Ideal, OfflineAssignmentIsContiguous)
{
    auto policy = std::make_unique<IdealPolicy>();
    Kernel k(smallConfig(), std::move(policy));
    Process &p = k.createProcess("t");
    Vma &vma = p.mmap(32 * kHugeSize);
    // Offset assigned at mmap time, before any fault.
    EXPECT_EQ(vma.caOffsetCount(), 1u);
    p.touchRange(vma.start(), vma.bytes());
    EXPECT_EQ(largestContiguousRun(p), 32u * 512);
}

TEST(Ideal, BestFitPicksTightestHole)
{
    auto policy = std::make_unique<IdealPolicy>();
    Kernel k(smallConfig(), std::move(policy));
    PhysicalMemory &pm = k.physMem();

    // Create the process first so its page-table pool chunk comes from
    // low memory, before we shape the holes.
    Process &p = k.createProcess("t");

    // Carve node 0 into two holes: a tight one (16 MiB) and the rest.
    // Hole A: blocks [2, 4) stay free; occupy blocks [0,2) and [4,6).
    const std::uint64_t top = pagesInOrder(kMaxOrder);
    for (std::uint64_t b : {0ull, 1ull, 4ull, 5ull}) {
        // The pool chunk may already sit inside block 0; occupy the
        // rest of each block piecewise.
        for (std::uint64_t off = 0; off < top;
             off += pagesInOrder(kHugeOrder)) {
            if (pm.isFreePage(b * top + off)) {
                ASSERT_TRUE(
                    pm.allocSpecific(b * top + off, kHugeOrder));
            }
        }
    }
    Vma &vma = p.mmap(2 * top * kPageSize); // exactly the tight hole
    p.touchRange(vma.start(), vma.bytes());
    auto m = p.pageTable().lookup(vma.start().pageNumber());
    ASSERT_TRUE(m);
    EXPECT_EQ(m->pfn, 2 * top); // placed into the tight hole
    EXPECT_EQ(largestContiguousRun(p), 2 * top);
}
