# Empty dependencies file for fig11_sw_overhead.
# This may be replaced when dependencies are built.
