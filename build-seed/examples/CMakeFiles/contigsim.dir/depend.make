# Empty dependencies file for contigsim.
# This may be replaced when dependencies are built.
