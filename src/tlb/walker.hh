/**
 * @file
 * Page-walk cost model. A native walk reads up to 4 page-table
 * nodes; a nested (2-D) walk reads up to 24: each guest node's gPA
 * must itself be translated through the nested table (up to 4 reads)
 * plus the guest node read, and the final data gPA needs one more
 * nested walk.
 *
 * Two hardware caches temper those costs, as on real processors:
 *  - a paging-structure cache (PSC) that skips upper guest levels,
 *  - a nested TLB that caches gPA->hPA translations used inside
 *    walks.
 * The cycle cost of a walk is refs * cyclesPerRef (a flat memory-
 * hierarchy approximation; see DESIGN.md's cost-model notes).
 */

#ifndef CONTIG_TLB_WALKER_HH
#define CONTIG_TLB_WALKER_HH

#include <cstdint>
#include <memory>
#include <optional>

#include "mm/page_table.hh"
#include "tlb/tlb.hh"
#include "tlb/walk_memo.hh"

namespace contig
{

class VirtualMachine;
namespace obs { class MetricSink; }
class Serializer;
class Deserializer;

/** Walker knobs. */
struct WalkerConfig
{
    /** Average cycles per page-table memory reference. */
    Cycles cyclesPerRef = 40;
    /** Paging-structure cache entries (per level). */
    unsigned pscEntries = 16;
    /** Nested TLB entries. */
    unsigned nestedTlbEntries = 16;
    bool pscEnabled = true;
    bool nestedTlbEnabled = true;
    /**
     * Software traversal memo (tlb/walk_memo.hh): caches page-table
     * descents keyed by page + table epoch. Pure wall-clock
     * optimization — modelled refs/cycles/stats are identical on or
     * off, because the stateful PSC / nested-TLB models still run on
     * every walk.
     */
    bool memoEnabled = true;
    unsigned memoEntriesLog2 = 12;
};

/** Result of one modelled walk. */
struct WalkResult
{
    bool hit = false;          //!< translation exists
    Mapping mapping;           //!< final leaf (2-D composed if nested)
    unsigned refs = 0;         //!< memory references performed
    Cycles cycles = 0;         //!< refs * cyclesPerRef
    /** Contiguity bits: guest PTE and (if nested) nested PTE. */
    bool guestContigBit = false;
    bool nestedContigBit = false;
    /** Full 2-D offset (vpn - final pfn), the quantity SpOT tracks. */
    std::int64_t offset = 0;
    /** Upper levels were skipped by a paging-structure-cache hit. */
    bool pscHit = false;
};

/** Aggregate walker statistics. */
struct WalkerStats
{
    std::uint64_t walks = 0;
    std::uint64_t totalRefs = 0;
    std::uint64_t pscHits = 0;
    std::uint64_t nestedTlbHits = 0;
    std::uint64_t nestedTlbLookups = 0;

    double
    avgRefs() const
    {
        return walks ? static_cast<double>(totalRefs) / walks : 0.0;
    }
};

/**
 * Walks a native page table or a (guest, nested) pair. The caller
 * owns the tables; the walker owns only its caches.
 */
class Walker
{
  public:
    /** Native: one page table. */
    Walker(const PageTable &pt, const WalkerConfig &cfg = {});

    /** Virtualized: guest table + the VM providing nested walks. */
    Walker(const PageTable &guest_pt, const VirtualMachine &vm,
           const WalkerConfig &cfg = {});

    /** Perform (and cost) a walk for vpn. */
    WalkResult walk(Vpn vpn);

    bool virtualized() const { return vm_ != nullptr; }

    /** Select the cache-probe kernel; the answer never depends on it. */
    void setSimd(bool simd) { simd_ = simd; }
    bool simdEnabled() const { return simd_; }

    const WalkerStats &stats() const { return stats_; }
    const WalkerConfig &config() const { return cfg_; }
    /** Traversal-memo counters (null when the memo is disabled). */
    const WalkMemoStats *memoStats() const
    { return memo_ ? &memo_->stats() : nullptr; }

    /** Report walk/cache counters into a metric sink. */
    void collectMetrics(obs::MetricSink &sink) const;

    /** Flush the PSC and nested TLB (context switch). */
    void flushCaches();

    /**
     * Checkpoint the modelled caches (PSC, nested TLB), the LRU
     * clock and the stats. The traversal memo is NOT checkpointed:
     * it is a pure wall-clock optimization whose contents never move
     * modelled counters, so a resumed run simply starts it cold
     * (memo.* metrics are excluded from golden equivalence).
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    /** Nested translation of one guest frame, with costing. */
    std::optional<Mapping> nestedTranslate(Pfn gfn, unsigned &refs);

    /**
     * The guest traversal feeding one walk: a borrowed view over
     * either a memo entry or the scratch trace.
     */
    struct GuestView
    {
        const Pfn *frames = nullptr;
        unsigned count = 0;
        Mapping mapping;
        bool hit = false;
    };

    GuestView guestTraversal(Vpn vpn);

    /** Nested walk of gfn: (hit, node count, exact mapping). */
    void nestedResolve(Pfn gfn, bool &hit, unsigned &count, Mapping &m);

    /**
     * Fully-associative cache stored structure-of-arrays: the tag
     * lane is padded to the SIMD stride and holds simd::kNoTag64 in
     * invalid/padding slots, so cacheLookup is one tag-lane search.
     * cacheFill keeps the historical ordered scan (first invalid slot
     * wins even when a matching entry sits later) — its victim choice
     * is part of the pinned replacement behaviour.
     */
    struct SoaCache
    {
        explicit SoaCache(unsigned n);

        unsigned entries;
        std::vector<std::uint64_t> tags;
        std::vector<std::uint64_t> lastUse;
        std::vector<std::uint8_t> valid;
    };

    bool cacheLookup(SoaCache &cache, std::uint64_t tag);
    void cacheFill(SoaCache &cache, std::uint64_t tag);

    const PageTable &pt_;
    const VirtualMachine *vm_ = nullptr;
    WalkerConfig cfg_;
    WalkerStats stats_;

    /** PSC: skip-to-L2 entries keyed by vpn >> 18 (L4+L3 covered). */
    SoaCache psc_;
    /** Nested TLB: gfn -> backed, keyed by gfn (4 KiB grain). */
    SoaCache nestedTlb_;
    bool simd_;
    std::uint64_t clock_ = 0;

    /** Traversal memo (null when disabled). */
    std::unique_ptr<WalkMemo> memo_;
    /** Reusable walk traces: no per-walk vector allocations. */
    WalkTrace guestScratch_;
    WalkTrace nestedScratch_;
};

} // namespace contig

#endif // CONTIG_TLB_WALKER_HH
