/**
 * @file
 * Ablation: the per-VMA Offset FIFO depth (the paper tracks up to 64
 * Offsets, §III-C). With one Offset, any sub-VMA re-placement forgets
 * the older sub-regions, so faults that return to them miss their
 * targets and fragment further. The sweep measures the mid-VMA-first
 * fault pattern that exercises sub-placements.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"
#include "policies/ca_paging.hh"

using namespace contig;

namespace
{

/**
 * The scenario the FIFO was designed for (§III-C): a fragmented
 * machine forces the VMA into several sub-regions, and concurrent
 * threads fault different parts of the VMA in parallel — modelled as
 * K fronts faulting round-robin, each sequential within its stripe.
 * A deep FIFO keeps one Offset per live sub-region; a shallow one
 * forgets regions that other fronts still extend.
 */
struct Outcome
{
    std::uint64_t mappings = 0;
    double cov32 = 0.0;
};

Outcome
runPattern(std::size_t fifo_cap)
{
    KernelConfig cfg = kernelConfigFor(PolicyKind::Ca);
    Kernel k(cfg, std::make_unique<CaPagingPolicy>());
    Rng hog_rng(13);
    hogMemory(k, 0.3, hog_rng); // fragment: clusters of a few MiB
    Process &p = k.createProcess("t");

    const std::uint64_t hugepages = 256;
    const unsigned fronts = 8;
    const std::uint64_t stripe = hugepages / fronts;
    Vma &vma = p.mmap(hugepages * kHugeSize);
    for (std::uint64_t i = 0; i < stripe; ++i) {
        for (unsigned f = 0; f < fronts; ++f) {
            p.touch(vma.start() + (f * stripe + i) * kHugeSize);
            // Emulate a shallower FIFO by trimming oldest entries.
            while (vma.caOffsetCount() > fifo_cap)
                vma.popOldestCaOffset();
        }
    }
    auto cov = coverage(extractSegs(p.pageTable()));
    return Outcome{cov.mappings, cov.cov32};
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("ablate_offset_fifo", argc, argv);

    Report rep("Ablation — per-VMA Offset FIFO depth "
               "(random-order faults + rival allocations)");
    rep.header({"FIFO depth", "mappings", "cov32"});
    for (std::size_t cap : {1ul, 4ul, 16ul, 64ul}) {
        auto o = runPattern(cap);
        rep.row({std::to_string(cap), std::to_string(o.mappings),
                 Report::pct(o.cov32)});
    }
    out.add(rep);
    rep.print();

    std::printf("\nexpected: deeper FIFOs remember more sub-regions, "
                "so revisiting faults extend existing mappings instead "
                "of re-placing (fewer, larger mappings)\n");
    out.write();
    return 0;
}
