file(REMOVE_RECURSE
  "CMakeFiles/ablate_mark_threshold.dir/ablate_mark_threshold.cc.o"
  "CMakeFiles/ablate_mark_threshold.dir/ablate_mark_threshold.cc.o.d"
  "ablate_mark_threshold"
  "ablate_mark_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_mark_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
