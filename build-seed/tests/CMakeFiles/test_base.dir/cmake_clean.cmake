file(REMOVE_RECURSE
  "CMakeFiles/test_base.dir/base/json_test.cc.o"
  "CMakeFiles/test_base.dir/base/json_test.cc.o.d"
  "CMakeFiles/test_base.dir/base/rng_test.cc.o"
  "CMakeFiles/test_base.dir/base/rng_test.cc.o.d"
  "CMakeFiles/test_base.dir/base/stats_test.cc.o"
  "CMakeFiles/test_base.dir/base/stats_test.cc.o.d"
  "CMakeFiles/test_base.dir/base/types_test.cc.o"
  "CMakeFiles/test_base.dir/base/types_test.cc.o.d"
  "test_base"
  "test_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
