/**
 * @file
 * Software translation memo for the walk path. Repeated L2 misses to
 * the same guest page dominate the replay loop's wall time: every one
 * re-descends the guest radix table and, in virtualized mode, the
 * nested table for each node frame. The memo caches the *pure*
 * traversal results — the guest walk trace keyed by vpn, and the
 * nested walk result keyed by gfn — so a repeat miss within an epoch
 * skips the radix descent entirely.
 *
 * Determinism contract: only the stateless page-table traversals are
 * memoized, never the composed WalkResult. The PSC and nested-TLB
 * models are stateful (LRU), so their hit/skip decisions — and
 * therefore the modelled refs/cycles — are replayed live on every
 * walk over the memoized traces. Modelled statistics are
 * byte-for-byte identical with the memo on or off (verified by
 * tests/tlb/replay_test.cc).
 *
 * Epochs: entries record the owning PageTable's generation() at fill
 * time and are dead the moment it moves. Every leaf mutation (map,
 * unmap, setContigBit, setWritable, RunMapper installs) bumps the
 * generation, so guest *and* nested mapping changes invalidate
 * without any flush broadcast into the walkers.
 */

#ifndef CONTIG_TLB_WALK_MEMO_HH
#define CONTIG_TLB_WALK_MEMO_HH

#include <array>
#include <cstdint>
#include <vector>

#include "mm/page_table.hh"

namespace contig
{

/** Memo hit/miss counters (exported under walker "memo.*"). */
struct WalkMemoStats
{
    std::uint64_t guestHits = 0;
    std::uint64_t guestMisses = 0;
    std::uint64_t nestedHits = 0;
    std::uint64_t nestedMisses = 0;
    /** Valid entries skipped because the table's epoch moved on. */
    std::uint64_t staleDrops = 0;
};

/**
 * Direct-mapped memo of page-table traversals. One instance per
 * Walker (replay shards keep private memos, like their TLBs).
 */
class WalkMemo
{
  public:
    /** Max node frames one traversal can touch (LA57: 5 levels). */
    static constexpr unsigned kMaxNodes = 8;

    explicit WalkMemo(unsigned entries_log2 = 12)
        : mask_((1ull << entries_log2) - 1),
          guest_(1ull << entries_log2), nested_(1ull << entries_log2)
    {}

    /** A memoized guest traversal (valid for the recorded epoch). */
    struct GuestEntry
    {
        std::uint64_t gen = 0;
        Vpn vpn = 0;
        Mapping mapping;
        std::array<Pfn, kMaxNodes> nodeFrames{};
        std::uint8_t nodeCount = 0;
        bool hit = false;
        bool valid = false;
    };

    /** A memoized nested walk (mapping already exact-adjusted). */
    struct NestedEntry
    {
        std::uint64_t gen = 0;
        Pfn gfn = 0;
        Mapping mapping;
        std::uint8_t nodeCount = 0;
        bool hit = false;
        bool valid = false;
    };

    const GuestEntry *
    findGuest(Vpn vpn, std::uint64_t gen)
    {
        GuestEntry &e = guest_[indexOf(vpn)];
        if (!e.valid || e.vpn != vpn) {
            ++stats_.guestMisses;
            return nullptr;
        }
        if (e.gen != gen) {
            ++stats_.staleDrops;
            ++stats_.guestMisses;
            return nullptr;
        }
        ++stats_.guestHits;
        return &e;
    }

    void
    fillGuest(Vpn vpn, std::uint64_t gen, const WalkTrace &trace)
    {
        if (trace.nodeFrames.size() > kMaxNodes)
            return; // never memoize what we cannot replay
        GuestEntry &e = guest_[indexOf(vpn)];
        e.gen = gen;
        e.vpn = vpn;
        e.mapping = trace.mapping;
        e.nodeCount = static_cast<std::uint8_t>(trace.nodeFrames.size());
        for (std::size_t i = 0; i < trace.nodeFrames.size(); ++i)
            e.nodeFrames[i] = trace.nodeFrames[i];
        e.hit = trace.hit;
        e.valid = true;
    }

    const NestedEntry *
    findNested(Pfn gfn, std::uint64_t gen)
    {
        NestedEntry &e = nested_[indexOf(gfn)];
        if (!e.valid || e.gfn != gfn) {
            ++stats_.nestedMisses;
            return nullptr;
        }
        if (e.gen != gen) {
            ++stats_.staleDrops;
            ++stats_.nestedMisses;
            return nullptr;
        }
        ++stats_.nestedHits;
        return &e;
    }

    void
    fillNested(Pfn gfn, std::uint64_t gen, const WalkTrace &trace)
    {
        if (trace.nodeFrames.size() > kMaxNodes)
            return;
        NestedEntry &e = nested_[indexOf(gfn)];
        e.gen = gen;
        e.gfn = gfn;
        e.mapping = trace.mapping;
        e.nodeCount = static_cast<std::uint8_t>(trace.nodeFrames.size());
        e.hit = trace.hit;
        e.valid = true;
    }

    const WalkMemoStats &stats() const { return stats_; }

  private:
    std::uint64_t
    indexOf(std::uint64_t key) const
    {
        // splitmix64 finalizer: adjacent pages must not collide.
        key += 0x9E3779B97F4A7C15ull;
        key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9ull;
        key = (key ^ (key >> 27)) * 0x94D049BB133111EBull;
        return (key ^ (key >> 31)) & mask_;
    }

    std::uint64_t mask_;
    std::vector<GuestEntry> guest_;
    std::vector<NestedEntry> nested_;
    WalkMemoStats stats_;
};

} // namespace contig

#endif // CONTIG_TLB_WALK_MEMO_HH
