#include <gtest/gtest.h>

#include "phys/contiguity_map.hh"

using namespace contig;

namespace
{

constexpr std::uint64_t kBlock = pagesInOrder(kMaxOrder); // 2048 pages

} // namespace

TEST(ContiguityMap, EmptyPlacementFails)
{
    ContiguityMap map(kBlock);
    EXPECT_FALSE(map.placeNextFit(1));
    EXPECT_FALSE(map.placeBestFit(1));
    EXPECT_FALSE(map.largest());
    EXPECT_EQ(map.clusterCount(), 0u);
}

TEST(ContiguityMap, SingleBlock)
{
    ContiguityMap map(kBlock);
    map.onBlockFree(0);
    EXPECT_EQ(map.clusterCount(), 1u);
    EXPECT_EQ(map.freePagesTracked(), kBlock);
    auto c = map.placeNextFit(kBlock);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->startPfn, 0u);
    EXPECT_EQ(c->pages, kBlock);
}

TEST(ContiguityMap, AdjacentBlocksMerge)
{
    ContiguityMap map(kBlock);
    map.onBlockFree(0);
    map.onBlockFree(kBlock);
    map.onBlockFree(3 * kBlock); // not adjacent
    EXPECT_EQ(map.clusterCount(), 2u);
    auto c = map.largest();
    ASSERT_TRUE(c);
    EXPECT_EQ(c->startPfn, 0u);
    EXPECT_EQ(c->pages, 2 * kBlock);
    EXPECT_TRUE(map.checkInvariants());
}

TEST(ContiguityMap, MergeBothSides)
{
    ContiguityMap map(kBlock);
    map.onBlockFree(0);
    map.onBlockFree(2 * kBlock);
    EXPECT_EQ(map.clusterCount(), 2u);
    map.onBlockFree(kBlock); // bridges the gap
    EXPECT_EQ(map.clusterCount(), 1u);
    EXPECT_EQ(map.largest()->pages, 3 * kBlock);
    EXPECT_TRUE(map.checkInvariants());
}

TEST(ContiguityMap, RemoveSplitsCluster)
{
    ContiguityMap map(kBlock);
    for (int i = 0; i < 5; ++i)
        map.onBlockFree(i * kBlock);
    EXPECT_EQ(map.clusterCount(), 1u);
    map.onBlockAllocated(2 * kBlock); // middle of the cluster
    EXPECT_EQ(map.clusterCount(), 2u);
    auto snap = map.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].startPfn, 0u);
    EXPECT_EQ(snap[0].pages, 2 * kBlock);
    EXPECT_EQ(snap[1].startPfn, 3 * kBlock);
    EXPECT_EQ(snap[1].pages, 2 * kBlock);
    EXPECT_TRUE(map.checkInvariants());
}

TEST(ContiguityMap, RemoveAtEdgesShrinks)
{
    ContiguityMap map(kBlock);
    for (int i = 0; i < 3; ++i)
        map.onBlockFree(i * kBlock);
    map.onBlockAllocated(0);
    EXPECT_EQ(map.clusterCount(), 1u);
    EXPECT_EQ(map.snapshot()[0].startPfn, kBlock);
    map.onBlockAllocated(2 * kBlock);
    EXPECT_EQ(map.clusterCount(), 1u);
    EXPECT_EQ(map.snapshot()[0].pages, kBlock);
    map.onBlockAllocated(kBlock);
    EXPECT_EQ(map.clusterCount(), 0u);
    EXPECT_EQ(map.freePagesTracked(), 0u);
    EXPECT_TRUE(map.checkInvariants());
}

TEST(ContiguityMap, NextFitPrefersFit)
{
    ContiguityMap map(kBlock);
    map.onBlockFree(0);                    // 1-block cluster
    map.onBlockFree(10 * kBlock);          // 2-block cluster
    map.onBlockFree(11 * kBlock);
    auto c = map.placeNextFit(2 * kBlock);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->startPfn, 10 * kBlock);
}

TEST(ContiguityMap, NextFitFallsBackToLargest)
{
    ContiguityMap map(kBlock);
    map.onBlockFree(0);
    map.onBlockFree(10 * kBlock);
    map.onBlockFree(11 * kBlock);
    auto c = map.placeNextFit(100 * kBlock);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->startPfn, 10 * kBlock);
    EXPECT_EQ(c->pages, 2 * kBlock);
}

TEST(ContiguityMap, NextFitRoverAdvances)
{
    // Three equal clusters; successive placements should rotate across
    // them instead of re-issuing the same cluster (racing deferral).
    ContiguityMap map(kBlock);
    map.onBlockFree(0);
    map.onBlockFree(10 * kBlock);
    map.onBlockFree(20 * kBlock);
    auto a = map.placeNextFit(kBlock);
    auto b = map.placeNextFit(kBlock);
    auto c = map.placeNextFit(kBlock);
    ASSERT_TRUE(a && b && c);
    EXPECT_NE(a->startPfn, b->startPfn);
    EXPECT_NE(b->startPfn, c->startPfn);
    EXPECT_NE(a->startPfn, c->startPfn);
    // Fourth placement wraps around.
    auto d = map.placeNextFit(kBlock);
    ASSERT_TRUE(d);
    EXPECT_EQ(d->startPfn, a->startPfn);
}

TEST(ContiguityMap, BestFitPicksSmallestSufficient)
{
    ContiguityMap map(kBlock);
    map.onBlockFree(0); // size 1
    map.onBlockFree(10 * kBlock);
    map.onBlockFree(11 * kBlock); // size 2
    map.onBlockFree(20 * kBlock);
    map.onBlockFree(21 * kBlock);
    map.onBlockFree(22 * kBlock); // size 3
    auto c = map.placeBestFit(2 * kBlock);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->startPfn, 10 * kBlock);
    // Too big for all -> largest.
    auto l = map.placeBestFit(10 * kBlock);
    ASSERT_TRUE(l);
    EXPECT_EQ(l->startPfn, 20 * kBlock);
}

TEST(ContiguityMap, RoverSurvivesClusterRemoval)
{
    ContiguityMap map(kBlock);
    map.onBlockFree(0);
    map.onBlockFree(10 * kBlock);
    auto a = map.placeNextFit(kBlock);
    ASSERT_TRUE(a);
    // Remove the cluster the rover points at; the next placement must
    // still succeed.
    auto b = map.placeNextFit(kBlock);
    ASSERT_TRUE(b);
    map.onBlockAllocated(b->startPfn);
    auto c = map.placeNextFit(kBlock);
    ASSERT_TRUE(c);
}

// --- NUMA-sharded (striped) mode ------------------------------------

namespace
{

constexpr std::uint64_t kSpan = 64 * kBlock; // pages covered by the map

/** Mirror one op sequence into a striped and an unsharded map. */
struct MapPair
{
    explicit MapPair(unsigned stripes)
        : striped(kBlock, stripes, 0, kSpan), flat(kBlock)
    {
    }

    void
    freeBlock(Pfn pfn)
    {
        striped.onBlockFree(pfn);
        flat.onBlockFree(pfn);
    }

    void
    allocBlock(Pfn pfn)
    {
        striped.onBlockAllocated(pfn);
        flat.onBlockAllocated(pfn);
    }

    ContiguityMap striped;
    ContiguityMap flat;
};

} // namespace

TEST(ContiguityMapStriped, OneStripeIsTheLegacyMap)
{
    ContiguityMap map(kBlock, 1, 0, kSpan);
    EXPECT_FALSE(map.striped());
    EXPECT_EQ(map.stripes(), 1u);
    map.onBlockFree(0);
    map.onBlockFree(kBlock);
    EXPECT_EQ(map.clusterCount(), 1u);
    EXPECT_EQ(map.largest()->pages, 2 * kBlock);
    EXPECT_TRUE(map.checkInvariants());
}

TEST(ContiguityMapStriped, RunsSplitAtStripeBoundaries)
{
    // A free run crossing a stripe boundary is tracked as one cluster
    // per stripe (clusters are maximal within their stripe), but the
    // page accounting is unchanged.
    ContiguityMap map(kBlock, 2, 0, kSpan); // boundary at 32 * kBlock
    EXPECT_TRUE(map.striped());
    for (Pfn b = 30; b < 34; ++b)
        map.onBlockFree(b * kBlock);
    EXPECT_EQ(map.freePagesTracked(), 4 * kBlock);
    EXPECT_EQ(map.clusterCount(), 2u);
    auto snap = map.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].startPfn, 30 * kBlock);
    EXPECT_EQ(snap[0].pages, 2 * kBlock);
    EXPECT_EQ(snap[1].startPfn, 32 * kBlock);
    EXPECT_EQ(snap[1].pages, 2 * kBlock);
    EXPECT_TRUE(map.checkInvariants());
}

TEST(ContiguityMapStriped, PlacementScansOtherStripes)
{
    // Only stripe 1 has free space; the ring scan must leave the
    // rover's home stripe and find it.
    ContiguityMap map(kBlock, 4, 0, kSpan); // 16 blocks per stripe
    map.onBlockFree(20 * kBlock);           // stripe 1
    map.onBlockFree(21 * kBlock);
    auto c = map.placeNextFit(2 * kBlock);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->startPfn, 20 * kBlock);
    EXPECT_EQ(c->pages, 2 * kBlock);
    // Oversized request falls back to the largest cluster anywhere.
    auto l = map.placeNextFit(100 * kBlock);
    ASSERT_TRUE(l);
    EXPECT_EQ(l->startPfn, 20 * kBlock);
}

TEST(ContiguityMapStriped, TrackingMatchesUnshardedMirror)
{
    // Same op sequence into striped and flat maps: page accounting and
    // the union of tracked pages agree (cluster boundaries may not —
    // stripe-crossing runs split).
    MapPair maps(4);
    for (Pfn b : {0ull, 1ull, 2ull, 15ull, 16ull, 17ull, 40ull, 63ull})
        maps.freeBlock(b * kBlock);
    for (Pfn b : {1ull, 16ull})
        maps.allocBlock(b * kBlock);
    EXPECT_EQ(maps.striped.freePagesTracked(),
              maps.flat.freePagesTracked());
    std::uint64_t striped_pages = 0, flat_pages = 0;
    for (const auto &c : maps.striped.snapshot())
        striped_pages += c.pages;
    for (const auto &c : maps.flat.snapshot())
        flat_pages += c.pages;
    EXPECT_EQ(striped_pages, flat_pages);
    EXPECT_TRUE(maps.striped.checkInvariants());
    EXPECT_TRUE(maps.flat.checkInvariants());
    // Draining every remaining block empties both.
    for (Pfn b : {0ull, 2ull, 15ull, 17ull, 40ull, 63ull})
        maps.allocBlock(b * kBlock);
    EXPECT_EQ(maps.striped.clusterCount(), 0u);
    EXPECT_EQ(maps.striped.freePagesTracked(), 0u);
}

TEST(ContiguityMapStriped, RoverRotatesAcrossStripes)
{
    // One equal cluster per stripe: successive placements rotate over
    // all of them before reusing one, like the unsharded rover.
    ContiguityMap map(kBlock, 2, 0, kSpan);
    map.onBlockFree(0);            // stripe 0
    map.onBlockFree(40 * kBlock);  // stripe 1
    auto a = map.placeNextFit(kBlock);
    auto b = map.placeNextFit(kBlock);
    ASSERT_TRUE(a && b);
    EXPECT_NE(a->startPfn, b->startPfn);
    auto c = map.placeNextFit(kBlock);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->startPfn, a->startPfn);
    const ContiguityMapStats st = map.stats();
    EXPECT_EQ(st.placements, 3u);
    EXPECT_GT(st.placementScanSteps, 0u);
}
