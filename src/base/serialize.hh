/**
 * @file
 * Flat binary serialization for trace files and simulator
 * checkpoints. A Serializer appends little-endian primitives to a
 * growable byte buffer; a Deserializer reads them back with bounds
 * checking (fatal on a short or malformed buffer — snapshot files
 * come from disk and must fail loudly, never read garbage).
 *
 * Tagged sections (beginSection/endSection and the matching
 * expectSection) give snapshot blobs self-describing structure: a
 * section is a 32-bit tag plus a byte length, so a reader can verify
 * it is looking at the component it expects and a mismatched or
 * truncated snapshot names the section that broke instead of
 * decoding noise.
 *
 * crc32() is the IEEE 802.3 polynomial (table-driven, no external
 * dependencies) used by both the .ctrace chunk index and the
 * checkpoint trailer.
 */

#ifndef CONTIG_BASE_SERIALIZE_HH
#define CONTIG_BASE_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace contig
{

/** CRC-32 (IEEE) over a byte range. */
std::uint32_t crc32(const void *data, std::size_t n,
                    std::uint32_t seed = 0);

class Serializer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void
    boolean(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    bytes(const void *data, std::size_t n)
    {
        const std::uint8_t *p = static_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    void
    str(std::string_view s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    /**
     * Open a tagged section; returns a cookie for endSection. The
     * byte length is patched in when the section closes, so sections
     * nest naturally.
     */
    std::size_t beginSection(std::uint32_t tag);
    void endSection(std::size_t cookie);

    const std::vector<std::uint8_t> &data() const { return buf_; }
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

class Deserializer
{
  public:
    /** The buffer must outlive the deserializer. */
    Deserializer(const void *data, std::size_t n,
                 std::string what = "snapshot")
        : p_(static_cast<const std::uint8_t *>(data)), n_(n),
          what_(std::move(what))
    {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();
    bool boolean() { return u8() != 0; }
    void bytes(void *out, std::size_t n);
    std::string str();

    /**
     * Read a section header and check its tag; returns the byte
     * offset just past the section (for sanity checks). Fatal when
     * the tag differs — the snapshot does not contain the component
     * the caller expects.
     */
    std::size_t expectSection(std::uint32_t tag, const char *name);

    std::size_t offset() const { return off_; }
    std::size_t remaining() const { return n_ - off_; }

  private:
    void need(std::size_t n) const;

    const std::uint8_t *p_;
    std::size_t n_;
    std::size_t off_ = 0;
    std::string what_;
};

/** Compact four-character section tags ("TLB0" and friends). */
constexpr std::uint32_t
sectionTag(char a, char b, char c, char d)
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

} // namespace contig

#endif // CONTIG_BASE_SERIALIZE_HH
