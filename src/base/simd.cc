#include "base/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace contig
{
namespace simd
{

namespace
{

std::atomic<bool> forceScalar_{false};

bool
detectAvx2()
{
#if CONTIG_SIMD_AVX2
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

/** CONTIG_SIMD=0 in the environment forces scalar before main(). */
bool
envForcesScalar()
{
    const char *env = std::getenv("CONTIG_SIMD");
    return env && std::strcmp(env, "0") == 0;
}

} // namespace

bool
avx2Available()
{
    static const bool avail = detectAvx2();
    return avail;
}

void
setForceScalar(bool force)
{
    forceScalar_.store(force, std::memory_order_relaxed);
}

bool
forceScalar()
{
    static const bool env = envForcesScalar();
    return env || forceScalar_.load(std::memory_order_relaxed);
}

const char *
modeName(bool use_simd)
{
    return use_simd ? "avx2" : "scalar";
}

} // namespace simd
} // namespace contig
