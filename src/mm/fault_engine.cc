#include "mm/fault_engine.hh"

#include <algorithm>
#include <mutex>
#include <optional>
#include <thread>

#include "base/align.hh"
#include "base/logging.hh"
#include "mm/kernel.hh"
#include "mm/page_cache.hh"
#include "obs/attribution.hh"
#include "obs/observatory.hh"
#include "obs/trace.hh"

namespace contig
{

FaultEngine::FaultEngine(Kernel &kernel)
    : kernel_(kernel), cfg_(kernel.config()),
      threaded_(kernel.config().threads > 1),
      faultPhase_(obs::Phase::bind(obs::MetricRegistry::global(),
                                   cfg_.metricsPrefix + ".fault")),
      daemonPhase_(obs::Phase::bind(obs::MetricRegistry::global(),
                                    cfg_.metricsPrefix + ".daemon")),
      placePhase_(obs::Phase::bind(obs::MetricRegistry::global(),
                                   cfg_.metricsPrefix + ".fault.place")),
      installPhase_(obs::Phase::bind(obs::MetricRegistry::global(),
                                     cfg_.metricsPrefix + ".fault.install")),
      fillPhase_(obs::Phase::bind(obs::MetricRegistry::global(),
                                  cfg_.metricsPrefix + ".fault.fill"))
{
    if (cfg_.lockStats)
        statsLock_.bindStats(
            &LockStatsRegistry::global().site("fault.stats"));
    if (obs::AttribRegistry::enabled())
        attrib_ = std::make_unique<obs::FaultAttribution>();
}

FaultEngine::~FaultEngine()
{
    if (attrib_)
        obs::AttribRegistry::global().absorbFault(*attrib_);
}

// --- threading -----------------------------------------------------------

FaultEngine::WorkerScope::WorkerScope(FaultEngine &engine, int cpu)
    : engine_(engine), cpuScope_(cpu)
{
    contig_assert(tlsOwner_ != &engine,
                  "nested WorkerScope on one thread");
    engine_.activeWorkers_.fetch_add(1, std::memory_order_acq_rel);
    tlsOwner_ = &engine_;
    tlsStats_ = &stats_;
    tlsBatch_ = &batch_;
    if (engine_.attrib_) {
        attrib_ = std::make_unique<obs::FaultAttribution>();
        tlsAttrib_ = attrib_.get();
    }
}

FaultEngine::WorkerScope::~WorkerScope()
{
    tlsOwner_ = nullptr;
    tlsStats_ = nullptr;
    tlsBatch_ = nullptr;
    tlsAttrib_ = nullptr;
    {
        std::lock_guard<SpinLock> g(engine_.statsLock_);
        engine_.stats_.mergeFrom(stats_);
        engine_.batch_.mergeFrom(batch_);
        if (attrib_)
            engine_.attrib_->mergeFrom(*attrib_);
    }
    engine_.activeWorkers_.fetch_sub(1, std::memory_order_acq_rel);
}

void
FaultEngine::drainPendingTicks()
{
    if (!threaded_)
        return; // sequential runs tick inline in finishFault
    const std::uint64_t c = clock_.load(std::memory_order_acquire);
    const std::uint64_t ticks_due = c / cfg_.tickPeriodFaults;
    const bool sampler_behind =
        sampler_ && samplerSeen_.load(std::memory_order_acquire) < c;
    if (ticksRun_.load(std::memory_order_acquire) >= ticks_due &&
        !sampler_behind)
        return;

    // Deferred ticks take mmLock *exclusive* — the writer side whose
    // wait time the "mm" site is most interested in.
    MaybeGuard<std::shared_mutex> g(kernel_.mmLock(), true,
                                    kernel_.mmLockSite());
    // Sampler catch-up first: captures keep the pre-tick cadence the
    // sequential path has (sample at fault N sees pre-tick state).
    if (sampler_) {
        std::uint64_t seen = samplerSeen_.load(std::memory_order_relaxed);
        const std::uint64_t now_c = clock_.load(std::memory_order_acquire);
        while (seen < now_c) {
            sampler_->onFaultTick();
            ++seen;
        }
        samplerSeen_.store(seen, std::memory_order_release);
    }
    while (true) {
        const std::uint64_t due = clock_.load(std::memory_order_acquire) /
                                  cfg_.tickPeriodFaults;
        const std::uint64_t run =
            ticksRun_.load(std::memory_order_relaxed);
        if (run >= due)
            break;
        ticksRun_.store(run + 1, std::memory_order_relaxed);
        CONTIG_TRACE(obs::TraceEventKind::DaemonTick,
                     (run + 1) * cfg_.tickPeriodFaults);
        obs::ScopedPhase timer(daemonPhase_);
        kernel_.policy().onTick(kernel_);
    }
}

// --- single-fault path ---------------------------------------------------

void
FaultEngine::touch(Process &proc, Gva gva, Access access)
{
    drainPendingTicks();
    // Watermark probe before any lock: threaded kernels just nudge
    // kswapd; sequential ones run its balancing synchronously here.
    if (ReclaimEngine *rec = kernel_.reclaim())
        rec->checkWatermarks(proc.homeNode());
    MaybeSharedGuard<std::shared_mutex> mm(kernel_.mmLock(), threaded_,
                                          kernel_.mmLockSite());
    touchLocked(proc, gva, access);
}

void
FaultEngine::touchLocked(Process &proc, Gva gva, Access access)
{
    Vma *vma = proc.addressSpace().findVma(gva);
    contig_assert(vma, "touch outside any VMA (gva 0x%llx)",
                  static_cast<unsigned long long>(gva.value));
    MaybeGuard<SpinLock> vg(vma->faultLock(), threaded_);
    // Any direct reclaim this fault escalates to may evict from the
    // VMA whose lock this thread now holds (see HeldVmaScope).
    ReclaimEngine::HeldVmaScope held(vma);

    const Vpn vpn = gva.pageNumber();
    auto m = proc.pageTable().lookup(vpn);
    if (m && m->valid()) {
        if (ReclaimEngine *rec = kernel_.reclaim())
            rec->noteReferenced(m->pfn); // second chance for the leaf
        if (access == Access::Write && m->cow) {
            std::optional<obs::ScopedPhase> timer;
            if (!inWorker())
                timer.emplace(faultPhase_, &stats_.totalCycles);
            cowFault(proc, *vma, vpn, *m);
        }
        proc.noteTouched(*vma, vpn);
        return;
    }

    {
        std::optional<obs::ScopedPhase> timer;
        if (!inWorker())
            timer.emplace(faultPhase_, &stats_.totalCycles);
        if (vma->kind() == VmaKind::File)
            fileFault(proc, *vma, vpn);
        else
            anonFault(proc, *vma, vpn);
    }
    proc.noteTouched(*vma, vpn);
}

void
FaultEngine::classifyAnon(Process &proc, Vma &vma, FaultContext &ctx) const
{
    ctx.kind = FaultKind::Anon;
    ctx.order = 0;
    if (cfg_.thpEnabled && kernel_.policy().allowsHugeFaults() &&
        vma.coversAligned(ctx.vpn, kHugeOrder)) {
        // THP faults require the whole aligned huge range unmapped.
        const Vpn huge_base = ctx.vpn & ~(pagesInOrder(kHugeOrder) - 1);
        const Vpn huge_end = huge_base + pagesInOrder(kHugeOrder);
        if (proc.pageTable().findMappedIn(huge_base, huge_end) == huge_end)
            ctx.order = kHugeOrder;
    }
    ctx.base = ctx.vpn & ~(pagesInOrder(ctx.order) - 1);
}

void
FaultEngine::placeAnon(Process &proc, Vma &vma, FaultContext &ctx)
{
    AllocationPolicy &policy = kernel_.policy();
    ReclaimEngine *rec = kernel_.reclaim();
    ctx.alloc = policy.allocate(kernel_, proc, vma, ctx.base, ctx.order);
    if (!ctx.alloc.ok() && !rec) {
        // Direct reclaim: evict clean page-cache pages and retry.
        kernel_.dropCaches();
        kernel_.incCounter("reclaim.direct");
        ctx.alloc = policy.allocate(kernel_, proc, vma, ctx.base, ctx.order);
    }
    if (!ctx.alloc.ok() && rec && ctx.order != kHugeOrder)
        reclaimRetry(proc, vma, ctx.base, ctx.order, ctx.alloc);
    if (!ctx.alloc.ok() && ctx.order == kHugeOrder) {
        // A huge-order shortfall is a defragmentation problem, not a
        // pressure problem: wake kswapd and demote immediately rather
        // than stall this fault on direct reclaim of 512 pages (the
        // THP defrag=madvise stance).
        if (rec)
            rec->wakeKswapd();
        ctx.fallback = ctx.alloc.fail == AllocFail::None
                           ? AllocFail::NoHugeBlock
                           : ctx.alloc.fail;
        policy.noteAllocFail(ctx.fallback);
        CONTIG_TRACE(obs::TraceEventKind::HugeFallback, ctx.vpn);
        ctx.order = 0;
        ctx.base = ctx.vpn;
        ctx.alloc = policy.allocate(kernel_, proc, vma, ctx.base, ctx.order);
        if (!ctx.alloc.ok() && rec)
            reclaimRetry(proc, vma, ctx.base, ctx.order, ctx.alloc);
    }
    if (!ctx.alloc.ok()) {
        policy.noteAllocFail(AllocFail::Oom);
        fatal("out of memory: anon fault in %s (vma %u)",
              proc.name().c_str(), vma.id());
    }
}

void
FaultEngine::reclaimRetry(Process &proc, Vma &vma, Vpn base, unsigned order,
                          AllocResult &res)
{
    // The order-0 slow path: kswapd is woken so background reclaim
    // keeps running after this fault, then bounded direct-reclaim
    // rounds satisfy it synchronously. The "reclaim.direct" counter
    // keeps its pre-reclaim meaning: one bump per slow-path entry.
    ReclaimEngine &rec = *kernel_.reclaim();
    rec.wakeKswapd();
    kernel_.incCounter("reclaim.direct");
    AllocationPolicy &policy = kernel_.policy();
    Cycles stall = 0;
    const std::uint64_t want = pagesInOrder(order);
    // Sequentially a zero-freed round is final (nothing will change
    // under our feet) and four rounds always suffice. Threaded, a
    // round can transiently free nothing (candidates requeued while
    // other workers hold their VMA locks) and freed pages can be
    // stolen before the retry allocates — so yield through a bounded
    // number of dry rounds before declaring OOM.
    const bool threaded = kernel_.threaded();
    const int max_rounds = threaded ? 64 : 4;
    int dry = 0;
    for (int round = 0; round < max_rounds && !res.ok(); ++round) {
        const ReclaimEngine::Progress p =
            rec.directReclaim(proc.homeNode(), want);
        stall += p.cycles;
        if (p.freed == 0) {
            // Dry rounds are cheap (one popped-and-requeued scan
            // batch), and peers hold their VMA locks for whole touch
            // spans, so genuine progress can take many tries.
            if (!threaded || ++dry >= 16)
                break; // everything left is pinned or lock-busy
            std::this_thread::yield();
            continue;
        }
        dry = 0;
        res = policy.allocate(kernel_, proc, vma, base, order);
    }
    if (!res.ok()) {
        kernel_.dropCaches();
        res = policy.allocate(kernel_, proc, vma, base, order);
    }
    if (res.ok())
        res.placementCycles += stall;
}

void
FaultEngine::installAnon(Process &proc, Vma &vma, FaultContext &ctx)
{
    kernel_.claimFrames(ctx.alloc.pfn, ctx.order, FrameOwner::Anon,
                        proc.pid(), ctx.base << kPageShift);
    proc.pageTable().map(ctx.base, ctx.alloc.pfn, ctx.order, true, false);
    const std::uint64_t n = pagesInOrder(ctx.order);
    for (std::uint64_t i = 0; i < n; ++i)
        ++kernel_.physMem().frame(ctx.alloc.pfn + i).mapCount;
    vma.allocatedPages += n;

    ctx.cycles = cfg_.faultBaseCycles + cfg_.zeroCyclesPerPage * n +
                 ctx.alloc.placementCycles;
    if (ReclaimEngine *rec = kernel_.reclaim())
        ctx.cycles += rec->chargeSwapIn(proc.pid(), ctx.base, ctx.order);
    kernel_.policy().onMapped(kernel_, proc, vma, ctx.base, ctx.alloc.pfn,
                              ctx.order);
    finishFault(proc, vma, ctx.base, ctx.alloc.pfn, ctx.order, ctx.cycles,
                false, false, ctx.fallback);
}

void
FaultEngine::anonFault(Process &proc, Vma &vma, Vpn vpn)
{
    FaultContext ctx;
    ctx.vpn = vpn;
    classifyAnon(proc, vma, ctx);
    {
        std::optional<obs::ScopedPhase> stage;
        if (cfg_.faultStageTimers && !inWorker())
            stage.emplace(placePhase_);
        placeAnon(proc, vma, ctx);
    }
    {
        std::optional<obs::ScopedPhase> stage;
        if (cfg_.faultStageTimers && !inWorker())
            stage.emplace(installPhase_);
        installAnon(proc, vma, ctx);
    }
}

void
FaultEngine::cowFault(Process &proc, Vma &vma, Vpn vpn, const Mapping &m)
{
    const unsigned order = m.order;
    const Vpn base = vpn & ~(pagesInOrder(order) - 1);

    AllocResult res =
        kernel_.policy().allocate(kernel_, proc, vma, base, order);
    if (!res.ok() && kernel_.reclaim() && order == 0)
        reclaimRetry(proc, vma, base, order, res);
    if (!res.ok()) {
        kernel_.policy().noteAllocFail(AllocFail::Oom);
        fatal("out of memory: COW fault in %s", proc.name().c_str());
    }

    kernel_.claimFrames(res.pfn, order, FrameOwner::Anon, proc.pid(),
                        base << kPageShift);
    proc.pageTable().unmap(base, order);
    const std::uint64_t n = pagesInOrder(order);
    for (std::uint64_t i = 0; i < n; ++i) {
        --kernel_.physMem().frame(m.pfn + i).mapCount;
        ++kernel_.physMem().frame(res.pfn + i).mapCount;
    }
    kernel_.putFrame(m.pfn, order);
    proc.pageTable().map(base, res.pfn, order, true, false);

    const Cycles cycles = cfg_.faultBaseCycles +
                          cfg_.copyCyclesPerPage * n + res.placementCycles;
    ++curStats().cowFaults;
    kernel_.policy().onMapped(kernel_, proc, vma, base, res.pfn, order);
    finishFault(proc, vma, base, res.pfn, order, cycles, true, false);
}

void
FaultEngine::fileFault(Process &proc, Vma &vma, Vpn vpn)
{
    File &file = kernel_.pageCache().file(vma.fileId());
    const std::uint64_t file_page =
        vma.fileOffsetPages() + (vpn - vma.start().pageNumber());
    contig_assert(file_page < file.sizePages(),
                  "file fault beyond EOF (page %llu)",
                  static_cast<unsigned long long>(file_page));

    Pfn pfn;
    {
        // The page-cache lock spans lookup AND map+getFrame: dropping
        // it in between would let kswapd evict the frame before the
        // extra reference pins it.
        MaybeGuard<SpinLock> pc(kernel_.pageCacheLock(), threaded_);
        pfn = ensureFileCachedLocked(file, file_page);
        if (pfn == kInvalidPfn)
            fatal("out of memory: page-cache fault in %s",
                  proc.name().c_str());

        // File mappings are shared read-only in this model.
        proc.pageTable().map(vpn, pfn, 0, false, false);
        kernel_.getFrame(pfn);
    }
    ++kernel_.physMem().frame(pfn).mapCount;
    vma.allocatedPages += 1;

    ++curStats().fileFaults;
    finishFault(proc, vma, vpn, pfn, 0, cfg_.faultBaseCycles, false, true);
}

void
FaultEngine::finishFault(Process &proc, Vma &vma, Vpn vpn, Pfn pfn,
                         unsigned order, Cycles cycles, bool cow, bool file,
                         AllocFail fallback)
{
    FaultStats &st = curStats();
    ++st.faults;
    if (!cow && !file) {
        if (order == kHugeOrder)
            ++st.hugeFaults;
        else
            ++st.baseFaults;
    }
    st.totalCycles += cycles;
    st.latencyUs.add(static_cast<double>(cycles) / cfg_.cyclesPerUs);

    if (attrib_) {
        const unsigned kind = file ? static_cast<unsigned>(FaultKind::File)
                              : cow ? static_cast<unsigned>(FaultKind::Cow)
                                    : static_cast<unsigned>(FaultKind::Anon);
        obs::FaultAttribution &table =
            inWorker() && tlsAttrib_ ? *tlsAttrib_ : *attrib_;
        table.record(kind, order == kHugeOrder,
                     static_cast<unsigned>(fallback), cycles);
    }

    const std::uint64_t c =
        clock_.fetch_add(1, std::memory_order_acq_rel) + 1;

    if (file)
        CONTIG_TRACE(obs::TraceEventKind::FileFault, vpn, pfn,
                     vma.fileId());
    else if (cow)
        CONTIG_TRACE(obs::TraceEventKind::CowFault, vpn, pfn, order);
    else
        CONTIG_TRACE(obs::TraceEventKind::PageFault, vpn, pfn, order);

    // Concurrent faults defer the observer / sampler / policy-tick
    // work below to drainPendingTicks() — it needs the exclusive lock.
    if (inWorker() || workersActive())
        return;

    if (kernel_.onFault) {
        FaultEvent ev;
        ev.proc = &proc;
        ev.vma = &vma;
        ev.vpn = vpn;
        ev.pfn = pfn;
        ev.order = order;
        ev.cow = cow;
        ev.file = file;
        kernel_.onFault(ev);
    }

    // Observatory sampling happens before the policy tick below, so a
    // capture at fault N sees the pre-tick state (the cadence the
    // coverage timelines were defined with).
    if (sampler_) {
        sampler_->onFaultTick();
        samplerSeen_.store(c, std::memory_order_relaxed);
    }

    if (c % cfg_.tickPeriodFaults == 0) {
        CONTIG_TRACE(obs::TraceEventKind::DaemonTick, c);
        ticksRun_.store(c / cfg_.tickPeriodFaults,
                        std::memory_order_relaxed);
        obs::ScopedPhase timer(daemonPhase_);
        kernel_.policy().onTick(kernel_);
    }
}

// --- batch paths ---------------------------------------------------------

std::uint64_t
FaultEngine::tickBudget() const
{
    return cfg_.tickPeriodFaults - (now() % cfg_.tickPeriodFaults);
}

void
FaultEngine::handleRange(const FaultRequest &span, TouchNote note)
{
    if (!span.proc || span.pages == 0)
        return;
    drainPendingTicks();
    if (ReclaimEngine *rec = kernel_.reclaim())
        rec->checkWatermarks(span.proc->homeNode());
    MaybeSharedGuard<std::shared_mutex> mm(kernel_.mmLock(), threaded_,
                                          kernel_.mmLockSite());
    Process &proc = *span.proc;
    FaultBatchStats &bt = curBatch();
    ++bt.rangeRequests;
    bt.rangePages += span.pages;

    const Vpn end = span.vpn + span.pages;

    if (note == TouchNote::Origins) {
        // Origin probes: one full touch per potential huge region, so
        // a policy that serves the first probe with a 2 MiB mapping
        // absorbs the whole stride (the nested-backing access shape).
        for (Vpn v = span.vpn; v < end; v += pagesInOrder(kHugeOrder))
            touchLocked(proc, Gva{v << kPageShift}, span.access);
    }

    if (!cfg_.faultBatching) {
        resolveSpanSingle(proc, span, note);
        return;
    }

    Vpn v = span.vpn;
    Vma *vma = span.vma;
    while (v < end) {
        if (!vma || v < vma->start().pageNumber() ||
            v >= vma->start().pageNumber() + vma->pages()) {
            vma = proc.addressSpace().findVma(Gva{v << kPageShift});
            contig_assert(vma, "touch outside any VMA (gva 0x%llx)",
                          static_cast<unsigned long long>(v << kPageShift));
        }
        const Vpn sub_end =
            std::min(end, vma->start().pageNumber() + vma->pages());
        {
            MaybeGuard<SpinLock> vg(vma->faultLock(), threaded_);
            ReclaimEngine::HeldVmaScope held(vma);
            resolveSpan(proc, *vma, v, sub_end, span.access,
                        note == TouchNote::AllPages);
        }
        v = sub_end;
    }
}

void
FaultEngine::resolveSpanSingle(Process &proc, const FaultRequest &span,
                               TouchNote note)
{
    const Vpn end = span.vpn + span.pages;
    for (Vpn v = span.vpn; v < end; ++v) {
        if (note == TouchNote::Origins && proc.pageTable().lookup(v))
            continue;
        touchLocked(proc, Gva{v << kPageShift}, span.access);
    }
}

void
FaultEngine::resolveSpan(Process &proc, Vma &vma, Vpn start, Vpn end,
                         Access access, bool note_all)
{
    PageTable &pt = proc.pageTable();
    Vpn v = start;
    while (v < end) {
        const Vpn mapped = pt.findMappedIn(v, end);
        if (v < mapped) {
            // Unmapped gap [v, mapped).
            if (vma.kind() == VmaKind::File) {
                resolveFileGap(proc, vma, v, mapped);
                v = mapped;
            } else {
                v = resolveAnonGap(proc, vma, v, mapped, end, note_all);
            }
            continue;
        }
        // Mapped stretch: resolve COW once per leaf, account touches.
        while (v < end) {
            auto m = pt.lookup(v);
            if (!m)
                break;
            if (ReclaimEngine *rec = kernel_.reclaim())
                rec->noteReferenced(m->pfn);
            const std::uint64_t n = pagesInOrder(m->order);
            const Vpn leaf_end = std::min(end, (v & ~(n - 1)) + n);
            if (access == Access::Write && m->cow) {
                std::optional<obs::ScopedPhase> timer;
                if (!inWorker())
                    timer.emplace(faultPhase_, &stats_.totalCycles);
                cowFault(proc, vma, v, *m);
            }
            if (note_all)
                for (Vpn w = v; w < leaf_end; ++w)
                    proc.noteTouched(vma, w);
            v = leaf_end;
        }
    }
}

Vpn
FaultEngine::resolveAnonGap(Process &proc, Vma &vma, Vpn gap_start,
                            Vpn gap_end, Vpn span_end, bool note_all)
{
    PageTable &pt = proc.pageTable();
    AllocationPolicy &policy = kernel_.policy();
    const std::uint64_t huge_pages = pagesInOrder(kHugeOrder);
    std::vector<FaultSlot> slots;
    slots.reserve(std::min<std::uint64_t>(gap_end - gap_start,
                                          cfg_.tickPeriodFaults));

    Vpn v = gap_start;
    while (v < gap_end) {
        // Huge candidate? Same criteria as the per-fault classify
        // stage, plus "no queued 4 KiB slot inside the block" (queued
        // slots are installs the per-fault path would already have
        // made).
        const Vpn block = v & ~(huge_pages - 1);
        const bool huge =
            cfg_.thpEnabled && policy.allowsHugeFaults() &&
            vma.coversAligned(v, kHugeOrder) &&
            (slots.empty() || slots.back().base < block) &&
            pt.findMappedIn(block, block + huge_pages) ==
                block + huge_pages;
        if (huge) {
            commitAnonChunk(proc, vma, slots);
            {
                std::optional<obs::ScopedPhase> timer;
                if (!inWorker())
                    timer.emplace(faultPhase_, &stats_.totalCycles);
                anonFault(proc, vma, v);
            }
            // The install may have been demoted to 4 KiB; resume after
            // whatever leaf now covers v.
            auto m = pt.lookup(v);
            const std::uint64_t n = pagesInOrder(m->order);
            const Vpn leaf_end = (v & ~(n - 1)) + n;
            proc.noteTouched(vma, v);
            if (note_all)
                for (Vpn w = v + 1; w < std::min(leaf_end, span_end); ++w)
                    proc.noteTouched(vma, w);
            v = leaf_end;
            continue;
        }
        slots.push_back(FaultSlot{v, 0, AllocResult{}});
        if (slots.size() >= tickBudget())
            commitAnonChunk(proc, vma, slots);
        ++v;
    }
    commitAnonChunk(proc, vma, slots);
    return v;
}

void
FaultEngine::commitAnonChunk(Process &proc, Vma &vma,
                             std::vector<FaultSlot> &slots)
{
    if (slots.empty())
        return;
    std::optional<obs::ScopedPhase> fault_timer;
    if (!inWorker())
        fault_timer.emplace(faultPhase_, &stats_.totalCycles);
    AllocationPolicy &policy = kernel_.policy();
    PageTable::RunMapper mapper(proc.pageTable());
    FaultBatchStats &bt = curBatch();
    ReclaimEngine *rec = kernel_.reclaim();
    // Per-chunk watermark probe: a span can be hundreds of chunks, so
    // checking only at handleRange entry would leave the background
    // reclaimer asleep while the span drains the zone and every
    // shortfall became a direct-reclaim stall.
    if (rec)
        rec->checkWatermarks(proc.homeNode());

    // Reclaim (a policy's targeted eviction inside allocateBatch, the
    // slow path below, or a page-table pool refill inside mapper.map
    // itself) can unmap leaves of this very page table and free
    // interior nodes the mapper has cached. Track the engine's unmap
    // epoch and drop the cached node whenever it moved — checked
    // before every mapper use (one relaxed load on the fast path).
    std::uint64_t epoch = rec ? rec->unmapEpoch() : 0;
    const auto resyncMapper = [&] {
        if (!rec)
            return;
        const std::uint64_t e = rec->unmapEpoch();
        if (e != epoch) {
            mapper.invalidate();
            epoch = e;
        }
    };

    auto install = [&](FaultSlot &s) {
        kernel_.claimFrames(s.res.pfn, 0, FrameOwner::Anon, proc.pid(),
                            s.base << kPageShift);
        resyncMapper();
        mapper.map(s.base, s.res.pfn, true, false);
        ++kernel_.physMem().frame(s.res.pfn).mapCount;
        vma.allocatedPages += 1;
        Cycles cycles = cfg_.faultBaseCycles +
                        cfg_.zeroCyclesPerPage +
                        s.res.placementCycles;
        if (rec)
            cycles += rec->chargeSwapIn(proc.pid(), s.base, 0);
        policy.onMapped(kernel_, proc, vma, s.base, s.res.pfn, 0);
        finishFault(proc, vma, s.base, s.res.pfn, 0, cycles, false, false);
        proc.noteTouched(vma, s.base);
    };

    std::size_t i = 0;
    while (i < slots.size()) {
        std::size_t got;
        {
            std::optional<obs::ScopedPhase> stage;
            if (!inWorker())
                stage.emplace(placePhase_);
            got = policy.allocateBatch(kernel_, proc, vma,
                                       slots.data() + i,
                                       slots.size() - i);
        }
        resyncMapper();
        {
            std::optional<obs::ScopedPhase> stage;
            if (!inWorker())
                stage.emplace(installPhase_);
            for (std::size_t j = i; j < i + got; ++j)
                install(slots[j]);
        }
        bt.batchedFaults += got;
        i += got;
        if (i < slots.size()) {
            // The per-fault failure machinery for the failing slot:
            // direct reclaim, one retry, OOM is fatal at order 0.
            FaultSlot &s = slots[i];
            if (rec) {
                reclaimRetry(proc, vma, s.base, 0, s.res);
            } else {
                kernel_.dropCaches();
                kernel_.incCounter("reclaim.direct");
                s.res = policy.allocate(kernel_, proc, vma, s.base, 0);
            }
            if (!s.res.ok()) {
                policy.noteAllocFail(AllocFail::Oom);
                fatal("out of memory: anon fault in %s (vma %u)",
                      proc.name().c_str(), vma.id());
            }
            resyncMapper();
            install(s);
            ++i;
        }
    }

    ++bt.chunks;
    bt.chunkPages.add(slots.size());
    slots.clear();
}

void
FaultEngine::resolveFileGap(Process &proc, Vma &vma, Vpn gap_start,
                            Vpn gap_end)
{
    File &file = kernel_.pageCache().file(vma.fileId());
    PageTable::RunMapper mapper(proc.pageTable());
    const Vpn vma_start = vma.start().pageNumber();
    FaultBatchStats &bt = curBatch();
    ReclaimEngine *rec = kernel_.reclaim();

    // Same mapper-vs-reclaim discipline as commitAnonChunk: the cache
    // fills and page-table pool refills below can trigger reclaim,
    // whose unmaps may free interior nodes the mapper cached.
    std::uint64_t epoch = rec ? rec->unmapEpoch() : 0;
    const auto resyncMapper = [&] {
        if (!rec)
            return;
        const std::uint64_t e = rec->unmapEpoch();
        if (e != epoch) {
            mapper.invalidate();
            epoch = e;
        }
    };

    Vpn v = gap_start;
    while (v < gap_end) {
        const Vpn chunk_end = std::min(gap_end, v + tickBudget());
        if (rec)
            rec->checkWatermarks(proc.homeNode());
        std::optional<obs::ScopedPhase> fault_timer;
        if (!inWorker())
            fault_timer.emplace(faultPhase_, &stats_.totalCycles);
        MaybeGuard<SpinLock> pc(kernel_.pageCacheLock(), threaded_);
        {
            // Pre-fill the page cache for the whole chunk (readahead
            // windows merge); installs below then never miss.
            std::optional<obs::ScopedPhase> stage;
            if (!inWorker())
                stage.emplace(fillPhase_);
            for (Vpn w = v; w < chunk_end; ++w) {
                const std::uint64_t fp =
                    vma.fileOffsetPages() + (w - vma_start);
                contig_assert(fp < file.sizePages(),
                              "file fault beyond EOF (page %llu)",
                              static_cast<unsigned long long>(fp));
                if (ensureFileCachedLocked(file, fp) == kInvalidPfn)
                    fatal("out of memory: page-cache fault in %s",
                          proc.name().c_str());
            }
        }
        {
            std::optional<obs::ScopedPhase> stage;
            if (!inWorker())
                stage.emplace(installPhase_);
            for (Vpn w = v; w < chunk_end; ++w) {
                const std::uint64_t fp =
                    vma.fileOffsetPages() + (w - vma_start);
                const Pfn pfn = file.frameFor(fp);
                resyncMapper();
                mapper.map(w, pfn, false, false);
                kernel_.getFrame(pfn);
                ++kernel_.physMem().frame(pfn).mapCount;
                vma.allocatedPages += 1;
                ++curStats().fileFaults;
                finishFault(proc, vma, w, pfn, 0, cfg_.faultBaseCycles,
                            false, true);
                proc.noteTouched(vma, w);
            }
        }
        bt.batchedFaults += chunk_end - v;
        ++bt.chunks;
        bt.chunkPages.add(chunk_end - v);
        mapper.invalidate();
        v = chunk_end;
    }
}

// --- page-cache population ------------------------------------------------

Pfn
FaultEngine::ensureFileCached(File &file, std::uint64_t file_page)
{
    MaybeGuard<SpinLock> pc(kernel_.pageCacheLock(), threaded_);
    return ensureFileCachedLocked(file, file_page);
}

Pfn
FaultEngine::ensureFileCachedLocked(File &file, std::uint64_t file_page)
{
    if (file.isCached(file_page))
        return file.frameFor(file_page);
    const std::uint64_t end =
        std::min(file.sizePages(), file_page + kReadaheadPages);
    fillFileSpan(file, file_page, end);
    return file.isCached(file_page) ? file.frameFor(file_page)
                                    : kInvalidPfn;
}

void
FaultEngine::fillFileSpan(File &file, std::uint64_t begin,
                          std::uint64_t end)
{
    AllocationPolicy &policy = kernel_.policy();
    const bool steered = policy.steersFilePlacement();
    // While this scope is live, any reclaim this thread triggers skips
    // page-cache victims — a sequential kernel (whose page-cache lock
    // is disengaged) could otherwise evict the pages this very run
    // just installed.
    ReclaimEngine::PageCacheFillScope fill_scope;
    std::uint64_t filled = 0;
    std::vector<AllocResult> results;

    std::uint64_t p = begin;
    while (p < end) {
        if (file.isCached(p)) {
            ++p;
            continue;
        }
        // Maximal uncached run starting at p.
        std::uint64_t run_end = p + 1;
        while (run_end < end && !file.isCached(run_end))
            ++run_end;
        const std::size_t n = run_end - p;
        results.resize(n);

        const auto allocRun = [&](std::uint64_t page0, std::size_t off,
                                  std::size_t count) {
            std::size_t g;
            if (steered) {
                g = policy.allocateFileRange(kernel_, file, page0, count,
                                             results.data() + off);
            } else {
                // Unsteered policies take plain buddy pages; skip the
                // virtual dispatch per page.
                g = 0;
                while (g < count) {
                    results[off + g] = buddyAlloc(kernel_, 0, 0);
                    if (!results[off + g].ok())
                        break;
                    ++g;
                }
            }
            return g;
        };
        std::size_t got = allocRun(p, 0, n);
        if (got < n) {
            if (ReclaimEngine *reng = kernel_.reclaim()) {
                // Readahead under pressure: reclaim (anon victims
                // only, per the fill scope above) and retry the
                // shortfall once before trimming the window.
                reng->wakeKswapd();
                if (reng->directReclaim(0, n - got).freed)
                    got += allocRun(p + got, got, n - got);
            }
        }
        for (std::size_t i = 0; i < got; ++i) {
            kernel_.claimFrames(results[i].pfn, 0,
                                FrameOwner::PageCache, file.id(),
                                (p + i) * kPageSize);
            file.install(p + i, results[i].pfn);
        }
        filled += got;
        if (got < n) {
            policy.noteAllocFail(AllocFail::Oom);
            break;
        }
        p = run_end;
    }

    if (filled) {
        kernel_.incCounter("pagecache.filled", filled);
        curBatch().readaheadPages.add(filled);
    }
}

void
FaultEngine::readFile(File &file, std::uint64_t page_start,
                      std::uint64_t n_pages)
{
    contig_assert(page_start + n_pages <= file.sizePages(),
                  "readFile beyond EOF");
    drainPendingTicks();
    if (ReclaimEngine *rec = kernel_.reclaim())
        rec->checkWatermarks(0); // file fills allocate node-0 first
    MaybeSharedGuard<std::shared_mutex> mm(kernel_.mmLock(), threaded_,
                                          kernel_.mmLockSite());
    MaybeGuard<SpinLock> pc(kernel_.pageCacheLock(), threaded_);
    const std::uint64_t req_end = page_start + n_pages;

    if (!cfg_.faultBatching) {
        for (std::uint64_t p = page_start; p < req_end; ++p) {
            if (file.isCached(p))
                continue;
            if (ensureFileCachedLocked(file, p) == kInvalidPfn)
                fatal("out of memory reading file %u", file.id());
        }
        return;
    }

    std::uint64_t p = page_start;
    while (p < req_end) {
        if (file.isCached(p)) {
            ++p;
            continue;
        }
        // Union of the readahead windows every uncached requested page
        // would open: one fill replaces up to 16 window fills.
        std::uint64_t fe = std::min(file.sizePages(),
                                    p + kReadaheadPages);
        for (std::uint64_t q = p + 1; q < req_end; ++q) {
            if (q < fe || file.isCached(q))
                continue;
            fe = std::min(file.sizePages(), q + kReadaheadPages);
        }
        {
            std::optional<obs::ScopedPhase> stage;
            if (!inWorker())
                stage.emplace(fillPhase_);
            fillFileSpan(file, p, fe);
        }
        for (std::uint64_t q = p; q < std::min(fe, req_end); ++q)
            if (!file.isCached(q))
                fatal("out of memory reading file %u", file.id());
        p = fe;
    }
}

// --- fork / pre-population services --------------------------------------

void
FaultEngine::shareCowRange(Process &parent, Process &child, Vma &pvma,
                           Vma &cvma)
{
    PageTable &ppt = parent.pageTable();
    PageTable &cpt = child.pageTable();
    const Vpn start = pvma.start().pageNumber();
    const Vpn end = start + pvma.pages();

    PageTable::RunMapper mapper(cpt);
    ppt.forEachLeafIn(start, end, [&](Vpn vpn, const Mapping &m) {
        // Write-protect the parent's leaf and share it COW. The
        // in-place protection flip does not disturb the traversal.
        ppt.setWritable(vpn, false, true);
        if (m.order == 0)
            mapper.map(vpn, m.pfn, false, true);
        else
            cpt.map(vpn, m.pfn, m.order, false, true);
        kernel_.getFrame(m.pfn);
        const std::uint64_t n = pagesInOrder(m.order);
        for (std::uint64_t i = 0; i < n; ++i)
            ++kernel_.physMem().frame(m.pfn + i).mapCount;
        cvma.allocatedPages += n;
    });
}

void
FaultEngine::installPrepared(Process &proc, Vma &vma, Vpn vpn, Pfn pfn,
                             unsigned order)
{
    PageTable &pt = proc.pageTable();
    PageTable::RunMapper mapper(pt);
    const std::uint64_t n = pagesInOrder(order);
    const std::uint64_t huge_pages = pagesInOrder(kHugeOrder);

    // Each leaf is claimed at its own mapping order so teardown's
    // per-leaf putFrame() finds a reference head on every leaf.
    std::uint64_t i = 0;
    while (i < n) {
        const Vpn v = vpn + i;
        const Pfn f = pfn + i;
        if (n - i >= huge_pages && isAligned(v, huge_pages) &&
            isAligned(f, huge_pages)) {
            kernel_.claimFrames(f, kHugeOrder, FrameOwner::Anon,
                                proc.pid(), v << kPageShift);
            pt.map(v, f, kHugeOrder, true, false);
            for (std::uint64_t j = 0; j < huge_pages; ++j)
                ++kernel_.physMem().frame(f + j).mapCount;
            i += huge_pages;
        } else {
            kernel_.claimFrames(f, 0, FrameOwner::Anon, proc.pid(),
                                v << kPageShift);
            mapper.map(v, f, true, false);
            ++kernel_.physMem().frame(f).mapCount;
            i += 1;
        }
    }
    vma.allocatedPages += n;
}

void
FaultEngine::chargeBulkStall(std::uint64_t pages)
{
    const Cycles cycles =
        cfg_.faultBaseCycles + cfg_.zeroCyclesPerPage * pages;
    FaultStats &st = curStats();
    st.totalCycles += cycles;
    st.latencyUs.add(static_cast<double>(cycles) / cfg_.cyclesPerUs);
    ++st.faults;
    clock_.fetch_add(1, std::memory_order_acq_rel);
}

// --- observation ----------------------------------------------------------

void
FaultEngine::collectMetrics(obs::MetricSink &sink) const
{
    obs::MetricSink::Scope s(sink, "fault.batch");
    sink.counter("range_requests", batch_.rangeRequests);
    sink.counter("range_pages", batch_.rangePages);
    sink.counter("chunks", batch_.chunks);
    sink.counter("batched_faults", batch_.batchedFaults);
    sink.histogram("chunk_pages", batch_.chunkPages);
    sink.histogram("readahead_pages", batch_.readaheadPages);
}

} // namespace contig
