file(REMOVE_RECURSE
  "CMakeFiles/ext_5level_paging.dir/ext_5level_paging.cc.o"
  "CMakeFiles/ext_5level_paging.dir/ext_5level_paging.cc.o.d"
  "ext_5level_paging"
  "ext_5level_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_5level_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
