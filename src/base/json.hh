/**
 * @file
 * Minimal streaming JSON writer. Produces compact, valid JSON with
 * proper string escaping; commas and nesting are tracked by a state
 * stack so callers never emit separators by hand. Used by the
 * TraceSink exporters and the Report/bench `--json` output, and small
 * enough to be a reasonable dependency from anywhere in base/.
 */

#ifndef CONTIG_BASE_JSON_HH
#define CONTIG_BASE_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace contig
{

/**
 * Streaming JSON writer into an internal buffer.
 *
 * Usage:
 *   JsonWriter w;
 *   w.beginObject();
 *   w.key("name"); w.value("fig07");
 *   w.key("rows"); w.beginArray(); w.value(1.5); w.endArray();
 *   w.endObject();
 *   std::string out = std::move(w).str();
 *
 * Misuse (e.g. a value in an object position without a key) trips an
 * assertion; this is a programming error, not an input error.
 */
class JsonWriter
{
  public:
    JsonWriter() = default;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Object key; must be followed by exactly one value/container. */
    void key(std::string_view k);

    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void value(bool v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void null();

    /** key() + value() in one call. */
    template <typename T>
    void
    field(std::string_view k, T &&v)
    {
        key(k);
        value(std::forward<T>(v));
    }

    /** True once every container has been closed and a value emitted. */
    bool complete() const;

    const std::string &str() const &;
    std::string str() &&;

    /**
     * JSON-escape a string body (no surrounding quotes): ", \ and
     * control characters are escaped, everything else passes through
     * byte-for-byte (UTF-8 stays valid UTF-8).
     */
    static std::string escape(std::string_view s);

  private:
    enum class Frame : std::uint8_t
    {
        ObjectStart, //!< inside {, before first key
        ObjectKey,   //!< key written, value expected
        ObjectNext,  //!< at least one member written
        ArrayStart,  //!< inside [, before first element
        ArrayNext,   //!< at least one element written
    };

    /** Write separators/state transitions for an incoming value. */
    void beforeValue();
    void raw(std::string_view s) { out_.append(s); }

    std::string out_;
    std::vector<Frame> stack_;
    bool done_ = false;
};

} // namespace contig

#endif // CONTIG_BASE_JSON_HH
