#include "policies/ca_paging.hh"

#include "base/align.hh"
#include "base/logging.hh"
#include "mm/kernel.hh"
#include "obs/metrics.hh"

namespace contig
{

CaPagingPolicy::CaPagingPolicy(const CaPagingConfig &cfg) : cfg_(cfg)
{
    if (LockStatsRegistry::enabled())
        replacementSite_ =
            &LockStatsRegistry::global().site("vma.replacement");
}

bool
CaPagingPolicy::takeTarget(Kernel &kernel, Pfn target, unsigned order)
{
    PhysicalMemory &pm = kernel.physMem();
    if (target >= pm.totalFrames())
        return false;
    if (!isAligned(target, pagesInOrder(order)))
        return false;
    // Occupancy probe via the mem_map (the paper's _count/_mapcount
    // check), then carve the exact block out of the buddy lists.
    if (pm.isFreePage(target) && pm.allocSpecific(target, order))
        return true;
    // Contiguity-aware reclaim: the target block is occupied, but its
    // residents may be reclaimable — evict them and retake instead of
    // abandoning the Offset (and the contiguity it would extend).
    if (ReclaimEngine *rec = kernel.reclaim(); rec && rec->contigAware()) {
        if (rec->reclaimRange(target, order) && pm.isFreePage(target) &&
            pm.allocSpecific(target, order)) {
            stats_.reclaimTakes.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

AllocResult
CaPagingPolicy::place(Kernel &kernel, NodeId home, std::uint64_t req_pages,
                      unsigned order, std::uint64_t owner)
{
    (void)owner;
    AllocResult res;
    PhysicalMemory &pm = kernel.physMem();
    const unsigned n = pm.numNodes();
    for (unsigned i = 0; i < n; ++i) {
        Zone &zone = pm.zone((home + i) % n);
        ContiguityMap &map = zone.contigMap();
        std::optional<Cluster> cluster;
        {
            // Map scans mutate the rover and scan-step counters, so
            // they run under the zone lock like every other map update
            // — unless the map is striped, in which case the scan
            // takes its own per-stripe locks and serializing on the
            // zone lock is exactly the contention sharding removes.
            MaybeGuard<SpinLock> g(zone.lock(), !map.striped());
            const std::uint64_t steps_before =
                map.stats().placementScanSteps;
            cluster = map.placeNextFit(req_pages);
            res.placementCycles +=
                cfg_.placementBaseCycles +
                cfg_.cyclesPerScanStep *
                    (map.stats().placementScanSteps - steps_before);
        }
        if (!cluster)
            continue; // zone has no top-order blocks left
        if (takeTarget(kernel, cluster->startPfn, order)) {
            res.pfn = cluster->startPfn;
            return res;
        }
        // A racing thread carved up the cluster between the map scan
        // and our allocSpecific — the probe/claim race the paper
        // accepts (§III-C). Fall through to the next node.
    }
    // No contiguity anywhere: default allocation. Tag the failure
    // reason in place (not via AllocResult::failure, which would
    // discard the placement-scan cycles already accrued).
    if (auto pfn = pm.alloc(order, home))
        res.pfn = *pfn;
    else
        res.fail = order > 0 ? AllocFail::NoHugeBlock : AllocFail::Oom;
    return res;
}

AllocResult
CaPagingPolicy::allocate(Kernel &kernel, Process &proc, Vma &vma, Vpn vpn,
                         unsigned order)
{
    // Fast path: extend an existing sub-VMA mapping through its Offset.
    if (auto off = vma.nearestCaOffset(vpn)) {
        const std::int64_t target_signed =
            static_cast<std::int64_t>(vpn) - off->offsetPages;
        if (target_signed >= 0 &&
            takeTarget(kernel, static_cast<Pfn>(target_signed), order)) {
            ++stats_.offsetHits;
            AllocResult res;
            res.pfn = static_cast<Pfn>(target_signed);
            return res;
        }
        ++stats_.offsetMisses;

        if (order != kHugeOrder) {
            // 4 KiB failure: fall back to the default path; no Offset
            // tracking (the paper amortizes placement over huge
            // allocations only).
            ++stats_.fallbacks;
            return buddyAlloc(kernel, order, proc.homeNode());
        }

        // Huge failure: sub-VMA re-placement keyed by the remaining
        // unmapped size. The replacement guard's CAS admits exactly
        // one re-placing thread (§III-C); everyone else loses.
        if (!vma.tryBeginReplacement()) {
#if CONTIG_LOCK_STATS
            const std::uint64_t lost_at =
                replacementSite_ ? lockNowNs() : 0;
#endif
            // Loser path: retry the fast path against the winner's
            // freshly published Offset instead of stacking a redundant
            // re-placement. A few rounds bound the spin if the winner
            // is slow; if the retries exhaust, report NoHugeBlock and
            // let the fault engine demote to 4 KiB.
            constexpr int kLoserRetries = 4;
            int attempts = 0;
            for (int attempt = 0; attempt < kLoserRetries; ++attempt) {
                ++attempts;
                if (auto fresh = vma.nearestCaOffset(vpn)) {
                    const std::int64_t t =
                        static_cast<std::int64_t>(vpn) - fresh->offsetPages;
                    if (t >= 0 &&
                        takeTarget(kernel, static_cast<Pfn>(t), order)) {
                        ++stats_.offsetHits;
#if CONTIG_LOCK_STATS
                        if (replacementSite_) {
                            replacementSite_->noteRetries(attempts);
                            replacementSite_->noteContended(lockNowNs() -
                                                            lost_at);
                        }
#endif
                        AllocResult res;
                        res.pfn = static_cast<Pfn>(t);
                        return res;
                    }
                }
                if (!vma.replacementActive())
                    break; // winner done; its Offset still failed us
            }
#if CONTIG_LOCK_STATS
            if (replacementSite_) {
                replacementSite_->noteRetries(attempts);
                replacementSite_->noteContended(lockNowNs() - lost_at);
            }
#endif
            return AllocResult::failure(order);
        }
#if CONTIG_LOCK_STATS
        if (replacementSite_)
            replacementSite_->noteAcquire();
#endif
        const std::uint64_t remaining =
            vma.pages() > vma.allocatedPages
                ? vma.pages() - vma.allocatedPages
                : pagesInOrder(order);
        AllocResult res = place(kernel, proc.homeNode(), remaining,
                                order, placementOwner(proc, vma));
        if (res.ok()) {
            ++stats_.subVmaPlacements;
            // Publish the new Offset before releasing the guard so
            // losers retry against it the moment the guard clears.
            vma.pushCaOffset(vpn, static_cast<std::int64_t>(vpn) -
                                      static_cast<std::int64_t>(res.pfn));
        }
        vma.endReplacement();
        return res;
    }

    // First fault of this VMA: placement decision keyed by VMA size.
    AllocResult res = place(kernel, proc.homeNode(), vma.pages(), order,
                            placementOwner(proc, vma));
    if (res.ok()) {
        ++stats_.placements;
        vma.pushCaOffset(vpn, static_cast<std::int64_t>(vpn) -
                                  static_cast<std::int64_t>(res.pfn));
    }
    return res;
}

AllocResult
CaPagingPolicy::allocateFilePage(Kernel &kernel, File &file,
                                 std::uint64_t file_page)
{
    // Page-cache steering: one Offset per file (struct address_space).
    if (file.caOffsetPages) {
        const std::int64_t target_signed =
            static_cast<std::int64_t>(file_page) - *file.caOffsetPages;
        if (target_signed >= 0 &&
            takeTarget(kernel, static_cast<Pfn>(target_signed), 0)) {
            ++stats_.offsetHits;
            AllocResult res;
            res.pfn = static_cast<Pfn>(target_signed);
            return res;
        }
        ++stats_.offsetMisses;
    }

    // (Re-)place: key by what is left of the file.
    const std::uint64_t remaining = file.sizePages() - file_page;
    AllocResult res = place(kernel, 0, remaining, 0, kCaFileOwner);
    if (res.ok()) {
        ++stats_.filePlacements;
        file.caOffsetPages = static_cast<std::int64_t>(file_page) -
                             static_cast<std::int64_t>(res.pfn);
    }
    return res;
}

void
CaPagingPolicy::onMapped(Kernel &kernel, Process &proc, Vma &vma, Vpn vpn,
                         Pfn pfn, unsigned order)
{
    (void)kernel;
    (void)vma;
    if (!cfg_.markContigBits)
        return;

    PageTable &pt = proc.pageTable();
    const std::int64_t offset =
        static_cast<std::int64_t>(vpn) - static_cast<std::int64_t>(pfn);
    const std::uint64_t new_pages = pagesInOrder(order);

    // Compute the contiguous run [run_start, run_end) around the new
    // mapping by walking neighbouring leaves while offsets match.
    Vpn run_start = vpn;
    while (run_start > 0) {
        auto m = pt.lookup(run_start - 1);
        if (!m || !m->valid())
            break;
        const Vpn leaf_base = (run_start - 1) & ~(pagesInOrder(m->order) - 1);
        const std::int64_t leaf_off = static_cast<std::int64_t>(leaf_base) -
                                      static_cast<std::int64_t>(m->pfn);
        if (leaf_off != offset)
            break;
        run_start = leaf_base;
    }
    Vpn run_end = vpn + new_pages;
    while (true) {
        auto m = pt.lookup(run_end);
        if (!m || !m->valid())
            break;
        const std::int64_t leaf_off = static_cast<std::int64_t>(run_end) -
                                      static_cast<std::int64_t>(m->pfn);
        if (leaf_off != offset)
            break;
        run_end += pagesInOrder(m->order);
    }

    if (run_end - run_start < cfg_.markThresholdPages)
        return;

    // Mark every leaf of the run whose bit is not yet set.
    for (Vpn v = run_start; v < run_end;) {
        auto m = pt.lookup(v);
        contig_assert(m && m->valid(), "hole inside a contiguous run");
        if (!m->contigBit) {
            pt.setContigBit(v, true);
            ++stats_.markedPtes;
        }
        v += pagesInOrder(m->order);
    }
}

void
CaPagingPolicy::collectMetrics(obs::MetricSink &sink) const
{
    sink.counter("placements", stats_.placements);
    sink.counter("sub_vma_placements", stats_.subVmaPlacements);
    sink.counter("offset_hits", stats_.offsetHits);
    sink.counter("offset_misses", stats_.offsetMisses);
    sink.counter("fallbacks", stats_.fallbacks);
    sink.counter("file_placements", stats_.filePlacements);
    sink.counter("marked_ptes", stats_.markedPtes);
    // Only present on reclaim kernels, so committed baselines from
    // reclaim-off runs keep their exact metric set.
    if (const std::uint64_t rt = stats_.reclaimTakes)
        sink.counter("reclaim_takes", rt);
}

} // namespace contig
