file(REMOVE_RECURSE
  "CMakeFiles/ablate_spot_table.dir/ablate_spot_table.cc.o"
  "CMakeFiles/ablate_spot_table.dir/ablate_spot_table.cc.o.d"
  "ablate_spot_table"
  "ablate_spot_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_spot_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
