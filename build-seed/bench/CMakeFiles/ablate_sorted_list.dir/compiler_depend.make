# Empty compiler generated dependencies file for ablate_sorted_list.
# This may be replaced when dependencies are built.
