file(REMOVE_RECURSE
  "CMakeFiles/fig01b_eager_fragmentation.dir/fig01b_eager_fragmentation.cc.o"
  "CMakeFiles/fig01b_eager_fragmentation.dir/fig01b_eager_fragmentation.cc.o.d"
  "fig01b_eager_fragmentation"
  "fig01b_eager_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01b_eager_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
