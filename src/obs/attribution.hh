/**
 * @file
 * Per-event cost attribution: where do translation and fault cycles
 * go, resolved by *why* the event was cheap or expensive and by the
 * contiguity class of the mapping it hit?
 *
 * Translation events are classified by scheme outcome (TLB hit,
 * direct-segment hit, SpOT hit, vRMM range hit, PSC-assisted walk,
 * full walk) crossed with the contiguity class of the faulted
 * mapping — the log2 bucket of the offset-run the vpn lands in
 * (class 0 = a lone 4 KiB page, class 9 = a THP-sized run, higher =
 * larger offset-runs). Fault events are classified by (fault kind x
 * allocated order x fallback reason). Each cell keeps exact sums and
 * a Log2Histogram of its cycle distribution; a bounded reservoir of
 * exemplar events links hot outliers back to --trace streams.
 *
 * Gating discipline mirrors --lock-stats: AttribRegistry::enabled()
 * is a process-wide switch flipped by BenchOutput (--attrib /
 * CONTIG_ATTRIB) before any simulator exists. When off, no
 * attribution object is ever allocated and hot paths pay exactly one
 * nullable-pointer branch per event site (ratio-gated by
 * micro_obs_overhead's BM_AttribOff row). When on, each
 * TranslationSim shard and each FaultEngine worker owns a private
 * table; tables merge in shard/scope order at chunk boundaries (the
 * LoadSlot pattern — main owns all shard state between chunks) and
 * fold into the global AttribRegistry when their owner dies, which
 * renders the schema-4 "attribution" bench-JSON section.
 */

#ifndef CONTIG_OBS_ATTRIBUTION_HH
#define CONTIG_OBS_ATTRIBUTION_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"

namespace contig
{

class JsonWriter;
class Serializer;
class Deserializer;
struct Seg;

namespace obs
{

class MetricSink;

/** Why a translation event cost what it cost. */
enum class XlatOutcome : std::uint8_t
{
    TlbHit,     //!< L1 or L2 TLB hit (no walk)
    SegmentHit, //!< Direct Segments register hit (bypasses the TLB)
    SpotHit,    //!< walk fully hidden by a correct SpOT prediction
    RangeHit,   //!< vRMM range-TLB hit (translation without a walk)
    PscWalk,    //!< walk with upper levels skipped by the PSC
    FullWalk,   //!< the full (1-D or 2-D) walk, nothing skipped
};

inline constexpr unsigned kXlatOutcomes = 6;

/** Stable lower-case token ("full_walk") for JSON / metric names. */
const char *xlatOutcomeName(XlatOutcome o);

/**
 * Contiguity classes: class b holds mappings whose containing
 * offset-run is [2^b, 2^(b+1)) pages. Class 0 is a lone 4 KiB page,
 * class 9 (kHugeOrder) a THP-sized run, class 15 caps at >= 128 MiB
 * of contiguity. Pages outside any extracted run classify as 0.
 */
inline constexpr unsigned kContigClasses = 16;

/** Human label for a class ("4K", "2M(THP)", "2^12p"). */
const char *contigClassName(unsigned cls);

/**
 * Immutable vpn -> contiguity-class index over the extracted
 * offset-run segments (contig/analysis extractSegs / extract2d).
 * Page tables are static during translation replay, so one index is
 * built per run and shared read-only across shards.
 */
class ContigClassIndex
{
  public:
    ContigClassIndex() = default;
    explicit ContigClassIndex(const std::vector<Seg> &segs);

    /** Class of the run containing vpn; 0 when uncovered. */
    unsigned classify(Vpn vpn) const;

    /** Class of a run of `pages` contiguous pages. */
    static unsigned classOfRun(std::uint64_t pages);

    std::size_t runs() const { return runs_.size(); }

  private:
    struct Run
    {
        Vpn vpn = 0;
        std::uint64_t pages = 0;
        std::uint8_t cls = 0;
    };

    std::vector<Run> runs_; //!< sorted by vpn, non-overlapping
};

/**
 * One attribution cell: event count, exact cycle sums and the
 * distribution of the "primary" cycles (exposed cycles for
 * translation, fault cycles for faults).
 */
struct CostCell
{
    std::uint64_t events = 0;
    Cycles cycles = 0;  //!< raw cost (walk cycles / fault cycles)
    Cycles exposed = 0; //!< cost after scheme hiding (xlat only)
    Log2Histogram hist; //!< distribution of the primary cycles

    bool empty() const { return events == 0; }
    void mergeFrom(const CostCell &other);
    void save(Serializer &s) const;
    void restore(Deserializer &d);
};

/**
 * Translation-side attribution table. Owned one-per-shard by
 * TranslationSim when the registry switch is on; merge and reads
 * happen only while workers are parked (chunk barriers), so no cell
 * is ever shared between threads.
 */
class XlatAttribution
{
  public:
    /** Exemplar reservoir size (top-K by exposed cycles). */
    static constexpr std::size_t kExemplarCapacity = 16;

    /** One sampled hot event, linkable back to --trace streams. */
    struct Exemplar
    {
        Vpn vpn = 0;
        Cycles cycles = 0; //!< exposed cycles
        std::uint8_t outcome = 0;
        std::uint8_t cls = 0;
        std::uint64_t chunk = 0; //!< replay chunk the event fell in
        std::uint64_t seq = 0;   //!< per-table event ordinal
    };

    explicit XlatAttribution(std::string label) : label_(std::move(label)) {}

    const std::string &label() const { return label_; }

    void
    setIndex(std::shared_ptr<const ContigClassIndex> index)
    {
        index_ = std::move(index);
    }

    /** Current replay chunk id, stamped into exemplars. */
    void setChunk(std::uint64_t chunk) { chunk_ = chunk; }

    /** Classify and account one translation event. */
    void
    record(XlatOutcome o, Vpn vpn, Cycles walk_cycles, Cycles exposed)
    {
        const unsigned cls = index_ ? index_->classify(vpn) : 0;
        CostCell &cell = cells_[static_cast<unsigned>(o)][cls];
        ++cell.events;
        cell.cycles += walk_cycles;
        cell.exposed += exposed;
        cell.hist.add(exposed);
        const std::uint64_t seq = seq_++;
        if (exposed > 0)
            offer(Exemplar{vpn, exposed, static_cast<std::uint8_t>(o),
                           static_cast<std::uint8_t>(cls), chunk_, seq});
    }

    const CostCell &
    cell(unsigned outcome, unsigned cls) const
    {
        return cells_[outcome][cls];
    }

    /** All classes of one outcome folded together. */
    CostCell outcomeTotal(unsigned outcome) const;

    /** Sorted (cycles desc, chunk asc, seq asc) exemplars, <= K. */
    const std::vector<Exemplar> &exemplars() const { return exemplars_; }

    std::uint64_t events() const { return seq_; }

    /** Fold another shard's table in (shard order at barriers). */
    void mergeFrom(const XlatAttribution &other);

    /** Per-outcome rollup counters ("<outcome>.events", ...). */
    void collectMetrics(MetricSink &sink) const;

    /** Checkpoint the cells, exemplars and event ordinal. */
    void save(Serializer &s) const;
    void restore(Deserializer &d);

  private:
    void offer(const Exemplar &e);

    std::string label_;
    std::shared_ptr<const ContigClassIndex> index_;
    CostCell cells_[kXlatOutcomes][kContigClasses];
    std::vector<Exemplar> exemplars_;
    std::uint64_t chunk_ = 0;
    std::uint64_t seq_ = 0;
};

/** Fault-side key dimensions. */
inline constexpr unsigned kFaultKinds = 3;  //!< anon / cow / file
inline constexpr unsigned kFaultOrders = 2; //!< base (0) / huge
inline constexpr unsigned kFaultFalls = 3;  //!< none / no_huge_block / oom

const char *faultKindName(unsigned kind);
const char *faultFallName(unsigned fall);

/**
 * Fault-path attribution: (fault kind x allocated order x fallback
 * reason) -> cycles. Owned by FaultEngine; worker threads accumulate
 * into a private instance bound by WorkerScope and merge under the
 * engine's stats lock on scope exit.
 */
class FaultAttribution
{
  public:
    void
    record(unsigned kind, bool huge, unsigned fallback, Cycles cycles)
    {
        CostCell &cell = cells_[kind][huge ? 1 : 0][fallback];
        ++cell.events;
        cell.cycles += cycles;
        cell.hist.add(cycles);
    }

    const CostCell &
    cell(unsigned kind, unsigned order_idx, unsigned fall) const
    {
        return cells_[kind][order_idx][fall];
    }

    std::uint64_t events() const;

    void mergeFrom(const FaultAttribution &other);

  private:
    CostCell cells_[kFaultKinds][kFaultOrders][kFaultFalls];
};

/**
 * The process-wide switch and accumulator. Dying simulators and
 * fault engines absorb their tables here (cold path, mutexed);
 * BenchOutput renders the result as the "attribution" JSON section.
 */
class AttribRegistry
{
  public:
    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Flip before any simulator/kernel exists (BenchOutput ctor). */
    static void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    static AttribRegistry &global();

    /** Fold a dying shard's table in, keyed by its scheme label. */
    void absorbXlat(const XlatAttribution &table);
    void absorbFault(const FaultAttribution &table);

    bool hasData() const;

    /** Labels with absorbed translation tables, sorted. */
    std::vector<std::string> labels() const;

    /** The merged table for one label (nullptr when absent). */
    const XlatAttribution *xlat(const std::string &label) const;
    const FaultAttribution &fault() const { return fault_; }

    /**
     * Emit `"attribution": {...}` into an open JSON object; emits
     * nothing when no table was ever absorbed.
     */
    void writeSection(JsonWriter &w) const;

    /** Drop all absorbed data (tests). */
    void reset();

  private:
    inline static std::atomic<bool> enabled_{false};

    mutable std::mutex mu_;
    std::map<std::string, XlatAttribution> xlat_;
    FaultAttribution fault_;
    bool hasFault_ = false;
};

} // namespace obs
} // namespace contig

#endif // CONTIG_OBS_ATTRIBUTION_HH
