#include "core/parallel.hh"

#include <string>
#include <thread>

#include "base/logging.hh"
#include "base/rng.hh"
#include "mm/fault_engine.hh"
#include "mm/kernel.hh"
#include "obs/observatory.hh"

namespace contig
{

std::uint64_t
ParallelDriver::workerSeed(std::uint64_t base, unsigned worker)
{
    // splitmix64 over (base + index): statistically independent
    // streams from one recorded base seed.
    std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (worker + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

ParallelDriver::ParallelDriver(Kernel &kernel,
                               const ParallelDriverConfig &cfg)
    : kernel_(kernel), cfg_(cfg)
{
    contig_assert(cfg_.threads >= 1, "ParallelDriver needs >= 1 worker");
    contig_assert(cfg_.threads == 1 || kernel_.threaded(),
                  "concurrent workers against a non-threaded kernel");
    contig_assert(cfg_.chunkBytes > 0 &&
                      cfg_.bytesPerWorker >= cfg_.chunkBytes,
                  "bad ParallelDriver geometry");

    obs::RunInfo &ri = obs::RunInfo::global();
    ri.note("parallel.threads", static_cast<std::uint64_t>(cfg_.threads));
    ri.note("parallel.bytes_per_worker", cfg_.bytesPerWorker);
    ri.note("parallel.chunk_bytes", cfg_.chunkBytes);
    ri.note("parallel.seed", cfg_.seed);

    const std::uint64_t chunks =
        (cfg_.bytesPerWorker + cfg_.chunkBytes - 1) / cfg_.chunkBytes;
    const unsigned nodes = kernel_.physMem().numNodes();
    plans_.reserve(cfg_.threads);
    for (unsigned i = 0; i < cfg_.threads; ++i) {
        WorkerPlan plan;
        plan.seed = workerSeed(cfg_.seed, i);
        Process &proc = kernel_.createProcess(
            "pworker" + std::to_string(i), i % nodes);
        plan.proc = &proc;
        plan.vma = &kernel_.mmapAnon(proc, cfg_.bytesPerWorker);
        plan.chunkOrder.resize(chunks);
        for (std::uint64_t c = 0; c < chunks; ++c)
            plan.chunkOrder[c] = c;
        if (cfg_.shuffle) {
            Rng rng(plan.seed);
            rng.shuffle(plan.chunkOrder);
        }
        ri.note("parallel.worker" + std::to_string(i) + ".seed",
                plan.seed);
        plans_.push_back(std::move(plan));
    }
}

void
ParallelDriver::runWorker(const WorkerPlan &plan)
{
    const Gva base = plan.vma->start();
    for (std::uint64_t c : plan.chunkOrder) {
        const std::uint64_t off = c * cfg_.chunkBytes;
        const std::uint64_t len =
            std::min(cfg_.chunkBytes, cfg_.bytesPerWorker - off);
        plan.proc->touchRange(base + off, len);
    }
}

void
ParallelDriver::run()
{
    contig_assert(!ran_, "ParallelDriver::run() may be called once");
    ran_ = true;

    if (!kernel_.threaded() || cfg_.threads == 1) {
        for (const WorkerPlan &plan : plans_)
            runWorker(plan);
        return;
    }

    FaultEngine &engine = kernel_.faultEngine();
    std::vector<std::thread> workers;
    workers.reserve(plans_.size());
    for (unsigned i = 0; i < plans_.size(); ++i) {
        workers.emplace_back([this, &engine, i] {
            FaultEngine::WorkerScope scope(engine,
                                           static_cast<int>(i));
            runWorker(plans_[i]);
        });
    }
    for (std::thread &t : workers)
        t.join();
    // Catch up the policy ticks / samples the workers deferred, so
    // post-run state matches what a sequential run would have ticked.
    engine.drainPendingTicks();
}

void
ParallelDriver::exitAll()
{
    for (WorkerPlan &plan : plans_) {
        if (plan.proc)
            kernel_.exitProcess(*plan.proc);
        plan.proc = nullptr;
        plan.vma = nullptr;
    }
}

} // namespace contig
