/**
 * @file
 * Ablation: next-fit vs best-fit placement over the contiguity map.
 * The paper chooses next-fit because it defers racing between
 * consecutive placement requests (§III-C); best-fit packs tighter but
 * makes the next placement start right where the last one is still
 * being filled. Measured on the multi-VMA BT workload and on two
 * interleaved SVM instances.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"
#include "policies/ideal.hh"

using namespace contig;

namespace
{

/**
 * A CA variant whose *every* placement (first fault and sub-VMA) uses
 * best-fit instead of next-fit.
 */
class BestFitCaPolicy : public CaPagingPolicy
{
  public:
    std::string name() const override { return "ca-bestfit"; }

    AllocResult
    allocate(Kernel &kernel, Process &proc, Vma &vma, Vpn vpn,
             unsigned order) override
    {
        // Reuse the CA fast path by trying the parent first while the
        // VMA already has offsets; override only virgin placements.
        if (vma.hasCaOffsets())
            return CaPagingPolicy::allocate(kernel, proc, vma, vpn,
                                            order);
        AllocResult res;
        PhysicalMemory &pm = kernel.physMem();
        for (unsigned i = 0; i < pm.numNodes(); ++i) {
            Zone &zone = pm.zone((proc.homeNode() + i) % pm.numNodes());
            auto c = zone.contigMap().placeBestFit(vma.pages());
            if (!c)
                continue;
            if (pm.allocSpecific(c->startPfn, order)) {
                res.pfn = c->startPfn;
                vma.pushCaOffset(vpn,
                                 static_cast<std::int64_t>(vpn) -
                                     static_cast<std::int64_t>(res.pfn));
                return res;
            }
        }
        if (auto pfn = pm.alloc(order, proc.homeNode()))
            res.pfn = pfn.value();
        return res;
    }
};

struct Result
{
    double covBt = 0.0;
    std::uint64_t svmMappingsA = 0;
    std::uint64_t svmMappingsB = 0;
};

Result
run(bool next_fit)
{
    Result out;
    {
        KernelConfig cfg = kernelConfigFor(PolicyKind::Ca);
        std::unique_ptr<AllocationPolicy> pol;
        if (next_fit)
            pol = std::make_unique<CaPagingPolicy>();
        else
            pol = std::make_unique<BestFitCaPolicy>();
        Kernel k(cfg, std::move(pol));
        auto wl = makeWorkload("bt", {0.5, 7});
        Process &p = k.createProcess("bt");
        wl->setup(p);
        out.covBt = coverageTopK(extractSegs(p.pageTable()), 32);
    }
    {
        KernelConfig cfg = kernelConfigFor(PolicyKind::Ca);
        std::unique_ptr<AllocationPolicy> pol;
        if (next_fit)
            pol = std::make_unique<CaPagingPolicy>();
        else
            pol = std::make_unique<BestFitCaPolicy>();
        Kernel k(cfg, std::move(pol));
        Process &a = k.createProcess("svm-a");
        Process &b = k.createProcess("svm-b");
        Vma &va = a.mmap(150ull << 20);
        Vma &vb = b.mmap(150ull << 20);
        const std::uint64_t total = 150ull << 20;
        const std::uint64_t chunk = 4ull << 20;
        for (std::uint64_t off = 0; off < total; off += chunk) {
            const std::uint64_t len = std::min(chunk, total - off);
            a.touchRange(va.start() + off, len);
            b.touchRange(vb.start() + off, len);
        }
        out.svmMappingsA = coverage(extractSegs(a.pageTable())).mappings;
        out.svmMappingsB = coverage(extractSegs(b.pageTable())).mappings;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("ablate_placement", argc, argv);

    Result nf = run(true);
    Result bf = run(false);

    Report rep("Ablation — placement policy over the contiguity map");
    rep.header({"metric", "next-fit (paper)", "best-fit"});
    rep.row({"BT cov32 (5 interleaved VMAs)", Report::pct(nf.covBt),
             Report::pct(bf.covBt)});
    rep.row({"2xSVM interleaved, #1 mappings",
             std::to_string(nf.svmMappingsA),
             std::to_string(bf.svmMappingsA)});
    rep.row({"2xSVM interleaved, #2 mappings",
             std::to_string(nf.svmMappingsB),
             std::to_string(bf.svmMappingsB)});
    out.add(rep);
    rep.print();

    std::printf("\nexpected: next-fit defers racing between concurrent "
                "placements (interleaved faults), matching or beating "
                "best-fit there\n");
    out.write();
    return 0;
}
