/**
 * @file
 * The MetricRegistry: one hierarchical namespace of metrics
 * ("kernel.buddy.split_count", "xlat.spot.mispredictions", ...) that
 * every subsystem reports into, replacing per-bench ad-hoc poking of
 * Stats structs. Two reporting styles coexist:
 *
 *  - *owned* metrics: counters/gauges/summaries/histograms stored in
 *    the registry itself, updated in place through stable references
 *    (phase timers and cross-instance accumulators use these);
 *  - *sources*: a live object (a Kernel, a TranslationSim) registers
 *    a collect callback under a prefix; snapshot() pulls its current
 *    values. When the object dies, its final values are folded into
 *    the owned metrics, so totals survive short-lived instances —
 *    benches that create one system per table row still end with a
 *    complete "metrics" block.
 *
 * Samples with the same name merge: counters and gauges add,
 * summaries combine, histograms add bucket-wise. This is what makes
 * per-zone buddy stats appear as one "buddy.*" group and host+guest
 * kernels distinguishable only by their prefix.
 */

#ifndef CONTIG_OBS_METRICS_HH
#define CONTIG_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "base/stats.hh"

namespace contig
{

class JsonWriter;

namespace obs
{

enum class MetricType : std::uint8_t
{
    Counter,   //!< monotonically increasing event count
    Gauge,     //!< point-in-time value (free pages, cluster count)
    Summary,   //!< count/sum/min/max/mean of a sample stream
    Histogram, //!< log2-bucketed distribution
};

/** One named metric value, as produced by a snapshot. */
struct MetricSample
{
    MetricType type = MetricType::Counter;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    Summary summary;
    /** Histogram bucket weights; bucket i counts [2^i, 2^(i+1)). */
    std::vector<std::uint64_t> buckets;

    /** Merge another sample of the same name into this one. */
    void mergeFrom(const MetricSample &other);
};

using SampleMap = std::map<std::string, MetricSample, std::less<>>;

/**
 * The output surface a source's collect callback writes into. Names
 * are relative; Scope pushes a "prefix." segment for a nested
 * component (so a Zone can report its buddy under "buddy." without
 * knowing who owns the zone).
 */
class MetricSink
{
  public:
    void counter(std::string_view name, std::uint64_t v);
    void gauge(std::string_view name, double v);
    void summary(std::string_view name, const Summary &s);
    void histogram(std::string_view name, const Log2Histogram &h);

    /** RAII prefix segment: all emissions get "<prefix>." prepended. */
    class Scope
    {
      public:
        Scope(MetricSink &sink, std::string_view prefix);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        MetricSink &sink_;
        std::size_t savedLen_;
    };

    const SampleMap &samples() const { return samples_; }

  private:
    MetricSample &at(std::string_view name, MetricType type);

    std::string prefix_;
    SampleMap samples_;
};

/**
 * The registry. A process-wide instance (global()) backs the benches;
 * tests can create private instances.
 */
class MetricRegistry
{
  public:
    using CollectFn = std::function<void(MetricSink &)>;
    using SourceId = std::uint64_t;

    static MetricRegistry &global();

    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    // --- owned metrics (references stay valid for the registry's
    // lifetime; storage is node-based) ---------------------------------

    std::uint64_t &counter(std::string_view name);
    double &gauge(std::string_view name);
    Summary &summary(std::string_view name);
    Log2Histogram &histogram(std::string_view name);

    // --- sources ------------------------------------------------------

    /**
     * Register a live source. Every name it emits is prefixed with
     * "<prefix>.". Returns an id for removeSource().
     */
    SourceId addSource(std::string prefix, CollectFn fn);

    /**
     * Remove a source; by default its final values are absorbed into
     * the owned metrics so they keep contributing to snapshots.
     */
    void removeSource(SourceId id, bool absorb = true);

    std::size_t sourceCount() const { return sources_.size(); }

    // --- output -------------------------------------------------------

    /** All metrics: owned plus every live source, merged by name. */
    SampleMap snapshot() const;

    /** Emit snapshot() as one JSON object keyed by metric name. */
    void writeJson(JsonWriter &w) const;

    /** Drop all owned metrics (live sources are untouched). */
    void resetOwned();

  private:
    void collectInto(MetricSink &sink) const;
    void absorbSample(const std::string &name, const MetricSample &s);

    struct Source
    {
        SourceId id = 0;
        std::string prefix;
        CollectFn fn;
    };

    SampleMap owned_;
    /** Owned histograms, kept as live objects (see histogram()). */
    std::map<std::string, Log2Histogram, std::less<>> ownedHists_;
    std::vector<Source> sources_;
    SourceId nextSourceId_ = 1;
};

/**
 * RAII registration handle: holds a source registered in a registry
 * and removes (absorbing) it on destruction. Member objects of
 * Kernel/TranslationSim use this so un-registration can't be missed.
 */
class MetricSource
{
  public:
    MetricSource() = default;
    MetricSource(MetricRegistry &reg, std::string prefix,
                 MetricRegistry::CollectFn fn)
        : reg_(&reg), id_(reg.addSource(std::move(prefix), std::move(fn)))
    {}
    ~MetricSource() { release(); }

    MetricSource(const MetricSource &) = delete;
    MetricSource &operator=(const MetricSource &) = delete;

    MetricSource(MetricSource &&other) noexcept
        : reg_(other.reg_), id_(other.id_)
    {
        other.reg_ = nullptr;
    }

    MetricSource &
    operator=(MetricSource &&other) noexcept
    {
        if (this != &other) {
            release();
            reg_ = other.reg_;
            id_ = other.id_;
            other.reg_ = nullptr;
        }
        return *this;
    }

  private:
    void
    release()
    {
        if (reg_)
            reg_->removeSource(id_);
        reg_ = nullptr;
    }

    MetricRegistry *reg_ = nullptr;
    MetricRegistry::SourceId id_ = 0;
};

} // namespace obs
} // namespace contig

#endif // CONTIG_OBS_METRICS_HH
