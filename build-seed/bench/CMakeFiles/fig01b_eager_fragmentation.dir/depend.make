# Empty dependencies file for fig01b_eager_fragmentation.
# This may be replaced when dependencies are built.
