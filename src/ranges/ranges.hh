/**
 * @file
 * The comparison translation schemes of §IV/§VI-B, emulated the same
 * way the paper does (event counting over extracted mappings):
 *
 *  - vRMM: a fully-associative range TLB over the 2-D contiguous
 *    mappings (ranges). Misses refill from a flat range table; the
 *    paper's model hides the nested range-walk in the background, so
 *    a range-TLB miss costs one regular nested page walk.
 *  - Direct Segments (dual direct mode): a single [base, limit,
 *    offset] 2-D segment covering the primary region; hits bypass
 *    translation entirely.
 *  - vHC (virtualized Hybrid Coalescing): only its *entry count* is
 *    modelled (Table I): anchor entries at a per-process power-of-two
 *    anchor distance, restricted by virtual alignment.
 */

#ifndef CONTIG_RANGES_RANGES_HH
#define CONTIG_RANGES_RANGES_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "contig/analysis.hh"

namespace contig
{

namespace obs { class MetricSink; }

class Serializer;
class Deserializer;

/** vRMM range-TLB configuration (Table II: 32-entry, fully assoc). */
struct RangeTlbConfig
{
    unsigned entries = 32;
};

struct RangeTlbStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t refills = 0;
    std::uint64_t tableMisses = 0; //!< vpn not in any range
};

/**
 * Flat, sorted range table: the emulation stand-in for the nested
 * guest/host range tables (the paper also uses flat arrays, §V).
 */
class RangeTable
{
  public:
    explicit RangeTable(std::vector<Seg> segs);

    /** The range containing vpn, if any (binary search). */
    std::optional<Seg> lookup(Vpn vpn) const;

    std::size_t size() const { return segs_.size(); }

  private:
    std::vector<Seg> segs_; // sorted by vpn
};

/**
 * Fully-associative range TLB with LRU. Driven on the L2-TLB miss
 * path: a hit means the translation was produced from a cached range
 * without a page walk.
 */
class RangeTlb
{
  public:
    RangeTlb(const RangeTlbConfig &cfg, const RangeTable &table);

    /** True iff some cached range covers vpn (hit). Refills on miss. */
    bool access(Vpn vpn);

    const RangeTlbStats &stats() const { return stats_; }

    /** Report lookup/hit/refill counters into a metric sink. */
    void collectMetrics(obs::MetricSink &sink) const;

    /**
     * Checkpoint the cached ranges, LRU clock and stats. The backing
     * RangeTable is NOT serialized — it is rebuilt deterministically
     * from the extracted segments on resume.
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    struct Entry
    {
        Seg seg;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    RangeTlbConfig cfg_;
    const RangeTable &table_;
    std::vector<Entry> entries_;
    std::uint64_t clock_ = 0;
    RangeTlbStats stats_;
};

/**
 * Direct Segments dual direct mode: one 2-D segment [base, limit)
 * with a fixed offset. Accesses inside translate in zero time.
 */
class DirectSegment
{
  public:
    DirectSegment(Vpn base, std::uint64_t pages)
        : base_(base), pages_(pages)
    {}

    bool
    contains(Vpn vpn) const
    {
        return vpn >= base_ && vpn < base_ + pages_;
    }

    Vpn base() const { return base_; }
    std::uint64_t pages() const { return pages_; }

  private:
    Vpn base_;
    std::uint64_t pages_;
};

/**
 * Count the ranges needed to map 99 % of the footprint (Table I's
 * vRMM column): the mappings-for-99 % metric over the segment list.
 */
std::uint64_t rangesFor99(const std::vector<Seg> &segs);

/**
 * Count vHC entries needed to map 99 % of the footprint (Table I's
 * vHC column). For each candidate anchor distance d (power of two,
 * in base pages), an anchor entry covers a d-aligned virtual chunk
 * only if the chunk is physically contiguous from its base; leftover
 * pieces cost one entry per huge page (or per base page below huge
 * granularity). The per-process distance minimizing the entry count
 * is chosen, mirroring vHC's dynamic anchor-distance adjustment.
 */
std::uint64_t vhcEntriesFor99(const std::vector<Seg> &segs);

} // namespace contig

#endif // CONTIG_RANGES_RANGES_HH
