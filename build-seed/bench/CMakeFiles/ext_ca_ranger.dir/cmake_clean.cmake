file(REMOVE_RECURSE
  "CMakeFiles/ext_ca_ranger.dir/ext_ca_ranger.cc.o"
  "CMakeFiles/ext_ca_ranger.dir/ext_ca_ranger.cc.o.d"
  "ext_ca_ranger"
  "ext_ca_ranger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ca_ranger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
