#include <gtest/gtest.h>

#include <cmath>

#include "base/stats.hh"

using namespace contig;

TEST(Summary, Empty)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(Summary, Basic)
{
    Summary s;
    s.add(1.0);
    s.add(3.0);
    s.add(2.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(Summary, NegativeValues)
{
    Summary s;
    s.add(-5.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Percentiles, EmptyIsZero)
{
    Percentiles p;
    EXPECT_EQ(p.quantile(0.5), 0.0);
}

TEST(Percentiles, MedianAndTails)
{
    Percentiles p;
    for (int i = 1; i <= 101; ++i)
        p.add(i);
    EXPECT_DOUBLE_EQ(p.quantile(0.5), 51.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 101.0);
}

TEST(Percentiles, P99)
{
    Percentiles p;
    for (int i = 0; i < 1000; ++i)
        p.add(1.0);
    p.add(100.0);
    EXPECT_LT(p.quantile(0.98), 2.0);
    EXPECT_GT(p.quantile(0.9999), 50.0);
}

TEST(Percentiles, AddAfterQueryResorts)
{
    Percentiles p;
    p.add(10.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.5), 10.0);
    p.add(0.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 0.0);
}

TEST(Log2Histogram, Buckets)
{
    Log2Histogram h;
    h.add(1);  // bucket 0: [1,2)
    h.add(2);  // bucket 1: [2,4)
    h.add(3);  // bucket 1
    h.add(4);  // bucket 2: [4,8)
    h.add(1024); // bucket 10
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(10), 1u);
    EXPECT_EQ(h.totalWeight(), 5u);
}

TEST(Log2Histogram, Weighted)
{
    Log2Histogram h;
    h.add(8, 100);
    EXPECT_EQ(h.bucket(3), 100u);
    EXPECT_EQ(h.totalWeight(), 100u);
}

TEST(Log2Histogram, ZeroGoesToBucketZero)
{
    Log2Histogram h;
    h.add(0);
    EXPECT_EQ(h.bucket(0), 1u);
}

TEST(Log2Histogram, PercentileKnownAnswers)
{
    Log2Histogram h;
    h.add(1, 4);  // bucket 0: [0,2), weight 4
    h.add(2, 4);  // bucket 1: [2,4), weight 4
    h.add(4, 16); // bucket 2: [4,8), weight 16
    h.add(8, 16); // bucket 3: [8,16), weight 16
    // total weight 40; interpolation inside the crossing bucket:
    // p50 target 20 -> 12/16 into bucket 2 -> 4 + 0.75 * 4 = 7
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 7.0);
    // p90 target 36 -> 12/16 into bucket 3 -> 8 + 0.75 * 8 = 14
    EXPECT_DOUBLE_EQ(h.percentile(0.90), 14.0);
    // p10 target 4 -> the whole of bucket 0 -> its upper edge
    EXPECT_DOUBLE_EQ(h.percentile(0.10), 2.0);
    // q = 1 is the upper edge of the last occupied bucket
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 16.0);
    // q = 0 is the lower edge of the first occupied bucket
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
}

TEST(Log2Histogram, PercentileSingleValueAndClamping)
{
    Log2Histogram h;
    h.add(5); // bucket 2: [4,8)
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 6.0); // midpoint of [4,8)
    // Out-of-range q clamps instead of misindexing.
    EXPECT_DOUBLE_EQ(h.percentile(-1.0), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
    EXPECT_DOUBLE_EQ(h.percentile(std::nan("")), h.percentile(0.0));
}

TEST(Log2Histogram, PercentileEmptyIsZero)
{
    Log2Histogram h;
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
}

TEST(CounterSet, IncrementAndGet)
{
    CounterSet c;
    EXPECT_EQ(c.get("missing"), 0u);
    c.inc("x");
    c.inc("x", 4);
    EXPECT_EQ(c.get("x"), 5u);
}

TEST(Geomean, Basic)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-9);
    EXPECT_NEAR(geomean({5.0}), 5.0, 1e-9);
}

TEST(Percentiles, LinearInterpolationR7)
{
    Percentiles p;
    for (double v : {10.0, 20.0, 30.0, 40.0})
        p.add(v);
    // R-7: i = q * (n - 1), linear between closest ranks.
    EXPECT_DOUBLE_EQ(p.quantile(0.25), 17.5);
    EXPECT_DOUBLE_EQ(p.quantile(0.5), 25.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.75), 32.5);
    EXPECT_DOUBLE_EQ(p.quantile(1.0 / 3.0), 20.0);
}

TEST(Percentiles, OutOfRangeQuantileIsClamped)
{
    Percentiles p;
    p.add(5.0);
    p.add(15.0);
    EXPECT_DOUBLE_EQ(p.quantile(-0.5), 5.0);
    EXPECT_DOUBLE_EQ(p.quantile(2.0), 15.0);
    EXPECT_DOUBLE_EQ(p.quantile(std::nan("")), 5.0);
}

TEST(Percentiles, SingleSampleAnyQuantile)
{
    Percentiles p;
    p.add(42.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.37), 42.0);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 42.0);
}

TEST(Summary, Merge)
{
    Summary a, b;
    a.add(1.0);
    a.add(3.0);
    b.add(-2.0);
    b.add(10.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.min(), -2.0);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);

    Summary empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 4u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 4u);
    EXPECT_DOUBLE_EQ(empty.min(), -2.0);
}

TEST(CounterSet, HeterogeneousLookup)
{
    CounterSet c;
    const std::string_view sv = "spot.mispredictions";
    c.inc(sv);
    c.inc(sv, 2);
    c.inc(std::string("spot.mispredictions"));
    EXPECT_EQ(c.get(sv), 4u);
    EXPECT_EQ(c.get("spot.mispredictions"), 4u);
    EXPECT_EQ(c.all().size(), 1u);
}
