#include "core/experiment.hh"

#include "base/logging.hh"
#include "base/simd.hh"
#include "core/checkpoint.hh"
#include "obs/attribution.hh"
#include "obs/observatory.hh"
#include "policies/ca_paging.hh"
#include "policies/eager.hh"
#include "policies/ideal.hh"
#include "policies/ingens.hh"
#include "policies/ranger.hh"
#include "tlb/replay.hh"
#include "workloads/access_stream.hh"
#include "workloads/ctrace.hh"
#include "workloads/trace_source.hh"

namespace contig
{

std::unique_ptr<AllocationPolicy>
makePolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Thp:
        return std::make_unique<DefaultThpPolicy>();
      case PolicyKind::Base4k:
        return std::make_unique<Base4kPolicy>();
      case PolicyKind::Ca:
        return std::make_unique<CaPagingPolicy>();
      case PolicyKind::Eager:
        return std::make_unique<EagerPolicy>();
      case PolicyKind::Ingens:
        return std::make_unique<IngensPolicy>();
      case PolicyKind::Ranger:
        return std::make_unique<RangerPolicy>();
      case PolicyKind::Ideal:
        return std::make_unique<IdealPolicy>();
    }
    panic("unknown policy kind");
}

std::string
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Thp: return "THP";
      case PolicyKind::Base4k: return "4K";
      case PolicyKind::Ca: return "CA";
      case PolicyKind::Eager: return "eager";
      case PolicyKind::Ingens: return "ingens";
      case PolicyKind::Ranger: return "ranger";
      case PolicyKind::Ideal: return "ideal";
    }
    panic("unknown policy kind");
}

KernelConfig
kernelConfigFor(PolicyKind kind)
{
    KernelConfig cfg = ScaledDefaults::hostKernel();
    // The sorted top-order free list is CA paging's own
    // fragmentation-restraint optimization; stock kernels keep
    // unsorted lists whose order we scramble to model an aged
    // machine's churn.
    const bool ca_like =
        kind == PolicyKind::Ca || kind == PolicyKind::Ideal;
    cfg.phys.zone.sortedTopList = ca_like;
    cfg.phys.zone.scrambleSeed = ca_like ? 0 : 0xC0FFEE;
    // Contiguity-steering kernels route their replacement decisions
    // through contiguity-aware victim selection; dormant until an
    // experiment turns reclaimEnabled on (fig_overcommit).
    cfg.contigAwareReclaim = ca_like || kind == PolicyKind::Ranger;
    if (kind == PolicyKind::Eager)
        cfg.phys.zone.maxOrder = ScaledDefaults::kEagerMaxOrder;
    if (kind == PolicyKind::Base4k)
        cfg.thpEnabled = false;
    return cfg;
}

namespace
{

/**
 * Shared run logic: attach an observatory StateSampler for the fault
 * phase, run setup, then compute metrics from the captured snapshots.
 * `add_probes` registers the segment probes (native 1-D or the VM's
 * nested pair); the coverage-tracking probe feeds the timeline.
 */
ContigRunResult
runSampled(Kernel &kernel, Process &proc, Workload &wl,
           std::uint64_t sample_period, std::string domain,
           const std::function<void(obs::StateSampler &)> &add_probes)
{
    ContigRunResult res;

    const std::uint64_t faults0 = kernel.faultStats().faults;
    const std::uint64_t migr0 = kernel.counters().get("migrate.pages");
    const std::uint64_t shoot0 =
        kernel.counters().get("migrate.shootdowns");
    const Cycles cycles0 = kernel.faultStats().totalCycles;
    const std::uint64_t mcyc0 = kernel.counters().get("migrate.cycles") +
                                kernel.counters().get("promote.cycles");

    obs::SamplerConfig scfg;
    scfg.periodFaults = sample_period;
    scfg.captureFreeHist = obs::TimelineSink::global().enabled();
    scfg.domain = std::move(domain);
    obs::StateSampler sampler(scfg);
    add_probes(sampler);
    sampler.attachKernel(kernel);

    wl.setup(proc);

    sampler.detachKernel();
    const std::size_t fault_samples = sampler.snapshots().size();

    // Steady state: the compute phase dominates real executions, so
    // the time-average weighs post-allocation samples too. Daemon
    // policies (ranger, ingens) keep working here.
    const int steady_samples =
        std::max<int>(24, 3 * static_cast<int>(fault_samples));
    for (int i = 0; i < steady_samples; ++i) {
        kernel.policy().onTick(kernel);
        sampler.sampleNow();
    }
    sampler.sampleNow(); // the final, post-steady-state capture

    CoverageTimeline timeline;
    const std::vector<obs::Snapshot> &snaps = sampler.snapshots();
    for (std::size_t i = 0; i < snaps.size(); ++i) {
        const obs::Snapshot &s = snaps[i];
        timeline.addSample(s.coverage);
        // Timeline x-coordinate: faults into the run. Steady-state
        // samples advance a synthetic tick past the fault clock; the
        // final capture sits back on it.
        std::uint64_t x = s.tick - faults0;
        if (i >= fault_samples && i + 1 < snaps.size())
            x += (i - fault_samples) + 1;
        res.cov32Timeline.emplace_back(x, s.coverage.cov32);
    }
    res.final = snaps.back().coverage;
    res.avg = timeline.average();
    res.faults = kernel.faultStats().faults - faults0;
    res.p99FaultLatencyUs = kernel.faultStats().latencyUs.quantile(0.99);
    res.migratedPages = kernel.counters().get("migrate.pages") - migr0;
    res.shootdowns =
        kernel.counters().get("migrate.shootdowns") - shoot0;
    res.allocatedPages = proc.allocatedPages();
    res.touchedPages = proc.touchedPages();
    res.swCycles =
        static_cast<double>(kernel.faultStats().totalCycles - cycles0) +
        static_cast<double>(kernel.counters().get("migrate.cycles") +
                            kernel.counters().get("promote.cycles") -
                            mcyc0);
    return res;
}

} // namespace

NativeSystem::NativeSystem(PolicyKind kind, std::uint64_t seed,
                           const std::function<void(KernelConfig &)>
                               &tweak)
    : kind_(kind), rng_(seed)
{
    KernelConfig cfg = kernelConfigFor(kind);
    if (tweak)
        tweak(cfg);
    kernel_ = std::make_unique<Kernel>(cfg, makePolicy(kind));
    obs::RunInfo::global().note("seed.native_system", seed);
}

void
NativeSystem::hog(double fraction)
{
    hogMemory(*kernel_, fraction, rng_);
}

ContigRunResult
NativeSystem::run(Workload &wl, std::uint64_t sample_period)
{
    Process &proc = kernel_->createProcess(wl.name());
    return runSampled(
        *kernel_, proc, wl, sample_period,
        policyName(kind_) + ":" + wl.name(),
        [&](obs::StateSampler &sampler) {
            sampler.addSegProbe(
                "1d", &proc,
                [&proc] { return extractSegs(proc.pageTable()); }, true);
        });
}

void
NativeSystem::finish(Workload &wl)
{
    Process *proc = wl.process();
    contig_assert(proc, "finish before run");
    wl.teardown();
    kernel_->exitProcess(*proc);
}

VirtSystem::VirtSystem(PolicyKind host_kind, PolicyKind guest_kind,
                       std::uint64_t seed)
    : hostKind_(host_kind), guestKind_(guest_kind),
      host_(std::make_unique<Kernel>(kernelConfigFor(host_kind),
                                     makePolicy(host_kind))),
      rng_(seed)
{
    VmConfig vcfg = ScaledDefaults::vm();
    vcfg.guestKernel.thpEnabled = guest_kind != PolicyKind::Base4k;
    const bool guest_ca = guest_kind == PolicyKind::Ca ||
                          guest_kind == PolicyKind::Ideal;
    vcfg.guestKernel.phys.zone.sortedTopList = guest_ca;
    vcfg.guestKernel.phys.zone.scrambleSeed = guest_ca ? 0 : 0xFACADE;
    if (guest_kind == PolicyKind::Eager)
        vcfg.guestKernel.phys.zone.maxOrder =
            ScaledDefaults::kEagerMaxOrder;
    vm_ = std::make_unique<VirtualMachine>(*host_,
                                           makePolicy(guest_kind), vcfg);
    obs::RunInfo::global().note("seed.virt_system", seed);
}

ContigRunResult
VirtSystem::run(Workload &wl, std::uint64_t sample_period)
{
    Process &proc = vm_->guest().createProcess(wl.name());
    return runSampled(
        vm_->guest(), proc, wl, sample_period,
        policyName(hostKind_) + "/" + policyName(guestKind_) + ":" +
            wl.name(),
        [&](obs::StateSampler &sampler) {
            sampler.attachVm(proc, *vm_);
        });
}

void
VirtSystem::finish(Workload &wl)
{
    Process *proc = wl.process();
    contig_assert(proc, "finish before run");
    wl.teardown();
    vm_->guest().exitProcess(*proc);
}

/**
 * Process-global translation-run counter: benches call runTranslation
 * once per configuration on an evolving workload, and the trace
 * frontend needs a stable per-call identity ("<prefix>.runN.ctrace")
 * that capture and replay invocations agree on.
 */
static std::uint64_t gXlatRunIndex = 0;

XlatRunResult
runTranslation(Workload &wl, const VirtualMachine *vm, XlatScheme scheme,
               std::uint64_t accesses, std::uint64_t seed,
               const XlatReplayOpts &opts)
{
    Process *proc = wl.process();
    contig_assert(proc, "runTranslation before workload setup");
    const std::uint64_t run_idx = gXlatRunIndex++;

    XlatConfig cfg;
    cfg.tlb = ScaledDefaults::tlb();
    cfg.walker = ScaledDefaults::walker();
    cfg.scheme = scheme;
    cfg.spot = ScaledDefaults::spot();
    cfg.rangeTlb = ScaledDefaults::rangeTlb();
    cfg.walker.memoEnabled = opts.memo;
    cfg.engine = opts.engine;

    const unsigned threads = opts.threads ? opts.threads : 1;
    std::unique_ptr<ReplayEngine> engine;
    if (vm) {
        engine = std::make_unique<ReplayEngine>(cfg, threads,
                                                proc->pageTable(), *vm);
    } else {
        engine = std::make_unique<ReplayEngine>(cfg, threads,
                                                proc->pageTable());
    }
    // Extract the offset-run segments once: Rmm/Ds consume them as
    // the range/segment tables, and --attrib shares them read-only
    // across shards as the contiguity-class index. The page tables
    // are static during replay, so one extraction serves both.
    const bool seg_schemes =
        scheme == XlatScheme::Rmm || scheme == XlatScheme::Ds;
    if (seg_schemes || obs::AttribRegistry::enabled()) {
        const std::vector<Seg> segs =
            vm ? extract2d(*proc, *vm) : extractSegs(proc->pageTable());
        if (seg_schemes)
            engine->setSegments(segs);
        if (obs::AttribRegistry::enabled()) {
            engine->setContigIndex(
                std::make_shared<const obs::ContigClassIndex>(segs));
            obs::RunInfo::global().note(
                "attrib.contig_runs",
                static_cast<std::uint64_t>(segs.size()));
        }
    }

    // --- trace frontend -------------------------------------------------
    // The kernels whose state keys a checkpoint (order matters: guest
    // before host for virtualized runs).
    std::vector<const Kernel *> kernels;
    if (vm) {
        kernels = {&vm->guest(), &vm->host()};
    } else {
        kernels = {&proc->kernel()};
    }

    const std::uint64_t digest =
        ctraceDigest(wl.name(), seed, accesses, run_idx);

    contig_assert(opts.ckptIn.empty() || !opts.traceIn.empty(),
                  "checkpoint resume requires a trace input");
    contig_assert(opts.ckptOut.empty() ||
                      (!opts.traceIn.empty() && opts.ckptAtChunk > 0),
                  "checkpoint capture requires a trace input and "
                  "--ckpt-at");

    std::uint64_t start_chunk = 0;
    std::unique_ptr<Checkpoint> ckpt;
    if (!opts.ckptIn.empty()) {
        ckpt = std::make_unique<Checkpoint>(
            ckptRunPath(opts.ckptIn, run_idx));
        if (ckpt->meta().traceDigest != digest)
            fatal("checkpoint '%s' was taken for a different run "
                  "(digest %016llx, this run %016llx)",
                  ckptRunPath(opts.ckptIn, run_idx).c_str(),
                  static_cast<unsigned long long>(
                      ckpt->meta().traceDigest),
                  static_cast<unsigned long long>(digest));
        start_chunk = ckpt->meta().chunk;
    }

    std::unique_ptr<CtraceWriter> capture;
    std::unique_ptr<AccessSource> source;
    std::unique_ptr<AccessStream> live;
    if (!opts.traceIn.empty()) {
        TraceSourceOptions topt;
        topt.startChunk = start_chunk;
        auto trace = std::make_unique<TraceReplaySource>(
            ctraceRunPath(opts.traceIn, run_idx), topt);
        trace->reader().requireDigest(digest);
        if (trace->total() != accesses)
            fatal(".ctrace '%s' holds %llu accesses, this run wants "
                  "%llu",
                  trace->reader().path().c_str(),
                  static_cast<unsigned long long>(trace->total()),
                  static_cast<unsigned long long>(accesses));
        source = std::move(trace);
    } else {
        live = std::make_unique<AccessStream>(wl, accesses, seed,
                                              opts.chunkAccesses);
        if (!opts.traceOut.empty()) {
            capture = std::make_unique<CtraceWriter>(
                ctraceRunPath(opts.traceOut, run_idx), digest,
                live->chunkAccesses(), accesses);
            live->captureTo(capture.get());
        }
        source = std::move(live);
    }

    if (ckpt)
        ckpt->restore(*engine, kernels);

    obs::RunInfo::global().note("seed.translation", seed);
    obs::RunInfo::global().note("xlat.threads",
                                static_cast<std::uint64_t>(threads));
    obs::RunInfo::global().note("xlat.chunk_accesses",
                                source->chunkAccesses());
    obs::RunInfo::global().note("xlat.memo", opts.memo);
    obs::RunInfo::global().note(
        "xlat.engine", opts.engine == XlatEngine::Reference
                           ? std::string_view("reference")
                           : std::string_view("batched"));
    // The effective probe-kernel mode: "avx2" only when the batched
    // engine runs with SIMD compiled in, the CPU capable and not
    // forced scalar (CONTIG_SIMD=0 / --no-simd).
    obs::RunInfo::global().note(
        "xlat.simd",
        std::string_view(simd::modeName(
            opts.engine == XlatEngine::Batched && simd::enabled())));
    obs::RunInfo::global().note(
        "xlat.numa_shards",
        static_cast<std::uint64_t>(
            proc->kernel().config().numaShards > 1
                ? proc->kernel().config().numaShards
                : 1));
    if (!opts.traceIn.empty()) {
        obs::RunInfo::global().note("trace.in",
                                    ctraceRunPath(opts.traceIn, run_idx));
        obs::RunInfo::global().note("trace.digest", digest);
    }
    if (capture) {
        obs::RunInfo::global().note("trace.out", capture->path());
        obs::RunInfo::global().note("trace.digest", digest);
    }
    if (ckpt)
        obs::RunInfo::global().note("ckpt.resume_chunk", start_chunk);
    if (!opts.ckptOut.empty())
        obs::RunInfo::global().note("ckpt.at_chunk", opts.ckptAtChunk);

    // With an open timeline, stream TLB/walker/SpOT counters at 1/8
    // run granularity (the sampler has no kernel, so ticks are access
    // counts and captures are explicit). Captures happen at chunk
    // boundaries: the first boundary at or past each period multiple
    // (timelines are not baseline-gated; see DESIGN.md).
    std::unique_ptr<obs::StateSampler> sampler;
    std::uint64_t xlat_period = 0;
    if (obs::TimelineSink::global().enabled()) {
        obs::SamplerConfig scfg;
        scfg.keepSnapshots = false;
        scfg.domain = "xlat:" + wl.name();
        sampler = std::make_unique<obs::StateSampler>(scfg);
        sampler->attachTranslation(*engine);
        xlat_period = std::max<std::uint64_t>(1, accesses / 8);
    }

    std::uint64_t next_sample = xlat_period;
    std::uint64_t last_sample = ~0ull;
    std::uint64_t trace_chunk = start_chunk;
    bool interrupted = false;
    const MemAccess *chunk = nullptr;
    while (std::size_t n = source->next(chunk)) {
        engine->replayChunk(chunk, n);
        ++trace_chunk;
        if (!opts.ckptOut.empty() && trace_chunk == opts.ckptAtChunk) {
            CkptMeta meta;
            meta.traceDigest = digest;
            meta.chunk = trace_chunk;
            meta.accesses = source->produced();
            const std::string path = ckptRunPath(opts.ckptOut, run_idx);
            Checkpoint::write(path, meta, *engine, kernels);
            obs::RunInfo::global().note("ckpt.out", path);
            obs::RunInfo::global().note("ckpt.accesses",
                                        source->produced());
            interrupted = true;
            break;
        }
        if (sampler && source->produced() >= next_sample) {
            last_sample = source->produced();
            sampler->sampleAt(last_sample);
            while (next_sample <= source->produced())
                next_sample += xlat_period;
        }
    }
    if (!opts.ckptOut.empty() && !interrupted)
        fatal("--ckpt-at %llu never reached: the trace ended after "
              "chunk %llu",
              static_cast<unsigned long long>(opts.ckptAtChunk),
              static_cast<unsigned long long>(trace_chunk));
    if (sampler && !interrupted && last_sample != accesses)
        sampler->sampleAt(accesses);

    XlatRunResult res;
    res.stats = engine->mergedStats();
    res.overhead = overheadOf(res.stats, ScaledDefaults::perf());
    return res;
}

} // namespace contig
