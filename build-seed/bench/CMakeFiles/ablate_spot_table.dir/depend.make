# Empty dependencies file for ablate_spot_table.
# This may be replaced when dependencies are built.
