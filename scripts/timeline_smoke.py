#!/usr/bin/env python3
"""End-to-end observatory smoke test (registered as a ctest).

Usage: timeline_smoke.py <fig09-binary> <contig_inspect-binary>
                         <committed-baseline.json>

Runs fig09_free_blocks with --json and --timeline, validates the
timeline JSONL with check_bench_json.py --timeline-file, exercises
contig_inspect's series/top readers on it, and finally gates the fresh
--json document against the committed baseline with
contig_inspect check-baseline. Any non-zero step fails the test.
"""

import subprocess
import sys
import tempfile
from pathlib import Path


def run(cmd):
    print("+", " ".join(str(c) for c in cmd), flush=True)
    proc = subprocess.run([str(c) for c in cmd], timeout=600)
    if proc.returncode != 0:
        print(f"timeline_smoke: FAIL: exit {proc.returncode}: "
              f"{' '.join(str(c) for c in cmd)}", file=sys.stderr)
        sys.exit(1)


def main():
    if len(sys.argv) != 4:
        print("usage: timeline_smoke.py <fig09> <contig_inspect> "
              "<baseline.json>", file=sys.stderr)
        sys.exit(1)
    fig09, inspect, baseline = sys.argv[1:4]
    checker = Path(__file__).resolve().parent / "check_bench_json.py"

    with tempfile.TemporaryDirectory() as tmp:
        doc = Path(tmp) / "fig09.json"
        timeline = Path(tmp) / "fig09.jsonl"
        run([fig09, "--json", doc, "--timeline", timeline])
        run([sys.executable, checker, "--timeline-file", timeline])
        run([inspect, "series", timeline])
        run([inspect, "top", timeline, "--top", "5"])
        run([inspect, "check-baseline", doc, baseline])
    print("timeline_smoke: OK")


if __name__ == "__main__":
    main()
