#include "obs/lock_metrics.hh"

#include <string>

#include "base/lock_stats.hh"

namespace contig
{
namespace obs
{

MetricSource
makeLockMetricsSource(MetricRegistry &reg)
{
    return MetricSource(reg, "lock", [](MetricSink &sink) {
        for (const LockSite *site :
             LockStatsRegistry::global().sites()) {
            const LockSite::Totals t = site->totals();
            const std::string p = std::string(site->name()) + ".";
            sink.counter(p + "acquisitions", t.acquisitions);
            sink.counter(p + "contended", t.contended);
            sink.counter(p + "retries", t.retries);
            sink.counter(p + "spin_us", t.spinNs / 1000);
        }
    });
}

} // namespace obs
} // namespace contig
