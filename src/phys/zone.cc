#include "phys/zone.hh"

namespace contig
{

Zone::Zone(FrameArray &frames, NodeId node, Pfn base_pfn,
           std::uint64_t n_frames, const ZoneConfig &cfg)
    : node_(node),
      contigMap_(pagesInOrder(cfg.maxOrder)),
      buddy_(frames, base_pfn, n_frames, cfg.maxOrder, cfg.sortedTopList,
             cfg.scrambleSeed)
{
    buddy_.setTopListHooks(
        [this](Pfn pfn) { contigMap_.onBlockFree(pfn); },
        [this](Pfn pfn) { contigMap_.onBlockAllocated(pfn); });
}

Log2Histogram
Zone::freeBlockHistogram() const
{
    Log2Histogram hist = contigMap_.clusterSizeHistogram();
    for (unsigned o = 0; o < buddy_.maxOrder(); ++o) {
        buddy_.forEachFreeBlock(o, [&](Pfn) {
            hist.add(pagesInOrder(o), pagesInOrder(o));
        });
    }
    return hist;
}

} // namespace contig
