/**
 * @file
 * Set-associative TLB with LRU replacement, page-size aware. Models
 * the L1 DTLBs (separate 4 KiB / 2 MiB arrays) and the unified L2
 * STLB of the evaluation machine (Table II), scaled per DESIGN.md so
 * that footprint/TLB-reach stays in the paper's regime.
 *
 * Entries are stored structure-of-arrays (see DESIGN.md, "Replay
 * data layout"): per-set contiguous tag / valid / lastUse lanes, the
 * tag lane padded to the SIMD stride with simd::kNoTag64 in invalid
 * and padding slots. A set probe is then a single tag-lane search
 * (AVX2 when available, scalar otherwise — identical results either
 * way), and the hot lookup/fill paths are inline here so the replay
 * inner loop pays no call per access.
 */

#ifndef CONTIG_TLB_TLB_HH
#define CONTIG_TLB_TLB_HH

#include <cstdint>
#include <vector>

#include "base/simd.hh"
#include "base/types.hh"

namespace contig
{

namespace obs { class MetricSink; }

class Serializer;
class Deserializer;

/** Geometry of one TLB array. */
struct TlbConfig
{
    unsigned sets = 4;
    unsigned ways = 4;
};

/** Hit/miss counters of one TLB array. */
struct TlbStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;
};

/**
 * One TLB array holding entries of a single page order (0 or
 * kHugeOrder). Tags are the order-aligned vpn.
 */
class Tlb
{
  public:
    Tlb(const TlbConfig &cfg, unsigned page_order);

    /** True (and LRU updated) iff the page covering vpn is present. */
    bool lookup(Vpn vpn)
    {
        ++stats_.lookups;
        const Vpn tag = tagOf(vpn);
        const unsigned base = setOf(vpn) * wayStride_;
        const int w = simd::findTag(&tags_[base], cfg_.ways, tag, simd_);
        if (w < 0)
            return false;
        lastUse_[base + w] = ++clock_;
        ++stats_.hits;
        return true;
    }

    /** Probe without statistics or LRU update. */
    bool probe(Vpn vpn) const
    {
        const unsigned base = setOf(vpn) * wayStride_;
        return simd::findTag(&tags_[base], cfg_.ways, tagOf(vpn),
                             simd_) >= 0;
    }

    /** Insert the page covering vpn, evicting LRU if needed. */
    void fill(Vpn vpn)
    {
        ++stats_.fills;
        const Vpn tag = tagOf(vpn);
        const unsigned base = setOf(vpn) * wayStride_;
        const int w = simd::findTag(&tags_[base], cfg_.ways, tag, simd_);
        if (w >= 0) {
            lastUse_[base + w] = ++clock_; // refill of a present entry
            return;
        }
        fillVictim(base, tag);
    }

    /**
     * Reference-engine variants of lookup()/fill(): out-of-line,
     * always-scalar scans with the pre-SoA per-way code shape. Kept
     * so XlatEngine::Reference measures (and the golden-equivalence
     * test pins) the historical inner loop against the batched one.
     */
    bool lookupRef(Vpn vpn);
    void fillRef(Vpn vpn);

    void flush();

    /** Select the probe kernel; the answer never depends on it. */
    void setSimd(bool simd) { simd_ = simd; }
    bool simdEnabled() const { return simd_; }

    unsigned pageOrder() const { return pageOrder_; }
    unsigned entries() const { return cfg_.sets * cfg_.ways; }
    const TlbStats &stats() const { return stats_; }

    /** Report hit/miss counters into a metric sink. */
    void collectMetrics(obs::MetricSink &sink) const;

    /**
     * Checkpoint this array: geometry (verified on restore), clock,
     * stats and every entry. restoreState into a same-geometry array
     * reproduces lookup/evict behaviour exactly.
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    Vpn tagOf(Vpn vpn) const { return vpn >> pageOrder_; }

    unsigned setOf(Vpn vpn) const
    {
        return static_cast<unsigned>(tagOf(vpn) & (cfg_.sets - 1));
    }

    /** Miss path of fill(): pick a victim way and install the tag. */
    void fillVictim(unsigned base, Vpn tag);

    TlbConfig cfg_;
    unsigned pageOrder_;
    // SoA lanes, sets * wayStride_ each; wayStride_ pads ways to the
    // SIMD lane width. Invariant: tags_[i] == simd::kNoTag64 exactly
    // when the slot is invalid or padding, so a tag compare alone
    // answers a probe.
    unsigned wayStride_;
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint64_t> lastUse_;
    bool simd_;
    std::uint64_t clock_ = 0;
    TlbStats stats_;
};

/** Geometry of the full data-TLB hierarchy. */
struct TlbHierConfig
{
    TlbConfig l1_4k{4, 4};  //!< 16 entries
    TlbConfig l1_2m{2, 4};  //!< 8 entries
    TlbConfig l2{2, 6};     //!< 12 entries, unified
};

/** Where an access was satisfied. */
enum class TlbLevel : std::uint8_t { L1, L2, Miss };

/**
 * Two-level hierarchy: L1 split by page size, unified L2. On an L2
 * miss the caller performs the walk and calls fill().
 */
class TlbHierarchy
{
  public:
    explicit TlbHierarchy(const TlbHierConfig &cfg = {});

    /** Look up the translation for vpn at the given page order. */
    TlbLevel access(Vpn vpn, unsigned order)
    {
        ++accesses_;
        Tlb &l1 = (order == kHugeOrder) ? l1_2m_ : l1_4k_;
        if (l1.lookup(vpn))
            return TlbLevel::L1;
        Tlb &l2 = (order == kHugeOrder) ? l2_2m_ : l2_4k_;
        if (l2.lookup(vpn)) {
            l1.fill(vpn); // promote to L1
            return TlbLevel::L2;
        }
        ++l2Misses_;
        return TlbLevel::Miss;
    }

    /** Install a translation after a walk (L1 + L2). */
    void fill(Vpn vpn, unsigned order)
    {
        Tlb &l1 = (order == kHugeOrder) ? l1_2m_ : l1_4k_;
        Tlb &l2 = (order == kHugeOrder) ? l2_2m_ : l2_4k_;
        l1.fill(vpn);
        l2.fill(vpn);
    }

    /** Reference-engine access()/fill(): out-of-line scalar probes. */
    TlbLevel accessRef(Vpn vpn, unsigned order);
    void fillRef(Vpn vpn, unsigned order);

    void flush();

    /** Select the probe kernel for all four arrays. */
    void setSimd(bool simd);

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t l2Misses() const { return l2Misses_; }

    /** Report per-array + hierarchy counters into a metric sink. */
    void collectMetrics(obs::MetricSink &sink) const;

    /** Checkpoint the whole hierarchy (all four arrays + counters). */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

    const Tlb &l1For(unsigned order) const
    { return order == kHugeOrder ? l1_2m_ : l1_4k_; }
    const Tlb &l2_4k() const { return l2_4k_; }
    const Tlb &l2_2m() const { return l2_2m_; }

  private:
    Tlb l1_4k_;
    Tlb l1_2m_;
    // The unified L2 is modelled as two arrays sharing one budget:
    // sets*ways entries for each page size would double the reach, so
    // each array gets exactly half the ways. The constructor rejects
    // an odd way count — it would silently grow the budget.
    Tlb l2_4k_;
    Tlb l2_2m_;
    std::uint64_t accesses_ = 0;
    std::uint64_t l2Misses_ = 0;
};

} // namespace contig

#endif // CONTIG_TLB_TLB_HH
