#include "mm/reclaim.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"
#include "mm/kernel.hh"
#include "obs/metrics.hh"

namespace contig
{

namespace
{

/** Modelled CPU cost of examining one LRU candidate. */
constexpr Cycles kScanCyclesPerEntry = 80;
/** Modelled cost of one 64-probe contiguity score of a 2 MiB block. */
constexpr Cycles kScoreCycles = 200;
/** Candidates popped off the inactive tail per scan round. */
constexpr std::size_t kScanBatch = 32;
/** Contiguity-score probe stride (64 probes across 512 pages). */
constexpr std::uint64_t kScoreStride = 8;

} // namespace

thread_local unsigned ReclaimEngine::tlsFillDepth_ = 0;
thread_local const Vma *ReclaimEngine::tlsHeldVma_ = nullptr;

ReclaimEngine::ReclaimEngine(Kernel &kernel)
    : kernel_(kernel),
      threaded_(kernel.threaded()),
      contigAware_(kernel.config().contigAwareReclaim),
      cost_(kernel.config().swapCost)
{
    if (kernel_.config().lockStats)
        swapLock_.bindStats(&LockStatsRegistry::global().site("reclaim.swap"));
}

ReclaimEngine::~ReclaimEngine()
{
    stop();
}

// --- frame lifecycle hooks ------------------------------------------------

void
ReclaimEngine::onClaim(Pfn pfn, unsigned order, FrameOwner kind)
{
    if (kind != FrameOwner::Anon && kind != FrameOwner::PageCache)
        return; // page-table pool frames are kernel-pinned
    PhysicalMemory &pm = kernel_.physMem();
    pm.frame(pfn).referenced.store(false, std::memory_order_relaxed);
    pm.zoneOf(pfn).lruInsert(Frame::LruList::Inactive, pfn, order);
}

void
ReclaimEngine::onFree(Pfn pfn)
{
    kernel_.physMem().zoneOf(pfn).lruRemove(pfn);
}

void
ReclaimEngine::noteReferenced(Pfn head)
{
    kernel_.physMem().frame(head).referenced.store(
        true, std::memory_order_relaxed);
}

// --- swap -----------------------------------------------------------------

Cycles
ReclaimEngine::recordSwapOut(std::uint32_t pid, Vpn vpn)
{
    std::lock_guard<SpinLock> g(swapLock_);
    const std::uint64_t slot = nextSlot_++;
    swapMap_[pid][vpn] = slot;
    // Freshly written-back pages linger in the swap cache; a refault
    // that arrives before eviction pays a copy, not a device read.
    swapCacheFifo_.push_back(slot);
    swapCacheSet_.insert(slot);
    while (swapCacheFifo_.size() > cost_.cachePages) {
        swapCacheSet_.erase(swapCacheFifo_.front());
        swapCacheFifo_.pop_front();
    }
    swappedPages_.fetch_add(1, std::memory_order_relaxed);
    stats_.swapOuts.fetch_add(1, std::memory_order_relaxed);
    return cost_.outCyclesPerPage;
}

Cycles
ReclaimEngine::chargeSwapIn(std::uint32_t pid, Vpn base, unsigned order)
{
    // Fast path: nothing is swapped out anywhere — one relaxed load,
    // which is what every fault in an unpressured run pays.
    if (swappedPages_.load(std::memory_order_relaxed) == 0)
        return 0;
    std::lock_guard<SpinLock> g(swapLock_);
    auto pit = swapMap_.find(pid);
    if (pit == swapMap_.end())
        return 0;
    auto &vmap = pit->second;
    Cycles stall = 0;
    const std::uint64_t n = pagesInOrder(order);
    std::uint64_t hits = 0, reads = 0;
    for (std::uint64_t i = 0; i < n && !vmap.empty(); ++i) {
        auto it = vmap.find(base + i);
        if (it == vmap.end())
            continue;
        if (swapCacheSet_.count(it->second)) {
            stall += cost_.cacheHitCycles;
            ++hits;
        } else {
            stall += cost_.inCyclesPerPage;
            ++reads;
        }
        vmap.erase(it);
        swappedPages_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (vmap.empty())
        swapMap_.erase(pit);
    if (hits)
        stats_.swapCacheHits.fetch_add(hits, std::memory_order_relaxed);
    if (hits + reads)
        stats_.refaults.fetch_add(hits + reads, std::memory_order_relaxed);
    return stall;
}

void
ReclaimEngine::dropVmaRange(std::uint32_t pid, Vpn start, std::uint64_t pages)
{
    if (swappedPages_.load(std::memory_order_relaxed) == 0)
        return;
    std::lock_guard<SpinLock> g(swapLock_);
    auto pit = swapMap_.find(pid);
    if (pit == swapMap_.end())
        return;
    auto &vmap = pit->second;
    std::uint64_t dropped = 0;
    for (auto it = vmap.begin(); it != vmap.end();) {
        if (it->first >= start && it->first < start + pages) {
            it = vmap.erase(it);
            ++dropped;
        } else {
            ++it;
        }
    }
    if (vmap.empty())
        swapMap_.erase(pit);
    if (dropped)
        swappedPages_.fetch_sub(dropped, std::memory_order_relaxed);
}

// --- pressure entry points ------------------------------------------------

void
ReclaimEngine::checkWatermarks(NodeId node)
{
    Zone &zone = kernel_.physMem().zone(node);
    const Watermarks &wm = zone.watermarks();
    const std::uint64_t free = zone.freePagesFast();
    if (free >= wm.low)
        return;
    stats_.lowHits.fetch_add(1, std::memory_order_relaxed);
    if (free < wm.min)
        stats_.minHits.fetch_add(1, std::memory_order_relaxed);
    if (threaded_) {
        wakeKswapd();
        return;
    }
    // Sequential kernels have no kswapd thread: the balancing work it
    // would do happens synchronously here, at fault entry, which keeps
    // single-threaded runs deterministic.
    if (!kernel_.config().kswapdEnabled)
        return;
    stats_.kswapdWakes.fetch_add(1, std::memory_order_relaxed);
    Progress p = balanceNode(node);
    stats_.kswapdCycles.fetch_add(p.cycles, std::memory_order_relaxed);
}

void
ReclaimEngine::wakeKswapd()
{
    stats_.kswapdWakes.fetch_add(1, std::memory_order_relaxed);
    if (!kswapdRunning_)
        return;
    {
        std::lock_guard<std::mutex> g(kswapdMu_);
        kswapdWakePending_ = true;
    }
    kswapdCv_.notify_one();
}

ReclaimEngine::Progress
ReclaimEngine::balanceNode(NodeId node)
{
    Zone &zone = kernel_.physMem().zone(node);
    const Watermarks &wm = zone.watermarks();
    Progress total;
    stats_.kswapdRuns.fetch_add(1, std::memory_order_relaxed);
    while (true) {
        const std::uint64_t free = zone.freePagesFast();
        if (free >= wm.high)
            break;
        Progress p = shrinkZone(zone, wm.high - free);
        total.freed += p.freed;
        total.cycles += p.cycles;
        if (p.freed == 0)
            break; // zone is all pinned/busy; give up until next wake
    }
    return total;
}

ReclaimEngine::Progress
ReclaimEngine::directReclaim(NodeId node, std::uint64_t want_pages)
{
    stats_.directReclaims.fetch_add(1, std::memory_order_relaxed);
    PhysicalMemory &pm = kernel_.physMem();
    Progress total;
    for (unsigned i = 0; i < pm.numNodes() && total.freed < want_pages;
         ++i) {
        Zone &zone = pm.zone((node + i) % pm.numNodes());
        Progress p = shrinkZone(zone, want_pages - total.freed);
        total.freed += p.freed;
        total.cycles += p.cycles;
    }
    stats_.directCycles.fetch_add(total.cycles, std::memory_order_relaxed);
    return total;
}

std::uint64_t
ReclaimEngine::reclaimRange(Pfn base, unsigned order)
{
    stats_.targetedReclaims.fetch_add(1, std::memory_order_relaxed);
    PhysicalMemory &pm = kernel_.physMem();
    Zone &zone = pm.zoneOf(base);
    const Pfn end = base + pagesInOrder(order);
    Progress prog;
    Pfn p = base;
    while (p < end) {
        Frame &f = pm.frame(p);
        prog.cycles += kScanCyclesPerEntry;
        if (f.freeFlag.load(std::memory_order_relaxed)) {
            ++p;
            continue;
        }
        const FrameOwner kind = f.ownerKind.load(std::memory_order_relaxed);
        Pfn next = p + 1;
        if (kind == FrameOwner::Anon) {
            // Find the mapping head covering p so whole leaves
            // (including huge ones) are evicted in one step.
            const std::uint32_t pid =
                f.ownerId.load(std::memory_order_relaxed);
            const Addr va = f.ownerVaddr.load(std::memory_order_relaxed);
            if (Process *proc = kernel_.findProcess(pid)) {
                if (auto m = proc->pageTable().lookup(Gva{va}.pageNumber());
                    m && m->valid()) {
                    const Victim v = evictAnon(zone, m->pfn, m->order, prog);
                    if (v == Victim::Freed) {
                        next = std::max(next,
                                        m->pfn + pagesInOrder(m->order));
                    } else if (v == Victim::Split) {
                        next = p; // re-examine as 4 KiB mappings
                    }
                }
            }
        } else if (kind == FrameOwner::PageCache) {
            evictPageCache(zone, p, prog);
        } else {
            stats_.pinnedSkips.fetch_add(1, std::memory_order_relaxed);
        }
        p = next;
    }
    stats_.directCycles.fetch_add(prog.cycles, std::memory_order_relaxed);
    return prog.freed;
}

// --- the scanner ----------------------------------------------------------

unsigned
ReclaimEngine::contigScore(Pfn head) const
{
    const PhysicalMemory &pm = kernel_.physMem();
    const std::uint64_t hp = pagesInOrder(kHugeOrder);
    const Pfn block = head & ~(hp - 1);
    unsigned occupied = 0;
    for (Pfn p = block; p < block + hp; p += kScoreStride) {
        if (!pm.frame(p).freeFlag.load(std::memory_order_relaxed))
            ++occupied;
    }
    return occupied;
}

ReclaimEngine::Victim
ReclaimEngine::evictAnon(Zone &zone, Pfn head, unsigned order,
                         Progress &out)
{
    PhysicalMemory &pm = kernel_.physMem();
    Frame &f = pm.frame(head);

    // Racy owner read; everything below re-validates under the victim
    // VMA's fault lock.
    if (f.ownerKind.load(std::memory_order_relaxed) != FrameOwner::Anon)
        return Victim::Gone;
    const std::uint32_t pid = f.ownerId.load(std::memory_order_relaxed);
    const Addr va = f.ownerVaddr.load(std::memory_order_relaxed);

    Process *proc = kernel_.findProcess(pid);
    if (!proc)
        return Victim::Gone;
    Vma *vma = proc->addressSpace().findVma(Gva{va});
    if (!vma)
        return Victim::Gone;
    if (vma->kind() != VmaKind::Anon) {
        // Guest RAM is the VM's "physical" memory: pinned, like pages
        // under an IOMMU mapping. Permanently unlisted.
        return Victim::Pinned;
    }

    // A direct-reclaiming fault thread already holds its own VMA's
    // lock (HeldVmaScope); its pages are fair victims without a
    // second acquisition. Everyone else must win the try_lock.
    const bool self = (vma == tlsHeldVma_);
    std::unique_lock<SpinLock> lk;
    if (!self) {
        lk = std::unique_lock<SpinLock>(vma->faultLock(),
                                        std::try_to_lock);
        if (!lk.owns_lock())
            return Victim::Requeued;
    }

    const Vpn vpn = Gva{va}.pageNumber();
    auto m = proc->pageTable().lookup(vpn);
    if (!m || !m->valid() || m->pfn != head || m->order != order)
        return Victim::Gone;
    if (f.refCount.load(std::memory_order_relaxed) != 1 || m->cow) {
        // COW-shared after a fork: a second process holds a reference;
        // swapping would need an rmap walk we don't model. Pinned.
        return Victim::Pinned;
    }

    if (order != 0) {
        // THP on the reclaim path: split first (split_huge_page), then
        // reclaim the 512 base candidates individually.
        splitHugeLocked(zone, *proc, *vma, vpn & ~(pagesInOrder(order) - 1),
                        head);
        out.cycles += kernel_.config().faultBaseCycles;
        stats_.thpSplits.fetch_add(1, std::memory_order_relaxed);
        return Victim::Split;
    }

    proc->pageTable().unmap(vpn, 0);
    unmapEpoch_.fetch_add(1, std::memory_order_relaxed);
    --pm.frame(head).mapCount;
    vma->allocatedPages -= 1;
    out.cycles += recordSwapOut(pid, vpn);
    kernel_.putFrame(head, 0); // onFree unlists; here it is already off
    out.freed += 1;
    stats_.reclaimed.fetch_add(1, std::memory_order_relaxed);
    return Victim::Freed;
}

void
ReclaimEngine::splitHugeLocked(Zone &zone, Process &proc, Vma &vma,
                              Vpn base, Pfn head)
{
    PhysicalMemory &pm = kernel_.physMem();
    PageTable &pt = proc.pageTable();
    const std::uint64_t n = pagesInOrder(kHugeOrder);

    auto m = pt.lookup(base);
    const bool writable = m->writable;

    pt.unmap(base, kHugeOrder);
    unmapEpoch_.fetch_add(1, std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < n; ++i)
        --pm.frame(head + i).mapCount;

    // Owner triples are already per-page (claimFrames writes them that
    // way); only the refcounts need fanning out: each base page
    // becomes its own exclusive block. No claimFrames here — the
    // frames never left the owner, so no Alloc trace, no backing
    // fault.
    for (std::uint64_t i = 0; i < n; ++i) {
        Frame &fi = pm.frame(head + i);
        fi.refCount.store(1, std::memory_order_relaxed);
        fi.referenced.store(false, std::memory_order_relaxed);
    }

    PageTable::RunMapper rm(pt);
    for (std::uint64_t i = 0; i < n; ++i) {
        rm.map(base + i, head + i, writable, false);
        ++pm.frame(head + i).mapCount;
    }
    (void)vma;

    // List the pieces at the scan end, descending, so the scanner pops
    // them back in ascending pfn order — frees merge back toward one
    // buddy block as eviction proceeds.
    for (std::uint64_t i = n; i > 0; --i)
        zone.lruInsertTail(Frame::LruList::Inactive, head + i - 1, 0);
}

ReclaimEngine::Victim
ReclaimEngine::evictPageCache(Zone &, Pfn pfn, Progress &out)
{
    if (tlsFillDepth_ > 0) {
        // This thread is inside a page-cache fill: evicting could free
        // pages the enclosing readahead run just installed.
        return Victim::Requeued;
    }
    PhysicalMemory &pm = kernel_.physMem();
    Frame &f = pm.frame(pfn);

    std::unique_lock<SpinLock> lk(kernel_.pageCacheLock(),
                                  std::try_to_lock);
    if (!lk.owns_lock())
        return Victim::Requeued;

    if (f.ownerKind.load(std::memory_order_relaxed) != FrameOwner::PageCache)
        return Victim::Gone;
    if (f.refCount.load(std::memory_order_relaxed) != 1 ||
        f.mapCount.load(std::memory_order_relaxed) != 0) {
        // Still mapped by some VMA: not evictable until unmapped. The
        // caller promotes it out of the scan window.
        return Victim::Rotated;
    }
    const std::uint32_t file_id = f.ownerId.load(std::memory_order_relaxed);
    const std::uint64_t page =
        f.ownerVaddr.load(std::memory_order_relaxed) >> kPageShift;
    if (file_id >= kernel_.pageCache().fileCount())
        return Victim::Gone;
    File &file = kernel_.pageCache().file(file_id);
    if (page >= file.sizePages() || file.frameFor(page) != pfn)
        return Victim::Gone;

    file.evict(page);
    kernel_.putFrame(pfn, 0);
    out.freed += 1;
    stats_.reclaimed.fetch_add(1, std::memory_order_relaxed);
    stats_.pagecacheReclaimed.fetch_add(1, std::memory_order_relaxed);
    return Victim::Freed;
}

ReclaimEngine::Victim
ReclaimEngine::scanOne(Zone &zone, const Zone::LruEntry &e, Progress &out)
{
    PhysicalMemory &pm = kernel_.physMem();
    Frame &f = pm.frame(e.head);
    stats_.scans.fetch_add(1, std::memory_order_relaxed);
    out.cycles += kScanCyclesPerEntry;

    const FrameOwner kind = f.ownerKind.load(std::memory_order_relaxed);
    if (kind != FrameOwner::Anon && kind != FrameOwner::PageCache)
        return Victim::Pinned;

    // Second chance: a block touched since the last scan rotates to
    // the active list instead of being evicted.
    if (f.referenced.exchange(false, std::memory_order_relaxed)) {
        zone.lruRequeue(Frame::LruList::Active, e.head, e.order);
        stats_.rotations.fetch_add(1, std::memory_order_relaxed);
        return Victim::Rotated;
    }

    Victim v = kind == FrameOwner::Anon
                   ? evictAnon(zone, e.head, e.order, out)
                   : evictPageCache(zone, e.head, out);
    switch (v) {
    case Victim::Requeued:
        stats_.busySkips.fetch_add(1, std::memory_order_relaxed);
        zone.lruRequeue(Frame::LruList::Inactive, e.head, e.order);
        break;
    case Victim::Pinned:
        // Left off every list: never a candidate again (until freed
        // and re-claimed, which re-lists it).
        stats_.pinnedSkips.fetch_add(1, std::memory_order_relaxed);
        break;
    case Victim::Rotated:
        zone.lruRequeue(Frame::LruList::Active, e.head, e.order);
        stats_.rotations.fetch_add(1, std::memory_order_relaxed);
        break;
    default:
        break; // Freed / Split / Gone need no relisting here
    }
    return v;
}

ReclaimEngine::Progress
ReclaimEngine::shrinkZone(Zone &zone, std::uint64_t target)
{
    PhysicalMemory &pm = kernel_.physMem();
    Progress prog;
    Zone::LruEntry buf[kScanBatch];
    unsigned dry_rounds = 0;

    // Sequentially two dry batches are final — nothing changes under
    // our feet, so more scanning is pure waste and the early exit
    // keeps single-threaded runs deterministic. Threaded, a dry batch
    // usually means its candidates' VMAs were mid-fault on peer
    // workers (requeued, not unreclaimable), and those busy runs can
    // span thousands of entries — so direct reclaim is allowed up to
    // one full pass over the lists before reporting failure.
    const std::uint64_t scan_budget =
        zone.lruPages(Frame::LruList::Inactive) +
        zone.lruPages(Frame::LruList::Active) + 2 * kScanBatch;
    const unsigned max_dry = threaded_ ? 256 : 2;
    std::uint64_t scanned = 0;

    while (prog.freed < target && dry_rounds < max_dry &&
           scanned < scan_budget) {
        // Keep the lists balanced the way vmscan does: when the
        // inactive list runs short, demote from the active tail
        // (referenced blocks get their second chance back at the
        // active head instead).
        if (zone.lruPages(Frame::LruList::Inactive) <
            zone.lruPages(Frame::LruList::Active)) {
            const std::size_t na =
                zone.lruPopTail(Frame::LruList::Active, kScanBatch, buf);
            for (std::size_t i = 0; i < na; ++i) {
                Frame &f = pm.frame(buf[i].head);
                prog.cycles += kScanCyclesPerEntry;
                if (f.referenced.exchange(false,
                                          std::memory_order_relaxed)) {
                    zone.lruRequeue(Frame::LruList::Active, buf[i].head,
                                    buf[i].order);
                } else {
                    zone.lruRequeue(Frame::LruList::Inactive, buf[i].head,
                                    buf[i].order);
                    stats_.deactivations.fetch_add(
                        1, std::memory_order_relaxed);
                }
            }
        }

        const std::size_t n =
            zone.lruPopTail(Frame::LruList::Inactive, kScanBatch, buf);
        scanned += n;
        if (n == 0) {
            ++dry_rounds;
            continue;
        }

        const std::uint64_t before = prog.freed;

        // Contiguity-aware victim selection: evict low-occupancy
        // blocks first — their frames merge into large free blocks,
        // so the same reclaim target restores more contiguity.
        std::size_t idx[kScanBatch];
        for (std::size_t i = 0; i < n; ++i)
            idx[i] = i;
        if (contigAware_) {
            unsigned score[kScanBatch];
            for (std::size_t i = 0; i < n; ++i) {
                score[i] = contigScore(buf[i].head);
                prog.cycles += kScoreCycles;
            }
            std::stable_sort(idx, idx + n, [&](std::size_t a,
                                               std::size_t b) {
                return score[a] < score[b];
            });
        }

        for (std::size_t i = 0; i < n; ++i) {
            if (prog.freed >= target) {
                // Unprocessed leftovers go back to the far end.
                zone.lruRequeue(Frame::LruList::Inactive, buf[idx[i]].head,
                                buf[idx[i]].order);
                continue;
            }
            scanOne(zone, buf[idx[i]], prog);
        }

        dry_rounds = prog.freed == before ? dry_rounds + 1 : 0;
    }
    return prog;
}

// --- kswapd ---------------------------------------------------------------

void
ReclaimEngine::startKswapd()
{
    if (!threaded_ || !kernel_.config().kswapdEnabled || kswapdRunning_)
        return;
    kswapdStop_ = false;
    kswapdRunning_ = true;
    kswapd_ = std::thread([this] { kswapdLoop(); });
}

void
ReclaimEngine::stop()
{
    if (!kswapdRunning_)
        return;
    {
        std::lock_guard<std::mutex> g(kswapdMu_);
        kswapdStop_ = true;
    }
    kswapdCv_.notify_one();
    kswapd_.join();
    kswapdRunning_ = false;
}

void
ReclaimEngine::kswapdLoop()
{
    // kswapd gets its own pcp slot (Kernel::normalized sizes pcpCpus
    // at threads + 1 for reclaim kernels) so its frees never alias a
    // fault worker's cache.
    ThisCpu::Scope cpu(static_cast<int>(kernel_.config().threads));
    PhysicalMemory &pm = kernel_.physMem();

    while (true) {
        {
            std::unique_lock<std::mutex> lk(kswapdMu_);
            kswapdCv_.wait(
                lk, [this] { return kswapdWakePending_ || kswapdStop_; });
            if (kswapdStop_)
                return;
            kswapdWakePending_ = false;
        }
        stats_.kswapdRuns.fetch_add(1, std::memory_order_relaxed);
        Cycles cycles = 0;
        for (unsigned node = 0; node < pm.numNodes(); ++node) {
            Zone &zone = pm.zone(node);
            const Watermarks &wm = zone.watermarks();
            while (!kswapdStop_) {
                const std::uint64_t free = zone.freePagesFast();
                if (free >= wm.high)
                    break;
                // Shared mm lock per shrink batch (the scanner walks
                // process page tables); released between batches so
                // mmap/munmap/tick writers are never starved.
                Progress p;
                {
                    std::shared_lock<std::shared_mutex> mm(
                        kernel_.mmLock());
                    p = shrinkZone(zone,
                                   std::min<std::uint64_t>(
                                       wm.high - free, 4 * kScanBatch));
                }
                cycles += p.cycles;
                if (p.freed == 0)
                    break;
            }
        }
        stats_.kswapdCycles.fetch_add(cycles, std::memory_order_relaxed);
    }
}

// --- observation ----------------------------------------------------------

void
ReclaimEngine::collectMetrics(obs::MetricSink &sink) const
{
    const auto c = [&](std::string_view name,
                       const std::atomic<std::uint64_t> &v) {
        sink.counter(name, v.load(std::memory_order_relaxed));
    };
    c("scans", stats_.scans);
    c("rotations", stats_.rotations);
    c("deactivations", stats_.deactivations);
    c("reclaimed", stats_.reclaimed);
    c("swap_outs", stats_.swapOuts);
    c("refaults", stats_.refaults);
    c("swap_cache_hits", stats_.swapCacheHits);
    c("thp_splits", stats_.thpSplits);
    c("pagecache_reclaimed", stats_.pagecacheReclaimed);
    c("kswapd_wakes", stats_.kswapdWakes);
    c("kswapd_runs", stats_.kswapdRuns);
    c("direct_reclaims", stats_.directReclaims);
    c("targeted_reclaims", stats_.targetedReclaims);
    c("direct_cycles", stats_.directCycles);
    c("kswapd_cycles", stats_.kswapdCycles);
    c("low_watermark_hits", stats_.lowHits);
    c("min_watermark_hits", stats_.minHits);
    c("pinned_skips", stats_.pinnedSkips);
    c("busy_skips", stats_.busySkips);
    sink.gauge("swapped_pages",
               static_cast<double>(
                   swappedPages_.load(std::memory_order_relaxed)));

    const PhysicalMemory &pm = kernel_.physMem();
    std::uint64_t inactive = 0, active = 0;
    for (unsigned n = 0; n < pm.numNodes(); ++n) {
        const Zone &zone = pm.zone(n);
        inactive += zone.lruPages(Frame::LruList::Inactive);
        active += zone.lruPages(Frame::LruList::Active);
    }
    sink.gauge("lru_inactive_pages", static_cast<double>(inactive));
    sink.gauge("lru_active_pages", static_cast<double>(active));
}

} // namespace contig
