/**
 * @file
 * Concurrency stress for the threaded fault path — built to run under
 * ThreadSanitizer (the CONTIG_SANITIZE=thread CI job). Covers the
 * three shared structures the threading refactor introduced: the
 * parallel fault pipeline itself (per-CPU frame caches + sharded zone
 * locks + per-VMA fault mutexes), the lock-free §III-C Offset ring
 * with its replacement guard, and the pcp-cache teardown invariant
 * (per-zone buddy free lists return exactly to their pre-run state).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/experiment.hh"
#include "core/parallel.hh"
#include "mm/fault_engine.hh"
#include "mm/kernel.hh"
#include "mm/vma.hh"
#include "phys/phys_mem.hh"
#include "phys/zone.hh"

namespace contig
{
namespace
{

constexpr unsigned kThreads = 4;

KernelConfig
threadedConfig(PolicyKind kind)
{
    KernelConfig cfg = kernelConfigFor(kind);
    cfg.threads = kThreads;
    return cfg;
}

/** Per-zone (free pages, free-list lengths) snapshot. */
std::vector<std::pair<std::uint64_t, std::vector<std::uint64_t>>>
buddySnapshot(const PhysicalMemory &pm)
{
    std::vector<std::pair<std::uint64_t, std::vector<std::uint64_t>>> snap;
    for (unsigned n = 0; n < pm.numNodes(); ++n)
        snap.emplace_back(pm.zone(n).buddy().freePages(),
                          pm.zone(n).buddy().freeBlockCounts());
    return snap;
}

/** Concurrent demand faulting: every page lands exactly once. */
TEST(Concurrency, ParallelFaultsResolveEveryPage)
{
    for (PolicyKind kind : {PolicyKind::Base4k, PolicyKind::Thp,
                            PolicyKind::Ca}) {
        KernelConfig cfg = threadedConfig(kind);
        Kernel k(cfg, makePolicy(kind));
        ASSERT_TRUE(k.threaded());

        ParallelDriverConfig pd;
        pd.threads = kThreads;
        pd.bytesPerWorker = 8ull << 20;
        pd.chunkBytes = 1ull << 20;
        pd.seed = 0xFEED + static_cast<int>(kind);
        ParallelDriver driver(k, pd);
        driver.run();

        const std::uint64_t pages =
            kThreads * (pd.bytesPerWorker / kPageSize);
        std::uint64_t mapped = 0;
        for (const ParallelDriver::WorkerPlan &plan : driver.plans()) {
            EXPECT_EQ(plan.vma->touchedPages,
                      pd.bytesPerWorker / kPageSize);
            plan.proc->pageTable().forEachLeaf(
                [&](Vpn, const Mapping &m) {
                    mapped += pagesInOrder(m.order);
                });
        }
        EXPECT_EQ(mapped, pages);
        // Each page faults exactly once, whatever the interleaving.
        const FaultStats &st = k.faultStats();
        EXPECT_EQ(st.baseFaults +
                      st.hugeFaults * pagesInOrder(kHugeOrder),
                  pages);
        driver.exitAll();
    }
}

/**
 * The NUMA-sharded physical metadata under the same parallel fault
 * storm: per-stripe contiguity-map locks, striped buddy top lists
 * and the sharded kernel pool all race here (TSan covers this in the
 * CONTIG_SANITIZE=thread CI job). Page conservation must hold and
 * the striped structures must pass their invariant checks after the
 * run.
 */
TEST(Concurrency, ShardedMetadataSurvivesParallelFaults)
{
    for (PolicyKind kind : {PolicyKind::Thp, PolicyKind::Ca}) {
        KernelConfig cfg = threadedConfig(kind);
        cfg.numaShards = kThreads;
        Kernel k(cfg, makePolicy(kind));
        ASSERT_TRUE(k.threaded());

        ParallelDriverConfig pd;
        pd.threads = kThreads;
        pd.bytesPerWorker = 8ull << 20;
        pd.chunkBytes = 1ull << 20;
        pd.seed = 0xABCD + static_cast<int>(kind);
        ParallelDriver driver(k, pd);
        driver.run();

        const std::uint64_t pages =
            kThreads * (pd.bytesPerWorker / kPageSize);
        const FaultStats &st = k.faultStats();
        EXPECT_EQ(st.baseFaults +
                      st.hugeFaults * pagesInOrder(kHugeOrder),
                  pages);
        driver.exitAll();

        for (unsigned n = 0; n < k.physMem().numNodes(); ++n) {
            const Zone &z = k.physMem().zone(n);
            EXPECT_TRUE(z.contigMap().striped());
            EXPECT_TRUE(z.contigMap().checkInvariants());
            EXPECT_TRUE(z.buddy().checkInvariants());
        }
    }
}

/**
 * Teardown invariant: after exitProcess() the per-CPU caches drain
 * and every zone's buddy free lists return exactly to their pre-run
 * snapshot (frames parked in a pcp cache would show up here as
 * missing order-0 blocks).
 */
TEST(Concurrency, PcpCachesDrainOnExit)
{
    KernelConfig cfg = threadedConfig(PolicyKind::Base4k);
    Kernel k(cfg, makePolicy(PolicyKind::Base4k));

    ParallelDriverConfig pd;
    pd.threads = kThreads;
    pd.bytesPerWorker = 8ull << 20;
    pd.chunkBytes = 1ull << 20;

    // Warm-up run: grows the (deliberately sticky) kernel page-table
    // pool to steady state so the snapshot below isolates pcp/buddy
    // behaviour from pool growth.
    {
        ParallelDriver warm(k, pd);
        warm.run();
        warm.exitAll();
    }
    ASSERT_EQ(k.physMem().pcpCachedPages(), 0u);
    const auto before = buddySnapshot(k.physMem());

    ParallelDriver driver(k, pd);
    driver.run();
    EXPECT_GT(k.faultStats().faults, 0u);

    driver.exitAll();
    EXPECT_EQ(k.physMem().pcpCachedPages(), 0u);
    EXPECT_EQ(buddySnapshot(k.physMem()), before);
}

/**
 * The lock-free Offset ring and the replacement guard, hammered
 * directly: writers publish Offsets while readers scan, and all
 * threads race the §III-C CAS gate. The guard must admit exactly one
 * re-placer at a time; the ring must never report more than
 * kMaxCaOffsets records.
 */
TEST(Concurrency, OffsetRingAndReplacementGuard)
{
    Vma vma(1, Gva{0x5500ull << 32}, 64ull << 20, VmaKind::Anon);
    constexpr int kIters = 20000;

    std::atomic<int> inReplacement{0};
    std::atomic<std::uint64_t> wins{0};
    std::atomic<bool> invariantBroken{false};

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const Vpn base = vma.start().pageNumber();
            for (int i = 0; i < kIters; ++i) {
                if (t % 2 == 0) {
                    // Writer: publish, then read back some record.
                    vma.pushCaOffset(base + i, i - static_cast<int>(t));
                    auto best = vma.nearestCaOffset(base + i);
                    if (!best)
                        invariantBroken = true;
                } else {
                    // Reader: scan and count.
                    vma.nearestCaOffset(base + i);
                    if (vma.caOffsetCount() > kMaxCaOffsets)
                        invariantBroken = true;
                }
                // Everyone races the replacement gate.
                if (vma.tryBeginReplacement()) {
                    if (inReplacement.fetch_add(1) != 0)
                        invariantBroken = true;
                    inReplacement.fetch_sub(1);
                    wins.fetch_add(1);
                    vma.endReplacement();
                }
            }
        });
    }
    for (std::thread &th : threads)
        th.join();

    EXPECT_FALSE(invariantBroken.load());
    EXPECT_GT(wins.load(), 0u);
    EXPECT_FALSE(vma.replacementActive());
    EXPECT_LE(vma.caOffsetCount(), kMaxCaOffsets);
    EXPECT_TRUE(vma.hasCaOffsets());
}

/**
 * Concurrent faults against the CA policy specifically: exercises the
 * zone-locked contiguity-map scan, the Offset fast path and the
 * replacement guard from real fault traffic, not just the unit
 * hammer above.
 */
TEST(Concurrency, CaPagingConcurrentFaultTraffic)
{
    KernelConfig cfg = threadedConfig(PolicyKind::Ca);
    cfg.thpEnabled = false; // order-0 installs stress the map hardest
    Kernel k(cfg, makePolicy(PolicyKind::Ca));

    ParallelDriverConfig pd;
    pd.threads = kThreads;
    pd.bytesPerWorker = 4ull << 20;
    pd.chunkBytes = 512ull << 10;
    ParallelDriver driver(k, pd);
    driver.run();

    const std::uint64_t pages = kThreads * (pd.bytesPerWorker / kPageSize);
    EXPECT_EQ(k.faultStats().faults, pages);
    driver.exitAll();
    EXPECT_EQ(k.physMem().pcpCachedPages(), 0u);
}

} // namespace
} // namespace contig
