/**
 * @file
 * Concurrency stress for the memory-pressure path — built to run
 * under ThreadSanitizer (the CONTIG_SANITIZE=thread CI job). A
 * deliberately overcommitted threaded kernel makes the kswapd thread,
 * direct-reclaiming fault workers and refaulting touch loops all race
 * over the zone LRU lists, the swap map and the victims' page tables
 * at once. The assertions are invariants that hold under any
 * interleaving; TSan supplies the race detection.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/experiment.hh"
#include "core/parallel.hh"
#include "mm/fault_engine.hh"
#include "mm/kernel.hh"
#include "mm/process.hh"
#include "mm/reclaim.hh"
#include "mm/vma.hh"
#include "phys/phys_mem.hh"
#include "phys/zone.hh"

namespace contig
{
namespace
{

constexpr unsigned kThreads = 4;
constexpr std::uint64_t kMiB = 1ull << 20;

/** 4 workers x 16 MiB against one 48 MiB node: 1.33x overcommit. */
KernelConfig
pressureConfig(PolicyKind kind)
{
    KernelConfig cfg = kernelConfigFor(kind);
    cfg.threads = kThreads;
    cfg.phys.numNodes = 1;
    cfg.phys.bytesPerNode = 48 * kMiB;
    cfg.reclaimEnabled = true;
    cfg.kswapdEnabled = true;
    cfg.contigAwareReclaim = false;
    return cfg;
}

ParallelDriverConfig
overcommitPlan()
{
    ParallelDriverConfig pd;
    pd.threads = kThreads;
    pd.bytesPerWorker = 16 * kMiB;
    pd.chunkBytes = 1 * kMiB;
    pd.seed = 0xC0FFEE;
    return pd;
}

std::uint64_t
rstat(const std::atomic<std::uint64_t> &a)
{
    return a.load(std::memory_order_relaxed);
}

/** Per-zone (free pages, free-list lengths) snapshot. */
std::vector<std::pair<std::uint64_t, std::vector<std::uint64_t>>>
buddySnapshot(const PhysicalMemory &pm)
{
    std::vector<std::pair<std::uint64_t, std::vector<std::uint64_t>>> snap;
    for (unsigned n = 0; n < pm.numNodes(); ++n)
        snap.emplace_back(pm.zone(n).buddy().freePages(),
                          pm.zone(n).buddy().freeBlockCounts());
    return snap;
}

/**
 * kswapd vs concurrent faults: an overcommitted parallel populate
 * must complete (no OOM — the slow path escalates through reclaim),
 * every worker touches every page, and the pressure machinery
 * demonstrably engaged. THP policy so evictions also race the
 * split_huge_page path against concurrent faults.
 */
TEST(ReclaimStress, KswapdRacesConcurrentFaults)
{
    KernelConfig cfg = pressureConfig(PolicyKind::Thp);
    Kernel k(cfg, makePolicy(PolicyKind::Thp));
    ASSERT_TRUE(k.threaded());
    ASSERT_NE(k.reclaim(), nullptr);

    ParallelDriverConfig pd = overcommitPlan();
    ParallelDriver driver(k, pd);
    driver.run();

    for (const ParallelDriver::WorkerPlan &plan : driver.plans())
        EXPECT_EQ(plan.vma->touchedPages, pd.bytesPerWorker / kPageSize);

    const ReclaimStats &rs = k.reclaim()->stats();
    EXPECT_GT(rstat(rs.reclaimed), 0u);
    EXPECT_GT(rstat(rs.swapOuts), 0u);
    EXPECT_GT(rstat(rs.scans), 0u);

    driver.exitAll();
    EXPECT_EQ(k.physMem().pcpCachedPages(), 0u);
    // exit dropped every process's swap entries.
    EXPECT_EQ(k.reclaim()->swappedPages(), 0u);
}

/**
 * Refault loops vs kswapd: after the overcommit populate, every
 * worker re-touches its coldest (long since swapped-out) pages in a
 * loop while the background reclaimer keeps evicting to hold the
 * watermark — swap-in (chargeSwapIn) races swap-out (recordSwapOut)
 * on the same VMAs until refaults are observed.
 */
TEST(ReclaimStress, RefaultsRaceKswapd)
{
    KernelConfig cfg = pressureConfig(PolicyKind::Thp);
    Kernel k(cfg, makePolicy(PolicyKind::Thp));

    ParallelDriverConfig pd = overcommitPlan();
    ParallelDriver driver(k, pd);
    driver.run();

    const ReclaimStats &rs = k.reclaim()->stats();
    std::vector<std::thread> touchers;
    int cpu = 0;
    for (const ParallelDriver::WorkerPlan &plan : driver.plans()) {
        touchers.emplace_back([&, cpu, proc = plan.proc,
                               start = plan.vma->start()] {
            // Concurrent fault callers register like real workers so
            // their stats land in per-thread accumulators.
            FaultEngine::WorkerScope ws(k.faultEngine(), cpu);
            for (int pass = 0; pass < 4; ++pass) {
                proc->touchRange(start, 4 * kMiB);
                if (rstat(rs.refaults) > 0)
                    break;
            }
        });
        ++cpu;
    }
    for (std::thread &t : touchers)
        t.join();

    EXPECT_GT(rstat(rs.refaults), 0u);

    driver.exitAll();
    EXPECT_EQ(k.reclaim()->swappedPages(), 0u);
}

/**
 * Teardown invariant under pressure: after the stressed processes
 * exit, the per-CPU caches drain and the buddy returns to its
 * pre-run state. Base-4k policy keeps the page-table footprint
 * layout-determined; the warm-up run grows the sticky kernel pool to
 * steady state, and the exact free-list comparison applies whenever
 * the measured run didn't grow it further (always asserted: the free
 * page delta equals the pool growth, and no page leaked to swap).
 */
TEST(ReclaimStress, BuddyRestoresExactlyAfterPressure)
{
    KernelConfig cfg = pressureConfig(PolicyKind::Base4k);
    Kernel k(cfg, makePolicy(PolicyKind::Base4k));

    ParallelDriverConfig pd = overcommitPlan();
    {
        ParallelDriver warm(k, pd);
        warm.run();
        warm.exitAll();
    }
    ASSERT_EQ(k.physMem().pcpCachedPages(), 0u);
    const auto before = buddySnapshot(k.physMem());
    const std::uint64_t pool_before = k.kernelPoolPages();

    ParallelDriver driver(k, pd);
    driver.run();
    EXPECT_GT(rstat(k.reclaim()->stats().reclaimed), 0u);
    driver.exitAll();

    EXPECT_EQ(k.physMem().pcpCachedPages(), 0u);
    EXPECT_EQ(k.reclaim()->swappedPages(), 0u);
    const auto after = buddySnapshot(k.physMem());
    const std::uint64_t pool_growth = k.kernelPoolPages() - pool_before;
    EXPECT_EQ(before[0].first, after[0].first + pool_growth);
    if (pool_growth == 0)
        EXPECT_EQ(before, after);
}

} // namespace
} // namespace contig
