/**
 * @file
 * Translation-Ranger-style asynchronous defragmentation (Yan et al.,
 * ISCA'19), the paper's post-allocation baseline: faults allocate via
 * the default THP path, and a periodic daemon migrates each VMA's
 * pages towards a contiguous target region. Reproduces the behaviour
 * the paper highlights: contiguity arrives *late* (Fig. 1c) and
 * migrations cost runtime and TLB shootdowns (Fig. 11), but the end
 * state is robust to fragmentation (Fig. 8) because occupied memory
 * is vacated rather than searched.
 */

#ifndef CONTIG_POLICIES_RANGER_HH
#define CONTIG_POLICIES_RANGER_HH

#include <map>

#include "mm/policy.hh"

namespace contig
{

struct RangerConfig
{
    /** Migration budget per daemon epoch, in base pages. */
    std::uint64_t pagesPerEpoch = 4096;
};

struct RangerStats
{
    std::uint64_t epochs = 0;
    std::uint64_t migratedPages = 0;
    std::uint64_t skippedBusy = 0;
    std::uint64_t regionsAssigned = 0;
    /** Migrations unblocked by contiguity-aware targeted reclaim. */
    std::uint64_t reclaimAssists = 0;
};

class RangerPolicy : public AllocationPolicy
{
  public:
    explicit RangerPolicy(const RangerConfig &cfg = {});

    std::string name() const override { return "ranger"; }

    AllocResult allocate(Kernel &kernel, Process &proc, Vma &vma,
                         Vpn vpn, unsigned order) override;

    void onMunmap(Kernel &kernel, Process &proc, Vma &vma) override;

    void onTick(Kernel &kernel) override;

    const RangerStats &stats() const { return stats_; }

  private:
    /** One target region: VMA pages [startPage, startPage+pages) go
     *  to physical frames [basePfn, basePfn+pages). */
    struct TargetRegion
    {
        std::uint64_t startPage;
        std::uint64_t pages;
        Pfn basePfn;
    };

    /** Chosen target regions per VMA id. */
    std::map<std::uint32_t, std::vector<TargetRegion>> targets_;

    /**
     * Pick/refresh the target regions for a VMA: the largest free
     * clusters, assigned greedily front-to-back (up to
     * kMaxRegionsPerVma), so coalescing proceeds even when no single
     * cluster fits the whole VMA.
     */
    const std::vector<TargetRegion> &targetsFor(Kernel &kernel,
                                                Process &proc, Vma &vma);

    static constexpr unsigned kMaxRegionsPerVma = 8;

    RangerConfig cfg_;
    RangerStats stats_;
};

} // namespace contig

#endif // CONTIG_POLICIES_RANGER_HH
