/**
 * @file
 * The .ctrace container and the trace frontend: codec round-trips,
 * capture→replay equivalence against the live generator for every
 * workload, AccessStream edge cases (prime-sized totals, empty
 * streams), seekable resume, and the fail-loudly guarantees (death
 * tests over truncated / corrupt / mismatched files).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "workloads/access_stream.hh"
#include "workloads/ctrace.hh"
#include "workloads/trace_source.hh"
#include "workloads/workloads.hh"

using namespace contig;

namespace
{

WorkloadConfig
quick(std::uint64_t seed = 5)
{
    WorkloadConfig cfg;
    cfg.scale = 0.1;
    cfg.seed = seed;
    return cfg;
}

std::string
tmpPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** RAII temp file remover. */
struct TmpFile
{
    explicit TmpFile(std::string p) : path(std::move(p)) {}
    ~TmpFile() { std::remove(path.c_str()); }
    std::string path;
};

std::vector<std::uint8_t>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<std::uint8_t> &buf)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
}

/**
 * Capture `total` accesses of a workload stream into a .ctrace,
 * returning the generated sequence (the live-generator reference —
 * workloads may advance internal state, so the captured stream itself
 * is the ground truth).
 */
std::vector<MemAccess>
captureStream(Workload &wl, const std::string &path, std::uint64_t seed,
              std::uint64_t total, std::uint64_t chunk,
              std::uint64_t digest = 1)
{
    AccessStream stream(wl, total, seed, chunk);
    CtraceWriter writer(path, digest, stream.chunkAccesses(), total);
    stream.captureTo(&writer);
    std::vector<MemAccess> all;
    const MemAccess *c = nullptr;
    while (std::size_t n = stream.next(c))
        all.insert(all.end(), c, c + n);
    return all;
}

} // namespace

TEST(CtraceCodec, RoundTripsArbitraryAccesses)
{
    std::vector<MemAccess> in;
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        MemAccess a;
        a.pc = rng.next();
        a.va = Gva{rng.next()};
        in.push_back(a);
    }
    // Strided tails exercise the small-delta fast path.
    for (int i = 0; i < 1000; ++i) {
        MemAccess a;
        a.pc = 0x400000 + (i % 7) * 4;
        a.va = Gva{0x7f0000000000ull + i * 64};
        in.push_back(a);
    }

    std::vector<std::uint8_t> enc;
    ctraceEncodeChunk(in.data(), in.size(), enc);

    std::vector<MemAccess> out(in.size());
    ASSERT_TRUE(
        ctraceDecodeChunk(enc.data(), enc.size(), in.size(), out.data()));
    for (std::size_t i = 0; i < in.size(); ++i) {
        ASSERT_EQ(in[i].pc, out[i].pc) << i;
        ASSERT_EQ(in[i].va.value, out[i].va.value) << i;
    }
}

TEST(CtraceCodec, RejectsTrailingAndTruncatedBytes)
{
    std::vector<MemAccess> in(16);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i].va = Gva{i * 4096};
    std::vector<std::uint8_t> enc;
    ctraceEncodeChunk(in.data(), in.size(), enc);

    std::vector<MemAccess> out(in.size());
    // Trailing garbage is a decode failure, not a silent success.
    auto longer = enc;
    longer.push_back(0x00);
    EXPECT_FALSE(ctraceDecodeChunk(longer.data(), longer.size(),
                                   in.size(), out.data()));
    // A short buffer must not read past the end.
    EXPECT_FALSE(ctraceDecodeChunk(enc.data(), enc.size() - 1, in.size(),
                                   out.data()));
}

TEST(AccessStream, PrimeSizedTotalEmitsExactRemainder)
{
    // 997 accesses in chunks of 64: 15 full chunks + a 37-access
    // final chunk. The partial final chunk must be exactly the
    // remainder — not padded, not dropped.
    NativeSystem sys(PolicyKind::Thp, 3);
    auto wl = makeWorkload("pagerank", quick());
    Process &p = sys.kernel().createProcess("w");
    wl->setup(p);

    constexpr std::uint64_t kTotal = 997, kChunk = 64;
    AccessStream stream(*wl, kTotal, 11, kChunk);
    std::uint64_t produced = 0, chunks = 0;
    std::size_t last = 0;
    const MemAccess *chunk = nullptr;
    while (std::size_t n = stream.next(chunk)) {
        ++chunks;
        last = n;
        produced += n;
        EXPECT_LE(n, kChunk);
    }
    EXPECT_EQ(produced, kTotal);
    EXPECT_EQ(chunks, (kTotal + kChunk - 1) / kChunk);
    EXPECT_EQ(last, kTotal % kChunk);
    EXPECT_TRUE(stream.done());
    wl->teardown();
}

TEST(AccessStream, EmptyStreamNeverTouchesTheWorkload)
{
    NativeSystem sys(PolicyKind::Thp, 3);
    auto wl = makeWorkload("pagerank", quick());
    Process &p = sys.kernel().createProcess("w");
    wl->setup(p);

    AccessStream stream(*wl, 0, 11, 64);
    const MemAccess *chunk = nullptr;
    EXPECT_EQ(stream.next(chunk), 0u);
    EXPECT_EQ(stream.produced(), 0u);
    EXPECT_TRUE(stream.done());
    // And an empty captured trace still seals into a valid file.
    TmpFile t(tmpPath("ctrace_empty.ctrace"));
    AccessStream s2(*wl, 0, 11, 64);
    CtraceWriter w(t.path, 42, 64, 0);
    s2.captureTo(&w);
    EXPECT_EQ(s2.next(chunk), 0u);
    CtraceReader r(t.path);
    EXPECT_EQ(r.totalAccesses(), 0u);
    EXPECT_EQ(r.chunkCount(), 0u);
    r.requireDigest(42);
    wl->teardown();
}

class CtraceWorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CtraceWorkloadTest, CaptureThenReplayIsElementWiseIdentical)
{
    // The golden capture→replay contract, per workload: decoding the
    // captured file through the producer-thread frontend yields the
    // exact access sequence the live generator produces.
    NativeSystem sys(PolicyKind::Thp, 3);
    auto wl = makeWorkload(GetParam(), quick());
    Process &p = sys.kernel().createProcess(GetParam());
    wl->setup(p);

    constexpr std::uint64_t kTotal = 5003, kChunk = 256; // prime total
    TmpFile t(tmpPath("ctrace_" + GetParam() + ".ctrace"));
    const std::vector<MemAccess> ref =
        captureStream(*wl, t.path, 23, kTotal, kChunk, 99);
    ASSERT_EQ(ref.size(), kTotal);

    TraceReplaySource replay(t.path, {});
    replay.reader().requireDigest(99);
    EXPECT_EQ(replay.total(), kTotal);
    EXPECT_EQ(replay.chunkAccesses(), kChunk);

    std::uint64_t i = 0;
    const MemAccess *b = nullptr;
    while (std::size_t n = replay.next(b)) {
        for (std::size_t j = 0; j < n; ++j, ++i) {
            ASSERT_EQ(ref[i].pc, b[j].pc) << GetParam() << " access " << i;
            ASSERT_EQ(ref[i].va.value, b[j].va.value)
                << GetParam() << " access " << i;
        }
    }
    EXPECT_EQ(i, kTotal);
    EXPECT_TRUE(replay.done());
    wl->teardown();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, CtraceWorkloadTest,
    ::testing::Values("svm", "pagerank", "hashjoin", "xsbench", "bt",
                      "tlbfriendly"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(TraceReplaySource, StartChunkSkipsExactlyKChunks)
{
    NativeSystem sys(PolicyKind::Thp, 3);
    auto wl = makeWorkload("pagerank", quick());
    Process &p = sys.kernel().createProcess("w");
    wl->setup(p);

    constexpr std::uint64_t kTotal = 1000, kChunk = 64;
    TmpFile t(tmpPath("ctrace_seek.ctrace"));
    captureStream(*wl, t.path, 31, kTotal, kChunk);

    // Full replay for reference.
    std::vector<MemAccess> all;
    {
        TraceReplaySource full(t.path, {});
        const MemAccess *c = nullptr;
        while (std::size_t n = full.next(c))
            all.insert(all.end(), c, c + n);
    }
    ASSERT_EQ(all.size(), kTotal);

    TraceSourceOptions opt;
    opt.startChunk = 7;
    TraceReplaySource seek(t.path, opt);
    EXPECT_EQ(seek.produced(), 7 * kChunk);
    std::vector<MemAccess> tail;
    const MemAccess *c = nullptr;
    while (std::size_t n = seek.next(c))
        tail.insert(tail.end(), c, c + n);
    ASSERT_EQ(tail.size(), kTotal - 7 * kChunk);
    for (std::size_t i = 0; i < tail.size(); ++i) {
        ASSERT_EQ(tail[i].pc, all[7 * kChunk + i].pc) << i;
        ASSERT_EQ(tail[i].va.value, all[7 * kChunk + i].va.value) << i;
    }
    wl->teardown();
}

TEST(CtraceReaderDeath, FailsLoudlyOnDamage)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    NativeSystem sys(PolicyKind::Thp, 3);
    auto wl = makeWorkload("pagerank", quick());
    Process &p = sys.kernel().createProcess("w");
    wl->setup(p);

    constexpr std::uint64_t kTotal = 1000, kChunk = 64;
    TmpFile t(tmpPath("ctrace_damage.ctrace"));
    captureStream(*wl, t.path, 31, kTotal, kChunk, 7);
    const std::vector<std::uint8_t> good = readAll(t.path);
    ASSERT_GT(good.size(), kCtraceHeaderBytes);

    // Not a trace at all.
    TmpFile bad(tmpPath("ctrace_bad.ctrace"));
    writeAll(bad.path, {'n', 'o', 'p', 'e'});
    EXPECT_DEATH({ CtraceReader r(bad.path); }, "truncated .ctrace");
    std::vector<std::uint8_t> junk(128, 0xAB);
    writeAll(bad.path, junk);
    EXPECT_DEATH({ CtraceReader r(bad.path); }, "bad magic");

    // Truncated mid-payload: the index bounds check trips.
    std::vector<std::uint8_t> cut(good.begin(),
                                  good.begin() + good.size() / 2);
    writeAll(bad.path, cut);
    EXPECT_DEATH({ CtraceReader r(bad.path); }, "truncated .ctrace");

    // Version bump: refuse to guess at future formats.
    std::vector<std::uint8_t> vbad = good;
    vbad[4] = 0x7F; // header offset 4: u32 version LSB
    writeAll(bad.path, vbad);
    EXPECT_DEATH({ CtraceReader r(bad.path); },
                 "version mismatch.*file is v127");

    // Flip one payload byte: the per-chunk CRC catches it on decode.
    std::vector<std::uint8_t> cbad = good;
    cbad[kCtraceHeaderBytes + 5] ^= 0x40;
    writeAll(bad.path, cbad);
    EXPECT_DEATH(
        {
            CtraceReader r(bad.path);
            std::vector<MemAccess> out;
            r.decodeChunk(0, out);
        },
        "CRC mismatch");

    // Wrong run identity.
    EXPECT_DEATH(
        {
            CtraceReader r(t.path);
            r.requireDigest(8);
        },
        "config digest mismatch");
    wl->teardown();
}
