#pragma once
// Minimal synchronization primitives for the threaded fault path.
//
// The simulator's hot paths (fault handling, buddy split/merge, pcp
// refill) hold locks for tens of nanoseconds, so a test-and-test-and-set
// spinlock beats a futex-backed std::mutex there.  Everything coarser
// (mmap, daemon ticks, teardown) uses std::shared_mutex in the kernel.
//
// Every primitive here can carry an optional LockSite: when the
// concurrency observatory is armed (--lock-stats), acquisitions,
// contended acquisitions and block time are tallied per named site.
// Unbound locks pay one always-not-taken branch; CONTIG_LOCK_STATS=0
// compiles even that away.

#include <atomic>
#include <cstdint>
#include <thread>

#include "base/lock_stats.hh"

namespace contig {

/** Polite busy-wait hint: let the core know we are spinning. */
inline void
cpuRelax() noexcept
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/**
 * Bounded exponential backoff for contended spins: 1, 2, 4, ...
 * pause instructions up to a cap, then yield to the scheduler. Keeps
 * waiters off the owner's cache line instead of hammering it with
 * coherence traffic.
 */
class SpinBackoff {
public:
    void pause() noexcept {
        if (spins_ <= kMaxSpins) {
            for (std::uint32_t i = 0; i < spins_; ++i)
                cpuRelax();
            spins_ <<= 1;
        } else {
            std::this_thread::yield();
        }
    }

private:
    static constexpr std::uint32_t kMaxSpins = 256;
    std::uint32_t spins_ = 1;
};

// Cache-line sized TTAS spinlock.  Satisfies Lockable, so it works with
// std::lock_guard / std::scoped_lock.
class alignas(64) SpinLock {
public:
    void lock() noexcept {
        if (!locked_.exchange(true, std::memory_order_acquire)) {
#if CONTIG_LOCK_STATS
            if (site_)
                site_->noteAcquire();
#endif
            return;
        }
        lockContended();
    }

    bool try_lock() noexcept {
        return !locked_.load(std::memory_order_relaxed) &&
               !locked_.exchange(true, std::memory_order_acquire);
    }

    void unlock() noexcept { locked_.store(false, std::memory_order_release); }

    /** Attach contention counters; several locks may share one site
     *  (e.g. every per-VMA fault lock folds into "vma.fault"). */
    void bindStats(LockSite *site) noexcept {
#if CONTIG_LOCK_STATS
        site_ = site;
#else
        (void)site;
#endif
    }

private:
    void lockContended() noexcept {
#if CONTIG_LOCK_STATS
        const std::uint64_t t0 = site_ ? lockNowNs() : 0;
#endif
        SpinBackoff backoff;
        for (;;) {
            while (locked_.load(std::memory_order_relaxed))
                backoff.pause();
            if (!locked_.exchange(true, std::memory_order_acquire))
                break;
        }
#if CONTIG_LOCK_STATS
        if (site_) {
            site_->noteAcquire();
            site_->noteContended(lockNowNs() - t0);
        }
#endif
    }

    std::atomic<bool> locked_{false};
#if CONTIG_LOCK_STATS
    LockSite *site_ = nullptr;
#endif
};

// Conditionally engaged lock guard: takes the lock only when `engage`
// is true. The threaded fault path uses these so single-threaded runs
// skip every lock acquisition and stay instruction-identical to the
// pre-threading engine.  An optional site tallies contention for
// lock types that cannot carry their own (std::shared_mutex); locks
// with a bound site (SpinLock) should not also pass one here.
template <typename Mutex>
class MaybeGuard
{
public:
    MaybeGuard(Mutex &m, bool engage, LockSite *site = nullptr)
        : m_(engage ? &m : nullptr)
    {
        if (!m_)
            return;
#if CONTIG_LOCK_STATS
        if (site) {
            if (m_->try_lock()) {
                site->noteAcquire();
                return;
            }
            const std::uint64_t t0 = lockNowNs();
            m_->lock();
            site->noteAcquire();
            site->noteContended(lockNowNs() - t0);
            return;
        }
#else
        (void)site;
#endif
        m_->lock();
    }
    ~MaybeGuard() {
        if (m_)
            m_->unlock();
    }
    MaybeGuard(const MaybeGuard&) = delete;
    MaybeGuard& operator=(const MaybeGuard&) = delete;

private:
    Mutex *m_;
};

// Shared (reader) flavour for std::shared_mutex-like types.
template <typename Mutex>
class MaybeSharedGuard
{
public:
    MaybeSharedGuard(Mutex &m, bool engage, LockSite *site = nullptr)
        : m_(engage ? &m : nullptr)
    {
        if (!m_)
            return;
#if CONTIG_LOCK_STATS
        if (site) {
            if (m_->try_lock_shared()) {
                site->noteAcquire();
                return;
            }
            const std::uint64_t t0 = lockNowNs();
            m_->lock_shared();
            site->noteAcquire();
            site->noteContended(lockNowNs() - t0);
            return;
        }
#else
        (void)site;
#endif
        m_->lock_shared();
    }
    ~MaybeSharedGuard() {
        if (m_)
            m_->unlock_shared();
    }
    MaybeSharedGuard(const MaybeSharedGuard&) = delete;
    MaybeSharedGuard& operator=(const MaybeSharedGuard&) = delete;

private:
    Mutex *m_;
};

// Logical CPU id of the current thread, used to index per-CPU frame
// caches.  Worker threads bind an id for their lifetime via Scope; the
// main thread (and any thread that never bound one) reads cpu 0, which
// keeps the single-threaded path on the same cache a sequential run
// would use.  For observability the two cases are NOT folded together:
// lane() maps unbound threads to lane 0 ("main") and worker cpu i to
// lane i+1, so traces and per-thread stats never alias the main thread
// with worker 0.
class ThisCpu {
public:
    static int id() noexcept { return id_; }

    /** True iff this thread currently holds a bound Scope. */
    static bool bound() noexcept { return bound_; }

    /** Stable trace lane: 0 = main/unbound, i+1 = worker cpu i. */
    static std::uint32_t lane() noexcept {
        return bound_ ? static_cast<std::uint32_t>(id_) + 1 : 0;
    }

    class Scope {
    public:
        explicit Scope(int cpu) noexcept
            : prev_(id_), prevBound_(bound_)
        {
            id_ = cpu;
            bound_ = true;
        }
        ~Scope() {
            id_ = prev_;
            bound_ = prevBound_;
        }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        int prev_;
        bool prevBound_;
    };

private:
    inline static thread_local int id_ = 0;
    inline static thread_local bool bound_ = false;
};

}  // namespace contig
