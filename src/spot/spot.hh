/**
 * @file
 * SpOT — Speculative Offset-based Address Translation (paper §IV).
 * A PC-indexed, set-associative prediction table of
 * [2-D offset, permissions] tuples sits beside the L2 TLB miss path:
 *
 *  - on a miss, the entry for the faulting instruction's PC (if its
 *    2-bit confidence counter is above threshold) predicts
 *    hPA = gVA - offset and execution continues speculatively while
 *    the nested walk verifies in the background;
 *  - correct predictions hide the entire walk latency; mispredictions
 *    add a pipeline-flush penalty on top of it; low confidence means
 *    no speculation and the full walk cost;
 *  - at the end of every walk the table is updated: matching offsets
 *    gain confidence, mismatching ones lose it, and an entry's offset
 *    is replaced only when its counter reaches zero;
 *  - fills are gated by the OS-maintained PTE contiguity bits (both
 *    guest and nested in virtualized mode) so offsets of small
 *    scattered mappings cannot thrash the table (§IV-C).
 */

#ifndef CONTIG_SPOT_SPOT_HH
#define CONTIG_SPOT_SPOT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/simd.hh"
#include "base/types.hh"

namespace contig
{

namespace obs { class MetricSink; }

class Serializer;
class Deserializer;

/** SpOT configuration (Table II: 32-entry, 4-way set associative). */
struct SpotConfig
{
    unsigned sets = 8;
    unsigned ways = 4;
    /** Pipeline-flush penalty on a misprediction (cycles). */
    Cycles flushPenaltyCycles = 20;
    /** Confidence threshold: speculate only when counter > this. */
    std::uint8_t confidenceThreshold = 1;
    /** Gate prediction-table fills on the PTE contiguity bits. */
    bool requireContigBits = true;
};

/** Per-walk outcome as the paper's Fig. 14 categorizes it. */
enum class SpotOutcome : std::uint8_t
{
    Correct,      //!< speculated, verified equal: walk latency hidden
    Mispredicted, //!< speculated wrong: walk + flush penalty
    NoPrediction, //!< no confident entry: full walk cost
};

struct SpotStats
{
    std::uint64_t lookups = 0;
    std::uint64_t correct = 0;
    std::uint64_t mispredicted = 0;
    std::uint64_t noPrediction = 0;
    std::uint64_t fills = 0;
    std::uint64_t fillsBlockedByBits = 0;
    std::uint64_t offsetReplacements = 0;

    /** Fraction of lookups that speculated at all (Fig. 14's bars). */
    double
    coverage() const
    {
        return lookups ? static_cast<double>(correct + mispredicted) /
                             static_cast<double>(lookups)
                       : 0.0;
    }

    /** Fraction of speculated lookups that verified correct. */
    double
    accuracy() const
    {
        const std::uint64_t spec = correct + mispredicted;
        return spec ? static_cast<double>(correct) /
                          static_cast<double>(spec)
                    : 0.0;
    }
};

/**
 * The prediction engine. Drive it with onTlbMiss() before the walk
 * and onWalkDone() after; the returned outcome feeds the performance
 * model (Table IV).
 */
class SpotEngine
{
  public:
    explicit SpotEngine(const SpotConfig &cfg = {});

    /**
     * L2-TLB miss for (pc, vpn): returns the predicted offset if the
     * engine speculates, nullopt otherwise.
     */
    std::optional<std::int64_t> predict(Addr pc);

    /**
     * Verification walk finished: the true offset for this pc is
     * known. `contig_ok` carries the PTE contiguity-bit gate (guest
     * AND nested bits in virtualized mode). Returns how the earlier
     * prediction fared.
     */
    SpotOutcome update(Addr pc, std::int64_t true_offset, bool contig_ok);

    const SpotStats &stats() const { return stats_; }
    const SpotConfig &config() const { return cfg_; }

    /** Select the probe kernel; the answer never depends on it. */
    void setSimd(bool simd) { simd_ = simd; }
    bool simdEnabled() const { return simd_; }

    /** Report prediction-outcome counters into a metric sink. */
    void collectMetrics(obs::MetricSink &sink) const;

    void flush();

    /**
     * Checkpoint the prediction table: entries with confidence
     * counters, LRU clock, stats and any in-flight prediction.
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    unsigned setOf(Addr pc) const;

    /** Way index of pc's entry within the set at `base`, or -1. */
    int findWay(unsigned base, Addr pc) const;

    SpotConfig cfg_;
    // SoA lanes, sets * wayStride_ each (see DESIGN.md, "Replay data
    // layout"); pcTags_ holds simd::kNoTag64 in invalid and padding
    // slots so a set probe is one tag-lane search.
    unsigned wayStride_;
    std::vector<std::uint64_t> pcTags_;
    std::vector<std::int64_t> offsets_;
    std::vector<std::uint8_t> confidence_;
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint64_t> lastUse_;
    bool simd_;
    std::uint64_t clock_ = 0;
    SpotStats stats_;

    /** Prediction issued between predict() and update(). */
    std::optional<std::int64_t> pending_;
    Addr pendingPc_ = 0;
};

} // namespace contig

#endif // CONTIG_SPOT_SPOT_HH
