/**
 * @file
 * Micro-benchmark: replay-engine throughput across the chunk-size ×
 * shard-thread grid, on the fig13 access stream (pagerank under CA
 * paging guest+host, SpOT scheme). One pre-generated trace is
 * replayed through every cell, so:
 *
 *  - all threads=1 cells must report identical simulated counters
 *    regardless of chunk size (chunking is pure batching), and the
 *    memo on/off pair must match too — both are locked by the
 *    committed baseline (bench/baselines/BENCH_micro_xlat_scaling.json);
 *  - threads=N cells are deterministic for fixed N (hash-partitioned
 *    shards with private caches, merged in shard order), so their
 *    counters are baseline-gated as well;
 *  - wall-clock columns are named `*.wall_us` and ignored by
 *    `contig_inspect check-baseline` (CI may run on one CPU, where
 *    thread scaling measures locking, not the scaling headline).
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "base/simd.hh"
#include "core/bench_io.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "tlb/replay.hh"
#include "workloads/access_stream.hh"

using namespace contig;

namespace
{

constexpr std::uint64_t kAccesses = 2u << 20;

double
wallUs(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

struct Cell
{
    XlatStats stats;
    double replayUs = 0.0;
};

Cell
runCell(const std::vector<MemAccess> &trace, const PageTable &pt,
        const VirtualMachine &vm, unsigned threads, std::uint64_t chunk,
        bool memo, XlatEngine xe = XlatEngine::Batched,
        bool force_scalar = false)
{
    XlatConfig cfg;
    cfg.tlb = ScaledDefaults::tlb();
    cfg.walker = ScaledDefaults::walker();
    cfg.scheme = XlatScheme::Spot;
    cfg.spot = ScaledDefaults::spot();
    cfg.rangeTlb = ScaledDefaults::rangeTlb();
    cfg.walker.memoEnabled = memo;
    cfg.engine = xe;

    // The scalar override only affects structures built after it, so
    // flip it around engine construction and restore straight away.
    const bool was_scalar = simd::forceScalar();
    if (force_scalar)
        simd::setForceScalar(true);
    ReplayEngine engine(cfg, threads, pt, vm);
    if (force_scalar)
        simd::setForceScalar(was_scalar);
    Cell cell;
    cell.replayUs = wallUs([&] {
        for (std::uint64_t off = 0; off < trace.size(); off += chunk) {
            const std::uint64_t n =
                std::min<std::uint64_t>(chunk, trace.size() - off);
            engine.replayChunk(&trace[off], n);
        }
    });
    cell.stats = engine.mergedStats();
    return cell;
}

void
addRow(Report &rep, const std::string &label, unsigned threads,
       std::uint64_t chunk, bool memo, const Cell &cell,
       double base_us)
{
    const XlatStats &s = cell.stats;
    rep.row({label, std::to_string(threads), std::to_string(chunk),
             memo ? "on" : "off", std::to_string(s.accesses),
             std::to_string(s.walks), std::to_string(s.l1Hits),
             std::to_string(s.l2Hits), std::to_string(s.exposedCycles),
             Report::num(cell.replayUs, 1),
             Report::num(s.accesses / cell.replayUs, 2),
             Report::num(base_us / cell.replayUs, 2)});
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("micro_xlat_scaling", argc, argv);
    out.note("accesses", kAccesses);
    out.note("workload", "pagerank");
    out.note("scheme", "spot");
    out.note("simd", std::string_view(simd::modeName(simd::enabled())));

    // The fig13 stream: pagerank inside a CA/CA VM, replayed through
    // the SpOT pipeline with the fig13 seeds (workload 7, stream 99).
    VirtSystem sys(PolicyKind::Ca, PolicyKind::Ca, 7);
    auto wl = makeWorkload("pagerank", {1.0, 7});
    Process &proc = sys.guest().createProcess("bench");
    wl->setup(proc);

    std::vector<MemAccess> trace(kAccesses);
    {
        Rng rng(99);
        wl->fillAccesses(rng, trace.data(), trace.size());
    }
    const PageTable &pt = proc.pageTable();

    Report rep("micro — replay throughput vs chunk size x shards "
               "(fig13 pagerank stream, SpOT)");
    rep.header({"cell", "threads", "chunk", "memo", "accesses", "walks",
                "l1_hits", "l2_hits", "exposed_cycles",
                "replay.wall_us", "maccs_s.wall_us",
                "speedup.wall_us"});

    // Chunk sweep at one shard: identical counters by construction.
    // Speedups are relative to the default cell (chunk 4096, 1 shard).
    const std::uint64_t kChunks[] = {1024, 4096, 16384};
    std::vector<Cell> sweep;
    for (std::uint64_t chunk : kChunks)
        sweep.push_back(runCell(trace, pt, sys.vm(), 1, chunk, true));
    const double base_us = sweep[1].replayUs;
    for (std::size_t i = 0; i < sweep.size(); ++i)
        addRow(rep, "chunk_sweep", 1, kChunks[i], true, sweep[i],
               base_us);
    // Memo off: simulated counters must not move.
    {
        const Cell cell = runCell(trace, pt, sys.vm(), 1, 4096, false);
        addRow(rep, "memo_off", 1, 4096, false, cell, base_us);
    }
    // Engine A/B at the default cell. Reference is the historical
    // per-access scalar loop (the denominator of the SoA/SIMD speedup
    // gate, scripts/xlat_ratio_gate.py); soa_scalar is the batched
    // engine with the probe kernels forced scalar, isolating the SIMD
    // share of the win. Simulated counters must not move across the
    // three engines — only the wall_us columns may.
    {
        const Cell ref = runCell(trace, pt, sys.vm(), 1, 4096, true,
                                 XlatEngine::Reference);
        addRow(rep, "engine_ref", 1, 4096, true, ref, base_us);
        const Cell scalar = runCell(trace, pt, sys.vm(), 1, 4096, true,
                                    XlatEngine::Batched, true);
        addRow(rep, "soa_scalar", 1, 4096, true, scalar, base_us);
        out.note("xlat.speedup_vs_ref.wall_us",
                 ref.replayUs / base_us);
    }
    // Thread sweep at the default chunk.
    for (unsigned threads : {1u, 2u, 4u}) {
        const Cell cell =
            runCell(trace, pt, sys.vm(), threads, 4096, true);
        addRow(rep, "thread_sweep", threads, 4096, true, cell, base_us);
    }
    out.add(rep);
    rep.print();

    out.write();
    return 0;
}
