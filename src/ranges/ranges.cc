#include "ranges/ranges.hh"

#include <algorithm>

#include "base/align.hh"
#include "base/logging.hh"
#include "obs/metrics.hh"
#include "base/serialize.hh"

namespace contig
{

RangeTable::RangeTable(std::vector<Seg> segs) : segs_(std::move(segs))
{
    std::sort(segs_.begin(), segs_.end(),
              [](const Seg &a, const Seg &b) { return a.vpn < b.vpn; });
}

std::optional<Seg>
RangeTable::lookup(Vpn vpn) const
{
    auto it = std::upper_bound(
        segs_.begin(), segs_.end(), vpn,
        [](Vpn v, const Seg &s) { return v < s.vpn; });
    if (it == segs_.begin())
        return std::nullopt;
    --it;
    if (vpn < it->vpn + it->pages)
        return *it;
    return std::nullopt;
}

RangeTlb::RangeTlb(const RangeTlbConfig &cfg, const RangeTable &table)
    : cfg_(cfg), table_(table), entries_(cfg.entries)
{
    contig_assert(cfg.entries > 0, "degenerate range TLB");
}

bool
RangeTlb::access(Vpn vpn)
{
    ++stats_.lookups;
    for (auto &e : entries_) {
        if (e.valid && vpn >= e.seg.vpn &&
            vpn < e.seg.vpn + e.seg.pages) {
            e.lastUse = ++clock_;
            ++stats_.hits;
            return true;
        }
    }
    // Miss: the background nested range walk refills the entry.
    auto seg = table_.lookup(vpn);
    if (!seg) {
        ++stats_.tableMisses;
        return false;
    }
    Entry *victim = &entries_[0];
    for (auto &e : entries_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->valid = true;
    victim->seg = *seg;
    victim->lastUse = ++clock_;
    ++stats_.refills;
    return false;
}

std::uint64_t
rangesFor99(const std::vector<Seg> &segs)
{
    return coverage(segs).mappingsFor99;
}

namespace
{

/** Entries needed at anchor distance d (pages) to cover >= 99 %. */
std::uint64_t
vhcEntriesAt(const std::vector<Seg> &segs, std::uint64_t d,
             std::uint64_t total_pages)
{
    // Build coverage units: (pages covered, entries spent).
    // Anchor entries cover whole d-aligned chunks that are physically
    // contiguous from the chunk base; leftovers cost an entry per
    // huge page (aligned) or per base page.
    std::vector<std::uint64_t> unit_sizes; // pages per single entry
    for (const Seg &s : segs) {
        Vpn v = s.vpn;
        std::uint64_t left = s.pages;
        while (left > 0) {
            const Vpn chunk_end = alignDown(v, d) + d;
            const std::uint64_t in_chunk =
                std::min<std::uint64_t>(left, chunk_end - v);
            if (isAligned(v, d) && in_chunk == d) {
                unit_sizes.push_back(d); // full anchor entry
            } else {
                // Partial chunk: cover with huge/base entries.
                Vpn p = v;
                std::uint64_t rem = in_chunk;
                while (rem > 0) {
                    const std::uint64_t huge = pagesInOrder(kHugeOrder);
                    if (isAligned(p, huge) && rem >= huge &&
                        d >= huge) {
                        unit_sizes.push_back(huge);
                        p += huge;
                        rem -= huge;
                    } else {
                        // Batch the run of base pages to the next huge
                        // boundary as individual entries.
                        std::uint64_t step = std::min(
                            rem, alignDown(p, huge) + huge - p);
                        for (std::uint64_t i = 0; i < step; ++i)
                            unit_sizes.push_back(1);
                        p += step;
                        rem -= step;
                    }
                }
            }
            v += in_chunk;
            left -= in_chunk;
        }
    }
    std::sort(unit_sizes.begin(), unit_sizes.end(), std::greater<>());
    const std::uint64_t target = (total_pages * 99 + 99) / 100;
    std::uint64_t acc = 0, entries = 0;
    for (std::uint64_t sz : unit_sizes) {
        if (acc >= target)
            break;
        acc += sz;
        ++entries;
    }
    return entries;
}

} // namespace

std::uint64_t
vhcEntriesFor99(const std::vector<Seg> &segs)
{
    std::uint64_t total = 0;
    for (const Seg &s : segs)
        total += s.pages;
    if (total == 0)
        return 0;

    // Candidate anchor distances: 2 MiB (512 pages) up to 4 GiB.
    std::uint64_t best = ~std::uint64_t{0};
    for (std::uint64_t d = pagesInOrder(kHugeOrder); d <= (1ull << 20);
         d <<= 1) {
        best = std::min(best, vhcEntriesAt(segs, d, total));
    }
    return best;
}

void
RangeTlb::collectMetrics(obs::MetricSink &sink) const
{
    sink.counter("lookups", stats_.lookups);
    sink.counter("hits", stats_.hits);
    sink.counter("refills", stats_.refills);
    sink.counter("table_misses", stats_.tableMisses);
}


void
RangeTlb::saveState(Serializer &s) const
{
    const std::size_t sec = s.beginSection(sectionTag('R', 'T', 'L', 'B'));
    s.u32(cfg_.entries);
    s.u64(clock_);
    s.u64(stats_.lookups);
    s.u64(stats_.hits);
    s.u64(stats_.refills);
    s.u64(stats_.tableMisses);
    s.u64(entries_.size());
    for (const Entry &e : entries_) {
        s.u64(e.seg.vpn);
        s.u64(e.seg.pfn);
        s.u64(e.seg.pages);
        s.boolean(e.valid);
        s.u64(e.lastUse);
    }
    s.endSection(sec);
}

void
RangeTlb::restoreState(Deserializer &d)
{
    d.expectSection(sectionTag('R', 'T', 'L', 'B'), "range_tlb");
    const unsigned entries = d.u32();
    if (entries != cfg_.entries)
        fatal("checkpoint range-TLB size mismatch: file has %u"
              " entries, this run has %u",
              entries, cfg_.entries);
    clock_ = d.u64();
    stats_.lookups = d.u64();
    stats_.hits = d.u64();
    stats_.refills = d.u64();
    stats_.tableMisses = d.u64();
    const std::uint64_t n = d.u64();
    if (n != entries_.size())
        fatal("checkpoint range-TLB entry count mismatch: %llu vs %zu",
              static_cast<unsigned long long>(n), entries_.size());
    for (Entry &e : entries_) {
        e.seg.vpn = d.u64();
        e.seg.pfn = d.u64();
        e.seg.pages = d.u64();
        e.valid = d.boolean();
        e.lastUse = d.u64();
    }
}

} // namespace contig
