#include "mm/page_cache.hh"

#include <algorithm>

#include "base/logging.hh"
#include "mm/kernel.hh"

namespace contig
{

std::uint64_t
File::cachedPages() const
{
    return std::count_if(pages_.begin(), pages_.end(),
                         [](Pfn p) { return p != kInvalidPfn; });
}

File &
PageCache::createFile(std::uint64_t size_pages)
{
    contig_assert(size_pages > 0, "empty file");
    files_.push_back(
        std::make_unique<File>(files_.size(), size_pages));
    return *files_.back();
}

File &
PageCache::file(std::uint32_t id)
{
    contig_assert(id < files_.size(), "unknown file %u", id);
    return *files_[id];
}

void
PageCache::dropCaches(Kernel &kernel)
{
    for (auto &file : files_) {
        bool fully_dropped = true;
        for (std::uint64_t p = 0; p < file->sizePages(); ++p) {
            if (!file->isCached(p))
                continue;
            Pfn pfn = file->frameFor(p);
            // Pages still mapped by some process are not reclaimable.
            if (kernel.physMem().frame(pfn).mapCount > 0) {
                fully_dropped = false;
                continue;
            }
            file->evict(p);
            kernel.putFrame(pfn, 0);
        }
        if (fully_dropped)
            file->caOffsetPages.reset();
    }
}

} // namespace contig
