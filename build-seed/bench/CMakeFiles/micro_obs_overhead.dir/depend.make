# Empty dependencies file for micro_obs_overhead.
# This may be replaced when dependencies are built.
