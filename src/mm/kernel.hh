/**
 * @file
 * The Kernel: one OS instance (host machine, or a guest OS inside a
 * VM). Owns the physical memory, the page cache, the processes and
 * the active AllocationPolicy, and implements the demand-paging fault
 * path that CA paging and the baseline policies steer.
 *
 * Guest kernels are plain Kernel instances over the guest-physical
 * address space; their `backingHook` calls into the host to model
 * nested faults (first-touch of a guest frame raises a host fault).
 */

#ifndef CONTIG_MM_KERNEL_HH
#define CONTIG_MM_KERNEL_HH

#include <functional>
#include <memory>
#include <shared_mutex>
#include <string_view>
#include <vector>

#include "base/stats.hh"
#include "base/sync.hh"
#include "mm/fault_engine.hh"
#include "mm/page_cache.hh"
#include "mm/policy.hh"
#include "mm/process.hh"
#include "mm/reclaim.hh"
#include "obs/metrics.hh"
#include "phys/phys_mem.hh"

namespace contig
{

class Serializer;

/** Cost-model + behaviour knobs for one kernel instance. */
struct KernelConfig
{
    PhysMemConfig phys;
    /** Transparent huge pages enabled (the "THP" configurations). */
    bool thpEnabled = true;
    /** Fixed fault-handling cost (entry, PTE install, bookkeeping). */
    Cycles faultBaseCycles = 2000;
    /** Cost of zeroing one 4 KiB page at allocation. */
    Cycles zeroCyclesPerPage = 2200;
    /** Cost of copying one 4 KiB page (COW, migrations). */
    Cycles copyCyclesPerPage = 2000;
    /** Cycles per microsecond (2.2 GHz machine). */
    double cyclesPerUs = 2200.0;
    /** Policy daemon cadence, in faults. */
    std::uint64_t tickPeriodFaults = 256;
    /** Page-table radix depth: 4, or 5 (LA57) for huge-memory hosts. */
    unsigned pageTableLevels = kPtLevels;
    /**
     * Resolve range touches through the FaultEngine's batched pipeline
     * (one VMA lookup + chunked placement per span). Placements and
     * fault statistics are identical with it off — the switch exists
     * for the golden-equivalence test and for A/B timing.
     */
    bool faultBatching = true;
    /**
     * Time the placement/install stages of every *single* fault too
     * (the batch path always times per chunk). Off by default: two
     * extra clock reads per stage per fault is exactly the overhead
     * the batch path amortizes away.
     */
    bool faultStageTimers = false;
    /**
     * Observatory sampling interval, in faults. 0 leaves the cadence
     * to whoever attaches a StateSampler (the experiment drivers);
     * nonzero overrides it for every sampler attached to this kernel.
     */
    std::uint64_t obsSamplePeriodFaults = 0;
    /**
     * MetricRegistry prefix this kernel reports under ("kernel" for
     * the host; VirtualMachine sets "guest" for its guest kernel).
     */
    std::string metricsPrefix = "kernel";
    /**
     * Fault workers this kernel will serve concurrently. 1 keeps the
     * engine strictly sequential — no lock is ever taken on the fault
     * path and placements are bit-identical to the pre-threading
     * kernel. > 1 arms the mm lock, per-VMA fault mutexes, deferred
     * policy ticks and (unless phys.zone.pcpCpus was set explicitly)
     * one per-CPU frame cache per worker.
     */
    unsigned threads = 1;
    /**
     * Arm lock-contention accounting (the concurrency observatory):
     * every kernel lock binds a named LockSite and --lock-stats
     * reports lock.<site>.* metrics. normalized() ORs in the
     * process-wide LockStatsRegistry::enabled() switch, so benches
     * need no per-config plumbing. Off: no site is bound and the
     * locks run their uninstrumented fast path.
     */
    bool lockStats = false;
    /**
     * Arm the memory-pressure path: per-zone LRU lists + watermarks,
     * the ReclaimEngine (LRU scan, swap-out, THP split-on-reclaim)
     * and the fast-path -> wake-kswapd -> direct-reclaim -> OOM
     * escalation in the allocator slow path. Off (the default), no
     * pressure state exists and every run is byte-identical to the
     * pre-reclaim kernel.
     */
    bool reclaimEnabled = false;
    /**
     * Run the background reclaimer (a kswapd thread when threads > 1;
     * synchronous balancing at fault entry when sequential). Off,
     * only allocation-failure direct reclaim runs.
     */
    bool kswapdEnabled = true;
    /**
     * Contiguity-aware victim selection: the LRU scanner scores
     * candidates by the occupancy of their enclosing 2 MiB block and
     * evicts sparse blocks first (restoring large free blocks), and
     * the CA/Ranger policies route busy-target replacements through
     * targeted reclaim. Off: plain second-chance LRU order.
     */
    bool contigAwareReclaim = false;
    /** Swap device model (reclaimEnabled kernels only). */
    SwapCostModel swapCost;
    /** Multiplier over the derived min/low/high zone watermarks. */
    double watermarkScale = 1.0;
    /**
     * Shard the per-zone physical metadata (contiguity map stripes,
     * buddy top-order free lists) and the kernel metadata pool this
     * many ways, so concurrent fault workers stop serializing on the
     * zone and pool locks (the lock.zone*.buddy / lock.pool hot spots
     * of the scaling report). 0 or 1 keeps the legacy unsharded
     * structures and is byte-identical to the pre-sharding kernel;
     * sharded runs trade the exact global placement-scan order for
     * per-stripe scans (same clusters, different tie-breaks under
     * concurrency).
     */
    unsigned numaShards = 0;

    /**
     * Process-wide default for numaShards, flipped by bench_io from
     * --numa-shards / CONTIG_NUMA_SHARDS before any kernel exists
     * (the --lock-stats contract). Kernel::normalized() applies it
     * only when the per-instance knob is unset, so tests and tweak
     * hooks that pin numaShards explicitly always win.
     */
    static void setDefaultNumaShards(unsigned n);
    static unsigned defaultNumaShards();
};

class Kernel
{
  public:
    Kernel(const KernelConfig &cfg, std::unique_ptr<AllocationPolicy> policy);
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    // --- processes ----------------------------------------------------

    Process &createProcess(const std::string &name, NodeId home_node = 0);
    /** Tear down a process, unmapping and freeing all its memory. */
    void exitProcess(Process &proc);
    std::size_t processCount() const { return processes_.size(); }

    /** Visit every live process. */
    template <typename Fn>
    void
    forEachProcess(Fn &&fn)
    {
        for (auto &p : processes_)
            fn(*p);
    }

    /** The live process with this pid, or nullptr. */
    Process *findProcess(std::uint32_t pid);

    // --- files / page cache --------------------------------------------

    File &createFile(std::uint64_t size_pages);
    PageCache &pageCache() { return pageCache_; }
    /** Evict all page-cache pages (echo 3 > drop_caches). */
    void dropCaches();

    /**
     * read()-style file ingestion: populate the page cache for
     * [page_start, page_start + n_pages) without mapping anything into
     * a process. This is how the workloads load their datasets — the
     * cache pages pollute physical memory (a long-lived fragmentation
     * source, §III-C) but are not part of any process footprint.
     */
    void readFile(File &file, std::uint64_t page_start,
                  std::uint64_t n_pages);

    // --- fault path (used by Process) -----------------------------------

    /** mmap/munmap bookkeeping incl. policy hooks. */
    Vma &mmapAnon(Process &proc, std::uint64_t bytes);
    Vma &mmapFile(Process &proc, std::uint32_t file_id, std::uint64_t bytes,
                  std::uint64_t file_offset_pages);
    void munmap(Process &proc, Vma &vma);

    /** The access entry point: fault / COW-resolve as needed. */
    void touch(Process &proc, Gva gva, Access access);

    /**
     * The demand-paging pipeline every fault flows through. Callers
     * with a whole span to resolve should use its handleRange().
     */
    FaultEngine &faultEngine() { return *engine_; }
    const FaultEngine &faultEngine() const { return *engine_; }

    /**
     * The memory-pressure engine, or nullptr when
     * KernelConfig::reclaimEnabled is off (the hooks below compile to
     * one null test in that case).
     */
    ReclaimEngine *reclaim() { return reclaim_.get(); }
    const ReclaimEngine *reclaim() const { return reclaim_.get(); }

    /** COW-share every anon mapping of parent into child (fork). */
    void forkInto(Process &parent, Process &child);

    // --- services for policies ------------------------------------------

    PhysicalMemory &physMem() { return physMem_; }
    const PhysicalMemory &physMem() const { return physMem_; }
    AllocationPolicy &policy() { return *policy_; }

    /**
     * Take ownership of a freshly buddy-allocated block: set owner
     * metadata, refcount the head and trigger the backing hook. Every
     * allocation that ends up mapped must pass through here.
     */
    void claimFrames(Pfn pfn, unsigned order, FrameOwner kind,
                     std::uint32_t owner_id, Addr owner_vaddr);

    /** Increment the share count of a mapped block (COW, page cache). */
    void getFrame(Pfn pfn);
    /** Drop one reference; frees the block back to buddy at zero. */
    void putFrame(Pfn pfn, unsigned order);

    /**
     * Allocate one frame for kernel metadata (page-table nodes).
     * Served from a pooled chunk (the per-CPU page-list analogue) so
     * metadata allocations do not nibble single pages next to CA
     * paging's data targets. With KernelConfig::numaShards the pool
     * splits into per-shard lists (own lock each), routed by worker
     * id, so fault workers stop colliding on one pool lock.
     */
    Pfn allocKernelFrame(NodeId node = 0);
    void freeKernelFrame(Pfn pfn);
    /** Pages currently reserved by the kernel metadata pool. */
    std::uint64_t
    kernelPoolPages() const
    {
        return kernelPoolPages_.load(std::memory_order_relaxed);
    }

    // --- concurrency ------------------------------------------------------

    /** This kernel serves concurrent fault workers (threads > 1). */
    bool threaded() const { return cfg_.threads > 1; }

    /**
     * The address-space lock (mmap_sem): fault entry points hold it
     * shared, mmap/munmap/fork/exit and deferred policy ticks hold it
     * exclusive. Never taken when !threaded().
     */
    std::shared_mutex &mmLock() { return mmLock_; }

    /** Serializes page-cache fills/evictions across fault workers. */
    SpinLock &pageCacheLock() { return pageCacheLock_; }

    /** Contention site of mmLock(), or nullptr when lock stats are
     *  off. std::shared_mutex cannot carry its own site, so guards
     *  around mmLock() pass this explicitly. */
    LockSite *mmLockSite() const { return mmSite_; }

    /** Shared contention site bound into every per-VMA fault lock. */
    LockSite *vmaFaultSite() const { return vmaFaultSite_; }

    /**
     * Thread-safe CounterSet::inc for fault-path counters. The map
     * itself stays unlocked for exclusive contexts (policy daemons,
     * workloads) which call counters().inc directly.
     */
    void incCounter(std::string_view name, std::uint64_t by = 1);

    // --- clock / observation ---------------------------------------------

    /** Simulated time = faults handled so far (all processes). */
    std::uint64_t now() const { return engine_->now(); }

    const KernelConfig &config() const { return cfg_; }
    FaultStats &faultStats() { return engine_->stats(); }
    const FaultStats &faultStats() const { return engine_->stats(); }
    CounterSet &counters() { return counters_; }

    /**
     * Report this kernel's metrics: fault-path stats, the ad-hoc
     * counters, per-zone buddy/contiguity-map state and the active
     * policy's stats. Registered with MetricRegistry::global() under
     * config().metricsPrefix for the kernel's lifetime.
     */
    void collectMetrics(obs::MetricSink &sink) const;

    /**
     * Serialize this kernel's observable state: fault clock and
     * stats, ad-hoc counters, physical memory (buddy free lists, pcp
     * caches) and every process's VMAs + page table. Save-only: a
     * resumed run rebuilds the kernel deterministically (translation
     * replay never mutates kernel state), then re-serializes and
     * byte-compares against the snapshot to prove it.
     */
    void saveState(Serializer &s) const;

    /** Observer invoked after every fault (timeline sampling). */
    std::function<void(const FaultEvent &)> onFault;

    /**
     * Guest kernels: invoked whenever guest frames [pfn, pfn+2^order)
     * are allocated, to raise the corresponding nested (host) faults.
     */
    std::function<void(Pfn, unsigned)> backingHook;

  private:
    void unmapVmaPages(Process &proc, Vma &vma);
    /** munmap() body; caller holds the exclusive mm lock (if threaded). */
    void munmapLocked(Process &proc, Vma &vma);

    /**
     * Fill in the thread-derived defaults (pcp cache geometry) before
     * the config reaches PhysicalMemory.
     */
    static KernelConfig normalized(KernelConfig cfg);

    KernelConfig cfg_;
    PhysicalMemory physMem_;
    std::unique_ptr<AllocationPolicy> policy_;
    PageCache pageCache_;
    std::vector<std::unique_ptr<Process>> processes_;
    std::uint32_t nextPid_ = 1;
    CounterSet counters_;
    /**
     * The fault pipeline (owns the fault stats and phase timers).
     * Declared before metricSource_: the collect callback reads it,
     * so it must outlive the registration.
     */
    std::unique_ptr<FaultEngine> engine_;
    /** The memory-pressure path (reclaimEnabled kernels only). */
    std::unique_ptr<ReclaimEngine> reclaim_;
    /** Registration with the global MetricRegistry (absorb on death). */
    obs::MetricSource metricSource_;
    /**
     * One shard of the kernel metadata pool; padded so neighbouring
     * shard locks don't false-share. One shard (the default) is the
     * legacy single pool.
     */
    struct alignas(64) PoolShard
    {
        std::vector<Pfn> pfns;
        SpinLock lock;
    };

    /** The calling worker's home shard. */
    PoolShard &myPoolShard();
    /** Refill one shard from the buddy; call with its lock held. */
    bool refillPoolLocked(PoolShard &shard, NodeId node);

    /** Kernel metadata pool shards (see allocKernelFrame). */
    std::vector<PoolShard> pool_;
    std::atomic<std::uint64_t> kernelPoolPages_{0};
    /** Chunk order for pool refills (64 pages, like a pcp batch). */
    static constexpr unsigned kKernelPoolOrder = 6;

    /** See mmLock() / pageCacheLock(). Taken only when threaded(). */
    std::shared_mutex mmLock_;
    SpinLock pageCacheLock_;
    /** Protects counters_ against concurrent fault-path increments. */
    SpinLock counterLock_;
    /** Lock-stats sites (bound in the ctor iff cfg_.lockStats). */
    LockSite *mmSite_ = nullptr;
    LockSite *vmaFaultSite_ = nullptr;
};

} // namespace contig

#endif // CONTIG_MM_KERNEL_HH
