file(REMOVE_RECURSE
  "CMakeFiles/test_ranges.dir/ranges/ranges_test.cc.o"
  "CMakeFiles/test_ranges.dir/ranges/ranges_test.cc.o.d"
  "test_ranges"
  "test_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
