/**
 * @file
 * Micro-benchmark (google-benchmark): the observability tax. Verifies
 * the "one predictable branch when disabled" claim of the tracing
 * macro by measuring a hot loop
 *
 *  - bare (no instrumentation at all),
 *  - with CONTIG_TRACE at a masked-off category (the shipping
 *    default: every event site costs one branch on a cached mask),
 *  - with the category enabled (clock read + ring-buffer store),
 *
 * plus the cost of a CounterSet increment through the heterogeneous
 * string_view lookup and of one MetricRegistry snapshot.
 */

#include <benchmark/benchmark.h>

#include "base/stats.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

using namespace contig;

namespace
{

/** The work the instrumentation rides on: a trivial LCG step. */
inline std::uint64_t
step(std::uint64_t x)
{
    return x * 6364136223846793005ull + 1442695040888963407ull;
}

void
BM_BareLoop(benchmark::State &state)
{
    std::uint64_t x = 1;
    for (auto _ : state) {
        x = step(x);
        benchmark::DoNotOptimize(x);
    }
}

void
BM_TraceDisabled(benchmark::State &state)
{
    obs::TraceSink::global().setCategoryMask(0);
    std::uint64_t x = 1;
    for (auto _ : state) {
        x = step(x);
        CONTIG_TRACE(obs::TraceEventKind::PageFault, x, x, 0);
        benchmark::DoNotOptimize(x);
    }
}

void
BM_TraceEnabled(benchmark::State &state)
{
    obs::TraceSink &sink = obs::TraceSink::global();
    sink.setCapacity(1u << 16);
    sink.setCategoryMask(obs::kCatFault);
    std::uint64_t x = 1;
    for (auto _ : state) {
        x = step(x);
        CONTIG_TRACE(obs::TraceEventKind::PageFault, x, x, 0);
        benchmark::DoNotOptimize(x);
    }
    sink.setCategoryMask(0);
    sink.clear();
}

void
BM_CounterInc(benchmark::State &state)
{
    CounterSet counters;
    for (auto _ : state)
        counters.inc("migrate.pages", 1);
    benchmark::DoNotOptimize(counters.get("migrate.pages"));
}

void
BM_RegistrySnapshot(benchmark::State &state)
{
    obs::MetricRegistry reg;
    for (int i = 0; i < 64; ++i)
        reg.counter("bench.counter_" + std::to_string(i)) = i;
    reg.summary("bench.lat").add(1.0);
    for (auto _ : state) {
        auto snap = reg.snapshot();
        benchmark::DoNotOptimize(snap.size());
    }
}

} // namespace

BENCHMARK(BM_BareLoop);
BENCHMARK(BM_TraceDisabled);
BENCHMARK(BM_TraceEnabled);
BENCHMARK(BM_CounterInc);
BENCHMARK(BM_RegistrySnapshot);
