file(REMOVE_RECURSE
  "CMakeFiles/fig12_virt_contiguity.dir/fig12_virt_contiguity.cc.o"
  "CMakeFiles/fig12_virt_contiguity.dir/fig12_virt_contiguity.cc.o.d"
  "fig12_virt_contiguity"
  "fig12_virt_contiguity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_virt_contiguity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
