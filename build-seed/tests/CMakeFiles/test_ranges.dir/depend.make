# Empty dependencies file for test_ranges.
# This may be replaced when dependencies are built.
