/**
 * @file
 * ParallelDriver: runs a fig10-style multi-programmed fault workload
 * on N worker threads against one kernel. Each worker owns one
 * process with one anonymous region and touches it in 4 MiB chunks,
 * the chunk order shuffled by a per-worker RNG stream derived from
 * the base seed (recorded in config.run for reproducibility).
 *
 * Determinism contract: the per-worker plan (process, region, chunk
 * order) depends only on (seed, worker index, geometry) — never on
 * the thread count. With threads == 1 the workers run inline on the
 * calling thread in index order, the kernel stays in its sequential
 * mode, and the resulting placements and fault statistics are
 * bit-identical to hand-driving the same touches (enforced by the
 * parallel golden-equivalence test). With threads > 1 each worker
 * runs on its own std::thread inside a FaultEngine::WorkerScope, so
 * its faults use per-thread statistics and pcp frame cache `i`.
 */

#ifndef CONTIG_CORE_PARALLEL_HH
#define CONTIG_CORE_PARALLEL_HH

#include <cstdint>
#include <vector>

#include "mm/process.hh"

namespace contig
{

class Kernel;

struct ParallelDriverConfig
{
    /**
     * Worker count. Should match KernelConfig::threads: with
     * kernel.threaded() false the workers run sequentially regardless
     * (running > 1 worker threads against a non-threaded kernel is a
     * programming error and asserts).
     */
    unsigned threads = 1;
    /** Anonymous region per worker. */
    std::uint64_t bytesPerWorker = 64ull << 20;
    /** Touch granularity (one handleRange span per chunk). */
    std::uint64_t chunkBytes = 4ull << 20;
    /** Base seed; worker i's stream is splitmix64(seed, i). */
    std::uint64_t seed = 0x5EED;
    /** Shuffle each worker's chunk order (off = sequential sweep). */
    bool shuffle = true;
};

class ParallelDriver
{
  public:
    /** The per-worker work list, fixed at construction. */
    struct WorkerPlan
    {
        Process *proc = nullptr;
        Vma *vma = nullptr;
        std::uint64_t seed = 0; //!< this worker's derived RNG seed
        /** Chunk indices in touch order. */
        std::vector<std::uint64_t> chunkOrder;
    };

    /**
     * Creates the worker processes/regions and derives the per-worker
     * plans (main thread; records parallel.* in RunInfo).
     */
    ParallelDriver(Kernel &kernel, const ParallelDriverConfig &cfg);

    ParallelDriver(const ParallelDriver &) = delete;
    ParallelDriver &operator=(const ParallelDriver &) = delete;

    /**
     * Touch every worker's chunks: concurrently on cfg.threads
     * threads when the kernel is threaded, inline in worker-index
     * order otherwise. May be called once.
     */
    void run();

    /** exitProcess() every worker process (drains pcp caches). */
    void exitAll();

    const std::vector<WorkerPlan> &plans() const { return plans_; }

    /** The worker-i derived seed (exposed for the golden test). */
    static std::uint64_t workerSeed(std::uint64_t base, unsigned worker);

  private:
    void runWorker(const WorkerPlan &plan);

    Kernel &kernel_;
    ParallelDriverConfig cfg_;
    std::vector<WorkerPlan> plans_;
    bool ran_ = false;
};

} // namespace contig

#endif // CONTIG_CORE_PARALLEL_HH
