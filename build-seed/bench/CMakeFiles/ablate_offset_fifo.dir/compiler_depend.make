# Empty compiler generated dependencies file for ablate_offset_fifo.
# This may be replaced when dependencies are built.
