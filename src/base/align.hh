/**
 * @file
 * Alignment and interval helpers shared by the buddy allocator, the
 * page tables and the range extractors.
 */

#ifndef CONTIG_BASE_ALIGN_HH
#define CONTIG_BASE_ALIGN_HH

#include <cstdint>

namespace contig
{

/** Round value down to a multiple of align (align must be a power of 2). */
constexpr std::uint64_t
alignDown(std::uint64_t value, std::uint64_t align)
{
    return value & ~(align - 1);
}

/** Round value up to a multiple of align (align must be a power of 2). */
constexpr std::uint64_t
alignUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** True iff value is a multiple of align (align must be a power of 2). */
constexpr bool
isAligned(std::uint64_t value, std::uint64_t align)
{
    return (value & (align - 1)) == 0;
}

/** Floor of log2(value); value must be nonzero. */
constexpr unsigned
log2Floor(std::uint64_t value)
{
    unsigned r = 0;
    while (value >>= 1)
        ++r;
    return r;
}

/** True iff value is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Half-open interval [begin, end) overlap test. */
constexpr bool
intervalsOverlap(std::uint64_t a_begin, std::uint64_t a_end,
                 std::uint64_t b_begin, std::uint64_t b_end)
{
    return a_begin < b_end && b_begin < a_end;
}

} // namespace contig

#endif // CONTIG_BASE_ALIGN_HH
