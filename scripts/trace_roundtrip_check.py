#!/usr/bin/env python3
"""Capture/replay/checkpoint equivalence gate for the trace frontend.

Usage: trace_roundtrip_check.py <bench-binary> [--threads 1,4]
                                [--ckpt-at 3] [--artifacts DIR]
                                [--attrib]

For each requested --xlat-threads value T this script proves the full
trace-frontend contract on one bench binary:

  1. live run at T, teeing every translation replay to .ctrace files
     (--trace-out); the capture must not perturb the simulation,
  2. replay run at T feeding the same engine from the captured traces
     (--trace-in): canonical JSON must be byte-identical to the live
     run,
  3. interrupted replay at T that snapshots at chunk K and stops
     (--ckpt-out --ckpt-at K),
  4. resumed replay at T from those snapshots (--ckpt-in): canonical
     JSON must again be byte-identical to the live run.

"Canonical" strips only wall-clock-dependent material: phase/lock
timing metrics, walk-memo occupancy, the derived scaling section, and
the trace.*/ckpt.* bookkeeping keys that legitimately differ between a
live and a replayed run. Every simulated counter — hits, walks,
cycles, SpOT predictions, fault statistics — must match exactly.

With --attrib every run additionally carries the cost-attribution
switch and must emit an "attribution" section; the section is part of
the canonical document, so per-outcome x contiguity-class cost cells,
percentiles, and exemplars must survive capture → replay →
checkpoint → resume byte-for-byte (shard tables are checkpointed and
merged in deterministic shard order; the fault path re-runs
identically on resume).
"""

import argparse
import json
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

TIME_SUFFIXES = ("busy_us", "stall_us", "wait_us", "wall_us")
TIME_PREFIXES = ("phase.", "trace.", "lock.")


def fail(msg):
    print(f"trace_roundtrip_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run(binary, json_path, *flags):
    cmd = [str(binary), "--json", str(json_path), *flags]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, timeout=900)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
             f"{proc.stdout.decode(errors='replace')[-2000:]}")
    return json.loads(Path(json_path).read_text())


def canonical(doc):
    """Drop wall-clock and run-provenance keys; keep every simulated
    counter. Returns a deterministic dump for byte comparison."""
    doc = json.loads(json.dumps(doc))  # deep copy
    metrics = doc.get("metrics", {})
    for key in list(metrics):
        if (key.startswith(TIME_PREFIXES) or ".memo." in key
                or key.endswith(TIME_SUFFIXES) or "barrier.skew" in key):
            del metrics[key]
    doc.pop("scaling", None)
    run_cfg = doc.get("config", {}).get("run", {})
    for key in list(run_cfg):
        if key.startswith(("trace.", "ckpt.")):
            del run_cfg[key]
    return json.dumps(doc, sort_keys=True, indent=1)


def expect_same(name, live, other):
    a, b = canonical(live), canonical(other)
    if a == b:
        print(f"trace_roundtrip_check: OK: {name} is canonical-identical"
              " to the live run")
        return
    for i, (la, lb) in enumerate(zip(a.splitlines(), b.splitlines()), 1):
        if la != lb:
            fail(f"{name} diverged from the live run at line {i}:\n"
                 f"  live:   {la}\n  {name}: {lb}")
    fail(f"{name} diverged from the live run (lengths differ)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("binary", type=Path)
    ap.add_argument("--threads", default="1,4")
    ap.add_argument("--ckpt-at", type=int, default=3)
    ap.add_argument("--artifacts", type=Path, default=None,
                    help="keep traces/checkpoints/JSONs here")
    ap.add_argument("--attrib", action="store_true",
                    help="run everything under --attrib and require "
                         "the attribution section to round-trip")
    args = ap.parse_args()
    if not args.binary.exists():
        fail(f"bench binary not found: {args.binary}")

    work = Path(tempfile.mkdtemp(prefix="trace_roundtrip_"))
    try:
        trace = work / "cap"
        ckpt_at = str(args.ckpt_at)

        def require_attrib(name, doc):
            if args.attrib and "attribution" not in doc:
                fail(f"--attrib: {name} run emitted no attribution "
                     f"section")

        for t in args.threads.split(","):
            tf = ["--xlat-threads", t]
            if args.attrib:
                tf.append("--attrib")
            # Capture once (the trace is thread-count independent);
            # later thread counts reuse it but need their own live
            # baseline because shard-private caches move counters.
            if not list(work.glob("cap.*.ctrace")):
                live = run(args.binary, work / f"live{t}.json",
                           *tf, "--trace-out", trace)
                n = len(list(work.glob("cap.*.ctrace")))
                if n == 0:
                    fail("--trace-out produced no .ctrace files")
                print(f"trace_roundtrip_check: captured {n} trace(s) "
                      f"at --xlat-threads {t}")
            else:
                live = run(args.binary, work / f"live{t}.json", *tf)
            require_attrib(f"live@t{t}", live)

            replay = run(args.binary, work / f"replay{t}.json",
                         *tf, "--trace-in", trace)
            require_attrib(f"replay@t{t}", replay)
            expect_same(f"replay@t{t}", live, replay)

            ck = work / f"ck{t}"
            run(args.binary, work / f"int{t}.json", *tf,
                "--trace-in", trace, "--ckpt-out", ck,
                "--ckpt-at", ckpt_at)
            if not list(work.glob(f"ck{t}.*.ckpt")):
                fail("--ckpt-out produced no .ckpt files")
            resumed = run(args.binary, work / f"resume{t}.json",
                          *tf, "--trace-in", trace, "--ckpt-in", ck)
            require_attrib(f"resume@t{t}", resumed)
            expect_same(f"resume@t{t}", live, resumed)
        if args.artifacts:
            args.artifacts.mkdir(parents=True, exist_ok=True)
            for p in sorted(work.iterdir()):
                shutil.copy2(p, args.artifacts / p.name)
            print(f"trace_roundtrip_check: artifacts in {args.artifacts}")
    finally:
        shutil.rmtree(work, ignore_errors=True)
    print("trace_roundtrip_check: PASS")


if __name__ == "__main__":
    main()
