/**
 * @file
 * Fundamental address types and page-size constants used across the
 * reproduction. Addresses come in three flavours matching the paper's
 * terminology: guest virtual (Gva), guest physical (Gpa) and host
 * physical (Hpa). In native (non-virtualized) configurations Gpa is
 * unused and Hpa plays the role of the plain physical address.
 */

#ifndef CONTIG_BASE_TYPES_HH
#define CONTIG_BASE_TYPES_HH

#include <cstdint>
#include <compare>
#include <functional>

namespace contig
{

/** Raw 64-bit address value. */
using Addr = std::uint64_t;

/** Physical frame number: physical address >> kPageShift. */
using Pfn = std::uint64_t;

/** Sentinel for "no frame". */
constexpr Pfn kInvalidPfn = ~Pfn{0};

/** Virtual page number: virtual address >> kPageShift. */
using Vpn = std::uint64_t;

/** Base page geometry (x86-64 4 KiB pages). */
constexpr unsigned kPageShift = 12;
constexpr Addr kPageSize = Addr{1} << kPageShift;
constexpr Addr kPageMask = kPageSize - 1;

/** Transparent huge page geometry (2 MiB). */
constexpr unsigned kHugeOrder = 9;
constexpr unsigned kHugeShift = kPageShift + kHugeOrder;
constexpr Addr kHugeSize = Addr{1} << kHugeShift;
constexpr Addr kHugeMask = kHugeSize - 1;

/**
 * Largest buddy order tracked by the stock allocator (Linux default
 * MAX_ORDER = 11, i.e. 4 MiB aligned blocks of 2^11 base pages).
 * Eager paging raises this limit (see EagerPolicy).
 */
constexpr unsigned kMaxOrder = 11;

/** Number of base pages in a block of the given buddy order. */
constexpr std::uint64_t
pagesInOrder(unsigned order)
{
    return std::uint64_t{1} << order;
}

/**
 * Strongly typed address. The Tag parameter distinguishes the three
 * address spaces at compile time so that e.g. a guest physical address
 * can never be passed where a host physical address is expected.
 */
template <typename Tag>
struct TypedAddr
{
    Addr value = 0;

    constexpr TypedAddr() = default;
    constexpr explicit TypedAddr(Addr v) : value(v) {}

    constexpr auto operator<=>(const TypedAddr &) const = default;

    constexpr TypedAddr operator+(Addr off) const
    { return TypedAddr{value + off}; }
    constexpr TypedAddr operator-(Addr off) const
    { return TypedAddr{value - off}; }
    constexpr Addr operator-(TypedAddr other) const
    { return value - other.value; }
    TypedAddr &operator+=(Addr off) { value += off; return *this; }

    /** Page number of this address (address >> kPageShift). */
    constexpr std::uint64_t pageNumber() const
    { return value >> kPageShift; }

    /** Offset of this address within its base page. */
    constexpr Addr pageOffset() const { return value & kPageMask; }

    /** Address rounded down to its base-page boundary. */
    constexpr TypedAddr pageBase() const
    { return TypedAddr{value & ~kPageMask}; }

    /** Address rounded down to its huge-page boundary. */
    constexpr TypedAddr hugeBase() const
    { return TypedAddr{value & ~kHugeMask}; }
};

struct GvaTag {};
struct GpaTag {};
struct HpaTag {};

/** Guest (or native process) virtual address. */
using Gva = TypedAddr<GvaTag>;
/** Guest physical address (the hypervisor's "virtual" dimension). */
using Gpa = TypedAddr<GpaTag>;
/** Host physical address (a real machine frame). */
using Hpa = TypedAddr<HpaTag>;

/** Identifier of a NUMA node / zone. */
using NodeId = unsigned;

/** Simulated cycle count. */
using Cycles = std::uint64_t;

} // namespace contig

namespace std
{

template <typename Tag>
struct hash<contig::TypedAddr<Tag>>
{
    size_t operator()(const contig::TypedAddr<Tag> &a) const noexcept
    { return std::hash<contig::Addr>{}(a.value); }
};

} // namespace std

#endif // CONTIG_BASE_TYPES_HH
