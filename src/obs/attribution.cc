#include "obs/attribution.hh"

#include <algorithm>

#include "base/json.hh"
#include "base/logging.hh"
#include "base/serialize.hh"
#include "contig/analysis.hh"
#include "obs/metrics.hh"

namespace contig
{
namespace obs
{

namespace
{

constexpr std::uint32_t kAttrTag = sectionTag('A', 'T', 'T', 'R');

const char *const kOutcomeNames[kXlatOutcomes] = {
    "tlb_hit", "segment_hit", "spot_hit",
    "range_hit", "psc_walk", "full_walk",
};

// Class b spans offset-runs of [2^b, 2^(b+1)) base pages; with 4 KiB
// pages that is 4K << b of contiguity. Class 9 is the THP size.
const char *const kClassNames[kContigClasses] = {
    "4K", "8K", "16K", "32K", "64K", "128K", "256K", "512K",
    "1M", "2M(THP)", "4M", "8M", "16M", "32M", "64M", ">=128M",
};

const char *const kKindNames[kFaultKinds] = {"anon", "cow", "file"};

const char *const kFallNames[kFaultFalls] = {"none", "no_huge_block", "oom"};

void
saveHistogram(Serializer &s, const Log2Histogram &h)
{
    s.u32(h.numBuckets());
    for (unsigned i = 0; i < h.numBuckets(); ++i)
        s.u64(h.bucket(i));
}

void
restoreHistogram(Deserializer &d, Log2Histogram &h)
{
    h.reset();
    const std::uint32_t n = d.u32();
    if (n > 64)
        fatal("attribution checkpoint: histogram with %u buckets", n);
    // add(2^i, w) lands exactly in bucket i, so replaying the bucket
    // weights reconstructs the histogram state bit-for-bit.
    for (std::uint32_t i = 0; i < n; ++i)
        h.add(std::uint64_t{1} << i, d.u64());
}

/**
 * Strict total order on exemplar content (hottest first). Because it
 * never compares equal for distinct events — vpn breaks ties across
 * shards, seq within one — the surviving top-K set is independent of
 * merge order, which keeps sharded runs deterministic.
 */
bool
hotterThan(const XlatAttribution::Exemplar &a,
           const XlatAttribution::Exemplar &b)
{
    if (a.cycles != b.cycles)
        return a.cycles > b.cycles;
    if (a.chunk != b.chunk)
        return a.chunk < b.chunk;
    if (a.seq != b.seq)
        return a.seq < b.seq;
    if (a.vpn != b.vpn)
        return a.vpn < b.vpn;
    if (a.outcome != b.outcome)
        return a.outcome < b.outcome;
    return a.cls < b.cls;
}

} // namespace

const char *
xlatOutcomeName(XlatOutcome o)
{
    return kOutcomeNames[static_cast<unsigned>(o)];
}

const char *
contigClassName(unsigned cls)
{
    return kClassNames[cls < kContigClasses ? cls : kContigClasses - 1];
}

const char *
faultKindName(unsigned kind)
{
    return kKindNames[kind < kFaultKinds ? kind : 0];
}

const char *
faultFallName(unsigned fall)
{
    return kFallNames[fall < kFaultFalls ? fall : 0];
}

// --- ContigClassIndex -------------------------------------------------

unsigned
ContigClassIndex::classOfRun(std::uint64_t pages)
{
    unsigned b = 0;
    while ((std::uint64_t{1} << (b + 1)) <= pages &&
           b + 1 < kContigClasses)
        ++b;
    return b;
}

ContigClassIndex::ContigClassIndex(const std::vector<Seg> &segs)
{
    runs_.reserve(segs.size());
    for (const Seg &s : segs) {
        if (s.pages == 0)
            continue;
        runs_.push_back(Run{s.vpn, s.pages,
                            static_cast<std::uint8_t>(classOfRun(s.pages))});
    }
    std::sort(runs_.begin(), runs_.end(),
              [](const Run &a, const Run &b) { return a.vpn < b.vpn; });
}

unsigned
ContigClassIndex::classify(Vpn vpn) const
{
    // First run starting strictly after vpn; its predecessor is the
    // only candidate container (runs are maximal, so disjoint).
    auto it = std::upper_bound(
        runs_.begin(), runs_.end(), vpn,
        [](Vpn v, const Run &r) { return v < r.vpn; });
    if (it == runs_.begin())
        return 0;
    --it;
    return vpn < it->vpn + it->pages ? it->cls : 0;
}

// --- CostCell ---------------------------------------------------------

void
CostCell::mergeFrom(const CostCell &other)
{
    events += other.events;
    cycles += other.cycles;
    exposed += other.exposed;
    hist.mergeFrom(other.hist);
}

void
CostCell::save(Serializer &s) const
{
    s.u64(events);
    s.u64(cycles);
    s.u64(exposed);
    saveHistogram(s, hist);
}

void
CostCell::restore(Deserializer &d)
{
    events = d.u64();
    cycles = d.u64();
    exposed = d.u64();
    restoreHistogram(d, hist);
}

// --- XlatAttribution --------------------------------------------------

void
XlatAttribution::offer(const Exemplar &e)
{
    auto pos = std::upper_bound(exemplars_.begin(), exemplars_.end(), e,
                                hotterThan);
    if (exemplars_.size() >= kExemplarCapacity &&
        pos == exemplars_.end()) {
        return;
    }
    exemplars_.insert(pos, e);
    if (exemplars_.size() > kExemplarCapacity)
        exemplars_.pop_back();
}

CostCell
XlatAttribution::outcomeTotal(unsigned outcome) const
{
    CostCell total;
    for (unsigned c = 0; c < kContigClasses; ++c)
        total.mergeFrom(cells_[outcome][c]);
    return total;
}

void
XlatAttribution::mergeFrom(const XlatAttribution &other)
{
    for (unsigned o = 0; o < kXlatOutcomes; ++o)
        for (unsigned c = 0; c < kContigClasses; ++c)
            cells_[o][c].mergeFrom(other.cells_[o][c]);
    for (const Exemplar &e : other.exemplars_)
        offer(e);
    seq_ += other.seq_;
    chunk_ = std::max(chunk_, other.chunk_);
}

void
XlatAttribution::collectMetrics(MetricSink &sink) const
{
    for (unsigned o = 0; o < kXlatOutcomes; ++o) {
        const CostCell total = outcomeTotal(o);
        if (total.empty())
            continue;
        MetricSink::Scope scope(sink,
                                xlatOutcomeName(static_cast<XlatOutcome>(o)));
        sink.counter("events", total.events);
        sink.counter("walk_cycles", total.cycles);
        sink.counter("exposed_cycles", total.exposed);
    }
}

void
XlatAttribution::save(Serializer &s) const
{
    const std::size_t cookie = s.beginSection(kAttrTag);
    s.str(label_);
    s.u64(chunk_);
    s.u64(seq_);
    s.u32(kXlatOutcomes);
    s.u32(kContigClasses);
    for (unsigned o = 0; o < kXlatOutcomes; ++o)
        for (unsigned c = 0; c < kContigClasses; ++c)
            cells_[o][c].save(s);
    s.u32(static_cast<std::uint32_t>(exemplars_.size()));
    for (const Exemplar &e : exemplars_) {
        s.u64(e.vpn);
        s.u64(e.cycles);
        s.u8(e.outcome);
        s.u8(e.cls);
        s.u64(e.chunk);
        s.u64(e.seq);
    }
    s.endSection(cookie);
}

void
XlatAttribution::restore(Deserializer &d)
{
    d.expectSection(kAttrTag, "attribution");
    label_ = d.str();
    chunk_ = d.u64();
    seq_ = d.u64();
    const std::uint32_t outs = d.u32();
    const std::uint32_t classes = d.u32();
    if (outs != kXlatOutcomes || classes != kContigClasses) {
        fatal("attribution checkpoint dimensions %ux%u do not match "
              "this build's %ux%u",
              outs, classes, kXlatOutcomes, kContigClasses);
    }
    for (unsigned o = 0; o < kXlatOutcomes; ++o)
        for (unsigned c = 0; c < kContigClasses; ++c)
            cells_[o][c].restore(d);
    exemplars_.clear();
    const std::uint32_t n = d.u32();
    if (n > kExemplarCapacity)
        fatal("attribution checkpoint: %u exemplars exceed capacity %zu",
              n, kExemplarCapacity);
    for (std::uint32_t i = 0; i < n; ++i) {
        Exemplar e;
        e.vpn = d.u64();
        e.cycles = d.u64();
        e.outcome = d.u8();
        e.cls = d.u8();
        e.chunk = d.u64();
        e.seq = d.u64();
        exemplars_.push_back(e);
    }
}

// --- FaultAttribution -------------------------------------------------

std::uint64_t
FaultAttribution::events() const
{
    std::uint64_t n = 0;
    for (unsigned k = 0; k < kFaultKinds; ++k)
        for (unsigned o = 0; o < kFaultOrders; ++o)
            for (unsigned f = 0; f < kFaultFalls; ++f)
                n += cells_[k][o][f].events;
    return n;
}

void
FaultAttribution::mergeFrom(const FaultAttribution &other)
{
    for (unsigned k = 0; k < kFaultKinds; ++k)
        for (unsigned o = 0; o < kFaultOrders; ++o)
            for (unsigned f = 0; f < kFaultFalls; ++f)
                cells_[k][o][f].mergeFrom(other.cells_[k][o][f]);
}

// --- AttribRegistry ---------------------------------------------------

AttribRegistry &
AttribRegistry::global()
{
    static AttribRegistry instance;
    return instance;
}

void
AttribRegistry::absorbXlat(const XlatAttribution &table)
{
    if (table.events() == 0 && table.exemplars().empty())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = xlat_.find(table.label());
    if (it == xlat_.end()) {
        it = xlat_.emplace(table.label(), XlatAttribution(table.label()))
                 .first;
    }
    it->second.mergeFrom(table);
}

void
AttribRegistry::absorbFault(const FaultAttribution &table)
{
    if (table.events() == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    fault_.mergeFrom(table);
    hasFault_ = true;
}

bool
AttribRegistry::hasData() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return !xlat_.empty() || hasFault_;
}

std::vector<std::string>
AttribRegistry::labels() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(xlat_.size());
    for (const auto &kv : xlat_)
        out.push_back(kv.first);
    return out;
}

const XlatAttribution *
AttribRegistry::xlat(const std::string &label) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = xlat_.find(label);
    return it == xlat_.end() ? nullptr : &it->second;
}

void
AttribRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    xlat_.clear();
    fault_ = FaultAttribution{};
    hasFault_ = false;
}

namespace
{

void
writeCellBody(JsonWriter &w, const CostCell &cell, bool with_exposed)
{
    w.field("events", cell.events);
    if (with_exposed) {
        w.field("walk_cycles", cell.cycles);
        w.field("exposed_cycles", cell.exposed);
    } else {
        w.field("cycles", cell.cycles);
    }
    w.field("p50", cell.hist.percentile(0.50));
    w.field("p90", cell.hist.percentile(0.90));
    w.field("p99", cell.hist.percentile(0.99));
    w.key("hist");
    w.beginArray();
    for (unsigned i = 0; i < cell.hist.numBuckets(); ++i)
        w.value(cell.hist.bucket(i));
    w.endArray();
}

void
writeXlatTable(JsonWriter &w, const XlatAttribution &t)
{
    w.beginObject();
    CostCell grand;
    for (unsigned o = 0; o < kXlatOutcomes; ++o)
        grand.mergeFrom(t.outcomeTotal(o));
    w.field("events", grand.events);
    w.field("walk_cycles", grand.cycles);
    w.field("exposed_cycles", grand.exposed);
    w.key("outcomes");
    w.beginObject();
    for (unsigned o = 0; o < kXlatOutcomes; ++o) {
        const CostCell total = t.outcomeTotal(o);
        if (total.empty())
            continue;
        w.key(xlatOutcomeName(static_cast<XlatOutcome>(o)));
        w.beginObject();
        w.field("events", total.events);
        w.field("walk_cycles", total.cycles);
        w.field("exposed_cycles", total.exposed);
        w.field("exposed_p50", total.hist.percentile(0.50));
        w.field("exposed_p90", total.hist.percentile(0.90));
        w.field("exposed_p99", total.hist.percentile(0.99));
        w.key("classes");
        w.beginArray();
        for (unsigned c = 0; c < kContigClasses; ++c) {
            const CostCell &cell = t.cell(o, c);
            if (cell.empty())
                continue;
            w.beginObject();
            w.field("class", c);
            w.field("name", contigClassName(c));
            writeCellBody(w, cell, /*with_exposed=*/true);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.key("exemplars");
    w.beginArray();
    for (const XlatAttribution::Exemplar &e : t.exemplars()) {
        w.beginObject();
        w.field("vpn", e.vpn);
        w.field("cycles", e.cycles);
        w.field("outcome",
                xlatOutcomeName(static_cast<XlatOutcome>(e.outcome)));
        w.field("class", static_cast<unsigned>(e.cls));
        w.field("chunk", e.chunk);
        w.field("seq", e.seq);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace

void
AttribRegistry::writeSection(JsonWriter &w) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (xlat_.empty() && !hasFault_)
        return;
    w.key("attribution");
    w.beginObject();
    w.field("exemplar_capacity",
            static_cast<std::uint64_t>(XlatAttribution::kExemplarCapacity));
    w.field("classes", kContigClasses);
    w.key("xlat");
    w.beginObject();
    for (const auto &kv : xlat_) {
        w.key(kv.first);
        writeXlatTable(w, kv.second);
    }
    w.endObject();
    if (hasFault_) {
        w.key("fault");
        w.beginObject();
        CostCell grand;
        for (unsigned k = 0; k < kFaultKinds; ++k)
            for (unsigned o = 0; o < kFaultOrders; ++o)
                for (unsigned f = 0; f < kFaultFalls; ++f)
                    grand.mergeFrom(fault_.cell(k, o, f));
        w.field("events", grand.events);
        w.field("cycles", grand.cycles);
        w.key("cells");
        w.beginArray();
        for (unsigned k = 0; k < kFaultKinds; ++k) {
            for (unsigned o = 0; o < kFaultOrders; ++o) {
                for (unsigned f = 0; f < kFaultFalls; ++f) {
                    const CostCell &cell = fault_.cell(k, o, f);
                    if (cell.empty())
                        continue;
                    w.beginObject();
                    w.field("kind", faultKindName(k));
                    w.field("order", o == 0 ? "base" : "huge");
                    w.field("fallback", faultFallName(f));
                    writeCellBody(w, cell, /*with_exposed=*/false);
                    w.endObject();
                }
            }
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
}

} // namespace obs
} // namespace contig
