# Empty dependencies file for fig01c_ranger_delay.
# This may be replaced when dependencies are built.
