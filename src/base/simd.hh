/**
 * @file
 * SIMD probe kernels for the structure-of-arrays translation
 * structures (TLB sets, SpOT sets, walker PSC / nested TLB). Every
 * probed array keeps its tags in a contiguous uint64 lane padded to a
 * multiple of the AVX2 width, with kNoTag64 in invalid and padding
 * slots, so "find the way holding this tag" is a handful of vector
 * compares instead of a per-way branchy scan.
 *
 * Three independent switches select the probe width:
 *  - compile time: the CONTIG_SIMD CMake option compiles the AVX2
 *    kernel in (as a target("avx2") function, so the rest of the
 *    build needs no -mavx2) or leaves only the scalar loop;
 *  - run time, CPU: __builtin_cpu_supports("avx2") is checked once —
 *    a non-AVX2 host silently runs the scalar loop;
 *  - run time, policy: setForceScalar() (bench_io's --no-simd /
 *    CONTIG_SIMD=0) pins the scalar loop for A/B measurements in one
 *    binary.
 *
 * The scalar and AVX2 kernels return the same lane for the same
 * input (the lowest matching index), so simulated statistics are
 * byte-identical across all switch combinations; only wall clock
 * moves. tests/tlb/tlb_test.cc and the engine golden-equivalence
 * suite pin this.
 */

#ifndef CONTIG_BASE_SIMD_HH
#define CONTIG_BASE_SIMD_HH

#include <cstdint>

#ifndef CONTIG_SIMD
#define CONTIG_SIMD 1
#endif

#if CONTIG_SIMD && defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CONTIG_SIMD_AVX2 1
#include <immintrin.h>
#else
#define CONTIG_SIMD_AVX2 0
#endif

namespace contig
{
namespace simd
{

/** Sentinel stored in invalid / padding tag lanes; never a real tag. */
inline constexpr std::uint64_t kNoTag64 = ~0ull;

/** Lane count of one AVX2 vector of 64-bit tags. */
inline constexpr unsigned kLanes64 = 4;

/** Round a way count up to the SIMD lane stride. */
constexpr unsigned
padLanes(unsigned ways)
{
    return (ways + kLanes64 - 1) / kLanes64 * kLanes64;
}

/** True when the AVX2 kernel is compiled in AND the CPU supports it. */
bool avx2Available();

/**
 * Process-wide scalar override (--no-simd / CONTIG_SIMD=0). Affects
 * structures built afterwards; existing ones keep their probe mode.
 */
void setForceScalar(bool force);
bool forceScalar();

/** The probe mode new structures will use. */
inline bool
enabled()
{
    return avx2Available() && !forceScalar();
}

/** "avx2" or "scalar" — the RunInfo `xlat.simd` token. */
const char *modeName(bool use_simd);

/**
 * Lowest index i < n with lanes[i] == tag, or -1. `n` need not be a
 * lane multiple; the tail runs scalar.
 */
inline int
findTagScalar(const std::uint64_t *lanes, unsigned n, std::uint64_t tag)
{
    for (unsigned i = 0; i < n; ++i)
        if (lanes[i] == tag)
            return static_cast<int>(i);
    return -1;
}

#if CONTIG_SIMD_AVX2
__attribute__((target("avx2"))) inline int
findTagAvx2(const std::uint64_t *lanes, unsigned n, std::uint64_t tag)
{
    const __m256i needle = _mm256_set1_epi64x(
        static_cast<long long>(tag));
    unsigned i = 0;
    for (; i + kLanes64 <= n; i += kLanes64) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(lanes + i));
        const int mask = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, needle)));
        if (mask)
            return static_cast<int>(i) + __builtin_ctz(
                static_cast<unsigned>(mask));
    }
    for (; i < n; ++i)
        if (lanes[i] == tag)
            return static_cast<int>(i);
    return -1;
}
#endif

/**
 * The dispatching probe: lowest lane holding `tag`, or -1. Invalid
 * and padding lanes must hold kNoTag64 and `tag` must never equal it
 * — then a tag match alone implies a valid way and both kernels
 * agree on the answer.
 */
inline int
findTag(const std::uint64_t *lanes, unsigned n, std::uint64_t tag,
        bool use_simd)
{
#if CONTIG_SIMD_AVX2
    if (use_simd)
        return findTagAvx2(lanes, n, tag);
#else
    (void)use_simd;
#endif
    return findTagScalar(lanes, n, tag);
}

} // namespace simd
} // namespace contig

#endif // CONTIG_BASE_SIMD_HH
