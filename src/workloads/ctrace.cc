#include "workloads/ctrace.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "base/logging.hh"
#include "base/serialize.hh"

namespace contig
{

namespace
{

std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t n)
{
    const std::uint8_t *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

std::uint64_t
fnv1aU64(std::uint64_t h, std::uint64_t v)
{
    return fnv1a(h, &v, sizeof v);
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

bool
getVarint(const std::uint8_t *p, std::size_t n, std::size_t &off,
          std::uint64_t &v)
{
    v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (off >= n)
            return false;
        const std::uint8_t b = p[off++];
        v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
        if (!(b & 0x80))
            return true;
    }
    return false;
}

void
putU32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
putU64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

std::uint64_t
ctraceDigest(std::string_view workload, std::uint64_t seed,
             std::uint64_t accesses, std::uint64_t run_index)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    h = fnv1a(h, workload.data(), workload.size());
    h = fnv1aU64(h, seed);
    h = fnv1aU64(h, accesses);
    h = fnv1aU64(h, run_index);
    return h;
}

std::string
ctraceRunPath(std::string_view prefix, std::uint64_t run_index)
{
    return std::string(prefix) + ".run" + std::to_string(run_index) +
           ".ctrace";
}

std::string
ckptRunPath(std::string_view prefix, std::uint64_t run_index)
{
    return std::string(prefix) + ".run" + std::to_string(run_index) +
           ".ckpt";
}

void
ctraceEncodeChunk(const MemAccess *a, std::size_t n,
                  std::vector<std::uint8_t> &out)
{
    std::uint64_t prev_pc = 0;
    std::uint64_t prev_va = 0;
    for (std::size_t i = 0; i < n; ++i) {
        putVarint(out, zigzag(static_cast<std::int64_t>(a[i].pc -
                                                        prev_pc)));
        putVarint(out, zigzag(static_cast<std::int64_t>(a[i].va.value -
                                                        prev_va)));
        prev_pc = a[i].pc;
        prev_va = a[i].va.value;
    }
}

bool
ctraceDecodeChunk(const std::uint8_t *enc, std::size_t enc_bytes,
                  std::size_t count, MemAccess *out)
{
    std::size_t off = 0;
    std::uint64_t prev_pc = 0;
    std::uint64_t prev_va = 0;
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t dpc, dva;
        if (!getVarint(enc, enc_bytes, off, dpc) ||
            !getVarint(enc, enc_bytes, off, dva))
            return false;
        prev_pc += static_cast<std::uint64_t>(unzigzag(dpc));
        prev_va += static_cast<std::uint64_t>(unzigzag(dva));
        out[i].pc = prev_pc;
        out[i].va = Gva{prev_va};
    }
    return off == enc_bytes;
}

CtraceWriter::CtraceWriter(const std::string &path,
                           std::uint64_t config_digest,
                           std::uint64_t chunk_accesses,
                           std::uint64_t total_accesses)
    : path_(path), f_(std::fopen(path.c_str(), "wb")),
      configDigest_(config_digest), chunkAccesses_(chunk_accesses),
      totalAccesses_(total_accesses)
{
    if (!f_)
        fatal("cannot open trace output '%s': %s", path_.c_str(),
              std::strerror(errno));
    // Reserve the header slot; finish() seeks back and fills it in.
    const std::uint8_t zero[kCtraceHeaderBytes] = {};
    std::fwrite(zero, 1, sizeof zero, f_);
}

CtraceWriter::~CtraceWriter()
{
    finish();
}

void
CtraceWriter::appendChunk(const MemAccess *a, std::size_t n)
{
    contig_assert(!finished_, "appendChunk after finish");
    contig_assert(n <= 0xFFFFFFFFull, "chunk too large for .ctrace");
    enc_.clear();
    ctraceEncodeChunk(a, n, enc_);
    IndexEntry e;
    e.offset = kCtraceHeaderBytes + bytesEncoded_;
    e.encodedBytes = static_cast<std::uint32_t>(enc_.size());
    e.accessCount = static_cast<std::uint32_t>(n);
    e.crc = crc32(enc_.data(), enc_.size());
    if (std::fwrite(enc_.data(), 1, enc_.size(), f_) != enc_.size())
        fatal("short write to trace output '%s'", path_.c_str());
    index_.push_back(e);
    bytesEncoded_ += enc_.size();
    accessesWritten_ += n;
}

void
CtraceWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    contig_assert(accessesWritten_ == totalAccesses_,
                  "trace capture ended early: %llu of %llu accesses",
                  static_cast<unsigned long long>(accessesWritten_),
                  static_cast<unsigned long long>(totalAccesses_));

    // Chunk index + its CRC.
    std::vector<std::uint8_t> raw(index_.size() * kCtraceIndexEntryBytes);
    for (std::size_t i = 0; i < index_.size(); ++i) {
        std::uint8_t *p = raw.data() + i * kCtraceIndexEntryBytes;
        putU64(p + 0, index_[i].offset);
        putU32(p + 8, index_[i].encodedBytes);
        putU32(p + 12, index_[i].accessCount);
        putU32(p + 16, index_[i].crc);
        putU32(p + 20, 0);
    }
    const std::uint64_t index_offset = kCtraceHeaderBytes + bytesEncoded_;
    if (std::fwrite(raw.data(), 1, raw.size(), f_) != raw.size())
        fatal("short write to trace output '%s'", path_.c_str());
    std::uint8_t crcbuf[4];
    putU32(crcbuf, crc32(raw.data(), raw.size()));
    std::fwrite(crcbuf, 1, 4, f_);

    // Seal the header.
    std::uint8_t hdr[kCtraceHeaderBytes] = {};
    putU32(hdr + 0, kCtraceMagic);
    putU32(hdr + 4, kCtraceVersion);
    putU64(hdr + 8, configDigest_);
    putU64(hdr + 16, totalAccesses_);
    putU64(hdr + 24, chunkAccesses_);
    putU64(hdr + 32, index_.size());
    putU64(hdr + 40, index_offset);
    putU32(hdr + 48, 0); // flags
    // Bytes 52..59 reserved (zero); CRC covers everything before it.
    putU32(hdr + 60, crc32(hdr, 60));
    std::fseek(f_, 0, SEEK_SET);
    if (std::fwrite(hdr, 1, sizeof hdr, f_) != sizeof hdr)
        fatal("short write to trace output '%s'", path_.c_str());
    if (std::fclose(f_) != 0)
        fatal("cannot close trace output '%s': %s", path_.c_str(),
              std::strerror(errno));
    f_ = nullptr;
}

CtraceReader::CtraceReader(const std::string &path) : path_(path)
{
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0)
        fatal("cannot open trace '%s': %s", path_.c_str(),
              std::strerror(errno));
    struct stat st;
    if (::fstat(fd_, &st) != 0)
        fatal("cannot stat trace '%s': %s", path_.c_str(),
              std::strerror(errno));
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ < kCtraceHeaderBytes)
        fatal("truncated .ctrace '%s': %zu bytes, header needs %zu",
              path_.c_str(), size_, kCtraceHeaderBytes);
    void *m = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd_, 0);
    if (m == MAP_FAILED)
        fatal("cannot mmap trace '%s': %s", path_.c_str(),
              std::strerror(errno));
    map_ = static_cast<const std::uint8_t *>(m);

    if (getU32(map_ + 0) != kCtraceMagic)
        fatal("'%s' is not a .ctrace file: bad magic 0x%08x",
              path_.c_str(), getU32(map_ + 0));
    version_ = getU32(map_ + 4);
    if (version_ != kCtraceVersion)
        fatal(".ctrace version mismatch in '%s': file is v%u, this"
              " build reads v%u",
              path_.c_str(), version_, kCtraceVersion);
    if (getU32(map_ + 60) != crc32(map_, 60))
        fatal(".ctrace header CRC mismatch in '%s'", path_.c_str());
    configDigest_ = getU64(map_ + 8);
    totalAccesses_ = getU64(map_ + 16);
    chunkAccesses_ = getU64(map_ + 24);
    chunkCount_ = getU64(map_ + 32);
    const std::uint64_t index_offset = getU64(map_ + 40);

    const std::uint64_t index_bytes =
        chunkCount_ * kCtraceIndexEntryBytes;
    if (index_offset < kCtraceHeaderBytes ||
        index_offset + index_bytes + 4 > size_)
        fatal("truncated .ctrace '%s': index [%llu, +%llu+4) exceeds"
              " file size %zu",
              path_.c_str(), static_cast<unsigned long long>(index_offset),
              static_cast<unsigned long long>(index_bytes), size_);
    const std::uint8_t *raw = map_ + index_offset;
    if (getU32(raw + index_bytes) != crc32(raw, index_bytes))
        fatal(".ctrace index CRC mismatch in '%s'", path_.c_str());

    index_.resize(chunkCount_);
    std::uint64_t accesses = 0;
    for (std::uint64_t i = 0; i < chunkCount_; ++i) {
        const std::uint8_t *p = raw + i * kCtraceIndexEntryBytes;
        index_[i].offset = getU64(p + 0);
        index_[i].encodedBytes = getU32(p + 8);
        index_[i].accessCount = getU32(p + 12);
        index_[i].crc = getU32(p + 16);
        if (index_[i].offset < kCtraceHeaderBytes ||
            index_[i].offset + index_[i].encodedBytes > index_offset)
            fatal("corrupt .ctrace '%s': chunk %llu payload out of"
                  " bounds",
                  path_.c_str(), static_cast<unsigned long long>(i));
        accesses += index_[i].accessCount;
    }
    if (accesses != totalAccesses_)
        fatal("corrupt .ctrace '%s': index sums to %llu accesses,"
              " header says %llu",
              path_.c_str(), static_cast<unsigned long long>(accesses),
              static_cast<unsigned long long>(totalAccesses_));
}

CtraceReader::~CtraceReader()
{
    if (map_)
        ::munmap(const_cast<std::uint8_t *>(map_), size_);
    if (fd_ >= 0)
        ::close(fd_);
}

std::uint32_t
CtraceReader::chunkAccessCount(std::uint64_t k) const
{
    contig_assert(k < chunkCount_, "chunk index out of range");
    return index_[k].accessCount;
}

std::uint32_t
CtraceReader::chunkEncodedBytes(std::uint64_t k) const
{
    contig_assert(k < chunkCount_, "chunk index out of range");
    return index_[k].encodedBytes;
}

std::uint64_t
CtraceReader::accessesBeforeChunk(std::uint64_t k) const
{
    contig_assert(k <= chunkCount_, "chunk index out of range");
    std::uint64_t n = 0;
    for (std::uint64_t i = 0; i < k; ++i)
        n += index_[i].accessCount;
    return n;
}

std::size_t
CtraceReader::decodeChunk(std::uint64_t k,
                          std::vector<MemAccess> &out) const
{
    contig_assert(k < chunkCount_, "chunk index out of range");
    const IndexEntry &e = index_[k];
    const std::uint8_t *enc = map_ + e.offset;
    if (crc32(enc, e.encodedBytes) != e.crc)
        fatal(".ctrace chunk %llu CRC mismatch in '%s' — the file is"
              " corrupt",
              static_cast<unsigned long long>(k), path_.c_str());
    out.resize(e.accessCount);
    if (!ctraceDecodeChunk(enc, e.encodedBytes, e.accessCount,
                           out.data()))
        fatal(".ctrace chunk %llu decode error in '%s'",
              static_cast<unsigned long long>(k), path_.c_str());
    return e.accessCount;
}

void
CtraceReader::requireDigest(std::uint64_t expected) const
{
    if (configDigest_ != expected)
        fatal(".ctrace config digest mismatch in '%s': file has"
              " 0x%016llx, this run expects 0x%016llx — the trace was"
              " captured from a different workload/seed/access-count"
              " (or a different run index within the bench)",
              path_.c_str(),
              static_cast<unsigned long long>(configDigest_),
              static_cast<unsigned long long>(expected));
}

} // namespace contig
