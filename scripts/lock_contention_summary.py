#!/usr/bin/env python3
"""Summarize (or gate) the lock-contention profile of --lock-stats runs.

Usage: lock_contention_summary.py [--out SUMMARY.json] BENCH.json...
       lock_contention_summary.py --check BASELINE.json BENCH.json...

Reads one or more bench --json documents produced under --lock-stats
and reduces their lock.<site>.* metrics and "scaling" sections to a
*structural* contention summary:

  - which lock sites were observed at all (their names),
  - which of them recorded any acquisitions ("acquired": true/false),
  - which scaling sub-sections ("parallel", "xlat", "locks") each
    bench emitted.

Raw counts are deliberately NOT part of the summary: acquisition and
contention totals vary run to run with thread scheduling, so a count
gate would flake. The structure, though, is deterministic — the set
of instrumented lock sites a bench touches and the report sections it
emits only change when the code changes. That is exactly what the
committed baseline (bench/baselines/BENCH_lock_contention.json) pins.

With --check, compares the freshly generated summary against the
baseline: every baseline site must still be present with the same
"acquired" flag, and every baseline section must still be emitted.
New sites/sections in the current run are allowed (adding
instrumentation is not a regression); disappearing ones fail.
"""

import json
import sys
from pathlib import Path

LOCK_LEAVES = ("acquisitions", "contended", "retries", "spin_us")


def fail(msg):
    print(f"lock_contention_summary: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    path = Path(path)
    if not path.exists():
        fail(f"file not found: {path}")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as e:
        fail(f"{path}: not valid JSON: {e}")


def summarize_one(doc, path):
    """Reduce one bench document to its structural contention shape."""
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail(f"{path}: no 'metrics' object")
    sites = {}
    for name, value in metrics.items():
        if not name.startswith("lock.") or not isinstance(
                value, (int, float)):
            continue
        site, _, leaf = name[len("lock."):].rpartition(".")
        if leaf not in LOCK_LEAVES or not site:
            continue
        entry = sites.setdefault(site, {"acquired": False})
        if leaf == "acquisitions" and value > 0:
            entry["acquired"] = True
    if not sites:
        fail(f"{path}: no lock.<site>.* metrics — was the bench run "
             f"with --lock-stats?")
    scaling = doc.get("scaling", {})
    return {
        "bench": doc.get("bench", str(path)),
        "sites": {k: sites[k] for k in sorted(sites)},
        "scaling_sections": sorted(scaling)
        if isinstance(scaling, dict) else [],
    }


def check(baseline, current):
    """Every baseline site/section must survive in the current run."""
    cur_by_bench = {s["bench"]: s for s in current["benches"]}
    errors = []
    for base in baseline.get("benches", []):
        bench = base["bench"]
        cur = cur_by_bench.get(bench)
        if cur is None:
            errors.append(f"bench {bench!r} missing from current run")
            continue
        for site, info in base.get("sites", {}).items():
            cur_info = cur["sites"].get(site)
            if cur_info is None:
                errors.append(f"{bench}: lock site {site!r} vanished")
            elif info.get("acquired") and not cur_info.get("acquired"):
                errors.append(f"{bench}: lock site {site!r} no longer "
                              f"records acquisitions")
        for section in base.get("scaling_sections", []):
            if section not in cur.get("scaling_sections", []):
                errors.append(f"{bench}: scaling section {section!r} "
                              f"no longer emitted")
    if errors:
        for e in errors:
            print(f"lock_contention_summary: {e}", file=sys.stderr)
        fail(f"{len(errors)} structural contention regression(s)")
    print(f"lock_contention_summary: OK: "
          f"{len(baseline.get('benches', []))} bench(es) match the "
          f"baseline structure")


def main():
    argv = sys.argv[1:]
    if not argv:
        fail("usage: lock_contention_summary.py [--out SUMMARY.json] "
             "BENCH.json... | --check BASELINE.json BENCH.json...")

    check_baseline = None
    out_path = None
    if argv[0] == "--check":
        if len(argv) < 3:
            fail("--check needs a baseline and at least one bench json")
        check_baseline = load(argv[1])
        argv = argv[2:]
    elif argv[0] == "--out":
        if len(argv) < 3:
            fail("--out needs a path and at least one bench json")
        out_path = Path(argv[1])
        argv = argv[2:]

    summary = {
        "summary": "lock_contention",
        "benches": [summarize_one(load(p), p) for p in argv],
    }

    if check_baseline is not None:
        check(check_baseline, summary)
        return

    text = json.dumps(summary, indent=2, sort_keys=True) + "\n"
    if out_path:
        out_path.write_text(text)
        print(f"lock_contention_summary: wrote {out_path}")
    else:
        sys.stdout.write(text)


if __name__ == "__main__":
    main()
