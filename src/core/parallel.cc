#include "core/parallel.hh"

#include <string>
#include <thread>

#include "base/logging.hh"
#include "base/rng.hh"
#include "mm/fault_engine.hh"
#include "mm/kernel.hh"
#include "obs/metrics.hh"
#include "obs/observatory.hh"
#include "obs/trace.hh"

namespace contig
{

std::uint64_t
ParallelDriver::workerSeed(std::uint64_t base, unsigned worker)
{
    // splitmix64 over (base + index): statistically independent
    // streams from one recorded base seed.
    std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (worker + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

ParallelDriver::ParallelDriver(Kernel &kernel,
                               const ParallelDriverConfig &cfg)
    : kernel_(kernel), cfg_(cfg)
{
    contig_assert(cfg_.threads >= 1, "ParallelDriver needs >= 1 worker");
    contig_assert(cfg_.threads == 1 || kernel_.threaded(),
                  "concurrent workers against a non-threaded kernel");
    contig_assert(cfg_.chunkBytes > 0 &&
                      cfg_.bytesPerWorker >= cfg_.chunkBytes,
                  "bad ParallelDriver geometry");

    obs::RunInfo &ri = obs::RunInfo::global();
    ri.note("parallel.threads", static_cast<std::uint64_t>(cfg_.threads));
    ri.note("parallel.bytes_per_worker", cfg_.bytesPerWorker);
    ri.note("parallel.chunk_bytes", cfg_.chunkBytes);
    ri.note("parallel.seed", cfg_.seed);

    const std::uint64_t chunks =
        (cfg_.bytesPerWorker + cfg_.chunkBytes - 1) / cfg_.chunkBytes;
    const unsigned nodes = kernel_.physMem().numNodes();
    plans_.reserve(cfg_.threads);
    for (unsigned i = 0; i < cfg_.threads; ++i) {
        WorkerPlan plan;
        plan.seed = workerSeed(cfg_.seed, i);
        Process &proc = kernel_.createProcess(
            "pworker" + std::to_string(i), i % nodes);
        plan.proc = &proc;
        plan.vma = &kernel_.mmapAnon(proc, cfg_.bytesPerWorker);
        plan.chunkOrder.resize(chunks);
        for (std::uint64_t c = 0; c < chunks; ++c)
            plan.chunkOrder[c] = c;
        if (cfg_.shuffle) {
            Rng rng(plan.seed);
            rng.shuffle(plan.chunkOrder);
        }
        ri.note("parallel.worker" + std::to_string(i) + ".seed",
                plan.seed);
        plans_.push_back(std::move(plan));
    }
}

void
ParallelDriver::runWorker(const WorkerPlan &plan)
{
    const Gva base = plan.vma->start();
    for (std::uint64_t c : plan.chunkOrder) {
        const std::uint64_t off = c * cfg_.chunkBytes;
        const std::uint64_t len =
            std::min(cfg_.chunkBytes, cfg_.bytesPerWorker - off);
        plan.proc->touchRange(base + off, len);
    }
}

void
ParallelDriver::run()
{
    contig_assert(!ran_, "ParallelDriver::run() may be called once");
    ran_ = true;

    obs::TraceSink &ts = obs::TraceSink::global();
    const char *span_name = ts.intern("parallel.worker");
    const std::uint64_t run0 = ts.nowNs();
    // Each worker writes only its own slot; the join publishes them
    // to the main thread before the summaries below are recorded.
    std::vector<std::uint64_t> busy_ns(plans_.size(), 0);

    if (!kernel_.threaded() || cfg_.threads == 1) {
        for (std::size_t i = 0; i < plans_.size(); ++i) {
            const std::uint64_t t0 = ts.nowNs();
            runWorker(plans_[i]);
            busy_ns[i] = ts.nowNs() - t0;
#if CONTIG_TRACING
            if (ts.wants(obs::kCatPhase))
                ts.recordSpan(span_name, t0, busy_ns[i], i);
#endif
        }
    } else {
        FaultEngine &engine = kernel_.faultEngine();
        std::vector<std::thread> workers;
        workers.reserve(plans_.size());
        for (unsigned i = 0; i < plans_.size(); ++i) {
            workers.emplace_back([this, &engine, &busy_ns, span_name,
                                  i] {
                FaultEngine::WorkerScope scope(engine,
                                               static_cast<int>(i));
                obs::TraceSink &wts = obs::TraceSink::global();
                const std::uint64_t t0 = wts.nowNs();
                runWorker(plans_[i]);
                busy_ns[i] = wts.nowNs() - t0;
#if CONTIG_TRACING
                // Recorded on the worker thread so the span lands on
                // its own Chrome-trace lane.
                if (wts.wants(obs::kCatPhase))
                    wts.recordSpan(span_name, t0, busy_ns[i], i);
#endif
            });
        }
        for (std::thread &t : workers)
            t.join();
        // Catch up the policy ticks / samples the workers deferred, so
        // post-run state matches what a sequential run would have
        // ticked.
        engine.drainPendingTicks();
    }

    // Busy/wall accounting feeds the derived scaling report:
    // achieved speedup = sum(busy) / wall, skew = spread of busy_us.
    // Summaries are recorded from the main thread after the join —
    // Summary::add is not synchronized.
    const std::uint64_t wall = ts.nowNs() - run0;
    obs::MetricRegistry &mr = obs::MetricRegistry::global();
    for (std::size_t i = 0; i < busy_ns.size(); ++i)
        mr.summary("parallel.worker" + std::to_string(i) + ".busy_us")
            .add(static_cast<double>(busy_ns[i]) / 1000.0);
    mr.summary("parallel.run.wall_us")
        .add(static_cast<double>(wall) / 1000.0);
}

void
ParallelDriver::exitAll()
{
    for (WorkerPlan &plan : plans_) {
        if (plan.proc)
            kernel_.exitProcess(*plan.proc);
        plan.proc = nullptr;
        plan.vma = nullptr;
    }
}

} // namespace contig
