# Empty dependencies file for fig09_free_blocks.
# This may be replaced when dependencies are built.
