file(REMOVE_RECURSE
  "CMakeFiles/test_concurrency.dir/mm/concurrency_test.cc.o"
  "CMakeFiles/test_concurrency.dir/mm/concurrency_test.cc.o.d"
  "test_concurrency"
  "test_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
