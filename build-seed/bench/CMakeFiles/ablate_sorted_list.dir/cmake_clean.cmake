file(REMOVE_RECURSE
  "CMakeFiles/ablate_sorted_list.dir/ablate_sorted_list.cc.o"
  "CMakeFiles/ablate_sorted_list.dir/ablate_sorted_list.cc.o.d"
  "ablate_sorted_list"
  "ablate_sorted_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_sorted_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
