file(REMOVE_RECURSE
  "CMakeFiles/fig11_sw_overhead.dir/fig11_sw_overhead.cc.o"
  "CMakeFiles/fig11_sw_overhead.dir/fig11_sw_overhead.cc.o.d"
  "fig11_sw_overhead"
  "fig11_sw_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sw_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
