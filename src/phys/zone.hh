/**
 * @file
 * A Zone couples one buddy allocator with one contiguity map, matching
 * Linux's per-NUMA-node `struct zone` (the paper keeps one
 * contiguity_map instance per zone, §III-B).
 *
 * Threading: each zone owns one spinlock guarding its buddy allocator
 * and contiguity map (Linux's `zone->lock`), so allocations in
 * different zones never contend. In front of the buddy sit optional
 * per-CPU order-0 frame caches (Linux pcplists): order-0 alloc/free on
 * a CPU works on that CPU's private list and only takes the zone lock
 * to refill or spill a batch. Frames parked in a pcp cache keep
 * freeFlag=false, so CA paging's occupancy probe correctly treats them
 * as unavailable.
 */

#ifndef CONTIG_PHYS_ZONE_HH
#define CONTIG_PHYS_ZONE_HH

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "base/sync.hh"
#include "phys/buddy.hh"
#include "phys/contiguity_map.hh"

namespace contig
{

class Serializer;

/** Tunables for one zone / the whole physical memory. */
struct ZoneConfig
{
    unsigned maxOrder = kMaxOrder;
    /** Keep the top-order free list address sorted (CA optimization). */
    bool sortedTopList = true;
    /**
     * Seed the free lists in scrambled order (0 = ascending),
     * modelling the churn a real machine's lists accumulate from
     * boot-time allocations and per-CPU batching. Ignored when
     * sortedTopList is set (the list is sorted either way).
     */
    std::uint64_t scrambleSeed = 0;
    /**
     * Number of per-CPU order-0 frame caches (0 disables them, which
     * keeps single-threaded runs byte-identical to the pre-threading
     * allocator). The kernel sets this to its worker-thread count.
     */
    unsigned pcpCpus = 0;
    /** Frames moved between a pcp cache and the buddy per refill/spill. */
    unsigned pcpBatch = 16;
    /** Pcp list length that triggers a spill back to the buddy. */
    unsigned pcpHigh = 64;
    /**
     * Bind the zone lock to a "zone<node>.buddy" LockSite so
     * --lock-stats can attribute contention to the buddy path
     * (refills, spills, direct high-order allocations). Kernel::
     * normalized() sets this from KernelConfig.lockStats.
     */
    bool lockStats = false;
    /**
     * Maintain the free-page gauge + LRU lists + watermarks (the
     * memory-pressure machinery). Kernel::normalized() sets this from
     * KernelConfig.reclaimEnabled; off, none of the pressure state is
     * touched and alloc/free are byte-identical to the pre-reclaim
     * allocator.
     */
    bool reclaim = false;
    /** Multiplier over the derived min/low/high watermarks. */
    double watermarkScale = 1.0;
    /**
     * Stripe the zone's physical metadata — the contiguity map and
     * the buddy's top-order free list — into this many address-
     * contiguous shards, each with its own lock, so CA placement
     * scans stop serializing on the zone lock under threads. 0 or 1
     * keeps the legacy unsharded structures (byte-identical results).
     * Kernel::normalized() sets this from KernelConfig.numaShards.
     */
    unsigned numaShards = 0;
};

/**
 * Per-zone allocation watermarks (pages), derived from zone size the
 * way Linux derives them from managed pages: below `low` kswapd is
 * woken, below `min` allocations direct-reclaim, at `high` kswapd goes
 * back to sleep.
 */
struct Watermarks
{
    std::uint64_t min = 0;
    std::uint64_t low = 0;
    std::uint64_t high = 0;
};

/**
 * One NUMA node's physical memory: a PFN range, its buddy allocator
 * and its contiguity map, kept in sync through the buddy's top-list
 * hooks.
 */
class Zone
{
  public:
    Zone(FrameArray &frames, NodeId node, Pfn base_pfn,
         std::uint64_t n_frames, const ZoneConfig &cfg = {});

    Zone(const Zone &) = delete;
    Zone &operator=(const Zone &) = delete;

    NodeId node() const { return node_; }
    Pfn basePfn() const { return buddy_.basePfn(); }
    std::uint64_t numFrames() const { return buddy_.numFrames(); }

    BuddyAllocator &buddy() { return buddy_; }
    const BuddyAllocator &buddy() const { return buddy_; }
    ContiguityMap &contigMap() { return contigMap_; }
    const ContiguityMap &contigMap() const { return contigMap_; }

    /**
     * The zone lock (Linux `zone->lock`). Allocation goes through the
     * locked entry points below; callers that scan the contiguity map
     * directly (the CA placement policies, the observatory) take this
     * around the scan.
     */
    SpinLock &lock() const { return lock_; }

    bool
    contains(Pfn pfn) const
    {
        return pfn >= basePfn() && pfn < basePfn() + numFrames();
    }

    /**
     * Locked allocation front end. Order-0 requests are served from
     * the calling CPU's pcp cache when caches are enabled; everything
     * else takes the zone lock around the buddy call.
     */
    std::optional<Pfn> alloc(unsigned order);

    /** Locked BuddyAllocator::allocSpecific. */
    bool allocSpecific(Pfn pfn, unsigned order);

    /**
     * Locked free. Order-0 frees land on the calling CPU's pcp cache
     * (spilling a batch to the buddy past the high-water mark).
     */
    void free(Pfn pfn, unsigned order);

    /**
     * Return every pcp-cached frame to the buddy (process teardown,
     * stats capture). Leaves the caches enabled.
     */
    void drainPcp();

    /** Frames currently parked across this zone's pcp caches. */
    std::uint64_t pcpCachedPages() const;

    bool pcpEnabled() const { return !pcp_.empty(); }

    /**
     * The zone's free-block size distribution, weighted by pages
     * (the Fig. 9 histogram for one zone): the contiguity map's
     * unaligned clusters at top-order scale plus the sub-top-order
     * buddy free lists. O(free blocks) — sampled, not kept hot.
     */
    Log2Histogram freeBlockHistogram() const;

    // --- memory pressure (ZoneConfig::reclaim kernels only) -------------

    /** Watermarks derived from zone size (all zero when reclaim off). */
    const Watermarks &watermarks() const { return wm_; }

    /**
     * Buddy free pages, readable without the zone lock (kept as an
     * atomic shadow of BuddyAllocator::freePages, updated only on the
     * locked paths). Frames parked in pcp caches count as free, like
     * Linux's NR_FREE_PAGES. Only maintained when ZoneConfig::reclaim.
     */
    std::uint64_t
    freePagesFast() const
    {
        return freePagesGauge_.load(std::memory_order_relaxed);
    }

    /** One popped LRU candidate (order captured under the LRU lock). */
    struct LruEntry
    {
        Pfn head = kInvalidPfn;
        std::uint8_t order = 0;
    };

    /**
     * LRU list manipulation. All entries are heads of claimed blocks
     * (order 0 or the THP order); each call takes the zone's LRU lock
     * internally, which nests inside every other lock (leaf). Callers
     * are the kernel's claim/free hooks and the ReclaimEngine — never
     * the raw allocator, so reclaim-off runs never touch this state.
     */
    void lruInsert(Frame::LruList list, Pfn head, unsigned order);
    /**
     * Insert at the *tail* (next-to-scan end). Returns false without
     * touching anything if the frame is already on a list — the
     * scanner uses this to requeue candidate handles that may have
     * been freed and re-claimed (and thus re-listed) since the pop.
     */
    bool lruInsertTail(Frame::LruList list, Pfn head, unsigned order);
    /**
     * Lenient head (MRU-end) insert: like lruInsertTail but at the far
     * end from the scanner. Used to requeue lock-busy candidates and
     * unprocessed batch leftovers.
     */
    bool lruRequeue(Frame::LruList list, Pfn head, unsigned order);
    /** Remove head from whatever list it is on (no-op if on none). */
    void lruRemove(Pfn head);
    /**
     * Pop up to n block heads from the *tail* (oldest end) of `list`
     * into out; returns the number popped. The popped entries are off
     * every list (lruList = None) until re-inserted.
     */
    std::size_t lruPopTail(Frame::LruList list, std::size_t n,
                           LruEntry *out);
    /** Pages (not blocks) currently on the given list. */
    std::uint64_t lruPages(Frame::LruList list) const;

    /**
     * Serialize buddy free lists plus per-CPU cache contents for
     * checkpoint verification (save-only; see BuddyAllocator).
     */
    void saveState(Serializer &s) const;

  private:
    /** One CPU's private cache; padded so neighbours don't false-share. */
    struct alignas(64) PcpList
    {
        std::vector<Pfn> pfns;
    };

    PcpList &myPcp() { return pcp_[ThisCpu::id() % pcp_.size()]; }

    /** One LRU list: head = MRU end, tail = LRU end (eviction end). */
    struct Lru
    {
        Pfn head = kInvalidPfn;
        Pfn tail = kInvalidPfn;
        std::uint64_t pages = 0;
    };

    Lru &lruOf(Frame::LruList list);
    const Lru &lruOf(Frame::LruList list) const;
    /** Unlink head from its current list; caller holds lruLock_. */
    void lruUnlinkLocked(Pfn head);

    NodeId node_;
    FrameArray &frames_;
    ContiguityMap contigMap_;
    BuddyAllocator buddy_;
    mutable SpinLock lock_;
    unsigned pcpBatch_;
    unsigned pcpHigh_;
    std::vector<PcpList> pcp_;

    /** Memory-pressure state (ZoneConfig::reclaim kernels only). */
    bool reclaim_ = false;
    Watermarks wm_;
    std::atomic<std::uint64_t> freePagesGauge_{0};
    mutable SpinLock lruLock_;
    Lru inactive_;
    Lru active_;
};

} // namespace contig

#endif // CONTIG_PHYS_ZONE_HH
