/**
 * @file
 * Synthetic stand-ins for the paper's workloads (Table III), scaled
 * so that footprint / machine-size and footprint / TLB-reach match
 * the paper's regime (DESIGN.md, "Scaling rules"; the paper's GiB
 * become MiB here at scale 1.0):
 *
 *   svm      (29 GiB -> 232 MiB): CSR streaming + skewed model-vector
 *            lookups + irregular accesses over scattered small VMAs
 *            (the residual-miss behaviour of §VI-B);
 *   pagerank (78 GiB -> 624 MiB): sequential edge scans + power-law
 *            vertex lookups;
 *   hashjoin (102 GiB -> 816 MiB): random-build hash table (random
 *            first-touch order) + uniform probes + sequential scan;
 *   xsbench  (122 GiB -> 976 MiB): uniform cross-section lookups over
 *            large grids;
 *   bt       (167 GiB -> 1336 MiB): five large arrays touched
 *            interleaved (the irregular fault pattern that stresses
 *            CA paging at the NUMA boundary) and swept with strides.
 *
 * Each workload is (a) an allocation/population script driving page
 * faults — the contiguity experiments — and (b) a steady-state
 * (pc, va) access stream — the TLB/SpOT experiments. VMA sizes carry
 * realistic slack over the touched footprint so pre-allocation bloat
 * (Table VI) reproduces.
 */

#ifndef CONTIG_WORKLOADS_WORKLOADS_HH
#define CONTIG_WORKLOADS_WORKLOADS_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "mm/process.hh"
#include "tlb/translation_sim.hh"

namespace contig
{

class Kernel;

/** Workload knobs. */
struct WorkloadConfig
{
    /** Footprint multiplier over the scaled defaults. */
    double scale = 1.0;
    /** Seed for the workload's private RNG (touch order, streams). */
    std::uint64_t seed = 12345;
};

/**
 * Base class: a set of memory regions, a fault-driving population
 * pattern, and an access-stream generator.
 */
class Workload
{
  public:
    explicit Workload(const WorkloadConfig &cfg)
        : cfg_(cfg), rng_(cfg.seed)
    {}
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** mmap all regions in `proc` and run the population pattern. */
    void setup(Process &proc);

    /** munmap every region (keeps the process). */
    void teardown();

    /** One steady-state memory access. */
    virtual MemAccess nextAccess(Rng &rng) = 0;

    /**
     * Fill a chunk of steady-state accesses. Semantically exactly
     * `for (i < n) out[i] = nextAccess(rng)` — the base implementation
     * is that loop — with the workload virtual dispatch hoisted to
     * once per chunk. Overrides must produce the identical sequence
     * (tests/workloads compare against nextAccess element-wise).
     */
    virtual void fillAccesses(Rng &rng, MemAccess *out, std::size_t n);

    /** Touched (used) footprint in bytes. */
    std::uint64_t footprintBytes() const;
    /** Total reserved (VMA) bytes, >= footprint (slack = bloat source). */
    std::uint64_t reservedBytes() const;

    const std::vector<Vma *> &vmas() const { return vmas_; }
    Process *process() const { return proc_; }

    /** Bytes of dataset the workload read()s at startup (0 = none). */
    std::uint64_t inputFileBytes() const { return inputFileBytes_; }

    /**
     * Reuse an existing page-cache file as the input dataset (for
     * consecutive-run experiments: the cache persists across runs).
     * Must be called before setup(); otherwise setup creates a file.
     */
    void setInputFile(std::uint32_t id) { inputFileId_ = id; }

    /** The input file id actually used (valid after setup). */
    std::optional<std::uint32_t> inputFileId() const
    { return inputFileId_; }

  protected:
    /** One region: reserved VMA size and the prefix actually used. */
    struct Region
    {
        std::uint64_t vmaBytes;
        std::uint64_t touchBytes;
    };

    /** Drive the faults (default: sequential touch of every region). */
    virtual void touchPattern(Process &proc);

    /**
     * Populate `anon_region` from the input file: alternating read()
     * batches (filling the page cache) and heap writes — the
     * interleaving of readahead and anonymous faults the paper calls
     * out as a fragmentation source.
     */
    void populateFromFile(Process &proc, std::size_t anon_region);

    Gva base(std::size_t region) const { return vmas_[region]->start(); }

    /** Address `off` bytes into region i (off wraps at touchBytes). */
    Gva
    at(std::size_t region, std::uint64_t off) const
    {
        return base(region) + (off % regions_[region].touchBytes);
    }

    std::uint64_t scaled(std::uint64_t bytes) const
    {
        auto v = static_cast<std::uint64_t>(bytes * cfg_.scale);
        return std::max<std::uint64_t>(v & ~kPageMask, kPageSize);
    }

    WorkloadConfig cfg_;
    Rng rng_;
    std::vector<Region> regions_;
    std::vector<Vma *> vmas_;
    Process *proc_ = nullptr;
    std::uint64_t inputFileBytes_ = 0;
    std::optional<std::uint32_t> inputFileId_;
    std::uint64_t fileReadCursorPages_ = 0;
};

/** Liblinear-SVM-like: streaming CSR + skewed weight lookups. */
class SvmWorkload : public Workload
{
  public:
    explicit SvmWorkload(const WorkloadConfig &cfg = {});
    std::string name() const override { return "svm"; }
    MemAccess nextAccess(Rng &rng) override;

  protected:
    void touchPattern(Process &proc) override;

  private:
    std::unique_ptr<ZipfSampler> weightZipf_;
    std::uint64_t valuesCursor_ = 0;
    std::uint64_t colidxCursor_ = 0;
    std::uint64_t weightHot_ = 0;   //!< current hot weight entry
    std::size_t scratchVma_ = 0;    //!< current scratch VMA
    std::uint64_t scratchHot_ = 0;  //!< current hot scratch offset
    std::size_t scratchFirst_ = 0;  //!< index of the first scratch VMA
};

/** Ligra-PageRank-like: edge scans + power-law vertex lookups. */
class PageRankWorkload : public Workload
{
  public:
    explicit PageRankWorkload(const WorkloadConfig &cfg = {});
    std::string name() const override { return "pagerank"; }
    MemAccess nextAccess(Rng &rng) override;

  protected:
    void touchPattern(Process &proc) override;

  private:
    std::unique_ptr<ZipfSampler> vertexZipf_;
    std::uint64_t edgeCursor_ = 0;
    std::uint64_t srcHot_ = 0;
    std::uint64_t dstHot_ = 0;
};

/** Hashjoin microbenchmark: random build order, uniform probes. */
class HashjoinWorkload : public Workload
{
  public:
    explicit HashjoinWorkload(const WorkloadConfig &cfg = {});
    std::string name() const override { return "hashjoin"; }
    MemAccess nextAccess(Rng &rng) override;

  protected:
    void touchPattern(Process &proc) override;

  private:
    std::uint64_t scanCursor_ = 0;
    std::uint64_t probeHot_ = 0;
};

/** XSBench-like: uniform lookups over large cross-section grids. */
class XsbenchWorkload : public Workload
{
  public:
    explicit XsbenchWorkload(const WorkloadConfig &cfg = {});
    std::string name() const override { return "xsbench"; }
    MemAccess nextAccess(Rng &rng) override;

  private:
    std::uint64_t concCursor_ = 0;
    std::uint64_t nuclideHot_ = 0;
    std::uint64_t energyHot_ = 0;
};

/** NPB-BT-like: five large arrays, interleaved faults, stride sweeps. */
class BtWorkload : public Workload
{
  public:
    explicit BtWorkload(const WorkloadConfig &cfg = {});
    std::string name() const override { return "bt"; }
    MemAccess nextAccess(Rng &rng) override;

  protected:
    void touchPattern(Process &proc) override;

  private:
    std::uint64_t sweepCursor_ = 0;
    std::size_t sweepArray_ = 0;
    unsigned burst_ = 0;
};

/** TLB-friendly control (the Spec2017-like check of §VI-A). */
class TlbFriendlyWorkload : public Workload
{
  public:
    explicit TlbFriendlyWorkload(const WorkloadConfig &cfg = {});
    std::string name() const override { return "tlbfriendly"; }
    MemAccess nextAccess(Rng &rng) override;

  private:
    std::uint64_t cursor_ = 0;
};

/** Factory over the five paper workloads. */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadConfig &cfg = {});

/** The five evaluation workloads in Table III order. */
const std::vector<std::string> &paperWorkloads();

/**
 * The "hog" fragmentation micro-benchmark (§VI-A): pins `fraction`
 * of the machine's memory in scattered 2-4 MiB chunks, leaving free
 * memory fragmented at coarse (>2 MiB) granularity. Returns the hog
 * process (exit it to release the memory).
 */
Process &hogMemory(Kernel &kernel, double fraction, Rng &rng);

/**
 * System churn between runs (the machine-aging source behind
 * Fig. 1b): pins `islands` readahead-window-sized bursts of
 * long-lived page-cache pages (logs, dentry-like slabs), with
 * allocation entropy — modelled as free-list shuffles — between
 * bursts. On a stock machine each burst lands in a random free block
 * and stays there as an unmovable island; CA paging's per-file
 * Offset packs the same pages into one contiguous run, which is
 * exactly the fragmentation-restraint effect of §III-C.
 */
void systemChurn(Kernel &kernel, std::uint64_t islands,
                 std::uint64_t seed = 0xA6E);

} // namespace contig

#endif // CONTIG_WORKLOADS_WORKLOADS_HH
