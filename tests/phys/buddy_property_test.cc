/**
 * Property-based tests: drive the buddy allocator + contiguity map
 * with long random operation sequences and check the structural
 * invariants after every step, across several seeds and configurations
 * (parameterized sweep).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "base/align.hh"
#include "base/rng.hh"
#include "phys/zone.hh"

using namespace contig;

namespace
{

struct Params
{
    std::uint64_t seed;
    bool sortedTop;
    unsigned maxOrder;
};

class BuddyPropertyTest : public ::testing::TestWithParam<Params>
{
};

} // namespace

TEST_P(BuddyPropertyTest, RandomOpsPreserveInvariants)
{
    const auto p = GetParam();
    const std::uint64_t n_frames = 16 * pagesInOrder(p.maxOrder);
    FrameArray frames(n_frames);
    ZoneConfig zcfg;
    zcfg.maxOrder = p.maxOrder;
    zcfg.sortedTopList = p.sortedTop;
    Zone zone(frames, 0, 0, n_frames, zcfg);
    auto &buddy = zone.buddy();
    auto &map = zone.contigMap();

    Rng rng(p.seed);
    std::vector<std::pair<Pfn, unsigned>> live;

    for (int step = 0; step < 4000; ++step) {
        const bool do_alloc = live.empty() || rng.chance(0.55);
        if (do_alloc) {
            unsigned order = rng.below(p.maxOrder + 1);
            if (rng.chance(0.3)) {
                // allocSpecific at a random aligned target.
                Pfn target = alignDown(rng.below(n_frames),
                                       pagesInOrder(order));
                if (buddy.allocSpecific(target, order))
                    live.emplace_back(target, order);
            } else {
                auto pfn = buddy.alloc(order);
                if (pfn)
                    live.emplace_back(*pfn, order);
            }
        } else {
            std::size_t idx = rng.below(live.size());
            buddy.free(live[idx].first, live[idx].second);
            live[idx] = live.back();
            live.pop_back();
        }

        if (step % 200 == 0) {
            ASSERT_TRUE(buddy.checkInvariants()) << "step " << step;
            ASSERT_TRUE(map.checkInvariants()) << "step " << step;
        }
    }

    // Free everything; the allocator must return to the fully-free,
    // fully-coalesced initial state.
    for (auto &[pfn, order] : live)
        buddy.free(pfn, order);
    EXPECT_EQ(buddy.freePages(), n_frames);
    EXPECT_EQ(buddy.freeBlocks(p.maxOrder), 16u);
    EXPECT_EQ(map.clusterCount(), 1u);
    EXPECT_EQ(map.freePagesTracked(), n_frames);
    EXPECT_TRUE(buddy.checkInvariants());
    EXPECT_TRUE(map.checkInvariants());
}

TEST_P(BuddyPropertyTest, MapMatchesBuddyTopList)
{
    const auto p = GetParam();
    const std::uint64_t n_frames = 8 * pagesInOrder(p.maxOrder);
    FrameArray frames(n_frames);
    ZoneConfig zcfg;
    zcfg.maxOrder = p.maxOrder;
    zcfg.sortedTopList = p.sortedTop;
    Zone zone(frames, 0, 0, n_frames, zcfg);

    Rng rng(p.seed ^ 0xabcdef);
    std::vector<std::pair<Pfn, unsigned>> live;
    for (int step = 0; step < 1500; ++step) {
        if (live.empty() || rng.chance(0.6)) {
            unsigned order = rng.below(p.maxOrder + 1);
            auto pfn = zone.buddy().alloc(order);
            if (pfn)
                live.emplace_back(*pfn, order);
        } else {
            std::size_t idx = rng.below(live.size());
            zone.buddy().free(live[idx].first, live[idx].second);
            live[idx] = live.back();
            live.pop_back();
        }
        // The pages tracked by the map must equal blockSize times the
        // number of blocks in the buddy's top list.
        std::uint64_t top_blocks = zone.buddy().freeBlocks(p.maxOrder);
        ASSERT_EQ(zone.contigMap().freePagesTracked(),
                  top_blocks * pagesInOrder(p.maxOrder))
            << "step " << step;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuddyPropertyTest,
    ::testing::Values(
        Params{1, true, kMaxOrder},
        Params{2, true, kMaxOrder},
        Params{3, false, kMaxOrder},
        Params{4, true, kMaxOrder - 2},
        Params{5, false, kMaxOrder - 2},
        Params{6, true, kMaxOrder + 1},
        Params{7, false, kMaxOrder + 1},
        Params{8, true, 4}),
    [](const ::testing::TestParamInfo<Params> &info) {
        return "seed" + std::to_string(info.param.seed) +
               (info.param.sortedTop ? "_sorted" : "_lifo") + "_mo" +
               std::to_string(info.param.maxOrder);
    });
