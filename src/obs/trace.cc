#include "obs/trace.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <utility>

#include "base/json.hh"

namespace contig
{
namespace obs
{

constinit TraceSink gTraceSink;

namespace
{

std::uint64_t
monotonicNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

std::uint32_t
parseTraceCategories(std::string_view spec)
{
    if (spec.empty() || spec == "all")
        return kCatAll;
    if (spec.size() > 2 && spec[0] == '0' &&
        (spec[1] == 'x' || spec[1] == 'X')) {
        return static_cast<std::uint32_t>(
            std::strtoul(std::string(spec).c_str(), nullptr, 16));
    }
    static constexpr std::pair<std::string_view, std::uint32_t> kNames[] =
        {{"fault", kCatFault},     {"alloc", kCatAlloc},
         {"promote", kCatPromote}, {"migrate", kCatMigrate},
         {"tlb", kCatTlb},         {"spot", kCatSpot},
         {"walk", kCatWalk},       {"daemon", kCatDaemon},
         {"phase", kCatPhase},     {"replay", kCatReplay},
         {"sync", kCatSync}};
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string_view::npos)
            comma = spec.size();
        std::string_view tok = spec.substr(pos, comma - pos);
        for (const auto &[name, bit] : kNames)
            if (tok == name)
                mask |= bit;
        pos = comma + 1;
    }
    return mask;
}

void
TraceSink::setCapacity(std::size_t events)
{
    capacity_ = events ? events : 1;
    ring_.clear();
    ring_.shrink_to_fit();
    head_ = 0;
    recorded_ = 0;
    dropped_ = 0;
}

std::uint64_t
TraceSink::nowNs() const
{
    const std::uint64_t now = monotonicNs();
    if (epochNs_ < 0)
        epochNs_ = static_cast<std::int64_t>(now);
    return now - static_cast<std::uint64_t>(epochNs_);
}

TraceEvent &
TraceSink::nextSlot()
{
    ++recorded_;
    if (ring_.size() < capacity_) {
        ring_.emplace_back();
        return ring_.back();
    }
    // Ring full: overwrite the oldest event.
    TraceEvent &slot = ring_[head_];
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
    return slot;
}

void
TraceSink::record(TraceEventKind kind, std::uint64_t a0, std::uint64_t a1,
                  std::uint64_t a2)
{
    const std::uint32_t lane = ThisCpu::lane();
    std::lock_guard<SpinLock> g(lock_);
    TraceEvent &ev = nextSlot();
    ev.tsNs = nowNs();
    ev.durNs = 0;
    ev.args[0] = a0;
    ev.args[1] = a1;
    ev.args[2] = a2;
    ev.spanName = nullptr;
    ev.tid = lane;
    ev.kind = kind;
}

void
TraceSink::recordSpan(const char *interned_name, std::uint64_t ts_ns,
                      std::uint64_t dur_ns, std::uint64_t a0,
                      TraceEventKind kind)
{
    const std::uint32_t lane = ThisCpu::lane();
    std::lock_guard<SpinLock> g(lock_);
    TraceEvent &ev = nextSlot();
    ev.tsNs = ts_ns;
    ev.durNs = dur_ns;
    ev.args[0] = a0;
    ev.args[1] = 0;
    ev.args[2] = 0;
    ev.spanName = interned_name;
    ev.tid = lane;
    ev.kind = kind;
}

const char *
TraceSink::intern(std::string_view name)
{
    std::lock_guard<SpinLock> g(lock_);
    for (const auto &s : interned_)
        if (*s == name)
            return s->c_str();
    interned_.push_back(std::make_unique<std::string>(name));
    return interned_.back()->c_str();
}

std::size_t
TraceSink::size() const
{
    std::lock_guard<SpinLock> g(lock_);
    return ring_.size();
}

void
TraceSink::clear()
{
    std::lock_guard<SpinLock> g(lock_);
    ring_.clear();
    head_ = 0;
    recorded_ = 0;
    dropped_ = 0;
}

std::vector<TraceEvent>
TraceSink::events() const
{
    std::lock_guard<SpinLock> g(lock_);
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    // head_ is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

namespace
{

const char *
categoryName(std::uint32_t category)
{
    switch (category) {
      case kCatFault: return "fault";
      case kCatAlloc: return "alloc";
      case kCatPromote: return "promote";
      case kCatMigrate: return "migrate";
      case kCatTlb: return "tlb";
      case kCatSpot: return "spot";
      case kCatWalk: return "walk";
      case kCatDaemon: return "daemon";
      case kCatPhase: return "phase";
      case kCatReplay: return "replay";
      case kCatSync: return "sync";
      default: return "other";
    }
}

void
writeEventJson(JsonWriter &w, const TraceEvent &ev, bool chrome)
{
    const TraceEventDesc &desc =
        kTraceEventDescs[static_cast<std::size_t>(ev.kind)];
    const bool span = traceIsSpanKind(ev.kind);

    w.beginObject();
    w.field("name", span && ev.spanName ? ev.spanName : desc.name);
    w.field("cat", categoryName(desc.category));
    if (chrome) {
        // Chrome trace_event: ts/dur in microseconds, instant events
        // need a scope, complete events carry dur. tid is the
        // recording thread's lane, so the viewer shows one real lane
        // per worker (plus lane 0 for the main thread).
        w.field("ph", span ? "X" : "i");
        w.field("ts", static_cast<double>(ev.tsNs) / 1000.0);
        if (span)
            w.field("dur", static_cast<double>(ev.durNs) / 1000.0);
        else
            w.field("s", "t");
        w.field("pid", std::uint64_t{1});
        w.field("tid", std::uint64_t{ev.tid});
    } else {
        w.field("ts_ns", ev.tsNs);
        if (span)
            w.field("dur_ns", ev.durNs);
        w.field("tid", std::uint64_t{ev.tid});
    }
    w.key("args");
    w.beginObject();
    for (unsigned i = 0; i < 3; ++i)
        if (desc.args[i])
            w.field(desc.args[i], ev.args[i]);
    w.endObject();
    w.endObject();
}

} // namespace

bool
TraceSink::writeChromeTrace(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;

    const std::vector<TraceEvent> evs = events();

    JsonWriter w;
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();
    // Name each thread lane up front ("M" metadata events) so the
    // viewer labels lanes "main" / "worker<i>" instead of bare tids.
    std::set<std::uint32_t> lanes;
    for (const TraceEvent &ev : evs)
        lanes.insert(ev.tid);
    for (std::uint32_t lane : lanes) {
        w.beginObject();
        w.field("name", "thread_name");
        w.field("ph", "M");
        w.field("pid", std::uint64_t{1});
        w.field("tid", std::uint64_t{lane});
        w.key("args");
        w.beginObject();
        w.field("name", lane == 0 ? std::string("main")
                                  : "worker" + std::to_string(lane - 1));
        w.endObject();
        w.endObject();
        w.beginObject();
        w.field("name", "thread_sort_index");
        w.field("ph", "M");
        w.field("pid", std::uint64_t{1});
        w.field("tid", std::uint64_t{lane});
        w.key("args");
        w.beginObject();
        w.field("sort_index", std::uint64_t{lane});
        w.endObject();
        w.endObject();
    }
    for (const TraceEvent &ev : evs)
        writeEventJson(w, ev, /*chrome=*/true);
    w.endArray();
    w.field("displayTimeUnit", "ms");
    w.key("otherData");
    w.beginObject();
    w.field("recorded", recorded_);
    w.field("dropped", dropped_);
    w.endObject();
    w.endObject();

    const std::string &s = w.str();
    std::fwrite(s.data(), 1, s.size(), f);
    std::fclose(f);
    return true;
}

bool
TraceSink::writeJsonl(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    for (const TraceEvent &ev : events()) {
        JsonWriter w;
        writeEventJson(w, ev, /*chrome=*/false);
        const std::string &s = w.str();
        std::fwrite(s.data(), 1, s.size(), f);
        std::fputc('\n', f);
    }
    std::fclose(f);
    return true;
}

} // namespace obs
} // namespace contig
