#include "phys/buddy.hh"

#include "base/align.hh"
#include "base/rng.hh"
#include "obs/metrics.hh"
#include "base/serialize.hh"

namespace contig
{

BuddyAllocator::BuddyAllocator(FrameArray &frames, Pfn base_pfn,
                               std::uint64_t n_frames, unsigned max_order,
                               bool sorted_top,
                               std::uint64_t scramble_seed,
                               unsigned top_stripes)
    : frames_(frames), basePfn_(base_pfn), nFrames_(n_frames),
      maxOrder_(max_order), sortedTop_(sorted_top),
      lists_(max_order + 1),
      topStripes_(top_stripes > 1 ? top_stripes : 1)
{
    const std::uint64_t top_pages = pagesInOrder(maxOrder_);
    contig_assert(isAligned(basePfn_, top_pages),
                  "zone base must be top-order aligned");
    contig_assert(n_frames % top_pages == 0,
                  "zone size must be a multiple of the top-order block");
    contig_assert(base_pfn + n_frames <= frames_.size(),
                  "zone exceeds mem_map");
    if (topStripes_ > 1) {
        const std::uint64_t per =
            (n_frames + topStripes_ - 1) / topStripes_;
        topStripeSpan_ = alignUp(per, top_pages);
        topLists_.resize(topStripes_);
    }

    // Seed the allocator: mark everything free as top-order blocks.
    for (std::uint64_t off = n_frames; off > 0; off -= top_pages)
        markFree(base_pfn + off - top_pages, maxOrder_);

    // Build the seeding order: ascending by default (head insertion
    // back-to-front yields an ascending list — per stripe too, since
    // routing preserves the relative order), or shuffled to model an
    // aged machine's list churn.
    std::vector<Pfn> order;
    order.reserve(n_frames / top_pages);
    for (std::uint64_t off = n_frames; off > 0; off -= top_pages)
        order.push_back(base_pfn + off - top_pages);
    if (scramble_seed != 0 && !sorted_top) {
        Rng rng(scramble_seed ^ base_pfn);
        rng.shuffle(order);
    }
    for (Pfn pfn : order) {
        FreeList &list = listFor(pfn, maxOrder_);
        insertHead(list, pfn, maxOrder_);
        ++list.count;
        if (onTopInsert_)
            onTopInsert_(pfn);
    }
    freePages_ = n_frames;
}

unsigned
BuddyAllocator::topStripeOf(Pfn pfn) const
{
    if (topStripes_ == 1)
        return 0;
    const std::uint64_t idx = (pfn - basePfn_) / topStripeSpan_;
    const std::uint64_t last = topStripes_ - 1;
    return static_cast<unsigned>(idx < last ? idx : last);
}

BuddyAllocator::FreeList &
BuddyAllocator::listFor(Pfn pfn, unsigned order)
{
    if (order == maxOrder_ && topStripes_ > 1)
        return topLists_[topStripeOf(pfn)];
    return lists_[order];
}

const BuddyAllocator::FreeList &
BuddyAllocator::listFor(Pfn pfn, unsigned order) const
{
    if (order == maxOrder_ && topStripes_ > 1)
        return topLists_[topStripeOf(pfn)];
    return lists_[order];
}

bool
BuddyAllocator::sameList(Pfn a, Pfn b, unsigned order) const
{
    return order != maxOrder_ || topStripes_ == 1 ||
           topStripeOf(a) == topStripeOf(b);
}

std::uint64_t
BuddyAllocator::listCount(unsigned order) const
{
    if (order == maxOrder_ && topStripes_ > 1) {
        std::uint64_t n = 0;
        for (const FreeList &list : topLists_)
            n += list.count;
        return n;
    }
    return lists_[order].count;
}

bool
BuddyAllocator::listNonEmpty(unsigned order) const
{
    if (order == maxOrder_ && topStripes_ > 1) {
        for (const FreeList &list : topLists_)
            if (list.head != kInvalidPfn)
                return true;
        return false;
    }
    return lists_[order].head != kInvalidPfn;
}

void
BuddyAllocator::setTopListHooks(TopListHook on_insert, TopListHook on_remove)
{
    onTopInsert_ = std::move(on_insert);
    onTopRemove_ = std::move(on_remove);
    // Report the already-seeded top blocks to the new subscriber.
    if (onTopInsert_)
        forEachFreeBlock(maxOrder_, onTopInsert_);
}

bool
BuddyAllocator::contains(Pfn pfn, unsigned order) const
{
    return pfn >= basePfn_ &&
           pfn + pagesInOrder(order) <= basePfn_ + nFrames_;
}

Pfn
BuddyAllocator::buddyOf(Pfn pfn, unsigned order) const
{
    // Buddy pairs are computed relative to the zone base so zones need
    // not start at PFN 0.
    return basePfn_ + ((pfn - basePfn_) ^ pagesInOrder(order));
}

void
BuddyAllocator::markAllocated(Pfn pfn, unsigned order)
{
    const std::uint64_t n = pagesInOrder(order);
    for (std::uint64_t i = 0; i < n; ++i) {
        Frame &f = frames_[pfn + i];
        // Relaxed: freeFlag is only a hint to lockless occupancy
        // probes; allocSpecific re-checks under the zone lock.
        f.freeFlag.store(false, std::memory_order_relaxed);
        f.freeHead = false;
    }
}

void
BuddyAllocator::markFree(Pfn pfn, unsigned order)
{
    const std::uint64_t n = pagesInOrder(order);
    for (std::uint64_t i = 0; i < n; ++i) {
        Frame &f = frames_[pfn + i];
        f.freeFlag.store(true, std::memory_order_relaxed);
        f.freeHead = false;
    }
    frames_[pfn].order = static_cast<std::uint8_t>(order);
}

void
BuddyAllocator::insertHead(FreeList &list, Pfn pfn, unsigned order)
{
    Frame &f = frames_[pfn];
    f.freeHead = true;
    f.order = static_cast<std::uint8_t>(order);
    f.freePrev = kInvalidPfn;
    f.freeNext = list.head;
    if (list.head != kInvalidPfn)
        frames_[list.head].freePrev = pfn;
    list.head = pfn;
}

void
BuddyAllocator::insertSorted(FreeList &list, Pfn pfn, unsigned order)
{
    Frame &f = frames_[pfn];
    f.freeHead = true;
    f.order = static_cast<std::uint8_t>(order);

    // Fast path via neighbour computation (the paper's trick): if the
    // physically adjacent same-order block is free and listed, splice
    // next to it without scanning.
    // A striped top list must not splice next to a neighbour that is
    // listed in the adjacent stripe — that would cross-link the lists.
    const std::uint64_t n = pagesInOrder(order);
    if (pfn >= basePfn_ + n) {
        Pfn left = pfn - n;
        const Frame &lf = frames_[left];
        if (lf.freeHead && lf.order == order &&
            sameList(left, pfn, order)) {
            f.freePrev = left;
            f.freeNext = lf.freeNext;
            if (lf.freeNext != kInvalidPfn)
                frames_[lf.freeNext].freePrev = pfn;
            frames_[left].freeNext = pfn;
            return;
        }
    }
    if (contains(pfn + n, order)) {
        Pfn right = pfn + n;
        const Frame &rf = frames_[right];
        if (rf.freeHead && rf.order == order &&
            sameList(right, pfn, order)) {
            f.freeNext = right;
            f.freePrev = rf.freePrev;
            if (rf.freePrev != kInvalidPfn)
                frames_[rf.freePrev].freeNext = pfn;
            else
                list.head = pfn;
            frames_[right].freePrev = pfn;
            return;
        }
    }

    // Slow path: linear scan for the insertion point.
    Pfn prev = kInvalidPfn;
    Pfn cur = list.head;
    while (cur != kInvalidPfn && cur < pfn) {
        prev = cur;
        cur = frames_[cur].freeNext;
    }
    f.freePrev = prev;
    f.freeNext = cur;
    if (prev != kInvalidPfn)
        frames_[prev].freeNext = pfn;
    else
        list.head = pfn;
    if (cur != kInvalidPfn)
        frames_[cur].freePrev = pfn;
}

void
BuddyAllocator::pushBlock(Pfn pfn, unsigned order)
{
    FreeList &list = listFor(pfn, order);
    if (order == maxOrder_ && sortedTop_)
        insertSorted(list, pfn, order);
    else
        insertHead(list, pfn, order);
    ++list.count;
    if (order == maxOrder_ && onTopInsert_)
        onTopInsert_(pfn);
}

void
BuddyAllocator::removeBlock(Pfn pfn, unsigned order)
{
    FreeList &list = listFor(pfn, order);
    Frame &f = frames_[pfn];
    contig_assert(f.freeHead && f.order == order,
                  "removeBlock on a non-listed block");
    if (f.freePrev != kInvalidPfn)
        frames_[f.freePrev].freeNext = f.freeNext;
    else
        list.head = f.freeNext;
    if (f.freeNext != kInvalidPfn)
        frames_[f.freeNext].freePrev = f.freePrev;
    f.freeHead = false;
    f.freeNext = kInvalidPfn;
    f.freePrev = kInvalidPfn;
    --list.count;
    if (order == maxOrder_ && onTopRemove_)
        onTopRemove_(pfn);
}

Pfn
BuddyAllocator::popBlock(unsigned order)
{
    if (order == maxOrder_ && topStripes_ > 1) {
        // First non-empty stripe in address order — for a sorted top
        // list this is the globally lowest head, same block the
        // unsharded list would pop.
        for (FreeList &list : topLists_) {
            if (list.head == kInvalidPfn)
                continue;
            Pfn pfn = list.head;
            removeBlock(pfn, order);
            return pfn;
        }
        contig_assert(false, "popBlock on empty list");
    }
    FreeList &list = lists_[order];
    contig_assert(list.head != kInvalidPfn, "popBlock on empty list");
    Pfn pfn = list.head;
    removeBlock(pfn, order);
    return pfn;
}

std::optional<Pfn>
BuddyAllocator::alloc(unsigned order)
{
    contig_assert(order <= maxOrder_, "order %u beyond maxOrder", order);
    ++stats_.allocCalls;

    unsigned o = order;
    while (o <= maxOrder_ && !listNonEmpty(o))
        ++o;
    if (o > maxOrder_)
        return std::nullopt;

    Pfn pfn = popBlock(o);
    // Split down to the requested order, returning the upper halves.
    while (o > order) {
        --o;
        ++stats_.splits;
        Pfn upper = pfn + pagesInOrder(o);
        frames_[upper].order = static_cast<std::uint8_t>(o);
        pushBlock(upper, o);
    }
    markAllocated(pfn, order);
    freePages_ -= pagesInOrder(order);
    return pfn;
}

bool
BuddyAllocator::allocSpecific(Pfn pfn, unsigned order)
{
    ++stats_.allocSpecificCalls;
    contig_assert(order <= maxOrder_, "order %u beyond maxOrder", order);
    contig_assert(isAligned(pfn - basePfn_, pagesInOrder(order)),
                  "allocSpecific target must be order-aligned");
    if (!contains(pfn, order)) {
        ++stats_.allocSpecificFailures;
        return false;
    }

    auto enclosing = enclosingFreeBlock(pfn);
    if (!enclosing || enclosing->second < order ||
        enclosing->first + pagesInOrder(enclosing->second) <
            pfn + pagesInOrder(order)) {
        ++stats_.allocSpecificFailures;
        return false;
    }

    auto [head, head_order] = *enclosing;
    removeBlock(head, head_order);

    // Split towards the target, keeping only the halves that do not
    // contain it (standard buddy split, as the default routine would).
    unsigned o = head_order;
    while (o > order) {
        --o;
        ++stats_.splits;
        Pfn lower = head;
        Pfn upper = head + pagesInOrder(o);
        if (pfn >= upper) {
            frames_[lower].order = static_cast<std::uint8_t>(o);
            pushBlock(lower, o);
            head = upper;
        } else {
            frames_[upper].order = static_cast<std::uint8_t>(o);
            pushBlock(upper, o);
        }
    }
    contig_assert(head == pfn, "allocSpecific split drifted off target");
    markAllocated(pfn, order);
    freePages_ -= pagesInOrder(order);
    return true;
}

void
BuddyAllocator::free(Pfn pfn, unsigned order)
{
    ++stats_.freeCalls;
    contig_assert(order <= maxOrder_, "order %u beyond maxOrder", order);
    contig_assert(contains(pfn, order), "free outside zone");
    contig_assert(!frames_[pfn].freeFlag, "double free of pfn %llu",
                  static_cast<unsigned long long>(pfn));
    contig_assert(isAligned(pfn - basePfn_, pagesInOrder(order)),
                  "free of unaligned block");

    // Coalesce with free buddies as far as possible.
    unsigned o = order;
    Pfn cur = pfn;
    while (o < maxOrder_) {
        Pfn buddy = buddyOf(cur, o);
        if (!contains(buddy, o))
            break;
        const Frame &bf = frames_[buddy];
        if (!(bf.freeHead && bf.order == o))
            break;
        removeBlock(buddy, o);
        ++stats_.merges;
        cur = std::min(cur, buddy);
        ++o;
    }
    markFree(cur, o);
    pushBlock(cur, o);
    freePages_ += pagesInOrder(order);
}

bool
BuddyAllocator::isFreePage(Pfn pfn) const
{
    if (!contains(pfn, 0))
        return false;
    // Lockless occupancy probe (paper §III-C): a stale answer is
    // benign because allocSpecific re-validates under the zone lock.
    return frames_[pfn].freeFlag.load(std::memory_order_relaxed);
}

std::optional<std::pair<Pfn, unsigned>>
BuddyAllocator::enclosingFreeBlock(Pfn pfn) const
{
    if (!contains(pfn, 0) || !frames_[pfn].freeFlag)
        return std::nullopt;
    // Free blocks are order-aligned, so the head of the enclosing block
    // must be an alignment ancestor of pfn.
    for (unsigned o = 0; o <= maxOrder_; ++o) {
        Pfn cand = basePfn_ + alignDown(pfn - basePfn_, pagesInOrder(o));
        const Frame &f = frames_[cand];
        if (f.freeHead && f.order >= o &&
            pfn < cand + pagesInOrder(f.order)) {
            return std::make_pair(cand, static_cast<unsigned>(f.order));
        }
    }
    return std::nullopt;
}

void
BuddyAllocator::forEachFreeBlock(unsigned order,
                                 const std::function<void(Pfn)> &fn) const
{
    if (order == maxOrder_ && topStripes_ > 1) {
        // Stripes ascending: for a sorted top list this visits the
        // blocks in global ascending order, like the unsharded list.
        for (const FreeList &list : topLists_) {
            for (Pfn cur = list.head; cur != kInvalidPfn;
                 cur = frames_[cur].freeNext) {
                fn(cur);
            }
        }
        return;
    }
    for (Pfn cur = lists_[order].head; cur != kInvalidPfn;
         cur = frames_[cur].freeNext) {
        fn(cur);
    }
}

std::uint64_t
BuddyAllocator::freeBlocks(unsigned order) const
{
    contig_assert(order <= maxOrder_, "order out of range");
    return listCount(order);
}

void
BuddyAllocator::shuffleFreeLists(std::uint64_t seed)
{
    Rng rng(seed);
    // Relink one list in the shuffled order.
    auto shuffle_one = [&](FreeList &list) {
        std::vector<Pfn> blocks;
        for (Pfn cur = list.head; cur != kInvalidPfn;
             cur = frames_[cur].freeNext) {
            blocks.push_back(cur);
        }
        if (blocks.size() < 2)
            return;
        rng.shuffle(blocks);
        list.head = kInvalidPfn;
        for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
            Frame &f = frames_[*it];
            f.freePrev = kInvalidPfn;
            f.freeNext = list.head;
            if (list.head != kInvalidPfn)
                frames_[list.head].freePrev = *it;
            list.head = *it;
        }
    };
    for (unsigned o = 0; o <= maxOrder_; ++o) {
        if (o == maxOrder_ && sortedTop_)
            continue;
        if (o == maxOrder_ && topStripes_ > 1) {
            // Blocks stay in their stripe; only intra-stripe order churns.
            for (FreeList &list : topLists_)
                shuffle_one(list);
            continue;
        }
        shuffle_one(lists_[o]);
    }
}

bool
BuddyAllocator::checkInvariants() const
{
    std::uint64_t free_pages = 0;
    // Check one linked list: integrity, alignment, free flags,
    // coalescing, its stored count and (sorted top) ascending order.
    // For a striped top list, every block must also route back to the
    // stripe whose list holds it.
    auto check_list = [&](const FreeList &list, unsigned o,
                          int stripe) -> bool {
        std::uint64_t count = 0;
        Pfn prev = kInvalidPfn;
        Pfn last = 0;
        bool first = true;
        for (Pfn cur = list.head; cur != kInvalidPfn;
             cur = frames_[cur].freeNext) {
            const Frame &f = frames_[cur];
            if (!f.freeHead || f.order != o || f.freePrev != prev)
                return false;
            if (!isAligned(cur - basePfn_, pagesInOrder(o)))
                return false;
            // Every page of a listed block must carry the free flag.
            for (std::uint64_t i = 0; i < pagesInOrder(o); ++i)
                if (!frames_[cur + i].freeFlag)
                    return false;
            // A listed block's buddy of the same order must not also be
            // free-listed (they should have coalesced)...
            if (o < maxOrder_) {
                Pfn buddy = basePfn_ + ((cur - basePfn_) ^ pagesInOrder(o));
                const Frame &bf = frames_[buddy];
                if (contains(buddy, o) && bf.freeHead && bf.order == o)
                    return false;
            }
            if (stripe >= 0 &&
                topStripeOf(cur) != static_cast<unsigned>(stripe)) {
                return false;
            }
            // Sorted-top mode: ascending order (per stripe suffices —
            // stripes partition the span in ascending address order).
            if (o == maxOrder_ && sortedTop_) {
                if (!first && cur <= last)
                    return false;
                last = cur;
            }
            free_pages += pagesInOrder(o);
            prev = cur;
            ++count;
            first = false;
        }
        return count == list.count;
    };
    for (unsigned o = 0; o <= maxOrder_; ++o) {
        if (o == maxOrder_ && topStripes_ > 1) {
            // The legacy slot must stay unused in striped mode.
            if (lists_[o].head != kInvalidPfn || lists_[o].count != 0)
                return false;
            for (unsigned si = 0; si < topStripes_; ++si)
                if (!check_list(topLists_[si], o, static_cast<int>(si)))
                    return false;
            continue;
        }
        if (!check_list(lists_[o], o, -1))
            return false;
    }
    return free_pages == freePages_;
}

std::vector<std::uint64_t>
BuddyAllocator::freeBlockCounts() const
{
    std::vector<std::uint64_t> counts(maxOrder_ + 1);
    for (unsigned o = 0; o <= maxOrder_; ++o)
        counts[o] = listCount(o);
    return counts;
}

double
BuddyAllocator::unusableFreeIndex(unsigned order) const
{
    if (freePages_ == 0)
        return 0.0;
    std::uint64_t usable = 0;
    for (unsigned o = order; o <= maxOrder_; ++o)
        usable += listCount(o) * pagesInOrder(o);
    return static_cast<double>(freePages_ - usable) /
           static_cast<double>(freePages_);
}

void
BuddyAllocator::collectMetrics(obs::MetricSink &sink) const
{
    sink.counter("alloc_calls", stats_.allocCalls);
    sink.counter("alloc_specific_calls", stats_.allocSpecificCalls);
    sink.counter("alloc_specific_failures", stats_.allocSpecificFailures);
    sink.counter("split_count", stats_.splits);
    sink.counter("merge_count", stats_.merges);
    sink.counter("free_calls", stats_.freeCalls);
    sink.gauge("free_pages", static_cast<double>(freePages_));
    sink.gauge("free_top_blocks",
               static_cast<double>(listCount(maxOrder_)));
}


void
BuddyAllocator::saveState(Serializer &s) const
{
    const std::size_t sec = s.beginSection(sectionTag('B', 'U', 'D', 'Y'));
    s.u64(basePfn_);
    s.u64(nFrames_);
    s.u32(maxOrder_);
    s.u64(freePages_);
    s.u64(stats_.allocCalls);
    s.u64(stats_.allocSpecificCalls);
    s.u64(stats_.allocSpecificFailures);
    s.u64(stats_.splits);
    s.u64(stats_.merges);
    s.u64(stats_.freeCalls);
    // listCount + forEachFreeBlock aggregate a striped top list in
    // ascending stripe order, so sorted-top checkpoints stay
    // byte-identical whether or not the list is striped.
    for (unsigned o = 0; o <= maxOrder_; ++o) {
        s.u64(listCount(o));
        forEachFreeBlock(o, [&s](Pfn pfn) { s.u64(pfn); });
    }
    s.endSection(sec);
}

} // namespace contig
