/**
 * @file
 * Chunked access-stream generator. The replay engine does not pull
 * accesses one at a time — each pull was a virtual call into the
 * workload plus RNG state threading. AccessStream drains the
 * workload's steady-state generator into fixed-size contiguous
 * MemAccess buffers, so the consumer sees plain arrays and the
 * workload's virtual dispatch happens once per chunk
 * (Workload::fillAccesses).
 *
 * Determinism: the stream owns its own Rng seeded at construction and
 * produces exactly the sequence `wl.nextAccess(rng)` would — chunk
 * boundaries never change what is generated, only how it is batched.
 * When `total` is not a multiple of the chunk size the final chunk is
 * exactly the remainder (`total % chunk`), and a zero-length stream
 * returns 0 from the first next() without touching the workload
 * (tests/workloads/ctrace_test.cc pins both).
 *
 * captureTo() tees every generated chunk into a CtraceWriter — the
 * capture path of the trace frontend. The tee is downstream of
 * generation, so a captured run's simulated results are identical to
 * the same run without capture.
 */

#ifndef CONTIG_WORKLOADS_ACCESS_STREAM_HH
#define CONTIG_WORKLOADS_ACCESS_STREAM_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "workloads/access_source.hh"

namespace contig
{

class Workload;
class CtraceWriter;

class AccessStream : public AccessSource
{
  public:
    /** Default chunk: 4096 accesses (64 KiB of MemAccess, L2-sized). */
    static constexpr std::uint64_t kDefaultChunk = 4096;

    /**
     * Stream `total` accesses from `wl`, `chunk_accesses` at a time
     * (0 means kDefaultChunk). The final chunk may be short.
     */
    AccessStream(Workload &wl, std::uint64_t total, std::uint64_t seed,
                 std::uint64_t chunk_accesses = kDefaultChunk);

    /**
     * Generate the next chunk into the internal buffer. Returns its
     * size (0 when the stream is exhausted) and points `chunk` at the
     * buffer, which stays valid until the next call.
     */
    std::size_t next(const MemAccess *&chunk) override;

    /** Accesses generated so far. */
    std::uint64_t produced() const override { return produced_; }
    std::uint64_t total() const override { return total_; }
    std::uint64_t chunkAccesses() const override { return buf_.size(); }

    /**
     * Tee every subsequently generated chunk into `writer` (nullptr
     * detaches). The stream finishes the writer when it drains, so a
     * fully consumed stream leaves a sealed .ctrace behind; partial
     * consumption leaves finishing to the writer's owner.
     */
    void captureTo(CtraceWriter *writer) { writer_ = writer; }

  private:
    Workload &wl_;
    Rng rng_;
    std::uint64_t total_;
    std::uint64_t produced_ = 0;
    std::vector<MemAccess> buf_;
    CtraceWriter *writer_ = nullptr;
};

} // namespace contig

#endif // CONTIG_WORKLOADS_ACCESS_STREAM_HH
