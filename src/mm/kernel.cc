#include "mm/kernel.hh"

#include <algorithm>

#include "base/align.hh"
#include "base/logging.hh"
#include "obs/observatory.hh"
#include "obs/trace.hh"
#include "base/serialize.hh"

namespace contig
{

namespace
{
unsigned defaultNumaShards_ = 0;
} // namespace

void
KernelConfig::setDefaultNumaShards(unsigned n)
{
    defaultNumaShards_ = n;
}

unsigned
KernelConfig::defaultNumaShards()
{
    return defaultNumaShards_;
}

KernelConfig
Kernel::normalized(KernelConfig cfg)
{
    // threads > 1 arms one pcp frame cache per worker unless the
    // caller pinned the geometry explicitly. threads == 1 leaves
    // pcpCpus alone (0 by default: order-0 allocations go straight to
    // the buddy, exactly the pre-threading behaviour).
    if (cfg.threads > 1 && cfg.phys.zone.pcpCpus == 0) {
        // Reclaim kernels add one slot for the kswapd thread so its
        // frees never alias a fault worker's cache.
        cfg.phys.zone.pcpCpus =
            cfg.threads + (cfg.reclaimEnabled ? 1 : 0);
    }
    // Fan the pressure knobs out to the zones (watermarks, LRU lists,
    // the free-page gauge all live there).
    cfg.phys.zone.reclaim = cfg.reclaimEnabled;
    cfg.phys.zone.watermarkScale = cfg.watermarkScale;
    // Metadata sharding: the zones stripe their contiguity map and
    // top-order free list the same number of ways as the kernel pool.
    // --numa-shards sets the process-wide default before kernels are
    // built; a caller that pinned the knob explicitly wins.
    if (cfg.numaShards == 0)
        cfg.numaShards = KernelConfig::defaultNumaShards();
    cfg.phys.zone.numaShards = cfg.numaShards;
    // --lock-stats flips the process-wide switch before kernels are
    // built; fold it into the per-instance knob so every kernel in
    // the run (host, guest, scratch instances in benches) is armed
    // without touching each construction site.
    if (LockStatsRegistry::enabled())
        cfg.lockStats = true;
    cfg.phys.zone.lockStats = cfg.lockStats;
    return cfg;
}

Kernel::Kernel(const KernelConfig &cfg,
               std::unique_ptr<AllocationPolicy> policy)
    : cfg_(normalized(cfg)), physMem_(cfg_.phys), policy_(std::move(policy)),
      pool_(cfg_.numaShards > 1 ? cfg_.numaShards : 1)
{
    contig_assert(policy_ != nullptr, "kernel needs an allocation policy");
    if (cfg_.lockStats) {
        // Kernel instances share sites by role (like-named metrics
        // merge the same way); per-zone sites are bound by Zone.
        LockStatsRegistry &ls = LockStatsRegistry::global();
        mmSite_ = &ls.site("mm");
        vmaFaultSite_ = &ls.site("vma.fault");
        pageCacheLock_.bindStats(&ls.site("page_cache"));
        // A single-shard pool keeps the historical "pool" site name;
        // sharded pools get one site per shard.
        if (pool_.size() == 1) {
            pool_[0].lock.bindStats(&ls.site("pool"));
        } else {
            for (std::size_t i = 0; i < pool_.size(); ++i) {
                pool_[i].lock.bindStats(
                    &ls.site("pool" + std::to_string(i)));
            }
        }
        counterLock_.bindStats(&ls.site("counters"));
        LockStatsRegistry::setOffsetRingSite(&ls.site("vma.offset_ring"));
    }
    engine_ = std::make_unique<FaultEngine>(*this);
    if (cfg_.reclaimEnabled) {
        reclaim_ = std::make_unique<ReclaimEngine>(*this);
        reclaim_->startKswapd();
    }
    metricSource_ = obs::MetricSource(
        obs::MetricRegistry::global(), cfg_.metricsPrefix,
        [this](obs::MetricSink &sink) { collectMetrics(sink); });

    // Reproducibility record: the full knob set of every kernel
    // instantiated during a run ends up in the bench JSON config
    // block (config.run), keyed by the metrics prefix so host and
    // guest kernels stay distinguishable.
    obs::RunInfo &ri = obs::RunInfo::global();
    const std::string p = cfg_.metricsPrefix + ".";
    ri.count(p + "instances");
    ri.note(p + "thp_enabled", cfg_.thpEnabled);
    ri.note(p + "fault_base_cycles", cfg_.faultBaseCycles);
    ri.note(p + "zero_cycles_per_page", cfg_.zeroCyclesPerPage);
    ri.note(p + "copy_cycles_per_page", cfg_.copyCyclesPerPage);
    ri.note(p + "cycles_per_us", cfg_.cyclesPerUs);
    ri.note(p + "tick_period_faults", cfg_.tickPeriodFaults);
    ri.note(p + "page_table_levels",
            static_cast<std::uint64_t>(cfg_.pageTableLevels));
    ri.note(p + "fault_batching", cfg_.faultBatching);
    ri.note(p + "fault_stage_timers", cfg_.faultStageTimers);
    ri.note(p + "obs_sample_period_faults", cfg_.obsSamplePeriodFaults);
    ri.note(p + "phys.bytes_per_node", cfg_.phys.bytesPerNode);
    ri.note(p + "phys.num_nodes",
            static_cast<std::uint64_t>(cfg_.phys.numNodes));
    ri.note(p + "phys.max_order",
            static_cast<std::uint64_t>(cfg_.phys.zone.maxOrder));
    ri.note(p + "phys.sorted_top_list", cfg_.phys.zone.sortedTopList);
    ri.note(p + "phys.scramble_seed", cfg_.phys.zone.scrambleSeed);
    ri.note(p + "threads", static_cast<std::uint64_t>(cfg_.threads));
    ri.note(p + "phys.pcp_cpus",
            static_cast<std::uint64_t>(cfg_.phys.zone.pcpCpus));
    ri.note(p + "phys.pcp_batch",
            static_cast<std::uint64_t>(cfg_.phys.zone.pcpBatch));
    ri.note(p + "phys.pcp_high",
            static_cast<std::uint64_t>(cfg_.phys.zone.pcpHigh));
    ri.note(p + "lock_stats", cfg_.lockStats);
    // Sharding recorded only when armed so unsharded runs keep their
    // pre-sharding config block (and the committed goldens).
    if (cfg_.numaShards > 1) {
        ri.note(p + "numa_shards",
                static_cast<std::uint64_t>(cfg_.numaShards));
    }
    // Pressure knobs are recorded only when the path is armed so
    // reclaim-off runs keep their pre-reclaim config block (and stay
    // byte-identical to the committed goldens).
    if (cfg_.reclaimEnabled) {
        ri.note(p + "reclaim_enabled", cfg_.reclaimEnabled);
        ri.note(p + "kswapd_enabled", cfg_.kswapdEnabled);
        ri.note(p + "contig_aware_reclaim", cfg_.contigAwareReclaim);
        ri.note(p + "watermark_scale", cfg_.watermarkScale);
        ri.note(p + "swap.out_cycles_per_page", cfg_.swapCost.outCyclesPerPage);
        ri.note(p + "swap.in_cycles_per_page", cfg_.swapCost.inCyclesPerPage);
        ri.note(p + "swap.cache_hit_cycles", cfg_.swapCost.cacheHitCycles);
        ri.note(p + "swap.cache_pages", cfg_.swapCost.cachePages);
    }
}

void
Kernel::incCounter(std::string_view name, std::uint64_t by)
{
    MaybeGuard<SpinLock> g(counterLock_, threaded());
    counters_.inc(name, by);
}

void
Kernel::collectMetrics(obs::MetricSink &sink) const
{
    const FaultStats &fs = engine_->stats();
    sink.counter("faults", fs.faults);
    sink.counter("huge_faults", fs.hugeFaults);
    sink.counter("base_faults", fs.baseFaults);
    sink.counter("cow_faults", fs.cowFaults);
    sink.counter("file_faults", fs.fileFaults);
    sink.counter("fault_cycles", fs.totalCycles);
    if (fs.latencyUs.count()) {
        // quantile() sorts lazily; work on a copy to stay const.
        Percentiles lat = fs.latencyUs;
        sink.gauge("fault_latency_us.p50", lat.quantile(0.50));
        sink.gauge("fault_latency_us.p95", lat.quantile(0.95));
        sink.gauge("fault_latency_us.p99", lat.quantile(0.99));
    }
    engine_->collectMetrics(sink);
    sink.gauge("kernel_pool_pages",
               static_cast<double>(kernelPoolPages()));
    sink.gauge("processes", static_cast<double>(processes_.size()));

    for (const auto &[name, v] : counters_.all())
        sink.counter(name, v);

    // Per-zone allocator state merges into one "buddy." / one
    // "contig_map." group (MetricSample::mergeFrom adds by name).
    for (unsigned n = 0; n < physMem_.numNodes(); ++n) {
        const Zone &zone = physMem_.zone(n);
        {
            obs::MetricSink::Scope s(sink, "buddy");
            zone.buddy().collectMetrics(sink);
        }
        {
            obs::MetricSink::Scope s(sink, "contig_map");
            zone.contigMap().collectMetrics(sink);
        }
    }

    {
        obs::MetricSink::Scope s(sink, "policy");
        policy_->collectMetrics(sink);
        policy_->collectFailMetrics(sink);
    }

    if (reclaim_) {
        obs::MetricSink::Scope s(sink, "reclaim");
        reclaim_->collectMetrics(sink);
    }
}

Kernel::~Kernel()
{
    // Quiesce kswapd before tearing anything down: it walks processes
    // and zones under the mm lock.
    if (reclaim_)
        reclaim_->stop();
    // Destroy processes before the kernel pool and physical memory:
    // their page-table destructors return node frames via
    // freeKernelFrame().
    processes_.clear();
}

Process &
Kernel::createProcess(const std::string &name, NodeId home_node)
{
    contig_assert(home_node < physMem_.numNodes(), "bad home node");
    MaybeGuard<std::shared_mutex> g(mmLock_, threaded(), mmSite_);
    processes_.push_back(
        std::make_unique<Process>(*this, nextPid_++, name, home_node));
    return *processes_.back();
}

void
Kernel::exitProcess(Process &proc)
{
    MaybeGuard<std::shared_mutex> g(mmLock_, threaded(), mmSite_);
    // Tear down every VMA (policy hook + page release).
    std::vector<Vma *> vmas;
    proc.addressSpace().forEachVma([&](Vma &vma) { vmas.push_back(&vma); });
    for (Vma *vma : vmas)
        munmapLocked(proc, *vma);

    auto it = std::find_if(processes_.begin(), processes_.end(),
                           [&](const auto &p) { return p.get() == &proc; });
    contig_assert(it != processes_.end(), "exit of unknown process");
    processes_.erase(it);

    // With the caches quiesced, return every pcp-held frame to the
    // buddy so post-run free-list audits see the true allocator state.
    if (threaded())
        physMem_.drainPcpCaches();
}

Process *
Kernel::findProcess(std::uint32_t pid)
{
    for (auto &p : processes_)
        if (p->pid() == pid)
            return p.get();
    return nullptr;
}

File &
Kernel::createFile(std::uint64_t size_pages)
{
    return pageCache_.createFile(size_pages);
}

void
Kernel::dropCaches()
{
    MaybeGuard<SpinLock> g(pageCacheLock_, threaded());
    pageCache_.dropCaches(*this);
}

void
Kernel::readFile(File &file, std::uint64_t page_start,
                 std::uint64_t n_pages)
{
    engine_->readFile(file, page_start, n_pages);
}

Vma &
Kernel::mmapAnon(Process &proc, std::uint64_t bytes)
{
    MaybeGuard<std::shared_mutex> g(mmLock_, threaded(), mmSite_);
    Vma &vma = proc.addressSpace().mmap(bytes, VmaKind::Anon);
    vma.faultLock().bindStats(vmaFaultSite_);
    if (threaded()) {
        // Pre-create the interior page-table nodes so concurrent
        // faults never race on node creation (leaf slots are distinct
        // per fault; interior spines are shared).
        const Vpn s = vma.start().pageNumber();
        proc.pageTable().ensureSpine(s, s + vma.pages());
    }
    policy_->onMmap(*this, proc, vma);
    return vma;
}

Vma &
Kernel::mmapFile(Process &proc, std::uint32_t file_id, std::uint64_t bytes,
                 std::uint64_t file_offset_pages)
{
    MaybeGuard<std::shared_mutex> g(mmLock_, threaded(), mmSite_);
    Vma &vma = proc.addressSpace().mmap(bytes, VmaKind::File, std::nullopt,
                                        file_id, file_offset_pages);
    vma.faultLock().bindStats(vmaFaultSite_);
    if (threaded()) {
        const Vpn s = vma.start().pageNumber();
        proc.pageTable().ensureSpine(s, s + vma.pages());
    }
    policy_->onMmap(*this, proc, vma);
    return vma;
}

void
Kernel::unmapVmaPages(Process &proc, Vma &vma)
{
    PageTable &pt = proc.pageTable();
    const Vpn start = vma.start().pageNumber();
    const Vpn end = start + vma.pages();

    // Collect the leaves first: unmapping while iterating would
    // invalidate the traversal.
    std::vector<std::pair<Vpn, Mapping>> leaves;
    pt.forEachLeafIn(start, end, [&](Vpn vpn, const Mapping &m) {
        leaves.emplace_back(vpn, m);
    });
    for (auto &[vpn, m] : leaves) {
        pt.unmap(vpn, m.order);
        const std::uint64_t n = pagesInOrder(m.order);
        for (std::uint64_t i = 0; i < n; ++i)
            --physMem_.frame(m.pfn + i).mapCount;
        putFrame(m.pfn, m.order);
    }
}

void
Kernel::munmap(Process &proc, Vma &vma)
{
    MaybeGuard<std::shared_mutex> g(mmLock_, threaded(), mmSite_);
    munmapLocked(proc, vma);
}

void
Kernel::munmapLocked(Process &proc, Vma &vma)
{
    policy_->onMunmap(*this, proc, vma);
    unmapVmaPages(proc, vma);
    if (reclaim_) {
        reclaim_->dropVmaRange(proc.pid(), vma.start().pageNumber(),
                               vma.pages());
    }
    proc.addressSpace().munmap(vma);
}

void
Kernel::claimFrames(Pfn pfn, unsigned order, FrameOwner kind,
                    std::uint32_t owner_id, Addr owner_vaddr)
{
    // The claimer owns the block (it came off the buddy under the zone
    // lock), so plain relaxed stores suffice here.
    const std::uint64_t n = pagesInOrder(order);
    for (std::uint64_t i = 0; i < n; ++i) {
        Frame &f = physMem_.frame(pfn + i);
        f.ownerKind = kind;
        f.ownerId = owner_id;
        f.ownerVaddr = owner_vaddr + i * kPageSize;
        f.refCount.store(0, std::memory_order_relaxed);
        f.mapCount.store(0, std::memory_order_relaxed);
    }
    physMem_.frame(pfn).refCount.store(1, std::memory_order_relaxed);
    if (reclaim_)
        reclaim_->onClaim(pfn, order, kind);
    CONTIG_TRACE(obs::TraceEventKind::Alloc, pfn, order, owner_id);
    if (backingHook)
        backingHook(pfn, order);
}

void
Kernel::getFrame(Pfn pfn)
{
    physMem_.frame(pfn).refCount.fetch_add(1, std::memory_order_relaxed);
}

void
Kernel::putFrame(Pfn pfn, unsigned order)
{
    Frame &f = physMem_.frame(pfn);
    // acq_rel: the releasing thread's stores must be visible to
    // whoever observes the zero and recycles the block.
    const auto old = f.refCount.fetch_sub(1, std::memory_order_acq_rel);
    contig_assert(old > 0, "putFrame on unreferenced frame");
    if (old == 1) {
        const std::uint64_t n = pagesInOrder(order);
        for (std::uint64_t i = 0; i < n; ++i) {
            Frame &g = physMem_.frame(pfn + i);
            g.ownerKind = FrameOwner::None;
            g.ownerId = kNoOwner;
            g.ownerVaddr = 0;
        }
        if (reclaim_)
            reclaim_->onFree(pfn);
        physMem_.free(pfn, order);
    }
}

Kernel::PoolShard &
Kernel::myPoolShard()
{
    return pool_[ThisCpu::id() % pool_.size()];
}

bool
Kernel::refillPoolLocked(PoolShard &shard, NodeId node)
{
    if (auto blk = physMem_.alloc(kKernelPoolOrder, node)) {
        claimFrames(*blk, kKernelPoolOrder, FrameOwner::PageTable,
                    kNoOwner, 0);
        const std::uint64_t n = pagesInOrder(kKernelPoolOrder);
        kernelPoolPages_.fetch_add(n, std::memory_order_relaxed);
        // Hand out ascending: push descending.
        for (std::uint64_t i = n; i > 0; --i)
            shard.pfns.push_back(*blk + i - 1);
        return true;
    }
    if (auto single = physMem_.alloc(0, node)) {
        // Memory too fragmented for a chunk: fall back to one page.
        claimFrames(*single, 0, FrameOwner::PageTable, kNoOwner, 0);
        kernelPoolPages_.fetch_add(1, std::memory_order_relaxed);
        shard.pfns.push_back(*single);
        return true;
    }
    return false;
}

Pfn
Kernel::allocKernelFrame(NodeId node)
{
    PoolShard &home = myPoolShard();
    for (int attempt = 0; attempt < 4; ++attempt) {
        {
            MaybeGuard<SpinLock> g(home.lock, threaded());
            if (!home.pfns.empty() || refillPoolLocked(home, node)) {
                Pfn pfn = home.pfns.back();
                home.pfns.pop_back();
                return pfn;
            }
        }
        // The buddy is dry: raid the other shards' spare frames
        // before escalating (frames freed by workers on other lanes
        // accumulate there).
        for (PoolShard &other : pool_) {
            if (&other == &home)
                continue;
            MaybeGuard<SpinLock> g(other.lock, threaded());
            if (!other.pfns.empty()) {
                Pfn pfn = other.pfns.back();
                other.pfns.pop_back();
                return pfn;
            }
        }
        // Page-table allocations have no failure path of their own, so
        // under overcommit the empty pool escalates to direct reclaim.
        // The pool lock must be dropped first: reclaim's unmaps free
        // empty page-table nodes back through freeKernelFrame, which
        // takes it.
        if (!reclaim_ ||
            reclaim_->directReclaim(node,
                                    pagesInOrder(kKernelPoolOrder))
                    .freed == 0) {
            break;
        }
    }
    fatal("out of memory allocating a kernel (page-table) frame");
}

void
Kernel::freeKernelFrame(Pfn pfn)
{
    // Node frames return to the pool, not to the buddy allocator —
    // matching the sticky behaviour of per-CPU lists.
    PoolShard &home = myPoolShard();
    MaybeGuard<SpinLock> g(home.lock, threaded());
    home.pfns.push_back(pfn);
}

void
Kernel::touch(Process &proc, Gva gva, Access access)
{
    engine_->touch(proc, gva, access);
}

void
Kernel::forkInto(Process &parent, Process &child)
{
    MaybeGuard<std::shared_mutex> g(mmLock_, threaded(), mmSite_);
    // Clone anonymous VMAs COW-style.
    parent.addressSpace().forEachVma([&](Vma &pvma) {
        if (pvma.kind() != VmaKind::Anon)
            return;
        Vma &cvma = child.addressSpace().mmap(
            pvma.bytes(), VmaKind::Anon, pvma.start());
        cvma.faultLock().bindStats(vmaFaultSite_);
        if (threaded()) {
            const Vpn s = cvma.start().pageNumber();
            child.pageTable().ensureSpine(s, s + cvma.pages());
        }
        engine_->shareCowRange(parent, child, pvma, cvma);
    });
}


void
Kernel::saveState(Serializer &s) const
{
    const std::size_t sec = s.beginSection(sectionTag('K', 'E', 'R', 'N'));
    s.u64(now());
    const FaultStats &fs = faultStats();
    s.u64(fs.faults);
    s.u64(fs.hugeFaults);
    s.u64(fs.baseFaults);
    s.u64(fs.cowFaults);
    s.u64(fs.fileFaults);
    s.u64(fs.totalCycles);
    s.u64(fs.latencyUs.count());
    const CounterSet::Map &counters = counters_.all();
    s.u64(counters.size());
    for (const auto &[name, value] : counters) {
        s.str(name);
        s.u64(value);
    }
    s.u64(kernelPoolPages());
    physMem_.saveState(s);
    s.u64(processes_.size());
    for (const auto &p : processes_) {
        s.u32(p->pid());
        s.str(p->name());
        p->addressSpace().saveState(s);
    }
    s.endSection(sec);
}

} // namespace contig
