#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/rng.hh"

using namespace contig;

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.between(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowRoughlyUniform)
{
    Rng rng(13);
    const std::uint64_t buckets = 8;
    std::vector<int> hist(buckets, 0);
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++hist[rng.below(buckets)];
    for (auto c : hist)
        EXPECT_NEAR(c, n / static_cast<int>(buckets), n / 100);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(17);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Zipf, RanksWithinRange)
{
    Rng rng(23);
    ZipfSampler z(1000, 0.99);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(z.sample(rng), 1000u);
}

TEST(Zipf, SkewFavorsLowRanks)
{
    Rng rng(29);
    ZipfSampler z(10000, 1.1);
    int head = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        if (z.sample(rng) < 100)
            ++head;
    // With s=1.1 over 10k items, the top 1% of ranks should take a
    // large share of the draws (far more than the uniform 1%).
    EXPECT_GT(head, n / 4);
}

TEST(Zipf, NearZeroSkewIsRoughlyUniform)
{
    Rng rng(31);
    ZipfSampler z(100, 0.0);
    std::vector<int> hist(100, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++hist[z.sample(rng)];
    int mn = *std::min_element(hist.begin(), hist.end());
    int mx = *std::max_element(hist.begin(), hist.end());
    EXPECT_GT(mn, 0);
    EXPECT_LT(mx, 3 * n / 100);
}

TEST(Zipf, SingleItem)
{
    Rng rng(37);
    ZipfSampler z(1, 1.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(z.sample(rng), 0u);
}
