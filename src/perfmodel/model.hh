/**
 * @file
 * The linear performance model of Table IV: every configuration's
 * address-translation overhead is the cycles its translation events
 * cost, relative to an ideal execution with zero translation
 * overhead. In the paper T_ideal comes from measured counters
 * (T_THP - C_THP); here it comes from the simulated instruction
 * stream (accesses * instructions-per-access * base CPI), which is
 * the same quantity by construction.
 *
 * Also implements Table VII's unsafe-load (USL) estimation for the
 * security-mitigation discussion.
 */

#ifndef CONTIG_PERFMODEL_MODEL_HH
#define CONTIG_PERFMODEL_MODEL_HH

#include <cstdint>

#include "tlb/translation_sim.hh"

namespace contig
{

/** Machine-level constants of the cost model. */
struct PerfModelConfig
{
    /** Non-memory instructions retired per simulated memory access. */
    double instructionsPerAccess = 4.0;
    /** Ideal CPI (no translation overhead). */
    double baseCpi = 1.0;
    /** Branch fraction of the instruction mix (Table VII). */
    double branchFraction = 0.0587;
    /** Branch resolution latency in cycles (Table VII). */
    double branchResolutionCycles = 20.0;
    /** Load fraction of the instruction mix. */
    double loadFraction = 0.14;
};

/** Overhead result for one configuration. */
struct OverheadResult
{
    double idealCycles = 0.0;
    double translationCycles = 0.0;
    /** Overhead relative to ideal execution (the bars of Fig. 13). */
    double overhead = 0.0;
};

/**
 * Compute a configuration's translation overhead from the simulated
 * event counts, per Table IV:
 *   T_ideal   = instructions * baseCpi
 *   O_config  = exposed translation cycles / T_ideal
 * SpOT's exposed cycles already account for hidden walks and flush
 * penalties; vRMM's for background range walks; DS's for segment
 * bypasses.
 */
OverheadResult overheadOf(const XlatStats &xs,
                          const PerfModelConfig &cfg = {});

/** Table VII inputs/outputs: USL estimation. */
struct UslEstimate
{
    double branchesPerInstr = 0.0;
    double dtlbMissesPerInstr = 0.0;
    double spectreUslPerInstr = 0.0; //!< eq. (1)
    double spotUslPerInstr = 0.0;    //!< eq. (2)
};

/**
 * Estimate the unsafe-load exposure of SpOT vs Spectre-style branch
 * speculation (Table VII):
 *   Spectre USL = #branches * branch-resolution-cycles * loads/cycle
 *   SpOT USL    = #DTLB misses * avg-page-walk-cycles * loads/cycle
 */
UslEstimate estimateUsl(const XlatStats &xs,
                        const PerfModelConfig &cfg = {});

} // namespace contig

#endif // CONTIG_PERFMODEL_MODEL_HH
