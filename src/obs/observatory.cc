#include "obs/observatory.hh"

#include <cstdio>

#include "base/json.hh"
#include "base/lock_stats.hh"
#include "base/logging.hh"
#include "mm/kernel.hh"
#include "obs/attribution.hh"
#include "tlb/replay.hh"
#include "tlb/translation_sim.hh"
#include "virt/vm.hh"

namespace contig
{
namespace obs
{

// --- StateSampler ---------------------------------------------------------

StateSampler::StateSampler(SamplerConfig cfg)
    : cfg_(std::move(cfg)), periodFaults_(cfg_.periodFaults)
{
}

StateSampler::~StateSampler()
{
    detachKernel();
}

void
StateSampler::attachKernel(Kernel &kernel)
{
    contig_assert(!engineAttached_, "sampler already attached");
    kernel_ = &kernel;
    if (kernel.config().obsSamplePeriodFaults != 0)
        periodFaults_ = kernel.config().obsSamplePeriodFaults;
    kernel.faultEngine().setSampler(this);
    engineAttached_ = true;
}

void
StateSampler::detachKernel()
{
    if (engineAttached_ && kernel_) {
        kernel_->faultEngine().setSampler(nullptr);
        engineAttached_ = false;
    }
}

void
StateSampler::addSegProbe(std::string dim, const Process *proc,
                          SegProbe fn, bool track_coverage)
{
    probes_.push_back(
        Probe{std::move(dim), proc, std::move(fn), track_coverage});
}

void
StateSampler::attachVm(const Process &guest_proc,
                       const VirtualMachine &vm)
{
    const Process *proc = &guest_proc;
    addSegProbe(
        "1d", proc, [proc] { return extractSegs(proc->pageTable()); },
        false);
    const VirtualMachine *vmp = &vm;
    addSegProbe(
        "2d", proc, [proc, vmp] { return extract2d(*proc, *vmp); },
        true);
}

void
StateSampler::attachTranslation(const TranslationSim &sim)
{
    xlat_ = &sim;
    replay_ = nullptr;
}

void
StateSampler::attachTranslation(const ReplayEngine &engine)
{
    replay_ = &engine;
    xlat_ = nullptr;
}

const Snapshot &
StateSampler::sampleNow()
{
    return sampleAt(kernel_ ? kernel_->faultStats().faults : seqNext_);
}

const Snapshot &
StateSampler::sampleAt(std::uint64_t tick)
{
    last_ = Snapshot{};
    capture(last_, tick);
    if (cfg_.keepSnapshots)
        snapshots_.push_back(last_);
    emitTimeline(last_);
    return last_;
}

void
StateSampler::capture(Snapshot &snap, std::uint64_t tick)
{
    snap.seq = seqNext_++;
    snap.tick = tick;

    if (kernel_) {
        const FaultStats &fs = kernel_->faultStats();
        snap.faults = fs.faults;
        snap.hugeFaults = fs.hugeFaults;
        snap.cowFaults = fs.cowFaults;
        snap.fileFaults = fs.fileFaults;

        const PhysicalMemory &pm = kernel_->physMem();
        snap.zones.reserve(pm.numNodes());
        for (unsigned n = 0; n < pm.numNodes(); ++n) {
            const Zone &zone = pm.zone(n);
            ZoneSnap z;
            z.node = n;
            z.freePages = zone.buddy().freePages();
            z.freeBlocks = zone.buddy().freeBlockCounts();
            z.fmfi = zone.buddy().unusableFreeIndex(kHugeOrder);
            z.clusterCount = zone.contigMap().clusterCount();
            if (auto big = zone.contigMap().largest())
                z.largestClusterPages = big->pages;
            z.clusterHist = zone.contigMap().clusterSizeHistogram();
            if (cfg_.captureFreeHist) {
                z.hasFreeHist = true;
                z.freeHist = zone.freeBlockHistogram();
            }
            snap.zones.push_back(std::move(z));
        }
    }

    for (const Probe &probe : probes_) {
        const std::vector<Seg> segs = probe.fn();
        if (probe.trackCoverage) {
            snap.hasCoverage = true;
            snap.coverage = coverage(segs);
        }
        if (probe.proc) {
            std::vector<VmaSpan> spans;
            probe.proc->addressSpace().forEachVma([&](const Vma &vma) {
                spans.push_back(VmaSpan{vma.start().pageNumber(),
                                        vma.start().pageNumber() +
                                            vma.pages(),
                                        vma.id()});
            });
            auto runs = vmaRunStats(segs, spans, probe.proc->pid(),
                                    probe.dim);
            snap.vmaRuns.insert(snap.vmaRuns.end(), runs.begin(),
                                runs.end());
        }
    }

    if (xlat_ || replay_) {
        const XlatStats xs =
            replay_ ? replay_->mergedStats() : xlat_->stats();
        snap.hasXlat = true;
        snap.xlat.accesses = xs.accesses;
        snap.xlat.l1Hits = xs.l1Hits;
        snap.xlat.l2Hits = xs.l2Hits;
        snap.xlat.walks = xs.walks;
        snap.xlat.walkRefs = xs.walkRefs;
        snap.xlat.walkCycles = xs.walkCycles;
        snap.xlat.exposedCycles = xs.exposedCycles;
        snap.xlat.spotCorrect = xs.spotCorrect;
        snap.xlat.spotMispredicted = xs.spotMispredicted;
        snap.xlat.spotNoPrediction = xs.spotNoPrediction;
        std::optional<SpotStats> merged;
        const SpotStats *ss = nullptr;
        if (replay_) {
            merged = replay_->mergedSpotStats();
            if (merged)
                ss = &*merged;
        } else if (const SpotEngine *spot = xlat_->spot()) {
            ss = &spot->stats();
        }
        if (ss) {
            snap.xlat.spotFills = ss->fills;
            snap.xlat.spotCoverage = ss->coverage();
            snap.xlat.spotAccuracy = ss->accuracy();
        }
    }

    if (replay_) {
        for (unsigned i = 0; i < replay_->threads(); ++i) {
            const ReplayEngine::ShardLoad l = replay_->shardLoad(i);
            const std::string p = "xlat.shard" + std::to_string(i) + ".";
            snap.extras[p + "accesses"] =
                static_cast<double>(l.accesses);
            snap.extras[p + "busy_us"] =
                static_cast<double>(l.busyNs) / 1000.0;
            snap.extras[p + "stall_us"] =
                static_cast<double>(l.stallNs) / 1000.0;
            snap.extras[p + "wait_us"] =
                static_cast<double>(l.waitNs) / 1000.0;
        }
    }

    // Attribution drift: per-outcome rollups so timelines show where
    // the translation cycles go as the run evolves (--attrib only).
    const auto attribExtras = [&snap](const XlatAttribution &table) {
        for (unsigned o = 0; o < kXlatOutcomes; ++o) {
            const CostCell cell = table.outcomeTotal(o);
            if (cell.empty())
                continue;
            const std::string p =
                std::string("attrib.") +
                xlatOutcomeName(static_cast<XlatOutcome>(o)) + ".";
            snap.extras[p + "events"] =
                static_cast<double>(cell.events);
            snap.extras[p + "walk_cycles"] =
                static_cast<double>(cell.cycles);
            snap.extras[p + "exposed_cycles"] =
                static_cast<double>(cell.exposed);
        }
    };
    if (replay_ && replay_->attribEnabled())
        attribExtras(replay_->attribRollup());
    else if (xlat_ && xlat_->attrib())
        attribExtras(*xlat_->attrib());

    // Memory-pressure drift: watermark / LRU / swap state as the run
    // evolves. Reclaim kernels only — the keys are absent otherwise,
    // so committed timeline goldens keep their exact shape.
    if (kernel_) {
        if (const ReclaimEngine *rec = kernel_->reclaim()) {
            const ReclaimStats &rs = rec->stats();
            const auto v = [](const std::atomic<std::uint64_t> &a) {
                return static_cast<double>(
                    a.load(std::memory_order_relaxed));
            };
            snap.extras["reclaim.scans"] = v(rs.scans);
            snap.extras["reclaim.rotations"] = v(rs.rotations);
            snap.extras["reclaim.reclaimed"] = v(rs.reclaimed);
            snap.extras["reclaim.swap_outs"] = v(rs.swapOuts);
            snap.extras["reclaim.refaults"] = v(rs.refaults);
            snap.extras["reclaim.thp_splits"] = v(rs.thpSplits);
            snap.extras["reclaim.swapped_pages"] =
                static_cast<double>(rec->swappedPages());
            const PhysicalMemory &pm = kernel_->physMem();
            for (unsigned n = 0; n < pm.numNodes(); ++n) {
                const Zone &zone = pm.zone(n);
                const std::string p =
                    "reclaim.node" + std::to_string(n) + ".";
                snap.extras[p + "free_pages"] =
                    static_cast<double>(zone.freePagesFast());
                snap.extras[p + "lru_inactive"] = static_cast<double>(
                    zone.lruPages(Frame::LruList::Inactive));
                snap.extras[p + "lru_active"] = static_cast<double>(
                    zone.lruPages(Frame::LruList::Active));
            }
        }
    }

    if (LockStatsRegistry::enabled()) {
        for (const LockSite *site :
             LockStatsRegistry::global().sites()) {
            const LockSite::Totals t = site->totals();
            if (t.acquisitions == 0 && t.contended == 0 &&
                t.retries == 0)
                continue;
            const std::string p = "lock." + site->name() + ".";
            snap.extras[p + "acquisitions"] =
                static_cast<double>(t.acquisitions);
            snap.extras[p + "contended"] =
                static_cast<double>(t.contended);
            snap.extras[p + "retries"] =
                static_cast<double>(t.retries);
            snap.extras[p + "spin_us"] =
                static_cast<double>(t.spinNs) / 1000.0;
        }
    }
}

void
StateSampler::emitTimeline(const Snapshot &snap)
{
    TimelineSink &sink = TimelineSink::global();
    if (!sink.enabled())
        return;
    if (!streamOpen_) {
        streamId_ = sink.newStream();
        streamOpen_ = true;
    }

    FlatSnap flat = flatten(snap);
    TimelineRecord rec;
    rec.stream = streamId_;
    rec.domain = cfg_.domain;
    rec.seq = snap.seq;
    rec.tick = snap.tick;
    if (!emittedFull_) {
        rec.full = true;
        rec.set = flat;
        emittedFull_ = true;
    } else {
        rec.full = false;
        FlatDelta delta = diffFlat(prevFlat_, flat);
        rec.set = std::move(delta.set);
        rec.del = std::move(delta.del);
    }
    sink.emit(rec);
    prevFlat_ = std::move(flat);
}

// --- TimelineSink ---------------------------------------------------------

namespace
{
TimelineSink gTimelineSink;
} // namespace

TimelineSink &
TimelineSink::global()
{
    return gTimelineSink;
}

TimelineSink::~TimelineSink()
{
    close();
}

bool
TimelineSink::open(const std::string &path)
{
    close();
    file_ = std::fopen(path.c_str(), "w");
    if (!file_)
        return false;
    path_ = path;
    records_ = 0;
    nextStream_ = 0;
    return true;
}

void
TimelineSink::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

void
TimelineSink::emit(const TimelineRecord &rec)
{
    if (!file_)
        return;
    const std::string line = encodeTimelineRecord(rec);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    ++records_;
}

// --- RunInfo --------------------------------------------------------------

RunInfo &
RunInfo::global()
{
    static RunInfo instance;
    return instance;
}

void
RunInfo::note(std::string_view key, std::string_view value)
{
    auto it = values_.find(key);
    if (it == values_.end())
        it = values_.emplace(std::string(key), std::set<std::string>{})
                 .first;
    it->second.emplace(value);
}

void
RunInfo::note(std::string_view key, std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    note(key, std::string_view(buf));
}

void
RunInfo::note(std::string_view key, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    note(key, std::string_view(buf));
}

void
RunInfo::note(std::string_view key, bool value)
{
    note(key, std::string_view(value ? "true" : "false"));
}

void
RunInfo::count(std::string_view key)
{
    auto it = counts_.find(key);
    if (it == counts_.end())
        counts_.emplace(std::string(key), 1);
    else
        ++it->second;
}

void
RunInfo::clear()
{
    values_.clear();
    counts_.clear();
}

void
RunInfo::writeJson(JsonWriter &w) const
{
    w.beginObject();
    for (const auto &[key, n] : counts_)
        w.field(key, n);
    for (const auto &[key, vals] : values_) {
        w.key(key);
        if (vals.size() == 1) {
            w.value(*vals.begin());
        } else {
            w.beginArray();
            for (const std::string &v : vals)
                w.value(v);
            w.endArray();
        }
    }
    w.endObject();
}

} // namespace obs
} // namespace contig
