/**
 * @file
 * The AllocationPolicy interface: the seam where CA paging and the
 * baseline techniques (default THP, eager paging, Ingens, Ranger,
 * ideal) plug into the kernel's demand-paging path. The FaultEngine
 * decides *when* and at *what granularity* to allocate; the policy
 * decides *where* the frames come from.
 */

#ifndef CONTIG_MM_POLICY_HH
#define CONTIG_MM_POLICY_HH

#include <cstdint>
#include <optional>
#include <string>

#include "base/types.hh"
#include "mm/vma.hh"

namespace contig
{

class Kernel;
class Process;
class File;
namespace obs { class MetricSink; }

/** Outcome of a policy allocation. */
struct AllocResult
{
    Pfn pfn = kInvalidPfn;
    /** Cycles the placement logic itself cost (search, map updates). */
    Cycles placementCycles = 0;

    bool ok() const { return pfn != kInvalidPfn; }
};

/**
 * Physical-placement policy for demand paging. Implementations must
 * return blocks obtained from kernel.physMem() so the buddy/contiguity
 * bookkeeping stays consistent.
 */
class AllocationPolicy
{
  public:
    virtual ~AllocationPolicy() = default;

    virtual std::string name() const = 0;

    /** Called when a VMA is created (eager/ideal placement hooks). */
    virtual void onMmap(Kernel &kernel, Process &proc, Vma &vma)
    { (void)kernel; (void)proc; (void)vma; }

    /** Called before a VMA's pages are torn down. */
    virtual void onMunmap(Kernel &kernel, Process &proc, Vma &vma)
    { (void)kernel; (void)proc; (void)vma; }

    /**
     * Allocate 2^order frames to back the fault at vpn inside vma.
     * Returning !ok() at huge order makes the FaultEngine retry at
     * order 0; !ok() at order 0 is an OOM.
     */
    virtual AllocResult allocate(Kernel &kernel, Process &proc, Vma &vma,
                                 Vpn vpn, unsigned order) = 0;

    /**
     * Allocate one page-cache frame for page `file_page` of a file
     * (readahead batches call this repeatedly with ascending pages).
     */
    virtual AllocResult allocateFilePage(Kernel &kernel, File &file,
                                         std::uint64_t file_page);

    /**
     * Called after the PTE for a fresh allocation is installed; CA
     * paging uses this to maintain the PTE contiguity bits that gate
     * SpOT's prediction-table fills.
     */
    virtual void onMapped(Kernel &kernel, Process &proc, Vma &vma,
                          Vpn vpn, Pfn pfn, unsigned order)
    { (void)kernel; (void)proc; (void)vma; (void)vpn; (void)pfn;
      (void)order; }

    /**
     * Periodic hook driven by the kernel clock (every
     * Kernel::tickPeriod faults); daemons (Ranger scans, Ingens
     * promotion) live here.
     */
    virtual void onTick(Kernel &kernel) { (void)kernel; }

    /** Whether the FaultEngine may attempt transparent huge faults. */
    virtual bool allowsHugeFaults() const { return true; }

    /**
     * Whether allocateFilePage() steers page-cache placement (CA
     * paging's per-file Offset). Policies that do not are modelled as
     * leaving long-lived cache pages wherever allocation entropy puts
     * them (see systemChurn).
     */
    virtual bool steersFilePlacement() const { return false; }

    /**
     * Report policy-specific metrics (the owning kernel scopes them
     * under "policy."). Policies without interesting state emit
     * nothing.
     */
    virtual void collectMetrics(obs::MetricSink &sink) const
    { (void)sink; }
};

/**
 * Default paging with THP: the stock Linux behaviour the paper
 * compares against. Huge (2 MiB) faults when alignment allows, plain
 * buddy allocations, no placement steering.
 */
class DefaultThpPolicy : public AllocationPolicy
{
  public:
    std::string name() const override { return "default-thp"; }

    AllocResult allocate(Kernel &kernel, Process &proc, Vma &vma,
                         Vpn vpn, unsigned order) override;
};

/**
 * Default paging restricted to 4 KiB faults (the paper's "4K"
 * baseline; also the bloat baseline of Table VI).
 */
class Base4kPolicy : public AllocationPolicy
{
  public:
    std::string name() const override { return "base-4k"; }

    bool allowsHugeFaults() const override { return false; }

    AllocResult allocate(Kernel &kernel, Process &proc, Vma &vma,
                         Vpn vpn, unsigned order) override;
};

} // namespace contig

#endif // CONTIG_MM_POLICY_HH
