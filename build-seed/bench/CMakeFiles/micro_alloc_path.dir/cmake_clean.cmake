file(REMOVE_RECURSE
  "CMakeFiles/micro_alloc_path.dir/micro_alloc_path.cc.o"
  "CMakeFiles/micro_alloc_path.dir/micro_alloc_path.cc.o.d"
  "micro_alloc_path"
  "micro_alloc_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_alloc_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
