/**
 * @file
 * Bridge from the lock-contention accounting (base/lock_stats) into
 * the metric namespace: a MetricSource that snapshots every
 * registered LockSite as
 *
 *   lock.<site>.acquisitions   contended + uncontended acquires
 *   lock.<site>.contended      acquires that found the lock held
 *   lock.<site>.retries        lost CAS rounds / loser-path retries
 *   lock.<site>.spin_us        time spent waiting, microseconds
 *
 * Sites register lazily as kernels bind their locks, so the source
 * iterates the registry at snapshot time — a site created after the
 * source still shows up. Kept out of base/ so the accounting layer
 * stays free of the obs dependency.
 */

#ifndef CONTIG_OBS_LOCK_METRICS_HH
#define CONTIG_OBS_LOCK_METRICS_HH

#include "obs/metrics.hh"

namespace contig
{
namespace obs
{

/**
 * Build the "lock." source over the process-wide LockStatsRegistry.
 * The caller owns the returned RAII handle (BenchOutput holds one for
 * the duration of a --lock-stats run).
 */
MetricSource makeLockMetricsSource(MetricRegistry &reg);

} // namespace obs
} // namespace contig

#endif // CONTIG_OBS_LOCK_METRICS_HH
