/**
 * @file
 * Reproduces Table VI: memory bloat — physical memory allocated
 * beyond what a 4 KiB demand-paging baseline would allocate — per
 * workload for THP, Ingens, CA, and eager paging.
 * Expected shape: THP and CA identical and small (partial tail huge
 * pages); Ingens smaller still (promotes only utilized regions);
 * eager bloats by the full VMA slack (up to ~47% for hashjoin).
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"

using namespace contig;

namespace
{

/** Allocated-minus-touched bytes for one workload under one policy. */
std::uint64_t
bloatBytes(const std::string &name, PolicyKind kind)
{
    NativeSystem sys(kind, 7);
    auto wl = makeWorkload(name, {1.0, 7});
    auto r = sys.run(*wl, 1u << 30);
    // Ingens promotes asynchronously; let the daemon settle so its
    // (small) promotion bloat is counted.
    for (int epoch = 0; epoch < 8; ++epoch)
        sys.kernel().policy().onTick(sys.kernel());
    std::uint64_t allocated = wl->process()->allocatedPages();
    std::uint64_t touched = wl->process()->touchedPages();
    (void)r;
    sys.finish(*wl);
    return (allocated - touched) * kPageSize;
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("table6_bloat", argc, argv);

    const std::vector<PolicyKind> kinds{PolicyKind::Thp,
                                        PolicyKind::Ingens,
                                        PolicyKind::Ca,
                                        PolicyKind::Eager};

    Report rep("Table VI — bloat vs 4 KiB demand paging "
               "[absolute (fraction of footprint)]");
    rep.header({"workload", "THP", "Ingens", "CA", "eager"});
    for (const auto &name : paperWorkloads()) {
        auto ref = makeWorkload(name, {1.0, 7});
        const double footprint =
            static_cast<double>(ref->footprintBytes());
        std::vector<std::string> row{name};
        for (PolicyKind kind : kinds) {
            std::uint64_t b = bloatBytes(name, kind);
            row.push_back(Report::bytes(b) + " (" +
                          Report::pct(b / footprint) + ")");
        }
        rep.row(row);
    }
    out.add(rep);
    rep.print();

    std::printf("\npaper: THP/CA bloat is MBs (<0.1%%); Ingens less; "
                "eager up to 47.5%% (hashjoin) of GBs\n");
    out.write();
    return 0;
}
