#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mm/kernel.hh"
#include "mm/migrate.hh"
#include "policies/ca_paging.hh"

using namespace contig;

namespace
{

KernelConfig
smallConfig(bool thp = true)
{
    KernelConfig cfg;
    cfg.phys.bytesPerNode = 128ull << 20;
    cfg.phys.numNodes = 2;
    cfg.thpEnabled = thp;
    return cfg;
}

std::unique_ptr<Kernel>
makeKernel(bool thp = true)
{
    return std::make_unique<Kernel>(smallConfig(thp),
                                    std::make_unique<DefaultThpPolicy>());
}

} // namespace

TEST(Kernel, TouchFaultsOnce)
{
    auto k = makeKernel(false);
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(1 << 20);
    p.touch(vma.start());
    EXPECT_EQ(k->faultStats().faults, 1u);
    p.touch(vma.start()); // already mapped: no new fault
    EXPECT_EQ(k->faultStats().faults, 1u);
    EXPECT_EQ(vma.touchedPages, 1u);
    EXPECT_EQ(vma.allocatedPages, 1u);
}

TEST(Kernel, ThpFaultMapsHuge)
{
    auto k = makeKernel(true);
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(4 * kHugeSize);
    p.touch(vma.start() + 123);
    EXPECT_EQ(k->faultStats().hugeFaults, 1u);
    auto m = p.pageTable().lookup(vma.start().pageNumber());
    ASSERT_TRUE(m);
    EXPECT_EQ(m->order, kHugeOrder);
    EXPECT_EQ(vma.allocatedPages, 512u);
    EXPECT_EQ(vma.touchedPages, 1u); // bloat: 511 untouched pages
}

TEST(Kernel, SmallVmaUses4k)
{
    auto k = makeKernel(true);
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(64 << 10); // < 2 MiB: no huge fault possible
    p.touchRange(vma.start(), 64 << 10);
    EXPECT_EQ(k->faultStats().hugeFaults, 0u);
    EXPECT_EQ(k->faultStats().baseFaults, 16u);
}

TEST(Kernel, ThpDisabledUses4k)
{
    auto k = makeKernel(false);
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(4 * kHugeSize);
    p.touchRange(vma.start(), kHugeSize);
    EXPECT_EQ(k->faultStats().hugeFaults, 0u);
    EXPECT_EQ(k->faultStats().baseFaults, 512u);
}

TEST(Kernel, MunmapFreesMemory)
{
    auto k = makeKernel(true);
    const std::uint64_t before = k->physMem().freePages();
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(8 * kHugeSize);
    p.touchRange(vma.start(), 8 * kHugeSize);
    EXPECT_LT(k->physMem().freePages(), before);
    p.munmap(vma);
    // Page-table node frames stay in the kernel's metadata pool; all
    // data frames must be back.
    k->exitProcess(p);
    EXPECT_EQ(k->physMem().freePages(), before - k->kernelPoolPages());
}

TEST(Kernel, ForkSharesCow)
{
    auto k = makeKernel(false);
    Process &p = k->createProcess("parent");
    Vma &vma = p.mmap(1 << 20);
    p.touchRange(vma.start(), 1 << 20);
    const std::uint64_t faults_before = k->faultStats().faults;

    Process &c = p.fork("child");
    // Child sees the same frames, read-only COW.
    auto pm = p.pageTable().lookup(vma.start().pageNumber());
    auto cm = c.pageTable().lookup(vma.start().pageNumber());
    ASSERT_TRUE(pm && cm);
    EXPECT_EQ(pm->pfn, cm->pfn);
    EXPECT_TRUE(cm->cow);

    // Child reads: no fault. Child writes: COW copy.
    c.touch(vma.start(), Access::Read);
    EXPECT_EQ(k->faultStats().cowFaults, 0u);
    c.touch(vma.start(), Access::Write);
    EXPECT_EQ(k->faultStats().cowFaults, 1u);
    auto cm2 = c.pageTable().lookup(vma.start().pageNumber());
    EXPECT_NE(cm2->pfn, pm->pfn);
    EXPECT_FALSE(cm2->cow);
    EXPECT_GT(k->faultStats().faults, faults_before);

    k->exitProcess(c);
    k->exitProcess(p);
}

TEST(Kernel, FileMappingSharesPageCache)
{
    auto k = makeKernel(false);
    File &f = k->createFile(256);
    Process &a = k->createProcess("a");
    Process &b = k->createProcess("b");
    Vma &va = a.mmapFile(f.id(), 256 * kPageSize);
    Vma &vb = b.mmapFile(f.id(), 256 * kPageSize);

    a.touch(va.start(), Access::Read);
    EXPECT_EQ(k->faultStats().fileFaults, 1u);
    // Readahead cached a window.
    EXPECT_EQ(f.cachedPages(), kReadaheadPages);

    b.touch(vb.start(), Access::Read);
    auto ma = a.pageTable().lookup(va.start().pageNumber());
    auto mb = b.pageTable().lookup(vb.start().pageNumber());
    ASSERT_TRUE(ma && mb);
    EXPECT_EQ(ma->pfn, mb->pfn); // same page-cache frame

    // Page-cache pages survive process exit...
    k->exitProcess(a);
    k->exitProcess(b);
    EXPECT_EQ(f.cachedPages(), kReadaheadPages);
    // ...until caches are dropped.
    k->dropCaches();
    EXPECT_EQ(f.cachedPages(), 0u);
}

TEST(Kernel, FileOffsetMapping)
{
    auto k = makeKernel(false);
    File &f = k->createFile(256);
    Process &p = k->createProcess("p");
    Vma &v = p.mmapFile(f.id(), 16 * kPageSize, 100);
    p.touch(v.start() + 3 * kPageSize, Access::Read);
    EXPECT_TRUE(f.isCached(103));
    EXPECT_FALSE(f.isCached(3));
    k->exitProcess(p);
    k->dropCaches();
}

TEST(Kernel, HugeFallbackTo4k)
{
    // Exhaust all but a few 4 KiB pages so a huge allocation fails.
    auto k = makeKernel(true);
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(4 * kHugeSize);

    PhysicalMemory &pm = k->physMem();
    // Take every huge-order block; only sub-huge remnants (from the
    // kernel pool's split) stay free.
    while (pm.alloc(kHugeOrder))
        ;
    std::uint64_t free_before = pm.freePages();
    ASSERT_LT(free_before, pagesInOrder(kHugeOrder));
    ASSERT_GT(free_before, 0u);
    p.touch(vma.start());
    EXPECT_EQ(k->policy().allocFailCounts().noHugeBlock, 1u);
    EXPECT_EQ(k->policy().allocFailCounts().oom, 0u);
    EXPECT_EQ(k->faultStats().baseFaults, 1u);
    auto m = p.pageTable().lookup(vma.start().pageNumber());
    ASSERT_TRUE(m);
    EXPECT_EQ(m->order, 0u);
}

TEST(Kernel, FaultLatencyRecorded)
{
    auto k = makeKernel(true);
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(kHugeSize);
    p.touch(vma.start());
    EXPECT_EQ(k->faultStats().latencyUs.count(), 1u);
    // A huge fault zeroes 512 pages: latency must exceed the base.
    double lat = k->faultStats().latencyUs.quantile(1.0);
    double base_us = k->config().faultBaseCycles / k->config().cyclesPerUs;
    EXPECT_GT(lat, base_us);
}

TEST(Kernel, OnFaultObserverFires)
{
    auto k = makeKernel(true);
    int events = 0;
    Vpn last_vpn = 0;
    k->onFault = [&](const FaultEvent &ev) {
        ++events;
        last_vpn = ev.vpn;
    };
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(kHugeSize);
    p.touch(vma.start() + 5 * kPageSize);
    EXPECT_EQ(events, 1);
    EXPECT_EQ(last_vpn, vma.start().pageNumber()); // huge-aligned base
}

TEST(Kernel, BackingHookFires)
{
    auto k = makeKernel(true);
    std::uint64_t backed_pages = 0;
    k->backingHook = [&](Pfn, unsigned order) {
        backed_pages += pagesInOrder(order);
    };
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(kHugeSize);
    p.touch(vma.start());
    // The huge data block plus any page-table node frames.
    EXPECT_GE(backed_pages, 512u);
}

TEST(Migrate, MovesLeafToChosenFrame)
{
    auto k = makeKernel(false);
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(1 << 20);
    p.touch(vma.start());
    auto m = p.pageTable().lookup(vma.start().pageNumber());
    ASSERT_TRUE(m);

    // Find a free aligned destination far away.
    Pfn dest = k->physMem().totalFrames() / 2 + 4096;
    ASSERT_TRUE(k->physMem().isFreePage(dest));
    EXPECT_EQ(migrateLeaf(*k, p, vma.start().pageNumber(), dest),
              MigrateResult::Done);
    auto m2 = p.pageTable().lookup(vma.start().pageNumber());
    EXPECT_EQ(m2->pfn, dest);
    EXPECT_TRUE(k->physMem().isFreePage(m->pfn)); // old frame freed
    EXPECT_EQ(k->counters().get("migrate.shootdowns"), 1u);
}

TEST(Migrate, RefusesSharedFrames)
{
    auto k = makeKernel(false);
    Process &p = k->createProcess("parent");
    Vma &vma = p.mmap(1 << 20);
    p.touch(vma.start());
    p.fork("child");
    Pfn dest = k->physMem().totalFrames() / 2;
    EXPECT_EQ(migrateLeaf(*k, p, vma.start().pageNumber(), dest),
              MigrateResult::Shared);
}

TEST(Migrate, PromoteHuge)
{
    auto k = makeKernel(false); // 4 KiB faults only
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(kHugeSize);
    p.touchRange(vma.start(), kHugeSize);
    EXPECT_EQ(k->faultStats().baseFaults, 512u);

    Vpn base = vma.start().pageNumber();
    EXPECT_TRUE(promoteHuge(*k, p, base));
    auto m = p.pageTable().lookup(base);
    ASSERT_TRUE(m);
    EXPECT_EQ(m->order, kHugeOrder);
    EXPECT_EQ(k->counters().get("promote.pages"), 512u);

    // Second promotion attempt: already huge.
    EXPECT_FALSE(promoteHuge(*k, p, base));
}

// --- NUMA-sharded physical metadata ---------------------------------

TEST(KernelNumaShards, ThpBehaviorIdenticalToUnsharded)
{
    // DefaultThpPolicy never scans the contiguity map, and the striped
    // buddy top list is observably identical to the unsharded one —
    // so a sharded kernel must reproduce the unsharded fault behavior
    // exactly, not just approximately.
    KernelConfig sharded = smallConfig();
    sharded.numaShards = 4;
    Kernel ks(sharded, std::make_unique<DefaultThpPolicy>());
    auto ku = makeKernel();

    Process &ps = ks.createProcess("s");
    Process &pu = ku->createProcess("u");
    Vma &vs = ps.mmap(16 << 20);
    Vma &vu = pu.mmap(16 << 20);
    ps.touchRange(vs.start(), vs.bytes());
    pu.touchRange(vu.start(), vu.bytes());

    EXPECT_EQ(ks.faultStats().faults, ku->faultStats().faults);
    EXPECT_EQ(ks.faultStats().hugeFaults, ku->faultStats().hugeFaults);
    EXPECT_EQ(vs.allocatedPages, vu.allocatedPages);
    EXPECT_EQ(ks.physMem().freePages(), ku->physMem().freePages());
    for (NodeId n = 0; n < ks.physMem().numNodes(); ++n) {
        const Zone &z = ks.physMem().zone(n);
        EXPECT_TRUE(z.contigMap().striped());
        EXPECT_EQ(z.contigMap().stripes(), 4u);
        EXPECT_EQ(z.buddy().topStripes(), 4u);
        EXPECT_TRUE(z.buddy().checkInvariants());
        EXPECT_TRUE(z.contigMap().checkInvariants());
    }
}

TEST(KernelNumaShards, CaPagingPlacesThroughStripedMap)
{
    // CA paging's placement scan runs per-stripe here; the coverage
    // outcome must stay sane (every touch mapped, invariants hold)
    // even though the scan order differs from the unsharded map.
    KernelConfig cfg = smallConfig();
    cfg.numaShards = 4;
    Kernel k(cfg, std::make_unique<CaPagingPolicy>());
    Process &p = k.createProcess("ca");
    Vma &vma = p.mmap(32 << 20);
    p.touchRange(vma.start(), vma.bytes());
    EXPECT_EQ(vma.touchedPages, vma.pages());
    EXPECT_GT(k.faultStats().hugeFaults, 0u);
    for (NodeId n = 0; n < k.physMem().numNodes(); ++n) {
        const Zone &z = k.physMem().zone(n);
        EXPECT_TRUE(z.contigMap().checkInvariants());
        EXPECT_TRUE(z.buddy().checkInvariants());
    }
    // The striped map took placements (CA's scan found clusters).
    std::uint64_t placements = 0;
    for (NodeId n = 0; n < k.physMem().numNodes(); ++n)
        placements += k.physMem().zone(n).contigMap().stats().placements;
    EXPECT_GT(placements, 0u);
}

TEST(KernelNumaShards, ProcessDefaultAppliesWhenUnset)
{
    // bench_io publishes --numa-shards/CONTIG_NUMA_SHARDS through
    // KernelConfig::setDefaultNumaShards before any kernel exists;
    // normalized() folds it in only when the per-instance knob is 0,
    // so explicit settings (tests, tweak hooks) always win.
    KernelConfig::setDefaultNumaShards(3);
    {
        Kernel k(smallConfig(), std::make_unique<DefaultThpPolicy>());
        EXPECT_EQ(k.config().numaShards, 3u);
        for (NodeId n = 0; n < k.physMem().numNodes(); ++n)
            EXPECT_EQ(k.physMem().zone(n).contigMap().stripes(), 3u);
    }
    {
        KernelConfig pinned = smallConfig();
        pinned.numaShards = 2;
        Kernel k(pinned, std::make_unique<DefaultThpPolicy>());
        EXPECT_EQ(k.config().numaShards, 2u);
    }
    KernelConfig::setDefaultNumaShards(0);
    Kernel k(smallConfig(), std::make_unique<DefaultThpPolicy>());
    EXPECT_EQ(k.config().numaShards, 0u);
    EXPECT_FALSE(k.physMem().zone(0).contigMap().striped());
}

TEST(KernelNumaShards, KernelPoolShardsServeAndRaid)
{
    // Page-table frames come from the sharded kernel pool; freeing
    // returns them to the caller's home shard, and allocation raids
    // other shards before direct reclaim. One CPU exercises the home
    // path; the pool gauge must stay consistent throughout.
    KernelConfig cfg = smallConfig();
    cfg.numaShards = 4;
    Kernel k(cfg, std::make_unique<DefaultThpPolicy>());
    std::vector<Pfn> frames;
    for (int i = 0; i < 200; ++i)
        frames.push_back(k.allocKernelFrame(0));
    // All frames are distinct (no shard handed one out twice).
    std::set<Pfn> distinct(frames.begin(), frames.end());
    EXPECT_EQ(distinct.size(), frames.size());
    // The gauge counts pages *claimed* from the buddy, so it covers
    // both pooled and handed-out frames and must not move when frames
    // shuttle between the two.
    const std::uint64_t claimed = k.kernelPoolPages();
    EXPECT_GE(claimed, frames.size());
    for (Pfn f : frames)
        k.freeKernelFrame(f);
    EXPECT_EQ(k.kernelPoolPages(), claimed);
    // A second wave is served from the now-replenished home shard
    // (frees landed there) without claiming more memory.
    for (int i = 0; i < 100; ++i)
        k.freeKernelFrame(k.allocKernelFrame(0));
    EXPECT_EQ(k.kernelPoolPages(), claimed);
}
