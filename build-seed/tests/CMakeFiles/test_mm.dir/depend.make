# Empty dependencies file for test_mm.
# This may be replaced when dependencies are built.
