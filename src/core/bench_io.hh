/**
 * @file
 * Machine-readable bench output. Every bench main wraps its run in a
 * BenchOutput: plain-text tables keep printing as before, and when
 * `--json <file>` (or CONTIG_JSON_OUT) is given the same tables are
 * also written as one JSON document of schema
 *
 *   { "bench": <name>, "config": {...}, "rows": [...], "metrics": {...} }
 *
 * where "rows" flattens every added Report (one object per table row,
 * tagged with its caption) and "metrics" is the global MetricRegistry
 * snapshot. The document carries "schema_version" (currently 4) and
 * a config.run object with the RunInfo reproducibility record (RNG
 * seeds, full KernelConfig knob sets). `--trace <file>` (or
 * CONTIG_TRACE_OUT) additionally enables event tracing and exports
 * the ring buffer on write() — Chrome trace_event JSON by default,
 * JSONL when the path ends in ".jsonl". `--trace-categories
 * fault,spot,...` (or CONTIG_TRACE_CATEGORIES) narrows what is
 * recorded. `--timeline <file>` (or CONTIG_TIMELINE_OUT) opens the
 * observatory TimelineSink: every StateSampler the run creates
 * streams delta-encoded JSONL snapshots there (see obs/observatory).
 *
 * `--lock-stats` (or CONTIG_LOCK_STATS=1) switches the lock-site
 * contention accounting on before any kernel exists: every
 * instrumented lock exports lock.<site>.* metrics, and the JSON
 * document gains a derived "scaling" section (per-worker busy time,
 * achieved speedup, serial fraction, per-shard replay load, top
 * contended lock sites). The section is also emitted without
 * --lock-stats whenever a run recorded parallel.* / xlat.shard*
 * accounting — it then simply omits the lock table.
 *
 * `--attrib` (or CONTIG_ATTRIB=1) switches the per-event cost
 * attribution on the same way: translation and fault kernels then
 * classify every event by outcome and contiguity class (see
 * obs/attribution), and the JSON document gains an "attribution"
 * section with per-class cycle histograms and sampled exemplars.
 * Off (the default) the hot paths carry a dead null-pointer branch
 * and the document is byte-identical to a run without the flag.
 */

#ifndef CONTIG_CORE_BENCH_IO_HH
#define CONTIG_CORE_BENCH_IO_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/report.hh"
#include "obs/metrics.hh"

namespace contig
{

class BenchOutput
{
  public:
    /**
     * @param bench short bench name ("fig07_native_contiguity")
     * @param argc/argv the main() arguments; recognized flags are
     *        consumed, unknown ones fatal() with a usage message.
     */
    BenchOutput(std::string bench, int argc = 0, char **argv = nullptr);

    /** Backstop: writes pending output if write() was not called. */
    ~BenchOutput();

    BenchOutput(const BenchOutput &) = delete;
    BenchOutput &operator=(const BenchOutput &) = delete;

    /** Record a run parameter for the "config" block. */
    void note(std::string_view key, std::string_view value);
    void note(std::string_view key, double value);
    void note(std::string_view key, std::uint64_t value);

    /** Add a finished table to the "rows" block (also for print()). */
    void add(const Report &rep);

    bool jsonEnabled() const { return !jsonPath_.empty(); }
    bool traceEnabled() const { return !tracePath_.empty(); }
    bool timelineEnabled() const { return !timelinePath_.empty(); }

    /**
     * Worker threads requested via `--threads N` (or CONTIG_THREADS);
     * 1 when absent. Benches that support concurrent runs pass this
     * to KernelConfig::threads / ParallelDriverConfig::threads;
     * single-threaded benches simply ignore it.
     */
    unsigned threads() const { return threads_; }

    /**
     * Replay shards requested via `--xlat-threads N` (or
     * CONTIG_XLAT_THREADS); 1 when absent. Translation benches pass
     * this to the ReplayEngine; 1 replays the access stream through
     * a single pipeline, instruction-identical to the unsharded
     * simulator.
     */
    unsigned xlatThreads() const { return xlatThreads_; }

    /**
     * Replay chunk size via `--xlat-chunk N` accesses (or
     * CONTIG_XLAT_CHUNK); 0 when absent — the AccessStream default.
     * Chunking never changes simulated results, only batching.
     */
    std::uint64_t xlatChunk() const { return xlatChunk_; }

    /**
     * True when `--no-simd` (or CONTIG_SIMD=0) forced the probe
     * kernels scalar. Purely a wall-clock knob: simulated results are
     * identical either way. The switch is applied process-wide
     * (simd::setForceScalar) before any simulator exists.
     */
    bool simdDisabled() const { return noSimd_; }

    /**
     * Physical-metadata shards via `--numa-shards N` (or
     * CONTIG_NUMA_SHARDS); 0 when absent. Benches that build kernels
     * pass this to KernelConfig::numaShards; 0/1 keeps the legacy
     * unsharded metadata.
     */
    unsigned numaShards() const { return numaShards_; }

    /**
     * Trace-frontend options (`--trace-in/--trace-out/--ckpt-in/`
     * `--ckpt-out` file prefixes and `--ckpt-at` chunk index, or the
     * CONTIG_CTRACE_IN / CONTIG_CTRACE_OUT / CONTIG_CKPT_IN /
     * CONTIG_CKPT_OUT / CONTIG_CKPT_AT environment fallbacks). Cross
     * validation happens at parse time: --ckpt-in/--ckpt-out need
     * --trace-in, --ckpt-out and --ckpt-at need each other, and
     * --trace-in/--trace-out are mutually exclusive. Translation
     * benches forward these into XlatReplayOpts.
     */
    const std::string &traceIn() const { return traceIn_; }
    const std::string &traceOut() const { return traceOut_; }
    const std::string &ckptIn() const { return ckptIn_; }
    const std::string &ckptOut() const { return ckptOut_; }
    std::uint64_t ckptAtChunk() const { return ckptAtChunk_; }

    /**
     * True when `--lock-stats` (or CONTIG_LOCK_STATS=1) switched the
     * contention accounting on. Benches never need to check this —
     * KernelConfig::normalized() picks the mode up from the
     * LockStatsRegistry — but tools displaying the run might.
     */
    bool lockStatsEnabled() const { return lockStats_; }

    /**
     * True when `--attrib` (or CONTIG_ATTRIB=1) switched the
     * cost-attribution accounting on. Kernels pick the mode up from
     * AttribRegistry::enabled(); benches only need this to decide
     * whether to build a ContigClassIndex for classification.
     */
    bool attribEnabled() const { return attrib_; }

    /** The bench JSON document schema ("schema_version"). */
    static constexpr int kSchemaVersion = 4;

    /** Write the JSON document and/or trace export, if configured. */
    void write();

  private:
    struct Note
    {
        std::string key;
        std::string str;
        double num = 0.0;
        bool isNum = false;
    };

    void parseArgs(int argc, char **argv);
    void writeScaling(JsonWriter &w) const;

    std::string bench_;
    std::string jsonPath_;
    std::string tracePath_;
    std::string timelinePath_;
    unsigned threads_ = 1;
    unsigned xlatThreads_ = 1;
    std::uint64_t xlatChunk_ = 0;
    bool noSimd_ = false;
    unsigned numaShards_ = 0;
    std::string traceIn_;
    std::string traceOut_;
    std::string ckptIn_;
    std::string ckptOut_;
    std::uint64_t ckptAtChunk_ = 0;
    bool lockStats_ = false;
    bool attrib_ = false;
    /** Live "lock." source over the LockStatsRegistry, bound for the
     *  run's lifetime when lock stats are on. */
    obs::MetricSource lockSource_;
    std::vector<Note> notes_;
    std::vector<Report> reports_;
    bool written_ = false;
};

} // namespace contig

#endif // CONTIG_CORE_BENCH_IO_HH
