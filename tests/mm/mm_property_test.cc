/**
 * Property-based tests over the memory manager: long random sequences
 * of process lifecycle operations (mmap, touch, fork, COW writes,
 * munmap, exit, file reads, cache drops) under every allocation
 * policy, checking global frame-accounting invariants after each
 * phase. Parameterized across policies and seeds.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/experiment.hh"

using namespace contig;

namespace
{

struct Params
{
    PolicyKind policy;
    std::uint64_t seed;
};

class MmPropertyTest : public ::testing::TestWithParam<Params>
{
};

/** Mapped data pages across all processes (from the page tables). */
std::uint64_t
mappedPages(Kernel &k)
{
    std::uint64_t total = 0;
    k.forEachProcess([&](Process &p) {
        p.pageTable().forEachLeaf([&](Vpn, const Mapping &m) {
            total += pagesInOrder(m.order);
        });
    });
    return total;
}

} // namespace

TEST_P(MmPropertyTest, RandomLifecyclePreservesAccounting)
{
    const auto param = GetParam();
    KernelConfig cfg = kernelConfigFor(param.policy);
    cfg.phys.bytesPerNode = 256ull << 20;
    cfg.phys.numNodes = 2;
    Kernel k(cfg, makePolicy(param.policy));
    Rng rng(param.seed);

    const std::uint64_t free0 = k.physMem().freePages();
    std::vector<Process *> procs;
    std::map<Process *, std::vector<Vma *>> vmas;

    for (int step = 0; step < 400; ++step) {
        const double roll = rng.uniform();
        if (procs.empty() || roll < 0.15) {
            procs.push_back(
                &k.createProcess("p" + std::to_string(step),
                                 rng.below(2)));
        } else if (roll < 0.45) {
            // mmap + touch a prefix of a new VMA.
            Process *p = procs[rng.below(procs.size())];
            const std::uint64_t bytes =
                (1 + rng.below(16)) * (kHugeSize / 2);
            Vma &vma = p->mmap(bytes);
            vmas[p].push_back(&vma);
            const std::uint64_t touch =
                kPageSize + rng.below(bytes - kPageSize);
            p->touchRange(vma.start(), touch);
        } else if (roll < 0.60) {
            // touch more of an existing VMA (random spot).
            Process *p = procs[rng.below(procs.size())];
            if (!vmas[p].empty()) {
                Vma *vma = vmas[p][rng.below(vmas[p].size())];
                p->touch(vma->start() +
                         (rng.below(vma->bytes()) & ~kPageMask));
            }
        } else if (roll < 0.70) {
            // munmap a random VMA.
            Process *p = procs[rng.below(procs.size())];
            if (!vmas[p].empty()) {
                std::size_t i = rng.below(vmas[p].size());
                p->munmap(*vmas[p][i]);
                vmas[p][i] = vmas[p].back();
                vmas[p].pop_back();
            }
        } else if (roll < 0.78 && procs.size() < 24) {
            // fork + COW write in the child.
            Process *p = procs[rng.below(procs.size())];
            Process &child =
                p->fork("c" + std::to_string(step));
            procs.push_back(&child);
            if (!vmas[p].empty()) {
                Vma *vma = vmas[p][0];
                child.touch(vma->start(), Access::Write);
            }
        } else if (roll < 0.88) {
            // file read traffic.
            File &f = k.createFile(64 + rng.below(256));
            k.readFile(f, 0, 1 + rng.below(f.sizePages() / 2));
        } else if (roll < 0.92) {
            k.dropCaches();
        } else if (procs.size() > 1) {
            // exit a random process (forked children keep their
            // own COW references).
            std::size_t i = rng.below(procs.size());
            Process *p = procs[i];
            vmas.erase(p);
            k.exitProcess(*p);
            procs[i] = procs.back();
            procs.pop_back();
        }

        if (step % 50 == 0) {
            // Accounting invariant: free + (something mapped or
            // cached or pooled) == initial free; mapped pages are
            // never more than what left the allocator.
            const std::uint64_t free_now = k.physMem().freePages();
            ASSERT_LE(free_now, free0);
            ASSERT_GE(mappedPages(k), 0u);
            for (unsigned n = 0; n < k.physMem().numNodes(); ++n) {
                ASSERT_TRUE(
                    k.physMem().zone(n).buddy().checkInvariants())
                    << "step " << step;
                ASSERT_TRUE(
                    k.physMem().zone(n).contigMap().checkInvariants())
                    << "step " << step;
            }
        }
    }

    // Full teardown returns every data page.
    while (!procs.empty()) {
        k.exitProcess(*procs.back());
        procs.pop_back();
    }
    k.dropCaches();
    EXPECT_EQ(k.physMem().freePages(), free0 - k.kernelPoolPages());
    for (unsigned n = 0; n < k.physMem().numNodes(); ++n)
        EXPECT_TRUE(k.physMem().zone(n).buddy().checkInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    PolicySweep, MmPropertyTest,
    ::testing::Values(Params{PolicyKind::Thp, 1},
                      Params{PolicyKind::Thp, 2},
                      Params{PolicyKind::Base4k, 3},
                      Params{PolicyKind::Ca, 4},
                      Params{PolicyKind::Ca, 5},
                      Params{PolicyKind::Ingens, 6},
                      Params{PolicyKind::Ranger, 7},
                      Params{PolicyKind::Ideal, 8}),
    [](const ::testing::TestParamInfo<Params> &info) {
        return policyName(info.param.policy) + "_seed" +
               std::to_string(info.param.seed);
    });
