file(REMOVE_RECURSE
  "CMakeFiles/test_tlb.dir/tlb/tlb_test.cc.o"
  "CMakeFiles/test_tlb.dir/tlb/tlb_test.cc.o.d"
  "CMakeFiles/test_tlb.dir/tlb/translation_sim_test.cc.o"
  "CMakeFiles/test_tlb.dir/tlb/translation_sim_test.cc.o.d"
  "CMakeFiles/test_tlb.dir/tlb/walker_test.cc.o"
  "CMakeFiles/test_tlb.dir/tlb/walker_test.cc.o.d"
  "test_tlb"
  "test_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
