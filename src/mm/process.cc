#include "mm/process.hh"

#include "base/logging.hh"
#include "mm/kernel.hh"

namespace contig
{

Process::Process(Kernel &kernel, std::uint32_t pid, std::string name,
                 NodeId home_node)
    : kernel_(kernel), pid_(pid), name_(std::move(name)),
      homeNode_(home_node),
      as_([this] { return kernel_.allocKernelFrame(homeNode_); },
          [this](Pfn pfn) { kernel_.freeKernelFrame(pfn); },
          kernel.config().pageTableLevels)
{
}

Vma &
Process::mmap(std::uint64_t bytes)
{
    return kernel_.mmapAnon(*this, bytes);
}

Vma &
Process::mmapFile(std::uint32_t file_id, std::uint64_t bytes,
                  std::uint64_t file_offset_pages)
{
    return kernel_.mmapFile(*this, file_id, bytes, file_offset_pages);
}

void
Process::munmap(Vma &vma)
{
    kernel_.munmap(*this, vma);
}

void
Process::touch(Gva gva, Access access)
{
    kernel_.touch(*this, gva, access);
}

void
Process::touchRange(Gva gva, std::uint64_t bytes, Access access)
{
    FaultRequest span;
    span.proc = this;
    span.vpn = gva.pageNumber();
    // Every page whose base lies below gva + bytes is touched.
    span.pages = ((gva.value + bytes + kPageMask) >> kPageShift) - span.vpn;
    span.access = access;
    kernel_.faultEngine().handleRange(span, TouchNote::AllPages);
}

void
Process::noteTouched(Vma &vma, Vpn vpn)
{
    const std::uint64_t idx = vpn - vma.start().pageNumber();
    if (vma.touchedBitmap.empty())
        vma.touchedBitmap.resize(vma.pages(), false);
    if (!vma.touchedBitmap[idx]) {
        vma.touchedBitmap[idx] = true;
        ++vma.touchedPages;
    }
}

Process &
Process::fork(const std::string &child_name)
{
    Process &child = kernel_.createProcess(child_name, homeNode_);
    kernel_.forkInto(*this, child);
    return child;
}

std::uint64_t
Process::touchedPages() const
{
    std::uint64_t total = 0;
    as_.forEachVma([&](const Vma &vma) { total += vma.touchedPages; });
    return total;
}

std::uint64_t
Process::allocatedPages() const
{
    std::uint64_t total = 0;
    as_.forEachVma([&](const Vma &vma) { total += vma.allocatedPages; });
    return total;
}

} // namespace contig
