/**
 * @file
 * Extension experiment: reservation-based CA paging (the paper's
 * §III-D future work). Two processes fault their big VMAs slowly and
 * interleaved — the racing scenario reservations are meant to shield.
 * Plain CA paging relies only on the next-fit rover to keep the
 * placements apart; with many interleaved competitors the runway of a
 * slowly-faulting VMA can still be stolen. Reservations make the
 * placement claim explicit.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"
#include "policies/ca_reserve.hh"

using namespace contig;

namespace
{

struct Outcome
{
    std::uint64_t slowVmaMappings = 0;
    double slowVmaCov1 = 0.0;
};

/**
 * The racing scenario reservations shield against: process A's big
 * VMA faults its first page, then stalls (a slow loader thread)
 * while five aggressive processes fill most of the machine. By the
 * time A faults the rest, its runway is the largest remaining free
 * region — and without reservations some competitor's placement has
 * landed in it.
 */
Outcome
race(bool reserve)
{
    KernelConfig cfg = kernelConfigFor(PolicyKind::Ca);
    std::unique_ptr<AllocationPolicy> pol;
    if (reserve)
        pol = std::make_unique<CaReservePolicy>();
    else
        pol = std::make_unique<CaPagingPolicy>();
    Kernel k(cfg, std::move(pol));

    Process &slow = k.createProcess("slow");
    Vma &sv = slow.mmap(96ull << 20);
    slow.touch(sv.start()); // placement decision; then the thread stalls

    // Five aggressive processes fill ~1.6 GiB of the 2 GiB machine.
    std::vector<Process *> fast;
    std::vector<Vma *> fvmas;
    for (int i = 0; i < 5; ++i) {
        fast.push_back(&k.createProcess("fast" + std::to_string(i)));
        fvmas.push_back(&fast[i]->mmap(320ull << 20));
    }
    const std::uint64_t chunk = 8ull << 20;
    for (std::uint64_t off = 0; off < (320ull << 20); off += chunk)
        for (int i = 0; i < 5; ++i)
            fast[i]->touchRange(fvmas[i]->start() + off, chunk);

    // The slow process wakes up and faults the rest of its VMA.
    slow.touchRange(sv.start(), sv.bytes());

    auto segs = extractSegs(slow.pageTable());
    Outcome out;
    out.slowVmaMappings = segs.size();
    out.slowVmaCov1 = coverageTopK(segs, 1);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("ext_reservation", argc, argv);

    Outcome plain = race(false);
    Outcome reserved = race(true);

    Report rep("Extension — reservation shields a slow-faulting VMA "
               "from placement racing");
    rep.header({"variant", "slow VMA mappings",
                "largest-mapping coverage"});
    rep.row({"CA (best-effort, paper)",
             std::to_string(plain.slowVmaMappings),
             Report::pct(plain.slowVmaCov1)});
    rep.row({"CA + reservation (ext.)",
             std::to_string(reserved.slowVmaMappings),
             Report::pct(reserved.slowVmaCov1)});
    out.add(rep);
    rep.print();

    std::printf("\nexpected: best-effort CA loses the stalled VMA's "
                "runway to the aggressors' placements once memory "
                "tightens; the reservation keeps it whole (1 mapping)\n");
    out.write();
    return 0;
}
