#include <gtest/gtest.h>

#include "mm/address_space.hh"

using namespace contig;

TEST(AddressSpace, MmapAssignsHugeAlignedBases)
{
    AddressSpace as;
    Vma &a = as.mmap(10 << 20);
    Vma &b = as.mmap(4 << 10);
    EXPECT_EQ(a.start().value % kHugeSize, 0u);
    EXPECT_EQ(b.start().value % kHugeSize, 0u);
    EXPECT_GE(b.start().value, a.end().value);
}

TEST(AddressSpace, MmapRoundsUpToPage)
{
    AddressSpace as;
    Vma &a = as.mmap(100);
    EXPECT_EQ(a.bytes(), kPageSize);
    EXPECT_EQ(a.pages(), 1u);
}

TEST(AddressSpace, FindVma)
{
    AddressSpace as;
    Vma &a = as.mmap(1 << 20);
    EXPECT_EQ(as.findVma(a.start()), &a);
    EXPECT_EQ(as.findVma(a.start() + (1 << 20) - 1), &a);
    EXPECT_EQ(as.findVma(a.end()), nullptr);
    EXPECT_EQ(as.findVma(Gva{0}), nullptr);
}

TEST(AddressSpace, ExplicitBase)
{
    AddressSpace as;
    Gva base{0x7000000000};
    Vma &a = as.mmap(1 << 20, VmaKind::Anon, base);
    EXPECT_EQ(a.start(), base);
}

TEST(AddressSpace, MunmapRemoves)
{
    AddressSpace as;
    Vma &a = as.mmap(1 << 20);
    Gva start = a.start();
    as.munmap(a);
    EXPECT_EQ(as.findVma(start), nullptr);
    EXPECT_EQ(as.vmaCount(), 0u);
}

TEST(Vma, CoversAligned)
{
    AddressSpace as;
    Vma &a = as.mmap(kHugeSize); // exactly one huge region, huge-aligned
    Vpn start = a.start().pageNumber();
    EXPECT_TRUE(a.coversAligned(start, kHugeOrder));
    EXPECT_TRUE(a.coversAligned(start + 511, kHugeOrder));
    EXPECT_FALSE(a.coversAligned(start + 512, kHugeOrder));

    Vma &b = as.mmap(kHugeSize / 2); // too small for a huge fault
    EXPECT_FALSE(b.coversAligned(b.start().pageNumber(), kHugeOrder));
}

TEST(Vma, CaOffsetFifoCapped)
{
    AddressSpace as;
    Vma &a = as.mmap(1 << 20);
    for (std::uint64_t i = 0; i < kMaxCaOffsets + 10; ++i)
        a.pushCaOffset(i * 100, static_cast<std::int64_t>(i));
    EXPECT_EQ(a.caOffsetCount(), kMaxCaOffsets);
    // The oldest 10 entries were evicted: nearest to vpn=0 is now the
    // entry with origin 10*100.
    auto off = a.nearestCaOffset(0);
    ASSERT_TRUE(off);
    EXPECT_EQ(off->offsetPages, 10);
}

TEST(Vma, NearestCaOffsetPicksClosest)
{
    AddressSpace as;
    Vma &a = as.mmap(1 << 20);
    a.pushCaOffset(100, 1);
    a.pushCaOffset(500, 2);
    a.pushCaOffset(900, 3);
    EXPECT_EQ(a.nearestCaOffset(120)->offsetPages, 1);
    EXPECT_EQ(a.nearestCaOffset(480)->offsetPages, 2);
    EXPECT_EQ(a.nearestCaOffset(5000)->offsetPages, 3);
}

TEST(Vma, ReplacementGuard)
{
    AddressSpace as;
    Vma &a = as.mmap(1 << 20);
    EXPECT_TRUE(a.tryBeginReplacement());
    EXPECT_FALSE(a.tryBeginReplacement()); // second "thread" loses
    a.endReplacement();
    EXPECT_TRUE(a.tryBeginReplacement());
    a.endReplacement();
}
