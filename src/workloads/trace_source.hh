/**
 * @file
 * Decoupled trace-replay frontend (the Scarab fetch-buffer shape): a
 * producer thread decodes .ctrace chunks *ahead* of the replay
 * shards, handing them to the consumer through a bounded SPSC ring of
 * decoded chunk buffers. While the replay engine's shards chew on
 * chunk k, the producer is already decompressing k+1..k+depth — on a
 * replay-bound run the decode cost disappears from the critical path
 * entirely.
 *
 * Handoff protocol (chunk granularity, mutex + condvars — the ring
 * turns over a few hundred times per second, not per access):
 *  - producer: wait for a free slot, decode into it *outside* the
 *    lock (the slot at `head` is invisible to the consumer until
 *    head advances), publish by advancing head;
 *  - consumer (next()): release the previously delivered slot, wait
 *    for head > tail or EOF, deliver the slot at tail. The delivered
 *    buffer stays valid until the following next() call, matching
 *    the AccessSource contract.
 *
 * Resume support: Options::startChunk makes the producer begin at
 *   chunk K; produced() starts at the trace position of chunk K so
 *   samplers and progress accounting stay consistent.
 *
 * Frontend observability: a "trace" metric source exports
 * trace.frontend.* counters (chunks/accesses/bytes decoded, decode
 * busy time, producer stall on a full ring, consumer wait on an
 * empty ring, ring depth) — these feed BenchOutput's scaling
 * section. All counters are wall-clock/plumbing only and excluded
 * from golden equivalence.
 */

#ifndef CONTIG_WORKLOADS_TRACE_SOURCE_HH
#define CONTIG_WORKLOADS_TRACE_SOURCE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "workloads/access_source.hh"
#include "workloads/ctrace.hh"

namespace contig
{

struct TraceSourceOptions
{
    /** First chunk to deliver (checkpoint resume). */
    std::uint64_t startChunk = 0;
    /** Decoded chunks buffered ahead of the consumer. */
    unsigned ringDepth = 4;
};

class TraceReplaySource : public AccessSource
{
  public:
    using Options = TraceSourceOptions;

    explicit TraceReplaySource(const std::string &path,
                               Options opt = {});
    ~TraceReplaySource() override;

    TraceReplaySource(const TraceReplaySource &) = delete;
    TraceReplaySource &operator=(const TraceReplaySource &) = delete;

    std::size_t next(const MemAccess *&chunk) override;

    std::uint64_t produced() const override { return produced_; }
    std::uint64_t total() const override
    { return reader_.totalAccesses(); }
    std::uint64_t chunkAccesses() const override
    { return reader_.chunkAccesses(); }

    const CtraceReader &reader() const { return reader_; }
    std::uint64_t startChunk() const { return startChunk_; }
    /** Chunks handed to the consumer so far. */
    std::uint64_t chunksDelivered() const { return chunksDelivered_; }

  private:
    struct Slot
    {
        std::vector<MemAccess> buf;
        std::size_t n = 0;
    };

    void producerLoop();

    CtraceReader reader_;
    std::uint64_t startChunk_;
    std::uint64_t produced_ = 0;
    std::uint64_t chunksDelivered_ = 0;

    std::vector<Slot> ring_;
    std::mutex m_;
    std::condition_variable canProduce_;
    std::condition_variable canConsume_;
    /** Chunks published / consumed since startChunk (guarded by m_). */
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
    /** Consumer still reading ring_[tail_ % depth] from the last
     *  next(); the slot is released on the following call. */
    bool holding_ = false;
    bool eof_ = false;
    bool stop_ = false;

    /** Frontend accounting (producer writes, metric source reads). */
    std::atomic<std::uint64_t> chunksDecoded_{0};
    std::atomic<std::uint64_t> accessesDecoded_{0};
    std::atomic<std::uint64_t> bytesDecoded_{0};
    std::atomic<std::uint64_t> decodeNs_{0};
    std::atomic<std::uint64_t> producerStallNs_{0};
    std::atomic<std::uint64_t> consumerWaitNs_{0};

    obs::MetricSource metricSource_;
    std::thread producer_;
};

} // namespace contig

#endif // CONTIG_WORKLOADS_TRACE_SOURCE_HH
