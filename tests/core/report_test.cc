#include <gtest/gtest.h>

#include "base/json.hh"
#include "core/report.hh"

using namespace contig;

TEST(Report, NumFormatting)
{
    EXPECT_EQ(Report::num(3.14159, 2), "3.14");
    EXPECT_EQ(Report::num(3.14159, 0), "3");
    EXPECT_EQ(Report::num(-1.5, 1), "-1.5");
}

TEST(Report, PctFormatting)
{
    EXPECT_EQ(Report::pct(0.5), "50.0%");
    EXPECT_EQ(Report::pct(0.1234, 2), "12.34%");
    EXPECT_EQ(Report::pct(1.0, 0), "100%");
}

TEST(Report, BytesFormatting)
{
    EXPECT_EQ(Report::bytes(512), "0.5KiB");
    EXPECT_EQ(Report::bytes(5ull << 20), "5.0MiB");
    EXPECT_EQ(Report::bytes(3ull << 30), "3.00GiB");
}

TEST(Report, PrintDoesNotCrash)
{
    Report rep("test table");
    rep.header({"a", "longer column"});
    rep.row({"1", "2"});
    rep.row({"wide cell value", "3"});
    rep.row({"short"});
    ::testing::internal::CaptureStdout();
    rep.print();
    std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("test table"), std::string::npos);
    EXPECT_NE(out.find("wide cell value"), std::string::npos);
}

TEST(Report, ToJsonRowsWithTypedCells)
{
    Report rep("Fig. X — demo");
    rep.header({"workload", "cov32", "maps", "size"});
    rep.row({"svm", "87.3%", "27", "1.5GiB"});
    rep.row({"geomean", "90.0%", "31.5", "2.0GiB"});

    JsonWriter w;
    w.beginArray();
    rep.toJson(w);
    w.endArray();
    ASSERT_TRUE(w.complete());
    const std::string out = w.str();

    // Caption tags every row; percentages become fractions, plain
    // numbers become numbers, sizes stay strings.
    EXPECT_NE(out.find("\"table\":\"Fig. X — demo\""), std::string::npos);
    EXPECT_NE(out.find("\"workload\":\"svm\""), std::string::npos);
    EXPECT_NE(out.find("\"cov32\":0.873"), std::string::npos);
    EXPECT_NE(out.find("\"maps\":27"), std::string::npos);
    EXPECT_NE(out.find("\"size\":\"1.5GiB\""), std::string::npos);
    EXPECT_NE(out.find("\"maps\":31.5"), std::string::npos);
}

TEST(Report, ToJsonEmptyTable)
{
    Report rep("empty");
    rep.header({"a"});
    JsonWriter w;
    w.beginArray();
    rep.toJson(w);
    w.endArray();
    EXPECT_EQ(w.str(), "[]");
}

TEST(Report, AccessorsExposeTable)
{
    Report rep("cap");
    rep.header({"a", "b"});
    rep.row({"1", "2"});
    EXPECT_EQ(rep.caption(), "cap");
    ASSERT_EQ(rep.columns().size(), 2u);
    EXPECT_EQ(rep.columns()[1], "b");
    ASSERT_EQ(rep.rows().size(), 1u);
    EXPECT_EQ(rep.rows()[0][0], "1");
}
