#include <gtest/gtest.h>

#include "spot/spot.hh"

using namespace contig;

namespace
{

constexpr Addr kPc = 0x400040;
constexpr Addr kPc2 = 0x400080;

SpotConfig
smallConfig()
{
    SpotConfig cfg;
    cfg.sets = 2;
    cfg.ways = 2;
    return cfg;
}

/** Drive one miss through the engine: predict then verify. */
SpotOutcome
miss(SpotEngine &e, Addr pc, std::int64_t offset, bool bits = true)
{
    e.predict(pc);
    return e.update(pc, offset, bits);
}

} // namespace

TEST(Spot, ColdTableGivesNoPrediction)
{
    SpotEngine e(smallConfig());
    EXPECT_EQ(miss(e, kPc, 100), SpotOutcome::NoPrediction);
    EXPECT_EQ(e.stats().fills, 1u);
}

TEST(Spot, ConfidenceGatesSpeculation)
{
    SpotEngine e(smallConfig());
    // Fill (conf=1): still no speculation on the next miss.
    EXPECT_EQ(miss(e, kPc, 100), SpotOutcome::NoPrediction);
    // conf 1 -> matches -> conf 2, but the *prediction* for this miss
    // was made while conf was 1: no speculation yet.
    EXPECT_EQ(miss(e, kPc, 100), SpotOutcome::NoPrediction);
    // conf is now 2 (> threshold): speculate, and correctly.
    EXPECT_EQ(miss(e, kPc, 100), SpotOutcome::Correct);
    EXPECT_EQ(miss(e, kPc, 100), SpotOutcome::Correct);
}

TEST(Spot, MispredictionOnOffsetChange)
{
    SpotEngine e(smallConfig());
    miss(e, kPc, 100);
    miss(e, kPc, 100);
    EXPECT_EQ(miss(e, kPc, 100), SpotOutcome::Correct); // conf 3 (sat)
    // The mapping changes: the engine keeps speculating the stale
    // offset until confidence drains.
    EXPECT_EQ(miss(e, kPc, 200), SpotOutcome::Mispredicted); // conf 2
    EXPECT_EQ(miss(e, kPc, 200), SpotOutcome::Mispredicted); // conf 1
    EXPECT_EQ(miss(e, kPc, 200), SpotOutcome::NoPrediction); // conf 0->replace
    EXPECT_EQ(miss(e, kPc, 200), SpotOutcome::NoPrediction); // conf 1
    EXPECT_EQ(miss(e, kPc, 200), SpotOutcome::Correct);      // conf 2
}

TEST(Spot, OffsetReplacedOnlyAtZeroConfidence)
{
    SpotEngine e(smallConfig());
    miss(e, kPc, 100);
    miss(e, kPc, 100); // conf 2
    miss(e, kPc, 999); // conf 1, offset still 100
    // A return to the original offset rebuilds confidence without a
    // replacement.
    miss(e, kPc, 100); // conf 2
    EXPECT_EQ(miss(e, kPc, 100), SpotOutcome::Correct);
    EXPECT_EQ(e.stats().offsetReplacements, 0u);
}

TEST(Spot, ContigBitGateBlocksFills)
{
    SpotEngine e(smallConfig());
    // Misses whose PTEs lack the contiguity bits never enter the
    // table (the thrash filter of §IV-C).
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(miss(e, kPc, 100, false), SpotOutcome::NoPrediction);
    EXPECT_EQ(e.stats().fills, 0u);
    EXPECT_EQ(e.stats().fillsBlockedByBits, 5u);
    // Once marked, the fill happens.
    miss(e, kPc, 100, true);
    EXPECT_EQ(e.stats().fills, 1u);
}

TEST(Spot, GateDisabledAllowsAllFills)
{
    SpotConfig cfg = smallConfig();
    cfg.requireContigBits = false;
    SpotEngine e(cfg);
    miss(e, kPc, 100, false);
    EXPECT_EQ(e.stats().fills, 1u);
}

TEST(Spot, ConfidentEntriesResistEviction)
{
    // One set, one way: a confident entry cannot be displaced by a
    // different PC until its confidence drains.
    SpotConfig cfg;
    cfg.sets = 1;
    cfg.ways = 1;
    SpotEngine e(cfg);
    miss(e, kPc, 100);
    miss(e, kPc, 100); // conf 2
    // Another PC misses repeatedly: fills are dropped.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(miss(e, kPc2, 555), SpotOutcome::NoPrediction);
    // The original entry still predicts.
    EXPECT_EQ(miss(e, kPc, 100), SpotOutcome::Correct);
}

TEST(Spot, IndependentPcsTrackIndependentOffsets)
{
    SpotEngine e; // default 8x4
    for (int i = 0; i < 3; ++i) {
        miss(e, kPc, 100);
        miss(e, kPc2, 200);
    }
    EXPECT_EQ(miss(e, kPc, 100), SpotOutcome::Correct);
    EXPECT_EQ(miss(e, kPc2, 200), SpotOutcome::Correct);
}

TEST(Spot, FlushForgetsEverything)
{
    SpotEngine e(smallConfig());
    miss(e, kPc, 100);
    miss(e, kPc, 100);
    e.flush();
    EXPECT_EQ(miss(e, kPc, 100), SpotOutcome::NoPrediction);
}

TEST(Spot, StatsAddUp)
{
    SpotEngine e(smallConfig());
    for (int i = 0; i < 10; ++i)
        miss(e, kPc, 100);
    miss(e, kPc, 300);
    const auto &s = e.stats();
    EXPECT_EQ(s.correct + s.mispredicted + s.noPrediction, 11u);
    EXPECT_EQ(s.lookups, 11u);
}
