# Empty dependencies file for micro_fault_scaling.
# This may be replaced when dependencies are built.
