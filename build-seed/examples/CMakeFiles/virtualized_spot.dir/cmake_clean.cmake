file(REMOVE_RECURSE
  "CMakeFiles/virtualized_spot.dir/virtualized_spot.cpp.o"
  "CMakeFiles/virtualized_spot.dir/virtualized_spot.cpp.o.d"
  "virtualized_spot"
  "virtualized_spot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtualized_spot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
