/**
 * @file
 * Ideal paging — the paper's contiguity upper bound: an offline
 * best-fit assignment of each VMA onto the free-cluster state as it
 * stands when the VMA is created, before any of its pages are
 * touched. Faults then follow the assigned Offset exactly like CA
 * paging (with best-fit sub-placements on failure).
 */

#ifndef CONTIG_POLICIES_IDEAL_HH
#define CONTIG_POLICIES_IDEAL_HH

#include <optional>

#include "phys/contiguity_map.hh"
#include "policies/ca_paging.hh"

namespace contig
{

class IdealPolicy : public CaPagingPolicy
{
  public:
    IdealPolicy() = default;

    std::string name() const override { return "ideal"; }

    /** Offline placement: assign the VMA a region at creation time. */
    void onMmap(Kernel &kernel, Process &proc, Vma &vma) override;

  private:
    /** Best-fit placement over all zones' contiguity maps. */
    std::optional<Cluster> bestFitAnywhere(Kernel &kernel, NodeId home,
                                           std::uint64_t req_pages) const;
};

} // namespace contig

#endif // CONTIG_POLICIES_IDEAL_HH
