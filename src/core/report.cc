#include "core/report.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "base/json.hh"
#include "core/config.hh"

namespace contig
{

namespace
{

/**
 * Write a table cell with its natural JSON type: plain numbers as
 * numbers, "12.3%" percentages as their fraction, everything else
 * (names, "1.2GiB" sizes) as strings.
 */
void
writeCell(JsonWriter &w, const std::string &cell)
{
    if (!cell.empty()) {
        errno = 0;
        char *end = nullptr;
        const double v = std::strtod(cell.c_str(), &end);
        if (errno == 0 && end != cell.c_str()) {
            if (*end == '\0') {
                w.value(v);
                return;
            }
            if (end[0] == '%' && end[1] == '\0') {
                w.value(v / 100.0);
                return;
            }
        }
    }
    w.value(cell);
}

} // namespace

void
Report::toJson(JsonWriter &w) const
{
    for (const auto &r : rows_) {
        w.beginObject();
        w.key("table");
        w.value(caption_);
        for (std::size_t c = 0; c < r.size() && c < columns_.size();
             ++c) {
            w.key(columns_[c]);
            writeCell(w, r[c]);
        }
        w.endObject();
    }
}

void
Report::print() const
{
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c)
        widths[c] = columns_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    std::printf("\n== %s ==\n", caption_.c_str());
    for (std::size_t c = 0; c < columns_.size(); ++c)
        std::printf("%-*s  ", static_cast<int>(widths[c]),
                    columns_[c].c_str());
    std::printf("\n");
    for (std::size_t c = 0; c < columns_.size(); ++c)
        std::printf("%s  ", std::string(widths[c], '-').c_str());
    std::printf("\n");
    for (const auto &r : rows_) {
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
            std::printf("%-*s  ", static_cast<int>(widths[c]),
                        r[c].c_str());
        std::printf("\n");
    }
    std::fflush(stdout);
}

std::string
Report::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Report::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

std::string
Report::bytes(std::uint64_t b)
{
    char buf[64];
    if (b >= (1ull << 30))
        std::snprintf(buf, sizeof(buf), "%.2fGiB",
                      static_cast<double>(b) / (1ull << 30));
    else if (b >= (1ull << 20))
        std::snprintf(buf, sizeof(buf), "%.1fMiB",
                      static_cast<double>(b) / (1ull << 20));
    else
        std::snprintf(buf, sizeof(buf), "%.1fKiB",
                      static_cast<double>(b) / (1ull << 10));
    return buf;
}

void
printScaledBanner()
{
    const auto tlb = ScaledDefaults::tlb();
    std::printf(
        "scaled machine: %u nodes x %s host, %u x %s guest | "
        "TLB L1-4K %ue / L1-2M %ue / L2 %ue | SpOT %ux%u | "
        "range TLB %ue (paper config / ~64, ratios preserved)\n",
        ScaledDefaults::kHostNodes,
        Report::bytes(ScaledDefaults::kHostNodeBytes).c_str(),
        ScaledDefaults::kGuestNodes,
        Report::bytes(ScaledDefaults::kGuestNodeBytes).c_str(),
        tlb.l1_4k.sets * tlb.l1_4k.ways, tlb.l1_2m.sets * tlb.l1_2m.ways,
        tlb.l2.sets * tlb.l2.ways, ScaledDefaults::spot().sets,
        ScaledDefaults::spot().ways, ScaledDefaults::rangeTlb().entries);
    std::fflush(stdout);
}

} // namespace contig
