/**
 * @file
 * Page migration: relocate a mapped leaf onto a chosen free frame.
 * This is the primitive behind the post-allocation baselines —
 * Translation Ranger's defragmentation and Ingens' huge-page
 * promotion — and carries their modelled costs (copy cycles and TLB
 * shootdowns), which Fig. 11 reports as runtime overhead.
 */

#ifndef CONTIG_MM_MIGRATE_HH
#define CONTIG_MM_MIGRATE_HH

#include "base/types.hh"

namespace contig
{

class Kernel;
class Process;

/** Why a migration attempt did not happen. */
enum class MigrateResult : std::uint8_t
{
    Done,          //!< page moved
    AlreadyThere,  //!< leaf already at the destination
    DestBusy,      //!< destination frames not free
    Shared,        //!< frame shared (COW/page cache); not movable here
    NotMapped,     //!< no leaf at that vpn
};

/**
 * Move the leaf covering `vpn` in `proc` to the frame `dest_pfn`
 * (same order as the existing leaf; dest must be order-aligned).
 * On success the old block returns to the buddy allocator. Costs are
 * charged to kernel counters: "migrate.pages", "migrate.shootdowns",
 * "migrate.cycles".
 */
MigrateResult migrateLeaf(Kernel &kernel, Process &proc, Vpn vpn,
                          Pfn dest_pfn);

/**
 * Exchange the leaf covering `vpn` in `proc` with the anonymous leaf
 * of the same order currently occupying `dest_pfn` (possibly in a
 * different process) — the exchange_pages() primitive Translation
 * Ranger uses to defragment through occupied memory. Costs are
 * charged like two migrations.
 */
MigrateResult swapLeaves(Kernel &kernel, Process &proc, Vpn vpn,
                         Pfn dest_pfn);

/**
 * Promote 512 base mappings covering the huge-aligned region at
 * `huge_vpn` into one 2 MiB leaf on a freshly allocated huge frame
 * (Ingens-style promotion). All 512 leaves must be present 4 KiB
 * anon mappings. Returns false (and changes nothing) otherwise.
 * Costs are charged to "promote.pages" / "promote.cycles".
 */
bool promoteHuge(Kernel &kernel, Process &proc, Vpn huge_vpn);

} // namespace contig

#endif // CONTIG_MM_MIGRATE_HH
