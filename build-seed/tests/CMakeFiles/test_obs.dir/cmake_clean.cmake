file(REMOVE_RECURSE
  "CMakeFiles/test_obs.dir/obs/metrics_test.cc.o"
  "CMakeFiles/test_obs.dir/obs/metrics_test.cc.o.d"
  "CMakeFiles/test_obs.dir/obs/observatory_test.cc.o"
  "CMakeFiles/test_obs.dir/obs/observatory_test.cc.o.d"
  "CMakeFiles/test_obs.dir/obs/trace_test.cc.o"
  "CMakeFiles/test_obs.dir/obs/trace_test.cc.o.d"
  "test_obs"
  "test_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
