#include <gtest/gtest.h>

#include <vector>

#include "mm/page_table.hh"

using namespace contig;

TEST(PageTable, EmptyLookupFails)
{
    PageTable pt;
    EXPECT_FALSE(pt.lookup(0x1234));
}

TEST(PageTable, MapLookup4k)
{
    PageTable pt;
    pt.map(100, 7, 0);
    auto m = pt.lookup(100);
    ASSERT_TRUE(m);
    EXPECT_EQ(m->pfn, 7u);
    EXPECT_EQ(m->order, 0u);
    EXPECT_FALSE(pt.lookup(101));
    EXPECT_FALSE(pt.lookup(99));
}

TEST(PageTable, MapLookupHuge)
{
    PageTable pt;
    const Vpn base = 5 * 512;
    pt.map(base, 1024, kHugeOrder);
    // Every vpn inside the huge region resolves to the same leaf.
    for (Vpn v = base; v < base + 512; v += 37) {
        auto m = pt.lookup(v);
        ASSERT_TRUE(m);
        EXPECT_EQ(m->pfn, 1024u);
        EXPECT_EQ(m->order, kHugeOrder);
    }
    EXPECT_FALSE(pt.lookup(base + 512));
}

TEST(PageTable, UnmapRemoves)
{
    PageTable pt;
    pt.map(42, 43, 0);
    pt.unmap(42, 0);
    EXPECT_FALSE(pt.lookup(42));
    EXPECT_EQ(pt.stats().mappedBasePages, 0u);
}

TEST(PageTable, Walk4kTouchesFourLevels)
{
    PageTable pt;
    pt.map(0x123456, 99, 0);
    WalkTrace t;
    pt.walk(0x123456, t);
    EXPECT_TRUE(t.hit);
    EXPECT_EQ(t.nodeFrames.size(), 4u);
    EXPECT_EQ(t.mapping.pfn, 99u);
}

TEST(PageTable, WalkHugeTouchesThreeLevels)
{
    PageTable pt;
    pt.map(512, 512, kHugeOrder);
    WalkTrace t;
    pt.walk(512 + 17, t);
    EXPECT_TRUE(t.hit);
    EXPECT_EQ(t.nodeFrames.size(), 3u);
}

TEST(PageTable, WalkMissRecordsPartialTrace)
{
    PageTable pt;
    pt.map(0, 1, 0); // builds the path for low vpns
    WalkTrace t;
    pt.walk(3, t); // same L1 node, missing slot
    EXPECT_FALSE(t.hit);
    EXPECT_EQ(t.nodeFrames.size(), 4u);
    // A vpn far away misses at the root.
    pt.walk(Vpn{1} << 35, t);
    EXPECT_FALSE(t.hit);
    EXPECT_EQ(t.nodeFrames.size(), 1u);
}

TEST(PageTable, ContigBit)
{
    PageTable pt;
    pt.map(10, 20, 0);
    EXPECT_FALSE(pt.lookup(10)->contigBit);
    pt.setContigBit(10, true);
    EXPECT_TRUE(pt.lookup(10)->contigBit);
    pt.setContigBit(10, false);
    EXPECT_FALSE(pt.lookup(10)->contigBit);
}

TEST(PageTable, CowBits)
{
    PageTable pt;
    pt.map(10, 20, 0, true, false);
    pt.setWritable(10, false, true);
    auto m = pt.lookup(10);
    EXPECT_FALSE(m->writable);
    EXPECT_TRUE(m->cow);
}

TEST(PageTable, ForEachLeafAscending)
{
    PageTable pt;
    pt.map(1000, 1, 0);
    pt.map(512 * 9, 512, kHugeOrder); // vpn 4608 (aligned)
    pt.map(5, 2, 0);
    std::vector<Vpn> seen;
    pt.forEachLeaf([&](Vpn v, const Mapping &) { seen.push_back(v); });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], 5u);
    EXPECT_EQ(seen[1], 1000u);
    EXPECT_EQ(seen[2], 512u * 9);
}

TEST(PageTable, NodeAllocatorUsed)
{
    Pfn next = 1000;
    std::vector<Pfn> freed;
    {
        PageTable pt([&] { return next++; },
                     [&](Pfn p) { freed.push_back(p); });
        pt.map(0x1, 5, 0);
        pt.map(Vpn{1} << 30, 6, 0);
        EXPECT_GE(pt.stats().nodesAllocated, 4u);
        EXPECT_EQ(pt.rootFrame(), 1000u);
    }
    // All node frames returned on destruction.
    EXPECT_EQ(freed.size(), next - 1000);
}

TEST(PageTable, HighVpnsSupported)
{
    PageTable pt;
    const Vpn high = (Vpn{1} << 36) - 512; // top of the 48-bit space
    pt.map(high, 512, kHugeOrder);
    auto m = pt.lookup(high + 11);
    ASSERT_TRUE(m);
    EXPECT_EQ(m->pfn, 512u);
}
