#include <gtest/gtest.h>

#include "base/rng.hh"
#include "core/config.hh"
#include "mm/kernel.hh"
#include "tlb/translation_sim.hh"

using namespace contig;

namespace
{

struct SimTest : public ::testing::Test
{
    SimTest()
        : kernel(
              [] {
                  KernelConfig cfg;
                  cfg.phys.bytesPerNode = 256ull << 20;
                  cfg.phys.numNodes = 1;
                  return cfg;
              }(),
              std::make_unique<DefaultThpPolicy>()),
          proc(kernel.createProcess("t"))
    {
        vma = &proc.mmap(64 * kHugeSize);
        proc.touchRange(vma->start(), vma->bytes());
    }

    XlatConfig
    config(XlatScheme scheme)
    {
        XlatConfig cfg;
        cfg.tlb = ScaledDefaults::tlb();
        cfg.walker = ScaledDefaults::walker();
        cfg.scheme = scheme;
        cfg.spot = ScaledDefaults::spot();
        cfg.rangeTlb = ScaledDefaults::rangeTlb();
        return cfg;
    }

    Kernel kernel;
    Process &proc;
    Vma *vma = nullptr;
};

} // namespace

TEST_F(SimTest, RepeatAccessHitsTlb)
{
    TranslationSim sim(config(XlatScheme::Base), proc.pageTable());
    MemAccess a{0x400000, vma->start()};
    sim.access(a);
    EXPECT_EQ(sim.stats().walks, 1u);
    for (int i = 0; i < 100; ++i)
        sim.access(a);
    EXPECT_EQ(sim.stats().walks, 1u);
    EXPECT_EQ(sim.stats().l1Hits, 100u);
}

TEST_F(SimTest, ThrashForcesWalks)
{
    TranslationSim sim(config(XlatScheme::Base), proc.pageTable());
    // Round-robin over 64 huge pages >> 24-entry L2: mostly misses.
    for (int round = 0; round < 10; ++round)
        for (std::uint64_t h = 0; h < 64; ++h)
            sim.access({0x400000, vma->start() + h * kHugeSize});
    EXPECT_GT(sim.stats().walks, 300u);
    EXPECT_GT(sim.stats().exposedCycles, 0u);
    EXPECT_EQ(sim.stats().exposedCycles, sim.stats().walkCycles);
}

TEST_F(SimTest, SpotHidesStableOffsets)
{
    TranslationSim sim(config(XlatScheme::Spot), proc.pageTable());
    // Mark the mapping so fills are allowed (native: guest bit only).
    for (Vpn v = vma->start().pageNumber();
         v < vma->start().pageNumber() + vma->pages(); v += 512)
        proc.pageTable().setContigBit(v, true);

    for (int round = 0; round < 20; ++round)
        for (std::uint64_t h = 0; h < 64; ++h)
            sim.access({0x400000, vma->start() + h * kHugeSize});
    const auto &s = sim.stats();
    EXPECT_GT(s.spotCorrect, s.walks / 2);
    EXPECT_LT(s.exposedCycles, s.walkCycles / 2);
}

TEST_F(SimTest, SpotWithoutMarksNeverFills)
{
    TranslationSim sim(config(XlatScheme::Spot), proc.pageTable());
    for (int round = 0; round < 10; ++round)
        for (std::uint64_t h = 0; h < 64; ++h)
            sim.access({0x400000, vma->start() + h * kHugeSize});
    EXPECT_EQ(sim.stats().spotCorrect, 0u);
    EXPECT_EQ(sim.stats().spotNoPrediction, sim.stats().walks);
}

TEST_F(SimTest, RmmHitsEraseExposedCost)
{
    TranslationSim sim(config(XlatScheme::Rmm), proc.pageTable());
    sim.setSegments(extractSegs(proc.pageTable()));
    for (int round = 0; round < 10; ++round)
        for (std::uint64_t h = 0; h < 64; ++h)
            sim.access({0x400000, vma->start() + h * kHugeSize});
    // A single contiguous mapping: after the first refill every miss
    // hits the cached range.
    EXPECT_GT(sim.stats().rangeHits, sim.stats().walks - 5);
    EXPECT_LT(sim.stats().exposedCycles, sim.stats().walkCycles / 10);
}

TEST_F(SimTest, DsSkipsTranslationEntirely)
{
    TranslationSim sim(config(XlatScheme::Ds), proc.pageTable());
    sim.setSegments(extractSegs(proc.pageTable()));
    for (std::uint64_t h = 0; h < 64; ++h)
        sim.access({0x400000, vma->start() + h * kHugeSize});
    EXPECT_EQ(sim.stats().walks, 0u);
    EXPECT_EQ(sim.stats().segmentHits, 64u);
}

TEST_F(SimTest, DsMergesAdjacentSegments)
{
    // Two VMAs that are virtually adjacent after merge logic: feed
    // synthetic segments and check both are covered.
    TranslationSim sim(config(XlatScheme::Ds), proc.pageTable());
    std::vector<Seg> segs{Seg{100, 5000, 50}, Seg{150, 9000, 50},
                          Seg{400, 1000, 10}};
    sim.setSegments(std::move(segs));
    sim.access({1, Gva{120 << kPageShift}});
    sim.access({1, Gva{180 << kPageShift}});
    sim.access({1, Gva{405 << kPageShift}});
    EXPECT_EQ(sim.stats().segmentHits, 3u);
}

TEST_F(SimTest, AccessCountsAreConsistent)
{
    TranslationSim sim(config(XlatScheme::Base), proc.pageTable());
    Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
        sim.access({0x400000, vma->start() +
                                  (rng.below(vma->bytes()) & ~7ull)});
    }
    const auto &s = sim.stats();
    EXPECT_EQ(s.accesses, 5000u);
    EXPECT_EQ(s.l1Hits + s.l2Hits + s.walks, s.accesses);
}
