#include <gtest/gtest.h>

#include "tlb/tlb.hh"

using namespace contig;

TEST(Tlb, HitAfterFill)
{
    Tlb tlb({4, 4}, 0);
    EXPECT_FALSE(tlb.lookup(100));
    tlb.fill(100);
    EXPECT_TRUE(tlb.lookup(100));
    EXPECT_FALSE(tlb.lookup(101));
}

TEST(Tlb, HugeTagging)
{
    Tlb tlb({2, 4}, kHugeOrder);
    tlb.fill(512 * 5 + 13); // anywhere inside huge page 5
    // Every vpn in the same huge page hits.
    EXPECT_TRUE(tlb.lookup(512 * 5));
    EXPECT_TRUE(tlb.lookup(512 * 5 + 511));
    EXPECT_FALSE(tlb.lookup(512 * 6));
}

TEST(Tlb, LruEvictionWithinSet)
{
    Tlb tlb({1, 2}, 0); // one set, two ways
    tlb.fill(1);
    tlb.fill(2);
    EXPECT_TRUE(tlb.lookup(1)); // 1 is now MRU
    tlb.fill(3);                // evicts 2 (LRU)
    EXPECT_TRUE(tlb.probe(1));
    EXPECT_FALSE(tlb.probe(2));
    EXPECT_TRUE(tlb.probe(3));
    EXPECT_EQ(tlb.stats().evictions, 1u);
}

TEST(Tlb, SetIndexingSeparatesConflicts)
{
    Tlb tlb({2, 1}, 0); // two sets, one way
    tlb.fill(0);        // set 0
    tlb.fill(1);        // set 1
    EXPECT_TRUE(tlb.probe(0));
    EXPECT_TRUE(tlb.probe(1));
    tlb.fill(2); // set 0 again: evicts 0
    EXPECT_FALSE(tlb.probe(0));
    EXPECT_TRUE(tlb.probe(2));
}

TEST(Tlb, RefillingPresentEntryDoesNotEvict)
{
    Tlb tlb({1, 2}, 0);
    tlb.fill(1);
    tlb.fill(2);
    tlb.fill(1); // already present
    EXPECT_TRUE(tlb.probe(2));
    EXPECT_EQ(tlb.stats().evictions, 0u);
}

TEST(Tlb, FlushEmptiesEverything)
{
    Tlb tlb({4, 4}, 0);
    for (Vpn v = 0; v < 16; ++v)
        tlb.fill(v);
    tlb.flush();
    for (Vpn v = 0; v < 16; ++v)
        EXPECT_FALSE(tlb.probe(v));
}

TEST(Tlb, NonPowerOfTwoSetCountIsFatal)
{
    // The set index is computed with a mask (tag & (sets - 1)), which
    // silently aliases sets for non-power-of-two geometries; the
    // constructor must reject them loudly instead.
    EXPECT_DEATH(Tlb({3, 4}, 0), "power of two");
    EXPECT_DEATH(Tlb({12, 2}, kHugeOrder), "power of two");
}

TEST(Tlb, PowerOfTwoSetCountsUseEverySet)
{
    // All power-of-two geometries are accepted, and the mask indexing
    // spreads consecutive tags across all sets.
    for (unsigned sets : {1u, 2u, 8u, 64u}) {
        Tlb tlb({sets, 1}, 0);
        for (Vpn v = 0; v < sets; ++v)
            tlb.fill(v);
        for (Vpn v = 0; v < sets; ++v)
            EXPECT_TRUE(tlb.probe(v)) << sets << " sets, vpn " << v;
    }
}

TEST(TlbHierarchy, OddUnifiedL2WayCountIsFatal)
{
    // The unified L2 splits its way budget evenly across the two page
    // sizes; an odd way count would silently drop a way (and the SoA
    // lane layout assumes the halves are equal). Reject it loudly.
    TlbHierConfig cfg;
    cfg.l2 = {2, 5};
    EXPECT_DEATH(TlbHierarchy{cfg}, "even");
}

TEST(TlbHierarchy, L1ThenL2ThenMiss)
{
    TlbHierarchy h;
    EXPECT_EQ(h.access(1000, 0), TlbLevel::Miss);
    h.fill(1000, 0);
    EXPECT_EQ(h.access(1000, 0), TlbLevel::L1);
    EXPECT_EQ(h.l2Misses(), 1u);
}

TEST(TlbHierarchy, L2PromotesToL1)
{
    TlbHierConfig cfg;
    cfg.l1_4k = {1, 1}; // single-entry L1
    cfg.l2 = {4, 6};
    TlbHierarchy h(cfg);
    h.fill(1, 0);
    h.fill(2, 0); // evicts 1 from the tiny L1; L2 still holds it
    EXPECT_EQ(h.access(1, 0), TlbLevel::L2);
    EXPECT_EQ(h.access(1, 0), TlbLevel::L1); // promoted
}

TEST(TlbHierarchy, PageSizesUseSeparateL1)
{
    TlbHierarchy h;
    h.fill(512 * 3, kHugeOrder);
    EXPECT_EQ(h.access(512 * 3 + 7, kHugeOrder), TlbLevel::L1);
    // The same vpn probed as a 4 KiB page misses (different array).
    EXPECT_EQ(h.access(512 * 3 + 7, 0), TlbLevel::Miss);
}

TEST(TlbHierarchy, ReachLimitsCoverage)
{
    // Working set of 2x the L2 entries: steady-state misses.
    TlbHierarchy h;
    const unsigned entries = 64;
    for (int round = 0; round < 4; ++round) {
        for (Vpn v = 0; v < entries; ++v) {
            if (h.access(v * 512, kHugeOrder) == TlbLevel::Miss)
                h.fill(v * 512, kHugeOrder);
        }
    }
    // Far more misses than the number of distinct pages: thrash.
    EXPECT_GT(h.l2Misses(), entries);
}
