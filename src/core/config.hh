/**
 * @file
 * Canonical scaled experiment constants (DESIGN.md, "Scaling rules").
 * The paper's 256 GiB 2-socket machine, 29-167 GiB workloads and
 * Broadwell TLBs scale down by ~x64 with all ratios preserved:
 * footprint/machine and footprint/TLB-reach match the paper's regime,
 * so miss behaviour (and therefore every reported *shape*) carries
 * over while runs finish in seconds.
 */

#ifndef CONTIG_CORE_CONFIG_HH
#define CONTIG_CORE_CONFIG_HH

#include "mm/kernel.hh"
#include "perfmodel/model.hh"
#include "tlb/translation_sim.hh"
#include "virt/vm.hh"

namespace contig
{

struct ScaledDefaults
{
    /** Host: 2 NUMA nodes x 1 GiB (paper: 2 x 128 GiB). */
    static constexpr std::uint64_t kHostNodeBytes = 1ull << 30;
    static constexpr unsigned kHostNodes = 2;

    /** Guest: 2 nodes x 768 MiB (paper VM: 2-socket, 256 GiB). */
    static constexpr std::uint64_t kGuestNodeBytes = 768ull << 20;
    static constexpr unsigned kGuestNodes = 2;

    /** Eager paging raises MAX_ORDER so the buddy tracks 1 GiB blocks. */
    static constexpr unsigned kEagerMaxOrder = 18;

    static KernelConfig
    hostKernel()
    {
        KernelConfig cfg;
        cfg.phys.bytesPerNode = kHostNodeBytes;
        cfg.phys.numNodes = kHostNodes;
        return cfg;
    }

    static VmConfig
    vm()
    {
        VmConfig cfg;
        cfg.guestBytesPerNode = kGuestNodeBytes;
        cfg.guestNodes = kGuestNodes;
        return cfg;
    }

    /**
     * Scaled TLBs (paper, Table II, /64):
     * L1 4K 16-entry 4-way, L1 2M 8-entry 4-way, L2 24-entry 6-way.
     */
    static TlbHierConfig
    tlb()
    {
        TlbHierConfig cfg;
        cfg.l1_4k = {4, 4};
        cfg.l1_2m = {2, 4};
        cfg.l2 = {4, 6};
        return cfg;
    }

    static WalkerConfig
    walker()
    {
        WalkerConfig cfg;
        cfg.cyclesPerRef = 18;
        cfg.pscEntries = 16;
        cfg.nestedTlbEntries = 16;
        return cfg;
    }

    /** SpOT prediction table (Table II): 32 entries, 4-way. */
    static SpotConfig
    spot()
    {
        SpotConfig cfg;
        cfg.sets = 8;
        cfg.ways = 4;
        cfg.flushPenaltyCycles = 20;
        return cfg;
    }

    /** vRMM range TLB (Table II): 32 entries, fully associative. */
    static RangeTlbConfig
    rangeTlb()
    {
        return RangeTlbConfig{32};
    }

    static PerfModelConfig perf() { return PerfModelConfig{}; }

    /** Steady-state accesses simulated per translation run. */
    static constexpr std::uint64_t kAccessesPerRun = 2'000'000;
};

} // namespace contig

#endif // CONTIG_CORE_CONFIG_HH
