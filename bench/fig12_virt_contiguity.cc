/**
 * @file
 * Reproduces Fig. 12: contiguity of the full 2-D (gVA -> hPA)
 * mappings in virtualized execution, with the policy applied in
 * guest and host independently and workloads running consecutively
 * in one VM (no reboots) — so guest/host mapping mismatches
 * accumulate as the paper describes.
 * Expected shape: CA cuts mappings-for-99% by roughly an order of
 * magnitude vs THP; 32-mapping coverage slightly below native CA.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"

using namespace contig;

namespace
{

struct Row
{
    CoverageMetrics avg;
};

std::vector<Row>
measure(PolicyKind kind)
{
    VirtSystem sys(kind, kind, 7);
    std::vector<Row> rows;
    for (const auto &name : paperWorkloads()) {
        auto wl = makeWorkload(name, {1.0, 7});
        auto r = sys.run(*wl);
        rows.push_back(Row{r.avg});
        sys.finish(*wl);
    }
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("fig12_virt_contiguity", argc, argv);

    const std::vector<PolicyKind> kinds{PolicyKind::Thp, PolicyKind::Ca};
    Report rep("Fig. 12 — virtualized 2-D contiguity, consecutive "
               "runs in one VM (time-averaged)");
    rep.header({"workload", "policy", "cov32", "cov128",
                "maps-for-99%"});

    for (PolicyKind kind : kinds) {
        auto rows = measure(kind);
        std::vector<double> c32, c128, m99;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto &m = rows[i].avg;
            rep.row({paperWorkloads()[i], policyName(kind),
                     Report::pct(m.cov32), Report::pct(m.cov128),
                     std::to_string(m.mappingsFor99)});
            c32.push_back(std::max(m.cov32, 1e-6));
            c128.push_back(std::max(m.cov128, 1e-6));
            m99.push_back(static_cast<double>(
                std::max<std::uint64_t>(m.mappingsFor99, 1)));
        }
        rep.row({"geomean", policyName(kind),
                 Report::pct(geomean(c32)), Report::pct(geomean(c128)),
                 Report::num(geomean(m99), 1)});
    }
    out.add(rep);
    rep.print();

    std::printf("\npaper: CA ~86%%/~96%% coverage with 32/128 "
                "mappings, ~90 mappings for 99%% (vs thousands "
                "for THP)\n");
    out.write();
    return 0;
}
