#include "base/stats.hh"

#include <cmath>

namespace contig
{

double
Percentiles::quantile(double q)
{
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    // Clamp out-of-range q (NaN included) instead of indexing out of
    // bounds.
    if (std::isnan(q) || q <= 0.0)
        return samples_.front();
    if (q >= 1.0)
        return samples_.back();
    const double idx = q * static_cast<double>(samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const double frac = idx - static_cast<double>(lo);
    if (lo + 1 >= samples_.size())
        return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void
Log2Histogram::add(std::uint64_t value, std::uint64_t weight)
{
    unsigned b = 0;
    while ((std::uint64_t{1} << (b + 1)) <= value && b < 63)
        ++b;
    if (buckets_.size() <= b)
        buckets_.resize(b + 1, 0);
    buckets_[b] += weight;
    total_ += weight;
}

std::uint64_t
Log2Histogram::bucket(unsigned i) const
{
    return i < buckets_.size() ? buckets_[i] : 0;
}

double
Log2Histogram::percentile(double q) const
{
    if (total_ == 0)
        return 0.0;
    if (std::isnan(q) || q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const double target = q * static_cast<double>(total_);
    double cum = 0.0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        if (buckets_[b] == 0)
            continue;
        const double w = static_cast<double>(buckets_[b]);
        const double lo =
            b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << b);
        const double hi = static_cast<double>(std::uint64_t{1} << (b + 1));
        if (target <= cum + w) {
            const double frac = w > 0.0 ? (target - cum) / w : 0.0;
            return lo + (frac < 0.0 ? 0.0 : frac) * (hi - lo);
        }
        cum += w;
    }
    // q == 1 lands here: the upper edge of the last occupied bucket.
    for (std::size_t b = buckets_.size(); b-- > 0;)
        if (buckets_[b] != 0)
            return static_cast<double>(std::uint64_t{1} << (b + 1));
    return 0.0;
}

void
Log2Histogram::mergeFrom(const Log2Histogram &other)
{
    if (buckets_.size() < other.buckets_.size())
        buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    total_ += other.total_;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += std::log(v);
    return std::exp(acc / values.size());
}

} // namespace contig
