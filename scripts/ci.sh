#!/usr/bin/env bash
# CI entry point: build Release and ASan+UBSan configurations and run
# the full test suite on both. Usage: scripts/ci.sh [build-root]
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$root/build-ci}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

build_and_test() {
    local name="$1"
    shift
    echo "=== [$name] configure ==="
    cmake -S "$root" -B "$out/$name" "$@"
    echo "=== [$name] build ==="
    cmake --build "$out/$name" -j "$jobs"
    echo "=== [$name] ctest ==="
    ctest --test-dir "$out/$name" --output-on-failure
}

build_and_test release -DCMAKE_BUILD_TYPE=Release
build_and_test asan-ubsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCONTIG_SANITIZE=ON

echo "CI: all configurations green"
