# Empty dependencies file for fig12_virt_contiguity.
# This may be replaced when dependencies are built.
