/**
 * @file
 * Reservation-based CA paging — the extension the paper defers to
 * future work (§III-D): "Under severe memory pressure, different
 * processes or VMAs may end up competing for the same scarce
 * contiguous physical blocks. To shield contiguity, CA paging could
 * employ reservation."
 *
 * This policy keeps CA paging's mechanisms unchanged but registers
 * every placement as a soft reservation [start, start + request):
 * later placement decisions (other VMAs, other processes, files)
 * skip reserved space, so a slowly-faulting VMA cannot have its
 * runway stolen. Reservations are soft — the buddy allocator will
 * still hand reserved frames to non-CA (fallback/kernel) allocations
 * under pressure — and are dropped at munmap.
 */

#ifndef CONTIG_POLICIES_CA_RESERVE_HH
#define CONTIG_POLICIES_CA_RESERVE_HH

#include <map>
#include <vector>

#include "base/sync.hh"
#include "policies/ca_paging.hh"

namespace contig
{

struct CaReserveStats
{
    std::uint64_t reservationsMade = 0;
    std::uint64_t reservationsReleased = 0;
    std::uint64_t placementsDeflected = 0; //!< steered off reserved space
};

class CaReservePolicy : public CaPagingPolicy
{
  public:
    explicit CaReservePolicy(const CaPagingConfig &cfg = {});

    std::string name() const override { return "ca-reserve"; }

    void onMunmap(Kernel &kernel, Process &proc, Vma &vma) override;

    const CaReserveStats &reserveStats() const { return rstats_; }

    /** Pages currently under reservation (tests). */
    std::uint64_t reservedPages() const;

  protected:
    /**
     * Reservation-aware placement: next-fit over the free clusters
     * minus other owners' reserved intervals, then reserve the chosen
     * region for `owner`. Overrides every CA placement (first fault,
     * sub-VMA re-placements, files).
     */
    AllocResult place(Kernel &kernel, NodeId home,
                      std::uint64_t req_pages, unsigned order,
                      std::uint64_t owner) override;

  private:
    struct Reservation
    {
        Pfn start;
        std::uint64_t pages;
    };

    bool overlapsReservation(Pfn start, std::uint64_t pages,
                             std::uint64_t ignore_owner) const;

    /** Active reservations keyed by owner (VMA id / file sentinel). */
    std::multimap<std::uint64_t, Reservation> reservations_;
    Pfn rover_ = 0;
    CaReserveStats rstats_;
    /**
     * Serializes reservation-table and rover updates: place() runs on
     * concurrent fault workers while onMunmap() drops reservations.
     */
    mutable SpinLock reserveLock_;
};

} // namespace contig

#endif // CONTIG_POLICIES_CA_RESERVE_HH
