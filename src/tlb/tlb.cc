#include "tlb/tlb.hh"

#include "base/logging.hh"
#include "obs/metrics.hh"
#include "base/serialize.hh"

namespace contig
{

namespace
{

/** Largest power of two <= n (n >= 1). */
unsigned
prevPow2(unsigned n)
{
    unsigned p = 1;
    while (p * 2 <= n)
        p *= 2;
    return p;
}

} // namespace

Tlb::Tlb(const TlbConfig &cfg, unsigned page_order)
    : cfg_(cfg), pageOrder_(page_order),
      entries_(cfg.sets * cfg.ways)
{
    contig_assert(cfg.sets > 0 && cfg.ways > 0, "degenerate TLB");
    // The set index is tag & (sets - 1): a non-power-of-two set count
    // would silently alias sets together. Configs are user input, so
    // reject them cleanly rather than assert.
    if ((cfg.sets & (cfg.sets - 1)) != 0)
        fatal("TLB set count must be a power of two, got %u "
              "(round to %u or %u)",
              cfg.sets, prevPow2(cfg.sets), prevPow2(cfg.sets) * 2);
}

Vpn
Tlb::tagOf(Vpn vpn) const
{
    return vpn >> pageOrder_;
}

unsigned
Tlb::setOf(Vpn vpn) const
{
    return static_cast<unsigned>(tagOf(vpn) & (cfg_.sets - 1));
}

bool
Tlb::lookup(Vpn vpn)
{
    ++stats_.lookups;
    const Vpn tag = tagOf(vpn);
    Entry *base = &entries_[setOf(vpn) * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lastUse = ++clock_;
            ++stats_.hits;
            return true;
        }
    }
    return false;
}

bool
Tlb::probe(Vpn vpn) const
{
    const Vpn tag = tagOf(vpn);
    const Entry *base = &entries_[setOf(vpn) * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Tlb::fill(Vpn vpn)
{
    ++stats_.fills;
    const Vpn tag = tagOf(vpn);
    Entry *base = &entries_[setOf(vpn) * cfg_.ways];
    Entry *victim = nullptr;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == tag) {
            e.lastUse = ++clock_; // refill of a present entry
            return;
        }
        if (!e.valid) {
            if (!victim || victim->valid)
                victim = &e;
        } else if (!victim || (victim->valid &&
                               e.lastUse < victim->lastUse)) {
            victim = &e;
        }
    }
    if (victim->valid)
        ++stats_.evictions;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = ++clock_;
}

void
Tlb::flush()
{
    for (auto &e : entries_)
        e.valid = false;
}

TlbHierarchy::TlbHierarchy(const TlbHierConfig &cfg)
    : l1_4k_(cfg.l1_4k, 0), l1_2m_(cfg.l1_2m, kHugeOrder),
      l2_4k_({cfg.l2.sets, (cfg.l2.ways + 1) / 2}, 0),
      l2_2m_({cfg.l2.sets, (cfg.l2.ways + 1) / 2}, kHugeOrder)
{
}

TlbLevel
TlbHierarchy::access(Vpn vpn, unsigned order)
{
    ++accesses_;
    Tlb &l1 = (order == kHugeOrder) ? l1_2m_ : l1_4k_;
    if (l1.lookup(vpn))
        return TlbLevel::L1;
    Tlb &l2 = (order == kHugeOrder) ? l2_2m_ : l2_4k_;
    if (l2.lookup(vpn)) {
        l1.fill(vpn); // promote to L1
        return TlbLevel::L2;
    }
    ++l2Misses_;
    return TlbLevel::Miss;
}

void
TlbHierarchy::fill(Vpn vpn, unsigned order)
{
    Tlb &l1 = (order == kHugeOrder) ? l1_2m_ : l1_4k_;
    Tlb &l2 = (order == kHugeOrder) ? l2_2m_ : l2_4k_;
    l1.fill(vpn);
    l2.fill(vpn);
}

void
TlbHierarchy::flush()
{
    l1_4k_.flush();
    l1_2m_.flush();
    l2_4k_.flush();
    l2_2m_.flush();
}

void
Tlb::collectMetrics(obs::MetricSink &sink) const
{
    sink.counter("lookups", stats_.lookups);
    sink.counter("hits", stats_.hits);
    sink.counter("fills", stats_.fills);
    sink.counter("evictions", stats_.evictions);
}

void
TlbHierarchy::collectMetrics(obs::MetricSink &sink) const
{
    {
        obs::MetricSink::Scope s(sink, "l1_4k");
        l1_4k_.collectMetrics(sink);
    }
    {
        obs::MetricSink::Scope s(sink, "l1_2m");
        l1_2m_.collectMetrics(sink);
    }
    {
        obs::MetricSink::Scope s(sink, "l2_4k");
        l2_4k_.collectMetrics(sink);
    }
    {
        obs::MetricSink::Scope s(sink, "l2_2m");
        l2_2m_.collectMetrics(sink);
    }
    sink.counter("accesses", accesses_);
    sink.counter("l2_misses", l2Misses_);
}


void
Tlb::saveState(Serializer &s) const
{
    const std::size_t sec = s.beginSection(sectionTag('T', 'L', 'B', ' '));
    s.u32(cfg_.sets);
    s.u32(cfg_.ways);
    s.u32(pageOrder_);
    s.u64(clock_);
    s.u64(stats_.lookups);
    s.u64(stats_.hits);
    s.u64(stats_.fills);
    s.u64(stats_.evictions);
    s.u64(entries_.size());
    for (const Entry &e : entries_) {
        s.u64(e.tag);
        s.boolean(e.valid);
        s.u64(e.lastUse);
    }
    s.endSection(sec);
}

void
Tlb::restoreState(Deserializer &d)
{
    d.expectSection(sectionTag('T', 'L', 'B', ' '), "tlb");
    const unsigned sets = d.u32();
    const unsigned ways = d.u32();
    const unsigned order = d.u32();
    if (sets != cfg_.sets || ways != cfg_.ways || order != pageOrder_)
        fatal("checkpoint TLB geometry mismatch: file has %ux%u order"
              " %u, this run has %ux%u order %u",
              sets, ways, order, cfg_.sets, cfg_.ways, pageOrder_);
    clock_ = d.u64();
    stats_.lookups = d.u64();
    stats_.hits = d.u64();
    stats_.fills = d.u64();
    stats_.evictions = d.u64();
    const std::uint64_t n = d.u64();
    if (n != entries_.size())
        fatal("checkpoint TLB entry count mismatch: %llu vs %zu",
              static_cast<unsigned long long>(n), entries_.size());
    for (Entry &e : entries_) {
        e.tag = d.u64();
        e.valid = d.boolean();
        e.lastUse = d.u64();
    }
}

void
TlbHierarchy::saveState(Serializer &s) const
{
    const std::size_t sec = s.beginSection(sectionTag('T', 'L', 'B', 'H'));
    s.u64(accesses_);
    s.u64(l2Misses_);
    l1_4k_.saveState(s);
    l1_2m_.saveState(s);
    l2_4k_.saveState(s);
    l2_2m_.saveState(s);
    s.endSection(sec);
}

void
TlbHierarchy::restoreState(Deserializer &d)
{
    d.expectSection(sectionTag('T', 'L', 'B', 'H'), "tlb_hierarchy");
    accesses_ = d.u64();
    l2Misses_ = d.u64();
    l1_4k_.restoreState(d);
    l1_2m_.restoreState(d);
    l2_4k_.restoreState(d);
    l2_2m_.restoreState(d);
}

} // namespace contig
