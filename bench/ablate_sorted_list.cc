/**
 * @file
 * Ablation: the sorted MAX_ORDER free list (paper §III-C,
 * "fragmentation restraint"). With the top list sorted by physical
 * address, fallback 4 KiB allocations carve from the lowest block
 * instead of scattering across random blocks — so the free-block
 * size distribution stays coarse after churny executions.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"
#include "policies/ca_paging.hh"

using namespace contig;

namespace
{

/** Fraction of free memory left in blocks >= 64 MiB after churn. */
double
bigFreeFraction(bool sorted_top)
{
    KernelConfig cfg = kernelConfigFor(PolicyKind::Ca);
    cfg.phys.zone.sortedTopList = sorted_top;
    cfg.phys.zone.scrambleSeed = sorted_top ? 0 : 0xBEEF;
    Kernel k(cfg, std::make_unique<CaPagingPolicy>());
    PhysicalMemory &pm = k.physMem();

    // Kernel-style churn on the non-CA fallback path: bursts of
    // direct order-0 buddy allocations (slabs, network buffers) of
    // which a fraction stays pinned long-term. This is exactly the
    // traffic the sorted MAX_ORDER list is meant to concentrate.
    Rng rng(7);
    std::vector<Pfn> pinned;
    for (int round = 0; round < 32; ++round) {
        // Allocation entropy between bursts (see systemChurn): an
        // aged machine's unsorted lists point somewhere new each
        // time; a sorted list is unaffected by definition.
        for (unsigned n = 0; n < pm.numNodes(); ++n)
            pm.zone(n).buddy().shuffleFreeLists(rng.next());
        std::vector<Pfn> burst;
        for (int i = 0; i < 4096; ++i) {
            if (auto pfn = pm.alloc(0, 0))
                burst.push_back(*pfn);
        }
        // ~3% of each burst becomes long-lived.
        for (std::size_t i = 0; i < burst.size(); ++i) {
            if (rng.chance(0.03))
                pinned.push_back(burst[i]);
            else
                pm.free(burst[i], 0);
        }
    }

    auto hist = freeBlockDistribution(pm);
    const double total = std::max<double>(hist.totalWeight(), 1);
    std::uint64_t big_pages = 0;
    for (unsigned b = 14; b < 40; ++b) // 2^14 pages = 64 MiB
        big_pages += hist.bucket(b);
    return big_pages / total;
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("ablate_sorted_list", argc, argv);

    double sorted = bigFreeFraction(true);
    double unsorted = bigFreeFraction(false);

    Report rep("Ablation — sorted MAX_ORDER free list "
               "(fragmentation restraint)");
    rep.header({"top-order list", "free memory in blocks >=64MiB"});
    rep.row({"sorted (CA paging)", Report::pct(sorted)});
    rep.row({"unsorted (stock)", Report::pct(unsorted)});
    out.add(rep);
    rep.print();

    std::printf("\nexpected: the sorted list concentrates small "
                "allocations, leaving a larger share of free memory "
                "in very large blocks\n");
    out.write();
    return 0;
}
