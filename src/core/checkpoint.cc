#include "core/checkpoint.hh"

#include <cstdio>

#include "base/logging.hh"
#include "base/serialize.hh"
#include "mm/kernel.hh"
#include "tlb/replay.hh"

namespace contig
{

namespace
{

constexpr std::uint32_t kMetaTag = sectionTag('M', 'E', 'T', 'A');
constexpr std::uint32_t kEngineTag = sectionTag('E', 'N', 'G', 'B');
constexpr std::uint32_t kKernelsTag = sectionTag('K', 'B', 'L', 'B');

} // namespace

void
Checkpoint::write(const std::string &path, const CkptMeta &meta,
                  const ReplayEngine &engine,
                  const std::vector<const Kernel *> &kernels)
{
    Serializer s;
    s.u32(kCkptMagic);
    s.u32(kCkptVersion);

    const std::size_t meta_sec = s.beginSection(kMetaTag);
    s.u64(meta.traceDigest);
    s.u64(meta.chunk);
    s.u64(meta.accesses);
    s.endSection(meta_sec);

    // The engine state is nested as an opaque byte blob so the outer
    // reader can hold it without a live engine (restore happens later,
    // against an engine built from the rerun workload setup).
    Serializer engine_s;
    engine.saveState(engine_s);
    const std::size_t engine_sec = s.beginSection(kEngineTag);
    s.u64(engine_s.size());
    s.bytes(engine_s.data().data(), engine_s.size());
    s.endSection(engine_sec);

    const std::size_t kernels_sec = s.beginSection(kKernelsTag);
    s.u64(kernels.size());
    for (const Kernel *k : kernels) {
        Serializer ks;
        k->saveState(ks);
        s.u64(ks.size());
        s.bytes(ks.data().data(), ks.size());
    }
    s.endSection(kernels_sec);

    s.u32(crc32(s.data().data(), s.size()));

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open checkpoint '%s' for writing", path.c_str());
    if (std::fwrite(s.data().data(), 1, s.size(), f) != s.size()) {
        std::fclose(f);
        fatal("short write to checkpoint '%s'", path.c_str());
    }
    if (std::fclose(f) != 0)
        fatal("error closing checkpoint '%s'", path.c_str());
}

Checkpoint::Checkpoint(const std::string &path)
    : path_(path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open checkpoint '%s'", path.c_str());
    std::vector<std::uint8_t> buf;
    std::uint8_t tmp[1 << 16];
    std::size_t n;
    while ((n = std::fread(tmp, 1, sizeof tmp, f)) > 0)
        buf.insert(buf.end(), tmp, tmp + n);
    std::fclose(f);

    if (buf.size() < 12)
        fatal("truncated checkpoint '%s': %zu bytes", path.c_str(),
              buf.size());
    const std::uint32_t stored_crc =
        static_cast<std::uint32_t>(buf[buf.size() - 4]) |
        static_cast<std::uint32_t>(buf[buf.size() - 3]) << 8 |
        static_cast<std::uint32_t>(buf[buf.size() - 2]) << 16 |
        static_cast<std::uint32_t>(buf[buf.size() - 1]) << 24;
    if (crc32(buf.data(), buf.size() - 4) != stored_crc)
        fatal("checkpoint '%s' CRC mismatch — the file is corrupt or "
              "truncated",
              path.c_str());

    Deserializer d(buf.data(), buf.size() - 4, "checkpoint");
    const std::uint32_t magic = d.u32();
    if (magic != kCkptMagic)
        fatal("'%s' is not a checkpoint file: bad magic 0x%08x",
              path.c_str(), magic);
    const std::uint32_t version = d.u32();
    if (version != kCkptVersion)
        fatal("checkpoint version mismatch in '%s': file is v%u, this "
              "build reads v%u",
              path.c_str(), version, kCkptVersion);

    d.expectSection(kMetaTag, "checkpoint meta");
    meta_.traceDigest = d.u64();
    meta_.chunk = d.u64();
    meta_.accesses = d.u64();

    d.expectSection(kEngineTag, "checkpoint engine state");
    engineBlob_.resize(d.u64());
    d.bytes(engineBlob_.data(), engineBlob_.size());

    d.expectSection(kKernelsTag, "checkpoint kernel state");
    kernelBlobs_.resize(d.u64());
    for (auto &blob : kernelBlobs_) {
        blob.resize(d.u64());
        d.bytes(blob.data(), blob.size());
    }
}

void
Checkpoint::restore(ReplayEngine &engine,
                    const std::vector<const Kernel *> &kernels) const
{
    if (kernels.size() != kernelBlobs_.size())
        fatal("checkpoint '%s' holds %zu kernel snapshots, this run has "
              "%zu kernels — the configurations do not match",
              path_.c_str(), kernelBlobs_.size(), kernels.size());
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        Serializer live;
        kernels[i]->saveState(live);
        if (live.data() != kernelBlobs_[i])
            fatal("checkpoint '%s': rebuilt state of kernel %zu (%s) "
                  "differs from the snapshot — the workload setup did "
                  "not reproduce the checkpointed run (different seed, "
                  "config or code version?)",
                  path_.c_str(), i,
                  kernels[i]->config().metricsPrefix.c_str());
    }
    Deserializer d(engineBlob_.data(), engineBlob_.size(),
                   "checkpoint engine state");
    engine.restoreState(d);
}

} // namespace contig
