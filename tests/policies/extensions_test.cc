/**
 * Tests for the extension policies (the paper's future-work items):
 * reservation-based CA paging, the CA+ranger combination, and
 * 5-level page tables.
 */

#include <gtest/gtest.h>

#include "contig/analysis.hh"
#include "core/experiment.hh"
#include "policies/ca_ranger.hh"
#include "policies/ca_reserve.hh"
#include "virt/vm.hh"

using namespace contig;

namespace
{

KernelConfig
smallConfig()
{
    KernelConfig cfg;
    cfg.phys.bytesPerNode = 256ull << 20;
    cfg.phys.numNodes = 2;
    cfg.tickPeriodFaults = 64;
    return cfg;
}

std::uint64_t
largestContiguousRun(const Process &proc)
{
    std::uint64_t best = 0;
    for (const Seg &s : extractSegs(proc.pageTable()))
        best = std::max(best, s.pages);
    return best;
}

} // namespace

TEST(CaReserve, BehavesLikeCaWhenAlone)
{
    Kernel k(smallConfig(), std::make_unique<CaReservePolicy>());
    Process &p = k.createProcess("t");
    Vma &vma = p.mmap(32 * kHugeSize);
    p.touchRange(vma.start(), vma.bytes());
    EXPECT_EQ(largestContiguousRun(p), 32u * 512);
}

TEST(CaReserve, ReservationRecordedAndReleased)
{
    auto pol = std::make_unique<CaReservePolicy>();
    auto *rp = pol.get();
    Kernel k(smallConfig(), std::move(pol));
    Process &p = k.createProcess("t");
    Vma &vma = p.mmap(16 * kHugeSize);
    p.touch(vma.start());
    EXPECT_EQ(rp->reserveStats().reservationsMade, 1u);
    EXPECT_GE(rp->reservedPages(), 16u * 512);
    p.munmap(vma);
    EXPECT_EQ(rp->reserveStats().reservationsReleased, 1u);
    EXPECT_EQ(rp->reservedPages(), 0u);
}

TEST(CaReserve, PlacementsAvoidOthersReservations)
{
    auto pol = std::make_unique<CaReservePolicy>();
    Kernel k(smallConfig(), std::move(pol));
    Process &a = k.createProcess("a");
    Process &b = k.createProcess("b");

    // a reserves a big runway by touching one page...
    Vma &va = a.mmap(64 * kHugeSize);
    a.touch(va.start());
    auto ma = a.pageTable().lookup(va.start().pageNumber());
    ASSERT_TRUE(ma);

    // ...b's placement must land entirely outside it.
    Vma &vb = b.mmap(32 * kHugeSize);
    b.touchRange(vb.start(), vb.bytes());
    b.addressSpace().forEachVma([&](Vma &) {});
    for (const Seg &s : extractSegs(b.pageTable())) {
        const bool overlap =
            s.pfn < ma->pfn + 64 * 512 && ma->pfn < s.pfn + s.pages;
        EXPECT_FALSE(overlap);
    }

    // a can still fill its whole runway contiguously.
    a.touchRange(va.start(), va.bytes());
    EXPECT_EQ(largestContiguousRun(a), 64u * 512);
}

TEST(CaReserve, SameVmaExtendsItsOwnReservation)
{
    Kernel k(smallConfig(), std::make_unique<CaReservePolicy>());
    Process &p = k.createProcess("t");
    Vma &vma = p.mmap(16 * kHugeSize);
    // Out-of-order touches within the reserved region still succeed.
    for (int i : {0, 7, 3, 15, 1, 9})
        p.touch(vma.start() + static_cast<std::uint64_t>(i) * kHugeSize);
    EXPECT_EQ(vma.caOffsetCount(), 1u);
}

TEST(CaRanger, NoMigrationsWhenCaSuffices)
{
    auto pol = std::make_unique<CaRangerPolicy>();
    Kernel k(smallConfig(), std::move(pol));
    Process &p = k.createProcess("t");
    Vma &vma = p.mmap(32 * kHugeSize);
    p.touchRange(vma.start(), vma.bytes());
    for (int i = 0; i < 16; ++i)
        k.policy().onTick(k);
    EXPECT_EQ(k.counters().get("migrate.pages"), 0u);
    EXPECT_EQ(largestContiguousRun(p), 32u * 512);
}

TEST(CaRanger, RepairsFragmentedVma)
{
    auto pol = std::make_unique<CaRangerPolicy>();
    auto *cp = pol.get();
    KernelConfig cfg = smallConfig();
    cfg.tickPeriodFaults = 1u << 30; // daemon off during setup
    Kernel k(cfg, std::move(pol));
    Process &p = k.createProcess("t");

    // Force fragmentation: occupy the frames right after a partial
    // mapping so CA must sub-place.
    Vma &vma = p.mmap(32 * kHugeSize);
    p.touchRange(vma.start(), 8 * kHugeSize);
    auto m = p.pageTable().lookup(vma.start().pageNumber());
    ASSERT_TRUE(m);
    ASSERT_TRUE(
        k.physMem().allocSpecific(m->pfn + 8 * 512, kHugeOrder));
    p.touchRange(vma.start() + 8 * kHugeSize, 24 * kHugeSize);
    ASSERT_LT(largestContiguousRun(p), 32u * 512);

    // The daemon detects the unhealthy VMA and repairs it.
    for (int i = 0; i < 32; ++i)
        k.policy().onTick(k);
    EXPECT_GT(cp->comboStats().vmasRepaired, 0u);
    EXPECT_EQ(largestContiguousRun(p), 32u * 512);
}

TEST(FiveLevel, PageTableDepthConfigurable)
{
    PageTable pt4(nullptr, nullptr, 4);
    PageTable pt5(nullptr, nullptr, 5);
    EXPECT_EQ(pt4.levels(), 4u);
    EXPECT_EQ(pt5.levels(), 5u);

    pt5.map(0x1234, 55, 0);
    WalkTrace t;
    pt5.walk(0x1234, t);
    EXPECT_TRUE(t.hit);
    EXPECT_EQ(t.nodeFrames.size(), 5u);

    // 57-bit virtual addresses resolve with 5 levels.
    const Vpn high = Vpn{1} << 44;
    pt5.map(high, 77, 0);
    auto m = pt5.lookup(high);
    ASSERT_TRUE(m);
    EXPECT_EQ(m->pfn, 77u);
}

TEST(FiveLevel, KernelPlumbsDepthThrough)
{
    KernelConfig cfg = smallConfig();
    cfg.pageTableLevels = 5;
    Kernel k(cfg, std::make_unique<DefaultThpPolicy>());
    Process &p = k.createProcess("t");
    EXPECT_EQ(p.pageTable().levels(), 5u);
    Vma &vma = p.mmap(kHugeSize);
    p.touch(vma.start());
    WalkTrace t;
    p.pageTable().walk(vma.start().pageNumber(), t);
    EXPECT_TRUE(t.hit);
    EXPECT_EQ(t.nodeFrames.size(), 4u); // 5 levels, huge leaf at L2
}

TEST(FiveLevel, NestedWalkCostsMore)
{
    auto makeVm = [](unsigned levels) {
        KernelConfig hcfg;
        hcfg.phys.bytesPerNode = 256ull << 20;
        hcfg.phys.numNodes = 1;
        hcfg.pageTableLevels = levels;
        auto host = std::make_unique<Kernel>(
            hcfg, std::make_unique<DefaultThpPolicy>());
        VmConfig vcfg;
        vcfg.guestBytesPerNode = 128ull << 20;
        vcfg.guestNodes = 1;
        vcfg.guestKernel.pageTableLevels = levels;
        auto vm = std::make_unique<VirtualMachine>(
            *host, std::make_unique<DefaultThpPolicy>(), vcfg);
        return std::make_pair(std::move(host), std::move(vm));
    };

    WalkerConfig wcfg;
    wcfg.pscEnabled = false;
    wcfg.nestedTlbEnabled = false;

    auto [h4, vm4] = makeVm(4);
    Process &p4 = vm4->guest().createProcess("g");
    Vma &v4 = p4.mmap(kHugeSize);
    p4.touch(v4.start());
    Walker w4(p4.pageTable(), *vm4, wcfg);
    const unsigned refs4 = w4.walk(v4.start().pageNumber()).refs;

    auto [h5, vm5] = makeVm(5);
    Process &p5 = vm5->guest().createProcess("g");
    Vma &v5 = p5.mmap(kHugeSize);
    p5.touch(v5.start());
    Walker w5(p5.pageTable(), *vm5, wcfg);
    const unsigned refs5 = w5.walk(v5.start().pageNumber()).refs;

    // 4-level nested THP walk: 3 x (3+1) + 3 = 15 refs;
    // 5-level:                4 x (4+1) + 4 = 24 refs.
    EXPECT_EQ(refs4, 15u);
    EXPECT_EQ(refs5, 24u);
}

TEST(ShadowPaging, ShadowTableComposesBothDimensions)
{
    KernelConfig hcfg = smallConfig();
    Kernel host(hcfg, std::make_unique<CaPagingPolicy>());
    VmConfig vcfg;
    vcfg.guestBytesPerNode = 128ull << 20;
    vcfg.guestNodes = 1;
    VirtualMachine vm(host, std::make_unique<CaPagingPolicy>(), vcfg);

    Process &p = vm.guest().createProcess("g");
    vm.enableShadowPaging(p);
    Vma &vma = p.mmap(8 * kHugeSize);
    p.touchRange(vma.start(), vma.bytes());

    // Every guest leaf has a shadow leaf resolving to the same hPA
    // the nested composition produces.
    const PageTable &shadow = vm.shadowTable(p);
    p.pageTable().forEachLeaf([&](Vpn vpn, const Mapping &gm) {
        auto sm = shadow.lookup(vpn);
        ASSERT_TRUE(sm && sm->valid());
        auto nested = vm.nestedLookup(gm.pfn);
        ASSERT_TRUE(nested);
        EXPECT_EQ(sm->pfn, nested->pfn);
    });
    EXPECT_GT(vm.shadowExits(), 0u);
}

TEST(ShadowPaging, LateEnableSyncsExistingLeaves)
{
    KernelConfig hcfg = smallConfig();
    Kernel host(hcfg, std::make_unique<CaPagingPolicy>());
    VmConfig vcfg;
    vcfg.guestBytesPerNode = 128ull << 20;
    vcfg.guestNodes = 1;
    VirtualMachine vm(host, std::make_unique<CaPagingPolicy>(), vcfg);

    Process &p = vm.guest().createProcess("g");
    Vma &vma = p.mmap(4 * kHugeSize);
    p.touchRange(vma.start(), vma.bytes());
    vm.enableShadowPaging(p); // after the fact
    auto sm = vm.shadowTable(p).lookup(vma.start().pageNumber());
    ASSERT_TRUE(sm && sm->valid());
}

TEST(ShadowPaging, UnmapRemovesShadowLeaf)
{
    KernelConfig hcfg = smallConfig();
    Kernel host(hcfg, std::make_unique<CaPagingPolicy>());
    VmConfig vcfg;
    vcfg.guestBytesPerNode = 128ull << 20;
    vcfg.guestNodes = 1;
    VirtualMachine vm(host, std::make_unique<CaPagingPolicy>(), vcfg);

    Process &p = vm.guest().createProcess("g");
    vm.enableShadowPaging(p);
    Vma &vma = p.mmap(2 * kHugeSize);
    p.touchRange(vma.start(), vma.bytes());
    const Vpn vpn = vma.start().pageNumber();
    ASSERT_TRUE(vm.shadowTable(p).lookup(vpn));
    p.munmap(vma);
    EXPECT_FALSE(vm.shadowTable(p).lookup(vpn));
}

TEST(ShadowPaging, ContigBitsPropagateToShadow)
{
    KernelConfig hcfg = smallConfig();
    Kernel host(hcfg, std::make_unique<CaPagingPolicy>());
    VmConfig vcfg;
    vcfg.guestBytesPerNode = 128ull << 20;
    vcfg.guestNodes = 1;
    VirtualMachine vm(host, std::make_unique<CaPagingPolicy>(), vcfg);

    Process &p = vm.guest().createProcess("g");
    vm.enableShadowPaging(p);
    Vma &vma = p.mmap(8 * kHugeSize);
    p.touchRange(vma.start(), vma.bytes());
    // CA marked the guest PTEs; the trapped bit writes must have
    // reached the shadow leaves, so SpOT's fill gate works on them.
    auto sm = vm.shadowTable(p).lookup(vma.start().pageNumber());
    ASSERT_TRUE(sm && sm->valid());
    EXPECT_TRUE(sm->contigBit);
}
