#include "policies/eager.hh"

#include "base/align.hh"
#include "base/logging.hh"
#include "mm/kernel.hh"

namespace contig
{

void
EagerPolicy::onMmap(Kernel &kernel, Process &proc, Vma &vma)
{
    if (vma.kind() == VmaKind::File)
        return; // file pages come from the page cache on demand

    PhysicalMemory &pm = kernel.physMem();
    const unsigned max_order = pm.zone(proc.homeNode()).buddy().maxOrder();

    Vpn vpn = vma.start().pageNumber();
    std::uint64_t remaining = vma.pages();

    while (remaining > 0) {
        // Largest power-of-two block that fits the remaining request,
        // bounded by MAX_ORDER, aligned with the current vpn.
        unsigned order = std::min<unsigned>(max_order,
                                            log2Floor(remaining));
        // vpn must be order-aligned for clean huge sub-mappings.
        while (order > 0 && !isAligned(vpn, pagesInOrder(order)))
            --order;

        std::optional<Pfn> blk;
        unsigned got = order;
        for (;;) {
            blk = pm.alloc(got, proc.homeNode());
            if (blk || got == 0)
                break;
            --got; // fragmentation: settle for smaller aligned blocks
        }
        if (!blk)
            fatal("eager paging: out of memory backing vma %u", vma.id());
        if (got < kHugeOrder)
            stats_.smallBlockPages += pagesInOrder(got);
        ++stats_.blocks;

        // Map the block at huge granularity where possible.
        const std::uint64_t n = pagesInOrder(got);
        kernel.faultEngine().installPrepared(proc, vma, vpn, *blk, got);

        vpn += n;
        remaining -= n;
        stats_.preallocatedPages += n;
    }

    // The whole pre-allocation is charged as one fault-like event: the
    // mmap stalls while the kernel zeroes every block (Table V's 99th
    // latency for eager paging).
    kernel.faultEngine().chargeBulkStall(vma.pages());
}

AllocResult
EagerPolicy::allocate(Kernel &kernel, Process &proc, Vma &vma, Vpn vpn,
                      unsigned order)
{
    // Reached only for pages eager pre-allocation did not cover (e.g.
    // COW copies): plain buddy allocation.
    (void)vma;
    (void)vpn;
    return buddyAlloc(kernel, order, proc.homeNode());
}

} // namespace contig
