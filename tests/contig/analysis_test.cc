#include <gtest/gtest.h>

#include "base/align.hh"
#include "contig/analysis.hh"
#include "mm/kernel.hh"

using namespace contig;

TEST(ExtractSegs, MergesAdjacentLeavesWithSameOffset)
{
    PageTable pt;
    // Three 4 KiB leaves forming one contiguous run...
    pt.map(100, 500, 0);
    pt.map(101, 501, 0);
    pt.map(102, 502, 0);
    // ...a hole, then a differently-offset leaf.
    pt.map(104, 900, 0);
    auto segs = extractSegs(pt);
    ASSERT_EQ(segs.size(), 2u);
    EXPECT_EQ(segs[0].vpn, 100u);
    EXPECT_EQ(segs[0].pfn, 500u);
    EXPECT_EQ(segs[0].pages, 3u);
    EXPECT_EQ(segs[1].pages, 1u);
}

TEST(ExtractSegs, HugeAnd4kMergeAcrossSizes)
{
    PageTable pt;
    // A huge leaf followed by 4 KiB leaves continuing the same offset.
    pt.map(512, 2048, kHugeOrder);
    pt.map(1024, 2560, 0);
    pt.map(1025, 2561, 0);
    auto segs = extractSegs(pt);
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0].pages, 514u);
}

TEST(ExtractSegs, VirtuallyAdjacentButPhysicallyNotSplits)
{
    PageTable pt;
    pt.map(10, 100, 0);
    pt.map(11, 200, 0); // virtually adjacent, different offset
    auto segs = extractSegs(pt);
    EXPECT_EQ(segs.size(), 2u);
}

TEST(Coverage, MetricsBasic)
{
    std::vector<Seg> segs;
    // One 9900-page segment and 100 single pages: 99% needs 1 seg.
    segs.push_back(Seg{0, 0, 9900});
    for (int i = 0; i < 100; ++i)
        segs.push_back(Seg{static_cast<Vpn>(20000 + 10 * i),
                           static_cast<Pfn>(50000 + 10 * i), 1});
    auto m = coverage(segs);
    EXPECT_EQ(m.totalPages, 10000u);
    EXPECT_EQ(m.mappings, 101u);
    EXPECT_EQ(m.mappingsFor99, 1u);
    EXPECT_NEAR(m.cov32, 0.9931, 0.001);
    EXPECT_EQ(m.cov128, 1.0);
}

TEST(Coverage, FewerThan32MappingsIsFullCoverage)
{
    std::vector<Seg> segs{Seg{0, 0, 10}, Seg{100, 100, 20}};
    auto m = coverage(segs);
    EXPECT_EQ(m.cov32, 1.0);
    EXPECT_EQ(m.cov128, 1.0);
    EXPECT_EQ(m.mappingsFor99, 2u);
}

TEST(Coverage, EmptyIsZero)
{
    auto m = coverage({});
    EXPECT_EQ(m.totalPages, 0u);
    EXPECT_EQ(m.mappingsFor99, 0u);
}

TEST(Coverage, TopKHelper)
{
    std::vector<Seg> segs{Seg{0, 0, 60}, Seg{100, 100, 30},
                          Seg{200, 200, 10}};
    EXPECT_NEAR(coverageTopK(segs, 1), 0.6, 1e-9);
    EXPECT_NEAR(coverageTopK(segs, 2), 0.9, 1e-9);
    EXPECT_NEAR(coverageTopK(segs, 3), 1.0, 1e-9);
}

TEST(CoverageTimeline, AveragesSamples)
{
    CoverageTimeline tl;
    CoverageMetrics a;
    a.cov32 = 0.2;
    a.mappings = 10;
    CoverageMetrics b;
    b.cov32 = 0.8;
    b.mappings = 30;
    tl.addSample(a);
    tl.addSample(b);
    auto avg = tl.average();
    EXPECT_NEAR(avg.cov32, 0.5, 1e-9);
    EXPECT_EQ(avg.mappings, 20u);
}

TEST(FreeBlocks, FreshMachineIsOneClusterPerZone)
{
    KernelConfig cfg;
    cfg.phys.bytesPerNode = 64ull << 20;
    cfg.phys.numNodes = 2;
    Kernel k(cfg, std::make_unique<DefaultThpPolicy>());
    auto hist = freeBlockDistribution(k.physMem());
    // All free pages live in blocks of >= one zone's size.
    const std::uint64_t zone_pages = (64ull << 20) >> kPageShift;
    std::uint64_t big = 0;
    for (unsigned b = log2Floor(zone_pages); b < 40; ++b)
        big += hist.bucket(b);
    EXPECT_EQ(big, 2 * zone_pages);
}

TEST(FreeBlocks, AllocationsShiftDistributionDown)
{
    KernelConfig cfg;
    cfg.phys.bytesPerNode = 64ull << 20;
    cfg.phys.numNodes = 1;
    Kernel k(cfg, std::make_unique<DefaultThpPolicy>());
    // Pin a page in the middle of the zone.
    ASSERT_TRUE(k.physMem().allocSpecific(8192, 0));
    auto hist = freeBlockDistribution(k.physMem());
    const std::uint64_t zone_pages = (64ull << 20) >> kPageShift;
    std::uint64_t full = 0;
    for (unsigned b = log2Floor(zone_pages); b < 40; ++b)
        full += hist.bucket(b);
    EXPECT_EQ(full, 0u); // no zone-sized cluster any more
    EXPECT_GT(hist.totalWeight(), 0u);
}
