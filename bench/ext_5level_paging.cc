/**
 * @file
 * Extension experiment: 5-level (LA57) paging. The paper's
 * introduction motivates the work with it: "persistent memory will
 * hugely increase physical memory, requiring 5-level paging, further
 * exacerbating the cost of TLB misses." A nested walk over two
 * 5-level tables costs up to 35 memory references (vs 24 for two
 * 4-level tables: 5 guest nodes x (5+1) + final 5-ref nested walk).
 * SpOT's prediction is depth-agnostic — it hides whatever the walk
 * costs — so its relative benefit *grows* with 5-level tables.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"
#include "policies/ca_paging.hh"

using namespace contig;

namespace
{

struct Outcome
{
    double base = 0.0;
    double spot = 0.0;
    double avgWalk = 0.0;
};

Outcome
runWithLevels(unsigned levels)
{
    KernelConfig hostCfg = kernelConfigFor(PolicyKind::Ca);
    hostCfg.pageTableLevels = levels;
    Kernel host(hostCfg, std::make_unique<CaPagingPolicy>());
    VmConfig vcfg = ScaledDefaults::vm();
    vcfg.guestKernel.pageTableLevels = levels;
    VirtualMachine vm(host, std::make_unique<CaPagingPolicy>(), vcfg);

    auto wl = makeWorkload("xsbench", {1.0, 7});
    Process &proc = vm.guest().createProcess("xs");
    wl->setup(proc);

    Outcome out;
    for (XlatScheme scheme : {XlatScheme::Base, XlatScheme::Spot}) {
        XlatConfig cfg;
        cfg.tlb = ScaledDefaults::tlb();
        cfg.walker = ScaledDefaults::walker();
        cfg.scheme = scheme;
        cfg.spot = ScaledDefaults::spot();
        TranslationSim sim(cfg, proc.pageTable(), vm);
        Rng rng(99);
        for (std::uint64_t i = 0; i < 1'000'000; ++i)
            sim.access(wl->nextAccess(rng));
        const double o =
            overheadOf(sim.stats(), ScaledDefaults::perf()).overhead;
        if (scheme == XlatScheme::Base) {
            out.base = o;
            out.avgWalk = sim.stats().avgWalkCycles();
        } else {
            out.spot = o;
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("ext_5level_paging", argc, argv);

    auto four = runWithLevels(4);
    auto five = runWithLevels(5);

    Report rep("Extension — nested paging with 5-level (LA57) tables "
               "(xsbench, CA guest+host)");
    rep.header({"radix depth", "avg nested walk (cycles)",
                "THP+THP overhead", "with SpOT"});
    rep.row({"4-level (<=24 refs)", Report::num(four.avgWalk, 1),
             Report::pct(four.base), Report::pct(four.spot, 2)});
    rep.row({"5-level (<=35 refs)", Report::num(five.avgWalk, 1),
             Report::pct(five.base), Report::pct(five.spot, 2)});
    out.add(rep);
    rep.print();

    std::printf("\nexpected: the deeper radix makes every nested walk "
                "costlier, inflating the base overhead, while SpOT's "
                "hidden-walk overhead stays flat — the paper's "
                "forward-looking motivation quantified\n");
    out.write();
    return 0;
}
