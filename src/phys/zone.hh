/**
 * @file
 * A Zone couples one buddy allocator with one contiguity map, matching
 * Linux's per-NUMA-node `struct zone` (the paper keeps one
 * contiguity_map instance per zone, §III-B).
 *
 * Threading: each zone owns one spinlock guarding its buddy allocator
 * and contiguity map (Linux's `zone->lock`), so allocations in
 * different zones never contend. In front of the buddy sit optional
 * per-CPU order-0 frame caches (Linux pcplists): order-0 alloc/free on
 * a CPU works on that CPU's private list and only takes the zone lock
 * to refill or spill a batch. Frames parked in a pcp cache keep
 * freeFlag=false, so CA paging's occupancy probe correctly treats them
 * as unavailable.
 */

#ifndef CONTIG_PHYS_ZONE_HH
#define CONTIG_PHYS_ZONE_HH

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "base/sync.hh"
#include "phys/buddy.hh"
#include "phys/contiguity_map.hh"

namespace contig
{

class Serializer;

/** Tunables for one zone / the whole physical memory. */
struct ZoneConfig
{
    unsigned maxOrder = kMaxOrder;
    /** Keep the top-order free list address sorted (CA optimization). */
    bool sortedTopList = true;
    /**
     * Seed the free lists in scrambled order (0 = ascending),
     * modelling the churn a real machine's lists accumulate from
     * boot-time allocations and per-CPU batching. Ignored when
     * sortedTopList is set (the list is sorted either way).
     */
    std::uint64_t scrambleSeed = 0;
    /**
     * Number of per-CPU order-0 frame caches (0 disables them, which
     * keeps single-threaded runs byte-identical to the pre-threading
     * allocator). The kernel sets this to its worker-thread count.
     */
    unsigned pcpCpus = 0;
    /** Frames moved between a pcp cache and the buddy per refill/spill. */
    unsigned pcpBatch = 16;
    /** Pcp list length that triggers a spill back to the buddy. */
    unsigned pcpHigh = 64;
    /**
     * Bind the zone lock to a "zone<node>.buddy" LockSite so
     * --lock-stats can attribute contention to the buddy path
     * (refills, spills, direct high-order allocations). Kernel::
     * normalized() sets this from KernelConfig.lockStats.
     */
    bool lockStats = false;
};

/**
 * One NUMA node's physical memory: a PFN range, its buddy allocator
 * and its contiguity map, kept in sync through the buddy's top-list
 * hooks.
 */
class Zone
{
  public:
    Zone(FrameArray &frames, NodeId node, Pfn base_pfn,
         std::uint64_t n_frames, const ZoneConfig &cfg = {});

    Zone(const Zone &) = delete;
    Zone &operator=(const Zone &) = delete;

    NodeId node() const { return node_; }
    Pfn basePfn() const { return buddy_.basePfn(); }
    std::uint64_t numFrames() const { return buddy_.numFrames(); }

    BuddyAllocator &buddy() { return buddy_; }
    const BuddyAllocator &buddy() const { return buddy_; }
    ContiguityMap &contigMap() { return contigMap_; }
    const ContiguityMap &contigMap() const { return contigMap_; }

    /**
     * The zone lock (Linux `zone->lock`). Allocation goes through the
     * locked entry points below; callers that scan the contiguity map
     * directly (the CA placement policies, the observatory) take this
     * around the scan.
     */
    SpinLock &lock() const { return lock_; }

    bool
    contains(Pfn pfn) const
    {
        return pfn >= basePfn() && pfn < basePfn() + numFrames();
    }

    /**
     * Locked allocation front end. Order-0 requests are served from
     * the calling CPU's pcp cache when caches are enabled; everything
     * else takes the zone lock around the buddy call.
     */
    std::optional<Pfn> alloc(unsigned order);

    /** Locked BuddyAllocator::allocSpecific. */
    bool allocSpecific(Pfn pfn, unsigned order);

    /**
     * Locked free. Order-0 frees land on the calling CPU's pcp cache
     * (spilling a batch to the buddy past the high-water mark).
     */
    void free(Pfn pfn, unsigned order);

    /**
     * Return every pcp-cached frame to the buddy (process teardown,
     * stats capture). Leaves the caches enabled.
     */
    void drainPcp();

    /** Frames currently parked across this zone's pcp caches. */
    std::uint64_t pcpCachedPages() const;

    bool pcpEnabled() const { return !pcp_.empty(); }

    /**
     * The zone's free-block size distribution, weighted by pages
     * (the Fig. 9 histogram for one zone): the contiguity map's
     * unaligned clusters at top-order scale plus the sub-top-order
     * buddy free lists. O(free blocks) — sampled, not kept hot.
     */
    Log2Histogram freeBlockHistogram() const;

    /**
     * Serialize buddy free lists plus per-CPU cache contents for
     * checkpoint verification (save-only; see BuddyAllocator).
     */
    void saveState(Serializer &s) const;

  private:
    /** One CPU's private cache; padded so neighbours don't false-share. */
    struct alignas(64) PcpList
    {
        std::vector<Pfn> pfns;
    };

    PcpList &myPcp() { return pcp_[ThisCpu::id() % pcp_.size()]; }

    NodeId node_;
    ContiguityMap contigMap_;
    BuddyAllocator buddy_;
    mutable SpinLock lock_;
    unsigned pcpBatch_;
    unsigned pcpHigh_;
    std::vector<PcpList> pcp_;
};

} // namespace contig

#endif // CONTIG_PHYS_ZONE_HH
