file(REMOVE_RECURSE
  "CMakeFiles/ablate_offset_fifo.dir/ablate_offset_fifo.cc.o"
  "CMakeFiles/ablate_offset_fifo.dir/ablate_offset_fifo.cc.o.d"
  "ablate_offset_fifo"
  "ablate_offset_fifo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_offset_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
