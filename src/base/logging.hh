/**
 * @file
 * Minimal gem5-flavoured logging and invariant-checking helpers.
 * panic() flags internal simulator bugs (aborts); fatal() flags user
 * configuration errors (clean exit); warn()/inform() are advisory.
 */

#ifndef CONTIG_BASE_LOGGING_HH
#define CONTIG_BASE_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace contig
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Format helper: printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace contig

/** Abort: something happened that indicates a bug in the simulator. */
#define panic(...) \
    ::contig::panicImpl(__FILE__, __LINE__, ::contig::csprintf(__VA_ARGS__))

/** Clean exit: the user asked for something unsupportable. */
#define fatal(...) \
    ::contig::fatalImpl(__FILE__, __LINE__, ::contig::csprintf(__VA_ARGS__))

#define warn(...) ::contig::warnImpl(::contig::csprintf(__VA_ARGS__))
#define inform(...) ::contig::informImpl(::contig::csprintf(__VA_ARGS__))

/** Invariant check that survives release builds. */
#define contig_assert(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            panic("assertion failed: %s: %s", #cond,                      \
                  ::contig::csprintf(__VA_ARGS__).c_str());                \
        }                                                                  \
    } while (0)

#endif // CONTIG_BASE_LOGGING_HH
