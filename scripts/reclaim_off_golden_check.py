#!/usr/bin/env python3
"""Reclaim-off golden gate for the memory-pressure PR.

Usage: reclaim_off_golden_check.py <binary> <golden.txt> [binary golden]...

Every KernelConfig defaults to reclaimEnabled=false, so the pressure
path (LRU bookkeeping, watermarks, kswapd, swap) must be completely
invisible to the existing figures: each named binary's stdout, run
with default flags, must be byte-for-byte identical to its committed
golden. fig13/fig14 are pinned the same way by xlat_golden_check;
this gate covers the allocator-side figures (fig08/fig09) whose
tables come from the fault/defrag path that reclaim now hooks into.

Regenerate a golden only for an intentional model change, never to
absorb a reclaim-path diff — a byte moving here means reclaim-off is
no longer free.
"""

import subprocess
import sys
from pathlib import Path


def fail(msg):
    print(f"reclaim_off_golden_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def diff_lines(a, b):
    for i, (la, lb) in enumerate(zip(a.splitlines(), b.splitlines()), 1):
        if la != lb:
            return (f"line {i}:\n  got:    {la.decode(errors='replace')}"
                    f"\n  golden: {lb.decode(errors='replace')}")
    return f"lengths differ ({len(a)} vs {len(b)} bytes)"


def main():
    args = sys.argv[1:]
    if len(args) < 2 or len(args) % 2:
        fail("usage: reclaim_off_golden_check.py "
             "<binary> <golden.txt> [binary golden]...")
    for binary, golden_path in zip(args[::2], args[1::2]):
        golden = Path(golden_path)
        if not golden.exists():
            fail(f"missing golden {golden}")
        proc = subprocess.run([binary], stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, timeout=600)
        if proc.returncode != 0:
            fail(f"{binary} exited {proc.returncode}:\n"
                 f"{proc.stdout.decode(errors='replace')[-2000:]}")
        if proc.stdout != golden.read_bytes():
            fail(f"{Path(binary).name} diverged from {golden.name} "
                 f"with reclaim off (default config): "
                 f"{diff_lines(proc.stdout, golden.read_bytes())}")
        print(f"reclaim_off_golden_check: OK: {Path(binary).name} "
              f"== {golden.name}")


if __name__ == "__main__":
    main()
