/**
 * @file
 * FaultEngine tests: the new PageTable batch primitives, and the
 * golden-equivalence property — for every policy, with and without
 * THP, sorted and scrambled touch orders, the batched range pipeline
 * (KernelConfig::faultBatching = true) must produce byte-identical
 * placements, fault statistics and policy fallback counts to the
 * seed's per-fault loop (faultBatching = false).
 */

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "core/experiment.hh"
#include "mm/kernel.hh"
#include "mm/page_cache.hh"
#include "mm/page_table.hh"

using namespace contig;

// ---------------------------------------------------------------------------
// PageTable batch primitives.

TEST(PageTable, FindMappedInEmpty)
{
    PageTable pt;
    EXPECT_EQ(pt.findMappedIn(0, 4096), 4096u);
}

TEST(PageTable, FindMappedInSkipsToLeaf)
{
    PageTable pt;
    pt.map(1000, 7, 0);
    pt.map(512 * 512, 1024, kHugeOrder);
    EXPECT_EQ(pt.findMappedIn(0, 4096), 1000u);
    EXPECT_EQ(pt.findMappedIn(1001, 512 * 512 + 5), 512u * 512);
    // A start inside a huge leaf reports that very vpn.
    EXPECT_EQ(pt.findMappedIn(512 * 512 + 3, 512 * 513), 512u * 512 + 3);
    EXPECT_EQ(pt.findMappedIn(1001, 2000), 2000u);
}

TEST(PageTable, ForEachLeafInClipsRange)
{
    PageTable pt;
    pt.map(10, 100, 0);
    pt.map(20, 200, 0);
    pt.map(30, 300, 0);
    std::vector<Vpn> seen;
    pt.forEachLeafIn(15, 30, [&](Vpn vpn, const Mapping &) {
        seen.push_back(vpn);
    });
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], 20u);
}

TEST(PageTable, RunMapperMatchesPlainMap)
{
    PageTable a;
    PageTable b;
    PageTable::RunMapper rm(b);
    // Two runs crossing an L1-node boundary (512 entries per node).
    for (Vpn v = 500; v < 530; ++v) {
        a.map(v, 9000 + v, 0, /*writable=*/true, /*cow=*/false);
        rm.map(v, 9000 + v, true, false);
    }
    for (Vpn v = 5000; v < 5010; ++v) {
        a.map(v, 9000 + v, 0, false, true);
        rm.map(v, 9000 + v, false, true);
    }
    EXPECT_EQ(a.stats().maps, b.stats().maps);
    EXPECT_EQ(a.stats().mappedBasePages, b.stats().mappedBasePages);
    for (Vpn v = 500; v < 530; ++v) {
        auto ma = a.lookup(v);
        auto mb = b.lookup(v);
        ASSERT_TRUE(ma && mb);
        EXPECT_EQ(ma->pfn, mb->pfn);
        EXPECT_EQ(ma->writable, mb->writable);
        EXPECT_EQ(ma->cow, mb->cow);
    }
}

TEST(PageTable, RunMapperFiresUpdateHook)
{
    PageTable pt;
    std::uint64_t hooked = 0;
    pt.setUpdateHook([&](Vpn, const Mapping &, bool) { ++hooked; });
    PageTable::RunMapper rm(pt);
    rm.map(1, 11, true, false);
    rm.map(2, 12, true, false);
    EXPECT_EQ(hooked, 2u);
}

// ---------------------------------------------------------------------------
// Golden equivalence: batched vs per-fault resolution.

namespace
{

using Leaf = std::tuple<Vpn, Pfn, unsigned, bool, bool, bool>;

/** Everything observable the two arms must agree on. */
struct Snapshot
{
    std::vector<Leaf> parentLeaves;
    std::vector<Leaf> childLeaves;
    std::uint64_t faults = 0;
    std::uint64_t hugeFaults = 0;
    std::uint64_t baseFaults = 0;
    std::uint64_t cowFaults = 0;
    std::uint64_t fileFaults = 0;
    Cycles totalCycles = 0;
    std::uint64_t latencySamples = 0;
    std::uint64_t parentTouched = 0;
    std::uint64_t parentAllocated = 0;
    std::uint64_t noHugeBlock = 0;
    std::uint64_t oom = 0;
    std::vector<Pfn> fileFrames;
};

std::vector<Leaf>
collectLeaves(const Process &proc)
{
    std::vector<Leaf> out;
    proc.pageTable().forEachLeaf([&](Vpn vpn, const Mapping &m) {
        out.emplace_back(vpn, m.pfn, m.order, m.writable, m.cow,
                         m.contigBit);
    });
    return out;
}

/** Deterministic Fisher-Yates (no std::random in tests). */
void
scramble(std::vector<std::uint64_t> &v)
{
    std::uint64_t s = 0x9E3779B97F4A7C15ull;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        std::swap(v[i], v[s % (i + 1)]);
    }
}

/**
 * One fixed workload hitting every pipeline path: partial then full
 * anonymous population (gap/mapped alternation), a sub-huge VMA
 * (order-0 batching), fork + COW writes on both sides, page-cache
 * reads with overlapping windows, and a file mapping read through
 * touchRange.
 */
Snapshot
runScenario(Kernel &k, bool scrambled)
{
    constexpr std::uint64_t kSpanPages = 64;
    Process &p = k.createProcess("golden");
    Vma &anon = p.mmap(4 * kHugeSize);

    std::vector<std::uint64_t> spans(anon.pages() / kSpanPages);
    std::iota(spans.begin(), spans.end(), 0);
    if (scrambled)
        scramble(spans);

    // First pass: every other span, leaving holes.
    for (std::uint64_t s : spans) {
        if (s % 2 == 0)
            p.touchRange(anon.start() + s * kSpanPages * kPageSize,
                         kSpanPages * kPageSize);
    }
    // Second pass: the whole VMA (alternating mapped/unmapped gaps).
    p.touchRange(anon.start(), anon.bytes());

    // A VMA too small for huge faults: pure order-0 batches.
    Vma &small = p.mmap(100 * kPageSize);
    p.touchRange(small.start(), small.bytes());

    // fork + COW traffic on both sides of the share.
    Process &child = p.fork("golden-child");
    child.touchRange(anon.start(), kHugeSize + 16 * kPageSize);
    p.touchRange(anon.start() + 2 * kHugeSize, 32 * kPageSize);

    // Page cache: overlapping read windows, then a mapped file span.
    File &f = k.createFile(600);
    k.readFile(f, 3, 40);
    k.readFile(f, 10, 100);
    Vma &fv = p.mmapFile(f.id(), 128 * kPageSize, 200);
    p.touchRange(fv.start(), fv.bytes(), Access::Read);

    Snapshot snap;
    snap.parentLeaves = collectLeaves(p);
    snap.childLeaves = collectLeaves(child);
    const FaultStats &fs = k.faultStats();
    snap.faults = fs.faults;
    snap.hugeFaults = fs.hugeFaults;
    snap.baseFaults = fs.baseFaults;
    snap.cowFaults = fs.cowFaults;
    snap.fileFaults = fs.fileFaults;
    snap.totalCycles = fs.totalCycles;
    snap.latencySamples = fs.latencyUs.count();
    snap.parentTouched = p.touchedPages();
    snap.parentAllocated = p.allocatedPages();
    snap.noHugeBlock = k.policy().allocFailCounts().noHugeBlock;
    snap.oom = k.policy().allocFailCounts().oom;
    for (std::uint64_t pg = 0; pg < f.sizePages(); ++pg)
        snap.fileFrames.push_back(f.frameFor(pg));
    return snap;
}

void
expectIdentical(const Snapshot &batched, const Snapshot &single)
{
    EXPECT_EQ(batched.parentLeaves, single.parentLeaves);
    EXPECT_EQ(batched.childLeaves, single.childLeaves);
    EXPECT_EQ(batched.faults, single.faults);
    EXPECT_EQ(batched.hugeFaults, single.hugeFaults);
    EXPECT_EQ(batched.baseFaults, single.baseFaults);
    EXPECT_EQ(batched.cowFaults, single.cowFaults);
    EXPECT_EQ(batched.fileFaults, single.fileFaults);
    EXPECT_EQ(batched.totalCycles, single.totalCycles);
    EXPECT_EQ(batched.latencySamples, single.latencySamples);
    EXPECT_EQ(batched.parentTouched, single.parentTouched);
    EXPECT_EQ(batched.parentAllocated, single.parentAllocated);
    EXPECT_EQ(batched.noHugeBlock, single.noHugeBlock);
    EXPECT_EQ(batched.oom, single.oom);
    EXPECT_EQ(batched.fileFrames, single.fileFrames);
}

class FaultEngineGolden : public ::testing::TestWithParam<PolicyKind>
{
};

} // namespace

TEST_P(FaultEngineGolden, BatchedMatchesPerFault)
{
    const PolicyKind kind = GetParam();
    for (bool thp : {false, true}) {
        for (bool scrambled : {false, true}) {
            SCOPED_TRACE(policyName(kind) + (thp ? "/thp" : "/4k") +
                         (scrambled ? "/scrambled" : "/sorted"));
            auto make = [&](bool batching) {
                KernelConfig cfg = kernelConfigFor(kind);
                // Eager raises MAX_ORDER to 1 GiB blocks; the node
                // must stay a multiple of the top-order block.
                cfg.phys.bytesPerNode = kind == PolicyKind::Eager
                                            ? (1ull << 30)
                                            : (256ull << 20);
                cfg.phys.numNodes = 1;
                cfg.thpEnabled = thp && kind != PolicyKind::Base4k;
                cfg.faultBatching = batching;
                cfg.metricsPrefix = batching ? "golden_b" : "golden_s";
                return std::make_unique<Kernel>(cfg, makePolicy(kind));
            };
            auto kb = make(true);
            auto ks = make(false);
            expectIdentical(runScenario(*kb, scrambled),
                            runScenario(*ks, scrambled));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, FaultEngineGolden,
    ::testing::Values(PolicyKind::Thp, PolicyKind::Base4k, PolicyKind::Ca,
                      PolicyKind::Eager, PolicyKind::Ingens,
                      PolicyKind::Ranger, PolicyKind::Ideal),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        std::string n = policyName(info.param);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });
