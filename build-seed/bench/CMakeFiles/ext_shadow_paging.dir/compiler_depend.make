# Empty compiler generated dependencies file for ext_shadow_paging.
# This may be replaced when dependencies are built.
