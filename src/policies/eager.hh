/**
 * @file
 * Eager paging — the pre-allocation baseline of RMM (Karakostas et
 * al., ISCA'15), as evaluated by the paper (Figs. 1b/7/8, Tables
 * V/VI): the kernel MAX_ORDER is raised (a PhysMemConfig knob) so the
 * buddy allocator keeps very large blocks, and at mmap time the whole
 * VMA is backed immediately from the largest available aligned
 * blocks. The trade-offs this reproduces:
 *  - great contiguity on a fresh machine,
 *  - collapse under external fragmentation (aligned blocks only),
 *  - memory bloat (allocated-but-never-touched pages, Table VI),
 *  - enormous page-fault tail latency from bulk zeroing (Table V).
 */

#ifndef CONTIG_POLICIES_EAGER_HH
#define CONTIG_POLICIES_EAGER_HH

#include "mm/policy.hh"

namespace contig
{

/** Observable eager-paging behaviour. */
struct EagerStats
{
    std::uint64_t preallocatedPages = 0;
    std::uint64_t blocks = 0;
    /** Pages that could not be served from blocks >= hugeOrder. */
    std::uint64_t smallBlockPages = 0;
};

class EagerPolicy : public AllocationPolicy
{
  public:
    std::string name() const override { return "eager"; }

    void onMmap(Kernel &kernel, Process &proc, Vma &vma) override;

    AllocResult allocate(Kernel &kernel, Process &proc, Vma &vma,
                         Vpn vpn, unsigned order) override;

    const EagerStats &stats() const { return stats_; }

  private:
    EagerStats stats_;
};

} // namespace contig

#endif // CONTIG_POLICIES_EAGER_HH
