#include "policies/ranger.hh"

#include <algorithm>
#include <set>
#include <vector>

#include "base/align.hh"
#include "mm/kernel.hh"
#include "mm/migrate.hh"

namespace contig
{

RangerPolicy::RangerPolicy(const RangerConfig &cfg) : cfg_(cfg) {}

AllocResult
RangerPolicy::allocate(Kernel &kernel, Process &proc, Vma &vma, Vpn vpn,
                       unsigned order)
{
    // Faults use the stock THP allocation; contiguity comes later.
    (void)vma;
    (void)vpn;
    return buddyAlloc(kernel, order, proc.homeNode());
}

void
RangerPolicy::onMunmap(Kernel &kernel, Process &proc, Vma &vma)
{
    (void)kernel;
    (void)proc;
    targets_.erase(vma.id());
}

const std::vector<RangerPolicy::TargetRegion> &
RangerPolicy::targetsFor(Kernel &kernel, Process &proc, Vma &vma)
{
    std::vector<TargetRegion> &regions = targets_[vma.id()];
    if (!regions.empty())
        return regions;

    // Anchor-based target selection, as in Translation Ranger: the
    // region is anchored at the physical location of the VMA's first
    // mapped page and covers the whole VMA; the exchange primitive
    // lets migrations proceed through occupied memory, so the region
    // need not be free. Only conflicts with other VMAs' regions force
    // the anchor to shift.
    PhysicalMemory &mem = kernel.physMem();
    auto overlaps = [&](Pfn start_pfn, std::uint64_t pages) {
        for (const auto &kv : targets_) {
            for (const TargetRegion &tr : kv.second) {
                if (start_pfn < tr.basePfn + tr.pages &&
                    tr.basePfn < start_pfn + pages) {
                    return true;
                }
            }
        }
        return false;
    };

    // Fast path: a free cluster that fits the whole VMA (no
    // exchanges needed, migrations into free frames only).
    for (unsigned n = 0; n < mem.numNodes(); ++n) {
        auto cl = mem.zone((proc.homeNode() + n) %
                           mem.numNodes()).contigMap()
                      .placeBestFit(vma.pages());
        if (cl && cl->pages >= vma.pages() &&
            !overlaps(cl->startPfn, vma.pages())) {
            regions.push_back(TargetRegion{0, vma.pages(),
                                           cl->startPfn});
            ++stats_.regionsAssigned;
            return regions;
        }
    }

    // Find the first mapped leaf to anchor on.
    const Vpn vma_start = vma.start().pageNumber();
    const Vpn vma_end = vma_start + vma.pages();
    std::optional<Pfn> anchor;
    proc.pageTable().forEachLeaf([&](Vpn vpn, const Mapping &m) {
        if (anchor || vpn < vma_start || vpn >= vma_end)
            return;
        const std::uint64_t rel = vpn - vma_start;
        anchor = m.pfn >= rel ? m.pfn - rel : 0;
    });
    if (!anchor)
        return regions; // nothing mapped yet

    // Clamp and shift until the region fits and conflicts with no
    // other VMA's region.
    const std::uint64_t total = mem.totalFrames();
    if (vma.pages() > total)
        return regions;
    Pfn base = std::min<Pfn>(*anchor, total - vma.pages());
    const std::uint64_t step = pagesInOrder(kMaxOrder);
    for (std::uint64_t tries = 0; tries * step < total; ++tries) {
        Pfn cand = (base + tries * step) % (total - vma.pages() + 1);
        cand = alignDown(cand, pagesInOrder(kHugeOrder));
        if (!overlaps(cand, vma.pages())) {
            regions.push_back(TargetRegion{0, vma.pages(), cand});
            ++stats_.regionsAssigned;
            break;
        }
    }
    return regions;
}

void
RangerPolicy::onTick(Kernel &kernel)
{
    ++stats_.epochs;
    std::uint64_t budget = cfg_.pagesPerEpoch;

    kernel.forEachProcess([&](Process &proc) {
        if (budget == 0 || !proc.defragEligible)
            return;
        proc.addressSpace().forEachVma([&](Vma &vma) {
            if (budget == 0 || vma.kind() == VmaKind::File)
                return;
            const auto &regions = targetsFor(kernel, proc, vma);
            if (regions.empty())
                return;

            // Walk the VMA's leaves and migrate out-of-place ones to
            // their slot in the covering target region.
            const Vpn vma_start = vma.start().pageNumber();
            const Vpn vma_end = vma_start + vma.pages();
            std::vector<std::pair<Vpn, Pfn>> to_move;
            proc.pageTable().forEachLeaf([&](Vpn vpn, const Mapping &m) {
                if (vpn < vma_start || vpn >= vma_end)
                    return;
                const std::uint64_t rel = vpn - vma_start;
                for (const TargetRegion &tr : regions) {
                    if (rel < tr.startPage ||
                        rel >= tr.startPage + tr.pages) {
                        continue;
                    }
                    Pfn want = tr.basePfn + (rel - tr.startPage);
                    if (m.pfn != want)
                        to_move.emplace_back(vpn, want);
                    break;
                }
            });
            for (auto &[vpn, want] : to_move) {
                if (budget == 0)
                    break;
                auto res = migrateLeaf(kernel, proc, vpn, want);
                if (res == MigrateResult::DestBusy) {
                    // Occupied destination: exchange pages instead,
                    // like Translation Ranger's exchange_pages().
                    res = swapLeaves(kernel, proc, vpn, want);
                }
                if (res == MigrateResult::DestBusy) {
                    // Neither migration nor exchange worked (e.g. the
                    // destination spans differently-sized leaves).
                    // Contiguity-aware reclaim kernels evict the
                    // destination block and retry the migration.
                    ReclaimEngine *rec = kernel.reclaim();
                    if (rec && rec->contigAware()) {
                        auto m = proc.pageTable().lookup(vpn);
                        if (m && rec->reclaimRange(want, m->order)) {
                            res = migrateLeaf(kernel, proc, vpn, want);
                            if (res == MigrateResult::Done)
                                ++stats_.reclaimAssists;
                        }
                    }
                }
                if (res == MigrateResult::Done) {
                    auto m = proc.pageTable().lookup(vpn);
                    const std::uint64_t n = pagesInOrder(m->order);
                    stats_.migratedPages += n;
                    budget -= std::min(budget, n);
                } else if (res == MigrateResult::DestBusy) {
                    ++stats_.skippedBusy;
                }
            }
        });
    });
}

} // namespace contig
