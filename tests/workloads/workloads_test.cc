#include <gtest/gtest.h>

#include <set>

#include "core/experiment.hh"
#include "workloads/access_stream.hh"
#include "workloads/workloads.hh"

using namespace contig;

namespace
{

/** Small scale so every workload fits a quick test machine. */
WorkloadConfig
quick(std::uint64_t seed = 5)
{
    WorkloadConfig cfg;
    cfg.scale = 0.1;
    cfg.seed = seed;
    return cfg;
}

} // namespace

class WorkloadParamTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadParamTest, SetupTouchesDeclaredFootprint)
{
    NativeSystem sys(PolicyKind::Thp, 3);
    auto wl = makeWorkload(GetParam(), quick());
    Process &p = sys.kernel().createProcess(GetParam());
    wl->setup(p);
    EXPECT_EQ(p.touchedPages(), wl->footprintBytes() >> kPageShift);
    EXPECT_GE(wl->reservedBytes(), wl->footprintBytes());
    wl->teardown();
}

TEST_P(WorkloadParamTest, AccessesStayInsideTouchedMemory)
{
    NativeSystem sys(PolicyKind::Thp, 3);
    auto wl = makeWorkload(GetParam(), quick());
    Process &p = sys.kernel().createProcess(GetParam());
    wl->setup(p);
    Rng rng(17);
    for (int i = 0; i < 20000; ++i) {
        MemAccess a = wl->nextAccess(rng);
        auto m = p.pageTable().lookup(a.va.pageNumber());
        ASSERT_TRUE(m && m->valid())
            << GetParam() << " access outside mapped memory at 0x"
            << std::hex << a.va.value;
    }
    wl->teardown();
}

TEST_P(WorkloadParamTest, StreamsAreDeterministicPerSeed)
{
    NativeSystem sys(PolicyKind::Thp, 3);
    auto w1 = makeWorkload(GetParam(), quick(42));
    auto w2 = makeWorkload(GetParam(), quick(42));
    Process &p1 = sys.kernel().createProcess("a");
    Process &p2 = sys.kernel().createProcess("b");
    w1->setup(p1);
    w2->setup(p2);
    Rng r1(7), r2(7);
    for (int i = 0; i < 1000; ++i) {
        MemAccess a = w1->nextAccess(r1);
        MemAccess b = w2->nextAccess(r2);
        EXPECT_EQ(a.pc, b.pc);
        // Addresses differ by the VMA base offset only; compare the
        // offsets within the processes' first VMAs via page distance.
        EXPECT_EQ(a.va.value - w1->vmas()[0]->start().value,
                  b.va.value - w2->vmas()[0]->start().value)
            << "diverged at access " << i;
        if (::testing::Test::HasFailure())
            break;
    }
    w1->teardown();
    w2->teardown();
}

TEST_P(WorkloadParamTest, UsesMultiplePcs)
{
    NativeSystem sys(PolicyKind::Thp, 3);
    auto wl = makeWorkload(GetParam(), quick());
    Process &p = sys.kernel().createProcess(GetParam());
    wl->setup(p);
    Rng rng(23);
    std::set<Addr> pcs;
    for (int i = 0; i < 5000; ++i)
        pcs.insert(wl->nextAccess(rng).pc);
    // The single-stream control uses one PC; real workloads several.
    const std::size_t expected = GetParam() == "tlbfriendly" ? 1 : 2;
    EXPECT_GE(pcs.size(), expected) << GetParam();
    wl->teardown();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadParamTest,
    ::testing::Values("svm", "pagerank", "hashjoin", "xsbench", "bt",
                      "tlbfriendly"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(AccessStream, ChunksMatchTheUnchunkedSequence)
{
    // Chunk boundaries must never change what is generated: the
    // stream is element-wise identical to a plain nextAccess loop,
    // including the short final chunk (1000 % 64 = 40).
    NativeSystem sys(PolicyKind::Thp, 3);
    auto w1 = makeWorkload("pagerank", quick(42));
    auto w2 = makeWorkload("pagerank", quick(42));
    Process &p1 = sys.kernel().createProcess("a");
    Process &p2 = sys.kernel().createProcess("b");
    w1->setup(p1);
    w2->setup(p2);

    constexpr std::uint64_t kTotal = 1000, kChunk = 64;
    Rng ref(9);
    AccessStream stream(*w2, kTotal, 9, kChunk);
    EXPECT_EQ(stream.chunkAccesses(), kChunk);

    std::uint64_t i = 0, chunks = 0;
    const MemAccess *chunk = nullptr;
    while (std::size_t n = stream.next(chunk)) {
        ++chunks;
        EXPECT_TRUE(n == kChunk || stream.done()) << "short mid-chunk";
        for (std::size_t j = 0; j < n; ++j, ++i) {
            const MemAccess a = w1->nextAccess(ref);
            EXPECT_EQ(a.pc, chunk[j].pc) << "access " << i;
            EXPECT_EQ(a.va.value - w1->vmas()[0]->start().value,
                      chunk[j].va.value - w2->vmas()[0]->start().value)
                << "access " << i;
            if (::testing::Test::HasFailure())
                break;
        }
        if (::testing::Test::HasFailure())
            break;
    }
    EXPECT_EQ(i, kTotal);
    EXPECT_EQ(chunks, (kTotal + kChunk - 1) / kChunk);
    EXPECT_EQ(stream.produced(), kTotal);
    EXPECT_TRUE(stream.done());
    EXPECT_EQ(stream.next(chunk), 0u);
    w1->teardown();
    w2->teardown();
}

TEST(Workloads, FactoryRejectsUnknown)
{
    EXPECT_DEATH((void)makeWorkload("nonsense", quick()), "unknown");
}

TEST(Workloads, PaperListHasFive)
{
    EXPECT_EQ(paperWorkloads().size(), 5u);
}

TEST(Workloads, InputFileReusePersistsCache)
{
    NativeSystem sys(PolicyKind::Ca, 3);
    auto w1 = makeWorkload("pagerank", quick());
    Process &p1 = sys.kernel().createProcess("r1");
    w1->setup(p1);
    ASSERT_TRUE(w1->inputFileId());
    const std::uint32_t file_id = *w1->inputFileId();
    File &f = sys.kernel().pageCache().file(file_id);
    const std::uint64_t cached = f.cachedPages();
    EXPECT_GT(cached, 0u);
    w1->teardown();
    sys.kernel().exitProcess(p1);

    // Second run against the same file: no new cache fills.
    auto w2 = makeWorkload("pagerank", quick());
    w2->setInputFile(file_id);
    Process &p2 = sys.kernel().createProcess("r2");
    w2->setup(p2);
    EXPECT_EQ(f.cachedPages(), cached);
    w2->teardown();
}

TEST(Hog, PinsRequestedFraction)
{
    NativeSystem sys(PolicyKind::Thp, 3);
    auto &pm = sys.kernel().physMem();
    const std::uint64_t free0 = pm.freePages();
    Rng rng(3);
    hogMemory(sys.kernel(), 0.25, rng);
    const double pinned =
        static_cast<double>(free0 - pm.freePages()) / pm.totalFrames();
    EXPECT_NEAR(pinned, 0.25, 0.02);
}

TEST(Hog, FreeMemoryStaysCoarse)
{
    // The hog must leave plenty of free huge pages (it fragments at
    // >2 MiB granularity, like the paper's).
    NativeSystem sys(PolicyKind::Thp, 3);
    Rng rng(3);
    hogMemory(sys.kernel(), 0.5, rng);
    std::uint64_t huge_free = 0;
    for (unsigned n = 0; n < sys.kernel().physMem().numNodes(); ++n) {
        const auto &buddy = sys.kernel().physMem().zone(n).buddy();
        for (unsigned o = kHugeOrder; o <= buddy.maxOrder(); ++o)
            huge_free += buddy.freeBlocks(o) * pagesInOrder(o);
    }
    // At least half of the remaining free memory is still huge-page
    // allocatable.
    EXPECT_GT(huge_free, sys.kernel().physMem().freePages() / 2);
}

TEST(Hog, ExitReleasesEverything)
{
    NativeSystem sys(PolicyKind::Thp, 3);
    auto &k = sys.kernel();
    const std::uint64_t free0 = k.physMem().freePages();
    Rng rng(3);
    Process &hog = hogMemory(k, 0.3, rng);
    k.exitProcess(hog);
    // Only the kernel metadata pool (page-table frames) stays taken.
    EXPECT_EQ(k.physMem().freePages(), free0 - k.kernelPoolPages());
}

TEST(Churn, PinsIslandsOnStockMachines)
{
    NativeSystem sys(PolicyKind::Thp, 3);
    const std::uint64_t free0 = sys.kernel().physMem().freePages();
    systemChurn(sys.kernel(), 32, 99);
    EXPECT_EQ(free0 - sys.kernel().physMem().freePages(),
              32 * kReadaheadPages);
}

TEST(Churn, CaMachinePacksThePins)
{
    NativeSystem sys(PolicyKind::Ca, 3);
    systemChurn(sys.kernel(), 32, 99);
    // All churn pages must form one contiguous physical run.
    File &log = sys.kernel().pageCache().file(0);
    Pfn first = log.frameFor(0);
    for (std::uint64_t p = 1; p < log.sizePages(); ++p) {
        if (!log.isCached(p))
            break;
        EXPECT_EQ(log.frameFor(p), first + p);
    }
}
