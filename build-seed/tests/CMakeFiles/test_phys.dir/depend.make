# Empty dependencies file for test_phys.
# This may be replaced when dependencies are built.
