file(REMOVE_RECURSE
  "CMakeFiles/micro_fault_scaling.dir/micro_fault_scaling.cc.o"
  "CMakeFiles/micro_fault_scaling.dir/micro_fault_scaling.cc.o.d"
  "micro_fault_scaling"
  "micro_fault_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fault_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
