#include "tlb/translation_sim.hh"

#include "base/logging.hh"
#include "base/simd.hh"
#include "obs/attribution.hh"
#include "obs/trace.hh"
#include "base/serialize.hh"

namespace contig
{

namespace
{

const char *
schemeToken(XlatScheme s)
{
    switch (s) {
      case XlatScheme::Base: return "base";
      case XlatScheme::Spot: return "spot";
      case XlatScheme::Rmm: return "rmm";
      case XlatScheme::Ds: return "ds";
    }
    return "?";
}

} // namespace

TranslationSim::TranslationSim(const XlatConfig &cfg, const PageTable &pt)
    : cfg_(cfg), tlb_(cfg.tlb),
      walker_(std::make_unique<Walker>(pt, cfg.walker)),
      chunkPhase_(obs::Phase::bind(obs::MetricRegistry::global(),
                                   "xlat.chunk"))
{
    init();
}

TranslationSim::TranslationSim(const XlatConfig &cfg,
                               const PageTable &guest_pt,
                               const VirtualMachine &vm)
    : cfg_(cfg), tlb_(cfg.tlb),
      walker_(std::make_unique<Walker>(guest_pt, vm, cfg.walker)),
      chunkPhase_(obs::Phase::bind(obs::MetricRegistry::global(),
                                   "xlat.chunk"))
{
    init();
}

bool
TranslationSim::simdActive() const
{
    return cfg_.engine == XlatEngine::Batched && simd::enabled();
}

void
TranslationSim::init()
{
    if (cfg_.scheme == XlatScheme::Spot)
        spot_ = std::make_unique<SpotEngine>(cfg_.spot);
    // Probe-kernel selection: the reference engine pins the scalar
    // loops end to end; the batched engine takes AVX2 when compiled
    // in, supported and not forced off. Identical results either way.
    const bool use_simd = simdActive();
    tlb_.setSimd(use_simd);
    walker_->setSimd(use_simd);
    if (spot_)
        spot_->setSimd(use_simd);
    if (obs::AttribRegistry::enabled()) {
        // Tables from different schemes/dimensions accumulate under
        // distinct labels in the registry, so one bench run produces a
        // side-by-side comparable attribution section.
        attrib_ = std::make_unique<obs::XlatAttribution>(
            std::string(schemeToken(cfg_.scheme)) +
            (walker_->virtualized() ? "_2d" : "_1d"));
    }
    metricSource_ = obs::MetricSource(
        obs::MetricRegistry::global(), "xlat",
        [this](obs::MetricSink &sink) { collectMetrics(sink); });
}

TranslationSim::~TranslationSim()
{
    if (attrib_)
        obs::AttribRegistry::global().absorbXlat(*attrib_);
}

void
TranslationSim::setContigIndex(
    std::shared_ptr<const obs::ContigClassIndex> idx)
{
    if (attrib_)
        attrib_->setIndex(std::move(idx));
}

void
TranslationSim::noteChunk(std::uint64_t chunk)
{
    if (attrib_)
        attrib_->setChunk(chunk);
}

void
TranslationSim::collectMetrics(obs::MetricSink &sink) const
{
    sink.counter("accesses", stats_.accesses);
    sink.counter("l1_hits", stats_.l1Hits);
    sink.counter("l2_hits", stats_.l2Hits);
    sink.counter("walks", stats_.walks);
    sink.counter("walk_refs", stats_.walkRefs);
    sink.counter("walk_cycles", stats_.walkCycles);
    sink.counter("exposed_cycles", stats_.exposedCycles);
    sink.counter("range_hits", stats_.rangeHits);
    sink.counter("segment_hits", stats_.segmentHits);
    {
        obs::MetricSink::Scope s(sink, "tlb");
        sink.summary("l2_miss_latency", l2MissLatency_);
        tlb_.collectMetrics(sink);
    }
    {
        obs::MetricSink::Scope s(sink, "walker");
        walker_->collectMetrics(sink);
    }
    if (spot_) {
        obs::MetricSink::Scope s(sink, "spot");
        spot_->collectMetrics(sink);
    }
    if (rangeTlb_) {
        obs::MetricSink::Scope s(sink, "range_tlb");
        rangeTlb_->collectMetrics(sink);
    }
    if (attrib_) {
        obs::MetricSink::Scope s(sink, "attrib");
        attrib_->collectMetrics(sink);
    }
}

void
TranslationSim::setSegments(std::vector<Seg> segs)
{
    if (cfg_.scheme == XlatScheme::Rmm) {
        rangeTable_ = std::make_unique<RangeTable>(std::move(segs));
        rangeTlb_ =
            std::make_unique<RangeTlb>(cfg_.rangeTlb, *rangeTable_);
    } else if (cfg_.scheme == XlatScheme::Ds) {
        // Dual direct mode: the workload's primary regions translate
        // through the segment registers. Merge the mapped segments
        // into maximal virtual spans (physical contiguity is the
        // host-side segment reservation the scheme assumes).
        std::sort(segs.begin(), segs.end(),
                  [](const Seg &a, const Seg &b) {
                      return a.vpn < b.vpn;
                  });
        for (const Seg &s : segs) {
            if (!segments_.empty()) {
                DirectSegment &last = segments_.back();
                if (last.base() + last.pages() == s.vpn) {
                    segments_.back() = DirectSegment(
                        last.base(), last.pages() + s.pages);
                    continue;
                }
            }
            segments_.emplace_back(s.vpn, s.pages);
        }
    }
}

/**
 * The L2-miss slow path, shared by both engines: verification walk,
 * scheme handling, cost accounting and the TLB refill. Everything in
 * here is per-event state the golden-equivalence test pins, so the
 * two engines call the exact same code; only the hit path differs.
 */
template <XlatScheme S, bool Virt>
void
TranslationSim::missPath(const MemAccess &a, Vpn vpn)
{
    CONTIG_TRACE(obs::TraceEventKind::TlbL2Miss, vpn);
    if constexpr (S == XlatScheme::Spot)
        spot_->predict(a.pc);
    const WalkResult walk = walker_->walk(vpn);
    stats_.walkCycles += walk.cycles;
    contig_assert(walk.hit, "access to unmapped va 0x%llx",
                  static_cast<unsigned long long>(a.va.value));
    if constexpr (Virt)
        CONTIG_TRACE(obs::TraceEventKind::NestedWalk, vpn, walk.refs,
                     walk.cycles);

    ++stats_.walks;
    stats_.walkRefs += walk.refs;

    Cycles exposed = walk.cycles;
    bool schemeHid = false; // walk cost hidden by SpOT / range hit
    if constexpr (S == XlatScheme::Spot) {
        const bool contig_ok =
            Virt ? (walk.guestContigBit && walk.nestedContigBit)
                 : walk.guestContigBit;
        SpotOutcome out = spot_->update(a.pc, walk.offset, contig_ok);
        switch (out) {
          case SpotOutcome::Correct:
            ++stats_.spotCorrect;
            CONTIG_TRACE(obs::TraceEventKind::SpotCorrect, a.pc,
                         static_cast<std::uint64_t>(walk.offset));
            exposed = 0; // walk latency fully hidden
            schemeHid = true;
            break;
          case SpotOutcome::Mispredicted:
            ++stats_.spotMispredicted;
            CONTIG_TRACE(obs::TraceEventKind::SpotMispredict, a.pc,
                         static_cast<std::uint64_t>(walk.offset));
            exposed = walk.cycles + cfg_.spot.flushPenaltyCycles;
            break;
          case SpotOutcome::NoPrediction:
            ++stats_.spotNoPrediction;
            CONTIG_TRACE(obs::TraceEventKind::SpotNoPredict, a.pc);
            break;
        }
    } else if constexpr (S == XlatScheme::Rmm) {
        contig_assert(rangeTlb_, "Rmm scheme without segments");
        if (rangeTlb_->access(vpn)) {
            ++stats_.rangeHits;
            exposed = 0; // range hit: translation without a walk
            schemeHid = true;
        }
    }
    // Base and Ds non-segment accesses pay the normal walk.

    stats_.exposedCycles += exposed;
    l2MissLatency_.add(static_cast<double>(exposed));
    if (attrib_) {
        obs::XlatOutcome out =
            walk.pscHit ? obs::XlatOutcome::PscWalk
                        : obs::XlatOutcome::FullWalk;
        if (schemeHid) {
            out = S == XlatScheme::Spot ? obs::XlatOutcome::SpotHit
                                        : obs::XlatOutcome::RangeHit;
        }
        attrib_->record(out, vpn, walk.cycles, exposed);
    }
    tlb_.fill(vpn, walk.mapping.order);
}

template <XlatScheme S, bool Virt>
void
TranslationSim::runChunkRef(const MemAccess *acc, std::size_t n)
{
    // The historical inner loop: per-access statistics writes and
    // out-of-line scalar TLB probes (accessRef). Kept as the golden
    // reference the batched loop is measured against.
    for (std::size_t i = 0; i < n; ++i) {
        const MemAccess &a = acc[i];
        ++stats_.accesses;
        const Vpn vpn = a.va.pageNumber();

        // Direct Segments: segment accesses bypass the TLB path
        // entirely. Only the Ds scheme ever installs segments, so the
        // other schemes' loops compile the check away.
        if constexpr (S == XlatScheme::Ds) {
            if (!segments_.empty()) {
                auto it = std::upper_bound(
                    segments_.begin(), segments_.end(), vpn,
                    [](Vpn v, const DirectSegment &s) {
                        return v < s.base();
                    });
                if (it != segments_.begin() &&
                    std::prev(it)->contains(vpn)) {
                    ++stats_.segmentHits;
                    if (attrib_)
                        attrib_->record(obs::XlatOutcome::SegmentHit,
                                        vpn, 0, 0);
                    continue;
                }
            }
        }

        // We do not know the mapped page size before looking it up;
        // probe the hierarchy as hardware does, trying both sizes.
        // The walk below re-fills with the true order.
        TlbLevel lvl = tlb_.accessRef(vpn, kHugeOrder);
        if (lvl == TlbLevel::Miss)
            lvl = tlb_.accessRef(vpn, 0);
        if (lvl == TlbLevel::L1) {
            ++stats_.l1Hits;
            if (attrib_)
                attrib_->record(obs::XlatOutcome::TlbHit, vpn, 0, 0);
            continue;
        }
        if (lvl == TlbLevel::L2) {
            ++stats_.l2Hits;
            if (attrib_)
                attrib_->record(obs::XlatOutcome::TlbHit, vpn, 0, 0);
            continue;
        }

        // L2 miss: the verification/page walk always happens.
        missPath<S, Virt>(a, vpn);
    }
}

template <XlatScheme S, bool Virt>
void
TranslationSim::runChunkBatched(const MemAccess *acc, std::size_t n)
{
    // Stage 1: peel the vpn lane off the AoS access records, so the
    // hot loop streams one sequential 8-byte lane and only touches
    // the full record again on the rare L2 miss.
    if (vpnLane_.size() < n)
        vpnLane_.resize(n);
    Vpn *const vpns = vpnLane_.data();
    for (std::size_t i = 0; i < n; ++i)
        vpns[i] = acc[i].va.pageNumber();

    // Stage 2: probe pipeline. Hit counters sink into chunk-local
    // accumulators (flushed once below) so the dominant L1-hit path
    // does no member-counter stores; everything rarer goes through
    // the shared missPath and writes stats_ directly.
    std::uint64_t l1_hits = 0;
    std::uint64_t l2_hits = 0;
    obs::XlatAttribution *const at = attrib_.get();
    for (std::size_t i = 0; i < n; ++i) {
        const Vpn vpn = vpns[i];

        if constexpr (S == XlatScheme::Ds) {
            if (!segments_.empty()) {
                auto it = std::upper_bound(
                    segments_.begin(), segments_.end(), vpn,
                    [](Vpn v, const DirectSegment &s) {
                        return v < s.base();
                    });
                if (it != segments_.begin() &&
                    std::prev(it)->contains(vpn)) {
                    ++stats_.segmentHits;
                    if (at)
                        at->record(obs::XlatOutcome::SegmentHit,
                                   vpn, 0, 0);
                    continue;
                }
            }
        }

        TlbLevel lvl = tlb_.access(vpn, kHugeOrder);
        if (lvl == TlbLevel::Miss)
            lvl = tlb_.access(vpn, 0);
        if (lvl != TlbLevel::Miss) {
            l1_hits += lvl == TlbLevel::L1;
            l2_hits += lvl == TlbLevel::L2;
            if (at)
                at->record(obs::XlatOutcome::TlbHit, vpn, 0, 0);
            continue;
        }

        missPath<S, Virt>(acc[i], vpn);
    }

    stats_.accesses += n;
    stats_.l1Hits += l1_hits;
    stats_.l2Hits += l2_hits;
}

void
TranslationSim::accessChunk(const MemAccess *a, std::size_t n)
{
    // The chunk phase observes wall time plus the modelled walk-cycle
    // delta the chunk added (the old per-walk timer cost two clock
    // reads on every L2 miss; per-chunk brackets are ~free).
    std::optional<obs::ScopedPhase> timer;
    if (cfg_.phaseTimers)
        timer.emplace(chunkPhase_, &stats_.walkCycles);

    const bool virt = walker_->virtualized();
    const bool ref = cfg_.engine == XlatEngine::Reference;
#define CONTIG_XLAT_DISPATCH(SCHEME)                                   \
      case XlatScheme::SCHEME:                                         \
        if (ref) {                                                     \
            virt ? runChunkRef<XlatScheme::SCHEME, true>(a, n)         \
                 : runChunkRef<XlatScheme::SCHEME, false>(a, n);       \
        } else {                                                       \
            virt ? runChunkBatched<XlatScheme::SCHEME, true>(a, n)     \
                 : runChunkBatched<XlatScheme::SCHEME, false>(a, n);   \
        }                                                              \
        break
    switch (cfg_.scheme) {
      CONTIG_XLAT_DISPATCH(Base);
      CONTIG_XLAT_DISPATCH(Spot);
      CONTIG_XLAT_DISPATCH(Rmm);
      CONTIG_XLAT_DISPATCH(Ds);
    }
#undef CONTIG_XLAT_DISPATCH
}

void
TranslationSim::access(const MemAccess &a)
{
    accessChunk(&a, 1);
}


void
TranslationSim::saveState(Serializer &s) const
{
    const std::size_t sec = s.beginSection(sectionTag('X', 'S', 'I', 'M'));
    s.u8(static_cast<std::uint8_t>(cfg_.scheme));
    s.u64(stats_.accesses);
    s.u64(stats_.l1Hits);
    s.u64(stats_.l2Hits);
    s.u64(stats_.walks);
    s.u64(stats_.walkRefs);
    s.u64(stats_.walkCycles);
    s.u64(stats_.exposedCycles);
    s.u64(stats_.spotCorrect);
    s.u64(stats_.spotMispredicted);
    s.u64(stats_.spotNoPrediction);
    s.u64(stats_.rangeHits);
    s.u64(stats_.segmentHits);
    const Summary::Raw lat = l2MissLatency_.raw();
    s.u64(lat.count);
    s.f64(lat.sum);
    s.f64(lat.min);
    s.f64(lat.max);
    tlb_.saveState(s);
    walker_->saveState(s);
    s.boolean(spot_ != nullptr);
    if (spot_)
        spot_->saveState(s);
    s.boolean(rangeTlb_ != nullptr);
    if (rangeTlb_)
        rangeTlb_->saveState(s);
    s.boolean(attrib_ != nullptr);
    if (attrib_)
        attrib_->save(s);
    s.endSection(sec);
}

void
TranslationSim::restoreState(Deserializer &d)
{
    d.expectSection(sectionTag('X', 'S', 'I', 'M'), "translation_sim");
    const std::uint8_t scheme = d.u8();
    if (scheme != static_cast<std::uint8_t>(cfg_.scheme))
        fatal("checkpoint scheme mismatch: file has scheme %u, this"
              " run has %u",
              scheme, static_cast<unsigned>(cfg_.scheme));
    stats_.accesses = d.u64();
    stats_.l1Hits = d.u64();
    stats_.l2Hits = d.u64();
    stats_.walks = d.u64();
    stats_.walkRefs = d.u64();
    stats_.walkCycles = d.u64();
    stats_.exposedCycles = d.u64();
    stats_.spotCorrect = d.u64();
    stats_.spotMispredicted = d.u64();
    stats_.spotNoPrediction = d.u64();
    stats_.rangeHits = d.u64();
    stats_.segmentHits = d.u64();
    Summary::Raw lat;
    lat.count = d.u64();
    lat.sum = d.f64();
    lat.min = d.f64();
    lat.max = d.f64();
    l2MissLatency_.setRaw(lat);
    tlb_.restoreState(d);
    walker_->restoreState(d);
    const bool has_spot = d.boolean();
    if (has_spot != (spot_ != nullptr))
        fatal("checkpoint SpOT presence mismatch (file %d, run %d)",
              has_spot ? 1 : 0, spot_ ? 1 : 0);
    if (spot_)
        spot_->restoreState(d);
    const bool has_range = d.boolean();
    if (has_range != (rangeTlb_ != nullptr))
        fatal("checkpoint range-TLB presence mismatch (file %d,"
              " run %d)",
              has_range ? 1 : 0, rangeTlb_ ? 1 : 0);
    if (rangeTlb_)
        rangeTlb_->restoreState(d);
    const bool has_attrib = d.boolean();
    if (has_attrib != (attrib_ != nullptr))
        fatal("checkpoint attribution presence mismatch (file %d,"
              " run %d) — was --attrib toggled between capture and"
              " resume?",
              has_attrib ? 1 : 0, attrib_ ? 1 : 0);
    if (attrib_)
        attrib_->restore(d);
}

} // namespace contig
