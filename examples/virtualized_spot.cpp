/**
 * @file
 * Walkthrough: memory virtualization with CA paging + SpOT.
 *
 * Boots a VM whose guest and host kernels both run CA paging, ages it
 * by running the five paper workloads consecutively (no reboots), and
 * for each shows:
 *   - the 2-D (gVA -> hPA) contiguity the two CA instances created,
 *   - the nested-paging walk overhead with and without SpOT,
 *   - SpOT's per-miss outcome breakdown (correct / mispredicted /
 *     no prediction).
 *
 *   ./examples/virtualized_spot [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace contig;

int
main(int argc, char **argv)
{
    const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
    printScaledBanner();
    std::printf("workload scale: %.2f\n", scale);

    VirtSystem sys(PolicyKind::Ca, PolicyKind::Ca, 42);

    Report rep("CA paging + SpOT inside one ageing VM");
    rep.header({"workload", "2-D maps for 99%", "base overhead",
                "SpOT overhead", "correct", "mispred", "no-pred"});

    for (const auto &name : paperWorkloads()) {
        auto wl = makeWorkload(name, {scale, 42});
        Process &proc = sys.guest().createProcess(name);
        wl->setup(proc);

        auto cov = coverage(extract2d(proc, sys.vm()));
        auto base =
            runTranslation(*wl, &sys.vm(), XlatScheme::Base, 600'000);
        auto spot =
            runTranslation(*wl, &sys.vm(), XlatScheme::Spot, 600'000);

        const double walks =
            spot.stats.walks ? static_cast<double>(spot.stats.walks)
                             : 1.0;
        rep.row({name, std::to_string(cov.mappingsFor99),
                 Report::pct(base.overhead.overhead),
                 Report::pct(spot.overhead.overhead, 2),
                 Report::pct(spot.stats.spotCorrect / walks),
                 Report::pct(spot.stats.spotMispredicted / walks),
                 Report::pct(spot.stats.spotNoPrediction / walks)});

        wl->teardown();
        sys.guest().exitProcess(proc);
    }
    rep.print();

    std::printf("\nTakeaway: the guest and host CA instances never "
                "coordinate, yet their independent placements compose "
                "into full 2-D contiguous mappings that a 32-entry "
                "PC-indexed offset predictor turns into near-zero "
                "translation overhead.\n");
    return 0;
}
