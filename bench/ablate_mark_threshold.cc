/**
 * @file
 * Ablation: the OS thrash-filter threshold — the contiguous-run size
 * (in base pages) above which CA paging sets the PTE contiguity bits
 * that allow SpOT prediction-table fills (§IV-C; the paper uses 32).
 * Too low, and offsets of small scattered mappings thrash the table;
 * too high, and legitimate mappings never become predictable. SVM
 * (scattered small VMAs + large regions) exposes both failure modes.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"
#include "policies/ca_paging.hh"

using namespace contig;

namespace
{

struct Outcome
{
    double overhead;
    double correct;
    double nopred;
};

Outcome
runWith(std::uint64_t threshold_pages, bool gate_enabled)
{
    KernelConfig hostCfg = kernelConfigFor(PolicyKind::Ca);
    CaPagingConfig ca;
    ca.markThresholdPages = threshold_pages;
    Kernel host(hostCfg, std::make_unique<CaPagingPolicy>(ca));
    VmConfig vcfg = ScaledDefaults::vm();
    VirtualMachine vm(host, std::make_unique<CaPagingPolicy>(ca), vcfg);

    auto wl = makeWorkload("svm", {1.0, 7});
    Process &proc = vm.guest().createProcess("svm");
    wl->setup(proc);

    XlatConfig cfg;
    cfg.tlb = ScaledDefaults::tlb();
    cfg.walker = ScaledDefaults::walker();
    cfg.scheme = XlatScheme::Spot;
    cfg.spot = ScaledDefaults::spot();
    cfg.spot.requireContigBits = gate_enabled;
    TranslationSim sim(cfg, proc.pageTable(), vm);
    Rng rng(99);
    for (std::uint64_t i = 0; i < 1000000; ++i)
        sim.access(wl->nextAccess(rng));

    const auto &s = sim.stats();
    const double walks = std::max<double>(s.walks, 1);
    return Outcome{overheadOf(s, ScaledDefaults::perf()).overhead,
                   s.spotCorrect / walks, s.spotNoPrediction / walks};
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("ablate_mark_threshold", argc, argv);

    Report rep("Ablation — contiguity-bit marking threshold "
               "(SpOT on svm, virtualized)");
    rep.header({"threshold (pages)", "overhead", "correct", "no-pred"});
    for (std::uint64_t t : {4ull, 32ull, 512ull, 8192ull}) {
        auto o = runWith(t, true);
        std::string label = std::to_string(t);
        if (t == 32)
            label += " [paper]";
        rep.row({label, Report::pct(o.overhead, 2),
                 Report::pct(o.correct), Report::pct(o.nopred)});
    }
    auto ungated = runWith(32, false);
    rep.row({"gate disabled", Report::pct(ungated.overhead, 2),
             Report::pct(ungated.correct), Report::pct(ungated.nopred)});
    out.add(rep);
    rep.print();

    std::printf("\nexpected: thresholds above the scattered-VMA size "
                "keep their offsets out of the table (mispredictions "
                "become no-predictions); thresholds below the paper's "
                "32 admit every offset, like disabling the gate\n");
    out.write();
    return 0;
}
