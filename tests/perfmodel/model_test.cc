#include <gtest/gtest.h>

#include "perfmodel/model.hh"

using namespace contig;

namespace
{

XlatStats
statsWith(std::uint64_t accesses, Cycles exposed, std::uint64_t walks,
          Cycles walk_cycles)
{
    XlatStats s;
    s.accesses = accesses;
    s.exposedCycles = exposed;
    s.walks = walks;
    s.walkCycles = walk_cycles;
    return s;
}

} // namespace

TEST(PerfModel, ZeroTranslationCostIsZeroOverhead)
{
    auto r = overheadOf(statsWith(1'000'000, 0, 0, 0));
    EXPECT_EQ(r.overhead, 0.0);
    EXPECT_GT(r.idealCycles, 0.0);
}

TEST(PerfModel, OverheadIsExposedOverIdeal)
{
    PerfModelConfig cfg;
    cfg.instructionsPerAccess = 4.0;
    cfg.baseCpi = 1.0;
    // 1M accesses -> 4M ideal cycles; 400k exposed -> 10%.
    auto r = overheadOf(statsWith(1'000'000, 400'000, 1000, 400'000),
                        cfg);
    EXPECT_NEAR(r.overhead, 0.10, 1e-9);
}

TEST(PerfModel, OverheadScalesWithCpi)
{
    PerfModelConfig cfg;
    cfg.baseCpi = 2.0; // slower ideal machine: same cycles, less overhead
    auto base = overheadOf(statsWith(1'000'000, 400'000, 1000, 400'000));
    auto slow =
        overheadOf(statsWith(1'000'000, 400'000, 1000, 400'000), cfg);
    EXPECT_NEAR(slow.overhead, base.overhead / 2, 1e-9);
}

TEST(PerfModel, EmptyStatsAreSafe)
{
    auto r = overheadOf(XlatStats{});
    EXPECT_EQ(r.overhead, 0.0);
    auto usl = estimateUsl(XlatStats{});
    EXPECT_EQ(usl.spotUslPerInstr, 0.0);
}

TEST(PerfModel, UslEquations)
{
    PerfModelConfig cfg;
    cfg.instructionsPerAccess = 4.0;
    cfg.baseCpi = 1.0;
    cfg.branchFraction = 0.06;
    cfg.branchResolutionCycles = 20.0;
    cfg.loadFraction = 0.2;

    // 1M accesses = 4M instructions; 10k walks of 80 cycles each.
    auto s = statsWith(1'000'000, 0, 10'000, 800'000);
    auto usl = estimateUsl(s, cfg);

    // Eq. (1): 0.06 * 20 * 0.2 = 0.24 USLs per instruction.
    EXPECT_NEAR(usl.spectreUslPerInstr, 0.24, 1e-9);
    // Eq. (2): (10k/4M) * 80 * 0.2 = 0.04.
    EXPECT_NEAR(usl.spotUslPerInstr, 0.04, 1e-9);
    EXPECT_NEAR(usl.dtlbMissesPerInstr, 0.0025, 1e-9);
}

TEST(PerfModel, AvgWalkCyclesHelper)
{
    auto s = statsWith(10, 0, 4, 400);
    EXPECT_NEAR(s.avgWalkCycles(), 100.0, 1e-9);
    XlatStats none;
    EXPECT_EQ(none.avgWalkCycles(), 0.0);
}
