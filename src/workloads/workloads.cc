#include "workloads/workloads.hh"

#include <algorithm>

#include "base/align.hh"
#include "base/logging.hh"
#include "mm/kernel.hh"

namespace contig
{

namespace
{

constexpr std::uint64_t kMiB = 1ull << 20;

/** Synthetic instruction addresses for the access-stream PCs. */
constexpr Addr
pc(unsigned idx)
{
    return 0x400000 + idx * 0x40;
}

} // namespace

void
Workload::setup(Process &proc)
{
    contig_assert(proc_ == nullptr, "workload already set up");
    proc_ = &proc;
    if (inputFileBytes_ > 0 && !inputFileId_) {
        inputFileId_ =
            proc.kernel().createFile(inputFileBytes_ >> kPageShift).id();
    }
    fileReadCursorPages_ = 0;
    for (const Region &r : regions_)
        vmas_.push_back(&proc.mmap(r.vmaBytes));
    touchPattern(proc);
}

void
Workload::populateFromFile(Process &proc, std::size_t anon_region)
{
    contig_assert(inputFileId_, "populateFromFile without an input file");
    File &file = proc.kernel().pageCache().file(*inputFileId_);
    const std::uint64_t heap_bytes = regions_[anon_region].touchBytes;
    const std::uint64_t heap_pages = heap_bytes >> kPageShift;
    // Read batches sized like readahead windows; write the heap in
    // proportion so file and anon allocations interleave.
    const std::uint64_t batch = 4 * kReadaheadPages;
    std::uint64_t heap_done = 0;
    std::uint64_t file_left =
        std::min(file.sizePages() - fileReadCursorPages_,
                 inputFileBytes_ >> kPageShift);
    const std::uint64_t file_total = file_left;
    while (file_left > 0) {
        const std::uint64_t n = std::min(batch, file_left);
        proc.kernel().readFile(file, fileReadCursorPages_, n);
        fileReadCursorPages_ += n;
        file_left -= n;
        // Matching share of heap writes.
        const std::uint64_t frac_pages =
            heap_pages * (file_total - file_left) / file_total;
        while (heap_done < frac_pages) {
            proc.touch(base(anon_region) + heap_done * kPageSize);
            ++heap_done;
        }
    }
    while (heap_done < heap_pages) {
        proc.touch(base(anon_region) + heap_done * kPageSize);
        ++heap_done;
    }
}

void
Workload::teardown()
{
    contig_assert(proc_, "teardown before setup");
    for (Vma *vma : vmas_)
        proc_->munmap(*vma);
    vmas_.clear();
    proc_ = nullptr;
}

void
Workload::fillAccesses(Rng &rng, MemAccess *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = nextAccess(rng);
}

void
Workload::touchPattern(Process &proc)
{
    for (std::size_t i = 0; i < regions_.size(); ++i)
        proc.touchRange(base(i), regions_[i].touchBytes);
}

std::uint64_t
Workload::footprintBytes() const
{
    std::uint64_t total = 0;
    for (const Region &r : regions_)
        total += r.touchBytes;
    return total;
}

std::uint64_t
Workload::reservedBytes() const
{
    std::uint64_t total = 0;
    for (const Region &r : regions_)
        total += r.vmaBytes;
    return total;
}

// --- svm ----------------------------------------------------------------

SvmWorkload::SvmWorkload(const WorkloadConfig &cfg) : Workload(cfg)
{
    // Region 0: CSR values (streamed), 1: column indices (streamed),
    // 2: model weights (skewed random), 3..10: scratch VMAs
    // (irregular accesses by a single instruction).
    const std::uint64_t values = scaled(140 * kMiB) + 44 * kPageSize;
    const std::uint64_t colidx = scaled(44 * kMiB);
    const std::uint64_t weights = scaled(36 * kMiB) + 200 * kPageSize;
    regions_.push_back({values + scaled(12 * kMiB), values});
    regions_.push_back({colidx + scaled(6 * kMiB), colidx});
    regions_.push_back({weights + scaled(2 * kMiB), weights});
    scratchFirst_ = regions_.size();
    // The scattered small VMAs keep their absolute (small) size at
    // any scale: they model fixed-size side structures.
    for (int i = 0; i < 16; ++i)
        regions_.push_back({3 * kMiB / 2, kMiB});
    weightZipf_ = std::make_unique<ZipfSampler>(weights / 64, 0.9);
    // The kdd12 dataset is read at startup and parsed into the CSR
    // arrays.
    inputFileBytes_ = scaled(120 * kMiB);
}

void
SvmWorkload::touchPattern(Process &proc)
{
    populateFromFile(proc, 0); // values parsed out of the dataset
    proc.touchRange(base(1), regions_[1].touchBytes);
    proc.touchRange(base(2), regions_[2].touchBytes);
    for (std::size_t i = scratchFirst_; i < regions_.size(); ++i)
        proc.touchRange(base(i), regions_[i].touchBytes);
}

MemAccess
SvmWorkload::nextAccess(Rng &rng)
{
    // Streams dominate the access mix; the random structures are
    // touched through slowly-moving hot pointers, so the new-page
    // rate lands in the paper's ~1 %-of-accesses DTLB-miss regime.
    const double roll = rng.uniform();
    if (roll < 0.48) {
        valuesCursor_ += 8;
        return {pc(0), at(0, valuesCursor_)};
    }
    if (roll < 0.70) {
        colidxCursor_ += 4;
        return {pc(1), at(1, colidxCursor_)};
    }
    if (roll < 0.96) {
        // Model-vector lookups: a hot feature is reused for a while,
        // then the pointer jumps to another (Zipf-skewed) feature.
        if (rng.chance(0.055))
            weightHot_ = weightZipf_->sample(rng) * 64;
        return {pc(2), at(2, weightHot_)};
    }
    // Irregular: one instruction hopping across small scattered VMAs
    // (the residual misses outside the 32 largest mappings, §VI-B).
    if (rng.chance(0.09)) {
        scratchVma_ =
            scratchFirst_ + rng.below(regions_.size() - scratchFirst_);
        scratchHot_ = rng.below(regions_[scratchVma_].touchBytes) & ~7ull;
    }
    return {pc(3), at(scratchVma_, scratchHot_)};
}

// --- pagerank -------------------------------------------------------------

PageRankWorkload::PageRankWorkload(const WorkloadConfig &cfg)
    : Workload(cfg)
{
    // 0: edge array (streamed), 1: source ranks, 2: destination ranks.
    const std::uint64_t edges = scaled(500 * kMiB) + 300 * kPageSize;
    const std::uint64_t ranks = scaled(58 * kMiB) + 100 * kPageSize;
    regions_.push_back({edges + scaled(30 * kMiB), edges});
    regions_.push_back({ranks + scaled(5 * kMiB), ranks});
    regions_.push_back({ranks + scaled(5 * kMiB), ranks});
    vertexZipf_ = std::make_unique<ZipfSampler>(ranks / 8, 0.8);
    // The friendster edge list is read at startup.
    inputFileBytes_ = scaled(160 * kMiB);
}

void
PageRankWorkload::touchPattern(Process &proc)
{
    populateFromFile(proc, 0); // edge array built from the graph file
    proc.touchRange(base(1), regions_[1].touchBytes);
    proc.touchRange(base(2), regions_[2].touchBytes);
}

MemAccess
PageRankWorkload::nextAccess(Rng &rng)
{
    const double roll = rng.uniform();
    if (roll < 0.55) {
        edgeCursor_ += 8;
        return {pc(0), at(0, edgeCursor_)};
    }
    if (roll < 0.80) {
        // Source-rank gather: hot vertex for a while, then jump to
        // the next (power-law) neighbour.
        if (rng.chance(0.030))
            srcHot_ = vertexZipf_->sample(rng) * 8;
        return {pc(1), at(1, srcHot_)};
    }
    if (rng.chance(0.030))
        dstHot_ = vertexZipf_->sample(rng) * 8;
    return {pc(2), at(2, dstHot_)};
}

// --- hashjoin --------------------------------------------------------------

HashjoinWorkload::HashjoinWorkload(const WorkloadConfig &cfg)
    : Workload(cfg)
{
    // 0: hash table (sized to the next power-of-two style slack: the
    // bloat source for eager paging in Table VI), 1: probe relation.
    const std::uint64_t table = scaled(430 * kMiB) + 150 * kPageSize;
    const std::uint64_t probe = scaled(386 * kMiB);
    regions_.push_back({scaled(816 * kMiB), table}); // ~47 % slack
    regions_.push_back({probe + scaled(2 * kMiB), probe});
}

void
HashjoinWorkload::touchPattern(Process &proc)
{
    // The build initializes the bucket array first (memset-style, so
    // first-touch is sequential), then inserts tuples into random
    // buckets — re-writes of already-mapped pages, no further faults.
    proc.touchRange(base(0), regions_[0].touchBytes);
    for (int i = 0; i < 4096; ++i)
        proc.touch(at(0, rng_.below(regions_[0].touchBytes) & ~7ull));
    // Probe relation is loaded sequentially.
    proc.touchRange(base(1), regions_[1].touchBytes);
}

MemAccess
HashjoinWorkload::nextAccess(Rng &rng)
{
    if (rng.uniform() < 0.50) {
        // Probe: each new bucket is uniformly random over the table;
        // a bucket's chain is then followed for a few accesses.
        if (rng.chance(0.020))
            probeHot_ = rng.below(regions_[0].touchBytes) & ~7ull;
        return {pc(0), at(0, probeHot_)};
    }
    scanCursor_ += 16;
    return {pc(1), at(1, scanCursor_)};
}

// --- xsbench ---------------------------------------------------------------

XsbenchWorkload::XsbenchWorkload(const WorkloadConfig &cfg)
    : Workload(cfg)
{
    // 0: nuclide grid (uniform random), 1: unionized energy grid
    // (random, binary-search-like), 2: concentrations (streamed).
    const std::uint64_t nuclide = scaled(700 * kMiB) + 250 * kPageSize;
    const std::uint64_t energy = scaled(100 * kMiB);
    const std::uint64_t concs = scaled(172 * kMiB);
    regions_.push_back({nuclide + scaled(2 * kMiB), nuclide});
    regions_.push_back({energy + scaled(1 * kMiB), energy});
    regions_.push_back({concs + scaled(1 * kMiB), concs});
}

MemAccess
XsbenchWorkload::nextAccess(Rng &rng)
{
    const double roll = rng.uniform();
    if (roll < 0.55) {
        // Cross-section lookup: a nuclide's grid row is scanned for a
        // while after each uniformly random jump.
        if (rng.chance(0.018))
            nuclideHot_ = rng.below(regions_[0].touchBytes) & ~7ull;
        nuclideHot_ = (nuclideHot_ + 8) % regions_[0].touchBytes;
        return {pc(0), at(0, nuclideHot_)};
    }
    if (roll < 0.80) {
        // Binary search over the unionized energy grid.
        if (rng.chance(0.018))
            energyHot_ = rng.below(regions_[1].touchBytes) & ~7ull;
        return {pc(1), at(1, energyHot_)};
    }
    concCursor_ += 8;
    return {pc(2), at(2, concCursor_)};
}

// --- bt ---------------------------------------------------------------------

BtWorkload::BtWorkload(const WorkloadConfig &cfg) : Workload(cfg)
{
    // Five solver arrays of equal size.
    const std::uint64_t arr = scaled(267 * kMiB) + 400 * kPageSize;
    for (int i = 0; i < 5; ++i)
        regions_.push_back({arr + scaled(kMiB / 4), arr});
}

void
BtWorkload::touchPattern(Process &proc)
{
    // Interleaved initialization: cell i of every array in turn — the
    // irregular fault pattern that makes the arrays' CA mappings
    // compete for free blocks.
    const std::uint64_t chunk = 32 * kHugeSize;
    const std::uint64_t arr = regions_[0].touchBytes;
    for (std::uint64_t off = 0; off < arr; off += chunk) {
        for (std::size_t a = 0; a < regions_.size(); ++a) {
            const std::uint64_t len =
                std::min<std::uint64_t>(chunk, arr - off);
            proc.touchRange(base(a) + off, len);
        }
    }
}

MemAccess
BtWorkload::nextAccess(Rng &rng)
{
    // Plane-major stride sweeps across the five solver arrays: the
    // k-dimension sweeps of BT stride by whole planes, so the TLB
    // misses are regular crossings into new huge pages — exactly the
    // regular-but-TLB-hostile pattern BT exhibits. A rare jump to a
    // random plane models the start of a new sweep phase.
    if (rng.chance(0.0005)) {
        sweepArray_ = rng.below(regions_.size());
        sweepCursor_ =
            rng.below(regions_[sweepArray_].touchBytes) & ~63ull;
        burst_ = 0;
    }
    // A few cell reads per row, then stride one plane row ahead.
    if (++burst_ >= 3) {
        burst_ = 0;
        sweepCursor_ += 32768;
    }
    return {pc(static_cast<unsigned>(sweepArray_)),
            at(sweepArray_, sweepCursor_ + burst_ * 8)};
}

// --- tlbfriendly -------------------------------------------------------------

TlbFriendlyWorkload::TlbFriendlyWorkload(const WorkloadConfig &cfg)
    : Workload(cfg)
{
    regions_.push_back({scaled(16 * kMiB), scaled(16 * kMiB)});
}

MemAccess
TlbFriendlyWorkload::nextAccess(Rng &rng)
{
    (void)rng;
    cursor_ += 8;
    return {pc(0), at(0, cursor_)};
}

// --- factory / hog -----------------------------------------------------------

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadConfig &cfg)
{
    if (name == "svm")
        return std::make_unique<SvmWorkload>(cfg);
    if (name == "pagerank")
        return std::make_unique<PageRankWorkload>(cfg);
    if (name == "hashjoin")
        return std::make_unique<HashjoinWorkload>(cfg);
    if (name == "xsbench")
        return std::make_unique<XsbenchWorkload>(cfg);
    if (name == "bt")
        return std::make_unique<BtWorkload>(cfg);
    if (name == "tlbfriendly")
        return std::make_unique<TlbFriendlyWorkload>(cfg);
    fatal("unknown workload '%s'", name.c_str());
}

const std::vector<std::string> &
paperWorkloads()
{
    static const std::vector<std::string> names{
        "svm", "pagerank", "hashjoin", "xsbench", "bt"};
    return names;
}

Process &
hogMemory(Kernel &kernel, double fraction, Rng &rng)
{
    Process &hog = kernel.createProcess("hog");
    hog.defragEligible = false;
    PhysicalMemory &pm = kernel.physMem();
    const std::uint64_t target =
        static_cast<std::uint64_t>(pm.totalFrames() * fraction);

    // Pin scattered 2-4 MiB chunks at random huge-aligned physical
    // positions: free memory stays fragmented at coarse (> 2 MiB)
    // granularity, as the paper's hog does. The chunks are mapped
    // into one big hog VMA so exiting the process releases them.
    Vma &vma = hog.addressSpace().mmap(target * kPageSize + kHugeSize,
                                       VmaKind::Anon);
    PageTable &pt = hog.pageTable();
    Vpn next_vpn = vma.start().pageNumber();

    std::uint64_t pinned = 0;
    std::uint64_t attempts = 0;
    while (pinned < target && attempts < 4 * pm.totalFrames()) {
        ++attempts;
        const unsigned order =
            kHugeOrder + static_cast<unsigned>(rng.below(2)); // 2 or 4 MiB
        const std::uint64_t n = pagesInOrder(order);
        Pfn where = alignDown(rng.below(pm.totalFrames() - n), n);
        if (!pm.allocSpecific(where, order))
            continue;
        kernel.claimFrames(where, order, FrameOwner::Anon, hog.pid(),
                           next_vpn << kPageShift);
        // Map the chunk as huge leaves.
        for (std::uint64_t off = 0; off < n;
             off += pagesInOrder(kHugeOrder)) {
            pt.map(next_vpn + off, where + off, kHugeOrder);
            for (std::uint64_t i = 0; i < pagesInOrder(kHugeOrder); ++i)
                ++pm.frame(where + off + i).mapCount;
        }
        // claimFrames refcounts the block head once; transfer the
        // count to per-huge-leaf granularity for clean unmapping.
        if (order > kHugeOrder) {
            for (std::uint64_t off = pagesInOrder(kHugeOrder); off < n;
                 off += pagesInOrder(kHugeOrder)) {
                pm.frame(where + off).refCount = 1;
            }
        }
        vma.allocatedPages += n;
        next_vpn += n;
        pinned += n;
    }
    kernel.counters().inc("hog.pinnedPages", pinned);
    return hog;
}

void
systemChurn(Kernel &kernel, std::uint64_t islands, std::uint64_t seed)
{
    // One readahead window per island: each burst of long-lived
    // pages (log writes, dentry/inode slabs) lands wherever the
    // free-list heads point after the intervening allocation entropy
    // (modelled as list shuffles). With the stock allocator that is a
    // random free block each time, leaving unmovable islands all over
    // memory; CA machines are immune because the per-file Offset
    // packs the same pages into one contiguous run.
    File &log = kernel.createFile(islands * kReadaheadPages);
    PhysicalMemory &pm = kernel.physMem();
    if (kernel.policy().steersFilePlacement()) {
        // CA-style kernels pack the long-lived pages contiguously via
        // the per-file Offset: the churn leaves one tidy run.
        for (std::uint64_t i = 0; i < islands; ++i)
            kernel.readFile(log, i * kReadaheadPages, 1);
    } else {
        // Stock kernels leave each burst wherever allocation entropy
        // put the free-list heads — uniformly random over free memory
        // from the workload's perspective.
        Rng rng(seed);
        std::uint64_t placed = 0;
        std::uint64_t attempts = 0;
        while (placed < islands && attempts < 64 * islands) {
            ++attempts;
            Pfn at = alignDown(
                rng.below(pm.totalFrames() - kReadaheadPages),
                kReadaheadPages);
            if (!pm.allocSpecific(at, log2Floor(kReadaheadPages)))
                continue;
            for (std::uint64_t j = 0; j < kReadaheadPages; ++j) {
                kernel.claimFrames(at + j, 0, FrameOwner::PageCache,
                                   log.id(),
                                   (placed * kReadaheadPages + j) *
                                       kPageSize);
                log.install(placed * kReadaheadPages + j, at + j);
            }
            ++placed;
        }
    }
    kernel.counters().inc("churn.islands", islands);
}

} // namespace contig
