/**
 * @file
 * Micro-benchmark: the cost of the allocation fast path itself — the
 * software-overhead claim behind Fig. 11, plus the FaultEngine's
 * batched-vs-per-fault comparison. The batched rows drive 64-page
 * spans through handleRange()/readFile() with
 * KernelConfig::faultBatching on and off; placements and simulated
 * cycles are identical either way (the golden-equivalence test), so
 * the delta is pure host-side amortization (one VMA lookup, chunked
 * placement, grouped PTE installs). Raw buddy/contiguity-map
 * primitive costs follow in a second table.
 */

#include <chrono>
#include <cstdio>
#include <functional>

#include "core/bench_io.hh"
#include "core/experiment.hh"
#include "core/report.hh"

using namespace contig;

namespace
{

constexpr std::uint64_t kBatchPages = 64;
constexpr std::uint64_t kTotalPages = 16384;

double
wallUs(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

std::unique_ptr<Kernel>
makeKernel(PolicyKind kind, bool batching)
{
    KernelConfig cfg = kernelConfigFor(kind);
    // 4 KiB faults only: the batched path applies to order-0 runs
    // (huge faults always resolve through the single-fault path).
    cfg.thpEnabled = false;
    cfg.faultBatching = batching;
    cfg.metricsPrefix = batching ? "micro_batched" : "micro_single";
    return std::make_unique<Kernel>(cfg, makePolicy(kind));
}

/** us/page to demand-populate `total` pages in kBatchPages spans. */
double
anonPopulate(PolicyKind kind, bool batching, std::uint64_t total)
{
    auto k = makeKernel(kind, batching);
    Process &p = k->createProcess("bench");
    Vma &vma = p.mmap(total * kPageSize);
    const double us = wallUs([&] {
        for (std::uint64_t off = 0; off < total; off += kBatchPages)
            p.touchRange(vma.start() + off * kPageSize,
                         kBatchPages * kPageSize);
    });
    return us / total;
}

/** us/page to read a `total`-page file in kBatchPages requests. */
double
readFilePath(PolicyKind kind, bool batching, std::uint64_t total)
{
    auto k = makeKernel(kind, batching);
    File &f = k->createFile(total);
    const double us = wallUs([&] {
        for (std::uint64_t pg = 0; pg < total; pg += kBatchPages)
            k->readFile(f, pg, kBatchPages);
    });
    return us / total;
}

/**
 * us/page to fault a warm file mapping in kBatchPages spans — the
 * per-fault machinery (VMA lookup, page-cache hit, install,
 * accounting) with no allocation cost in the way.
 */
double
fileTouch(PolicyKind kind, bool batching, std::uint64_t total)
{
    auto k = makeKernel(kind, batching);
    File &f = k->createFile(total);
    k->readFile(f, 0, total); // warm the cache (untimed)
    Process &p = k->createProcess("bench");
    Vma &vma = p.mmapFile(f.id(), total * kPageSize, 0);
    const double us = wallUs([&] {
        for (std::uint64_t off = 0; off < total; off += kBatchPages)
            p.touchRange(vma.start() + off * kPageSize,
                         kBatchPages * kPageSize, Access::Read);
    });
    return us / total;
}

void
addPathRow(Report &rep, const char *path, PolicyKind kind,
           double (*run)(PolicyKind, bool, std::uint64_t),
           std::uint64_t total, double &speedup)
{
    // Warm one run of each arm, then measure (steadies allocator and
    // page-cache cold-start noise).
    run(kind, false, total);
    run(kind, true, total);
    const double single = run(kind, false, total);
    const double batched = run(kind, true, total);
    speedup = single / batched;
    rep.row({path, policyName(kind), std::to_string(total),
             Report::num(single, 3), Report::num(batched, 3),
             Report::num(speedup, 2)});
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("micro_alloc_path", argc, argv);
    out.note("batch_pages", static_cast<std::uint64_t>(kBatchPages));
    out.note("total_pages", static_cast<std::uint64_t>(kTotalPages));

    Report rep("micro — fault path, batched vs per-fault "
               "(64-page spans, 4 KiB faults)");
    rep.header({"path", "policy", "pages", "per-fault us/page",
                "batched us/page", "speedup"});
    double anon_thp = 0, anon_ca = 0, touch_thp = 0, read_thp = 0,
           read_ca = 0;
    addPathRow(rep, "anon_populate_64", PolicyKind::Thp, anonPopulate,
               kTotalPages, anon_thp);
    // CA's contig-bit run marking is O(run length) per 4 KiB install
    // (quadratic over a sequential span, amortized away by THP in
    // real runs) — keep its span short so the bench stays quick.
    addPathRow(rep, "anon_populate_64", PolicyKind::Ca, anonPopulate,
               4096, anon_ca);
    addPathRow(rep, "file_touch_64", PolicyKind::Thp, fileTouch,
               kTotalPages, touch_thp);
    addPathRow(rep, "readfile_64", PolicyKind::Thp, readFilePath,
               kTotalPages, read_thp);
    addPathRow(rep, "readfile_64", PolicyKind::Ca, readFilePath,
               kTotalPages, read_ca);
    out.add(rep);
    rep.print();
    std::printf("\nbatched speedup: anon %.2fx (THP) / %.2fx (CA), "
                "file touch %.2fx, readfile fill %.2fx (THP) / "
                "%.2fx (CA)\n",
                anon_thp, anon_ca, touch_thp, read_thp, read_ca);

    // Raw primitive costs (the pieces the fault path composes).
    Report prim("micro — allocator primitives");
    prim.header({"op", "us/op"});
    {
        FrameArray frames(16 * pagesInOrder(kMaxOrder));
        BuddyAllocator buddy(frames, 0, frames.size());
        for (auto [label, order] :
             {std::pair<const char *, unsigned>{"buddy alloc+free 4K", 0},
              {"buddy alloc+free 2M", kHugeOrder}}) {
            const int iters = 100000;
            const double us = wallUs([&, order = order] {
                for (int i = 0; i < iters; ++i) {
                    auto pfn = buddy.alloc(order);
                    buddy.free(*pfn, order);
                }
            });
            prim.row({label, Report::num(us / iters, 4)});
        }
        Pfn target = 5 * pagesInOrder(kMaxOrder) + 512;
        const int iters = 100000;
        const double us = wallUs([&] {
            for (int i = 0; i < iters; ++i) {
                buddy.allocSpecific(target, kHugeOrder);
                buddy.free(target, kHugeOrder);
            }
        });
        prim.row({"buddy allocSpecific 2M", Report::num(us / iters, 4)});
    }
    for (int clusters : {8, 64, 512}) {
        const std::uint64_t block = pagesInOrder(kMaxOrder);
        ContiguityMap map(block);
        for (int i = 0; i < clusters; ++i)
            map.onBlockFree(2 * i * block); // every other block: no merge
        const int iters = 20000;
        const double us = wallUs([&] {
            for (int i = 0; i < iters; ++i)
                map.placeNextFit(block / 2);
        });
        prim.row({"contig-map placeNextFit (" +
                      std::to_string(clusters) + " clusters)",
                  Report::num(us / iters, 4)});
    }
    out.add(prim);
    prim.print();

    out.write();
    return 0;
}
