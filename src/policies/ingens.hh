/**
 * @file
 * Ingens-style huge-page management (Kwon et al., OSDI'16), as the
 * paper's low-bloat baseline: allocations happen at 4 KiB granularity
 * and a background daemon asynchronously promotes huge-aligned
 * regions to 2 MiB pages once their utilization crosses a threshold.
 * Contiguity is therefore bounded by the huge-page size (Fig. 7) but
 * bloat stays minimal (Table VI).
 */

#ifndef CONTIG_POLICIES_INGENS_HH
#define CONTIG_POLICIES_INGENS_HH

#include "mm/policy.hh"

namespace contig
{

struct IngensConfig
{
    /** Touched fraction of a 2 MiB region required for promotion. */
    double utilizationThreshold = 0.9;
    /** Promotion budget per daemon tick (huge regions). */
    unsigned promotionsPerTick = 8;
};

struct IngensStats
{
    std::uint64_t promotions = 0;
    std::uint64_t promotionFailures = 0;
    std::uint64_t scans = 0;
};

class IngensPolicy : public AllocationPolicy
{
  public:
    explicit IngensPolicy(const IngensConfig &cfg = {});

    std::string name() const override { return "ingens"; }

    /** Ingens allocates 4 KiB synchronously; huge pages come later. */
    bool allowsHugeFaults() const override { return false; }

    AllocResult allocate(Kernel &kernel, Process &proc, Vma &vma,
                         Vpn vpn, unsigned order) override;

    void onTick(Kernel &kernel) override;

    const IngensStats &stats() const { return stats_; }

  private:
    IngensConfig cfg_;
    IngensStats stats_;
};

} // namespace contig

#endif // CONTIG_POLICIES_INGENS_HH
