/**
 * @file
 * A Zone couples one buddy allocator with one contiguity map, matching
 * Linux's per-NUMA-node `struct zone` (the paper keeps one
 * contiguity_map instance per zone, §III-B).
 */

#ifndef CONTIG_PHYS_ZONE_HH
#define CONTIG_PHYS_ZONE_HH

#include <memory>
#include <optional>

#include "phys/buddy.hh"
#include "phys/contiguity_map.hh"

namespace contig
{

/** Tunables for one zone / the whole physical memory. */
struct ZoneConfig
{
    unsigned maxOrder = kMaxOrder;
    /** Keep the top-order free list address sorted (CA optimization). */
    bool sortedTopList = true;
    /**
     * Seed the free lists in scrambled order (0 = ascending),
     * modelling the churn a real machine's lists accumulate from
     * boot-time allocations and per-CPU batching. Ignored when
     * sortedTopList is set (the list is sorted either way).
     */
    std::uint64_t scrambleSeed = 0;
};

/**
 * One NUMA node's physical memory: a PFN range, its buddy allocator
 * and its contiguity map, kept in sync through the buddy's top-list
 * hooks.
 */
class Zone
{
  public:
    Zone(FrameArray &frames, NodeId node, Pfn base_pfn,
         std::uint64_t n_frames, const ZoneConfig &cfg = {});

    Zone(const Zone &) = delete;
    Zone &operator=(const Zone &) = delete;

    NodeId node() const { return node_; }
    Pfn basePfn() const { return buddy_.basePfn(); }
    std::uint64_t numFrames() const { return buddy_.numFrames(); }

    BuddyAllocator &buddy() { return buddy_; }
    const BuddyAllocator &buddy() const { return buddy_; }
    ContiguityMap &contigMap() { return contigMap_; }
    const ContiguityMap &contigMap() const { return contigMap_; }

    bool
    contains(Pfn pfn) const
    {
        return pfn >= basePfn() && pfn < basePfn() + numFrames();
    }

    /**
     * The zone's free-block size distribution, weighted by pages
     * (the Fig. 9 histogram for one zone): the contiguity map's
     * unaligned clusters at top-order scale plus the sub-top-order
     * buddy free lists. O(free blocks) — sampled, not kept hot.
     */
    Log2Histogram freeBlockHistogram() const;

  private:
    NodeId node_;
    ContiguityMap contigMap_;
    BuddyAllocator buddy_;
};

} // namespace contig

#endif // CONTIG_PHYS_ZONE_HH
