# Empty compiler generated dependencies file for contig_inspect.
# This may be replaced when dependencies are built.
