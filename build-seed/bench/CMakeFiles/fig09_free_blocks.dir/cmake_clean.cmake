file(REMOVE_RECURSE
  "CMakeFiles/fig09_free_blocks.dir/fig09_free_blocks.cc.o"
  "CMakeFiles/fig09_free_blocks.dir/fig09_free_blocks.cc.o.d"
  "fig09_free_blocks"
  "fig09_free_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_free_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
