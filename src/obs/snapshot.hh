/**
 * @file
 * Observatory snapshots: the cheap structured state captures the
 * StateSampler (obs/observatory.hh) takes at a fixed fault cadence.
 * One Snapshot records, per capture tick,
 *
 *  - per-zone buddy free-list counts and the free-memory
 *    fragmentation index (FMFI — Gorman's unusable free space index
 *    at the huge-page order),
 *  - the ContiguityMap cluster-size CDF (and optionally the full
 *    Fig. 9 free-block histogram),
 *  - per-VMA offset-run statistics (count / max / weighted-mean run
 *    length) in 1-D and nested 2-D dimensions,
 *  - the coverage metrics of §VI-A and the fault counters,
 *  - TLB/walker/SpOT counters when a TranslationSim is attached.
 *
 * Snapshots flatten into a FlatSnap (name -> value) for the JSONL
 * timeline export; consecutive snapshots are delta-encoded (changed
 * keys + removed keys) so long timelines stay small. The decode side
 * (TimelineRecord + applyRecord) is shared with tools/contig_inspect.
 */

#ifndef CONTIG_OBS_SNAPSHOT_HH
#define CONTIG_OBS_SNAPSHOT_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "contig/analysis.hh"

namespace contig
{
namespace obs
{

/** One zone's allocator state at a capture tick. */
struct ZoneSnap
{
    unsigned node = 0;
    std::uint64_t freePages = 0;
    /** Free-list lengths indexed by order, [0, maxOrder]. */
    std::vector<std::uint64_t> freeBlocks;
    /** Unusable free space index at kHugeOrder (0 good, 1 bad). */
    double fmfi = 0.0;
    std::uint64_t clusterCount = 0;
    std::uint64_t largestClusterPages = 0;
    /** Cluster-size CDF (pages-weighted log2 buckets). */
    Log2Histogram clusterHist;
    /** Full Fig. 9 free-block histogram (optional: pricier scan). */
    bool hasFreeHist = false;
    Log2Histogram freeHist;
};

/** Offset-run statistics for one VMA in one dimension. */
struct VmaRunSnap
{
    std::string dim;            //!< "1d" (VA->PA) or "2d" (gVA->hPA)
    std::uint32_t pid = 0;
    std::uint32_t vmaId = 0;
    std::uint64_t pages = 0;    //!< pages covered by the runs
    std::uint64_t runs = 0;     //!< number of contiguous runs
    std::uint64_t maxRun = 0;   //!< longest run, pages
    /** Sum(len^2)/Sum(len): the run length a random page sits in. */
    double weightedMeanRun = 0.0;
};

/** Translation-pipeline counters (TranslationSim attachment). */
struct XlatSnap
{
    std::uint64_t accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t walks = 0;
    std::uint64_t walkRefs = 0;
    std::uint64_t walkCycles = 0;
    std::uint64_t exposedCycles = 0;
    std::uint64_t spotCorrect = 0;
    std::uint64_t spotMispredicted = 0;
    std::uint64_t spotNoPrediction = 0;
    std::uint64_t spotFills = 0;
    double spotCoverage = 0.0;
    double spotAccuracy = 0.0;
};

/** One capture: everything the sampler saw at `tick`. */
struct Snapshot
{
    std::uint64_t seq = 0;  //!< capture index within this sampler
    std::uint64_t tick = 0; //!< simulated time (faults) at capture
    std::uint64_t faults = 0;
    std::uint64_t hugeFaults = 0;
    std::uint64_t cowFaults = 0;
    std::uint64_t fileFaults = 0;
    std::vector<ZoneSnap> zones;
    std::vector<VmaRunSnap> vmaRuns;
    bool hasCoverage = false;
    CoverageMetrics coverage;
    bool hasXlat = false;
    XlatSnap xlat;
    /**
     * Already-flat auxiliary keys folded verbatim into the timeline
     * stream: lock.<site>.* contention counters when lock stats are
     * on, xlat.shard<i>.* replay load when a ReplayEngine is
     * attached. Live consumers (tools/contig_top) read these.
     */
    std::map<std::string, double> extras;
};

/**
 * FMFI from per-order free-list counts (ZoneSnap::freeBlocks): the
 * fraction of free pages in blocks smaller than 2^order. Matches
 * BuddyAllocator::unusableFreeIndex on live state.
 */
double fmfiFromCounts(const std::vector<std::uint64_t> &counts,
                      unsigned order);

/**
 * Offset-run statistics per VMA: attribute every extracted segment
 * to the VMA containing its vpn and reduce to count/max/weighted
 * mean. `vma_spans` is (startVpn, endVpn, vmaId) per VMA, sorted.
 */
struct VmaSpan
{
    Vpn start = 0;
    Vpn end = 0;
    std::uint32_t vmaId = 0;
};

std::vector<VmaRunSnap> vmaRunStats(const std::vector<Seg> &segs,
                                    const std::vector<VmaSpan> &vma_spans,
                                    std::uint32_t pid,
                                    const std::string &dim);

// --- flat encoding --------------------------------------------------------

/** A snapshot flattened to stable metric names, for delta encoding. */
using FlatSnap = std::map<std::string, double>;

/** Changed-or-new keys plus removed keys between two FlatSnaps. */
struct FlatDelta
{
    FlatSnap set;
    std::vector<std::string> del;
};

FlatSnap flatten(const Snapshot &snap);
FlatDelta diffFlat(const FlatSnap &prev, const FlatSnap &next);
FlatSnap applyDelta(const FlatSnap &prev, const FlatDelta &delta);

// --- JSONL timeline records -----------------------------------------------

/**
 * One timeline line: a full flattened snapshot (`full`) or a delta
 * against the previous record of the same stream. Encoded as
 *
 *   {"stream":S,"domain":"...","seq":K,"tick":T,
 *    "kind":"full"|"delta","set":{...},"del":[...]}
 */
struct TimelineRecord
{
    std::uint64_t stream = 0;
    std::string domain;
    std::uint64_t seq = 0;
    std::uint64_t tick = 0;
    bool full = true;
    FlatSnap set;
    std::vector<std::string> del;
};

/** Encode one record as a single JSON line (no trailing newline). */
std::string encodeTimelineRecord(const TimelineRecord &rec);

/**
 * Decode one timeline line. Returns nullopt (and an error message,
 * if requested) on malformed input.
 */
std::optional<TimelineRecord>
decodeTimelineRecord(std::string_view line, std::string *err = nullptr);

/** Reconstruct the state after `rec`, given the state before it. */
FlatSnap applyRecord(const FlatSnap &prev, const TimelineRecord &rec);

} // namespace obs
} // namespace contig

#endif // CONTIG_OBS_SNAPSHOT_HH
