file(REMOVE_RECURSE
  "CMakeFiles/test_contig.dir/contig/analysis_test.cc.o"
  "CMakeFiles/test_contig.dir/contig/analysis_test.cc.o.d"
  "test_contig"
  "test_contig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
