#include "spot/spot.hh"

#include "base/logging.hh"
#include "obs/metrics.hh"
#include "base/serialize.hh"

namespace contig
{

SpotEngine::SpotEngine(const SpotConfig &cfg)
    : cfg_(cfg), wayStride_(simd::padLanes(cfg.ways)),
      pcTags_(cfg.sets * simd::padLanes(cfg.ways), simd::kNoTag64),
      offsets_(cfg.sets * simd::padLanes(cfg.ways), 0),
      confidence_(cfg.sets * simd::padLanes(cfg.ways), 0),
      valid_(cfg.sets * simd::padLanes(cfg.ways), 0),
      lastUse_(cfg.sets * simd::padLanes(cfg.ways), 0),
      simd_(simd::enabled())
{
    contig_assert(cfg.sets > 0 && cfg.ways > 0, "degenerate SpOT table");
}

unsigned
SpotEngine::setOf(Addr pc) const
{
    // Fold the PC a little before indexing: instruction addresses
    // share low-bit alignment.
    return static_cast<unsigned>(((pc >> 6) ^ (pc >> 12)) % cfg_.sets);
}

int
SpotEngine::findWay(unsigned base, Addr pc) const
{
    return simd::findTag(&pcTags_[base], cfg_.ways, pc, simd_);
}

std::optional<std::int64_t>
SpotEngine::predict(Addr pc)
{
    ++stats_.lookups;
    pending_.reset();
    pendingPc_ = pc;
    const unsigned base = setOf(pc) * wayStride_;
    const int w = findWay(base, pc);
    if (w >= 0 && confidence_[base + w] > cfg_.confidenceThreshold) {
        lastUse_[base + w] = ++clock_;
        pending_ = offsets_[base + w];
    }
    return pending_;
}

SpotOutcome
SpotEngine::update(Addr pc, std::int64_t true_offset, bool contig_ok)
{
    // Classify the in-flight speculation first.
    SpotOutcome outcome;
    if (pending_ && pendingPc_ == pc) {
        outcome = (*pending_ == true_offset) ? SpotOutcome::Correct
                                             : SpotOutcome::Mispredicted;
    } else {
        outcome = SpotOutcome::NoPrediction;
    }
    pending_.reset();
    switch (outcome) {
      case SpotOutcome::Correct:
        ++stats_.correct;
        break;
      case SpotOutcome::Mispredicted:
        ++stats_.mispredicted;
        break;
      case SpotOutcome::NoPrediction:
        ++stats_.noPrediction;
        break;
    }

    const bool fills_allowed = contig_ok || !cfg_.requireContigBits;

    const unsigned base = setOf(pc) * wayStride_;
    const int hit = findWay(base, pc);
    if (hit >= 0) {
        const unsigned i = base + hit;
        // Confidence bookkeeping happens on every walk, speculated or
        // not (§IV-C, "predictions are still calculated and compared").
        if (offsets_[i] == true_offset) {
            if (confidence_[i] < 3)
                ++confidence_[i];
        } else if (confidence_[i] > 0) {
            --confidence_[i];
        }
        // Offsets are replaced only at zero confidence, and only with
        // offsets the OS marked as belonging to large mappings.
        if (confidence_[i] == 0 && offsets_[i] != true_offset) {
            if (fills_allowed) {
                offsets_[i] = true_offset;
                confidence_[i] = 1;
                ++stats_.offsetReplacements;
            }
        }
        lastUse_[i] = ++clock_;
        return outcome;
    }

    // No entry for this PC: try to fill one.
    if (!fills_allowed) {
        ++stats_.fillsBlockedByBits;
        return outcome;
    }
    int victim = -1;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        const unsigned i = base + w;
        if (!valid_[i]) {
            victim = static_cast<int>(w);
            break;
        }
        // Only zero-confidence entries may be evicted; LRU among them.
        if (confidence_[i] == 0 &&
            (victim < 0 || lastUse_[i] < lastUse_[base + victim])) {
            victim = static_cast<int>(w);
        }
    }
    if (victim < 0)
        return outcome; // set full of confident entries: drop the fill
    contig_assert(pc != simd::kNoTag64, "pc collides with the "
                  "invalid-lane sentinel");
    const unsigned i = base + victim;
    valid_[i] = 1;
    pcTags_[i] = pc;
    offsets_[i] = true_offset;
    confidence_[i] = 1;
    lastUse_[i] = ++clock_;
    ++stats_.fills;
    return outcome;
}

void
SpotEngine::flush()
{
    for (std::size_t i = 0; i < valid_.size(); ++i) {
        valid_[i] = 0;
        pcTags_[i] = simd::kNoTag64;
    }
    pending_.reset();
}

void
SpotEngine::collectMetrics(obs::MetricSink &sink) const
{
    sink.counter("lookups", stats_.lookups);
    sink.counter("correct", stats_.correct);
    sink.counter("mispredictions", stats_.mispredicted);
    sink.counter("no_prediction", stats_.noPrediction);
    sink.counter("fills", stats_.fills);
    sink.counter("fills_blocked_by_bits", stats_.fillsBlockedByBits);
    sink.counter("offset_replacements", stats_.offsetReplacements);
}


void
SpotEngine::saveState(Serializer &s) const
{
    const std::size_t sec = s.beginSection(sectionTag('S', 'P', 'O', 'T'));
    s.u32(cfg_.sets);
    s.u32(cfg_.ways);
    s.u64(clock_);
    s.u64(stats_.lookups);
    s.u64(stats_.correct);
    s.u64(stats_.mispredicted);
    s.u64(stats_.noPrediction);
    s.u64(stats_.fills);
    s.u64(stats_.fillsBlockedByBits);
    s.u64(stats_.offsetReplacements);
    s.u64(static_cast<std::uint64_t>(cfg_.sets) * cfg_.ways);
    // Padding slots are not checkpointed; invalid slots write a
    // canonical zero tag (the live lane holds the sentinel instead).
    for (unsigned set = 0; set < cfg_.sets; ++set) {
        for (unsigned w = 0; w < cfg_.ways; ++w) {
            const unsigned i = set * wayStride_ + w;
            s.u64(valid_[i] ? pcTags_[i] : 0);
            s.i64(offsets_[i]);
            s.u8(confidence_[i]);
            s.boolean(valid_[i] != 0);
            s.u64(lastUse_[i]);
        }
    }
    s.boolean(pending_.has_value());
    s.i64(pending_ ? *pending_ : 0);
    s.u64(pendingPc_);
    s.endSection(sec);
}

void
SpotEngine::restoreState(Deserializer &d)
{
    d.expectSection(sectionTag('S', 'P', 'O', 'T'), "spot");
    const unsigned sets = d.u32();
    const unsigned ways = d.u32();
    if (sets != cfg_.sets || ways != cfg_.ways)
        fatal("checkpoint SpOT geometry mismatch: file has %ux%u, this"
              " run has %ux%u",
              sets, ways, cfg_.sets, cfg_.ways);
    clock_ = d.u64();
    stats_.lookups = d.u64();
    stats_.correct = d.u64();
    stats_.mispredicted = d.u64();
    stats_.noPrediction = d.u64();
    stats_.fills = d.u64();
    stats_.fillsBlockedByBits = d.u64();
    stats_.offsetReplacements = d.u64();
    const std::uint64_t n = d.u64();
    if (n != static_cast<std::uint64_t>(cfg_.sets) * cfg_.ways)
        fatal("checkpoint SpOT entry count mismatch: %llu vs %llu",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(cfg_.sets) * cfg_.ways);
    for (unsigned set = 0; set < cfg_.sets; ++set) {
        for (unsigned w = 0; w < cfg_.ways; ++w) {
            const unsigned i = set * wayStride_ + w;
            const std::uint64_t tag = d.u64();
            offsets_[i] = d.i64();
            confidence_[i] = d.u8();
            valid_[i] = d.boolean() ? 1 : 0;
            pcTags_[i] = valid_[i] ? tag : simd::kNoTag64;
            lastUse_[i] = d.u64();
        }
    }
    const bool has_pending = d.boolean();
    const std::int64_t pending = d.i64();
    pending_ = has_pending ? std::optional<std::int64_t>(pending)
                           : std::nullopt;
    pendingPc_ = d.u64();
}

} // namespace contig
