/**
 * @file
 * Reproduces Fig. 1c: coverage of the 32 largest mappings over the
 * execution of XSBench — Translation Ranger coalesces asynchronously
 * (coverage rises late, after post-allocation migrations), while CA
 * paging generates contiguity instantly, at allocation time.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"

using namespace contig;

namespace
{

/** Sample the cov32 timeline at this fault cadence. */
constexpr std::uint64_t kSamplePeriod = 512;

std::vector<std::pair<std::uint64_t, double>>
timelineFor(PolicyKind kind)
{
    NativeSystem sys(kind, 7);
    auto wl = makeWorkload("xsbench", {1.0, 7});
    auto r = sys.run(*wl, kSamplePeriod);

    // Ranger's coalescing continues after the allocation phase:
    // extend the timeline with post-allocation daemon epochs (the
    // steady-state part of the paper's x-axis).
    auto timeline = r.cov32Timeline;
    Process *proc = wl->process();
    const std::uint64_t allocation_end = timeline.back().first;
    for (int epoch = 1; epoch <= 24; ++epoch) {
        sys.kernel().policy().onTick(sys.kernel());
        auto cov = coverage(extractSegs(proc->pageTable()));
        timeline.emplace_back(allocation_end + epoch * kSamplePeriod,
                              cov.cov32);
    }
    sys.finish(*wl);
    return timeline;
}

double
at(const std::vector<std::pair<std::uint64_t, double>> &tl, double frac)
{
    if (tl.empty())
        return 0.0;
    std::size_t idx = static_cast<std::size_t>(frac * (tl.size() - 1));
    return tl[idx].second;
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("fig01c_ranger_delay", argc, argv);

    auto ranger = timelineFor(PolicyKind::Ranger);
    auto ca = timelineFor(PolicyKind::Ca);

    Report rep("Fig. 1c — cov32 over XSBench execution "
               "(allocation phase + steady state)");
    rep.header({"execution", "ranger", "CA"});
    for (int pct = 0; pct <= 100; pct += 10) {
        rep.row({std::to_string(pct) + "%",
                 Report::pct(at(ranger, pct / 100.0)),
                 Report::pct(at(ca, pct / 100.0))});
    }
    out.add(rep);
    rep.print();

    std::printf("\npaper: CA reaches high coverage immediately "
                "(allocation-time contiguity); ranger's migrations "
                "take most of the execution to coalesce\n");
    out.write();
    return 0;
}
