/**
 * @file
 * Extension experiment: CA paging + ranger combination (paper §VI-C:
 * "mutually assisted ... a good strategy to shield contiguity
 * against external fragmentation"). Under heavy hog pressure CA's
 * allocation-time placement is capped by the largest free holes;
 * the combined policy lets a need-gated ranger daemon repair exactly
 * those VMAs, while paying no migration cost when CA alone suffices.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"
#include "policies/ca_ranger.hh"

using namespace contig;

namespace
{

struct Outcome
{
    double cov32 = 0.0;
    std::uint64_t migratedPages = 0;
};

Outcome
runOne(const char *which, double pressure)
{
    KernelConfig cfg = kernelConfigFor(PolicyKind::Ca);
    std::unique_ptr<AllocationPolicy> pol;
    if (std::string(which) == "ca")
        pol = std::make_unique<CaPagingPolicy>();
    else if (std::string(which) == "ranger") {
        cfg = kernelConfigFor(PolicyKind::Ranger);
        pol = std::make_unique<RangerPolicy>();
    } else {
        pol = std::make_unique<CaRangerPolicy>();
    }
    Kernel k(cfg, std::move(pol));
    Rng rng(13);
    if (pressure > 0)
        hogMemory(k, pressure, rng);

    auto wl = makeWorkload("xsbench", {1.0, 7});
    Process &p = k.createProcess("xs");
    wl->setup(p);
    // Steady phase: daemons run.
    for (int epoch = 0; epoch < 48; ++epoch)
        k.policy().onTick(k);

    Outcome out;
    out.cov32 = coverageTopK(extractSegs(p.pageTable()), 32);
    out.migratedPages = k.counters().get("migrate.pages");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("ext_ca_ranger", argc, argv);

    Report rep("Extension — CA paging + ranger combination "
               "(xsbench, final cov32 / pages migrated)");
    rep.header({"pressure", "CA alone", "ranger alone", "CA+ranger",
                "CA+ranger migrations", "ranger migrations"});
    for (double pressure : {0.0, 0.25, 0.5}) {
        auto ca = runOne("ca", pressure);
        auto rg = runOne("ranger", pressure);
        auto combo = runOne("combo", pressure);
        char label[16];
        std::snprintf(label, sizeof(label), "hog-%.0f%%",
                      pressure * 100);
        rep.row({label, Report::pct(ca.cov32), Report::pct(rg.cov32),
                 Report::pct(combo.cov32),
                 std::to_string(combo.migratedPages),
                 std::to_string(rg.migratedPages)});
    }
    out.add(rep);
    rep.print();

    std::printf("\nexpected: without pressure the combo equals CA and "
                "migrates nothing (ranger alone migrates everything); "
                "under pressure the need-gated daemon matches or beats "
                "both parents' coverage\n");
    out.write();
    return 0;
}
