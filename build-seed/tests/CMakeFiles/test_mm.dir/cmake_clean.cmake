file(REMOVE_RECURSE
  "CMakeFiles/test_mm.dir/mm/address_space_test.cc.o"
  "CMakeFiles/test_mm.dir/mm/address_space_test.cc.o.d"
  "CMakeFiles/test_mm.dir/mm/fault_engine_test.cc.o"
  "CMakeFiles/test_mm.dir/mm/fault_engine_test.cc.o.d"
  "CMakeFiles/test_mm.dir/mm/kernel_test.cc.o"
  "CMakeFiles/test_mm.dir/mm/kernel_test.cc.o.d"
  "CMakeFiles/test_mm.dir/mm/mm_property_test.cc.o"
  "CMakeFiles/test_mm.dir/mm/mm_property_test.cc.o.d"
  "CMakeFiles/test_mm.dir/mm/page_cache_test.cc.o"
  "CMakeFiles/test_mm.dir/mm/page_cache_test.cc.o.d"
  "CMakeFiles/test_mm.dir/mm/page_table_test.cc.o"
  "CMakeFiles/test_mm.dir/mm/page_table_test.cc.o.d"
  "test_mm"
  "test_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
