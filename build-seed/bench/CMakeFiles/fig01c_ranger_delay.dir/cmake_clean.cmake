file(REMOVE_RECURSE
  "CMakeFiles/fig01c_ranger_delay.dir/fig01c_ranger_delay.cc.o"
  "CMakeFiles/fig01c_ranger_delay.dir/fig01c_ranger_delay.cc.o.d"
  "fig01c_ranger_delay"
  "fig01c_ranger_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01c_ranger_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
