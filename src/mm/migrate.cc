#include "mm/migrate.hh"

#include "base/align.hh"
#include "base/logging.hh"
#include "mm/kernel.hh"
#include "obs/trace.hh"

namespace contig
{

MigrateResult
migrateLeaf(Kernel &kernel, Process &proc, Vpn vpn, Pfn dest_pfn)
{
    PageTable &pt = proc.pageTable();
    auto m = pt.lookup(vpn);
    if (!m || !m->valid())
        return MigrateResult::NotMapped;
    const unsigned order = m->order;
    const Vpn base = vpn & ~(pagesInOrder(order) - 1);
    contig_assert(isAligned(dest_pfn, pagesInOrder(order)),
                  "migration destination must be order-aligned");
    if (m->pfn == dest_pfn)
        return MigrateResult::AlreadyThere;

    PhysicalMemory &pm = kernel.physMem();
    if (pm.frame(m->pfn).refCount > 1)
        return MigrateResult::Shared;
    if (!pm.allocSpecific(dest_pfn, order))
        return MigrateResult::DestBusy;

    const std::uint64_t n = pagesInOrder(order);
    const Frame &src = pm.frame(m->pfn);
    kernel.claimFrames(dest_pfn, order, src.ownerKind, src.ownerId,
                       src.ownerVaddr);

    pt.unmap(base, order);
    pt.map(base, dest_pfn, order, m->writable, m->cow);
    if (m->contigBit)
        pt.setContigBit(base, true);
    for (std::uint64_t i = 0; i < n; ++i) {
        --pm.frame(m->pfn + i).mapCount;
        ++pm.frame(dest_pfn + i).mapCount;
    }
    Pfn old = m->pfn;
    kernel.putFrame(old, order);

    CONTIG_TRACE(obs::TraceEventKind::Migration, old, dest_pfn, n);
    kernel.counters().inc("migrate.pages", n);
    kernel.counters().inc("migrate.shootdowns");
    kernel.counters().inc("migrate.cycles",
                          kernel.config().copyCyclesPerPage * n +
                              kernel.config().faultBaseCycles);
    return MigrateResult::Done;
}

MigrateResult
swapLeaves(Kernel &kernel, Process &proc, Vpn vpn, Pfn dest_pfn)
{
    PageTable &pt = proc.pageTable();
    auto m = pt.lookup(vpn);
    if (!m || !m->valid())
        return MigrateResult::NotMapped;
    const unsigned order = m->order;
    const Vpn base = vpn & ~(pagesInOrder(order) - 1);
    if (m->pfn == dest_pfn)
        return MigrateResult::AlreadyThere;

    PhysicalMemory &pm = kernel.physMem();
    if (pm.frame(m->pfn).refCount > 1)
        return MigrateResult::Shared;

    // Identify the exchange partner: the destination block must be
    // one exclusive anonymous leaf of the same order.
    const Frame &df = pm.frame(dest_pfn);
    if (df.ownerKind != FrameOwner::Anon || df.refCount != 1)
        return MigrateResult::DestBusy;
    Process *other = kernel.findProcess(df.ownerId);
    if (!other)
        return MigrateResult::DestBusy;
    const Vpn other_vpn = Gva{df.ownerVaddr}.pageNumber();
    auto om = other->pageTable().lookup(other_vpn);
    if (!om || !om->valid() || om->order != order ||
        om->pfn != dest_pfn || om->cow) {
        return MigrateResult::DestBusy;
    }

    const Vpn other_base = other_vpn & ~(pagesInOrder(order) - 1);
    pt.unmap(base, order);
    other->pageTable().unmap(other_base, order);
    pt.map(base, dest_pfn, order, m->writable, m->cow);
    other->pageTable().map(other_base, m->pfn, order, om->writable,
                           om->cow);
    if (m->contigBit)
        pt.setContigBit(base, true);
    if (om->contigBit)
        other->pageTable().setContigBit(other_base, true);

    // Swap the owner metadata of the two blocks (mapcounts stay 1:1).
    const std::uint64_t n = pagesInOrder(order);
    for (std::uint64_t i = 0; i < n; ++i) {
        Frame &fa = pm.frame(m->pfn + i);
        Frame &fb = pm.frame(dest_pfn + i);
        // Atomics are not std::swap-able; migrations run in exclusive
        // contexts (policy daemons), so relaxed exchanges suffice.
        const auto kind = fa.ownerKind.load(std::memory_order_relaxed);
        fa.ownerKind.store(fb.ownerKind.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
        fb.ownerKind.store(kind, std::memory_order_relaxed);
        const auto id = fa.ownerId.load(std::memory_order_relaxed);
        fa.ownerId.store(fb.ownerId.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        fb.ownerId.store(id, std::memory_order_relaxed);
        const auto va = fa.ownerVaddr.load(std::memory_order_relaxed);
        fa.ownerVaddr.store(fb.ownerVaddr.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
        fb.ownerVaddr.store(va, std::memory_order_relaxed);
        const auto ref = fa.refCount.load(std::memory_order_relaxed);
        fa.refCount.store(fb.refCount.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
        fb.refCount.store(ref, std::memory_order_relaxed);
        const auto map = fa.mapCount.load(std::memory_order_relaxed);
        fa.mapCount.store(fb.mapCount.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
        fb.mapCount.store(map, std::memory_order_relaxed);
    }

    CONTIG_TRACE(obs::TraceEventKind::Migration, m->pfn, dest_pfn, 2 * n);
    kernel.counters().inc("migrate.pages", 2 * n);
    kernel.counters().inc("migrate.shootdowns", 2);
    kernel.counters().inc("migrate.cycles",
                          3 * kernel.config().copyCyclesPerPage * n +
                              kernel.config().faultBaseCycles);
    return MigrateResult::Done;
}

bool
promoteHuge(Kernel &kernel, Process &proc, Vpn huge_vpn)
{
    contig_assert(isAligned(huge_vpn, pagesInOrder(kHugeOrder)),
                  "promotion region must be huge-aligned");
    PageTable &pt = proc.pageTable();
    PhysicalMemory &pm = kernel.physMem();
    const std::uint64_t n = pagesInOrder(kHugeOrder);

    // All 512 leaves must be exclusive 4 KiB anon mappings.
    std::vector<Pfn> old(n, kInvalidPfn);
    for (std::uint64_t i = 0; i < n; ++i) {
        auto m = pt.lookup(huge_vpn + i);
        if (!m || !m->valid() || m->order != 0 || m->cow)
            return false;
        if (pm.frame(m->pfn).refCount > 1)
            return false;
        old[i] = m->pfn;
    }

    auto huge = pm.alloc(kHugeOrder, proc.homeNode());
    if (!huge)
        return false;

    const Frame &src = pm.frame(old[0]);
    kernel.claimFrames(*huge, kHugeOrder, src.ownerKind, src.ownerId,
                       huge_vpn << kPageShift);
    for (std::uint64_t i = 0; i < n; ++i) {
        pt.unmap(huge_vpn + i, 0);
        --pm.frame(old[i]).mapCount;
        kernel.putFrame(old[i], 0);
    }
    pt.map(huge_vpn, *huge, kHugeOrder, true, false);
    for (std::uint64_t i = 0; i < n; ++i)
        ++pm.frame(*huge + i).mapCount;

    CONTIG_TRACE(obs::TraceEventKind::Promotion, huge_vpn, n);
    kernel.counters().inc("promote.pages", n);
    kernel.counters().inc("promote.cycles",
                          kernel.config().copyCyclesPerPage * n +
                              kernel.config().faultBaseCycles);
    return true;
}

} // namespace contig
