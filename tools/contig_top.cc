/**
 * @file
 * contig_top: the observatory's live consumer. Tails the JSONL
 * timeline a running bench streams via `--timeline FILE` and renders
 * a refreshing top-style view of the run: per-zone fragmentation
 * (free pages, FMFI, clusters, largest cluster), fault progress and
 * rate, per-shard replay throughput, and — when the bench runs with
 * `--lock-stats` — the hottest lock sites by contention.
 *
 *   contig_top <timeline.jsonl>            follow until interrupted
 *   contig_top <timeline.jsonl> --once     render one frame and exit
 *     [--interval MS]  refresh period (default 500)
 *     [--frames N]     stop after N frames (0 = forever)
 *     [--plain]        no ANSI clear; frames append (logs, tests)
 *
 * The file is re-polled at each refresh, so it works equally on a
 * finished run (one static frame) and on a bench that is still
 * writing. Decoding reuses obs/snapshot's TimelineRecord machinery —
 * the same delta stream contig_inspect consumes offline.
 */

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/snapshot.hh"

using namespace contig;

namespace
{

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "contig_top: %s\n", msg.c_str());
    std::exit(2);
}

/** One stream's reconstructed live state. */
struct StreamState
{
    std::uint64_t id = 0;
    std::string domain;
    std::uint64_t seq = 0;
    std::uint64_t tick = 0;
    obs::FlatSnap state;
    /** Previous frame's fault count, for the rate column. */
    double prevFaults = 0;
    bool sawFrame = false;
};

/**
 * Incremental reader: keeps the byte offset across refreshes and
 * consumes only complete lines, so a record the bench is mid-write
 * on is picked up next frame.
 */
class TimelineTail
{
  public:
    explicit TimelineTail(std::string path) : path_(std::move(path)) {}

    /** Drain new complete lines into the per-stream states. */
    void
    poll(std::map<std::uint64_t, StreamState> &streams)
    {
        std::ifstream in(path_, std::ios::binary);
        if (!in) {
            if (!openedOnce_)
                die("cannot open timeline '" + path_ + "'");
            return; // file vanished mid-run; keep the last state
        }
        openedOnce_ = true;
        in.seekg(0, std::ios::end);
        const std::streamoff size = in.tellg();
        if (size < offset_)
            offset_ = 0; // truncated (bench restarted): re-read
        in.seekg(offset_);
        std::string line;
        while (std::getline(in, line)) {
            if (in.eof() && !line.empty() && line.back() != '\n') {
                // Partial trailing line (no newline yet): leave it
                // for the next poll.
                break;
            }
            offset_ += static_cast<std::streamoff>(line.size()) + 1;
            ++lines_;
            if (line.empty())
                continue;
            std::string err;
            auto rec = obs::decodeTimelineRecord(line, &err);
            if (!rec)
                die(path_ + ":" + std::to_string(lines_) + ": " + err);
            StreamState &s = streams[rec->stream];
            s.id = rec->stream;
            s.domain = rec->domain;
            s.seq = rec->seq;
            s.tick = rec->tick;
            s.state = obs::applyRecord(s.state, *rec);
        }
    }

    std::uint64_t lines() const { return lines_; }

  private:
    std::string path_;
    std::streamoff offset_ = 0;
    std::uint64_t lines_ = 0;
    bool openedOnce_ = false;
};

double
flatGet(const obs::FlatSnap &s, const std::string &key, double fallback)
{
    const auto it = s.find(key);
    return it == s.end() ? fallback : it->second;
}

void
renderZones(const StreamState &s)
{
    bool header = false;
    for (int n = 0;; ++n) {
        const std::string z = "zone" + std::to_string(n) + ".";
        const auto fp = s.state.find(z + "free_pages");
        if (fp == s.state.end())
            break;
        if (!header) {
            std::printf("  %-6s %12s %8s %9s %12s\n", "zone",
                        "free_pages", "fmfi", "clusters", "largest_pgs");
            header = true;
        }
        std::printf("  %-6d %12.0f %8.4f %9.0f %12.0f\n", n, fp->second,
                    flatGet(s.state, z + "fmfi", 0),
                    flatGet(s.state, z + "clusters", 0),
                    flatGet(s.state, z + "largest_pages", 0));
    }
}

void
renderShards(const StreamState &s)
{
    bool header = false;
    for (int i = 0;; ++i) {
        const std::string p = "xlat.shard" + std::to_string(i) + ".";
        const auto acc = s.state.find(p + "accesses");
        if (acc == s.state.end())
            break;
        if (!header) {
            std::printf("  %-6s %12s %11s %11s %11s %11s\n", "shard",
                        "accesses", "busy_us", "stall_us", "wait_us",
                        "Macc/s");
            header = true;
        }
        const double busy_us = flatGet(s.state, p + "busy_us", 0);
        std::printf("  %-6d %12.0f %11.0f %11.0f %11.0f %11.2f\n", i,
                    acc->second, busy_us,
                    flatGet(s.state, p + "stall_us", 0),
                    flatGet(s.state, p + "wait_us", 0),
                    busy_us > 0 ? acc->second / busy_us : 0.0);
    }
}

void
renderLocks(const StreamState &s)
{
    // lock.<site>.<leaf>: group the four leaves back per site. Sites
    // contain dots ("vma.fault"), so split on the known leaf names.
    struct Row
    {
        double acq = 0, cont = 0, retries = 0, spin = 0;
    };
    std::map<std::string, Row> rows;
    for (const auto &[key, value] : s.state) {
        if (key.rfind("lock.", 0) != 0)
            continue;
        const std::size_t leaf_dot = key.find_last_of('.');
        const std::string site = key.substr(5, leaf_dot - 5);
        const std::string leaf = key.substr(leaf_dot + 1);
        Row &r = rows[site];
        if (leaf == "acquisitions")
            r.acq = value;
        else if (leaf == "contended")
            r.cont = value;
        else if (leaf == "retries")
            r.retries = value;
        else if (leaf == "spin_us")
            r.spin = value;
    }
    if (rows.empty())
        return;
    // Hottest first: contended acquisitions, then wait time.
    std::vector<std::pair<std::string, Row>> ranked(rows.begin(),
                                                    rows.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.cont != b.second.cont)
                      return a.second.cont > b.second.cont;
                  return a.second.spin > b.second.spin;
              });
    std::printf("  %-20s %12s %11s %10s %11s\n", "lock site",
                "acquisitions", "contended", "retries", "spin_us");
    for (const auto &[site, r] : ranked)
        std::printf("  %-20s %12.0f %11.0f %10.0f %11.0f\n",
                    site.c_str(), r.acq, r.cont, r.retries, r.spin);
}

void
renderFrame(const std::string &path, std::uint64_t frame,
            std::map<std::uint64_t, StreamState> &streams,
            std::uint64_t lines, double interval_s, bool plain)
{
    if (!plain)
        std::fputs("\x1b[2J\x1b[H", stdout); // clear + home
    std::printf("contig_top — %s   frame %" PRIu64 ", %zu streams, "
                "%" PRIu64 " records\n\n",
                path.c_str(), frame, streams.size(), lines);
    for (auto &[id, s] : streams) {
        const double faults = flatGet(s.state, "faults", 0);
        const double dfaults = s.sawFrame ? faults - s.prevFaults : 0;
        std::printf("stream %" PRIu64 "  [%s]  seq %" PRIu64
                    "  tick %" PRIu64 "\n",
                    id, s.domain.c_str(), s.seq, s.tick);
        if (faults > 0 || s.state.count("faults"))
            std::printf("  faults %.0f (huge %.0f, cow %.0f, file %.0f)"
                        "  rate %.0f/s\n",
                        faults, flatGet(s.state, "faults.huge", 0),
                        flatGet(s.state, "faults.cow", 0),
                        flatGet(s.state, "faults.file", 0),
                        interval_s > 0 ? dfaults / interval_s : 0.0);
        s.prevFaults = faults;
        s.sawFrame = true;
        renderZones(s);
        renderShards(s);
        renderLocks(s);
        std::printf("\n");
    }
    std::fflush(stdout);
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: contig_top <timeline.jsonl> [--once]"
                 " [--interval MS] [--frames N] [--plain]\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    long interval_ms = 500;
    long frames = 0; // 0 = forever
    bool plain = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_next = i + 1 < argc;
        if (arg == "--once")
            frames = 1;
        else if (arg == "--interval" && has_next)
            interval_ms = std::strtol(argv[++i], nullptr, 10);
        else if (arg == "--frames" && has_next)
            frames = std::strtol(argv[++i], nullptr, 10);
        else if (arg == "--plain")
            plain = true;
        else if (!arg.empty() && arg[0] == '-')
            usage();
        else if (path.empty())
            path = arg;
        else
            usage();
    }
    if (path.empty() || interval_ms < 0 || frames < 0)
        usage();

    TimelineTail tail(path);
    std::map<std::uint64_t, StreamState> streams;
    const double interval_s = static_cast<double>(interval_ms) / 1000.0;
    for (std::uint64_t frame = 1;; ++frame) {
        tail.poll(streams);
        renderFrame(path, frame, streams, tail.lines(), interval_s,
                    plain);
        if (frames != 0 && frame >= static_cast<std::uint64_t>(frames))
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
    return 0;
}
