#include "core/bench_io.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/json.hh"
#include "base/logging.hh"
#include "core/config.hh"
#include "obs/metrics.hh"
#include "obs/observatory.hh"
#include "obs/trace.hh"

namespace contig
{

namespace
{

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

} // namespace

BenchOutput::BenchOutput(std::string bench, int argc, char **argv)
    : bench_(std::move(bench))
{
    parseArgs(argc, argv);

    if (jsonPath_.empty())
        if (const char *env = std::getenv("CONTIG_JSON_OUT"))
            jsonPath_ = env;
    if (tracePath_.empty())
        if (const char *env = std::getenv("CONTIG_TRACE_OUT"))
            tracePath_ = env;
    if (timelinePath_.empty())
        if (const char *env = std::getenv("CONTIG_TIMELINE_OUT"))
            timelinePath_ = env;
    if (threads_ == 1)
        if (const char *env = std::getenv("CONTIG_THREADS"))
            threads_ = static_cast<unsigned>(
                std::max(1l, std::strtol(env, nullptr, 10)));
    if (xlatThreads_ == 1)
        if (const char *env = std::getenv("CONTIG_XLAT_THREADS"))
            xlatThreads_ = static_cast<unsigned>(
                std::max(1l, std::strtol(env, nullptr, 10)));
    if (xlatChunk_ == 0)
        if (const char *env = std::getenv("CONTIG_XLAT_CHUNK"))
            xlatChunk_ = static_cast<std::uint64_t>(
                std::max(0l, std::strtol(env, nullptr, 10)));

    if (!timelinePath_.empty() &&
        !obs::TimelineSink::global().open(timelinePath_))
        fatal("cannot open --timeline output '%s'",
              timelinePath_.c_str());

    if (!tracePath_.empty()) {
        obs::TraceSink &sink = obs::TraceSink::global();
        if (sink.categoryMask() == 0)
            sink.setCategoryMask(obs::kCatAll);
    }
    if (const char *env = std::getenv("CONTIG_TRACE_CATEGORIES"))
        obs::TraceSink::global().setCategoryMask(
            obs::parseTraceCategories(env));
}

BenchOutput::~BenchOutput()
{
    if (!written_)
        write();
}

void
BenchOutput::parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        const bool has_next = i + 1 < argc;
        if (arg == "--json" && has_next) {
            jsonPath_ = argv[++i];
        } else if (arg == "--trace" && has_next) {
            tracePath_ = argv[++i];
        } else if (arg == "--timeline" && has_next) {
            timelinePath_ = argv[++i];
        } else if (arg == "--threads" && has_next) {
            const long n = std::strtol(argv[++i], nullptr, 10);
            if (n < 1)
                fatal("%s: --threads wants a positive count, got '%s'",
                      bench_.c_str(), argv[i]);
            threads_ = static_cast<unsigned>(n);
        } else if (arg == "--xlat-threads" && has_next) {
            const long n = std::strtol(argv[++i], nullptr, 10);
            if (n < 1)
                fatal("%s: --xlat-threads wants a positive count,"
                      " got '%s'",
                      bench_.c_str(), argv[i]);
            xlatThreads_ = static_cast<unsigned>(n);
        } else if (arg == "--xlat-chunk" && has_next) {
            const long n = std::strtol(argv[++i], nullptr, 10);
            if (n < 1)
                fatal("%s: --xlat-chunk wants a positive access count,"
                      " got '%s'",
                      bench_.c_str(), argv[i]);
            xlatChunk_ = static_cast<std::uint64_t>(n);
        } else if (arg == "--trace-categories" && has_next) {
            const char *list = argv[++i];
            const std::uint32_t mask = obs::parseTraceCategories(list);
            if (mask == 0)
                fatal("%s: unknown trace category in '%s'\n"
                      "valid: all, fault, alloc, migrate, walk, spot,"
                      " daemon, phase, replay (or a hex mask)",
                      bench_.c_str(), list);
            obs::TraceSink::global().setCategoryMask(mask);
        } else {
            fatal("%s: unknown argument '%s'\n"
                  "usage: %s [--json FILE] [--trace FILE]"
                  " [--timeline FILE] [--trace-categories LIST]"
                  " [--threads N] [--xlat-threads N] [--xlat-chunk N]",
                  bench_.c_str(), argv[i], bench_.c_str());
        }
    }
}

void
BenchOutput::note(std::string_view key, std::string_view value)
{
    notes_.push_back({std::string(key), std::string(value), 0.0, false});
}

void
BenchOutput::note(std::string_view key, double value)
{
    notes_.push_back({std::string(key), {}, value, true});
}

void
BenchOutput::note(std::string_view key, std::uint64_t value)
{
    note(key, static_cast<double>(value));
}

void
BenchOutput::add(const Report &rep)
{
    reports_.push_back(rep);
}

void
BenchOutput::write()
{
    written_ = true;

    if (!jsonPath_.empty()) {
        JsonWriter w;
        w.beginObject();
        w.field("schema_version", kSchemaVersion);
        w.field("bench", bench_);

        w.key("config");
        w.beginObject();
        w.field("host_nodes", ScaledDefaults::kHostNodes);
        w.field("host_node_bytes", ScaledDefaults::kHostNodeBytes);
        w.field("guest_nodes", ScaledDefaults::kGuestNodes);
        w.field("guest_node_bytes", ScaledDefaults::kGuestNodeBytes);
        for (const Note &n : notes_) {
            w.key(n.key);
            if (n.isNum)
                w.value(n.num);
            else
                w.value(n.str);
        }
        // The RunInfo reproducibility record: RNG seeds and the full
        // knob set of every kernel the run instantiated.
        w.key("run");
        obs::RunInfo::global().writeJson(w);
        w.endObject();

        w.key("rows");
        w.beginArray();
        for (const Report &rep : reports_)
            rep.toJson(w);
        w.endArray();

        w.key("metrics");
        obs::MetricRegistry::global().writeJson(w);

        w.endObject();

        std::FILE *f = std::fopen(jsonPath_.c_str(), "w");
        if (!f)
            fatal("cannot open --json output '%s'", jsonPath_.c_str());
        const std::string &doc = w.str();
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("json: wrote %s\n", jsonPath_.c_str());
    }

    if (!tracePath_.empty()) {
        obs::TraceSink &sink = obs::TraceSink::global();
        const bool ok = endsWith(tracePath_, ".jsonl")
                            ? sink.writeJsonl(tracePath_)
                            : sink.writeChromeTrace(tracePath_);
        if (!ok)
            fatal("cannot open --trace output '%s'", tracePath_.c_str());
        std::printf("trace: wrote %s (%llu events, %llu dropped)\n",
                    tracePath_.c_str(),
                    static_cast<unsigned long long>(sink.size()),
                    static_cast<unsigned long long>(sink.dropped()));
    }

    if (!timelinePath_.empty()) {
        obs::TimelineSink &sink = obs::TimelineSink::global();
        const std::uint64_t records = sink.records();
        const std::uint64_t streams = sink.streams();
        sink.close();
        std::printf("timeline: wrote %s (%llu snapshots, %llu streams)\n",
                    timelinePath_.c_str(),
                    static_cast<unsigned long long>(records),
                    static_cast<unsigned long long>(streams));
    }

    std::fflush(stdout);
}

} // namespace contig
