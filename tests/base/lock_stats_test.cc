/**
 * Lock-contention accounting tests. These run under TSan in the
 * sanitizer CI job (see scripts/ci.sh), so they double as the
 * data-race proof for the striped counters and the instrumented
 * SpinLock / MaybeGuard paths.
 */

#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "base/lock_stats.hh"
#include "base/sync.hh"

using namespace contig;

namespace
{

class LockStatsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        LockStatsRegistry::global().resetCounters();
        wasEnabled_ = LockStatsRegistry::enabled();
    }

    void
    TearDown() override
    {
        LockStatsRegistry::setEnabled(wasEnabled_);
        LockStatsRegistry::global().resetCounters();
    }

    bool wasEnabled_ = false;
};

TEST_F(LockStatsTest, SiteRegistrationIsStableAndDeduplicated)
{
    LockSite &a = LockStatsRegistry::global().site("test.dedup");
    LockSite &b = LockStatsRegistry::global().site("test.dedup");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.name(), "test.dedup");

    bool found = false;
    for (const LockSite *s : LockStatsRegistry::global().sites())
        if (s == &a)
            found = true;
    EXPECT_TRUE(found);
}

TEST_F(LockStatsTest, CountsExactAcquisitionsAcrossThreads)
{
    LockSite &site = LockStatsRegistry::global().site("test.exact");
    site.reset();

    constexpr unsigned kThreads = 4;
    constexpr unsigned kIters = 2000;
    SpinLock lock;
    lock.bindStats(&site);

    std::uint64_t shared = 0;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (unsigned i = 0; i < kIters; ++i) {
                std::lock_guard<SpinLock> g(lock);
                ++shared;
            }
        });
    for (std::thread &th : threads)
        th.join();

    EXPECT_EQ(shared, std::uint64_t{kThreads} * kIters);
    const LockSite::Totals t = site.totals();
    // Every lock() is exactly one acquisition, contended or not.
    EXPECT_EQ(t.acquisitions, std::uint64_t{kThreads} * kIters);
    EXPECT_LE(t.contended, t.acquisitions);
    // Contended time only accrues on contended acquisitions.
    if (t.contended == 0) {
        EXPECT_EQ(t.spinNs, 0u);
    }
}

TEST_F(LockStatsTest, ForcedContentionIsObserved)
{
    LockSite &site = LockStatsRegistry::global().site("test.forced");
    site.reset();

    SpinLock lock;
    lock.bindStats(&site);

    // Hold the lock while a second thread tries to take it: that
    // acquisition must be counted as contended, with wait time.
    lock.lock();
    std::thread waiter([&] {
        std::lock_guard<SpinLock> g(lock);
    });
    // Give the waiter time to reach the contended path.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    lock.unlock();
    waiter.join();

    const LockSite::Totals t = site.totals();
    EXPECT_EQ(t.acquisitions, 2u); // holder + waiter
    EXPECT_GE(t.contended, 1u);
    EXPECT_GT(t.spinNs, 0u);
}

TEST_F(LockStatsTest, UnboundLockKeepsSiteUntouched)
{
    LockSite &site = LockStatsRegistry::global().site("test.unbound");
    site.reset();

    SpinLock lock; // no bindStats
    for (int i = 0; i < 100; ++i) {
        std::lock_guard<SpinLock> g(lock);
    }

    const LockSite::Totals t = site.totals();
    EXPECT_EQ(t.acquisitions, 0u);
    EXPECT_EQ(t.contended, 0u);
    EXPECT_EQ(t.spinNs, 0u);
}

TEST_F(LockStatsTest, MaybeGuardInstrumentsSharedMutex)
{
    LockSite &site = LockStatsRegistry::global().site("test.guard");
    site.reset();

    std::shared_mutex mu;
    {
        MaybeGuard<std::shared_mutex> g(mu, /*engage=*/true, &site);
    }
    {
        // Disengaged guards must not count.
        MaybeGuard<std::shared_mutex> g(mu, /*engage=*/false, &site);
    }
    {
        MaybeSharedGuard<std::shared_mutex> g(mu, /*engage=*/true,
                                              &site);
    }
    LockSite::Totals t = site.totals();
    EXPECT_EQ(t.acquisitions, 2u);
    EXPECT_EQ(t.contended, 0u);

    // A writer arriving while a reader holds the mutex is contended.
    mu.lock_shared();
    std::thread writer([&] {
        MaybeGuard<std::shared_mutex> g(mu, /*engage=*/true, &site);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mu.unlock_shared();
    writer.join();

    t = site.totals();
    EXPECT_EQ(t.acquisitions, 3u);
    EXPECT_GE(t.contended, 1u);
    EXPECT_GT(t.spinNs, 0u);
}

TEST_F(LockStatsTest, RetriesAccumulate)
{
    LockSite &site = LockStatsRegistry::global().site("test.retries");
    site.reset();
    site.noteRetries(0); // no-op
    EXPECT_EQ(site.totals().retries, 0u);
    site.noteRetries(3);
    site.noteRetries(2);
    EXPECT_EQ(site.totals().retries, 5u);
}

TEST_F(LockStatsTest, StripesFoldAcrossManyThreads)
{
    LockSite &site = LockStatsRegistry::global().site("test.stripes");
    site.reset();

    // More threads than stripes: several threads share a stripe and
    // the fold must still be exact.
    constexpr unsigned kThreads = 12;
    constexpr unsigned kIters = 500;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (unsigned i = 0; i < kIters; ++i)
                site.noteAcquire();
        });
    for (std::thread &th : threads)
        th.join();
    EXPECT_EQ(site.totals().acquisitions,
              std::uint64_t{kThreads} * kIters);
}

TEST_F(LockStatsTest, EnableSwitchRoundTrips)
{
    LockStatsRegistry::setEnabled(true);
    EXPECT_TRUE(LockStatsRegistry::enabled());
    LockStatsRegistry::setEnabled(false);
    EXPECT_FALSE(LockStatsRegistry::enabled());
}

TEST_F(LockStatsTest, ResetCountersZeroesEverySite)
{
    LockSite &site = LockStatsRegistry::global().site("test.reset");
    site.noteAcquire();
    site.noteContended(123);
    site.noteRetries(7);
    LockStatsRegistry::global().resetCounters();
    const LockSite::Totals t = site.totals();
    EXPECT_EQ(t.acquisitions, 0u);
    EXPECT_EQ(t.contended, 0u);
    EXPECT_EQ(t.retries, 0u);
    EXPECT_EQ(t.spinNs, 0u);
}

TEST_F(LockStatsTest, OffsetRingSitePointerRoundTrips)
{
    LockSite &site = LockStatsRegistry::global().site("test.ring");
    LockSite *saved = LockStatsRegistry::offsetRingSite();
    LockStatsRegistry::setOffsetRingSite(&site);
    EXPECT_EQ(LockStatsRegistry::offsetRingSite(), &site);
    LockStatsRegistry::setOffsetRingSite(saved);
}

} // namespace
