/**
 * @file
 * contigsim — command-line driver over the library: run any workload
 * under any allocation policy, natively or virtualized, with any
 * translation scheme, and print contiguity + translation metrics.
 *
 *   contigsim [options]
 *     --workload NAME   svm|pagerank|hashjoin|xsbench|bt|tlbfriendly
 *                       (default pagerank)
 *     --policy NAME     thp|4k|ca|eager|ingens|ranger|ideal
 *                       (default ca; used for guest AND host)
 *     --virt            run inside a VM (nested paging)
 *     --scheme NAME     base|spot|rmm|ds   (default base)
 *     --scale F         footprint multiplier (default 1.0)
 *     --accesses N      steady-state accesses (default 2000000)
 *     --hog F           pre-fragment: pin fraction F of memory
 *     --seed N          RNG seed (default 7)
 *     --pt-levels N     4 or 5 (default 4)
 *
 * Examples:
 *   contigsim --workload xsbench --policy ca --virt --scheme spot
 *   contigsim --workload svm --policy eager --hog 0.25
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace contig;

namespace
{

struct Options
{
    std::string workload = "pagerank";
    std::string policy = "ca";
    bool virt = false;
    std::string scheme = "base";
    double scale = 1.0;
    std::uint64_t accesses = 2'000'000;
    double hog = 0.0;
    std::uint64_t seed = 7;
    unsigned ptLevels = 4;
};

PolicyKind
parsePolicy(const std::string &name)
{
    if (name == "thp")
        return PolicyKind::Thp;
    if (name == "4k")
        return PolicyKind::Base4k;
    if (name == "ca")
        return PolicyKind::Ca;
    if (name == "eager")
        return PolicyKind::Eager;
    if (name == "ingens")
        return PolicyKind::Ingens;
    if (name == "ranger")
        return PolicyKind::Ranger;
    if (name == "ideal")
        return PolicyKind::Ideal;
    fatal("unknown policy '%s'", name.c_str());
}

XlatScheme
parseScheme(const std::string &name)
{
    if (name == "base")
        return XlatScheme::Base;
    if (name == "spot")
        return XlatScheme::Spot;
    if (name == "rmm")
        return XlatScheme::Rmm;
    if (name == "ds")
        return XlatScheme::Ds;
    fatal("unknown scheme '%s'", name.c_str());
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--workload")
            opt.workload = next();
        else if (arg == "--policy")
            opt.policy = next();
        else if (arg == "--virt")
            opt.virt = true;
        else if (arg == "--scheme")
            opt.scheme = next();
        else if (arg == "--scale")
            opt.scale = std::atof(next());
        else if (arg == "--accesses")
            opt.accesses = std::strtoull(next(), nullptr, 10);
        else if (arg == "--hog")
            opt.hog = std::atof(next());
        else if (arg == "--seed")
            opt.seed = std::strtoull(next(), nullptr, 10);
        else if (arg == "--pt-levels")
            opt.ptLevels = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--help" || arg == "-h") {
            std::printf("see the header comment of "
                        "examples/contigsim.cpp for usage\n");
            std::exit(0);
        } else {
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    return opt;
}

void
printContigMetrics(const char *tag, const CoverageMetrics &m)
{
    std::printf("%s: %llu mappings | cov32 %s | cov128 %s | "
                "99%% in %llu mappings\n",
                tag, static_cast<unsigned long long>(m.mappings),
                Report::pct(m.cov32).c_str(),
                Report::pct(m.cov128).c_str(),
                static_cast<unsigned long long>(m.mappingsFor99));
}

void
printXlat(const char *tag, const XlatRunResult &r)
{
    std::printf("%s: overhead %s | %llu walks (avg %.1f cycles)",
                tag, Report::pct(r.overhead.overhead, 2).c_str(),
                static_cast<unsigned long long>(r.stats.walks),
                r.stats.avgWalkCycles());
    if (r.stats.spotCorrect + r.stats.spotMispredicted +
            r.stats.spotNoPrediction >
        0) {
        const double w = std::max<double>(r.stats.walks, 1);
        std::printf(" | SpOT %s correct / %s mis / %s none",
                    Report::pct(r.stats.spotCorrect / w).c_str(),
                    Report::pct(r.stats.spotMispredicted / w).c_str(),
                    Report::pct(r.stats.spotNoPrediction / w).c_str());
    }
    if (r.stats.rangeHits)
        std::printf(" | %llu range hits",
                    static_cast<unsigned long long>(r.stats.rangeHits));
    if (r.stats.segmentHits)
        std::printf(" | %llu segment hits",
                    static_cast<unsigned long long>(
                        r.stats.segmentHits));
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    printScaledBanner();

    const PolicyKind kind = parsePolicy(opt.policy);
    const XlatScheme scheme = parseScheme(opt.scheme);
    auto wl = makeWorkload(opt.workload, {opt.scale, opt.seed});
    std::printf("workload %s (%s touched, %s reserved) | policy %s | "
                "%s | scheme %s\n",
                opt.workload.c_str(),
                Report::bytes(wl->footprintBytes()).c_str(),
                Report::bytes(wl->reservedBytes()).c_str(),
                opt.policy.c_str(),
                opt.virt ? "virtualized" : "native",
                opt.scheme.c_str());

    if (opt.virt) {
        VirtSystem sys(kind, kind, opt.seed);
        if (opt.hog > 0) {
            Rng rng(opt.seed);
            hogMemory(sys.guest(), opt.hog, rng);
        }
        auto r = sys.run(*wl);
        printContigMetrics("2-D contiguity (final)", r.final);
        std::printf("faults: %llu (p99 %.1f us)\n",
                    static_cast<unsigned long long>(r.faults),
                    r.p99FaultLatencyUs);
        auto x = runTranslation(*wl, &sys.vm(), scheme, opt.accesses,
                                opt.seed + 1);
        printXlat("translation", x);
    } else {
        NativeSystem sys(kind, opt.seed);
        if (opt.hog > 0)
            sys.hog(opt.hog);
        auto r = sys.run(*wl);
        printContigMetrics("contiguity (final)", r.final);
        std::printf("faults: %llu (p99 %.1f us) | migrations: %llu\n",
                    static_cast<unsigned long long>(r.faults),
                    r.p99FaultLatencyUs,
                    static_cast<unsigned long long>(r.migratedPages));
        auto x = runTranslation(*wl, nullptr, scheme, opt.accesses,
                                opt.seed + 1);
        printXlat("translation", x);
    }
    return 0;
}
