/**
 * @file
 * A process address space: the ordered VMA set plus the page table
 * translating it. VMA bases are assigned deterministically with large
 * guard gaps, mimicking mmap's top-down placement enough for the
 * contiguity experiments.
 */

#ifndef CONTIG_MM_ADDRESS_SPACE_HH
#define CONTIG_MM_ADDRESS_SPACE_HH

#include <map>
#include <memory>
#include <optional>

#include "mm/page_table.hh"
#include "mm/vma.hh"

namespace contig
{

class Serializer;

/**
 * VMA container + page table for one process (or, for a VM's backing,
 * the host process that owns the guest RAM region).
 */
class AddressSpace
{
  public:
    explicit AddressSpace(PageTable::NodeAlloc node_alloc = nullptr,
                          PageTable::NodeFree node_free = nullptr,
                          unsigned pt_levels = kPtLevels)
        : pageTable_(std::move(node_alloc), std::move(node_free),
                     pt_levels)
    {}

    /**
     * Create a VMA of `bytes` (rounded up to a page). If base is not
     * given, the next free slot after a guard gap is used.
     */
    Vma &mmap(std::uint64_t bytes, VmaKind kind = VmaKind::Anon,
              std::optional<Gva> base = std::nullopt,
              std::uint32_t file_id = 0,
              std::uint64_t file_offset_pages = 0);

    /** Remove a VMA; the caller must already have unmapped its pages. */
    void munmap(Vma &vma);

    /** The VMA containing gva, or nullptr. */
    Vma *findVma(Gva gva);
    const Vma *findVma(Gva gva) const;

    PageTable &pageTable() { return pageTable_; }
    const PageTable &pageTable() const { return pageTable_; }

    std::size_t vmaCount() const { return vmas_.size(); }

    /** Visit VMAs in ascending base order. */
    template <typename Fn>
    void
    forEachVma(Fn &&fn)
    {
        for (auto &kv : vmas_)
            fn(*kv.second);
    }

    template <typename Fn>
    void
    forEachVma(Fn &&fn) const
    {
        for (const auto &kv : vmas_)
            fn(*kv.second);
    }

    /**
     * Serialize the VMA list (id/base/size/kind/file identity) and
     * the page table, for checkpoint verification (save-only).
     */
    void saveState(Serializer &s) const;

  private:
    std::map<Addr, std::unique_ptr<Vma>> vmas_;
    PageTable pageTable_;
    std::uint32_t nextVmaId_ = 1;
    /** Deterministic mmap cursor (grows upward with guard gaps). */
    Addr mmapCursor_ = Addr{0x5500} << 32;
};

} // namespace contig

#endif // CONTIG_MM_ADDRESS_SPACE_HH
