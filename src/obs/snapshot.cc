#include "obs/snapshot.hh"

#include <algorithm>
#include <cstdio>

#include "base/json.hh"
#include "base/types.hh"

namespace contig
{
namespace obs
{

double
fmfiFromCounts(const std::vector<std::uint64_t> &counts, unsigned order)
{
    std::uint64_t free_pages = 0;
    std::uint64_t usable = 0;
    for (unsigned o = 0; o < counts.size(); ++o) {
        const std::uint64_t pages = counts[o] * pagesInOrder(o);
        free_pages += pages;
        if (o >= order)
            usable += pages;
    }
    if (free_pages == 0)
        return 0.0;
    return static_cast<double>(free_pages - usable) /
           static_cast<double>(free_pages);
}

std::vector<VmaRunSnap>
vmaRunStats(const std::vector<Seg> &segs,
            const std::vector<VmaSpan> &vma_spans, std::uint32_t pid,
            const std::string &dim)
{
    struct Acc
    {
        std::uint64_t pages = 0;
        std::uint64_t runs = 0;
        std::uint64_t maxRun = 0;
        double sumSq = 0.0;
    };
    std::vector<Acc> acc(vma_spans.size());

    // Segments and spans are both vpn-sorted; walk them together. A
    // segment never crosses a VMA boundary (faults resolve per VMA).
    std::size_t v = 0;
    for (const Seg &seg : segs) {
        while (v < vma_spans.size() && vma_spans[v].end <= seg.vpn)
            ++v;
        if (v >= vma_spans.size() || seg.vpn < vma_spans[v].start)
            continue;
        Acc &a = acc[v];
        a.pages += seg.pages;
        a.runs += 1;
        a.maxRun = std::max(a.maxRun, seg.pages);
        a.sumSq += static_cast<double>(seg.pages) *
                   static_cast<double>(seg.pages);
    }

    std::vector<VmaRunSnap> out;
    for (std::size_t i = 0; i < vma_spans.size(); ++i) {
        if (acc[i].runs == 0)
            continue;
        VmaRunSnap s;
        s.dim = dim;
        s.pid = pid;
        s.vmaId = vma_spans[i].vmaId;
        s.pages = acc[i].pages;
        s.runs = acc[i].runs;
        s.maxRun = acc[i].maxRun;
        s.weightedMeanRun =
            acc[i].sumSq / static_cast<double>(acc[i].pages);
        out.push_back(std::move(s));
    }
    return out;
}

namespace
{

std::string
zoneKey(unsigned node, const char *leaf)
{
    return "zone" + std::to_string(node) + "." + leaf;
}

void
flattenHist(FlatSnap &flat, const std::string &prefix,
            const Log2Histogram &hist)
{
    for (unsigned b = 0; b < hist.numBuckets(); ++b)
        if (hist.bucket(b))
            flat[prefix + std::to_string(b)] =
                static_cast<double>(hist.bucket(b));
}

} // namespace

FlatSnap
flatten(const Snapshot &snap)
{
    FlatSnap flat;
    flat["faults"] = static_cast<double>(snap.faults);
    flat["faults.huge"] = static_cast<double>(snap.hugeFaults);
    flat["faults.cow"] = static_cast<double>(snap.cowFaults);
    flat["faults.file"] = static_cast<double>(snap.fileFaults);

    for (const ZoneSnap &z : snap.zones) {
        flat[zoneKey(z.node, "free_pages")] =
            static_cast<double>(z.freePages);
        flat[zoneKey(z.node, "fmfi")] = z.fmfi;
        flat[zoneKey(z.node, "clusters")] =
            static_cast<double>(z.clusterCount);
        flat[zoneKey(z.node, "largest_pages")] =
            static_cast<double>(z.largestClusterPages);
        for (unsigned o = 0; o < z.freeBlocks.size(); ++o)
            flat[zoneKey(z.node, "order") + std::to_string(o)] =
                static_cast<double>(z.freeBlocks[o]);
        flattenHist(flat, zoneKey(z.node, "chist"), z.clusterHist);
        if (z.hasFreeHist)
            flattenHist(flat, zoneKey(z.node, "fhist"), z.freeHist);
    }

    for (const VmaRunSnap &v : snap.vmaRuns) {
        const std::string base = "vma" + v.dim + "." +
                                 std::to_string(v.pid) + "." +
                                 std::to_string(v.vmaId) + ".";
        flat[base + "pages"] = static_cast<double>(v.pages);
        flat[base + "runs"] = static_cast<double>(v.runs);
        flat[base + "max_run"] = static_cast<double>(v.maxRun);
        flat[base + "wmean_run"] = v.weightedMeanRun;
    }

    if (snap.hasCoverage) {
        flat["cov.cov32"] = snap.coverage.cov32;
        flat["cov.cov128"] = snap.coverage.cov128;
        flat["cov.maps99"] =
            static_cast<double>(snap.coverage.mappingsFor99);
        flat["cov.mappings"] = static_cast<double>(snap.coverage.mappings);
        flat["cov.pages"] = static_cast<double>(snap.coverage.totalPages);
    }

    if (snap.hasXlat) {
        const XlatSnap &x = snap.xlat;
        flat["xlat.accesses"] = static_cast<double>(x.accesses);
        flat["xlat.l1_hits"] = static_cast<double>(x.l1Hits);
        flat["xlat.l2_hits"] = static_cast<double>(x.l2Hits);
        flat["xlat.walks"] = static_cast<double>(x.walks);
        flat["xlat.walk_refs"] = static_cast<double>(x.walkRefs);
        flat["xlat.walk_cycles"] = static_cast<double>(x.walkCycles);
        flat["xlat.exposed_cycles"] =
            static_cast<double>(x.exposedCycles);
        flat["spot.correct"] = static_cast<double>(x.spotCorrect);
        flat["spot.mispredicted"] =
            static_cast<double>(x.spotMispredicted);
        flat["spot.no_prediction"] =
            static_cast<double>(x.spotNoPrediction);
        flat["spot.fills"] = static_cast<double>(x.spotFills);
        flat["spot.coverage"] = x.spotCoverage;
        flat["spot.accuracy"] = x.spotAccuracy;
    }

    for (const auto &[key, value] : snap.extras)
        flat[key] = value;
    return flat;
}

FlatDelta
diffFlat(const FlatSnap &prev, const FlatSnap &next)
{
    FlatDelta delta;
    for (const auto &[key, value] : next) {
        auto it = prev.find(key);
        if (it == prev.end() || it->second != value)
            delta.set.emplace(key, value);
    }
    for (const auto &[key, value] : prev) {
        (void)value;
        if (!next.count(key))
            delta.del.push_back(key);
    }
    return delta;
}

FlatSnap
applyDelta(const FlatSnap &prev, const FlatDelta &delta)
{
    FlatSnap next = prev;
    for (const std::string &key : delta.del)
        next.erase(key);
    for (const auto &[key, value] : delta.set)
        next[key] = value;
    return next;
}

std::string
encodeTimelineRecord(const TimelineRecord &rec)
{
    JsonWriter w;
    w.beginObject();
    w.field("stream", rec.stream);
    w.field("domain", rec.domain);
    w.field("seq", rec.seq);
    w.field("tick", rec.tick);
    w.field("kind", rec.full ? "full" : "delta");
    w.key("set");
    w.beginObject();
    for (const auto &[key, value] : rec.set)
        w.field(key, value);
    w.endObject();
    if (!rec.del.empty()) {
        w.key("del");
        w.beginArray();
        for (const std::string &key : rec.del)
            w.value(key);
        w.endArray();
    }
    w.endObject();
    return std::move(w).str();
}

std::optional<TimelineRecord>
decodeTimelineRecord(std::string_view line, std::string *err)
{
    auto doc = JsonValue::parse(line, err);
    if (!doc)
        return std::nullopt;
    if (!doc->isObject()) {
        if (err)
            *err = "timeline line is not a JSON object";
        return std::nullopt;
    }

    TimelineRecord rec;
    const JsonValue *kind = doc->find("kind");
    if (!kind || !kind->isString() ||
        (kind->asString() != "full" && kind->asString() != "delta")) {
        if (err)
            *err = "missing or bad 'kind' (want \"full\"/\"delta\")";
        return std::nullopt;
    }
    rec.full = kind->asString() == "full";

    for (const char *field : {"stream", "seq", "tick"}) {
        const JsonValue *v = doc->find(field);
        if (!v || !v->isNumber() || v->asNumber() < 0) {
            if (err)
                *err = std::string("missing or bad '") + field + "'";
            return std::nullopt;
        }
    }
    rec.stream = static_cast<std::uint64_t>(doc->numberOr("stream", 0));
    rec.seq = static_cast<std::uint64_t>(doc->numberOr("seq", 0));
    rec.tick = static_cast<std::uint64_t>(doc->numberOr("tick", 0));
    if (const JsonValue *d = doc->find("domain"); d && d->isString())
        rec.domain = d->asString();

    const JsonValue *set = doc->find("set");
    if (!set || !set->isObject()) {
        if (err)
            *err = "missing or bad 'set' object";
        return std::nullopt;
    }
    for (const auto &[key, value] : set->members()) {
        if (!value.isNumber()) {
            if (err)
                *err = "non-numeric value for key '" + key + "'";
            return std::nullopt;
        }
        rec.set.emplace(key, value.asNumber());
    }

    if (const JsonValue *del = doc->find("del")) {
        if (!del->isArray()) {
            if (err)
                *err = "'del' is not an array";
            return std::nullopt;
        }
        for (const JsonValue &key : del->array()) {
            if (!key.isString()) {
                if (err)
                    *err = "'del' entry is not a string";
                return std::nullopt;
            }
            rec.del.push_back(key.asString());
        }
    }
    return rec;
}

FlatSnap
applyRecord(const FlatSnap &prev, const TimelineRecord &rec)
{
    if (rec.full)
        return rec.set;
    FlatDelta delta;
    delta.set = rec.set;
    delta.del = rec.del;
    return applyDelta(prev, delta);
}

} // namespace obs
} // namespace contig
