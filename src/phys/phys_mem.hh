/**
 * @file
 * PhysicalMemory: a complete physical address space — the mem_map plus
 * one Zone per NUMA node. Instantiated once for the host machine
 * (hPA) and once per virtual machine (gPA), since a guest kernel runs
 * the same allocator over its guest-physical space.
 */

#ifndef CONTIG_PHYS_PHYS_MEM_HH
#define CONTIG_PHYS_PHYS_MEM_HH

#include <memory>
#include <optional>
#include <vector>

#include "phys/zone.hh"

namespace contig
{

/** Machine-level physical memory configuration. */
struct PhysMemConfig
{
    /** Bytes per NUMA node (must be a multiple of the top-order block). */
    std::uint64_t bytesPerNode = std::uint64_t{2} << 30;
    unsigned numNodes = 2;
    ZoneConfig zone;
};

/**
 * A physical address space: frames [0, totalFrames) split evenly into
 * per-node zones. Allocation requests carry a preferred node and fall
 * back to the next node when the preferred one is exhausted (the
 * "spans to the second NUMA node" behaviour the paper observes for BT).
 */
class PhysicalMemory
{
  public:
    explicit PhysicalMemory(const PhysMemConfig &cfg = {});

    PhysicalMemory(const PhysicalMemory &) = delete;
    PhysicalMemory &operator=(const PhysicalMemory &) = delete;

    unsigned numNodes() const { return zones_.size(); }
    std::uint64_t totalFrames() const { return frames_.size(); }
    std::uint64_t totalBytes() const { return totalFrames() * kPageSize; }

    FrameArray &frames() { return frames_; }
    const FrameArray &frames() const { return frames_; }
    Frame &frame(Pfn pfn) { return frames_[pfn]; }
    const Frame &frame(Pfn pfn) const { return frames_[pfn]; }

    Zone &zone(NodeId node) { return *zones_[node]; }
    const Zone &zone(NodeId node) const { return *zones_[node]; }

    /** The zone owning a PFN. */
    Zone &zoneOf(Pfn pfn);
    const Zone &zoneOf(Pfn pfn) const;

    /**
     * Allocate 2^order pages, preferring `node`, falling back to the
     * other nodes in round-robin order. Order-0 requests go through
     * the calling CPU's pcp cache when caches are enabled.
     */
    std::optional<Pfn> alloc(unsigned order, NodeId node = 0);

    /** Allocate the exact block [pfn, pfn+2^order); see BuddyAllocator. */
    bool allocSpecific(Pfn pfn, unsigned order);

    /** Free a block previously allocated at this order. */
    void free(Pfn pfn, unsigned order);

    /** True iff the base page at pfn is inside a free buddy block. */
    bool isFreePage(Pfn pfn) const;

    std::uint64_t freePages() const;

    /** Return every pcp-cached frame in every zone to its buddy. */
    void drainPcpCaches();

    /** Frames currently parked in pcp caches across all zones. */
    std::uint64_t pcpCachedPages() const;

    /**
     * Aggregate free-cluster snapshot across all zones (for Fig. 9's
     * free-block distribution and the ideal baseline).
     */
    std::vector<Cluster> freeClusters() const;

    /** Serialize every zone (save-only; checkpoint verification). */
    void saveState(Serializer &s) const;

  private:
    FrameArray frames_;
    std::vector<std::unique_ptr<Zone>> zones_;
};

} // namespace contig

#endif // CONTIG_PHYS_PHYS_MEM_HH
