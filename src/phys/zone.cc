#include "phys/zone.hh"
#include "base/serialize.hh"

namespace contig
{

Zone::Zone(FrameArray &frames, NodeId node, Pfn base_pfn,
           std::uint64_t n_frames, const ZoneConfig &cfg)
    : node_(node),
      contigMap_(pagesInOrder(cfg.maxOrder)),
      buddy_(frames, base_pfn, n_frames, cfg.maxOrder, cfg.sortedTopList,
             cfg.scrambleSeed),
      pcpBatch_(cfg.pcpBatch),
      pcpHigh_(cfg.pcpHigh),
      pcp_(cfg.pcpCpus)
{
    buddy_.setTopListHooks(
        [this](Pfn pfn) { contigMap_.onBlockFree(pfn); },
        [this](Pfn pfn) { contigMap_.onBlockAllocated(pfn); });
    if (cfg.lockStats) {
        // Host and guest zones with the same node id share one site,
        // the same way their buddy metrics merge by name.
        lock_.bindStats(&LockStatsRegistry::global().site(
            "zone" + std::to_string(node) + ".buddy"));
    }
}

std::optional<Pfn>
Zone::alloc(unsigned order)
{
    if (order == 0 && pcpEnabled()) {
        PcpList &pcp = myPcp();
        if (pcp.pfns.empty()) {
            std::lock_guard<SpinLock> g(lock_);
            for (unsigned i = 0; i < pcpBatch_; ++i) {
                auto pfn = buddy_.alloc(0);
                if (!pfn)
                    break;
                pcp.pfns.push_back(*pfn);
            }
        }
        if (pcp.pfns.empty())
            return std::nullopt;
        Pfn pfn = pcp.pfns.back();
        pcp.pfns.pop_back();
        return pfn;
    }
    std::lock_guard<SpinLock> g(lock_);
    return buddy_.alloc(order);
}

bool
Zone::allocSpecific(Pfn pfn, unsigned order)
{
    std::lock_guard<SpinLock> g(lock_);
    return buddy_.allocSpecific(pfn, order);
}

void
Zone::free(Pfn pfn, unsigned order)
{
    if (order == 0 && pcpEnabled()) {
        PcpList &pcp = myPcp();
        pcp.pfns.push_back(pfn);
        if (pcp.pfns.size() >= pcpHigh_) {
            std::lock_guard<SpinLock> g(lock_);
            for (unsigned i = 0; i < pcpBatch_ && !pcp.pfns.empty(); ++i) {
                buddy_.free(pcp.pfns.back(), 0);
                pcp.pfns.pop_back();
            }
        }
        return;
    }
    std::lock_guard<SpinLock> g(lock_);
    buddy_.free(pfn, order);
}

void
Zone::drainPcp()
{
    if (!pcpEnabled())
        return;
    std::lock_guard<SpinLock> g(lock_);
    for (PcpList &pcp : pcp_) {
        for (Pfn pfn : pcp.pfns)
            buddy_.free(pfn, 0);
        pcp.pfns.clear();
    }
}

std::uint64_t
Zone::pcpCachedPages() const
{
    std::uint64_t total = 0;
    for (const PcpList &pcp : pcp_)
        total += pcp.pfns.size();
    return total;
}

Log2Histogram
Zone::freeBlockHistogram() const
{
    std::lock_guard<SpinLock> g(lock_);
    Log2Histogram hist = contigMap_.clusterSizeHistogram();
    for (unsigned o = 0; o < buddy_.maxOrder(); ++o) {
        buddy_.forEachFreeBlock(o, [&](Pfn) {
            hist.add(pagesInOrder(o), pagesInOrder(o));
        });
    }
    return hist;
}


void
Zone::saveState(Serializer &s) const
{
    const std::size_t sec = s.beginSection(sectionTag('Z', 'O', 'N', 'E'));
    s.u32(node_);
    buddy_.saveState(s);
    s.u64(pcp_.size());
    for (const PcpList &p : pcp_) {
        s.u64(p.pfns.size());
        for (Pfn pfn : p.pfns)
            s.u64(pfn);
    }
    s.endSection(sec);
}

} // namespace contig
