file(REMOVE_RECURSE
  "CMakeFiles/test_phys.dir/phys/buddy_property_test.cc.o"
  "CMakeFiles/test_phys.dir/phys/buddy_property_test.cc.o.d"
  "CMakeFiles/test_phys.dir/phys/buddy_test.cc.o"
  "CMakeFiles/test_phys.dir/phys/buddy_test.cc.o.d"
  "CMakeFiles/test_phys.dir/phys/contiguity_map_test.cc.o"
  "CMakeFiles/test_phys.dir/phys/contiguity_map_test.cc.o.d"
  "CMakeFiles/test_phys.dir/phys/phys_mem_test.cc.o"
  "CMakeFiles/test_phys.dir/phys/phys_mem_test.cc.o.d"
  "test_phys"
  "test_phys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
