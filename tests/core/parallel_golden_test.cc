/**
 * @file
 * ParallelDriver determinism contract: with threads == 1 the driver
 * must be placement- and stats-identical to hand-driving the same
 * touches sequentially — the kernel stays in sequential mode and the
 * worker plan depends only on (seed, index, geometry). Checked for
 * every policy, THP on and off.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "base/rng.hh"
#include "core/experiment.hh"
#include "core/parallel.hh"
#include "mm/fault_engine.hh"
#include "mm/kernel.hh"

namespace contig
{
namespace
{

constexpr std::uint64_t kBytesPerWorker = 8ull << 20;
constexpr std::uint64_t kChunkBytes = 1ull << 20;
constexpr std::uint64_t kSeed = 0xD15EA5E;

/** (vpn, pfn, order, contig-bit) of every installed leaf. */
using Placement = std::vector<std::tuple<Vpn, Pfn, unsigned, bool>>;

Placement
placementOf(Process &proc)
{
    Placement out;
    proc.pageTable().forEachLeaf([&](Vpn vpn, const Mapping &m) {
        out.emplace_back(vpn, m.pfn, m.order, m.contigBit);
    });
    return out;
}

std::vector<std::uint64_t>
statsOf(const Kernel &k)
{
    const FaultStats &st = k.faultStats();
    return {st.faults, st.hugeFaults, st.baseFaults, st.cowFaults,
            st.fileFaults, static_cast<std::uint64_t>(st.totalCycles)};
}

class ParallelGolden
    : public ::testing::TestWithParam<std::tuple<PolicyKind, bool>>
{};

TEST_P(ParallelGolden, Threads1MatchesSequentialReference)
{
    const auto [kind, thp] = GetParam();

    KernelConfig cfg = kernelConfigFor(kind);
    cfg.thpEnabled = thp;

    // Arm A: the driver, threads = 1.
    Kernel ka(cfg, makePolicy(kind));
    ParallelDriverConfig pd;
    pd.threads = 1;
    pd.bytesPerWorker = kBytesPerWorker;
    pd.chunkBytes = kChunkBytes;
    pd.seed = kSeed;
    ParallelDriver driver(ka, pd);
    driver.run();
    Process &pa = *driver.plans()[0].proc;

    // Arm B: the same touches, hand-driven on a fresh kernel. The
    // reference rebuilds worker 0's plan from the published seed
    // derivation — same process geometry, same shuffled chunk order.
    Kernel kb(cfg, makePolicy(kind));
    Process &pb = kb.createProcess("pworker0", 0);
    Vma &vma = kb.mmapAnon(pb, kBytesPerWorker);
    const std::uint64_t chunks = kBytesPerWorker / kChunkBytes;
    std::vector<std::uint64_t> order(chunks);
    for (std::uint64_t c = 0; c < chunks; ++c)
        order[c] = c;
    Rng rng(ParallelDriver::workerSeed(kSeed, 0));
    rng.shuffle(order);
    for (std::uint64_t c : order)
        pb.touchRange(vma.start() + c * kChunkBytes, kChunkBytes);

    EXPECT_EQ(placementOf(pa), placementOf(pb));
    EXPECT_EQ(statsOf(ka), statsOf(kb));
    EXPECT_EQ(pa.pageTable().stats().nodesAllocated.load(),
              pb.pageTable().stats().nodesAllocated.load());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ParallelGolden,
    ::testing::Combine(::testing::Values(PolicyKind::Thp,
                                         PolicyKind::Base4k,
                                         PolicyKind::Ca, PolicyKind::Eager,
                                         PolicyKind::Ingens,
                                         PolicyKind::Ranger,
                                         PolicyKind::Ideal),
                       ::testing::Bool()),
    [](const auto &info) {
        return "P_" + policyName(std::get<0>(info.param)) +
               (std::get<1>(info.param) ? "_thp" : "_4k");
    });

} // namespace
} // namespace contig
