# Empty dependencies file for table5_fault_latency.
# This may be replaced when dependencies are built.
