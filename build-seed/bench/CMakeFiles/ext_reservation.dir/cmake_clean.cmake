file(REMOVE_RECURSE
  "CMakeFiles/ext_reservation.dir/ext_reservation.cc.o"
  "CMakeFiles/ext_reservation.dir/ext_reservation.cc.o.d"
  "ext_reservation"
  "ext_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
