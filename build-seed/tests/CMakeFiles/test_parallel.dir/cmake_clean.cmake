file(REMOVE_RECURSE
  "CMakeFiles/test_parallel.dir/core/parallel_golden_test.cc.o"
  "CMakeFiles/test_parallel.dir/core/parallel_golden_test.cc.o.d"
  "test_parallel"
  "test_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
