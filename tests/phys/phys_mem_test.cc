#include <gtest/gtest.h>

#include "phys/phys_mem.hh"

using namespace contig;

namespace
{

PhysMemConfig
smallConfig(unsigned nodes = 2)
{
    PhysMemConfig cfg;
    cfg.bytesPerNode = 64ull << 20; // 64 MiB per node
    cfg.numNodes = nodes;
    return cfg;
}

} // namespace

TEST(PhysMem, Construction)
{
    PhysicalMemory pm(smallConfig());
    EXPECT_EQ(pm.numNodes(), 2u);
    EXPECT_EQ(pm.totalBytes(), 128ull << 20);
    EXPECT_EQ(pm.freePages(), pm.totalFrames());
}

TEST(PhysMem, ZoneOwnership)
{
    PhysicalMemory pm(smallConfig());
    const std::uint64_t per_node = pm.totalFrames() / 2;
    EXPECT_EQ(pm.zoneOf(0).node(), 0u);
    EXPECT_EQ(pm.zoneOf(per_node - 1).node(), 0u);
    EXPECT_EQ(pm.zoneOf(per_node).node(), 1u);
}

TEST(PhysMem, NodePreference)
{
    PhysicalMemory pm(smallConfig());
    auto a = pm.alloc(0, 0);
    auto b = pm.alloc(0, 1);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(pm.zoneOf(*a).node(), 0u);
    EXPECT_EQ(pm.zoneOf(*b).node(), 1u);
}

TEST(PhysMem, SpillsToSecondNode)
{
    PhysicalMemory pm(smallConfig());
    // Exhaust node 0 with top-order allocations.
    const std::uint64_t blocks =
        (64ull << 20) / (pagesInOrder(kMaxOrder) * kPageSize);
    for (std::uint64_t i = 0; i < blocks; ++i)
        ASSERT_TRUE(pm.zone(0).buddy().alloc(kMaxOrder));
    // A node-0-preferring request must now land on node 1.
    auto pfn = pm.alloc(0, 0);
    ASSERT_TRUE(pfn);
    EXPECT_EQ(pm.zoneOf(*pfn).node(), 1u);
}

TEST(PhysMem, ExhaustionFails)
{
    PhysicalMemory pm(smallConfig(1));
    const std::uint64_t blocks =
        (64ull << 20) / (pagesInOrder(kMaxOrder) * kPageSize);
    for (std::uint64_t i = 0; i < blocks; ++i)
        ASSERT_TRUE(pm.alloc(kMaxOrder));
    EXPECT_FALSE(pm.alloc(0));
}

TEST(PhysMem, FreeClustersAggregatesZones)
{
    PhysicalMemory pm(smallConfig());
    auto clusters = pm.freeClusters();
    // Fresh machine: one maximal cluster per zone.
    ASSERT_EQ(clusters.size(), 2u);
    EXPECT_EQ(clusters[0].pages + clusters[1].pages, pm.totalFrames());
}

TEST(PhysMem, AllocSpecificAcrossZones)
{
    PhysicalMemory pm(smallConfig());
    const std::uint64_t per_node = pm.totalFrames() / 2;
    Pfn target = per_node + 77; // inside node 1
    EXPECT_TRUE(pm.allocSpecific(target, 0));
    EXPECT_FALSE(pm.isFreePage(target));
    pm.free(target, 0);
    EXPECT_TRUE(pm.isFreePage(target));
}

TEST(PhysMem, ContigMapTracksBuddy)
{
    PhysicalMemory pm(smallConfig(1));
    auto &zone = pm.zone(0);
    const std::uint64_t top_pages = pagesInOrder(kMaxOrder);
    EXPECT_EQ(zone.contigMap().freePagesTracked(), zone.numFrames());

    // Allocating one base page removes one top block from the map.
    auto pfn = pm.alloc(0);
    ASSERT_TRUE(pfn);
    EXPECT_EQ(zone.contigMap().freePagesTracked(),
              zone.numFrames() - top_pages);
    // Freeing restores it.
    pm.free(*pfn, 0);
    EXPECT_EQ(zone.contigMap().freePagesTracked(), zone.numFrames());
    EXPECT_TRUE(zone.contigMap().checkInvariants());
}
