#include "spot/spot.hh"

#include "base/logging.hh"
#include "obs/metrics.hh"

namespace contig
{

SpotEngine::SpotEngine(const SpotConfig &cfg)
    : cfg_(cfg), entries_(cfg.sets * cfg.ways)
{
    contig_assert(cfg.sets > 0 && cfg.ways > 0, "degenerate SpOT table");
}

unsigned
SpotEngine::setOf(Addr pc) const
{
    // Fold the PC a little before indexing: instruction addresses
    // share low-bit alignment.
    return static_cast<unsigned>(((pc >> 6) ^ (pc >> 12)) % cfg_.sets);
}

SpotEngine::Entry *
SpotEngine::find(Addr pc)
{
    Entry *base = &entries_[setOf(pc) * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w)
        if (base[w].valid && base[w].pcTag == pc)
            return &base[w];
    return nullptr;
}

std::optional<std::int64_t>
SpotEngine::predict(Addr pc)
{
    ++stats_.lookups;
    pending_.reset();
    pendingPc_ = pc;
    Entry *e = find(pc);
    if (e && e->confidence > cfg_.confidenceThreshold) {
        e->lastUse = ++clock_;
        pending_ = e->offset;
    }
    return pending_;
}

SpotOutcome
SpotEngine::update(Addr pc, std::int64_t true_offset, bool contig_ok)
{
    // Classify the in-flight speculation first.
    SpotOutcome outcome;
    if (pending_ && pendingPc_ == pc) {
        outcome = (*pending_ == true_offset) ? SpotOutcome::Correct
                                             : SpotOutcome::Mispredicted;
    } else {
        outcome = SpotOutcome::NoPrediction;
    }
    pending_.reset();
    switch (outcome) {
      case SpotOutcome::Correct:
        ++stats_.correct;
        break;
      case SpotOutcome::Mispredicted:
        ++stats_.mispredicted;
        break;
      case SpotOutcome::NoPrediction:
        ++stats_.noPrediction;
        break;
    }

    const bool fills_allowed = contig_ok || !cfg_.requireContigBits;

    Entry *e = find(pc);
    if (e) {
        // Confidence bookkeeping happens on every walk, speculated or
        // not (§IV-C, "predictions are still calculated and compared").
        if (e->offset == true_offset) {
            if (e->confidence < 3)
                ++e->confidence;
        } else if (e->confidence > 0) {
            --e->confidence;
        }
        // Offsets are replaced only at zero confidence, and only with
        // offsets the OS marked as belonging to large mappings.
        if (e->confidence == 0 && e->offset != true_offset) {
            if (fills_allowed) {
                e->offset = true_offset;
                e->confidence = 1;
                ++stats_.offsetReplacements;
            }
        }
        e->lastUse = ++clock_;
        return outcome;
    }

    // No entry for this PC: try to fill one.
    if (!fills_allowed) {
        ++stats_.fillsBlockedByBits;
        return outcome;
    }
    Entry *base = &entries_[setOf(pc) * cfg_.ways];
    Entry *victim = nullptr;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        Entry &cand = base[w];
        if (!cand.valid) {
            victim = &cand;
            break;
        }
        // Only zero-confidence entries may be evicted; LRU among them.
        if (cand.confidence == 0 &&
            (!victim || cand.lastUse < victim->lastUse)) {
            victim = &cand;
        }
    }
    if (!victim)
        return outcome; // set full of confident entries: drop the fill
    victim->valid = true;
    victim->pcTag = pc;
    victim->offset = true_offset;
    victim->confidence = 1;
    victim->lastUse = ++clock_;
    ++stats_.fills;
    return outcome;
}

void
SpotEngine::flush()
{
    for (auto &e : entries_)
        e.valid = false;
    pending_.reset();
}

void
SpotEngine::collectMetrics(obs::MetricSink &sink) const
{
    sink.counter("lookups", stats_.lookups);
    sink.counter("correct", stats_.correct);
    sink.counter("mispredictions", stats_.mispredicted);
    sink.counter("no_prediction", stats_.noPrediction);
    sink.counter("fills", stats_.fills);
    sink.counter("fills_blocked_by_bits", stats_.fillsBlockedByBits);
    sink.counter("offset_replacements", stats_.offsetReplacements);
}

} // namespace contig
