#include "policies/ingens.hh"

#include <vector>

#include "base/align.hh"
#include "mm/kernel.hh"
#include "mm/migrate.hh"

namespace contig
{

IngensPolicy::IngensPolicy(const IngensConfig &cfg) : cfg_(cfg) {}

AllocResult
IngensPolicy::allocate(Kernel &kernel, Process &proc, Vma &vma, Vpn vpn,
                       unsigned order)
{
    (void)vma;
    (void)vpn;
    return buddyAlloc(kernel, order, proc.homeNode());
}

void
IngensPolicy::onTick(Kernel &kernel)
{
    // khugepaged-like scan: promote up to promotionsPerTick huge
    // regions whose 4 KiB utilization crosses the threshold.
    unsigned budget = cfg_.promotionsPerTick;
    const std::uint64_t huge_pages = pagesInOrder(kHugeOrder);
    const auto needed = static_cast<std::uint64_t>(
        cfg_.utilizationThreshold * huge_pages);

    kernel.forEachProcess([&](Process &proc) {
        if (budget == 0)
            return;
        proc.addressSpace().forEachVma([&](Vma &vma) {
            if (budget == 0 || vma.kind() == VmaKind::File)
                return;
            ++stats_.scans;
            const Vpn start =
                alignUp(vma.start().pageNumber(), huge_pages);
            const Vpn end = vma.start().pageNumber() + vma.pages();
            for (Vpn base = start; base + huge_pages <= end && budget > 0;
                 base += huge_pages) {
                // Skip regions already huge-mapped.
                auto m = proc.pageTable().lookup(base);
                if (m && m->order == kHugeOrder)
                    continue;
                // Count touched pages in the region.
                const Vpn rel = base - vma.start().pageNumber();
                if (vma.touchedBitmap.empty())
                    continue;
                std::uint64_t touched = 0;
                for (std::uint64_t i = 0; i < huge_pages; ++i)
                    if (vma.touchedBitmap[rel + i])
                        ++touched;
                if (touched < needed)
                    continue;
                if (promoteHuge(kernel, proc, base)) {
                    ++stats_.promotions;
                    --budget;
                } else {
                    ++stats_.promotionFailures;
                }
            }
        });
    });
}

} // namespace contig
