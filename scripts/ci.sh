#!/usr/bin/env bash
# CI entry point: build Release and ASan+UBSan configurations, run the
# full test suite on both, then record the micro-bench results as
# BENCH_<name>.json artifacts at the repo root and gate the Release
# fig09 output against the committed baseline.
# Usage: scripts/ci.sh [build-root]
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$root/build-ci}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

build_and_test() {
    local name="$1"
    local filter="$2"
    shift 2
    echo "=== [$name] configure ==="
    cmake -S "$root" -B "$out/$name" "$@"
    echo "=== [$name] build ==="
    cmake --build "$out/$name" -j "$jobs"
    echo "=== [$name] ctest ==="
    if [ -n "$filter" ]; then
        ctest --test-dir "$out/$name" --output-on-failure -R "$filter"
    else
        ctest --test-dir "$out/$name" --output-on-failure
    fi
}

build_and_test release "" -DCMAKE_BUILD_TYPE=Release
build_and_test asan-ubsan "" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCONTIG_SANITIZE=ON

# ThreadSanitizer configuration: the threaded fault path (per-CPU
# frame caches, sharded zone locks, per-VMA fault mutexes) must be
# race-free under the concurrent stress + parallel-driver tests, and
# the instrumented-lock striped counters (test_base's lock_stats
# tests) must be race-free too.
# Only the thread-exercising tests run here; the full suite already
# ran in both configurations above.
build_and_test tsan 'test_concurrency|test_parallel|test_mm|test_base' \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCONTIG_SANITIZE=thread

# Forced-scalar configuration: -DCONTIG_SIMD=OFF compiles the AVX2
# probe kernels out entirely, so the SoA structures run the scalar
# loop everywhere. The translation-facing tests (TLB/SpOT/replay/
# checkpoint + the fig13/fig14 golden equivalence) must pass
# unchanged — simulated results are independent of probe width.
build_and_test scalar-simd \
    'test_tlb|test_spot|test_ranges|test_parallel|test_checkpoint|xlat_golden_check' \
    -DCMAKE_BUILD_TYPE=Release -DCONTIG_SIMD=OFF

# Micro-bench artifacts (Release binaries). micro_obs_overhead is a
# google-benchmark binary with its own JSON reporter; the rest are
# plain BenchOutput benches.
bench="$out/release/bench"
echo "=== bench artifacts ==="
"$bench/micro_alloc_path" --json "$root/BENCH_micro_alloc_path.json"
"$bench/micro_tlb_spot" --json "$root/BENCH_micro_tlb_spot.json"
"$bench/micro_obs_overhead" \
    --benchmark_out="$root/BENCH_micro_obs_overhead.json" \
    --benchmark_out_format=json
# Observability-tax gate: each disabled-mode loop's ratio to the bare
# loop (BM_SpinLockBare, BM_TraceDisabled, ...) must stay within
# tolerance of the committed baseline ratios.
python3 "$root/scripts/obs_overhead_gate.py" --check \
    "$root/BENCH_micro_obs_overhead.json" \
    "$root/bench/baselines/BENCH_micro_obs_overhead.json"
"$bench/micro_fault_scaling" --json "$root/BENCH_micro_fault_scaling.json"
"$bench/micro_xlat_scaling" --json "$root/BENCH_micro_xlat_scaling.json"
"$bench/micro_reclaim_path" --json "$root/BENCH_micro_reclaim_path.json"
python3 "$root/scripts/check_bench_json.py" "$bench/micro_alloc_path"
python3 "$root/scripts/check_bench_json.py" "$bench/micro_fault_scaling"
python3 "$root/scripts/check_bench_json.py" "$bench/micro_xlat_scaling"
python3 "$root/scripts/check_bench_json.py" "$bench/fig14_spot_breakdown"
# Memory-pressure schema gate: every micro_reclaim_path cell enables
# reclaim, so its JSON must carry well-formed *.reclaim.* metrics.
python3 "$root/scripts/check_bench_json.py" --expect-reclaim \
    "$bench/micro_reclaim_path"

# SIMD equivalence + speedup gates. The fig13 table from the AVX2
# build, the same binary under --no-simd, and the CONTIG_SIMD=OFF
# build must agree on every simulated row value (only config/wall
# clock may differ). Then the replay-throughput ratio: the committed
# baseline records the paper-reproduction evidence (>= 1.5x batched
# SoA+SIMD vs the per-access Reference loop, same-run ratio so it is
# wall-clock-robust); the fresh run is gated at a noise-tolerant
# floor so a silent fallback to the scalar per-access path still
# fails the build.
echo "=== simd equivalence + xlat ratio gate ==="
"$bench/fig13_translation_overhead" --json "$out/fig13_simd.json"
"$bench/fig13_translation_overhead" --no-simd \
    --json "$out/fig13_nosimd.json"
"$out/scalar-simd/bench/fig13_translation_overhead" \
    --json "$out/fig13_scalar_build.json"
python3 - "$out/fig13_simd.json" "$out/fig13_nosimd.json" \
    "$out/fig13_scalar_build.json" <<'PYEOF'
import json, sys
def rows(path):
    doc = json.load(open(path))
    assert doc["config"]["run"].get("xlat.simd"), \
        f"{path}: no xlat.simd note"
    return [{k: v for k, v in r.items() if not k.endswith(".wall_us")}
            for r in doc["rows"]]
simd, nosimd, scalar = (rows(p) for p in sys.argv[1:4])
assert simd == nosimd, "fig13 rows differ: avx2 vs --no-simd"
assert simd == scalar, "fig13 rows differ: avx2 vs CONTIG_SIMD=OFF build"
print(f"fig13 simd equivalence: {len(simd)} rows identical "
      "across avx2 / --no-simd / scalar build")
PYEOF
rm -f "$out/fig13_simd.json" "$out/fig13_nosimd.json" \
    "$out/fig13_scalar_build.json"
python3 "$root/scripts/xlat_ratio_gate.py" \
    "$root/bench/baselines/BENCH_micro_xlat_scaling.json" \
    --min-ratio 1.5
python3 "$root/scripts/xlat_ratio_gate.py" \
    "$root/BENCH_micro_xlat_scaling.json" --min-ratio 1.2

# Concurrency observatory artifacts: the scaling micro benches again
# under --lock-stats (per-site contention metrics + the derived
# "scaling" report section, both schema-checked), plus a per-thread
# Chrome trace from a 4-worker run for by-hand inspection.
echo "=== lock-stats artifacts ==="
"$bench/micro_fault_scaling" --lock-stats \
    --json "$root/BENCH_micro_fault_scaling_locks.json"
"$bench/micro_xlat_scaling" --lock-stats \
    --json "$root/BENCH_micro_xlat_scaling_locks.json"
python3 "$root/scripts/check_bench_json.py" \
    --expect-lock-stats --expect-scaling \
    "$bench/micro_fault_scaling" --lock-stats
"$bench/micro_fault_scaling" --threads 4 --lock-stats \
    --trace "$root/BENCH_thread_lanes_trace.json" \
    --json "$root/BENCH_micro_fault_scaling_t4.json"
# Structural contention gate: the set of instrumented lock sites each
# bench touches (and the report sections it emits) must match the
# committed baseline. Counts are scheduling-dependent and not gated.
python3 "$root/scripts/lock_contention_summary.py" --check \
    "$root/bench/baselines/BENCH_lock_contention.json" \
    "$root/BENCH_micro_fault_scaling_locks.json" \
    "$root/BENCH_micro_xlat_scaling_locks.json"

# Trace-frontend gate: capture fig13 to .ctrace files, replay them,
# interrupt the replay with a checkpoint at chunk 3, resume, and
# require the replayed and resumed runs' canonical JSON byte-identical
# to the live run at 1 and 4 replay shards. The traces, checkpoints
# and JSONs are kept as TRACE_* artifacts (trace-info summarizes the
# first capture so the artifact log shows the compression ratio).
echo "=== trace frontend gate ==="
mkdir -p "$root/TRACE_roundtrip"
python3 "$root/scripts/trace_roundtrip_check.py" \
    "$bench/fig13_translation_overhead" --threads 1,4 --ckpt-at 3 \
    --artifacts "$root/TRACE_roundtrip"
python3 "$root/scripts/check_bench_json.py" --expect-trace \
    "$bench/fig14_spot_breakdown"
"$out/release/tools/contig_inspect" trace-info \
    "$(ls "$root"/TRACE_roundtrip/cap.*.ctrace | head -1)"

# Cost-attribution artifacts: fig13/fig14 re-run under --attrib (the
# schema-v4 "attribution" section: per-outcome x contiguity-class
# cost cells, bounded exemplars, fault cells), schema-checked, plus a
# differential contig_report comparing CA-paging (base_2d) against
# SpOT (spot_2d) out of the same fig13 run — the paper's headline:
# full-walk/PSC cycles concentrate in the smallest contiguity classes
# and SpOT hits erase them. The report gate fails the build if SpOT
# ever regresses exposed-cycle cost against CA-paging here.
echo "=== cost attribution artifacts ==="
"$bench/fig13_translation_overhead" --attrib \
    --json "$root/BENCH_fig13_attrib.json"
"$bench/fig14_spot_breakdown" --attrib \
    --json "$root/BENCH_fig14_attrib.json"
python3 "$root/scripts/check_bench_json.py" --expect-attrib \
    "$bench/fig13_translation_overhead" --attrib
"$out/release/tools/contig_report" \
    "$root/BENCH_fig13_attrib.json" "$root/BENCH_fig13_attrib.json" \
    --a-xlat base_2d --b-xlat spot_2d --gate \
    | tee "$root/BENCH_contig_report_ca_vs_spot.txt"
# Attribution must survive the trace frontend: capture → replay →
# checkpoint → resume with --attrib, attribution section included in
# the canonical byte comparison.
python3 "$root/scripts/trace_roundtrip_check.py" \
    "$bench/fig14_spot_breakdown" --threads 1,4 --attrib
# Off means off: without the switch the same binary must emit no
# attribution section and stay deterministic run-to-run — and the
# xlat golden ctests above already pin the attrib-off output to the
# committed pre-attribution goldens byte-for-byte.
"$bench/fig14_spot_breakdown" --json "$root/BENCH_fig14_plain.json"
CONTIG_ATTRIB=0 "$bench/fig14_spot_breakdown" \
    --json "$out/fig14_plain_env0.json"
python3 - "$root/BENCH_fig14_plain.json" "$out/fig14_plain_env0.json" \
    <<'PYEOF'
import json, sys
a, b = (json.load(open(p)) for p in sys.argv[1:3])
assert "attribution" not in a and "attribution" not in b, \
    "attribution section leaked into an attrib-off run"
assert not a["config"].get("attrib") and not b["config"].get("attrib")
PYEOF
rm -f "$out/fig14_plain_env0.json"

# Regression gate: the fig09 rows/metrics must match the committed
# baseline within contig_inspect's per-metric tolerances.
echo "=== baseline gate ==="
"$bench/fig09_free_blocks" --json "$root/BENCH_fig09_free_blocks.json" \
    --timeline "$root/BENCH_fig09_timeline.jsonl"
python3 "$root/scripts/check_bench_json.py" \
    --timeline-file "$root/BENCH_fig09_timeline.jsonl"
"$out/release/tools/contig_inspect" check-baseline \
    "$root/BENCH_fig09_free_blocks.json" \
    "$root/bench/baselines/BENCH_fig09_free_blocks.json"
# Fault-scaling gate: deterministic fault/page counts per (policy,
# threads) cell; wall-clock throughput columns are *.wall_us and
# therefore ignored by check-baseline.
"$out/release/tools/contig_inspect" check-baseline \
    "$root/BENCH_micro_fault_scaling.json" \
    "$root/bench/baselines/BENCH_micro_fault_scaling.json"
# Translation replay gates: component counters and the chunk-size x
# shard-thread grid are deterministic (chunking and the walk memo
# never move simulated counters; threads=N is a fixed hash
# partition); *.wall_us throughput columns are ignored.
"$out/release/tools/contig_inspect" check-baseline \
    "$root/BENCH_micro_tlb_spot.json" \
    "$root/bench/baselines/BENCH_micro_tlb_spot.json"
"$out/release/tools/contig_inspect" check-baseline \
    "$root/BENCH_micro_xlat_scaling.json" \
    "$root/bench/baselines/BENCH_micro_xlat_scaling.json"
# Reclaim-path gate: the sequential kernel makes every reclaim/swap/
# refault counter deterministic; only the *.wall_us columns float.
"$out/release/tools/contig_inspect" check-baseline \
    "$root/BENCH_micro_reclaim_path.json" \
    "$root/bench/baselines/BENCH_micro_reclaim_path.json"

echo "CI: all configurations green"
