#include "base/serialize.hh"

#include <array>

#include "base/logging.hh"

namespace contig
{

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t n, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    const std::uint8_t *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::size_t
Serializer::beginSection(std::uint32_t tag)
{
    u32(tag);
    const std::size_t cookie = buf_.size();
    u64(0); // length placeholder, patched by endSection
    return cookie;
}

void
Serializer::endSection(std::size_t cookie)
{
    const std::uint64_t len = buf_.size() - (cookie + 8);
    for (int i = 0; i < 8; ++i)
        buf_[cookie + i] = static_cast<std::uint8_t>(len >> (8 * i));
}

void
Deserializer::need(std::size_t n) const
{
    if (n_ - off_ < n)
        fatal("truncated %s: wanted %zu bytes at offset %zu, have %zu",
              what_.c_str(), n, off_, n_ - off_);
}

std::uint8_t
Deserializer::u8()
{
    need(1);
    return p_[off_++];
}

std::uint32_t
Deserializer::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p_[off_ + i]) << (8 * i);
    off_ += 4;
    return v;
}

std::uint64_t
Deserializer::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p_[off_ + i]) << (8 * i);
    off_ += 8;
    return v;
}

double
Deserializer::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

void
Deserializer::bytes(void *out, std::size_t n)
{
    need(n);
    std::memcpy(out, p_ + off_, n);
    off_ += n;
}

std::string
Deserializer::str()
{
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char *>(p_ + off_),
                  static_cast<std::size_t>(n));
    off_ += static_cast<std::size_t>(n);
    return s;
}

std::size_t
Deserializer::expectSection(std::uint32_t tag, const char *name)
{
    const std::uint32_t got = u32();
    if (got != tag)
        fatal("%s: expected section '%s' (tag 0x%08x), found tag 0x%08x"
              " at offset %zu",
              what_.c_str(), name, tag, got, off_ - 4);
    const std::uint64_t len = u64();
    need(static_cast<std::size_t>(len));
    return off_ + static_cast<std::size_t>(len);
}

} // namespace contig
