# Empty compiler generated dependencies file for test_contig.
# This may be replaced when dependencies are built.
