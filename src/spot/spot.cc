#include "spot/spot.hh"

#include "base/logging.hh"
#include "obs/metrics.hh"
#include "base/serialize.hh"

namespace contig
{

SpotEngine::SpotEngine(const SpotConfig &cfg)
    : cfg_(cfg), entries_(cfg.sets * cfg.ways)
{
    contig_assert(cfg.sets > 0 && cfg.ways > 0, "degenerate SpOT table");
}

unsigned
SpotEngine::setOf(Addr pc) const
{
    // Fold the PC a little before indexing: instruction addresses
    // share low-bit alignment.
    return static_cast<unsigned>(((pc >> 6) ^ (pc >> 12)) % cfg_.sets);
}

SpotEngine::Entry *
SpotEngine::find(Addr pc)
{
    Entry *base = &entries_[setOf(pc) * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w)
        if (base[w].valid && base[w].pcTag == pc)
            return &base[w];
    return nullptr;
}

std::optional<std::int64_t>
SpotEngine::predict(Addr pc)
{
    ++stats_.lookups;
    pending_.reset();
    pendingPc_ = pc;
    Entry *e = find(pc);
    if (e && e->confidence > cfg_.confidenceThreshold) {
        e->lastUse = ++clock_;
        pending_ = e->offset;
    }
    return pending_;
}

SpotOutcome
SpotEngine::update(Addr pc, std::int64_t true_offset, bool contig_ok)
{
    // Classify the in-flight speculation first.
    SpotOutcome outcome;
    if (pending_ && pendingPc_ == pc) {
        outcome = (*pending_ == true_offset) ? SpotOutcome::Correct
                                             : SpotOutcome::Mispredicted;
    } else {
        outcome = SpotOutcome::NoPrediction;
    }
    pending_.reset();
    switch (outcome) {
      case SpotOutcome::Correct:
        ++stats_.correct;
        break;
      case SpotOutcome::Mispredicted:
        ++stats_.mispredicted;
        break;
      case SpotOutcome::NoPrediction:
        ++stats_.noPrediction;
        break;
    }

    const bool fills_allowed = contig_ok || !cfg_.requireContigBits;

    Entry *e = find(pc);
    if (e) {
        // Confidence bookkeeping happens on every walk, speculated or
        // not (§IV-C, "predictions are still calculated and compared").
        if (e->offset == true_offset) {
            if (e->confidence < 3)
                ++e->confidence;
        } else if (e->confidence > 0) {
            --e->confidence;
        }
        // Offsets are replaced only at zero confidence, and only with
        // offsets the OS marked as belonging to large mappings.
        if (e->confidence == 0 && e->offset != true_offset) {
            if (fills_allowed) {
                e->offset = true_offset;
                e->confidence = 1;
                ++stats_.offsetReplacements;
            }
        }
        e->lastUse = ++clock_;
        return outcome;
    }

    // No entry for this PC: try to fill one.
    if (!fills_allowed) {
        ++stats_.fillsBlockedByBits;
        return outcome;
    }
    Entry *base = &entries_[setOf(pc) * cfg_.ways];
    Entry *victim = nullptr;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        Entry &cand = base[w];
        if (!cand.valid) {
            victim = &cand;
            break;
        }
        // Only zero-confidence entries may be evicted; LRU among them.
        if (cand.confidence == 0 &&
            (!victim || cand.lastUse < victim->lastUse)) {
            victim = &cand;
        }
    }
    if (!victim)
        return outcome; // set full of confident entries: drop the fill
    victim->valid = true;
    victim->pcTag = pc;
    victim->offset = true_offset;
    victim->confidence = 1;
    victim->lastUse = ++clock_;
    ++stats_.fills;
    return outcome;
}

void
SpotEngine::flush()
{
    for (auto &e : entries_)
        e.valid = false;
    pending_.reset();
}

void
SpotEngine::collectMetrics(obs::MetricSink &sink) const
{
    sink.counter("lookups", stats_.lookups);
    sink.counter("correct", stats_.correct);
    sink.counter("mispredictions", stats_.mispredicted);
    sink.counter("no_prediction", stats_.noPrediction);
    sink.counter("fills", stats_.fills);
    sink.counter("fills_blocked_by_bits", stats_.fillsBlockedByBits);
    sink.counter("offset_replacements", stats_.offsetReplacements);
}


void
SpotEngine::saveState(Serializer &s) const
{
    const std::size_t sec = s.beginSection(sectionTag('S', 'P', 'O', 'T'));
    s.u32(cfg_.sets);
    s.u32(cfg_.ways);
    s.u64(clock_);
    s.u64(stats_.lookups);
    s.u64(stats_.correct);
    s.u64(stats_.mispredicted);
    s.u64(stats_.noPrediction);
    s.u64(stats_.fills);
    s.u64(stats_.fillsBlockedByBits);
    s.u64(stats_.offsetReplacements);
    s.u64(entries_.size());
    for (const Entry &e : entries_) {
        s.u64(e.pcTag);
        s.i64(e.offset);
        s.u8(e.confidence);
        s.boolean(e.valid);
        s.u64(e.lastUse);
    }
    s.boolean(pending_.has_value());
    s.i64(pending_ ? *pending_ : 0);
    s.u64(pendingPc_);
    s.endSection(sec);
}

void
SpotEngine::restoreState(Deserializer &d)
{
    d.expectSection(sectionTag('S', 'P', 'O', 'T'), "spot");
    const unsigned sets = d.u32();
    const unsigned ways = d.u32();
    if (sets != cfg_.sets || ways != cfg_.ways)
        fatal("checkpoint SpOT geometry mismatch: file has %ux%u, this"
              " run has %ux%u",
              sets, ways, cfg_.sets, cfg_.ways);
    clock_ = d.u64();
    stats_.lookups = d.u64();
    stats_.correct = d.u64();
    stats_.mispredicted = d.u64();
    stats_.noPrediction = d.u64();
    stats_.fills = d.u64();
    stats_.fillsBlockedByBits = d.u64();
    stats_.offsetReplacements = d.u64();
    const std::uint64_t n = d.u64();
    if (n != entries_.size())
        fatal("checkpoint SpOT entry count mismatch: %llu vs %zu",
              static_cast<unsigned long long>(n), entries_.size());
    for (Entry &e : entries_) {
        e.pcTag = d.u64();
        e.offset = d.i64();
        e.confidence = d.u8();
        e.valid = d.boolean();
        e.lastUse = d.u64();
    }
    const bool has_pending = d.boolean();
    const std::int64_t pending = d.i64();
    pending_ = has_pending ? std::optional<std::int64_t>(pending)
                           : std::nullopt;
    pendingPc_ = d.u64();
}

} // namespace contig
