/**
 * @file
 * Fragmentation study: how allocation policies cope as a machine
 * fills with unmovable memory.
 *
 * Sweeps hog pressure over a machine, runs an SVM-like workload under
 * default THP, eager pre-allocation and CA paging at each level, and
 * prints the contiguity each policy salvages plus the free-block
 * landscape it leaves behind.
 *
 *   ./examples/fragmentation_study [max_hog_percent]
 */

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace contig;

namespace
{

struct Row
{
    double cov32;
    std::uint64_t maps99;
    double bigFreeFrac; //!< free memory still in >=16 MiB blocks
};

Row
runOne(PolicyKind kind, double pressure)
{
    NativeSystem sys(kind, 42);
    if (pressure > 0)
        sys.hog(pressure);
    auto wl = makeWorkload("svm", {1.0, 42});
    auto r = sys.run(*wl);

    auto hist = freeBlockDistribution(sys.kernel().physMem());
    const double total = std::max<double>(hist.totalWeight(), 1);
    std::uint64_t big = 0;
    for (unsigned b = 12; b < 40; ++b) // 2^12 pages = 16 MiB
        big += hist.bucket(b);

    Row row{r.final.cov32, r.final.mappingsFor99, big / total};
    sys.finish(*wl);
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const int max_pct = argc > 1 ? std::atoi(argv[1]) : 50;
    printScaledBanner();

    Report rep("SVM under increasing external fragmentation");
    rep.header({"hog", "policy", "cov32", "maps-for-99%",
                "free in >=16MiB blocks"});
    for (int pct = 0; pct <= max_pct; pct += 25) {
        for (PolicyKind kind :
             {PolicyKind::Thp, PolicyKind::Eager, PolicyKind::Ca}) {
            Row row = runOne(kind, pct / 100.0);
            rep.row({std::to_string(pct) + "%", policyName(kind),
                     Report::pct(row.cov32),
                     std::to_string(row.maps99),
                     Report::pct(row.bigFreeFrac)});
        }
    }
    rep.print();

    std::printf("\nTakeaway: eager paging needs *aligned* free blocks "
                "and collapses as they vanish; CA paging's contiguity "
                "map tracks unaligned free runs, so it keeps finding "
                "near-VMA-sized placements long after the buddy "
                "allocator's high orders are empty.\n");
    return 0;
}
