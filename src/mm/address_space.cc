#include "mm/address_space.hh"

#include "base/align.hh"
#include "base/logging.hh"
#include "base/serialize.hh"

namespace contig
{

Vma &
AddressSpace::mmap(std::uint64_t bytes, VmaKind kind,
                   std::optional<Gva> base, std::uint32_t file_id,
                   std::uint64_t file_offset_pages)
{
    bytes = alignUp(bytes, kPageSize);
    contig_assert(bytes > 0, "mmap of zero bytes");

    Gva start;
    if (base) {
        start = base->pageBase();
        // Keep the automatic cursor beyond explicitly placed VMAs
        // (fork copies parent VMAs at their original addresses).
        mmapCursor_ = std::max(mmapCursor_,
                               start.value + alignUp(bytes, kHugeSize) +
                                   (Addr{16} << 20));
    } else {
        // Huge-page-align fresh VMAs, as glibc/TCMalloc arrange for
        // big allocations, so THP is applicable from the first page.
        // Skip past any existing VMA the candidate would overlap.
        Addr cand = alignUp(mmapCursor_, kHugeSize);
        for (;;) {
            auto next = vmas_.upper_bound(cand);
            bool clear = true;
            if (next != vmas_.begin()) {
                auto prev = std::prev(next);
                if (prev->second->end().value > cand) {
                    cand = alignUp(prev->second->end().value, kHugeSize);
                    clear = false;
                }
            }
            if (clear && next != vmas_.end() &&
                cand + bytes > next->first) {
                cand = alignUp(next->second->end().value, kHugeSize);
                clear = false;
            }
            if (clear)
                break;
        }
        start = Gva{cand};
        mmapCursor_ = start.value + alignUp(bytes, kHugeSize) +
                      (Addr{16} << 20); // 16 MiB guard gap
    }

    // Refuse overlap.
    auto it = vmas_.upper_bound(start.value);
    if (it != vmas_.end())
        contig_assert(start.value + bytes <= it->first, "VMA overlap");
    if (it != vmas_.begin()) {
        auto prev = std::prev(it);
        contig_assert(prev->second->end().value <= start.value,
                      "VMA overlap");
    }

    auto vma = std::make_unique<Vma>(nextVmaId_++, start, bytes, kind,
                                     file_id, file_offset_pages);
    Vma &ref = *vma;
    vmas_.emplace(start.value, std::move(vma));
    return ref;
}

void
AddressSpace::munmap(Vma &vma)
{
    auto it = vmas_.find(vma.start().value);
    contig_assert(it != vmas_.end(), "munmap of unknown VMA");
    vmas_.erase(it);
}

Vma *
AddressSpace::findVma(Gva gva)
{
    auto it = vmas_.upper_bound(gva.value);
    if (it == vmas_.begin())
        return nullptr;
    --it;
    Vma *vma = it->second.get();
    return vma->contains(gva) ? vma : nullptr;
}

const Vma *
AddressSpace::findVma(Gva gva) const
{
    return const_cast<AddressSpace *>(this)->findVma(gva);
}


void
AddressSpace::saveState(Serializer &s) const
{
    const std::size_t sec = s.beginSection(sectionTag('A', 'S', 'P', 'C'));
    s.u64(vmas_.size());
    for (const auto &kv : vmas_) {
        const Vma &vma = *kv.second;
        s.u32(vma.id());
        s.u64(vma.start().value);
        s.u64(vma.bytes());
        s.u8(static_cast<std::uint8_t>(vma.kind()));
        s.u32(vma.fileId());
        s.u64(vma.fileOffsetPages());
    }
    pageTable_.saveState(s);
    s.endSection(sec);
}

} // namespace contig
