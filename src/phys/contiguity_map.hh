/**
 * @file
 * The contiguity_map of CA paging (paper §III-B, Fig. 3): an indexing
 * structure on top of the buddy allocator's top-order free list that
 * records *unaligned* free contiguity at scales larger than the buddy
 * heap. Each entry (cluster) is a maximal run of physically adjacent
 * free top-order blocks. The map also hosts the next-fit rover used by
 * CA paging's placement policy, and a best-fit query used by the
 * offline "ideal paging" baseline.
 */

#ifndef CONTIG_PHYS_CONTIGUITY_MAP_HH
#define CONTIG_PHYS_CONTIGUITY_MAP_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"

namespace contig
{

namespace obs { class MetricSink; }

/** A maximal run of free top-order blocks: [startPfn, startPfn+pages). */
struct Cluster
{
    Pfn startPfn = 0;
    std::uint64_t pages = 0;
};

/** Statistics exported by a ContiguityMap instance. */
struct ContiguityMapStats
{
    std::uint64_t inserts = 0;
    std::uint64_t removes = 0;
    std::uint64_t merges = 0;
    std::uint64_t splits = 0;
    std::uint64_t placements = 0;
    std::uint64_t placementScanSteps = 0;
};

/**
 * Sorted-by-physical-address map of free clusters. The kernel keeps
 * one instance per zone (per NUMA node), mirroring the paper's
 * per-`struct zone` instance.
 */
class ContiguityMap
{
  public:
    /** @param block_pages Pages per top-order block (2^maxOrder). */
    explicit ContiguityMap(std::uint64_t block_pages);

    /** A top-order block at block_base became free. */
    void onBlockFree(Pfn block_base);

    /** A top-order block at block_base left the free list. */
    void onBlockAllocated(Pfn block_base);

    /**
     * Next-fit placement (paper §III-C): starting from the rover,
     * return the first cluster with at least req_pages free pages,
     * wrapping around once. If no cluster is large enough, return the
     * largest cluster seen. Advances the rover past the chosen
     * cluster so consecutive placements defer racing on one block.
     * Returns nullopt only if the map is empty.
     */
    std::optional<Cluster> placeNextFit(std::uint64_t req_pages);

    /**
     * Best-fit placement: the smallest cluster that fits, or the
     * largest overall. Does not move the rover (used by IdealPolicy's
     * offline assignment).
     */
    std::optional<Cluster> placeBestFit(std::uint64_t req_pages) const;

    /** Largest cluster currently tracked. */
    std::optional<Cluster> largest() const;

    std::uint64_t clusterCount() const { return clusters_.size(); }
    std::uint64_t freePagesTracked() const { return trackedPages_; }

    /** Snapshot of all clusters in address order. */
    std::vector<Cluster> snapshot() const;

    /**
     * Cluster-size distribution, weighted by pages (bucket i holds
     * the pages living in clusters of [2^i, 2^(i+1)) pages) — the
     * cluster CDF the observatory samples per tick.
     */
    Log2Histogram clusterSizeHistogram() const;

    const ContiguityMapStats &stats() const { return stats_; }

    /** Report counters + cluster gauges/size histogram into a sink. */
    void collectMetrics(obs::MetricSink &sink) const;

    /** Consistency check for the property tests. */
    bool checkInvariants() const;

  private:
    using Map = std::map<Pfn, std::uint64_t>; // start -> pages

    Map::const_iterator roverIter() const;

    std::uint64_t blockPages_;
    Map clusters_;
    std::uint64_t trackedPages_ = 0;
    /** Next-fit rover: start key of the next cluster to consider. */
    Pfn rover_ = 0;
    bool roverValid_ = false;
    ContiguityMapStats stats_;
};

} // namespace contig

#endif // CONTIG_PHYS_CONTIGUITY_MAP_HH
