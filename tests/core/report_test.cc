#include <gtest/gtest.h>

#include "core/report.hh"

using namespace contig;

TEST(Report, NumFormatting)
{
    EXPECT_EQ(Report::num(3.14159, 2), "3.14");
    EXPECT_EQ(Report::num(3.14159, 0), "3");
    EXPECT_EQ(Report::num(-1.5, 1), "-1.5");
}

TEST(Report, PctFormatting)
{
    EXPECT_EQ(Report::pct(0.5), "50.0%");
    EXPECT_EQ(Report::pct(0.1234, 2), "12.34%");
    EXPECT_EQ(Report::pct(1.0, 0), "100%");
}

TEST(Report, BytesFormatting)
{
    EXPECT_EQ(Report::bytes(512), "0.5KiB");
    EXPECT_EQ(Report::bytes(5ull << 20), "5.0MiB");
    EXPECT_EQ(Report::bytes(3ull << 30), "3.00GiB");
}

TEST(Report, PrintDoesNotCrash)
{
    Report rep("test table");
    rep.header({"a", "longer column"});
    rep.row({"1", "2"});
    rep.row({"wide cell value", "3"});
    rep.row({"short"});
    ::testing::internal::CaptureStdout();
    rep.print();
    std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("test table"), std::string::npos);
    EXPECT_NE(out.find("wide cell value"), std::string::npos);
}
