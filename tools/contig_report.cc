/**
 * @file
 * contig_report: differential consumer of the schema-4 "attribution"
 * bench-JSON section (--attrib runs). Reads two documents, picks one
 * translation table from each (--a-xlat / --b-xlat select the scheme
 * label when a document carries several), and prints a side-by-side
 * cost table resolved by (outcome x contiguity class): events, walk
 * and exposed cycles, per-class deltas and the p50/p90/p99 shifts of
 * the exposed-cycle distributions.
 *
 *   contig_report A.json B.json [--a-xlat LABEL] [--b-xlat LABEL]
 *                 [--gate] [--max-exposed-growth-pct PCT]
 *                 [--max-p99-growth-pct PCT]
 *
 * The same file may be given twice with different labels — that is
 * how "CA paging vs SpOT" reads from one fig13 run. With --gate the
 * tool exits 1 when B regresses past the thresholds relative to A:
 * per-event exposed cycles growing more than
 * --max-exposed-growth-pct (default 10) or any outcome's exposed p99
 * growing more than --max-p99-growth-pct (default 25). Exit 2 means
 * the inputs were unusable (no attribution section, unknown label).
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "base/json.hh"

using namespace contig;

namespace
{

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "contig_report: %s\n", msg.c_str());
    std::exit(2);
}

// --- attribution model ----------------------------------------------------

struct Cell
{
    double events = 0;
    double walkCycles = 0;
    double exposedCycles = 0;
    double p50 = 0, p90 = 0, p99 = 0;
};

struct Outcome
{
    Cell total;
    std::map<unsigned, Cell> classes;      //!< class index -> cell
    std::map<unsigned, std::string> names; //!< class index -> label
};

struct XlatTable
{
    std::string file;
    std::string label;
    double events = 0;
    double walkCycles = 0;
    double exposedCycles = 0;
    /** Keyed by outcome token, document order preserved separately. */
    std::map<std::string, Outcome> outcomes;
    std::vector<std::string> order;
};

Cell
readCell(const JsonValue &v)
{
    Cell c;
    c.events = v.numberOr("events", 0);
    c.walkCycles = v.numberOr("walk_cycles", v.numberOr("cycles", 0));
    c.exposedCycles = v.numberOr("exposed_cycles", 0);
    c.p50 = v.numberOr("p50", v.numberOr("exposed_p50", 0));
    c.p90 = v.numberOr("p90", v.numberOr("exposed_p90", 0));
    c.p99 = v.numberOr("p99", v.numberOr("exposed_p99", 0));
    return c;
}

JsonValue
loadDoc(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        die("cannot open '" + path + "'");
    std::stringstream ss;
    ss << in.rdbuf();
    std::string err;
    auto doc = JsonValue::parse(ss.str(), &err);
    if (!doc)
        die(path + ": " + err);
    return std::move(*doc);
}

XlatTable
loadXlat(const std::string &path, const JsonValue &doc,
         const std::string &want_label)
{
    const JsonValue *attr = doc.find("attribution");
    if (!attr)
        die(path + " has no \"attribution\" section — was the bench "
                   "run with --attrib?");
    const JsonValue *xlat = attr->find("xlat");
    if (!xlat || !xlat->isObject() || xlat->members().empty())
        die(path + " has no translation attribution tables");

    std::string available;
    const JsonValue *table = nullptr;
    std::string label;
    for (const auto &m : xlat->members()) {
        if (!available.empty())
            available += ", ";
        available += m.first;
        if (want_label.empty() || m.first == want_label) {
            if (want_label.empty() && table)
                die(path + " carries several tables (" + available +
                    "...) — pick one with --a-xlat/--b-xlat");
            table = &m.second;
            label = m.first;
        }
    }
    if (!table)
        die(path + " has no table '" + want_label + "' (available: " +
            available + ")");

    XlatTable t;
    t.file = path;
    t.label = label;
    t.events = table->numberOr("events", 0);
    t.walkCycles = table->numberOr("walk_cycles", 0);
    t.exposedCycles = table->numberOr("exposed_cycles", 0);
    if (const JsonValue *outs = table->find("outcomes")) {
        for (const auto &m : outs->members()) {
            Outcome o;
            o.total = readCell(m.second);
            o.total.p50 = m.second.numberOr("exposed_p50", 0);
            o.total.p90 = m.second.numberOr("exposed_p90", 0);
            o.total.p99 = m.second.numberOr("exposed_p99", 0);
            if (const JsonValue *cls = m.second.find("classes")) {
                for (const JsonValue &cv : cls->array()) {
                    const unsigned idx = static_cast<unsigned>(
                        cv.numberOr("class", 0));
                    o.classes[idx] = readCell(cv);
                    if (const JsonValue *n = cv.find("name"))
                        o.names[idx] = n->asString();
                }
            }
            t.outcomes.emplace(m.first, std::move(o));
            t.order.push_back(m.first);
        }
    }
    return t;
}

// --- formatting -----------------------------------------------------------

std::string
num(double v)
{
    char buf[32];
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
}

std::string
pct(double a, double b)
{
    if (a == 0.0)
        return b == 0.0 ? "0%" : "new";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", (b - a) / a * 100.0);
    return buf;
}

void
printTable(const std::vector<std::vector<std::string>> &rows)
{
    std::vector<std::size_t> width;
    for (const auto &row : rows) {
        if (width.size() < row.size())
            width.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    }
    for (const auto &row : rows) {
        for (std::size_t i = 0; i < row.size(); ++i)
            std::printf("%-*s%s", static_cast<int>(width[i]),
                        row[i].c_str(), i + 1 < row.size() ? "  " : "");
        std::printf("\n");
    }
}

/** Outcome keys of both tables, A's document order first. */
std::vector<std::string>
unionOutcomes(const XlatTable &a, const XlatTable &b)
{
    std::vector<std::string> keys = a.order;
    for (const std::string &k : b.order)
        if (!a.outcomes.count(k))
            keys.push_back(k);
    return keys;
}

const Outcome &
outcomeOrEmpty(const XlatTable &t, const std::string &key)
{
    static const Outcome empty;
    const auto it = t.outcomes.find(key);
    return it == t.outcomes.end() ? empty : it->second;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    std::string a_label, b_label;
    bool gate = false;
    double max_exposed_pct = 10.0;
    double max_p99_pct = 25.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_next = i + 1 < argc;
        if (arg == "--a-xlat" && has_next) {
            a_label = argv[++i];
        } else if (arg == "--b-xlat" && has_next) {
            b_label = argv[++i];
        } else if (arg == "--gate") {
            gate = true;
        } else if (arg == "--max-exposed-growth-pct" && has_next) {
            max_exposed_pct = std::strtod(argv[++i], nullptr);
        } else if (arg == "--max-p99-growth-pct" && has_next) {
            max_p99_pct = std::strtod(argv[++i], nullptr);
        } else if (!arg.empty() && arg[0] == '-') {
            die("unknown option '" + arg +
                "'\nusage: contig_report A.json B.json"
                " [--a-xlat LABEL] [--b-xlat LABEL] [--gate]"
                " [--max-exposed-growth-pct PCT]"
                " [--max-p99-growth-pct PCT]");
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2)
        die("expected exactly two bench JSON files"
            "\nusage: contig_report A.json B.json [--a-xlat LABEL]"
            " [--b-xlat LABEL] [--gate] [--max-exposed-growth-pct PCT]"
            " [--max-p99-growth-pct PCT]");

    const JsonValue doc_a = loadDoc(files[0]);
    const JsonValue doc_b = loadDoc(files[1]);
    const XlatTable a = loadXlat(files[0], doc_a, a_label);
    const XlatTable b = loadXlat(files[1], doc_b, b_label);

    std::printf("A: %s [%s]  events=%s exposed_cycles=%s\n",
                a.file.c_str(), a.label.c_str(), num(a.events).c_str(),
                num(a.exposedCycles).c_str());
    std::printf("B: %s [%s]  events=%s exposed_cycles=%s\n\n",
                b.file.c_str(), b.label.c_str(), num(b.events).c_str(),
                num(b.exposedCycles).c_str());

    // --- the side-by-side (outcome x class) cost table -------------------
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"outcome", "class", "a.events", "b.events",
                    "a.exposed", "b.exposed", "d.exposed", "d%"});
    for (const std::string &key : unionOutcomes(a, b)) {
        const Outcome &oa = outcomeOrEmpty(a, key);
        const Outcome &ob = outcomeOrEmpty(b, key);
        rows.push_back(
            {key, "*", num(oa.total.events), num(ob.total.events),
             num(oa.total.exposedCycles), num(ob.total.exposedCycles),
             num(ob.total.exposedCycles - oa.total.exposedCycles),
             pct(oa.total.exposedCycles, ob.total.exposedCycles)});
        std::map<unsigned, bool> cls;
        for (const auto &kv : oa.classes)
            cls[kv.first] = true;
        for (const auto &kv : ob.classes)
            cls[kv.first] = true;
        for (const auto &kv : cls) {
            static const Cell empty;
            const auto ia = oa.classes.find(kv.first);
            const auto ib = ob.classes.find(kv.first);
            const Cell &ca = ia == oa.classes.end() ? empty : ia->second;
            const Cell &cb = ib == ob.classes.end() ? empty : ib->second;
            std::string name = "cls" + std::to_string(kv.first);
            if (const auto in = oa.names.find(kv.first);
                in != oa.names.end())
                name = in->second;
            else if (const auto im = ob.names.find(kv.first);
                     im != ob.names.end())
                name = im->second;
            rows.push_back({"", name, num(ca.events), num(cb.events),
                            num(ca.exposedCycles), num(cb.exposedCycles),
                            num(cb.exposedCycles - ca.exposedCycles),
                            pct(ca.exposedCycles, cb.exposedCycles)});
        }
    }
    printTable(rows);

    // --- percentile shifts ------------------------------------------------
    std::printf("\npercentile shifts (exposed cycles per event):\n");
    rows.clear();
    rows.push_back({"outcome", "a.p50", "b.p50", "a.p90", "b.p90",
                    "a.p99", "b.p99", "d.p99%"});
    for (const std::string &key : unionOutcomes(a, b)) {
        const Cell &ca = outcomeOrEmpty(a, key).total;
        const Cell &cb = outcomeOrEmpty(b, key).total;
        rows.push_back({key, num(ca.p50), num(cb.p50), num(ca.p90),
                        num(cb.p90), num(ca.p99), num(cb.p99),
                        pct(ca.p99, cb.p99)});
    }
    printTable(rows);

    // --- fault-side totals, when both documents carry them ---------------
    const JsonValue *fa = doc_a.find("attribution");
    const JsonValue *fb = doc_b.find("attribution");
    const JsonValue *fta = fa ? fa->find("fault") : nullptr;
    const JsonValue *ftb = fb ? fb->find("fault") : nullptr;
    if (fta && ftb) {
        std::printf("\nfault path: A %s events / %s cycles vs "
                    "B %s events / %s cycles (%s cycles)\n",
                    num(fta->numberOr("events", 0)).c_str(),
                    num(fta->numberOr("cycles", 0)).c_str(),
                    num(ftb->numberOr("events", 0)).c_str(),
                    num(ftb->numberOr("cycles", 0)).c_str(),
                    pct(fta->numberOr("cycles", 0),
                        ftb->numberOr("cycles", 0)).c_str());
    }

    // --- regression gate --------------------------------------------------
    if (!gate)
        return 0;
    int rc = 0;
    const double pe_a = a.events > 0 ? a.exposedCycles / a.events : 0;
    const double pe_b = b.events > 0 ? b.exposedCycles / b.events : 0;
    if (pe_a > 0 &&
        (pe_b - pe_a) / pe_a * 100.0 > max_exposed_pct) {
        std::fprintf(stderr,
                     "contig_report: GATE per-event exposed cycles "
                     "%.4f -> %.4f (+%.1f%% > %.1f%%)\n",
                     pe_a, pe_b, (pe_b - pe_a) / pe_a * 100.0,
                     max_exposed_pct);
        rc = 1;
    }
    for (const std::string &key : unionOutcomes(a, b)) {
        const Cell &ca = outcomeOrEmpty(a, key).total;
        const Cell &cb = outcomeOrEmpty(b, key).total;
        if (ca.p99 > 0 &&
            (cb.p99 - ca.p99) / ca.p99 * 100.0 > max_p99_pct) {
            std::fprintf(stderr,
                         "contig_report: GATE %s exposed p99 "
                         "%.2f -> %.2f (+%.1f%% > %.1f%%)\n",
                         key.c_str(), ca.p99, cb.p99,
                         (cb.p99 - ca.p99) / ca.p99 * 100.0,
                         max_p99_pct);
            rc = 1;
        }
    }
    if (rc == 0)
        std::printf("\ngate: ok (exposed/event %+.1f%% <= %.1f%%)\n",
                    pe_a > 0 ? (pe_b - pe_a) / pe_a * 100.0 : 0.0,
                    max_exposed_pct);
    return rc;
}
