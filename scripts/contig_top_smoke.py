#!/usr/bin/env python3
"""Smoke-test contig_top against a real bench timeline.

Usage: contig_top_smoke.py <bench-binary> <contig_top-binary>

Runs the bench with --timeline (and --lock-stats, so lock.* keys ride
the stream) into a temp dir, then points contig_top at the finished
JSONL in --once --plain mode — exactly the file a live run would be
appending to, so this exercises the same tail/decode/render path the
interactive monitor uses. The frame must render the per-zone table
from the stream's final snapshot.

Registered as a ctest (contig_top_smoke).
"""

import subprocess
import sys
import tempfile
from pathlib import Path


def fail(msg):
    print(f"contig_top_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run(cmd, timeout):
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, timeout=timeout)
    text = proc.stdout.decode(errors="replace")
    print("+", " ".join(str(c) for c in cmd))
    if proc.returncode != 0:
        fail(f"exit {proc.returncode}: {' '.join(str(c) for c in cmd)}\n"
             f"{text[-2000:]}")
    return text


def main():
    if len(sys.argv) != 3:
        fail("usage: contig_top_smoke.py <bench> <contig_top>")
    bench, top = Path(sys.argv[1]), Path(sys.argv[2])
    for binary in (bench, top):
        if not binary.exists():
            fail(f"binary not found: {binary}")

    with tempfile.TemporaryDirectory() as tmp:
        timeline = Path(tmp) / "timeline.jsonl"
        run([str(bench), "--lock-stats", "--timeline", str(timeline)],
            timeout=600)
        if not timeline.exists() or not timeline.stat().st_size:
            fail("bench produced no timeline JSONL")
        frame = run([str(top), str(timeline), "--once", "--plain"],
                    timeout=60)

    for needle in ("contig_top", "zone", "free", "fmfi"):
        if needle not in frame:
            fail(f"rendered frame is missing {needle!r}:\n{frame[-2000:]}")
    print("contig_top_smoke: OK: frame rendered "
          f"({len(frame.splitlines())} lines)")


if __name__ == "__main__":
    main()
