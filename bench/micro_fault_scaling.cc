/**
 * @file
 * Micro-benchmark: fault-path throughput under worker threads. One
 * threaded Kernel + ParallelDriver per cell, threads in {1, 2, 4, 8},
 * each worker demand-faulting its own 32 MiB region in shuffled 2 MiB
 * chunks (the fig10 multi-programmed shape). Fault counts, page
 * counts and the post-exit pcp-cache residue are deterministic and
 * gated by the committed baseline; wall-clock throughput columns are
 * named `*.wall_us` so check-baseline ignores them (CI machines may
 * have a single CPU, where the speedup is the locking overhead, not
 * the scaling headline).
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

#include "core/bench_io.hh"
#include "core/experiment.hh"
#include "core/parallel.hh"
#include "core/report.hh"
#include "mm/kernel.hh"

using namespace contig;

namespace
{

constexpr std::uint64_t kBytesPerWorker = 32ull << 20;
constexpr std::uint64_t kChunkBytes = 2ull << 20;
constexpr std::uint64_t kSeed = 0x5CA1ED;

double
wallUs(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

struct Cell
{
    std::uint64_t faults = 0;
    std::uint64_t hugeFaults = 0;
    std::uint64_t pages = 0;
    std::uint64_t pcpAfterExit = 0; //!< must drain to 0
    double fillUs = 0.0;
};

Cell
runCell(PolicyKind kind, unsigned threads)
{
    KernelConfig cfg = kernelConfigFor(kind);
    cfg.threads = threads;
    cfg.metricsPrefix =
        "mfs_" + policyName(kind) + "_t" + std::to_string(threads);
    Kernel k(cfg, makePolicy(kind));

    ParallelDriverConfig pd;
    pd.threads = threads;
    pd.bytesPerWorker = kBytesPerWorker;
    pd.chunkBytes = kChunkBytes;
    pd.seed = kSeed;
    ParallelDriver driver(k, pd);

    Cell cell;
    cell.fillUs = wallUs([&] { driver.run(); });
    cell.faults = k.faultStats().faults;
    cell.hugeFaults = k.faultStats().hugeFaults;
    cell.pages = threads * (kBytesPerWorker / kPageSize);
    driver.exitAll();
    cell.pcpAfterExit = k.physMem().pcpCachedPages();
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("micro_fault_scaling", argc, argv);
    out.note("bytes_per_worker", kBytesPerWorker);
    out.note("chunk_bytes", kChunkBytes);
    out.note("seed", kSeed);

    Report rep("micro — fault throughput vs worker threads "
               "(32 MiB/worker, shuffled 2 MiB chunks)");
    rep.header({"policy", "threads", "pages", "faults", "huge",
                "pcp_after_exit", "fill.wall_us", "kfaults_s.wall_us",
                "speedup.wall_us"});
    for (PolicyKind kind : {PolicyKind::Base4k, PolicyKind::Thp}) {
        double base_rate = 0.0;
        for (unsigned threads : {1u, 2u, 4u, 8u}) {
            const Cell cell = runCell(kind, threads);
            const double rate =
                static_cast<double>(cell.faults) / cell.fillUs * 1000.0;
            if (threads == 1)
                base_rate = rate;
            rep.row({policyName(kind), std::to_string(threads),
                     std::to_string(cell.pages),
                     std::to_string(cell.faults),
                     std::to_string(cell.hugeFaults),
                     std::to_string(cell.pcpAfterExit),
                     Report::num(cell.fillUs, 1),
                     Report::num(rate, 1),
                     Report::num(rate / base_rate, 2)});
        }
    }
    out.add(rep);
    rep.print();

    out.write();
    return 0;
}
