/**
 * @file
 * Minimal streaming JSON writer and a matching recursive-descent
 * reader. The writer produces compact, valid JSON with proper string
 * escaping; commas and nesting are tracked by a state stack so
 * callers never emit separators by hand. The reader (JsonValue)
 * parses what the writer emits — plus any standard JSON — into an
 * order-preserving DOM; it backs the timeline/baseline consumers
 * (tools/contig_inspect). Used by the TraceSink exporters and the
 * Report/bench `--json` output, and small enough to be a reasonable
 * dependency from anywhere in base/.
 */

#ifndef CONTIG_BASE_JSON_HH
#define CONTIG_BASE_JSON_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace contig
{

/**
 * Streaming JSON writer into an internal buffer.
 *
 * Usage:
 *   JsonWriter w;
 *   w.beginObject();
 *   w.key("name"); w.value("fig07");
 *   w.key("rows"); w.beginArray(); w.value(1.5); w.endArray();
 *   w.endObject();
 *   std::string out = std::move(w).str();
 *
 * Misuse (e.g. a value in an object position without a key) trips an
 * assertion; this is a programming error, not an input error.
 */
class JsonWriter
{
  public:
    JsonWriter() = default;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Object key; must be followed by exactly one value/container. */
    void key(std::string_view k);

    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void value(bool v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void null();

    /** key() + value() in one call. */
    template <typename T>
    void
    field(std::string_view k, T &&v)
    {
        key(k);
        value(std::forward<T>(v));
    }

    /** True once every container has been closed and a value emitted. */
    bool complete() const;

    const std::string &str() const &;
    std::string str() &&;

    /**
     * JSON-escape a string body (no surrounding quotes): ", \ and
     * control characters are escaped, everything else passes through
     * byte-for-byte (UTF-8 stays valid UTF-8).
     */
    static std::string escape(std::string_view s);

  private:
    enum class Frame : std::uint8_t
    {
        ObjectStart, //!< inside {, before first key
        ObjectKey,   //!< key written, value expected
        ObjectNext,  //!< at least one member written
        ArrayStart,  //!< inside [, before first element
        ArrayNext,   //!< at least one element written
    };

    /** Write separators/state transitions for an incoming value. */
    void beforeValue();
    void raw(std::string_view s) { out_.append(s); }

    std::string out_;
    std::vector<Frame> stack_;
    bool done_ = false;
};

/**
 * A parsed JSON document node. Objects preserve member order (the
 * writer emits deterministic documents; diffs stay stable), and
 * numbers are kept as doubles — the repo's JSON carries counters and
 * gauges that all fit a double exactly up to 2^53.
 *
 * Usage:
 *   auto doc = JsonValue::parse(text, &err);
 *   if (!doc) ...;
 *   const JsonValue *rows = doc->find("rows");
 *   for (const JsonValue &row : rows->array()) ...;
 */
class JsonValue
{
  public:
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const { return bool_; }
    double asNumber() const { return num_; }
    const std::string &asString() const { return str_; }

    const std::vector<JsonValue> &array() const { return elems_; }
    const std::vector<Member> &members() const { return members_; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Number at `key`, or `fallback` when absent / not a number. */
    double numberOr(std::string_view key, double fallback) const;

    /**
     * Parse one complete JSON document (trailing whitespace allowed,
     * trailing garbage is an error). On failure returns nullopt and,
     * if `err` is given, a one-line message with the byte offset.
     */
    static std::optional<JsonValue> parse(std::string_view text,
                                          std::string *err = nullptr);

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> elems_;
    std::vector<Member> members_;

    friend class JsonParser;
};

} // namespace contig

#endif // CONTIG_BASE_JSON_HH
