
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/policies/baselines_test.cc" "tests/CMakeFiles/test_policies.dir/policies/baselines_test.cc.o" "gcc" "tests/CMakeFiles/test_policies.dir/policies/baselines_test.cc.o.d"
  "/root/repo/tests/policies/ca_paging_test.cc" "tests/CMakeFiles/test_policies.dir/policies/ca_paging_test.cc.o" "gcc" "tests/CMakeFiles/test_policies.dir/policies/ca_paging_test.cc.o.d"
  "/root/repo/tests/policies/extensions_test.cc" "tests/CMakeFiles/test_policies.dir/policies/extensions_test.cc.o" "gcc" "tests/CMakeFiles/test_policies.dir/policies/extensions_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-seed/src/CMakeFiles/contig.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
