# Empty dependencies file for ablate_mark_threshold.
# This may be replaced when dependencies are built.
