/**
 * @file
 * A simulated process: an address space plus the touch/fork interface
 * the workloads drive. All faulting goes through the owning Kernel so
 * that the active AllocationPolicy steers every physical placement.
 */

#ifndef CONTIG_MM_PROCESS_HH
#define CONTIG_MM_PROCESS_HH

#include <memory>
#include <string>

#include "mm/address_space.hh"

namespace contig
{

class Kernel;

/** Kind of memory access (write triggers COW resolution). */
enum class Access : std::uint8_t { Read, Write };

/**
 * One process. Created through Kernel::createProcess; destroyed via
 * Kernel::exitProcess (which returns its frames).
 */
class Process
{
  public:
    Process(Kernel &kernel, std::uint32_t pid, std::string name,
            NodeId home_node);

    std::uint32_t pid() const { return pid_; }
    const std::string &name() const { return name_; }
    NodeId homeNode() const { return homeNode_; }

    AddressSpace &addressSpace() { return as_; }
    const AddressSpace &addressSpace() const { return as_; }
    PageTable &pageTable() { return as_.pageTable(); }
    const PageTable &pageTable() const { return as_.pageTable(); }

    Kernel &kernel() { return kernel_; }

    /** Create an anonymous VMA of `bytes`. */
    Vma &mmap(std::uint64_t bytes);

    /** Map `bytes` of a page-cache file starting at file_offset_pages. */
    Vma &mmapFile(std::uint32_t file_id, std::uint64_t bytes,
                  std::uint64_t file_offset_pages = 0);

    /** Unmap and free a VMA's memory. */
    void munmap(Vma &vma);

    /**
     * Touch one address: demand-fault if unmapped, resolve COW on
     * write. This is the workloads' only way to populate memory.
     */
    void touch(Gva gva, Access access = Access::Write);

    /** Touch every page of [gva, gva+bytes) in ascending order. */
    void touchRange(Gva gva, std::uint64_t bytes,
                    Access access = Access::Write);

    /** Record that vpn inside vma was accessed (touched-page stats). */
    void noteTouched(Vma &vma, Vpn vpn);

    /**
     * Fork: clone the address space COW-style into a new process
     * (anonymous VMAs only). Returns the child.
     */
    Process &fork(const std::string &child_name);

    /**
     * Whether defragmentation daemons (ranger) should scan this
     * process. Co-running pressure processes (the hog) are not
     * scanned — their pages are still exchanged away on demand.
     */
    bool defragEligible = true;

    /** Total pages touched across all live VMAs. */
    std::uint64_t touchedPages() const;
    /** Total pages of physical memory backing all live VMAs. */
    std::uint64_t allocatedPages() const;

  private:
    Kernel &kernel_;
    std::uint32_t pid_;
    std::string name_;
    NodeId homeNode_;
    AddressSpace as_;
};

} // namespace contig

#endif // CONTIG_MM_PROCESS_HH
