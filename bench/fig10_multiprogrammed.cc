/**
 * @file
 * Reproduces Fig. 10: two SVM-like instances populate their memory
 * *interleaved* on one machine; the 32-largest-mappings coverage of
 * each instance is tracked over time. CA paging's next-fit placement
 * keeps the two footprints from interfering; eager pre-allocates
 * both; ranger has to scan and migrate both processes and lags.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"

using namespace contig;

namespace
{

/** The SVM-like region set (sizes as in SvmWorkload's big regions). */
const std::uint64_t kRegionBytes[] = {150ull << 20, 50ull << 20,
                                      38ull << 20};

struct Pair
{
    std::vector<double> a, b;
};

Pair
runPair(PolicyKind kind)
{
    NativeSystem sys(kind, 7);
    Kernel &k = sys.kernel();
    Process &pa = k.createProcess("svm-a", 0);
    Process &pb = k.createProcess("svm-b", 0);

    std::vector<Vma *> va, vb;
    for (std::uint64_t bytes : kRegionBytes) {
        va.push_back(&pa.mmap(bytes));
        vb.push_back(&pb.mmap(bytes));
    }

    Pair out;
    auto sample = [&]() {
        out.a.push_back(coverageTopK(extractSegs(pa.pageTable()), 32));
        out.b.push_back(coverageTopK(extractSegs(pb.pageTable()), 32));
    };

    // Interleave the two instances' population at 4 MiB granularity,
    // the whole point of the multi-programmed experiment.
    const std::uint64_t chunk = 4ull << 20;
    std::uint64_t ticks = 0;
    for (std::size_t r = 0; r < va.size(); ++r) {
        const std::uint64_t bytes = kRegionBytes[r];
        for (std::uint64_t off = 0; off < bytes; off += chunk) {
            const std::uint64_t len = std::min(chunk, bytes - off);
            pa.touchRange(va[r]->start() + off, len);
            pb.touchRange(vb[r]->start() + off, len);
            if (++ticks % 8 == 0)
                sample();
        }
    }

    // Steady state: daemons (ranger) keep working.
    for (int epoch = 0; epoch < 24; ++epoch) {
        k.policy().onTick(k);
        sample();
    }
    return out;
}

double
at(const std::vector<double> &v, double frac)
{
    if (v.empty())
        return 0.0;
    return v[static_cast<std::size_t>(frac * (v.size() - 1))];
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("fig10_multiprogrammed", argc, argv);

    auto ca = runPair(PolicyKind::Ca);
    auto eager = runPair(PolicyKind::Eager);
    auto ranger = runPair(PolicyKind::Ranger);

    Report rep("Fig. 10 — cov32 of two interleaved SVM instances "
               "over time");
    rep.header({"time", "CA #1", "CA #2", "eager #1", "eager #2",
                "ranger #1", "ranger #2"});
    for (int pct = 0; pct <= 100; pct += 10) {
        double f = pct / 100.0;
        rep.row({std::to_string(pct) + "%", Report::pct(at(ca.a, f)),
                 Report::pct(at(ca.b, f)), Report::pct(at(eager.a, f)),
                 Report::pct(at(eager.b, f)),
                 Report::pct(at(ranger.a, f)),
                 Report::pct(at(ranger.b, f))});
    }
    out.add(rep);
    rep.print();

    std::printf("\npaper: CA keeps both instances highly contiguous "
                "(next-fit prevents interference over the same free "
                "blocks); ranger fails to coalesce both footprints\n");
    out.write();
    return 0;
}
