/**
 * @file
 * Experiment drivers: policy factory, native/virtualized systems with
 * fault-sampled coverage timelines, and the translation-overhead
 * runner. The bench binaries (one per paper table/figure) compose
 * these pieces; see DESIGN.md's experiment index.
 */

#ifndef CONTIG_CORE_EXPERIMENT_HH
#define CONTIG_CORE_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "contig/analysis.hh"
#include "core/config.hh"
#include "workloads/workloads.hh"

namespace contig
{

/** The allocation techniques compared throughout §VI. */
enum class PolicyKind
{
    Thp,    //!< default paging with THP
    Base4k, //!< default paging, 4 KiB only
    Ca,     //!< contiguity-aware paging (the paper's contribution)
    Eager,  //!< RMM eager pre-allocation
    Ingens, //!< utilization-based async promotion
    Ranger, //!< async defragmentation daemon
    Ideal,  //!< offline best-fit upper bound
};

std::unique_ptr<AllocationPolicy> makePolicy(PolicyKind kind);
std::string policyName(PolicyKind kind);

/** Host kernel config for a policy (eager raises MAX_ORDER). */
KernelConfig kernelConfigFor(PolicyKind kind);

/** Result of one contiguity run (a Fig. 7/8/12 bar group). */
struct ContigRunResult
{
    CoverageMetrics avg;    //!< time-averaged over execution
    CoverageMetrics final;  //!< at completion
    std::uint64_t faults = 0;
    double p99FaultLatencyUs = 0.0;
    std::uint64_t migratedPages = 0;
    std::uint64_t shootdowns = 0;
    /** allocated - touched pages, vs the same run with 4 KiB paging. */
    std::uint64_t allocatedPages = 0;
    std::uint64_t touchedPages = 0;
    /** Software cycles spent on faults + daemons (Fig. 11). */
    double swCycles = 0.0;
    /** (fault count, cov32) samples (Figs. 1b/1c/10 timelines). */
    std::vector<std::pair<std::uint64_t, double>> cov32Timeline;
};

/**
 * A native machine under one policy. Create once; run one or more
 * workloads (consecutively or interleaved) on it.
 */
class NativeSystem
{
  public:
    /**
     * @param tweak optional hook applied to kernelConfigFor(kind)
     *        before the kernel is built — overcommit experiments use
     *        it to shrink physical memory and enable reclaim without
     *        duplicating the system plumbing.
     */
    explicit NativeSystem(PolicyKind kind, std::uint64_t seed = 1,
                          const std::function<void(KernelConfig &)>
                              &tweak = {});

    Kernel &kernel() { return *kernel_; }
    PolicyKind policy() const { return kind_; }

    /** Fragment the machine with the hog (fraction of total memory). */
    void hog(double fraction);

    /**
     * Run a workload to completion in a fresh process, sampling
     * coverage every `sample_period` faults. The process stays alive
     * (its mappings define the final metrics) until finish() or the
     * next run's teardown.
     */
    ContigRunResult run(Workload &wl,
                        std::uint64_t sample_period = 4096);

    /** Tear down the workload's process (frees its memory). */
    void finish(Workload &wl);

  private:
    PolicyKind kind_;
    std::unique_ptr<Kernel> kernel_;
    Rng rng_;
};

/**
 * A virtualized system: host kernel + one VM, each under its own
 * policy. Workloads run inside the guest; coverage is measured on
 * the full 2-D (gVA -> hPA) mappings via the VMI extractor.
 */
class VirtSystem
{
  public:
    VirtSystem(PolicyKind host_kind, PolicyKind guest_kind,
               std::uint64_t seed = 1);

    Kernel &host() { return *host_; }
    Kernel &guest() { return vm_->guest(); }
    VirtualMachine &vm() { return *vm_; }

    ContigRunResult run(Workload &wl,
                        std::uint64_t sample_period = 4096);
    void finish(Workload &wl);

  private:
    PolicyKind hostKind_;
    PolicyKind guestKind_;
    std::unique_ptr<Kernel> host_;
    std::unique_ptr<VirtualMachine> vm_;
    Rng rng_;
};

/** Translation-overhead run result (Fig. 13/14, Table VII inputs). */
struct XlatRunResult
{
    XlatStats stats;
    OverheadResult overhead;
};

/** Replay-engine knobs for runTranslation (bench_io's xlat flags). */
struct XlatReplayOpts
{
    /** Replay shards; 1 is instruction-identical to the unsharded sim. */
    unsigned threads = 1;
    /** Accesses per chunk; 0 = AccessStream::kDefaultChunk. */
    std::uint64_t chunkAccesses = 0;
    /** Walk-traversal memo (pure wall-clock knob; results identical). */
    bool memo = true;
    /**
     * Replay inner loop (pure wall-clock knob; results identical).
     * Reference retains the historical per-access scalar loop as the
     * denominator of the SoA/SIMD speedup gate.
     */
    XlatEngine engine = XlatEngine::Batched;
    /**
     * Trace frontend. The strings are file *prefixes*: a bench calls
     * runTranslation once per configuration on an evolving workload,
     * so run N reads/writes "<prefix>.runN.ctrace" (and
     * "<prefix>.runN.ckpt"), each keyed by a config digest over
     * (workload, seed, accesses, N).
     *
     *  - traceOut: capture the generated access stream to disk while
     *    replaying it live (results identical to a plain run);
     *  - traceIn: replay a captured trace through the decoupled
     *    producer-thread frontend instead of generating accesses;
     *  - ckptOut + ckptAtChunk: stop after trace chunk K and snapshot
     *    the full simulator state (requires traceIn);
     *  - ckptIn: resume a traceIn replay from a snapshot.
     */
    std::string traceIn;
    std::string traceOut;
    std::string ckptIn;
    std::string ckptOut;
    std::uint64_t ckptAtChunk = 0;
};

/**
 * Replay `accesses` steady-state accesses of an already-set-up
 * workload through the sharded translation replay engine. Pass the
 * VM for virtualized runs, nullptr for native. Simulated results
 * depend only on (workload state, scheme, accesses, seed,
 * opts.threads) — chunk size and the memo never change them, and
 * opts.threads == 1 reproduces the historical sequential replay
 * byte-for-byte.
 */
XlatRunResult runTranslation(Workload &wl, const VirtualMachine *vm,
                             XlatScheme scheme, std::uint64_t accesses,
                             std::uint64_t seed = 99,
                             const XlatReplayOpts &opts = {});

} // namespace contig

#endif // CONTIG_CORE_EXPERIMENT_HH
