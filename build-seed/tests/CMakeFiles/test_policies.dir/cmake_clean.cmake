file(REMOVE_RECURSE
  "CMakeFiles/test_policies.dir/policies/baselines_test.cc.o"
  "CMakeFiles/test_policies.dir/policies/baselines_test.cc.o.d"
  "CMakeFiles/test_policies.dir/policies/ca_paging_test.cc.o"
  "CMakeFiles/test_policies.dir/policies/ca_paging_test.cc.o.d"
  "CMakeFiles/test_policies.dir/policies/extensions_test.cc.o"
  "CMakeFiles/test_policies.dir/policies/extensions_test.cc.o.d"
  "test_policies"
  "test_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
