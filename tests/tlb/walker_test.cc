#include <gtest/gtest.h>

#include "mm/kernel.hh"
#include "tlb/walker.hh"
#include "virt/vm.hh"

using namespace contig;

namespace
{

WalkerConfig
noCaches()
{
    WalkerConfig cfg;
    cfg.pscEnabled = false;
    cfg.nestedTlbEnabled = false;
    cfg.cyclesPerRef = 10;
    return cfg;
}

} // namespace

TEST(Walker, Native4kWalkCostsFourRefs)
{
    PageTable pt;
    pt.map(0x1234, 55, 0);
    Walker w(pt, noCaches());
    auto res = w.walk(0x1234);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.refs, 4u);
    EXPECT_EQ(res.cycles, 40u);
    EXPECT_EQ(res.mapping.pfn, 55u);
}

TEST(Walker, NativeHugeWalkCostsThreeRefs)
{
    PageTable pt;
    pt.map(512, 1024, kHugeOrder);
    Walker w(pt, noCaches());
    auto res = w.walk(512 + 99);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.refs, 3u);
    // The offset is exact for the probed vpn, not the leaf base.
    EXPECT_EQ(res.offset,
              static_cast<std::int64_t>(512 + 99) -
                  static_cast<std::int64_t>(1024 + 99));
}

TEST(Walker, PscCutsUpperLevelRefs)
{
    PageTable pt;
    pt.map(0x1000, 1, 0);
    pt.map(0x1001, 2, 0);
    WalkerConfig cfg = noCaches();
    cfg.pscEnabled = true;
    cfg.pscEntries = 4;
    Walker w(pt, cfg);
    auto first = w.walk(0x1000);
    EXPECT_EQ(first.refs, 4u); // cold PSC
    auto second = w.walk(0x1001);
    EXPECT_EQ(second.refs, 2u); // PSC skips root+L3
    EXPECT_EQ(w.stats().pscHits, 1u);
}

TEST(Walker, ContigBitsSurfaceInResult)
{
    PageTable pt;
    pt.map(7, 9, 0);
    pt.setContigBit(7, true);
    Walker w(pt, noCaches());
    EXPECT_TRUE(w.walk(7).guestContigBit);
}

TEST(Walker, NestedWalkCostsUpTo24Refs)
{
    // Virtualized, no walker caches: guest 4 KiB leaf over host 4 KiB
    // backing costs 4 guest-node nested walks (4 refs each) + 4 guest
    // reads + final nested walk (4 refs) = up to 24 references.
    KernelConfig hcfg;
    hcfg.phys.bytesPerNode = 256ull << 20;
    hcfg.phys.numNodes = 1;
    hcfg.thpEnabled = false; // host backs with 4 KiB pages
    Kernel host(hcfg, std::make_unique<Base4kPolicy>());
    VmConfig vcfg;
    vcfg.guestBytesPerNode = 128ull << 20;
    vcfg.guestNodes = 1;
    vcfg.guestKernel.thpEnabled = false;
    VirtualMachine vm(host, std::make_unique<Base4kPolicy>(), vcfg);

    Process &p = vm.guest().createProcess("g");
    Vma &vma = p.mmap(1 << 20);
    p.touch(vma.start());

    Walker w(p.pageTable(), vm, noCaches());
    auto res = w.walk(vma.start().pageNumber());
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.refs, 24u);
}

TEST(Walker, NestedThpWalkIsCheaper)
{
    KernelConfig hcfg;
    hcfg.phys.bytesPerNode = 256ull << 20;
    hcfg.phys.numNodes = 1;
    Kernel host(hcfg, std::make_unique<DefaultThpPolicy>());
    VmConfig vcfg;
    vcfg.guestBytesPerNode = 128ull << 20;
    vcfg.guestNodes = 1;
    VirtualMachine vm(host, std::make_unique<DefaultThpPolicy>(), vcfg);

    Process &p = vm.guest().createProcess("g");
    Vma &vma = p.mmap(4 * kHugeSize);
    p.touch(vma.start());

    Walker w(p.pageTable(), vm, noCaches());
    auto res = w.walk(vma.start().pageNumber());
    EXPECT_TRUE(res.hit);
    // Guest 2M leaf (3 levels) x (3-ref nested + 1 read) + final
    // 3-ref nested walk = 15 refs.
    EXPECT_EQ(res.refs, 15u);
    EXPECT_EQ(res.mapping.order, kHugeOrder);
}

TEST(Walker, NestedTlbCutsRepeatWalks)
{
    KernelConfig hcfg;
    hcfg.phys.bytesPerNode = 256ull << 20;
    hcfg.phys.numNodes = 1;
    Kernel host(hcfg, std::make_unique<DefaultThpPolicy>());
    VmConfig vcfg;
    vcfg.guestBytesPerNode = 128ull << 20;
    vcfg.guestNodes = 1;
    VirtualMachine vm(host, std::make_unique<DefaultThpPolicy>(), vcfg);

    Process &p = vm.guest().createProcess("g");
    Vma &vma = p.mmap(4 * kHugeSize);
    p.touchRange(vma.start(), vma.bytes());

    WalkerConfig cfg;
    cfg.pscEnabled = true;
    cfg.nestedTlbEnabled = true;
    Walker w(p.pageTable(), vm, cfg);
    auto cold = w.walk(vma.start().pageNumber());
    auto warm = w.walk(vma.start().pageNumber() + 1);
    EXPECT_LT(warm.refs, cold.refs);
    EXPECT_GT(w.stats().nestedTlbHits, 0u);
}

TEST(Walker, PscLruEvictionRestoresColdRefs)
{
    // Three 4 KiB pages in three distinct 1 GiB regions against a
    // 2-entry PSC: the known-answer ref sequence pins both the hit
    // accounting and the LRU victim choice.
    PageTable pt;
    const Vpn a = 0, b = 1ull << 18, c = 2ull << 18;
    pt.map(a, 1, 0);
    pt.map(b, 2, 0);
    pt.map(c, 3, 0);
    WalkerConfig cfg = noCaches();
    cfg.pscEnabled = true;
    cfg.pscEntries = 2;
    Walker w(pt, cfg);
    EXPECT_EQ(w.walk(a).refs, 4u); // cold, fills {a}
    EXPECT_EQ(w.walk(b).refs, 4u); // cold, fills {a, b}
    EXPECT_EQ(w.walk(c).refs, 4u); // evicts a (LRU) -> {b, c}
    EXPECT_EQ(w.walk(a).refs, 4u); // a was evicted; evicts b -> {c, a}
    EXPECT_EQ(w.walk(c).refs, 2u); // c survived: root+L3 skipped
    EXPECT_EQ(w.stats().pscHits, 1u);
}

TEST(Walker, NestedTlbWarmWalkCostsGuestReadsOnly)
{
    // 2-D known answer, nested TLB on: once every gPA grain touched
    // by the walk is cached, a repeat walk pays exactly the 4 guest
    // node reads — all 5 nested translations hit and charge 0 refs.
    KernelConfig hcfg;
    hcfg.phys.bytesPerNode = 256ull << 20;
    hcfg.phys.numNodes = 1;
    hcfg.thpEnabled = false;
    Kernel host(hcfg, std::make_unique<Base4kPolicy>());
    VmConfig vcfg;
    vcfg.guestBytesPerNode = 128ull << 20;
    vcfg.guestNodes = 1;
    vcfg.guestKernel.thpEnabled = false;
    VirtualMachine vm(host, std::make_unique<Base4kPolicy>(), vcfg);
    Process &p = vm.guest().createProcess("g");
    Vma &vma = p.mmap(1 << 20);
    p.touch(vma.start());

    WalkerConfig cfg = noCaches();
    cfg.nestedTlbEnabled = true;
    cfg.nestedTlbEntries = 16;
    Walker w(p.pageTable(), vm, cfg);
    const Vpn vpn = vma.start().pageNumber();
    ASSERT_TRUE(w.walk(vpn).hit); // cold: fills all grains
    const std::uint64_t hits_before = w.stats().nestedTlbHits;
    auto warm = w.walk(vpn);
    EXPECT_EQ(warm.refs, 4u);
    EXPECT_EQ(warm.cycles, 4u * cfg.cyclesPerRef);
    EXPECT_EQ(w.stats().nestedTlbHits, hits_before + 5);

    // PSC on top: root+L3 guest reads skipped too -> 2 refs.
    WalkerConfig both = cfg;
    both.pscEnabled = true;
    Walker w2(p.pageTable(), vm, both);
    ASSERT_TRUE(w2.walk(vpn).hit);
    EXPECT_EQ(w2.walk(vpn).refs, 2u);
}

TEST(Walker, NestedTlbCapacityEvictionLosesCoverage)
{
    // Round-robin over 8 huge guest pages (8 distinct 2 MiB gPA
    // grains): a 1-entry nested TLB must evict on every data grain
    // switch, so it sees strictly fewer hits / more refs than a
    // 64-entry TLB over the identical walk sequence.
    KernelConfig hcfg;
    hcfg.phys.bytesPerNode = 256ull << 20;
    hcfg.phys.numNodes = 1;
    Kernel host(hcfg, std::make_unique<DefaultThpPolicy>());
    VmConfig vcfg;
    vcfg.guestBytesPerNode = 128ull << 20;
    vcfg.guestNodes = 1;
    VirtualMachine vm(host, std::make_unique<DefaultThpPolicy>(), vcfg);
    Process &p = vm.guest().createProcess("g");
    Vma &vma = p.mmap(8 * kHugeSize);
    p.touchRange(vma.start(), vma.bytes());

    WalkerConfig tiny_cfg = noCaches();
    tiny_cfg.nestedTlbEnabled = true;
    tiny_cfg.nestedTlbEntries = 1;
    WalkerConfig big_cfg = tiny_cfg;
    big_cfg.nestedTlbEntries = 64;
    Walker tiny(p.pageTable(), vm, tiny_cfg);
    Walker big(p.pageTable(), vm, big_cfg);
    for (int round = 0; round < 3; ++round) {
        for (std::uint64_t h = 0; h < 8; ++h) {
            const Vpn vpn = vma.start().pageNumber() + h * 512;
            tiny.walk(vpn);
            big.walk(vpn);
        }
    }
    EXPECT_EQ(tiny.stats().nestedTlbLookups,
              big.stats().nestedTlbLookups);
    EXPECT_LT(tiny.stats().nestedTlbHits, big.stats().nestedTlbHits);
    EXPECT_GT(tiny.stats().totalRefs, big.stats().totalRefs);
    EXPECT_GT(big.stats().nestedTlbHits, 0u);
}

TEST(Walker, MemoDropsStaleEpochsOnRemap)
{
    // The traversal memo must never serve a mapping from before a
    // table mutation: map/unmap bump PageTable::generation() and the
    // stale entry is dropped, not returned.
    PageTable pt;
    pt.map(5, 100, 0);
    WalkerConfig cfg = noCaches();
    cfg.memoEnabled = true;
    Walker w(pt, cfg);
    EXPECT_EQ(w.walk(5).mapping.pfn, 100u);
    EXPECT_EQ(w.walk(5).mapping.pfn, 100u); // served from the memo
    ASSERT_NE(w.memoStats(), nullptr);
    EXPECT_EQ(w.memoStats()->guestHits, 1u);

    pt.unmap(5, 0);
    pt.map(5, 200, 0);
    auto res = w.walk(5);
    EXPECT_EQ(res.mapping.pfn, 200u);
    EXPECT_EQ(res.refs, 4u); // a real re-walk, not a memo hit
    EXPECT_GE(w.memoStats()->staleDrops, 1u);
}

TEST(Walker, MissReturnsNoHit)
{
    PageTable pt;
    Walker w(pt, noCaches());
    auto res = w.walk(0xdead);
    EXPECT_FALSE(res.hit);
    EXPECT_GE(res.refs, 1u);
}
