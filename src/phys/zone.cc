#include "phys/zone.hh"

namespace contig
{

Zone::Zone(FrameArray &frames, NodeId node, Pfn base_pfn,
           std::uint64_t n_frames, const ZoneConfig &cfg)
    : node_(node),
      contigMap_(pagesInOrder(cfg.maxOrder)),
      buddy_(frames, base_pfn, n_frames, cfg.maxOrder, cfg.sortedTopList,
             cfg.scrambleSeed)
{
    buddy_.setTopListHooks(
        [this](Pfn pfn) { contigMap_.onBlockFree(pfn); },
        [this](Pfn pfn) { contigMap_.onBlockAllocated(pfn); });
}

} // namespace contig
