# Empty compiler generated dependencies file for table1_ranges_anchors.
# This may be replaced when dependencies are built.
