#include "mm/policy.hh"

#include "mm/kernel.hh"

namespace contig
{

AllocResult
AllocationPolicy::allocateFilePage(Kernel &kernel, File &file,
                                   std::uint64_t file_page)
{
    (void)file;
    (void)file_page;
    AllocResult res;
    if (auto pfn = kernel.physMem().alloc(0, 0))
        res.pfn = *pfn;
    return res;
}

AllocResult
DefaultThpPolicy::allocate(Kernel &kernel, Process &proc, Vma &vma,
                           Vpn vpn, unsigned order)
{
    (void)vma;
    (void)vpn;
    AllocResult res;
    if (auto pfn = kernel.physMem().alloc(order, proc.homeNode()))
        res.pfn = *pfn;
    return res;
}

AllocResult
Base4kPolicy::allocate(Kernel &kernel, Process &proc, Vma &vma, Vpn vpn,
                       unsigned order)
{
    (void)vma;
    (void)vpn;
    AllocResult res;
    if (auto pfn = kernel.physMem().alloc(order, proc.homeNode()))
        res.pfn = *pfn;
    return res;
}

} // namespace contig
