file(REMOVE_RECURSE
  "CMakeFiles/table5_fault_latency.dir/table5_fault_latency.cc.o"
  "CMakeFiles/table5_fault_latency.dir/table5_fault_latency.cc.o.d"
  "table5_fault_latency"
  "table5_fault_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_fault_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
