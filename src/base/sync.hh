#pragma once
// Minimal synchronization primitives for the threaded fault path.
//
// The simulator's hot paths (fault handling, buddy split/merge, pcp
// refill) hold locks for tens of nanoseconds, so a test-and-test-and-set
// spinlock beats a futex-backed std::mutex there.  Everything coarser
// (mmap, daemon ticks, teardown) uses std::shared_mutex in the kernel.

#include <atomic>
#include <cstdint>

namespace contig {

// Cache-line sized TTAS spinlock.  Satisfies Lockable, so it works with
// std::lock_guard / std::scoped_lock.
class alignas(64) SpinLock {
public:
    void lock() noexcept {
        for (;;) {
            if (!locked_.exchange(true, std::memory_order_acquire))
                return;
            while (locked_.load(std::memory_order_relaxed)) {
                // spin on the cached line until it looks free
            }
        }
    }

    bool try_lock() noexcept {
        return !locked_.load(std::memory_order_relaxed) &&
               !locked_.exchange(true, std::memory_order_acquire);
    }

    void unlock() noexcept { locked_.store(false, std::memory_order_release); }

private:
    std::atomic<bool> locked_{false};
};

// Conditionally engaged lock guard: takes the lock only when `engage`
// is true. The threaded fault path uses these so single-threaded runs
// skip every lock acquisition and stay instruction-identical to the
// pre-threading engine.
template <typename Mutex>
class MaybeGuard
{
public:
    MaybeGuard(Mutex &m, bool engage) : m_(engage ? &m : nullptr) {
        if (m_)
            m_->lock();
    }
    ~MaybeGuard() {
        if (m_)
            m_->unlock();
    }
    MaybeGuard(const MaybeGuard&) = delete;
    MaybeGuard& operator=(const MaybeGuard&) = delete;

private:
    Mutex *m_;
};

// Shared (reader) flavour for std::shared_mutex-like types.
template <typename Mutex>
class MaybeSharedGuard
{
public:
    MaybeSharedGuard(Mutex &m, bool engage) : m_(engage ? &m : nullptr) {
        if (m_)
            m_->lock_shared();
    }
    ~MaybeSharedGuard() {
        if (m_)
            m_->unlock_shared();
    }
    MaybeSharedGuard(const MaybeSharedGuard&) = delete;
    MaybeSharedGuard& operator=(const MaybeSharedGuard&) = delete;

private:
    Mutex *m_;
};

// Logical CPU id of the current thread, used to index per-CPU frame
// caches.  Worker threads bind an id for their lifetime via Scope; the
// main thread (and any thread that never bound one) reads cpu 0, which
// keeps the single-threaded path on the same cache a sequential run
// would use.
class ThisCpu {
public:
    static int id() noexcept { return id_; }

    class Scope {
    public:
        explicit Scope(int cpu) noexcept : prev_(id_) { id_ = cpu; }
        ~Scope() { id_ = prev_; }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        int prev_;
    };

private:
    inline static thread_local int id_ = 0;
};

}  // namespace contig
