
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mm/address_space_test.cc" "tests/CMakeFiles/test_mm.dir/mm/address_space_test.cc.o" "gcc" "tests/CMakeFiles/test_mm.dir/mm/address_space_test.cc.o.d"
  "/root/repo/tests/mm/fault_engine_test.cc" "tests/CMakeFiles/test_mm.dir/mm/fault_engine_test.cc.o" "gcc" "tests/CMakeFiles/test_mm.dir/mm/fault_engine_test.cc.o.d"
  "/root/repo/tests/mm/kernel_test.cc" "tests/CMakeFiles/test_mm.dir/mm/kernel_test.cc.o" "gcc" "tests/CMakeFiles/test_mm.dir/mm/kernel_test.cc.o.d"
  "/root/repo/tests/mm/mm_property_test.cc" "tests/CMakeFiles/test_mm.dir/mm/mm_property_test.cc.o" "gcc" "tests/CMakeFiles/test_mm.dir/mm/mm_property_test.cc.o.d"
  "/root/repo/tests/mm/page_cache_test.cc" "tests/CMakeFiles/test_mm.dir/mm/page_cache_test.cc.o" "gcc" "tests/CMakeFiles/test_mm.dir/mm/page_cache_test.cc.o.d"
  "/root/repo/tests/mm/page_table_test.cc" "tests/CMakeFiles/test_mm.dir/mm/page_table_test.cc.o" "gcc" "tests/CMakeFiles/test_mm.dir/mm/page_table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-seed/src/CMakeFiles/contig.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
