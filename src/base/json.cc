#include "base/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/logging.hh"

namespace contig
{

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::beforeValue()
{
    contig_assert(!done_, "JsonWriter: value after document completed");
    if (stack_.empty())
        return;
    switch (stack_.back()) {
      case Frame::ObjectStart:
      case Frame::ObjectNext:
        panic("JsonWriter: value in object position without a key");
      case Frame::ObjectKey:
        stack_.back() = Frame::ObjectNext;
        break;
      case Frame::ArrayStart:
        stack_.back() = Frame::ArrayNext;
        break;
      case Frame::ArrayNext:
        raw(",");
        break;
    }
}

void
JsonWriter::beginObject()
{
    beforeValue();
    raw("{");
    stack_.push_back(Frame::ObjectStart);
}

void
JsonWriter::endObject()
{
    contig_assert(!stack_.empty() &&
                      (stack_.back() == Frame::ObjectStart ||
                       stack_.back() == Frame::ObjectNext),
                  "JsonWriter: endObject outside an object");
    stack_.pop_back();
    raw("}");
    if (stack_.empty())
        done_ = true;
}

void
JsonWriter::beginArray()
{
    beforeValue();
    raw("[");
    stack_.push_back(Frame::ArrayStart);
}

void
JsonWriter::endArray()
{
    contig_assert(!stack_.empty() && (stack_.back() == Frame::ArrayStart ||
                                      stack_.back() == Frame::ArrayNext),
                  "JsonWriter: endArray outside an array");
    stack_.pop_back();
    raw("]");
    if (stack_.empty())
        done_ = true;
}

void
JsonWriter::key(std::string_view k)
{
    contig_assert(!stack_.empty() &&
                      (stack_.back() == Frame::ObjectStart ||
                       stack_.back() == Frame::ObjectNext),
                  "JsonWriter: key outside an object");
    if (stack_.back() == Frame::ObjectNext)
        raw(",");
    raw("\"");
    raw(escape(k));
    raw("\":");
    stack_.back() = Frame::ObjectKey;
}

void
JsonWriter::value(std::string_view v)
{
    beforeValue();
    raw("\"");
    raw(escape(v));
    raw("\"");
    if (stack_.empty())
        done_ = true;
}

void
JsonWriter::value(bool v)
{
    beforeValue();
    raw(v ? "true" : "false");
    if (stack_.empty())
        done_ = true;
}

void
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf literals; null is the conventional stand-in.
        raw("null");
    } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.12g", v);
        // Keep the compact form when it round-trips; fall back to
        // full precision so readers reconstruct the exact double
        // (the timeline codec depends on this).
        if (std::strtod(buf, nullptr) != v)
            std::snprintf(buf, sizeof(buf), "%.17g", v);
        raw(buf);
    }
    if (stack_.empty())
        done_ = true;
}

void
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    raw(buf);
    if (stack_.empty())
        done_ = true;
}

void
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    raw(buf);
    if (stack_.empty())
        done_ = true;
}

void
JsonWriter::null()
{
    beforeValue();
    raw("null");
    if (stack_.empty())
        done_ = true;
}

bool
JsonWriter::complete() const
{
    return done_ && stack_.empty();
}

// --- reader ---------------------------------------------------------------

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const Member &m : members_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

double
JsonValue::numberOr(std::string_view key, double fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->asNumber() : fallback;
}

/**
 * Recursive-descent parser over a string_view. Depth is bounded to
 * reject pathological nesting before the C++ stack does.
 */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    std::optional<JsonValue>
    run(std::string *err)
    {
        JsonValue v;
        if (!parseValue(v, 0) || !atEndAfterWs()) {
            if (err)
                *err = error_.empty() ? "trailing garbage after document"
                                      : error_;
            if (err && error_.empty())
                *err += " at offset " + std::to_string(pos_);
            return std::nullopt;
        }
        return v;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const char *what)
    {
        if (error_.empty())
            error_ = std::string(what) + " at offset " +
                     std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    atEndAfterWs()
    {
        skipWs();
        return pos_ == text_.size();
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        cp |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        cp |= h - 'A' + 10;
                    else
                        return fail("bad \\u escape");
                }
                // Encode the code point as UTF-8 (surrogate pairs in
                // input are passed through as two 3-byte sequences;
                // the writer never emits them).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                return fail("bad escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &v)
    {
        const std::size_t start = pos_;
        if (consume('-')) {}
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected number");
        const std::string tok(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (!end || *end != '\0' || !std::isfinite(d)) {
            pos_ = start;
            return fail("malformed number");
        }
        v.type_ = JsonValue::Type::Number;
        v.num_ = d;
        return true;
    }

    bool
    parseValue(JsonValue &v, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{': {
            ++pos_;
            v.type_ = JsonValue::Type::Object;
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                skipWs();
                JsonValue::Member m;
                if (!parseString(m.first))
                    return false;
                skipWs();
                if (!consume(':'))
                    return fail("expected ':'");
                if (!parseValue(m.second, depth + 1))
                    return false;
                v.members_.push_back(std::move(m));
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++pos_;
            v.type_ = JsonValue::Type::Array;
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                JsonValue elem;
                if (!parseValue(elem, depth + 1))
                    return false;
                v.elems_.push_back(std::move(elem));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
          }
          case '"':
            v.type_ = JsonValue::Type::String;
            return parseString(v.str_);
          case 't':
            v.type_ = JsonValue::Type::Bool;
            v.bool_ = true;
            return literal("true");
          case 'f':
            v.type_ = JsonValue::Type::Bool;
            v.bool_ = false;
            return literal("false");
          case 'n':
            v.type_ = JsonValue::Type::Null;
            return literal("null");
          default:
            return parseNumber(v);
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_;
};

std::optional<JsonValue>
JsonValue::parse(std::string_view text, std::string *err)
{
    return JsonParser(text).run(err);
}

const std::string &
JsonWriter::str() const &
{
    return out_;
}

std::string
JsonWriter::str() &&
{
    return std::move(out_);
}

} // namespace contig
