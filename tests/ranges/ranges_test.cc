#include <gtest/gtest.h>

#include "ranges/ranges.hh"

using namespace contig;

namespace
{

std::vector<Seg>
threeSegs()
{
    // 1000 pages at offset 0, 500 at another offset, 20 at a third.
    return {Seg{0, 5000, 1000}, Seg{2000, 9000, 500},
            Seg{4000, 100, 10}};
}

} // namespace

TEST(RangeTable, LookupFindsContainingRange)
{
    RangeTable table(threeSegs());
    auto r = table.lookup(500);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->vpn, 0u);
    auto r2 = table.lookup(2400);
    ASSERT_TRUE(r2);
    EXPECT_EQ(r2->vpn, 2000u);
    EXPECT_FALSE(table.lookup(1500)); // gap
    EXPECT_FALSE(table.lookup(999999));
}

TEST(RangeTlb, HitAfterRefill)
{
    RangeTable table(threeSegs());
    RangeTlb tlb({4}, table);
    EXPECT_FALSE(tlb.access(100)); // cold miss, refills
    EXPECT_TRUE(tlb.access(100));
    EXPECT_TRUE(tlb.access(999)); // same range
    EXPECT_FALSE(tlb.access(2100)); // other range: miss + refill
    EXPECT_TRUE(tlb.access(2499));
    EXPECT_EQ(tlb.stats().refills, 2u);
}

TEST(RangeTlb, LruEvictsOldestRange)
{
    // Single-entry range TLB alternating between two ranges.
    RangeTable table(threeSegs());
    RangeTlb tlb({1}, table);
    EXPECT_FALSE(tlb.access(0));
    EXPECT_FALSE(tlb.access(2000));
    EXPECT_FALSE(tlb.access(0)); // evicted by the second range
}

TEST(RangeTlb, UnmappedVpnCountsTableMiss)
{
    RangeTable table(threeSegs());
    RangeTlb tlb({4}, table);
    EXPECT_FALSE(tlb.access(1500));
    EXPECT_EQ(tlb.stats().tableMisses, 1u);
}

TEST(Ranges, RangesFor99CountsLargestFirst)
{
    // 1000 + 500 pages reach 99% of 1520 total without the 20-page
    // tail segment.
    EXPECT_EQ(rangesFor99(threeSegs()), 2u);
}

TEST(Vhc, PerfectlyAlignedSegmentIsCheap)
{
    // One 2-D segment of 4096 pages starting at an aligned boundary:
    // a handful of anchors cover it.
    std::vector<Seg> segs{Seg{0, 0, 4096}};
    EXPECT_LE(vhcEntriesFor99(segs), 8u);
}

TEST(Vhc, MisalignmentCostsEntries)
{
    // The same segment shifted to an odd virtual base: anchor chunks
    // no longer line up, so vHC needs more entries than vRMM ranges.
    std::vector<Seg> aligned{Seg{0, 0, 8192}};
    std::vector<Seg> shifted{Seg{713, 713, 8192}};
    EXPECT_EQ(rangesFor99(aligned), rangesFor99(shifted));
    EXPECT_GE(vhcEntriesFor99(shifted), vhcEntriesFor99(aligned));
}

TEST(Vhc, ManySmallSegsExplodeEntryCount)
{
    // 64 unaligned segments of 48 pages each: every one needs per-
    // page entries (below huge granularity), as for the paper's
    // scattered small mappings.
    std::vector<Seg> segs;
    for (int i = 0; i < 64; ++i)
        segs.push_back(Seg{static_cast<Vpn>(10000 * i + 7),
                           static_cast<Pfn>(777 * i), 48});
    EXPECT_GT(vhcEntriesFor99(segs), 20 * rangesFor99(segs));
}

TEST(DirectSegment, Containment)
{
    DirectSegment seg(1000, 500);
    EXPECT_TRUE(seg.contains(1000));
    EXPECT_TRUE(seg.contains(1499));
    EXPECT_FALSE(seg.contains(1500));
    EXPECT_FALSE(seg.contains(999));
}
