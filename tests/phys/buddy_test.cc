#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/serialize.hh"
#include "phys/buddy.hh"

using namespace contig;

namespace
{

constexpr std::uint64_t kZoneFrames = 8 * pagesInOrder(kMaxOrder); // 32 MiB

struct BuddyTest : public ::testing::Test
{
    BuddyTest() : frames(kZoneFrames), buddy(frames, 0, kZoneFrames) {}

    FrameArray frames;
    BuddyAllocator buddy;
};

} // namespace

TEST_F(BuddyTest, InitialStateAllFree)
{
    EXPECT_EQ(buddy.freePages(), kZoneFrames);
    EXPECT_EQ(buddy.freeBlocks(kMaxOrder), 8u);
    EXPECT_TRUE(buddy.checkInvariants());
}

TEST_F(BuddyTest, AllocBasePage)
{
    auto pfn = buddy.alloc(0);
    ASSERT_TRUE(pfn);
    EXPECT_EQ(buddy.freePages(), kZoneFrames - 1);
    EXPECT_FALSE(buddy.isFreePage(*pfn));
    EXPECT_TRUE(buddy.checkInvariants());
}

TEST_F(BuddyTest, AllocHugePage)
{
    auto pfn = buddy.alloc(kHugeOrder);
    ASSERT_TRUE(pfn);
    EXPECT_EQ(*pfn % pagesInOrder(kHugeOrder), 0u);
    EXPECT_EQ(buddy.freePages(), kZoneFrames - 512);
    for (Pfn p = *pfn; p < *pfn + 512; ++p)
        EXPECT_FALSE(buddy.isFreePage(p));
    EXPECT_TRUE(buddy.checkInvariants());
}

TEST_F(BuddyTest, FreeCoalescesBackToTopOrder)
{
    auto pfn = buddy.alloc(0);
    ASSERT_TRUE(pfn);
    buddy.free(*pfn, 0);
    EXPECT_EQ(buddy.freePages(), kZoneFrames);
    EXPECT_EQ(buddy.freeBlocks(kMaxOrder), 8u);
    for (unsigned o = 0; o < kMaxOrder; ++o)
        EXPECT_EQ(buddy.freeBlocks(o), 0u);
    EXPECT_TRUE(buddy.checkInvariants());
}

TEST_F(BuddyTest, SplitProducesAllOrders)
{
    auto pfn = buddy.alloc(0);
    ASSERT_TRUE(pfn);
    // Splitting one top block down to order 0 leaves one free block at
    // every order below the top.
    for (unsigned o = 0; o < kMaxOrder; ++o)
        EXPECT_EQ(buddy.freeBlocks(o), 1u) << "order " << o;
    EXPECT_EQ(buddy.freeBlocks(kMaxOrder), 7u);
}

TEST_F(BuddyTest, ExhaustionReturnsNullopt)
{
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(buddy.alloc(kMaxOrder));
    EXPECT_FALSE(buddy.alloc(kMaxOrder));
    EXPECT_FALSE(buddy.alloc(0));
    EXPECT_EQ(buddy.freePages(), 0u);
}

TEST_F(BuddyTest, AllocSpecificFreeTarget)
{
    // Pick a page in the middle of the zone.
    Pfn target = 3 * pagesInOrder(kMaxOrder) + 1234;
    EXPECT_TRUE(buddy.isFreePage(target));
    EXPECT_TRUE(buddy.allocSpecific(target, 0));
    EXPECT_FALSE(buddy.isFreePage(target));
    EXPECT_EQ(buddy.freePages(), kZoneFrames - 1);
    EXPECT_TRUE(buddy.checkInvariants());
}

TEST_F(BuddyTest, AllocSpecificOccupiedTargetFails)
{
    Pfn target = 100;
    ASSERT_TRUE(buddy.allocSpecific(target, 0));
    EXPECT_FALSE(buddy.allocSpecific(target, 0));
    EXPECT_EQ(buddy.stats().allocSpecificFailures, 1u);
}

TEST_F(BuddyTest, AllocSpecificHuge)
{
    Pfn target = 5 * pagesInOrder(kMaxOrder) + 512;
    EXPECT_TRUE(buddy.allocSpecific(target, kHugeOrder));
    for (Pfn p = target; p < target + 512; ++p)
        EXPECT_FALSE(buddy.isFreePage(p));
    EXPECT_TRUE(buddy.checkInvariants());
}

TEST_F(BuddyTest, AllocSpecificPartiallyFreeBlockFails)
{
    // Occupy one base page inside a huge range; the huge allocSpecific
    // covering it must fail.
    Pfn base = 2 * pagesInOrder(kMaxOrder);
    ASSERT_TRUE(buddy.allocSpecific(base + 5, 0));
    EXPECT_FALSE(buddy.allocSpecific(base, kHugeOrder));
}

TEST_F(BuddyTest, EnclosingFreeBlock)
{
    auto enc = buddy.enclosingFreeBlock(1000);
    ASSERT_TRUE(enc);
    EXPECT_EQ(enc->first, 0u);
    EXPECT_EQ(enc->second, kMaxOrder);

    ASSERT_TRUE(buddy.allocSpecific(1000, 0));
    EXPECT_FALSE(buddy.enclosingFreeBlock(1000));
    // Neighbour is still free but now in a smaller block.
    auto enc2 = buddy.enclosingFreeBlock(1001);
    ASSERT_TRUE(enc2);
    EXPECT_LT(enc2->second, kMaxOrder);
}

TEST_F(BuddyTest, FreeRecoalescesAfterSpecificAlloc)
{
    Pfn target = 7 * pagesInOrder(kMaxOrder) + 321;
    ASSERT_TRUE(buddy.allocSpecific(target, 0));
    buddy.free(target, 0);
    EXPECT_EQ(buddy.freeBlocks(kMaxOrder), 8u);
    EXPECT_TRUE(buddy.checkInvariants());
}

TEST_F(BuddyTest, SortedTopListStaysSorted)
{
    // Allocate a few top blocks, free them out of order, and verify
    // the top list remains ascending (checkInvariants verifies order).
    auto a = buddy.alloc(kMaxOrder);
    auto b = buddy.alloc(kMaxOrder);
    auto c = buddy.alloc(kMaxOrder);
    ASSERT_TRUE(a && b && c);
    buddy.free(*b, kMaxOrder);
    EXPECT_TRUE(buddy.checkInvariants());
    buddy.free(*c, kMaxOrder);
    EXPECT_TRUE(buddy.checkInvariants());
    buddy.free(*a, kMaxOrder);
    EXPECT_TRUE(buddy.checkInvariants());
    EXPECT_EQ(buddy.freeBlocks(kMaxOrder), 8u);
}

TEST(BuddyZoneBase, NonZeroBaseWorks)
{
    const std::uint64_t n = 2 * pagesInOrder(kMaxOrder);
    FrameArray frames(2 * n);
    BuddyAllocator buddy(frames, n, n);
    auto pfn = buddy.alloc(kHugeOrder);
    ASSERT_TRUE(pfn);
    EXPECT_GE(*pfn, n);
    buddy.free(*pfn, kHugeOrder);
    EXPECT_EQ(buddy.freeBlocks(kMaxOrder), 2u);
    EXPECT_TRUE(buddy.checkInvariants());
}

TEST(BuddyHooks, TopListHooksFire)
{
    const std::uint64_t n = 2 * pagesInOrder(kMaxOrder);
    FrameArray frames(n);
    BuddyAllocator buddy(frames, 0, n);
    std::multiset<Pfn> live;
    buddy.setTopListHooks([&](Pfn p) { live.insert(p); },
                          [&](Pfn p) { live.erase(live.find(p)); });
    // Replay on subscribe: both seeded blocks reported.
    EXPECT_EQ(live.size(), 2u);

    auto pfn = buddy.alloc(0); // splits one top block
    ASSERT_TRUE(pfn);
    EXPECT_EQ(live.size(), 1u);
    buddy.free(*pfn, 0); // re-coalesces into a top block
    EXPECT_EQ(live.size(), 2u);
}

TEST(BuddyMaxOrder, RaisedMaxOrderAllowsBiggerBlocks)
{
    // Eager paging raises MAX_ORDER; check the allocator handles a
    // 16 MiB top order.
    const unsigned big_order = kMaxOrder + 2;
    const std::uint64_t n = 2 * pagesInOrder(big_order);
    FrameArray frames(n);
    BuddyAllocator buddy(frames, 0, n, big_order);
    auto pfn = buddy.alloc(big_order);
    ASSERT_TRUE(pfn);
    EXPECT_EQ(buddy.freePages(), n - pagesInOrder(big_order));
    buddy.free(*pfn, big_order);
    EXPECT_TRUE(buddy.checkInvariants());
}

// --- NUMA-sharded (striped) top-order free list ---------------------

namespace
{

/** Mirror one op sequence into a striped and an unsharded buddy. */
struct BuddyPair
{
    explicit BuddyPair(unsigned stripes)
        : framesA(kZoneFrames), framesB(kZoneFrames),
          striped(framesA, 0, kZoneFrames, kMaxOrder, true, 0, stripes),
          flat(framesB, 0, kZoneFrames)
    {
    }

    FrameArray framesA, framesB;
    BuddyAllocator striped;
    BuddyAllocator flat;
};

std::vector<Pfn>
topBlocks(const BuddyAllocator &b)
{
    std::vector<Pfn> v;
    b.forEachFreeBlock(b.maxOrder(), [&](Pfn p) { v.push_back(p); });
    return v;
}

} // namespace

TEST(BuddyStriped, SortedStripedListIsObservablyUnsharded)
{
    // The striped sorted top list concatenates to the same global
    // ascending order: counts, iteration order and checkpoint bytes
    // must match the unsharded allocator after any op sequence.
    BuddyPair pair(4);
    EXPECT_EQ(pair.striped.topStripes(), 4u);
    EXPECT_EQ(topBlocks(pair.striped), topBlocks(pair.flat));

    std::vector<Pfn> blocks;
    for (int i = 0; i < 5; ++i) {
        auto a = pair.striped.alloc(kMaxOrder);
        auto b = pair.flat.alloc(kMaxOrder);
        ASSERT_TRUE(a && b);
        EXPECT_EQ(*a, *b);
        blocks.push_back(*a);
    }
    // Free out of order: re-insertion routes by address, so both
    // lists end up ascending again.
    for (int i : {3, 0, 4, 1, 2}) {
        pair.striped.free(blocks[i], kMaxOrder);
        pair.flat.free(blocks[i], kMaxOrder);
        EXPECT_TRUE(pair.striped.checkInvariants());
    }
    EXPECT_EQ(topBlocks(pair.striped), topBlocks(pair.flat));
    EXPECT_EQ(pair.striped.freeBlockCounts(), pair.flat.freeBlockCounts());
    EXPECT_EQ(pair.striped.freePages(), pair.flat.freePages());

    Serializer sa, sb;
    pair.striped.saveState(sa);
    pair.flat.saveState(sb);
    EXPECT_EQ(sa.data(), sb.data());
}

TEST(BuddyStriped, SplitsAndMergesCrossStripeBoundaries)
{
    // Sub-top orders keep the single legacy list; only the top order
    // is striped. An order-0 alloc/free cycle must split from and
    // coalesce back into the right stripe's list.
    BuddyPair pair(8);
    auto a = pair.striped.alloc(0);
    auto b = pair.flat.alloc(0);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*a, *b);
    EXPECT_EQ(pair.striped.freeBlockCounts(), pair.flat.freeBlockCounts());
    pair.striped.free(*a, 0);
    pair.flat.free(*b, 0);
    EXPECT_EQ(pair.striped.freeBlocks(kMaxOrder), 8u);
    EXPECT_EQ(topBlocks(pair.striped), topBlocks(pair.flat));
    EXPECT_TRUE(pair.striped.checkInvariants());

    // allocSpecific across the whole zone behaves identically too.
    const Pfn target = 5 * pagesInOrder(kMaxOrder) + 1024;
    EXPECT_TRUE(pair.striped.allocSpecific(target, kHugeOrder));
    EXPECT_TRUE(pair.flat.allocSpecific(target, kHugeOrder));
    EXPECT_EQ(pair.striped.freeBlockCounts(), pair.flat.freeBlockCounts());
    EXPECT_TRUE(pair.striped.checkInvariants());
}

TEST(BuddyStriped, ExhaustionAndRefillStayConsistent)
{
    FrameArray frames(kZoneFrames);
    BuddyAllocator buddy(frames, 0, kZoneFrames, kMaxOrder, true, 0, 3);
    std::vector<Pfn> all;
    for (int i = 0; i < 8; ++i) {
        auto pfn = buddy.alloc(kMaxOrder);
        ASSERT_TRUE(pfn);
        all.push_back(*pfn);
    }
    EXPECT_FALSE(buddy.alloc(0));
    EXPECT_EQ(buddy.freePages(), 0u);
    for (Pfn p : all)
        buddy.free(p, kMaxOrder);
    EXPECT_EQ(buddy.freeBlocks(kMaxOrder), 8u);
    EXPECT_TRUE(buddy.checkInvariants());
}
