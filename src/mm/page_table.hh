/**
 * @file
 * A 4-level x86-64-style radix page table supporting 4 KiB and 2 MiB
 * leaves. Serves three roles in the reproduction:
 *  - guest page tables (gVA -> gPA),
 *  - nested page tables (gPA -> hPA, the backing process's table),
 *  - native process page tables (VA -> PA).
 *
 * Walks record which page-table node frames they touch so the nested
 * walker can charge the full 2-D cost (up to 24 memory references) and
 * feed its paging-structure caches. PTEs carry the reserved
 * "contiguity bit" that CA paging sets to filter SpOT's prediction
 * table fills (paper §IV-C, "Preventing thrashing").
 */

#ifndef CONTIG_MM_PAGE_TABLE_HH
#define CONTIG_MM_PAGE_TABLE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "base/types.hh"

namespace contig
{

class Serializer;

/** Number of entries per page-table node (9 index bits per level). */
constexpr unsigned kPtFanout = 512;
/** Default radix depth (x86-64 4-level; 5-level for 57-bit VA). */
constexpr unsigned kPtLevels = 4;

/** A leaf translation as returned by lookups and walks. */
struct Mapping
{
    Pfn pfn = kInvalidPfn;
    unsigned order = 0; //!< 0 (4 KiB leaf) or kHugeOrder (2 MiB leaf)
    bool writable = true;
    bool cow = false;
    /** Reserved SW bit: this page belongs to a large contiguous mapping. */
    bool contigBit = false;

    bool valid() const { return pfn != kInvalidPfn; }
};

/**
 * Trace of one page-table walk: the frames of the page-table nodes
 * that were read, root first. Its length is the number of memory
 * references a native walk costs (4 for a 4 KiB leaf, 3 for 2 MiB).
 */
struct WalkTrace
{
    std::vector<Pfn> nodeFrames;
    Mapping mapping;
    bool hit = false;
};

/**
 * Statistics exported by a PageTable instance. Atomic because leaf
 * installs/removes of distinct VMAs run concurrently on fault workers.
 */
struct PageTableStats
{
    std::atomic<std::uint64_t> maps{0};
    std::atomic<std::uint64_t> unmaps{0};
    std::atomic<std::uint64_t> nodesAllocated{0};
    std::atomic<std::uint64_t> mappedBasePages{0};
    std::atomic<std::uint64_t> mappedHugePages{0};
};

/**
 * Radix page table. Node frames are obtained through a caller-provided
 * allocator so that guest page tables consume guest-physical frames
 * (and therefore themselves require nested translation).
 */
class PageTable
{
  public:
    /** Allocates/frees one frame for a page-table node. */
    using NodeAlloc = std::function<Pfn()>;
    using NodeFree = std::function<void(Pfn)>;

    /**
     * @param node_alloc Source of node frames. May be null, in which
     *        case nodes get synthetic frame numbers outside any zone
     *        (fine for native tables whose nodes are never translated).
     * @param levels Radix depth: 4 (48-bit VA) or 5 (57-bit VA, the
     *        LA57 extension the paper's introduction points to as a
     *        further walk-cost multiplier).
     */
    explicit PageTable(NodeAlloc node_alloc = nullptr,
                       NodeFree node_free = nullptr,
                       unsigned levels = kPtLevels);
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /**
     * Install a leaf. order must be 0 or kHugeOrder; vpn must be
     * order-aligned; the slot must currently be empty.
     */
    void map(Vpn vpn, Pfn pfn, unsigned order, bool writable = true,
             bool cow = false);

    /** Remove a leaf previously installed at this vpn/order. */
    void unmap(Vpn vpn, unsigned order);

    /** Leaf covering vpn, if any. Does not record a trace. */
    std::optional<Mapping> lookup(Vpn vpn) const;

    /**
     * Full walk: like lookup but records every node frame read.
     * trace.hit is false if the walk fell off a non-present entry
     * (trace still records the nodes read up to that point).
     */
    void walk(Vpn vpn, WalkTrace &trace) const;

    /** Set/clear the contiguity bit on the leaf covering vpn. */
    void setContigBit(Vpn vpn, bool value);

    /** Flip writability (COW arm/disarm) on the leaf covering vpn. */
    void setWritable(Vpn vpn, bool writable, bool cow);

    /**
     * Visit every leaf in ascending vpn order:
     * fn(vpn, mapping).
     */
    void forEachLeaf(
        const std::function<void(Vpn, const Mapping &)> &fn) const;

    /**
     * Visit every leaf intersecting [start, end), ascending. One radix
     * descent that skips subtrees outside the range — the FaultEngine's
     * batch paths (fork COW sharing, VMA teardown) use this instead of
     * filtering a whole-table walk.
     */
    void forEachLeafIn(
        Vpn start, Vpn end,
        const std::function<void(Vpn, const Mapping &)> &fn) const;

    /**
     * First vpn in [start, end) covered by a present leaf, or `end`
     * when the whole range is unmapped. A single descent skipping
     * absent subtrees; replaces per-page lookup loops (the THP
     * range-clear check, the FaultEngine's gap scan).
     */
    Vpn findMappedIn(Vpn start, Vpn end) const;

    /**
     * Pre-create every interior node (down to level 1) covering
     * [start, end). Threaded kernels call this at mmap time, under the
     * exclusive mm lock, so concurrent faults never race on the
     * creation of a node shared between VMAs — fault-time map() then
     * only ever writes leaf slots, which the per-VMA fault mutex
     * already serializes at 2 MiB granularity.
     */
    void ensureSpine(Vpn start, Vpn end);

    /** Batched 4 KiB leaf installs; defined after the class. */
    class RunMapper;

    /** Frame number of the root node (the CR3 analogue). */
    Pfn rootFrame() const;

    /** Radix depth (4 or 5). */
    unsigned levels() const { return levels_; }

    /**
     * Observer invoked after every leaf install/remove:
     * fn(vpn, mapping, present). Used by shadow-paging hypervisors to
     * trap guest page-table updates (the write-protect-and-sync of
     * real shadow paging).
     */
    using UpdateHook =
        std::function<void(Vpn, const Mapping &, bool present)>;
    void setUpdateHook(UpdateHook hook) { updateHook_ = std::move(hook); }

    const PageTableStats &stats() const { return stats_; }

    /**
     * Mapping-change epoch: bumped by every leaf mutation (map,
     * unmap, setContigBit, setWritable, RunMapper installs). Software
     * walk memos key their entries on this counter so any change to
     * the table — guest or nested — invalidates cached traversals
     * without a flush broadcast. Monotonic; relaxed is enough because
     * readers only compare for equality against a value they stored
     * under the same ordering regime as the walk itself.
     */
    std::uint64_t generation() const
    { return generation_.load(std::memory_order_relaxed); }

    /**
     * Serialize the table's observable state — geometry, generation,
     * stats and every leaf in ascending vpn order — for checkpoint
     * verification (save-only; the table is rebuilt deterministically
     * on resume and the bytes compared).
     */
    void saveState(Serializer &s) const;

  private:
    struct Node;

    void bumpGeneration()
    { generation_.fetch_add(1, std::memory_order_relaxed); }

    /** One slot: either a child node or a leaf PTE (or empty). */
    struct Slot
    {
        std::unique_ptr<Node> child;
        Mapping leaf;
        bool present = false; //!< leaf present (child presence: child != null)
    };

    struct Node
    {
        explicit Node(unsigned lvl, Pfn frame)
            : level(lvl), frame(frame) {}
        unsigned level;
        Pfn frame;
        std::array<Slot, kPtFanout> slots;
    };

    static unsigned indexAt(Vpn vpn, unsigned level);
    Node *ensureChild(Node *node, unsigned idx);
    Slot *findLeafSlot(Vpn vpn) const;
    void freeNodes(Node *node);
    Pfn allocNodeFrame();

    void
    forEachLeafIn(const Node *node, Vpn base,
                  const std::function<void(Vpn, const Mapping &)> &fn) const;

    void
    forEachLeafInRange(
        const Node *node, Vpn base, Vpn start, Vpn end,
        const std::function<void(Vpn, const Mapping &)> &fn) const;

    Vpn findMappedInNode(const Node *node, Vpn base, Vpn start,
                         Vpn end) const;

    NodeAlloc nodeAlloc_;
    NodeFree nodeFree_;
    UpdateHook updateHook_;
    unsigned levels_;
    std::unique_ptr<Node> root_;
    Pfn syntheticNext_;
    PageTableStats stats_;
    std::atomic<std::uint64_t> generation_{0};
};

/**
 * Batched 4 KiB installs: caches the level-1 node across map() calls
 * so a run of base-page installs inside one 2 MiB region costs one
 * descent instead of one per page. Semantics are identical to
 * PageTable::map(vpn, pfn, 0, ...) — stats and the update hook fire
 * per leaf. The cache must be invalidated (or the mapper discarded)
 * before any page-table mutation made behind its back that can free
 * nodes (unmap, huge promotion).
 */
class PageTable::RunMapper
{
  public:
    explicit RunMapper(PageTable &pt) : pt_(pt) {}

    /** Install a 4 KiB leaf at vpn (the slot must be empty). */
    void map(Vpn vpn, Pfn pfn, bool writable, bool cow);

    /** Drop the cached node (after external page-table mutations). */
    void invalidate() { l1_ = nullptr; }

  private:
    PageTable &pt_;
    Node *l1_ = nullptr;
    Vpn l1Base_ = ~Vpn{0};
};

} // namespace contig

#endif // CONTIG_MM_PAGE_TABLE_HH
