#include "policies/ca_reserve.hh"

#include <algorithm>
#include <mutex>

#include "base/align.hh"
#include "mm/kernel.hh"

namespace contig
{

CaReservePolicy::CaReservePolicy(const CaPagingConfig &cfg)
    : CaPagingPolicy(cfg)
{
    if (LockStatsRegistry::enabled())
        reserveLock_.bindStats(
            &LockStatsRegistry::global().site("ca.reserve"));
}

bool
CaReservePolicy::overlapsReservation(Pfn start, std::uint64_t pages,
                                     std::uint64_t ignore_owner) const
{
    for (const auto &[owner, r] : reservations_) {
        if (owner == ignore_owner)
            continue;
        if (start < r.start + r.pages && r.start < start + pages)
            return true;
    }
    return false;
}

std::uint64_t
CaReservePolicy::reservedPages() const
{
    std::lock_guard<SpinLock> g(reserveLock_);
    std::uint64_t total = 0;
    for (const auto &kv : reservations_)
        total += kv.second.pages;
    return total;
}

AllocResult
CaReservePolicy::place(Kernel &kernel, NodeId home,
                       std::uint64_t req_pages, unsigned order,
                       std::uint64_t owner)
{
    AllocResult res;
    PhysicalMemory &pm = kernel.physMem();

    // One placement at a time: the reservation table and the rover
    // form one consistent picture. allocSpecific below nests the zone
    // lock inside this one (reserve -> zone, the documented order).
    std::lock_guard<SpinLock> pl(reserveLock_);

    // Gather candidate sub-regions: free clusters minus the parts
    // under someone else's reservation.
    struct Candidate
    {
        Pfn start;
        std::uint64_t pages;
    };
    std::vector<Candidate> cands;
    const unsigned n = pm.numNodes();
    for (unsigned i = 0; i < n; ++i) {
        const Zone &zone = pm.zone((home + i) % n);
        std::vector<Cluster> clusters;
        {
            // snapshot() walks the live map; racing buddy updates
            // mutate it, so read it under the zone lock.
            std::lock_guard<SpinLock> zg(zone.lock());
            clusters = zone.contigMap().snapshot();
        }
        for (const Cluster &c : clusters) {
            // Carve the cluster around reserved intervals.
            Pfn at = c.startPfn;
            const Pfn end = c.startPfn + c.pages;
            while (at < end) {
                // Find the next reservation intersecting [at, end).
                Pfn next_res = end;
                Pfn next_res_end = end;
                for (const auto &[o, r] : reservations_) {
                    if (o == owner)
                        continue;
                    const Pfn rs = std::max<Pfn>(r.start, at);
                    if (rs < next_res && r.start + r.pages > at &&
                        r.start < end) {
                        next_res = std::max<Pfn>(r.start, at);
                        next_res_end =
                            std::min<Pfn>(r.start + r.pages, end);
                    }
                }
                if (next_res > at)
                    cands.push_back(Candidate{at, next_res - at});
                if (next_res >= end)
                    break;
                at = next_res_end;
            }
        }
    }
    if (cands.empty()) {
        if (auto pfn = pm.alloc(order, home))
            res.pfn = *pfn;
        else
            res.fail =
                order > 0 ? AllocFail::NoHugeBlock : AllocFail::Oom;
        return res;
    }

    // Next-fit over the candidates using our own rover; the candidate
    // containing the rover is clipped to its part at/after it, like
    // the base contiguity map's mid-cluster rover.
    std::sort(cands.begin(), cands.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.start < b.start;
              });
    std::size_t begin = 0;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        Candidate &c = cands[i];
        if (c.start + c.pages <= rover_) {
            begin = i + 1;
            continue;
        }
        if (c.start < rover_) {
            c.pages = c.start + c.pages - rover_;
            c.start = rover_;
        }
        begin = i;
        break;
    }
    if (begin >= cands.size())
        begin = 0;
    Candidate chosen_val{0, 0};
    const Candidate *chosen = nullptr;
    const Candidate *largest = nullptr;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const Candidate &c = cands[(begin + i) % cands.size()];
        if (!largest || c.pages > largest->pages)
            largest = &c;
        if (c.pages >= req_pages) {
            chosen = &c;
            break;
        }
    }
    if (!chosen) {
        chosen = largest;
        ++rstats_.placementsDeflected;
    }
    chosen_val = *chosen;
    chosen = &chosen_val;

    // The region must start order-aligned for the first allocation.
    Pfn start = alignUp(chosen->start, pagesInOrder(order));
    if (start + pagesInOrder(order) > chosen->start + chosen->pages) {
        if (auto pfn = pm.alloc(order, home))
            res.pfn = *pfn;
        else
            res.fail =
                order > 0 ? AllocFail::NoHugeBlock : AllocFail::Oom;
        return res;
    }
    if (!pm.allocSpecific(start, order)) {
        if (auto pfn = pm.alloc(order, home))
            res.pfn = *pfn;
        else
            res.fail =
                order > 0 ? AllocFail::NoHugeBlock : AllocFail::Oom;
        return res;
    }

    const std::uint64_t span = std::min(chosen->pages, req_pages);
    reservations_.emplace(owner, Reservation{start, span});
    ++rstats_.reservationsMade;
    rover_ = start + alignUp(span, pagesInOrder(kMaxOrder));
    res.pfn = start;
    return res;
}

void
CaReservePolicy::onMunmap(Kernel &kernel, Process &proc, Vma &vma)
{
    CaPagingPolicy::onMunmap(kernel, proc, vma);
    std::lock_guard<SpinLock> g(reserveLock_);
    const auto removed =
        reservations_.erase(placementOwner(proc, vma));
    rstats_.reservationsReleased += removed;
}

} // namespace contig
