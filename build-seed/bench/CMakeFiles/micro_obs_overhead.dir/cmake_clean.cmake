file(REMOVE_RECURSE
  "CMakeFiles/micro_obs_overhead.dir/micro_obs_overhead.cc.o"
  "CMakeFiles/micro_obs_overhead.dir/micro_obs_overhead.cc.o.d"
  "micro_obs_overhead"
  "micro_obs_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_obs_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
