#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "base/json.hh"
#include "base/sync.hh"
#include "obs/metrics.hh"
#include "obs/phase.hh"
#include "obs/trace.hh"

using namespace contig;
using namespace contig::obs;

namespace
{

/** Reset the global sink around each test (it is process-wide). */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        TraceSink::global().setCategoryMask(0);
        TraceSink::global().setCapacity(1024);
    }

    void
    TearDown() override
    {
        TraceSink::global().setCategoryMask(0);
        TraceSink::global().clear();
    }

    std::string
    tmpPath(const char *name)
    {
        return ::testing::TempDir() + name;
    }

    std::string
    slurp(const std::string &path)
    {
        std::ifstream in(path);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    }
};

} // namespace

TEST_F(TraceTest, MaskGatesRecording)
{
    TraceSink &sink = TraceSink::global();
    CONTIG_TRACE(TraceEventKind::PageFault, 1, 2, 0);
    EXPECT_EQ(sink.size(), 0u);

    sink.setCategoryMask(kCatFault);
    CONTIG_TRACE(TraceEventKind::PageFault, 1, 2, 0);
    CONTIG_TRACE(TraceEventKind::Alloc, 9, 9, 9); // alloc still masked
    EXPECT_EQ(sink.size(), 1u);

    sink.setCategoryMask(kCatAll);
    CONTIG_TRACE(TraceEventKind::Alloc, 9, 9, 9);
    EXPECT_EQ(sink.size(), 2u);
}

TEST_F(TraceTest, WantsIsExactBitTest)
{
    TraceSink &sink = TraceSink::global();
    sink.setCategoryMask(kCatSpot | kCatWalk);
    EXPECT_TRUE(sink.wants(kCatSpot));
    EXPECT_TRUE(sink.wants(kCatWalk));
    EXPECT_FALSE(sink.wants(kCatFault));
    EXPECT_FALSE(sink.wants(kCatPhase));
}

TEST_F(TraceTest, EventsCarryArgsAndKind)
{
    TraceSink &sink = TraceSink::global();
    sink.setCategoryMask(kCatAll);
    sink.record(TraceEventKind::Migration, 100, 200, 512);

    auto evs = sink.events();
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(evs[0].kind, TraceEventKind::Migration);
    EXPECT_EQ(evs[0].args[0], 100u);
    EXPECT_EQ(evs[0].args[1], 200u);
    EXPECT_EQ(evs[0].args[2], 512u);
}

TEST_F(TraceTest, RingOverwritesOldest)
{
    TraceSink &sink = TraceSink::global();
    sink.setCapacity(4);
    sink.setCategoryMask(kCatAll);
    for (std::uint64_t i = 0; i < 6; ++i)
        sink.record(TraceEventKind::PageFault, i, 0, 0);

    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.recorded(), 6u);
    EXPECT_EQ(sink.dropped(), 2u);
    auto evs = sink.events();
    ASSERT_EQ(evs.size(), 4u);
    // Oldest-first: events 2..5 survive.
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(evs[i].args[0], i + 2);
}

TEST_F(TraceTest, RingSurvivesMultipleWraparounds)
{
    TraceSink &sink = TraceSink::global();
    sink.setCapacity(8);
    sink.setCategoryMask(kCatAll);
    // 3.5 laps around an 8-slot ring.
    for (std::uint64_t i = 0; i < 28; ++i)
        sink.record(TraceEventKind::Alloc, i, 0, 0);

    EXPECT_EQ(sink.size(), 8u);
    EXPECT_EQ(sink.recorded(), 28u);
    EXPECT_EQ(sink.dropped(), 20u);
    auto evs = sink.events();
    ASSERT_EQ(evs.size(), 8u);
    // Oldest-first readback straddles the physical wrap point.
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(evs[i].args[0], i + 20);
}

TEST_F(TraceTest, SetCapacityDropsAndRestartsCleanly)
{
    TraceSink &sink = TraceSink::global();
    sink.setCapacity(4);
    sink.setCategoryMask(kCatAll);
    for (std::uint64_t i = 0; i < 6; ++i)
        sink.record(TraceEventKind::PageFault, i, 0, 0);
    ASSERT_EQ(sink.size(), 4u);

    sink.setCapacity(2);
    EXPECT_EQ(sink.size(), 0u);
    sink.record(TraceEventKind::PageFault, 100, 0, 0);
    sink.record(TraceEventKind::PageFault, 101, 0, 0);
    sink.record(TraceEventKind::PageFault, 102, 0, 0);
    auto evs = sink.events();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].args[0], 101u);
    EXPECT_EQ(evs[1].args[0], 102u);
}

TEST_F(TraceTest, MaskFiltersPerKindAcrossCategories)
{
    TraceSink &sink = TraceSink::global();
    sink.setCategoryMask(kCatMigrate | kCatDaemon);

    // The macro is the gate the hot paths use — exercise it for one
    // kind in every masked state.
    CONTIG_TRACE(TraceEventKind::Migration, 1, 2, 3);   // in mask
    CONTIG_TRACE(TraceEventKind::DaemonTick, 7, 0, 0);  // in mask
    CONTIG_TRACE(TraceEventKind::PageFault, 9, 9, 9);   // masked off
    CONTIG_TRACE(TraceEventKind::Alloc, 9, 9, 9);       // masked off
    CONTIG_TRACE(TraceEventKind::SpotCorrect, 9, 9, 0); // masked off

    auto evs = sink.events();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].kind, TraceEventKind::Migration);
    EXPECT_EQ(evs[1].kind, TraceEventKind::DaemonTick);

    // Every kind's category bit must match the descriptor table.
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(TraceEventKind::NumKinds); ++k)
        EXPECT_EQ(traceCategoryOf(static_cast<TraceEventKind>(k)),
                  kTraceEventDescs[k].category);
}

TEST_F(TraceTest, InternIsStableAndDeduplicated)
{
    TraceSink &sink = TraceSink::global();
    const char *a = sink.intern("kernel.fault");
    const char *b = sink.intern("kernel.fault");
    const char *c = sink.intern("xlat.walk");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_STREQ(c, "xlat.walk");
}

TEST_F(TraceTest, ChromeTraceExport)
{
    TraceSink &sink = TraceSink::global();
    sink.setCategoryMask(kCatAll);
    sink.record(TraceEventKind::SpotMispredict, 0x400000, 42, 0);
    sink.recordSpan(sink.intern("kernel.fault"), 1000, 5000, 77);

    const std::string path = tmpPath("chrome_trace.json");
    ASSERT_TRUE(sink.writeChromeTrace(path));
    const std::string doc = slurp(path);

    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"spot_mispredict\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(doc.find("\"kernel.fault\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"dur\":5"), std::string::npos); // 5000ns = 5us
    EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(TraceTest, JsonlExport)
{
    TraceSink &sink = TraceSink::global();
    sink.setCategoryMask(kCatAll);
    sink.record(TraceEventKind::TlbL2Miss, 0xabc, 0, 0);
    sink.record(TraceEventKind::NestedWalk, 0xabc, 24, 960);

    const std::string path = tmpPath("trace.jsonl");
    ASSERT_TRUE(sink.writeJsonl(path));
    std::ifstream in(path);
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"ts_ns\""), std::string::npos);
    }
    EXPECT_EQ(lines, 2);
    std::remove(path.c_str());
}

TEST_F(TraceTest, ParseCategories)
{
    EXPECT_EQ(parseTraceCategories("all"), kCatAll);
    EXPECT_EQ(parseTraceCategories(""), kCatAll);
    EXPECT_EQ(parseTraceCategories("fault"), kCatFault);
    EXPECT_EQ(parseTraceCategories("fault,spot,walk"),
              kCatFault | kCatSpot | kCatWalk);
    EXPECT_EQ(parseTraceCategories("0x1f"), 0x1fu);
    EXPECT_EQ(parseTraceCategories("bogus"), 0u);
}

TEST_F(TraceTest, PhaseAccumulatesAndEmitsSpans)
{
    TraceSink &sink = TraceSink::global();
    sink.setCategoryMask(kCatPhase);

    MetricRegistry reg;
    Phase phase = Phase::bind(reg, "test.region");
    Cycles sim = 0;
    {
        ScopedPhase timer(phase, &sim);
        sim += 1234;
    }
    {
        ScopedPhase timer(phase, &sim);
        sim += 766;
    }

    SampleMap snap = reg.snapshot();
    EXPECT_EQ(snap.at("phase.test.region.wall_us").summary.count(), 2u);
    EXPECT_DOUBLE_EQ(snap.at("phase.test.region.cycles").summary.sum(),
                     2000.0);
    ASSERT_EQ(sink.size(), 2u);
    auto evs = sink.events();
    EXPECT_EQ(evs[0].kind, TraceEventKind::PhaseSpan);
    EXPECT_STREQ(evs[0].spanName, "test.region");
    EXPECT_EQ(evs[0].args[0], 1234u);
}

TEST_F(TraceTest, DisabledPhaseStillAccumulatesMetrics)
{
    TraceSink::global().setCategoryMask(0);
    MetricRegistry reg;
    Phase phase = Phase::bind(reg, "quiet");
    {
        ScopedPhase timer(phase);
    }
    EXPECT_EQ(TraceSink::global().size(), 0u);
    EXPECT_EQ(reg.snapshot().at("phase.quiet.wall_us").summary.count(),
              1u);
}

TEST_F(TraceTest, EventsCarryTheRecordingThreadsLane)
{
    TraceSink &sink = TraceSink::global();
    sink.setCategoryMask(kCatAll);

    // Main thread, no Scope bound: lane 0.
    sink.record(TraceEventKind::PageFault, 1, 0, 0);
    // A bound worker records on lane cpu+1; main is distinguishable
    // from worker 0 (which would alias it under raw cpu ids).
    std::thread worker([&] {
        ThisCpu::Scope scope(0);
        sink.record(TraceEventKind::PageFault, 2, 0, 0);
        sink.recordSpan(sink.intern("w.span"), 10, 5, 0);
    });
    worker.join();
    std::thread worker3([&] {
        ThisCpu::Scope scope(3);
        sink.record(TraceEventKind::PageFault, 3, 0, 0);
    });
    worker3.join();

    auto evs = sink.events();
    ASSERT_EQ(evs.size(), 4u);
    EXPECT_EQ(evs[0].tid, 0u); // main
    EXPECT_EQ(evs[1].tid, 1u); // worker 0
    EXPECT_EQ(evs[2].tid, 1u); // worker 0's span
    EXPECT_EQ(evs[3].tid, 4u); // worker 3
}

TEST_F(TraceTest, BarrierWaitIsASyncCategorySpan)
{
    TraceSink &sink = TraceSink::global();
    EXPECT_EQ(traceCategoryOf(TraceEventKind::BarrierWait), kCatSync);
    EXPECT_TRUE(traceIsSpanKind(TraceEventKind::BarrierWait));
    EXPECT_TRUE(traceIsSpanKind(TraceEventKind::PhaseSpan));
    EXPECT_FALSE(traceIsSpanKind(TraceEventKind::PageFault));

    sink.setCategoryMask(kCatSync);
    sink.recordSpan(sink.intern("xlat.barrier.start"), 100, 40, 2,
                    TraceEventKind::BarrierWait);
    auto evs = sink.events();
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(evs[0].kind, TraceEventKind::BarrierWait);
    EXPECT_EQ(evs[0].durNs, 40u);
    EXPECT_EQ(evs[0].args[0], 2u); // worker id
}

TEST_F(TraceTest, ChromeTraceEmitsPerThreadLanes)
{
    TraceSink &sink = TraceSink::global();
    sink.setCategoryMask(kCatAll);
    sink.record(TraceEventKind::PageFault, 1, 0, 0); // main, lane 0
    std::thread worker([&] {
        ThisCpu::Scope scope(1);
        sink.recordSpan(sink.intern("xlat.barrier.end"), 50, 25, 1,
                        TraceEventKind::BarrierWait);
    });
    worker.join();

    const std::string path = tmpPath("lanes_trace.json");
    ASSERT_TRUE(sink.writeChromeTrace(path));
    const std::string doc = slurp(path);

    // Per-lane thread_name metadata: a "main" lane and worker lanes.
    EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(doc.find("\"main\""), std::string::npos);
    EXPECT_NE(doc.find("\"worker1\""), std::string::npos);
    // Events carry their lane as the Chrome tid.
    EXPECT_NE(doc.find("\"tid\":0"), std::string::npos);
    EXPECT_NE(doc.find("\"tid\":2"), std::string::npos);
    // The barrier wait keeps its interned site name and rides the
    // sync category.
    EXPECT_NE(doc.find("\"xlat.barrier.end\""), std::string::npos);
    EXPECT_NE(doc.find("\"sync\""), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(TraceTest, JsonlRoundTripsTidAndBarrierSpans)
{
    TraceSink &sink = TraceSink::global();
    sink.setCategoryMask(kCatAll);
    sink.record(TraceEventKind::TlbL2Miss, 0xabc, 0, 0);
    std::thread worker([&] {
        ThisCpu::Scope scope(2);
        sink.recordSpan(sink.intern("xlat.barrier.start"), 100, 40, 2,
                        TraceEventKind::BarrierWait);
    });
    worker.join();

    const std::string path = tmpPath("tid_trace.jsonl");
    ASSERT_TRUE(sink.writeJsonl(path));
    std::ifstream in(path);
    std::string line;
    std::vector<JsonValue> docs;
    while (std::getline(in, line)) {
        std::string err;
        auto doc = JsonValue::parse(line, &err);
        ASSERT_TRUE(doc) << err;
        docs.push_back(std::move(*doc));
    }
    std::remove(path.c_str());

    ASSERT_EQ(docs.size(), 2u);
    EXPECT_DOUBLE_EQ(docs[0].numberOr("tid", -1), 0.0);
    EXPECT_DOUBLE_EQ(docs[1].numberOr("tid", -1), 3.0);
    const JsonValue *name = docs[1].find("name");
    ASSERT_TRUE(name && name->isString());
    EXPECT_EQ(name->asString(), "xlat.barrier.start");
    EXPECT_DOUBLE_EQ(docs[1].numberOr("dur_ns", -1), 40.0);
}

TEST_F(TraceTest, LaneRestoresAcrossNestedScopes)
{
    EXPECT_EQ(ThisCpu::lane(), 0u);
    EXPECT_FALSE(ThisCpu::bound());
    {
        ThisCpu::Scope outer(5);
        EXPECT_EQ(ThisCpu::lane(), 6u);
        EXPECT_TRUE(ThisCpu::bound());
        {
            ThisCpu::Scope inner(0);
            EXPECT_EQ(ThisCpu::lane(), 1u);
        }
        EXPECT_EQ(ThisCpu::lane(), 6u);
    }
    EXPECT_EQ(ThisCpu::lane(), 0u);
    EXPECT_FALSE(ThisCpu::bound());
    // id() keeps its pcp-cache semantics: 0 when unbound.
    EXPECT_EQ(ThisCpu::id(), 0);
}
