#include <gtest/gtest.h>

#include "mm/kernel.hh"
#include "obs/observatory.hh"
#include "obs/snapshot.hh"
#include "phys/buddy.hh"

using namespace contig;
using namespace contig::obs;

namespace
{

KernelConfig
smallConfig(bool thp = false)
{
    KernelConfig cfg;
    cfg.phys.bytesPerNode = 128ull << 20;
    cfg.phys.numNodes = 2;
    cfg.thpEnabled = thp;
    return cfg;
}

} // namespace

// --- FMFI -----------------------------------------------------------------

TEST(Fmfi, KnownValues)
{
    // A 2048-page block with one page carved out decomposes into one
    // free block of each order 0..10: at the huge order (9), the
    // orders 9 and 10 are usable (512 + 1024 of 2047 free pages).
    std::vector<std::uint64_t> counts(kMaxOrder + 1, 0);
    for (unsigned o = 0; o <= 10; ++o)
        counts[o] = 1;
    EXPECT_DOUBLE_EQ(fmfiFromCounts(counts, kHugeOrder), 511.0 / 2047.0);

    // Fully intact top-order block: nothing is unusable.
    std::vector<std::uint64_t> intact(kMaxOrder + 1, 0);
    intact[kMaxOrder] = 1;
    EXPECT_DOUBLE_EQ(fmfiFromCounts(intact, kHugeOrder), 0.0);

    // Everything in base pages: all of it is unusable.
    std::vector<std::uint64_t> shattered(kMaxOrder + 1, 0);
    shattered[0] = 2048;
    EXPECT_DOUBLE_EQ(fmfiFromCounts(shattered, kHugeOrder), 1.0);

    // No free memory at all: defined as 0 (nothing to fragment).
    EXPECT_DOUBLE_EQ(
        fmfiFromCounts(std::vector<std::uint64_t>(kMaxOrder + 1, 0),
                       kHugeOrder),
        0.0);
}

TEST(Fmfi, BuddyLiveStateMatchesCounts)
{
    constexpr std::uint64_t frames_n = 8 * pagesInOrder(kMaxOrder);
    FrameArray frames(frames_n);
    BuddyAllocator buddy(frames, 0, frames_n);

    EXPECT_DOUBLE_EQ(buddy.unusableFreeIndex(kHugeOrder), 0.0);

    auto pfn = buddy.alloc(0);
    ASSERT_TRUE(pfn);
    // One top-order block shattered down to a page: 511 of the
    // remaining 16383 free pages sit below the huge order.
    EXPECT_DOUBLE_EQ(buddy.unusableFreeIndex(kHugeOrder),
                     511.0 / 16383.0);
    EXPECT_DOUBLE_EQ(
        fmfiFromCounts(buddy.freeBlockCounts(), kHugeOrder),
        buddy.unusableFreeIndex(kHugeOrder));

    buddy.free(*pfn, 0);
    EXPECT_DOUBLE_EQ(buddy.unusableFreeIndex(kHugeOrder), 0.0);
}

// --- per-VMA offset runs --------------------------------------------------

TEST(VmaRuns, AttributesSegsToVmas)
{
    // VMA 1: [0, 1024), VMA 2: [4096, 8192).
    std::vector<VmaSpan> spans{{0, 1024, 1}, {4096, 8192, 2}};
    std::vector<Seg> segs{
        {0, 100, 512},    // vma 1
        {512, 9000, 256}, // vma 1
        {4096, 200, 512}, // vma 2
    };
    auto runs = vmaRunStats(segs, spans, 7, "1d");
    ASSERT_EQ(runs.size(), 2u);

    EXPECT_EQ(runs[0].vmaId, 1u);
    EXPECT_EQ(runs[0].pid, 7u);
    EXPECT_EQ(runs[0].dim, "1d");
    EXPECT_EQ(runs[0].pages, 768u);
    EXPECT_EQ(runs[0].runs, 2u);
    EXPECT_EQ(runs[0].maxRun, 512u);
    // Weighted mean: (512^2 + 256^2) / 768.
    EXPECT_DOUBLE_EQ(runs[0].weightedMeanRun,
                     (512.0 * 512 + 256.0 * 256) / 768.0);

    EXPECT_EQ(runs[1].vmaId, 2u);
    EXPECT_EQ(runs[1].runs, 1u);
    EXPECT_EQ(runs[1].maxRun, 512u);
}

// --- flat encoding --------------------------------------------------------

namespace
{

Snapshot
sampleSnapshot()
{
    Snapshot snap;
    snap.seq = 3;
    snap.tick = 1000;
    snap.faults = 1000;
    snap.hugeFaults = 2;
    ZoneSnap z;
    z.node = 0;
    z.freePages = 2047;
    z.freeBlocks.assign(kMaxOrder + 1, 0);
    for (unsigned o = 0; o <= 10; ++o)
        z.freeBlocks[o] = 1;
    z.fmfi = 511.0 / 2047.0;
    z.clusterCount = 1;
    z.largestClusterPages = 1024;
    snap.zones.push_back(z);
    snap.vmaRuns.push_back(VmaRunSnap{"1d", 7, 1, 768, 2, 512, 426.0});
    snap.hasCoverage = true;
    snap.coverage.cov32 = 0.5;
    snap.coverage.cov128 = 0.75;
    snap.coverage.mappings = 40;
    snap.coverage.mappingsFor99 = 30;
    snap.coverage.totalPages = 4096;
    return snap;
}

} // namespace

TEST(FlatSnapCodec, DeltaRoundTrip)
{
    const Snapshot a = sampleSnapshot();
    Snapshot b = a;
    b.seq = 4;
    b.tick = 1100;
    b.zones[0].fmfi = 0.9;
    b.vmaRuns.clear(); // VMA went away: its keys must be deleted
    b.coverage.cov32 = 0.25;

    const FlatSnap fa = flatten(a);
    const FlatSnap fb = flatten(b);
    const FlatDelta d = diffFlat(fa, fb);

    // The delta only carries changes and removals.
    EXPECT_TRUE(d.set.count("zone0.fmfi"));
    EXPECT_TRUE(d.set.count("cov.cov32"));
    EXPECT_FALSE(d.set.count("cov.cov128"));
    EXPECT_FALSE(d.del.empty());

    EXPECT_EQ(applyDelta(fa, d), fb);
}

TEST(FlatSnapCodec, TimelineRecordRoundTrip)
{
    const FlatSnap flat = flatten(sampleSnapshot());

    TimelineRecord rec;
    rec.stream = 2;
    rec.domain = "CA:\"svm\""; // escaping must survive
    rec.seq = 3;
    rec.tick = 1000;
    rec.full = false;
    rec.set = flat;
    rec.del = {"vma1d.7.1.pages", "vma1d.7.1.runs"};

    const std::string line = encodeTimelineRecord(rec);
    std::string err;
    auto back = decodeTimelineRecord(line, &err);
    ASSERT_TRUE(back) << err;
    EXPECT_EQ(back->stream, rec.stream);
    EXPECT_EQ(back->domain, rec.domain);
    EXPECT_EQ(back->seq, rec.seq);
    EXPECT_EQ(back->tick, rec.tick);
    EXPECT_EQ(back->full, rec.full);
    EXPECT_EQ(back->set, rec.set);
    EXPECT_EQ(back->del, rec.del);
}

TEST(FlatSnapCodec, DecodeRejectsMalformed)
{
    EXPECT_FALSE(decodeTimelineRecord("not json"));
    EXPECT_FALSE(decodeTimelineRecord("[1,2,3]"));
    EXPECT_FALSE(decodeTimelineRecord(
        R"({"stream":0,"domain":"d","seq":0,"tick":0,"kind":"bogus","set":{}})"));
    EXPECT_FALSE(decodeTimelineRecord(
        R"({"stream":0,"domain":"d","seq":0,"tick":0,"kind":"full","set":{"k":"str"}})"));
    std::string err;
    EXPECT_FALSE(decodeTimelineRecord("{}", &err));
    EXPECT_FALSE(err.empty());
}

// --- the sampler against a live kernel ------------------------------------

TEST(StateSampler, PeriodicFaultDrivenCapture)
{
    Kernel kernel(smallConfig(), std::make_unique<DefaultThpPolicy>());
    Process &proc = kernel.createProcess("obs_test");
    Vma &vma = kernel.mmapAnon(proc, 64 * kPageSize);

    SamplerConfig cfg;
    cfg.periodFaults = 4;
    StateSampler sampler(cfg);
    sampler.attachKernel(kernel);
    ASSERT_EQ(kernel.faultEngine().sampler(), &sampler);

    for (std::uint64_t i = 0; i < 16; ++i)
        kernel.touch(proc, vma.start() + i * kPageSize, Access::Write);

    // 16 base faults at period 4 -> 4 captures.
    ASSERT_EQ(sampler.snapshots().size(), 4u);
    const Snapshot &snap = sampler.snapshots().back();
    EXPECT_EQ(snap.faults, 16u);
    ASSERT_EQ(snap.zones.size(), 2u);
    EXPECT_GT(snap.zones[0].freePages + snap.zones[1].freePages, 0u);
    for (const ZoneSnap &z : snap.zones) {
        EXPECT_GE(z.fmfi, 0.0);
        EXPECT_LE(z.fmfi, 1.0);
        EXPECT_DOUBLE_EQ(z.fmfi,
                         fmfiFromCounts(z.freeBlocks, kHugeOrder));
    }

    sampler.detachKernel();
    EXPECT_EQ(kernel.faultEngine().sampler(), nullptr);
    // Detached, further faults never capture...
    kernel.touch(proc, vma.start() + 20 * kPageSize, Access::Write);
    EXPECT_EQ(sampler.snapshots().size(), 4u);
    // ...but the kernel stays readable through sampleNow().
    const Snapshot &manual = sampler.sampleNow();
    EXPECT_EQ(manual.faults, 17u);
}

TEST(StateSampler, KernelKnobOverridesPeriod)
{
    KernelConfig kcfg = smallConfig();
    kcfg.obsSamplePeriodFaults = 2;
    Kernel kernel(kcfg, std::make_unique<DefaultThpPolicy>());

    SamplerConfig cfg;
    cfg.periodFaults = 1000;
    StateSampler sampler(cfg);
    sampler.attachKernel(kernel);
    EXPECT_EQ(sampler.periodFaults(), 2u);
}

TEST(StateSampler, KernellessSampleAtUsesExplicitTick)
{
    StateSampler sampler;
    const Snapshot &snap = sampler.sampleAt(123);
    EXPECT_EQ(snap.tick, 123u);
    EXPECT_EQ(snap.seq, 0u);
    EXPECT_TRUE(snap.zones.empty());
    EXPECT_FALSE(snap.hasCoverage);
    EXPECT_FALSE(snap.hasXlat);
}
