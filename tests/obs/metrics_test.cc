#include <gtest/gtest.h>

#include <vector>

#include "base/json.hh"
#include "obs/metrics.hh"

using namespace contig;
using namespace contig::obs;

TEST(MetricSink, TypedEmissions)
{
    MetricSink sink;
    sink.counter("c", 2);
    sink.counter("c", 3);
    sink.gauge("g", 1.5);
    Summary s;
    s.add(4.0);
    sink.summary("s", s);

    const SampleMap &m = sink.samples();
    ASSERT_EQ(m.size(), 3u);
    EXPECT_EQ(m.at("c").type, MetricType::Counter);
    EXPECT_EQ(m.at("c").counter, 5u);
    EXPECT_DOUBLE_EQ(m.at("g").gauge, 1.5);
    EXPECT_EQ(m.at("s").summary.count(), 1u);
}

TEST(MetricSink, ScopePrefixes)
{
    MetricSink sink;
    sink.counter("top", 1);
    {
        MetricSink::Scope zone(sink, "buddy");
        sink.counter("split_count", 7);
        {
            MetricSink::Scope inner(sink, "l0");
            sink.counter("x", 1);
        }
        sink.counter("merge_count", 2);
    }
    sink.counter("top2", 1);

    const SampleMap &m = sink.samples();
    EXPECT_EQ(m.count("top"), 1u);
    EXPECT_EQ(m.count("buddy.split_count"), 1u);
    EXPECT_EQ(m.count("buddy.l0.x"), 1u);
    EXPECT_EQ(m.count("buddy.merge_count"), 1u);
    EXPECT_EQ(m.count("top2"), 1u);
}

TEST(MetricSample, HistogramMergeIsBucketwise)
{
    Log2Histogram a, b;
    a.add(1);      // bucket 0
    a.add(1024);   // bucket 10
    b.add(2);      // bucket 1
    b.add(1500);   // bucket 10

    MetricSink sink;
    sink.histogram("h", a);
    sink.histogram("h", b);
    const MetricSample &s = sink.samples().at("h");
    ASSERT_GE(s.buckets.size(), 11u);
    EXPECT_EQ(s.buckets[0], 1u);
    EXPECT_EQ(s.buckets[1], 1u);
    EXPECT_EQ(s.buckets[10], 2u);
}

TEST(MetricRegistry, OwnedReferencesAreStable)
{
    MetricRegistry reg;
    std::uint64_t &c = reg.counter("a.count");
    // Creating more metrics must not invalidate the reference.
    for (int i = 0; i < 100; ++i)
        reg.counter("filler." + std::to_string(i));
    c = 41;
    ++reg.counter("a.count");
    EXPECT_EQ(reg.snapshot().at("a.count").counter, 42u);
}

TEST(MetricRegistry, OwnedSummaryAndHistogram)
{
    MetricRegistry reg;
    reg.summary("lat").add(2.0);
    reg.summary("lat").add(4.0);
    reg.histogram("sizes").add(8);

    SampleMap snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.at("lat").summary.mean(), 3.0);
    ASSERT_EQ(snap.at("sizes").type, MetricType::Histogram);
    EXPECT_EQ(snap.at("sizes").buckets.at(3), 1u);
}

TEST(MetricRegistry, SourcesArePrefixedAndLive)
{
    MetricRegistry reg;
    std::uint64_t faults = 0;
    auto id = reg.addSource("kernel", [&](MetricSink &sink) {
        sink.counter("faults", faults);
    });
    EXPECT_EQ(reg.sourceCount(), 1u);

    faults = 3;
    EXPECT_EQ(reg.snapshot().at("kernel.faults").counter, 3u);
    faults = 10;
    EXPECT_EQ(reg.snapshot().at("kernel.faults").counter, 10u);

    reg.removeSource(id, /*absorb=*/false);
    EXPECT_EQ(reg.sourceCount(), 0u);
    EXPECT_EQ(reg.snapshot().count("kernel.faults"), 0u);
}

TEST(MetricRegistry, RemovedSourceIsAbsorbed)
{
    MetricRegistry reg;
    auto id = reg.addSource("kernel", [](MetricSink &sink) {
        sink.counter("faults", 7);
    });
    reg.removeSource(id);
    // The final values keep contributing after the source is gone.
    EXPECT_EQ(reg.snapshot().at("kernel.faults").counter, 7u);
}

TEST(MetricRegistry, AbsorbedAndLiveMergeByName)
{
    // Two short-lived "kernels" plus one live one: totals add up, as
    // when a bench builds one system per table row.
    MetricRegistry reg;
    for (int i = 0; i < 2; ++i) {
        MetricSource src(reg, "kernel", [](MetricSink &sink) {
            sink.counter("faults", 5);
        });
    }
    auto live = reg.addSource("kernel", [](MetricSink &sink) {
        sink.counter("faults", 2);
    });
    EXPECT_EQ(reg.snapshot().at("kernel.faults").counter, 12u);
    reg.removeSource(live, false);
}

TEST(MetricRegistry, SourceAbsorbsBeforeBackingStateDies)
{
    // Regression for the absorb-on-destroy lifetime contract: a pull
    // source's callback reads state owned by the same object (the
    // TranslationSim attrib_ table). The final pull must happen at
    // source destruction, while the backing state is still alive, and
    // registry reads after that must serve the absorbed values
    // without ever re-invoking the callback.
    MetricRegistry reg;
    bool backing_alive = false;
    {
        std::vector<std::uint64_t> backing{41};
        backing_alive = true;
        MetricSource src(reg, "sim", [&](MetricSink &sink) {
            ASSERT_TRUE(backing_alive)
                << "source pulled after its backing state died";
            sink.counter("events", backing[0]);
        });
        backing[0] = 42;
        EXPECT_EQ(reg.snapshot().at("sim.events").counter, 42u);
        // `src` dies before `backing` (reverse declaration order):
        // the absorb-on-destroy pull still sees live state.
    }
    backing_alive = false;
    EXPECT_EQ(reg.snapshot().at("sim.events").counter, 42u);
    EXPECT_EQ(reg.snapshot().at("sim.events").counter, 42u);
    EXPECT_EQ(reg.sourceCount(), 0u);
}

TEST(MetricRegistry, MetricSourceMoveTransfersOwnership)
{
    MetricRegistry reg;
    MetricSource a(reg, "x",
                   [](MetricSink &sink) { sink.counter("c", 1); });
    MetricSource b = std::move(a);
    EXPECT_EQ(reg.sourceCount(), 1u);
    MetricSource c;
    c = std::move(b);
    EXPECT_EQ(reg.sourceCount(), 1u);
    // Destruction of `c` (end of scope) removes and absorbs once.
}

TEST(MetricRegistry, ResetOwnedKeepsSources)
{
    MetricRegistry reg;
    reg.counter("owned") = 5;
    auto id = reg.addSource("src", [](MetricSink &sink) {
        sink.counter("c", 1);
    });
    reg.resetOwned();
    SampleMap snap = reg.snapshot();
    EXPECT_EQ(snap.count("owned"), 0u);
    EXPECT_EQ(snap.at("src.c").counter, 1u);
    reg.removeSource(id, false);
}

TEST(MetricRegistry, WriteJson)
{
    MetricRegistry reg;
    reg.counter("kernel.faults") = 3;
    reg.gauge("free_pages") = 12.5;
    reg.summary("lat").add(1.0);
    reg.histogram("sizes").add(4);

    JsonWriter w;
    reg.writeJson(w);
    ASSERT_TRUE(w.complete());
    const std::string out = w.str();
    EXPECT_NE(out.find("\"kernel.faults\":3"), std::string::npos);
    EXPECT_NE(out.find("\"free_pages\":12.5"), std::string::npos);
    EXPECT_NE(out.find("\"count\":1"), std::string::npos);
    EXPECT_NE(out.find("\"log2_buckets\""), std::string::npos);
}

TEST(MetricRegistry, GlobalIsSingleton)
{
    EXPECT_EQ(&MetricRegistry::global(), &MetricRegistry::global());
}
