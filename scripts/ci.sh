#!/usr/bin/env bash
# CI entry point: build Release and ASan+UBSan configurations, run the
# full test suite on both, then record the micro-bench results as
# BENCH_<name>.json artifacts at the repo root and gate the Release
# fig09 output against the committed baseline.
# Usage: scripts/ci.sh [build-root]
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$root/build-ci}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

build_and_test() {
    local name="$1"
    shift
    echo "=== [$name] configure ==="
    cmake -S "$root" -B "$out/$name" "$@"
    echo "=== [$name] build ==="
    cmake --build "$out/$name" -j "$jobs"
    echo "=== [$name] ctest ==="
    ctest --test-dir "$out/$name" --output-on-failure
}

build_and_test release -DCMAKE_BUILD_TYPE=Release
build_and_test asan-ubsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCONTIG_SANITIZE=ON

# Micro-bench artifacts (Release binaries). micro_alloc_path is a
# plain BenchOutput bench; the other two are google-benchmark
# binaries, which have their own JSON reporter.
bench="$out/release/bench"
echo "=== bench artifacts ==="
"$bench/micro_alloc_path" --json "$root/BENCH_micro_alloc_path.json"
"$bench/micro_tlb_spot" \
    --benchmark_out="$root/BENCH_micro_tlb_spot.json" \
    --benchmark_out_format=json
"$bench/micro_obs_overhead" \
    --benchmark_out="$root/BENCH_micro_obs_overhead.json" \
    --benchmark_out_format=json
python3 "$root/scripts/check_bench_json.py" "$bench/micro_alloc_path"

# Regression gate: the fig09 rows/metrics must match the committed
# baseline within contig_inspect's per-metric tolerances.
echo "=== baseline gate ==="
"$bench/fig09_free_blocks" --json "$root/BENCH_fig09_free_blocks.json" \
    --timeline "$root/BENCH_fig09_timeline.jsonl"
python3 "$root/scripts/check_bench_json.py" \
    --timeline-file "$root/BENCH_fig09_timeline.jsonl"
"$out/release/tools/contig_inspect" check-baseline \
    "$root/BENCH_fig09_free_blocks.json" \
    "$root/bench/baselines/BENCH_fig09_free_blocks.json"

echo "CI: all configurations green"
