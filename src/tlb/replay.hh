/**
 * @file
 * Batched, sharded translation replay. A ReplayEngine owns
 * `threads` TranslationSim shards — each with its own private
 * L1/L2 TLBs, SpOT table, PSC, nested TLB and walk memo — and
 * partitions every access chunk across them by a hash of the guest
 * page number.
 *
 * Determinism contract:
 *  - threads == 1 is instruction-identical to feeding every access
 *    to a single TranslationSim: no worker threads exist, the chunk
 *    goes straight to shard 0 (tests/tlb/replay_test.cc and the
 *    fig13/fig14 golden-equivalence test pin this byte-for-byte);
 *  - threads == N is deterministic for a fixed N: the partition is
 *    a pure function of the vpn, each shard's private caches see a
 *    fixed subsequence in stream order, and stats are merged in
 *    shard order at chunk barriers — reruns produce identical
 *    merged counters;
 *  - different N produce different (each valid) cache interleavings,
 *    like running the trace on N cores with private MMUs.
 *
 * The worker protocol is two std::barrier phases per chunk: main
 * publishes the chunk pointer and arrives; workers filter their
 * subsequence into a private lane buffer, replay it through their
 * shard, and arrive at the end barrier; main then owns all shard
 * state until the next chunk (lock-free stats merge — readers only
 * run while workers are parked).
 */

#ifndef CONTIG_TLB_REPLAY_HH
#define CONTIG_TLB_REPLAY_HH

#include <atomic>
#include <barrier>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "tlb/translation_sim.hh"

namespace contig
{

class ReplayEngine
{
  public:
    /** Native: all shards walk `pt`. */
    ReplayEngine(const XlatConfig &cfg, unsigned threads,
                 const PageTable &pt);

    /** Virtualized: all shards walk (guest_pt, vm). */
    ReplayEngine(const XlatConfig &cfg, unsigned threads,
                 const PageTable &guest_pt, const VirtualMachine &vm);

    ~ReplayEngine();

    ReplayEngine(const ReplayEngine &) = delete;
    ReplayEngine &operator=(const ReplayEngine &) = delete;

    /** Install the extracted segments on every shard (Rmm/Ds). */
    void setSegments(const std::vector<Seg> &segs);

    /** Share one contiguity-class index across all shards (--attrib). */
    void
    setContigIndex(std::shared_ptr<const obs::ContigClassIndex> idx);

    /**
     * Attribution tables summed over shards (shard order, like
     * mergedStats) — call only between replayChunk() calls. Empty
     * table when attribution is off.
     */
    obs::XlatAttribution attribRollup() const;

    /** True when shards carry attribution tables (--attrib on). */
    bool attribEnabled() const;

    /**
     * Replay one chunk. threads == 1 feeds shard 0 directly;
     * otherwise the chunk is fanned out and this call returns after
     * every worker reached the chunk barrier.
     */
    void replayChunk(const MemAccess *a, std::size_t n);

    /** Pipeline stats summed over shards (shard order). */
    XlatStats mergedStats() const;

    /**
     * Per-shard load accounting (the imbalance view): accesses
     * replayed, time spent filtering+replaying (busy), time parked on
     * the end barrier waiting for slower shards (stall) and time
     * parked on the start barrier waiting for the next chunk (wait).
     * threads == 1 runs accumulate busy/accesses on shard 0 only.
     */
    struct ShardLoad {
        std::uint64_t accesses = 0;
        std::uint64_t busyNs = 0;
        std::uint64_t stallNs = 0;
        std::uint64_t waitNs = 0;
    };
    ShardLoad shardLoad(unsigned i) const;

    /** SpOT engine stats summed over shards (nullopt if no SpOT). */
    std::optional<SpotStats> mergedSpotStats() const;

    unsigned threads() const { return threads_; }
    std::uint64_t chunks() const { return chunks_; }
    std::uint64_t accesses() const { return accessesDone_; }
    const TranslationSim &shard(unsigned i) const { return *shards_[i]; }

    /** The shard an access to `vpn` lands on (pure in vpn). */
    static unsigned shardOf(Vpn vpn, unsigned threads);

    /**
     * Checkpoint the engine: shard count and scheme (verified on
     * restore), replay position (chunks/accesses) and every shard's
     * full pipeline state, plus the deterministic per-shard access
     * counts. Wall-clock load accounting (busy/stall/wait) is not
     * checkpointed. Call only between replayChunk() calls — workers
     * are parked at the start barrier then, so main owns all shard
     * state. Restore requires an engine built with the same shard
     * count and configuration (fatal otherwise).
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    void initShards(const XlatConfig &cfg, const PageTable &pt,
                    const VirtualMachine *vm);
    void startWorkers();
    void workerLoop(unsigned id);

    unsigned threads_;
    std::vector<std::unique_ptr<TranslationSim>> shards_;

    /** Worker machinery (empty when threads_ == 1). */
    std::vector<std::thread> workers_;
    std::unique_ptr<std::barrier<>> startBarrier_;
    std::unique_ptr<std::barrier<>> endBarrier_;
    /** Per-worker filtered subsequences (stream order preserved). */
    std::vector<std::vector<MemAccess>> lanes_;
    /** Chunk handoff; written by main strictly before startBarrier_. */
    const MemAccess *chunk_ = nullptr;
    std::size_t chunkN_ = 0;
    bool stop_ = false;

    std::uint64_t chunks_ = 0;
    std::uint64_t accessesDone_ = 0;

    /**
     * Per-shard load counters, one padded slot per shard. Workers
     * update their own slot with relaxed atomics; readers (metric
     * export, the post-barrier skew calculation) fold them whenever —
     * a reader racing a worker just sees the previous chunk's value.
     * Declared before metricSource_: the source's destructor absorbs
     * the final values, so the slots must outlive it.
     */
    struct alignas(64) LoadSlot {
        std::atomic<std::uint64_t> accesses{0};
        std::atomic<std::uint64_t> busyNs{0};
        std::atomic<std::uint64_t> stallNs{0};
        std::atomic<std::uint64_t> waitNs{0};
        /** Busy time of the latest chunk (barrier-skew input). */
        std::atomic<std::uint64_t> lastBusyNs{0};
    };
    std::vector<LoadSlot> loads_;

    obs::Phase chunkPhase_;
    obs::MetricSource metricSource_;
    /** Per-chunk max-min shard busy time ("xlat.barrier.skew_us"),
     *  bound only when threads_ > 1. */
    Summary *skewSummary_ = nullptr;
    /** Interned barrier-wait span names (kCatSync traces). */
    const char *startWaitName_ = nullptr;
    const char *endWaitName_ = nullptr;
};

} // namespace contig

#endif // CONTIG_TLB_REPLAY_HH
